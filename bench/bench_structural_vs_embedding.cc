// Ablation (survey §1): "Classic graph structural features outperform
// factorization-based graph embedding methods on community labeling"
// (Stolman et al., SDM 2022 — the survey's evidence that structural
// features still matter in the ML era). Community-membership labeling
// with half the members known: seed-aware structural features (neighbor
// label counts + degree/clustering/core) vs unsupervised DeepWalk
// embeddings vs both.

#include <algorithm>

#include "bench_util.h"
#include "common/rng.h"
#include "gnn/dataset.h"
#include "gnn/deepwalk.h"
#include "gnn/features.h"
#include "graph/generators.h"
#include "nn/gcn.h"

namespace {

using namespace gal;

/// Trains a linear softmax head on `x` and returns test accuracy.
double LinearProbe(const Matrix& x, const std::vector<int32_t>& labels,
                   const std::vector<uint8_t>& train_mask,
                   const std::vector<uint8_t>& test_mask,
                   uint32_t num_classes) {
  GcnConfig config;
  config.dims = {x.cols(), num_classes};
  GcnModel model(config);
  AggregateFn identity = [](const Matrix& h, uint32_t, bool) { return h; };
  TrainConfig train;
  train.epochs = 150;
  train.lr = 0.05f;
  train.weight_decay = 0.005f;
  TrainReport report = TrainNodeClassifier(
      model, x, const_cast<std::vector<int32_t>&>(labels), train_mask,
      test_mask, identity, train);
  return report.final_test_accuracy;
}

Matrix ConcatFeatures(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), a.cols() + b.cols());
  for (uint32_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), out.row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), out.row(r) + a.cols());
  }
  return out;
}

}  // namespace

int main() {
  using namespace gal::bench;
  Banner("S1", "classic structural features vs embeddings on community "
               "labeling (Stolman et al., cited in Sec. 1)");

  Table table({"graph", "classic structural", "DeepWalk embedding",
               "both", "winner"});
  for (const auto& [name, p_in, p_out] :
       std::vector<std::tuple<const char*, double, double>>{
           {"dense communities", 0.15, 0.005},
           {"sparse communities", 0.03, 0.004},
           {"very sparse (hard)", 0.015, 0.004}}) {
    const VertexId n = 800;
    const uint32_t communities = 8;
    Graph g = PlantedPartition(n, communities, p_in, p_out, 23);
    std::vector<int32_t> labels(n);
    for (VertexId v = 0; v < n; ++v) {
      labels[v] = static_cast<int32_t>(g.LabelOf(v));
    }
    Rng rng(7);
    std::vector<uint8_t> train_mask(n, 0);
    std::vector<uint8_t> test_mask(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      (rng.Bernoulli(0.5) ? train_mask : test_mask)[v] = 1;
    }

    // Classic: per-community seed counts at 1 and 2 hops (the
    // personalized structural features of the paper — their feature set
    // counts labeled members along short paths) + generic structural
    // columns.
    Matrix seed_counts(n, 2 * communities);
    for (VertexId v = 0; v < n; ++v) {
      g.ForEachOutNeighbor(v, [&](VertexId u) {
        if (train_mask[u]) {
          seed_counts.at(v, static_cast<uint32_t>(labels[u])) += 1.0f;
        }
        g.ForEachOutNeighbor(u, [&](VertexId w) {
          if (w != v && train_mask[w]) {
            seed_counts.at(v, communities +
                                  static_cast<uint32_t>(labels[w])) += 1.0f;
          }
        });
      });
      // Normalize each hop block to fractions.
      for (uint32_t block = 0; block < 2; ++block) {
        float total = 0;
        for (uint32_t c = 0; c < communities; ++c) {
          total += seed_counts.at(v, block * communities + c);
        }
        if (total > 0) {
          for (uint32_t c = 0; c < communities; ++c) {
            seed_counts.at(v, block * communities + c) /= total;
          }
        }
      }
    }
    Matrix classic = ConcatFeatures(seed_counts, StructuralFeatures(g));

    // Embeddings: unsupervised DeepWalk.
    DeepWalkOptions dw;
    dw.dim = 32;
    dw.walks_per_vertex = 6;
    dw.walk_length = 10;
    dw.epochs = 2;
    Matrix embedding = DeepWalkEmbeddings(g, dw).embeddings;

    const double acc_classic =
        LinearProbe(classic, labels, train_mask, test_mask, communities);
    const double acc_embed =
        LinearProbe(embedding, labels, train_mask, test_mask, communities);
    const double acc_both =
        LinearProbe(ConcatFeatures(classic, embedding), labels, train_mask,
                    test_mask, communities);
    table.AddRow({name, Fmt("%.3f", acc_classic), Fmt("%.3f", acc_embed),
                  Fmt("%.3f", acc_both),
                  acc_classic >= acc_embed ? "classic" : "embedding"});
  }
  table.Print();
  std::printf("\nShape check: seed-aware structural features match or beat "
              "the unsupervised embedding everywhere and degrade more\n"
              "gracefully as communities get sparser — the Stolman et al. "
              "result the survey cites for why structure analytics still\n"
              "matters alongside learned representations.\n");
  return 0;
}
