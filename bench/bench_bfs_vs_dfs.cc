// Experiment C3 (DESIGN.md): the survey's §2 core systems argument —
// breadth-first subgraph extension (Arabesque / RStream / Pangolin)
// materializes every size-i embedding before producing size i+1, so its
// memory footprint explodes with the instance count, while depth-first
// backtracking (G-thinker / Fractal / STMatch) keeps O(depth) state per
// worker.
//
// Workload: 4-clique enumeration over Erdős–Rényi graphs of rising
// density. Both engines produce identical counts; only their memory
// behavior differs.

#include <atomic>

#include "bench_util.h"
#include "graph/generators.h"
#include "tlag/algos/subgraph_enum.h"
#include "tlag/bfs_engine.h"

namespace {

using namespace gal;

/// Canonical clique extension shared by both engines.
BfsExtensionEngine::ExtendFn CliqueExtend(const Graph& g) {
  return [&g](const Embedding& e, std::vector<VertexId>& out) {
    g.ForEachOutNeighbor(e.back(), [&](VertexId u) {
      if (u <= e.back()) return;
      bool ok = true;
      for (size_t i = 0; i + 1 < e.size(); ++i) {
        if (!g.HasEdge(e[i], u)) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(u);
    });
  };
}

/// DFS 4-clique counting via the connected-subgraph task engine with a
/// clique-only prune; peak state is the recursion footprint.
struct DfsCliqueResult {
  uint64_t count = 0;
  uint64_t peak_state_bytes = 0;
};
DfsCliqueResult DfsCliques(const Graph& g, uint32_t k) {
  std::atomic<uint64_t> count{0};
  SubgraphEnumOptions options;
  options.max_size = k;
  options.engine.num_threads = 8;
  SubgraphEnumStats stats = EnumerateConnectedSubgraphs(
      g, options, [&g, &count, k](const std::vector<VertexId>& s) {
        // Prune to cliques only: every new vertex must close with all.
        for (size_t i = 0; i < s.size(); ++i) {
          for (size_t j = i + 1; j < s.size(); ++j) {
            if (!g.HasEdge(s[i], s[j])) return false;
          }
        }
        if (s.size() == k) {
          count.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        return true;
      });
  return {count.load(), stats.peak_state_bytes};
}

}  // namespace

int main() {
  using namespace gal::bench;
  Banner("C3", "BFS materialization explosion vs DFS backtracking (Sec. 2)");

  Table table({"density p", "4-cliques", "BFS peak embeds", "BFS peak KB",
               "DFS peak state B", "BFS/DFS memory"});
  for (double p : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    Graph g = ErdosRenyi(400, p, 3);

    BfsExtensionEngine bfs(BfsEngineConfig{});
    std::vector<VertexId> roots(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) roots[v] = v;
    std::atomic<uint64_t> bfs_count{0};
    BfsEngineStats bfs_stats =
        bfs.Run(roots, 4, CliqueExtend(g),
                [&bfs_count](const Embedding&) { bfs_count++; });

    DfsCliqueResult dfs = DfsCliques(g, 4);
    GAL_CHECK(dfs.count == bfs_count.load());

    table.AddRow(
        {Fmt("%.2f", p), Human(dfs.count), Human(bfs_stats.peak_materialized),
         Fmt("%.1f", bfs_stats.peak_bytes / 1024.0),
         Fmt("%llu", static_cast<unsigned long long>(dfs.peak_state_bytes)),
         Fmt("%.0fx", static_cast<double>(bfs_stats.peak_bytes) /
                          std::max<uint64_t>(1, dfs.peak_state_bytes))});
  }
  table.Print();
  std::printf("\nShape check: BFS peak memory grows with the embedding count "
              "(thousands-fold over DFS at high density), while DFS state\n"
              "stays flat at O(depth) per worker — the reason the recent "
              "systems moved to depth-first task engines.\n");
  return 0;
}
