// Experiment C13 (DESIGN.md): subgraph matching under a shrinking
// device-memory budget — the GPU-system design axis of §2. BFS-join
// (GSI/cuTS) fails outright when partials overflow; host-memory
// spilling (PBE / VSGM / G2-AIMD) completes but ships the overflow;
// the BFS->DFS hybrid (EGSM) completes within budget by finishing hot
// partials depth-first.

#include <filesystem>

#include "bench_util.h"
#include "graph/generators.h"
#include "match/bfs_executor.h"
#include "match/executor.h"
#include "match/pattern.h"
#include "ooc/ooc_algos.h"
#include "ooc/sharded_graph.h"
#include "tlag/algos/triangles.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C13", "BFS / spill / hybrid matching under a memory budget "
                "(Sec. 2)");

  Graph data = ErdosRenyi(600, 0.05, 9);
  Graph query = DiamondPattern();
  std::printf("data: %s, query: diamond (4 vertices)\n", data.ToString().c_str());

  BfsMatchResult unlimited = BfsSubgraphMatch(data, query);
  std::printf("unbounded BFS join: %llu matches, peak %.1f KB\n\n",
              static_cast<unsigned long long>(unlimited.stats.matches),
              unlimited.peak_bytes / 1024.0);

  // Out-of-core comparison: the same budget spent on adjacency shards
  // instead of partial embeddings (GraphChi's answer to small memory).
  // Workload: triangle counting, the closest primitive this repo runs
  // out-of-core; its count doubles as the completion check.
  const std::string store =
      (std::filesystem::temp_directory_path() / "gal_bench_hybrid_ooc")
          .string();
  ShardWriterOptions shard_opt;
  shard_opt.target_shard_bytes = 2048;
  auto shard_summary = WriteShardedGraph(data, store, shard_opt);
  GAL_CHECK(shard_summary.ok()) << shard_summary.status();
  const TriangleCountResult serial_tri = SerialTriangleCount(data);

  Table table({"budget KB", "policy", "completed", "matches", "peak KB",
               "spilled KB", "dfs-finished"});
  for (uint64_t budget_kb : {1024u, 256u, 64u, 16u}) {
    for (MemoryPolicy policy : {MemoryPolicy::kStrict, MemoryPolicy::kSpill,
                                MemoryPolicy::kHybridDfs}) {
      BfsMatchOptions options;
      options.memory_budget_bytes = budget_kb * 1024;
      options.policy = policy;
      BfsMatchResult r = BfsSubgraphMatch(data, query, options);
      const char* policy_name =
          policy == MemoryPolicy::kStrict
              ? "strict (GSI)"
              : policy == MemoryPolicy::kSpill ? "spill (G2-AIMD)"
                                               : "hybrid (EGSM)";
      if (!r.budget_exceeded) {
        GAL_CHECK(r.stats.matches == unlimited.stats.matches);
      }
      table.AddRow({Fmt("%llu", static_cast<unsigned long long>(budget_kb)),
                    policy_name, r.budget_exceeded ? "NO (aborted)" : "yes",
                    r.budget_exceeded ? "-" : Human(r.stats.matches),
                    Fmt("%.1f", r.peak_bytes / 1024.0),
                    Fmt("%.1f", r.spilled_bytes / 1024.0),
                    Human(r.dfs_fallback_matches)});
    }
    // The out-of-core row bounds ADJACENCY bytes, not partials: shards
    // load and evict under the budget while triangle counting streams
    // them — completion never depends on the budget, only I/O does.
    OocOptions oopt;
    oopt.memory_budget_bytes =
        std::max<uint64_t>(budget_kb * 1024,
                           shard_summary.value().max_shard_resident_bytes);
    auto opened = ShardedGraph::Open(store, oopt);
    GAL_CHECK(opened.ok()) << opened.status();
    const OocTriangleResult tri = OocTriangleCount(opened.value());
    GAL_CHECK(tri.triangles == serial_tri.triangles);
    table.AddRow({Fmt("%llu", static_cast<unsigned long long>(budget_kb)),
                  "out-of-core (GraphChi)*", "yes",
                  Fmt("%llu tri", static_cast<unsigned long long>(
                                      tri.triangles)),
                  Fmt("%.1f", tri.stats.peak_resident_bytes / 1024.0),
                  Fmt("%.1f", tri.stats.shard_load_bytes / 1024.0), "-"});
  }
  table.Print();
  RemoveShardedGraphFiles(store);
  std::printf("\n* out-of-core row: triangle counting over the sharded "
              "store; its budget caps resident adjacency (spilled KB = "
              "shard bytes re-read from disk), where the matching rows "
              "cap partial embeddings.\n");

  // Reference: the pure-DFS executor needs no budget at all.
  MatchResult dfs = SubgraphMatch(data, query);
  std::printf("\npure DFS backtracking reference: %llu matches, O(depth) "
              "state per worker\n",
              static_cast<unsigned long long>(dfs.stats.matches));
  std::printf("\nShape check: strict BFS aborts once the budget drops below "
              "its peak; spilling completes but pushes the overflow to host\n"
              "memory; the hybrid stays within (about) the budget by "
              "finishing overflow embeddings depth-first — EGSM's design.\n");
  return 0;
}
