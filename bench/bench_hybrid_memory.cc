// Experiment C13 (DESIGN.md): subgraph matching under a shrinking
// device-memory budget — the GPU-system design axis of §2. BFS-join
// (GSI/cuTS) fails outright when partials overflow; host-memory
// spilling (PBE / VSGM / G2-AIMD) completes but ships the overflow;
// the BFS->DFS hybrid (EGSM) completes within budget by finishing hot
// partials depth-first.

#include "bench_util.h"
#include "graph/generators.h"
#include "match/bfs_executor.h"
#include "match/executor.h"
#include "match/pattern.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C13", "BFS / spill / hybrid matching under a memory budget "
                "(Sec. 2)");

  Graph data = ErdosRenyi(600, 0.05, 9);
  Graph query = DiamondPattern();
  std::printf("data: %s, query: diamond (4 vertices)\n", data.ToString().c_str());

  BfsMatchResult unlimited = BfsSubgraphMatch(data, query);
  std::printf("unbounded BFS join: %llu matches, peak %.1f KB\n\n",
              static_cast<unsigned long long>(unlimited.stats.matches),
              unlimited.peak_bytes / 1024.0);

  Table table({"budget KB", "policy", "completed", "matches", "peak KB",
               "spilled KB", "dfs-finished"});
  for (uint64_t budget_kb : {1024u, 256u, 64u, 16u}) {
    for (MemoryPolicy policy : {MemoryPolicy::kStrict, MemoryPolicy::kSpill,
                                MemoryPolicy::kHybridDfs}) {
      BfsMatchOptions options;
      options.memory_budget_bytes = budget_kb * 1024;
      options.policy = policy;
      BfsMatchResult r = BfsSubgraphMatch(data, query, options);
      const char* policy_name =
          policy == MemoryPolicy::kStrict
              ? "strict (GSI)"
              : policy == MemoryPolicy::kSpill ? "spill (G2-AIMD)"
                                               : "hybrid (EGSM)";
      if (!r.budget_exceeded) {
        GAL_CHECK(r.stats.matches == unlimited.stats.matches);
      }
      table.AddRow({Fmt("%llu", static_cast<unsigned long long>(budget_kb)),
                    policy_name, r.budget_exceeded ? "NO (aborted)" : "yes",
                    r.budget_exceeded ? "-" : Human(r.stats.matches),
                    Fmt("%.1f", r.peak_bytes / 1024.0),
                    Fmt("%.1f", r.spilled_bytes / 1024.0),
                    Human(r.dfs_fallback_matches)});
    }
  }
  table.Print();

  // Reference: the pure-DFS executor needs no budget at all.
  MatchResult dfs = SubgraphMatch(data, query);
  std::printf("\npure DFS backtracking reference: %llu matches, O(depth) "
              "state per worker\n",
              static_cast<unsigned long long>(dfs.stats.matches));
  std::printf("\nShape check: strict BFS aborts once the budget drops below "
              "its peak; spilling completes but pushes the overflow to host\n"
              "memory; the hybrid stays within (about) the budget by "
              "finishing overflow embeddings depth-first — EGSM's design.\n");
  return 0;
}
