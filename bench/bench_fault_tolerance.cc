// Ablation (survey §7 context: the presenters' LWCP line of work —
// lightweight fault tolerance in Pregel-like systems), now driven by the
// shared elastic cluster runtime (cluster/fault.h):
//   1. checkpoint-interval sweep on a long-running TLAV job with one
//      injected failure — frequent checkpoints cost bytes every interval
//      but bound the recomputation a failure causes;
//   2. straggler injection on PageRank, with and without live
//      rebalancing — a slow worker stretches every BSP round until the
//      runtime sheds its load onto the others.

#include "bench_util.h"
#include "graph/generators.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/wcc.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("FT", "elastic cluster runtime: checkpoints, failures, stragglers");

  // --- 1. checkpoint-interval sweep -----------------------------------
  // A path graph gives hash-min WCC a long superstep schedule (~|V|),
  // the regime where fault tolerance matters.
  Graph g = Path(1500);
  const uint32_t kFailAt = 1200;
  WccResult clean = Wcc(g, TlavConfig{.num_workers = 2});
  std::printf("job: hash-min WCC on a 1500-vertex path (%u supersteps); "
              "failure injected at superstep %u\n\n",
              clean.stats.supersteps, kFailAt);

  Table table({"checkpoint every", "checkpoints", "checkpoint MB",
               "recomputed supersteps", "total supersteps run",
               "overhead vs clean"});
  for (uint32_t interval : {500u, 200u, 50u, 10u}) {
    TlavConfig config;
    config.num_workers = 2;
    config.faults = FaultPlan{}.CheckpointEvery(interval).FailWorkerAt(
        0, kFailAt);
    WccResult r = Wcc(g, config);
    GAL_CHECK(r.component == clean.component);
    const uint64_t total_run =
        r.stats.supersteps + r.stats.recomputed_supersteps;
    table.AddRow({Fmt("%u", interval),
                  Fmt("%u", r.stats.checkpoints_taken),
                  Fmt("%.2f", r.stats.checkpoint_bytes / 1e6),
                  Fmt("%u", r.stats.recomputed_supersteps),
                  Fmt("%llu", static_cast<unsigned long long>(total_run)),
                  Fmt("%.1f%%", 100.0 * (static_cast<double>(total_run) /
                                             clean.stats.supersteps -
                                         1.0))});
  }
  table.Print();
  std::printf("\nShape check: sparse checkpoints are cheap until a failure "
              "hits (hundreds of recomputed supersteps); dense checkpoints\n"
              "bound recomputation at the cost of snapshot volume — the "
              "interval is the knob LWCP tunes, with its lightweight\n"
              "checkpoints shrinking the per-snapshot cost term.\n");

  // --- 2. straggler injection vs live rebalancing ---------------------
  // One worker of four computes `factor` x slower for the whole job. The
  // BSP barrier makes every round wait for it, so the compute makespan
  // (Σ rounds max-worker compute, read off the VirtualClock — the wire
  // term is factor-independent) scales with the factor — unless the
  // runtime detects the sustained straggler and migrates half its
  // vertices away.
  Graph rmat = Rmat(13, 8, 42);
  PageRankOptions pr;
  pr.iterations = 30;
  pr.engine.num_workers = 4;
  auto compute_makespan = [](const ClusterRuntime& cluster) {
    double seconds = 0.0;
    for (const ClusterRound& round : cluster.clock().RoundsSince(0)) {
      seconds += round.compute_seconds;
    }
    return seconds;
  };
  ClusterRuntime clean_cluster(ClusterOptions{4, {}});
  PageRankOptions clean_pr = pr;
  clean_pr.engine.cluster = &clean_cluster;
  PageRankResult baseline = PageRank(rmat, clean_pr);
  const double clean_makespan = compute_makespan(clean_cluster);
  std::printf("\njob: 30-iteration PageRank on rmat-13 (4 workers), worker 0 "
              "slowed for the whole run\n\n");

  Table straggle({"slowdown", "rebalance", "compute makespan ms", "vs clean",
                  "migrations", "migrated vertices", "migration MB"});
  for (double factor : {1.0, 2.0, 4.0, 8.0}) {
    for (bool rebalance : {false, true}) {
      ClusterRuntime cluster(ClusterOptions{4, {}});
      PageRankOptions options = pr;
      options.engine.cluster = &cluster;
      options.engine.faults = FaultPlan{}.SlowWorker(0, factor);
      if (rebalance) options.engine.faults.Rebalance(RebalanceConfig{});
      PageRankResult r = PageRank(rmat, options);
      GAL_CHECK(r.ranks == baseline.ranks);
      const double makespan = compute_makespan(cluster);
      straggle.AddRow(
          {Fmt("%.0fx", factor), rebalance ? "on" : "off",
           Fmt("%.2f", makespan * 1e3),
           Fmt("%.2fx", makespan / std::max(clean_makespan, 1e-12)),
           Fmt("%u", r.stats.rebalances),
           Fmt("%llu",
               static_cast<unsigned long long>(r.stats.migrated_vertices)),
           Fmt("%.2f", r.stats.migration_bytes / 1e6)});
    }
  }
  straggle.Print();
  std::printf("\nShape check: without rebalancing the compute makespan tracks "
              "the slowdown factor (the barrier waits for the straggler);\n"
              "with it the runtime sheds the slow worker's vertices after a "
              "few sustained rounds, and the ranks stay bit-identical\n"
              "either way — migration moves state, not semantics.\n");
  return 0;
}
