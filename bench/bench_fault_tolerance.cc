// Ablation (survey §7 context: the presenters' LWCP line of work —
// lightweight fault tolerance in Pregel-like systems): checkpoint-
// interval sweep on a long-running TLAV job, with one injected failure.
// The classic trade-off: frequent checkpoints cost bytes every interval
// but bound the recomputation a failure causes.

#include <thread>

#include "bench_util.h"
#include "graph/generators.h"
#include "tlav/algos/wcc.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("FT", "LWCP checkpointing: overhead vs recovery cost");

  // A path graph gives hash-min WCC a long superstep schedule (~|V|),
  // the regime where fault tolerance matters.
  Graph g = Path(1500);
  const uint32_t kFailAt = 1200;
  WccResult clean = Wcc(g, TlavConfig{.num_workers = 2});
  std::printf("job: hash-min WCC on a 1500-vertex path (%u supersteps); "
              "failure injected at superstep %u\n\n",
              clean.stats.supersteps, kFailAt);

  Table table({"checkpoint every", "checkpoints", "checkpoint MB",
               "recomputed supersteps", "total supersteps run",
               "overhead vs clean"});
  for (uint32_t interval : {500u, 200u, 50u, 10u}) {
    TlavConfig config;
    config.num_workers = 2;
    config.checkpoint_every = interval;
    config.fail_at_superstep = kFailAt;
    WccResult r = Wcc(g, config);
    GAL_CHECK(r.component == clean.component);
    const uint64_t total_run =
        r.stats.supersteps + r.stats.recomputed_supersteps;
    table.AddRow({Fmt("%u", interval),
                  Fmt("%u", r.stats.checkpoints_taken),
                  Fmt("%.2f", r.stats.checkpoint_bytes / 1e6),
                  Fmt("%u", r.stats.recomputed_supersteps),
                  Fmt("%llu", static_cast<unsigned long long>(total_run)),
                  Fmt("%.1f%%", 100.0 * (static_cast<double>(total_run) /
                                             clean.stats.supersteps -
                                         1.0))});
  }
  table.Print();
  std::printf("\nShape check: sparse checkpoints are cheap until a failure "
              "hits (hundreds of recomputed supersteps); dense checkpoints\n"
              "bound recomputation at the cost of snapshot volume — the "
              "interval is the knob LWCP tunes, with its lightweight\n"
              "checkpoints shrinking the per-snapshot cost term.\n");
  return 0;
}
