// Experiment C8 (DESIGN.md): how the partitioning strategy changes the
// communication of one identical distributed GNN training job — the
// DistDGL/DGCL (METIS) vs ByteGNN/BGL (seed-centric BFS blocks) vs P3
// (feature-dimension split) design space, plus the DistGNN vertex-cut
// replication metric.

#include "bench_util.h"
#include "cluster/cluster.h"
#include "dist/dist_gcn.h"
#include "gnn/dataset.h"
#include "gnn/sampler.h"
#include "partition/partition.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C8", "partitioning strategies under one GNN job (Sec. 3)");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 900;
  data_options.num_classes = 4;
  data_options.feature_dim = 64;  // fat features: where partitioning bites
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  std::printf("dataset: %s, 64-dim features, 4 workers, 10 epochs\n\n",
              ds.graph.ToString().c_str());

  // Every strategy's run charges the same ClusterRuntime: the "comm MB"
  // column is one shared TrafficLedger read per job delta, and the
  // modeled round times come from the shared VirtualClock (one round per
  // epoch).
  ClusterRuntime runtime(ClusterOptions{4, {}});

  Table table({"strategy", "edge cut", "halo rows/exchange", "comm MB",
               "accuracy", "modeled round ms", "sent imbalance"});
  struct Row {
    const char* name;
    PartitionScheme scheme;
    bool p3;
  };
  for (const Row& row : std::initializer_list<Row>{
           {"hash (Pregel default)", PartitionScheme::kHash, false},
           {"range", PartitionScheme::kRange, false},
           {"LDG streaming", PartitionScheme::kLdg, false},
           {"multilevel (METIS-like)", PartitionScheme::kMultilevel, false},
           {"BFS-Voronoi (ByteGNN)", PartitionScheme::kBfsVoronoi, false},
           {"P3 feature split", PartitionScheme::kHash, true}}) {
    DistGcnConfig config;
    config.partition = row.scheme;
    config.p3_feature_split = row.p3;
    config.epochs = 10;
    config.cluster = &runtime;
    runtime.ledger().Reset();  // per-strategy imbalance readout
    const size_t round_mark = runtime.clock().rounds();
    DistGcnReport r = TrainDistGcn(ds, config);
    const size_t rounds = runtime.clock().rounds() - round_mark;
    table.AddRow({row.name, Human(r.edge_cut),
                  Human(r.halo_rows_exchanged / (2 * config.epochs * 2)),
                  Fmt("%.2f", r.comm_bytes / 1e6),
                  Fmt("%.3f", r.final_test_accuracy),
                  Fmt("%.2f", runtime.clock().SecondsSince(round_mark) * 1e3 /
                                  std::max<size_t>(rounds, 1)),
                  Fmt("%.2f", runtime.ledger().SentBytesImbalance())});
  }
  table.Print();

  std::printf("\n-- vertex-cut (DistGNN/PowerGraph view): replication "
              "factor --\n");
  Table vc({"workers", "greedy vertex-cut RF", "hash edge-cut %"});
  for (uint32_t workers : {2u, 4u, 8u}) {
    EdgePartition ep = GreedyVertexCut(ds.graph, workers);
    PartitionQuality q =
        EvaluatePartition(ds.graph, HashPartition(ds.graph, workers));
    vc.AddRow({Fmt("%u", workers), Fmt("%.2f", ep.replication_factor),
               Fmt("%.0f%%", q.cut_ratio * 100)});
  }
  vc.Print();
  std::printf("\nShape check: topology-aware partitions (multilevel, "
              "BFS-Voronoi) cut the halo traffic several-fold vs hash;\n"
              "P3 sidesteps fat-feature exchange entirely (its all-reduce "
              "volume depends on the hidden size, not the input width);\n"
              "vertex-cut replication stays well under the worst case.\n");
  return 0;
}
