// Experiment C2 (DESIGN.md): the survey's efficiency envelope for TLAV
// systems — iterative computations with O(|V|+|E|) work per superstep
// and O(log |V|) supersteps, i.e. O((|V|+|E|) log |V|) total [Yan et
// al., PVLDB 7(14)].
//
// Hash-min WCC on low-diameter R-MAT graphs stays inside the envelope
// (supersteps grow ~logarithmically while per-superstep work stays
// linear); the same program on a path graph needs Θ(|V|) supersteps —
// the degenerate case that motivated logarithmic-round Pregel
// algorithms.

#include <cmath>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "graph/generators.h"
#include "tlav/algos/traversal.h"
#include "tlav/algos/wcc.h"
#include "tlav/algos/wcc_sv.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C2", "TLAV O((|V|+|E|) log |V|) envelope via hash-min WCC");

  // Every run shares one 8-worker ClusterRuntime; the modeled-time
  // columns read its VirtualClock (max-worker compute + cost-model comm
  // per superstep), so rows are on one comparable axis.
  ClusterRuntime runtime(ClusterOptions{8, {}});
  TlavConfig config;
  config.num_workers = 8;
  config.cluster = &runtime;

  std::printf("\n-- low-diameter graphs (R-MAT): supersteps ~ O(log |V|) --\n");
  Table good({"|V|", "|E|", "supersteps", "log2|V|", "activations",
              "activations/(|V|+|E|)", "modeled ms", "ms/round"});
  for (uint32_t scale : {10u, 12u, 14u, 16u}) {
    Graph g = Rmat(scale, 8, 7);
    WccResult r = Wcc(g, config);
    const double ve = static_cast<double>(g.NumVertices()) + g.NumEdges();
    good.AddRow({Human(g.NumVertices()), Human(g.NumEdges()),
                 Fmt("%u", r.stats.supersteps), Fmt("%.1f", scale * 1.0),
                 Human(r.stats.vertex_activations),
                 Fmt("%.2f", r.stats.vertex_activations / ve),
                 Fmt("%.2f", r.stats.modeled_seconds * 1e3),
                 Fmt("%.3f", r.stats.modeled_seconds * 1e3 /
                                 std::max(1u, r.stats.supersteps))});
  }
  good.Print();

  std::printf("\n-- high-diameter graphs (path): hash-min = Theta(|V|) "
              "supersteps; the fixes the survey cites --\n");
  Table bad({"|V|", "hash-min steps", "steps/|V|", "SV pointer-jump rounds",
             "Blogel block steps (32 blocks)", "modeled ms"});
  for (VertexId n : {256u, 512u, 1024u, 2048u}) {
    Graph g = Path(n);
    WccResult r = Wcc(g, config);
    SvWccResult sv = SvWcc(g);
    BlockWccResult blk = BlockWcc(g, 32);
    GAL_CHECK(sv.num_components == r.num_components);
    GAL_CHECK(blk.num_components == r.num_components);
    bad.AddRow({Human(n), Fmt("%u", r.stats.supersteps),
                Fmt("%.2f", static_cast<double>(r.stats.supersteps) / n),
                Fmt("%u", sv.rounds), Fmt("%u", blk.block_supersteps),
                Fmt("%.2f", r.stats.modeled_seconds * 1e3)});
  }
  bad.Print();

  std::printf("\n-- direction-optimizing BFS (src/frontier/): push-only vs "
              "Beamer auto-switching on power-law graphs --\n");
  Table dirs({"|V|", "|E|", "mode", "steps(pull)", "switches",
              "traversed edges", "wire MB", "modeled ms"});
  double dense_push_edges = 0.0, dense_auto_edges = 0.0;
  for (uint32_t scale : {12u, 14u, 16u}) {
    Graph g = Rmat(scale, 16, 11);
    TraversalOptions push_only;
    push_only.engine = config;
    push_only.direction.mode = DirectionMode::kPushOnly;
    TraversalOptions opt;
    opt.engine = config;
    opt.direction.mode = DirectionMode::kAuto;
    BfsResult push = TlavBfs(g, 0, push_only);
    BfsResult hybrid = TlavBfs(g, 0, opt);
    GAL_CHECK(push.distance == hybrid.distance);
    for (auto* r : {&push, &hybrid}) {
      const bool is_push = r == &push;
      dirs.AddRow({Human(g.NumVertices()), Human(g.NumEdges()),
                   is_push ? "push-only" : "dir-opt",
                   Fmt("%u(%u)", r->stats.supersteps,
                       r->stats.pull_supersteps),
                   Fmt("%u", r->stats.direction_switches),
                   Human(r->stats.edge_scans),
                   Fmt("%.2f", r->stats.cross_worker_bytes / 1e6),
                   Fmt("%.2f", r->stats.modeled_seconds * 1e3)});
    }
    dense_push_edges += static_cast<double>(push.stats.edge_scans);
    dense_auto_edges += static_cast<double>(hybrid.stats.edge_scans);
  }
  dirs.Print();
  std::printf("\ntraversed-edge reduction on the dense-frontier sweep: "
              "%.1fx (pull steps stop at the first parent hit instead of "
              "scattering the whole frontier)\n",
              dense_push_edges / std::max(1.0, dense_auto_edges));

  std::printf("\nshared cluster clock across all runs: %zu rounds, "
              "%.2f modeled s; wire total %.2f MB\n",
              runtime.clock().rounds(), runtime.clock().seconds(),
              runtime.ledger().TotalBytes() / 1e6);
  std::printf("\nShape check: on R-MAT, supersteps stay near log2|V| and "
              "total activations stay a small multiple of |V|+|E|.\n"
              "On paths, hash-min scales linearly with |V| — outside the "
              "envelope — while the survey's remedies restore it:\n"
              "Shiloach-Vishkin pointer jumping stays at O(log |V|) rounds "
              "and Blogel's block-centric model collapses the superstep\n"
              "count to the (tiny) block-graph diameter.\n");
  return 0;
}
