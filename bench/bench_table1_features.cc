// Table 1 (DESIGN.md experiment T1): "Systems for Subgraph Search:
// Summary of Features". Every feature column of the survey's matrix is
// exercised *live* by the corresponding engine mode of this library,
// and the matrix is reprinted with the measured evidence per row.

#include <atomic>

#include "bench_util.h"
#include "fsm/fsm.h"
#include "graph/generators.h"
#include "match/bfs_executor.h"
#include "match/executor.h"
#include "match/online.h"
#include "match/pattern.h"
#include "tlag/algos/cliques.h"
#include "tlag/bfs_engine.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("T1", "subgraph-search systems feature matrix, demonstrated live");

  Graph data = WithRandomLabels(Rmat(10, 6, 5), 4, 7);
  std::printf("data graph: %s\n\n", data.ToString().c_str());

  Table table({"surveyed systems", "model", "SF", "FSM", "extension",
               "load balance", "online", "evidence (this library)"});

  // --- BFS-extension family (Arabesque / RStream / Pangolin) ------------
  {
    BfsExtensionEngine engine(BfsEngineConfig{});
    std::vector<VertexId> roots(data.NumVertices());
    for (VertexId v = 0; v < data.NumVertices(); ++v) roots[v] = v;
    std::atomic<uint64_t> out{0};
    BfsEngineStats s = engine.Run(
        roots, 3,
        [&data](const Embedding& e, std::vector<VertexId>& cand) {
          data.ForEachOutNeighbor(e.back(), [&](VertexId u) {
            if (u <= e.back()) return;
            bool ok = true;
            for (VertexId w : e) {
              if (w != e.back() && !data.HasEdge(w, u)) { ok = false; break; }
            }
            if (ok) cand.push_back(u);
          });
        },
        [&out](const Embedding&) { out++; });
    table.AddRow({"Arabesque/RStream/Pangolin", "TLAG", "yes", "yes",
                  "BFS (materialized)", "level barrier", "no",
                  Fmt("%s triangles, peak %s embeds", Human(out).c_str(),
                      Human(s.peak_materialized).c_str())});
  }

  // --- DFS task family (G-thinker / G-Miner / Fractal) -------------------
  {
    MaximalCliqueOptions options;
    options.engine.num_threads = 8;
    options.split_depth = 3;
    MaximalCliqueResult r = MaximalCliques(data, options);
    table.AddRow({"G-thinker/G-Miner/Fractal", "TLAG task", "yes", "no",
                  "DFS backtracking", "work stealing", "no",
                  Fmt("%s maximal cliques, %s steals", Human(r.count).c_str(),
                      Human(r.task_stats.steals).c_str())});
  }

  // --- Online querying (G-thinkerQ) --------------------------------------
  {
    OnlineQueryServer server(&data, 4);
    auto f1 = server.Submit(TrianglePattern());
    auto f2 = server.Submit(CyclePattern(4));
    auto f3 = server.Submit(StarPattern(3));
    server.Drain();
    table.AddRow({"G-thinkerQ", "TLAG task", "yes", "no", "DFS backtracking",
                  "shared pool", "YES",
                  Fmt("3 concurrent queries, %.1f/%.1f/%.1f ms",
                      f1.get().latency_seconds * 1e3,
                      f2.get().latency_seconds * 1e3,
                      f3.get().latency_seconds * 1e3)});
  }

  // --- Compilation-based ordering (AutoMine / GraphPi / GraphZero) -------
  {
    MatchOptions worst;
    worst.order = OrderStrategy::kWorst;
    MatchOptions greedy;
    greedy.order = OrderStrategy::kGreedyCost;
    greedy.symmetry_breaking = true;
    MatchStats w = SubgraphMatch(data, TailedTrianglePattern(), worst).stats;
    MatchStats g = SubgraphMatch(data, TailedTrianglePattern(), greedy).stats;
    table.AddRow({"AutoMine/GraphPi/GraphZero", "compiled matching", "yes",
                  "no", "DFS, optimized order", "static", "no",
                  Fmt("search nodes %s -> %s w/ plan+symmetry",
                      Human(w.search_nodes).c_str(),
                      Human(g.search_nodes).c_str())});
  }

  // --- Single-graph FSM (ScaleMine / DistGraph / T-FSM) -------------------
  {
    SingleGraphFsmOptions options;
    options.min_support = 60;
    options.max_edges = 2;
    options.num_threads = 8;
    SingleGraphFsmResult r = MineSingleGraph(data, options);
    table.AddRow({"ScaleMine/DistGraph/T-FSM", "FSM (MNI)", "no", "YES",
                  "pattern growth", "parallel support eval", "no",
                  Fmt("%zu frequent patterns, %s checks", r.patterns.size(),
                      Human(r.stats.existence_checks).c_str())});
  }

  // --- Transaction FSM (PrefixFPM) ----------------------------------------
  {
    MoleculeDbOptions db_options;
    db_options.num_transactions = 60;
    TransactionDb db = SyntheticMoleculeDb(db_options, 5);
    TransactionFsmOptions options;
    options.min_support = 20;
    options.max_edges = 3;
    TransactionFsmResult r = MineTransactions(db, options);
    table.AddRow({"PrefixFPM", "FSM (transactions)", "no", "YES",
                  "DFS prefix projection", "task parallel", "no",
                  Fmt("%zu patterns over %zu molecules", r.patterns.size(),
                      db.size())});
  }

  // --- GPU BFS-join family (GSI / cuTS) -----------------------------------
  {
    BfsMatchResult r = BfsSubgraphMatch(data, DiamondPattern());
    table.AddRow({"GSI/cuTS (GPU)", "BFS join", "yes", "no",
                  "BFS (coalesced)", "level barrier", "no",
                  Fmt("%s matches, peak %s partials",
                      Human(r.stats.matches).c_str(),
                      Human(r.peak_partial_matches).c_str())});
  }

  // --- Partition / host-buffer family (PBE / VSGM / SGSI / G2-AIMD) -------
  {
    BfsMatchOptions options;
    options.memory_budget_bytes = 64 * 1024;
    options.policy = MemoryPolicy::kSpill;
    BfsMatchResult r = BfsSubgraphMatch(data, DiamondPattern(), options);
    table.AddRow({"PBE/VSGM/SGSI/G2-AIMD", "BFS + host buffer", "yes", "no",
                  "BFS, chunked", "spill to host", "no",
                  Fmt("completed with %.0f KB spilled",
                      r.spilled_bytes / 1024.0)});
  }

  // --- GPU DFS family (STMatch / T-DFS) ------------------------------------
  {
    MatchOptions options;
    options.engine.num_threads = 8;
    MatchResult r = SubgraphMatch(data, DiamondPattern(), options);
    table.AddRow({"STMatch/T-DFS (GPU)", "warp-DFS", "yes", "no",
                  "DFS, per-warp stacks", "work stealing", "no",
                  Fmt("%s matches, %s tasks", Human(r.stats.matches).c_str(),
                      Human(r.stats.task_stats.tasks_executed).c_str())});
  }

  // --- Hybrid (EGSM) ---------------------------------------------------------
  {
    BfsMatchOptions options;
    options.memory_budget_bytes = 64 * 1024;
    options.policy = MemoryPolicy::kHybridDfs;
    BfsMatchResult r = BfsSubgraphMatch(data, DiamondPattern(), options);
    table.AddRow({"EGSM", "hybrid", "yes", "no", "BFS->DFS fallback",
                  "memory-adaptive", "no",
                  Fmt("%s matches, %s finished by DFS",
                      Human(r.stats.matches).c_str(),
                      Human(r.dfs_fallback_matches).c_str())});
  }

  table.Print();
  std::printf("\nEach row's feature set was exercised by the engine mode in "
              "the evidence column — the live reproduction of Table 1.\n");
  return 0;
}
