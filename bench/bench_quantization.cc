// Experiment C10 (DESIGN.md): compressed GNN training via lossy message
// quantization (EXACT / EC-Graph / F²CGT / Sylvie): fp32 / fp16 / int8 /
// int4 on the wire, with and without EC-Graph-style error compensation.

#include "bench_util.h"
#include "dist/dist_gcn.h"
#include "dist/quantization.h"
#include "gnn/dataset.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C10", "quantized message compression for GNN training (Sec. 3)");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 900;
  data_options.num_classes = 4;
  data_options.noise = 2.0;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  std::printf("dataset: %s, 4 workers, 40 epochs\n\n",
              ds.graph.ToString().c_str());

  Table table({"wire format", "error comp", "comm MB", "vs fp32", "accuracy",
               "final loss"});
  uint64_t fp32_bytes = 0;
  auto run = [&](const char* name, Quantization q, bool ec) {
    DistGcnConfig config;
    config.epochs = 40;
    config.quantization = q;
    config.error_compensation = ec;
    DistGcnReport r = TrainDistGcn(ds, config);
    if (q == Quantization::kNone) fp32_bytes = r.comm_bytes;
    table.AddRow({name, ec ? "yes" : "no", Fmt("%.2f", r.comm_bytes / 1e6),
                  Fmt("%.0f%%", 100.0 * r.comm_bytes /
                                    std::max<uint64_t>(1, fp32_bytes)),
                  Fmt("%.3f", r.final_test_accuracy),
                  Fmt("%.3f", r.epoch_loss.back())});
  };
  run("fp32", Quantization::kNone, false);
  run("fp16", Quantization::kFp16, false);
  run("int8", Quantization::kInt8, false);
  run("int8", Quantization::kInt8, true);
  run("int4", Quantization::kInt4, false);
  run("int4", Quantization::kInt4, true);
  table.Print();

  std::printf("\n-- codec fidelity in isolation (64-dim activations) --\n");
  Table codec({"format", "bytes/row", "mean abs error", "EC mean abs error "
               "(64-round avg)"});
  Rng rng(3);
  Matrix activations = Matrix::Xavier(256, 64, rng);
  for (Quantization q : {Quantization::kFp16, Quantization::kInt8,
                         Quantization::kInt4}) {
    const double err =
        activations.MeanAbsDiff(QuantizeDequantize(activations, q));
    ErrorCompensatedCodec ec(q);
    Matrix mean(activations.rows(), activations.cols());
    for (int i = 0; i < 64; ++i) {
      mean.AddScaled(ec.Transmit(activations), 1.0f / 64);
    }
    codec.AddRow({QuantizationName(q),
                  Fmt("%.1f", static_cast<double>(WireBytes(q, 1, 64))),
                  Fmt("%.5f", err),
                  Fmt("%.5f", activations.MeanAbsDiff(mean))});
  }
  codec.Print();
  std::printf("\nShape check: int8 cuts traffic ~3x with negligible accuracy "
              "loss; int4 shows visible degradation that error compensation\n"
              "recovers — the EC-Graph result. The codec table shows EC "
              "driving the *time-averaged* error toward zero.\n");
  return 0;
}
