// Experiment C12 (DESIGN.md): Dorylus's cost-effectiveness claim — GPUs
// are the fastest way to train a GNN but CPU servers + serverless
// threads deliver more throughput per dollar ("value"). The deployments
// are priced from a real TrainDistGcn run's VirtualClock split
// (compute vs wire seconds): faster hardware accelerates the compute
// share only, so the modeled comm floor is what caps the GPU's value —
// plus $/result accounting of the whole training run.

#include "bench_util.h"
#include "dist/cost_model.h"
#include "dist/dist_gcn.h"
#include "gnn/dataset.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C12", "Dorylus: serverless value per dollar (Sec. 3)");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 900;
  data_options.num_classes = 4;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  DistGcnConfig config;
  config.epochs = 10;
  DistGcnReport train = TrainDistGcn(ds, config);
  std::printf("measured CPU-cluster run: compute %.2f ms + wire %.2f ms over "
              "%u epochs (accuracy %.3f)\n\n",
              train.compute_seconds * 1e3, train.comm_seconds * 1e3,
              config.epochs, train.final_test_accuracy);

  Table table({"deployment", "$/hour", "epoch ms", "$/1k epochs",
               "value (cpu=1)", "runs/$"});
  for (const CloudDeployment& d :
       {CloudDeployment::CpuServer(), CloudDeployment::GpuServer(),
        CloudDeployment::CpuPlusServerless()}) {
    CostReport r = EvaluateDeploymentModeled(d, train.compute_seconds,
                                             train.comm_seconds,
                                             config.epochs);
    table.AddRow({r.name, Fmt("%.2f", d.dollars_per_hour),
                  Fmt("%.2f", r.epoch_seconds * 1e3),
                  Fmt("%.4f", r.dollars_per_epoch * 1000),
                  Fmt("%.2f", r.value),
                  Fmt("%.0f", r.results_per_dollar)});
  }
  table.Print();
  std::printf("\nShape check: the GPU row has the lowest epoch time but the "
              "cpu+serverless row the highest value and runs per dollar —\n"
              "Dorylus's headline result (GPUs win on speed, lambdas win on "
              "dollars), sharpened by the modeled wire time that no\n"
              "hardware tier can buy down.\n");
  return 0;
}
