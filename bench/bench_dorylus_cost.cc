// Experiment C12 (DESIGN.md): Dorylus's cost-effectiveness claim — GPUs
// are the fastest way to train a GNN but CPU servers + serverless
// threads deliver more throughput per dollar ("value"). The epoch time
// baseline comes from an actual CPU training run of this library; the
// deployments are priced by the cost model in dist/cost_model.h.

#include "bench_util.h"
#include "dist/cost_model.h"
#include "dist/dist_gcn.h"
#include "gnn/dataset.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C12", "Dorylus: serverless value per dollar (Sec. 3)");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 900;
  data_options.num_classes = 4;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  DistGcnConfig config;
  config.epochs = 10;
  DistGcnReport train = TrainDistGcn(ds, config);
  const double cpu_epoch_seconds =
      train.simulated_epoch_seconds / config.epochs;
  std::printf("measured CPU-cluster epoch: %.2f ms (accuracy %.3f)\n\n",
              cpu_epoch_seconds * 1e3, train.final_test_accuracy);

  Table table({"deployment", "$/hour", "epoch ms", "$/1k epochs",
               "value (epochs/$, cpu=1)"});
  for (const CloudDeployment& d :
       {CloudDeployment::CpuServer(), CloudDeployment::GpuServer(),
        CloudDeployment::CpuPlusServerless()}) {
    CostReport r = EvaluateDeployment(d, cpu_epoch_seconds);
    table.AddRow({r.name, Fmt("%.2f", d.dollars_per_hour),
                  Fmt("%.2f", r.epoch_seconds * 1e3),
                  Fmt("%.4f", r.dollars_per_epoch * 1000),
                  Fmt("%.2f", r.value)});
  }
  table.Print();
  std::printf("\nShape check: the GPU row has the lowest epoch time but the "
              "cpu+serverless row the highest value — Dorylus's headline\n"
              "result (GPUs win on speed, lambdas win on dollars).\n");
  return 0;
}
