// Microbenchmarks (google-benchmark) of the kernels everything else is
// built from: CSR construction, neighborhood intersection, SpMM, dense
// matmul, sampling, and the TLAV superstep loop. These are the numbers
// to watch when optimizing the library itself.

#include <algorithm>
#include <thread>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"
#include "gnn/sampler.h"
#include "graph/generators.h"
#include "tensor/kernel_context.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/wcc.h"

namespace gal {
namespace {

// Thread-count sweep for the KernelContext-backed kernels: 1 / 2 / 4 /
// hardware_concurrency. The GFLOP/s and edges/s counters are the kernel
// throughput trajectory BENCH_*.json tracks across PRs.
void KernelThreadArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4);
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  if (hw != 1 && hw != 2 && hw != 4) b->Arg(hw);
}

void BM_CsrConstruction(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  Graph g = Rmat(scale, 8, 3);
  std::vector<Edge> edges = g.CollectEdges();
  for (auto _ : state) {
    auto copy = edges;
    Result<Graph> built = Graph::FromEdges(g.NumVertices(), std::move(copy), {});
    benchmark::DoNotOptimize(built.value().NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_CsrConstruction)->Arg(10)->Arg(12);

void BM_TriangleCountSerial(benchmark::State& state) {
  Graph g = Rmat(static_cast<uint32_t>(state.range(0)), 8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerialTriangleCount(g).triangles);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleCountSerial)->Arg(10)->Arg(12);

void BM_TriangleCountTask8(benchmark::State& state) {
  Graph g = Rmat(static_cast<uint32_t>(state.range(0)), 8, 3);
  TaskEngineConfig config;
  config.num_threads = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TaskTriangleCount(g, config).triangles);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleCountTask8)->Arg(10)->Arg(12);

void BM_SpMM(benchmark::State& state) {
  Graph g = Rmat(11, 8, 5);
  SparseMatrix adj = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  Rng rng(1);
  Matrix h = Matrix::Xavier(g.NumVertices(), static_cast<uint32_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Multiply(h).rows());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * state.range(0));
}
BENCHMARK(BM_SpMM)->Arg(16)->Arg(64);

void BM_DenseMatmul(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::Xavier(n, n, rng);
  Matrix b = Matrix::Xavier(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matmul(a, b).rows());
  }
  state.SetItemsProcessed(state.iterations() * uint64_t{n} * n * n);
}
BENCHMARK(BM_DenseMatmul)->Arg(64)->Arg(128);

void BM_GemmThreadSweep(benchmark::State& state) {
  const uint32_t n = 256;  // >= the acceptance problem size (256^3)
  const size_t threads = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Matrix a = Matrix::Xavier(n, n, rng);
  Matrix b = Matrix::Xavier(n, n, rng);
  KernelContext::Get().SetNumThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matmul(a, b).rows());
  }
  KernelContext::Get().SetNumThreads(0);
  const double flops = 2.0 * n * n * n * state.iterations();
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_GemmThreadSweep)->Apply(KernelThreadArgs)->UseRealTime();

void BM_SpmmThreadSweep(benchmark::State& state) {
  // Power-law generator graph: the nnz-balanced shards are what keeps
  // the hub rows from serializing one shard.
  Graph g = Rmat(12, 8, 5);
  SparseMatrix adj = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  Rng rng(5);
  Matrix h = Matrix::Xavier(g.NumVertices(), 32, rng);
  const size_t threads = static_cast<size_t>(state.range(0));
  KernelContext::Get().SetNumThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Multiply(h).rows());
  }
  KernelContext::Get().SetNumThreads(0);
  const double edges = static_cast<double>(adj.nnz()) * state.iterations();
  state.counters["edges/s"] =
      benchmark::Counter(edges, benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(state.iterations() * adj.nnz() * h.cols());
}
BENCHMARK(BM_SpmmThreadSweep)->Apply(KernelThreadArgs)->UseRealTime();

// ---- reorder x compression x SIMD sweep ------------------------------
// The before/after rows for the cache-layout + codec + vector-kernel
// pass: each benchmark below carries `reorder` (0=none 1=degree-desc
// 2=hub-cluster), `compressed` (0=raw CSR 1=delta-varint), and `simd`
// (0=scalar 1=active ISA) counters so the speedup matrix is a recorded
// artifact, not a one-off measurement. Compressed rows also report
// `B/edge` (adjacency bytes per entry; raw CSR is 4.00) — the time
// delta against the raw row at the same (reorder, simd) is the
// streaming-decode overhead.

Graph WithLayout(const Graph& g, ReorderMode mode,
                 CompressionMode codec = CompressionMode::kNone) {
  GraphOptions options;
  options.directed = g.directed();
  options.reorder = mode;
  options.compression = codec;
  return Graph::FromEdges(g.NumVertices(), g.CollectEdges(), options).value();
}

void BM_TriangleReorderSimdSweep(benchmark::State& state) {
  const auto mode = static_cast<ReorderMode>(state.range(0));
  const bool want_simd = state.range(1) != 0;
  const auto codec = static_cast<CompressionMode>(state.range(2));
  Graph raw = Rmat(12, 8, 3);
  const uint64_t expect = SerialTriangleCount(raw).triangles;
  Graph g = WithLayout(raw, mode, codec);
  const bool prev = simd::SetEnabled(want_simd);
  for (auto _ : state) {
    const uint64_t triangles = SerialTriangleCount(g).triangles;
    GAL_CHECK(triangles == expect);
    benchmark::DoNotOptimize(triangles);
  }
  simd::SetEnabled(prev);
  state.counters["reorder"] = static_cast<double>(state.range(0));
  state.counters["simd"] = simd::Available() && want_simd ? 1.0 : 0.0;
  state.counters["compressed"] = g.IsCompressed() ? 1.0 : 0.0;
  state.counters["B/edge"] =
      static_cast<double>(g.AdjacencyBytes()) /
      std::max<uint64_t>(1, g.NumAdjacencyEntries());
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleReorderSimdSweep)->ArgsProduct({{0, 1, 2}, {0, 1}, {0, 1}});

void BM_GemmSimdSweep(benchmark::State& state) {
  const uint32_t n = 256;
  const bool want_simd = state.range(0) != 0;
  Rng rng(4);
  Matrix a = Matrix::Xavier(n, n, rng);
  Matrix b = Matrix::Xavier(n, n, rng);
  KernelContext::Get().SetNumThreads(1);  // isolate the inner-tile kernel
  const bool prev = simd::SetEnabled(want_simd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matmul(a, b).rows());
  }
  simd::SetEnabled(prev);
  KernelContext::Get().SetNumThreads(0);
  const double flops = 2.0 * n * n * n * state.iterations();
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
  state.counters["simd"] = simd::Available() && want_simd ? 1.0 : 0.0;
}
BENCHMARK(BM_GemmSimdSweep)->Arg(0)->Arg(1);

void BM_SpmmReorderSimdSweep(benchmark::State& state) {
  const auto mode = static_cast<ReorderMode>(state.range(0));
  const bool want_simd = state.range(1) != 0;
  Graph g = WithLayout(Rmat(12, 8, 5), mode);
  SparseMatrix adj = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  Rng rng(5);
  Matrix h = Matrix::Xavier(g.NumVertices(), 32, rng);
  KernelContext::Get().SetNumThreads(1);
  const bool prev = simd::SetEnabled(want_simd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Multiply(h).rows());
  }
  simd::SetEnabled(prev);
  KernelContext::Get().SetNumThreads(0);
  const double edges = static_cast<double>(adj.nnz()) * state.iterations();
  state.counters["edges/s"] =
      benchmark::Counter(edges, benchmark::Counter::kIsRate);
  state.counters["reorder"] = static_cast<double>(state.range(0));
  state.counters["simd"] = simd::Available() && want_simd ? 1.0 : 0.0;
}
BENCHMARK(BM_SpmmReorderSimdSweep)->ArgsProduct({{0, 1, 2}, {0, 1}});

void BM_WccSuperstepLoop(benchmark::State& state) {
  Graph g = Rmat(static_cast<uint32_t>(state.range(0)), 8, 7);
  TlavConfig config;
  config.num_workers = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Wcc(g, config).num_components);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_WccSuperstepLoop)->Arg(10)->Arg(12);

void BM_WccCompressedSweep(benchmark::State& state) {
  // End-to-end superstep loop over raw vs delta-varint adjacency: the
  // frontier substrate streams every scatter/gather through the codec,
  // so this is the decode overhead measured where it matters.
  Graph raw = Rmat(12, 8, 7);
  const auto codec = static_cast<CompressionMode>(state.range(0));
  Graph g = WithLayout(raw, ReorderMode::kNone, codec);
  TlavConfig config;
  config.num_workers = 8;
  const uint64_t expect = Wcc(raw, config).num_components;
  for (auto _ : state) {
    const uint64_t components = Wcc(g, config).num_components;
    GAL_CHECK(components == expect);
    benchmark::DoNotOptimize(components);
  }
  state.counters["compressed"] = g.IsCompressed() ? 1.0 : 0.0;
  state.counters["B/edge"] =
      static_cast<double>(g.AdjacencyBytes()) /
      std::max<uint64_t>(1, g.NumAdjacencyEntries());
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_WccCompressedSweep)->Arg(0)->Arg(1);

void BM_MiniBatchSampling(benchmark::State& state) {
  Graph g = Rmat(12, 8, 9);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < 64; ++v) seeds.push_back(v * 17 % g.NumVertices());
  const uint32_t fanout = static_cast<uint32_t>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildMiniBatch(g, seeds, {fanout, fanout}, ++seed).input_rows);
  }
}
BENCHMARK(BM_MiniBatchSampling)->Arg(5)->Arg(25);

}  // namespace
}  // namespace gal

BENCHMARK_MAIN();
