// Microbenchmarks (google-benchmark) of the kernels everything else is
// built from: CSR construction, neighborhood intersection, SpMM, dense
// matmul, sampling, and the TLAV superstep loop. These are the numbers
// to watch when optimizing the library itself.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gnn/sampler.h"
#include "graph/generators.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/wcc.h"

namespace gal {
namespace {

void BM_CsrConstruction(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  Graph g = Rmat(scale, 8, 3);
  std::vector<Edge> edges = g.CollectEdges();
  for (auto _ : state) {
    auto copy = edges;
    Result<Graph> built = Graph::FromEdges(g.NumVertices(), std::move(copy), {});
    benchmark::DoNotOptimize(built.value().NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_CsrConstruction)->Arg(10)->Arg(12);

void BM_TriangleCountSerial(benchmark::State& state) {
  Graph g = Rmat(static_cast<uint32_t>(state.range(0)), 8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerialTriangleCount(g).triangles);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleCountSerial)->Arg(10)->Arg(12);

void BM_TriangleCountTask8(benchmark::State& state) {
  Graph g = Rmat(static_cast<uint32_t>(state.range(0)), 8, 3);
  TaskEngineConfig config;
  config.num_threads = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TaskTriangleCount(g, config).triangles);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleCountTask8)->Arg(10)->Arg(12);

void BM_SpMM(benchmark::State& state) {
  Graph g = Rmat(11, 8, 5);
  SparseMatrix adj = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  Rng rng(1);
  Matrix h = Matrix::Xavier(g.NumVertices(), static_cast<uint32_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Multiply(h).rows());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * state.range(0));
}
BENCHMARK(BM_SpMM)->Arg(16)->Arg(64);

void BM_DenseMatmul(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::Xavier(n, n, rng);
  Matrix b = Matrix::Xavier(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matmul(a, b).rows());
  }
  state.SetItemsProcessed(state.iterations() * uint64_t{n} * n * n);
}
BENCHMARK(BM_DenseMatmul)->Arg(64)->Arg(128);

void BM_WccSuperstepLoop(benchmark::State& state) {
  Graph g = Rmat(static_cast<uint32_t>(state.range(0)), 8, 7);
  TlavConfig config;
  config.num_workers = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Wcc(g, config).num_components);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_WccSuperstepLoop)->Arg(10)->Arg(12);

void BM_MiniBatchSampling(benchmark::State& state) {
  Graph g = Rmat(12, 8, 9);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < 64; ++v) seeds.push_back(v * 17 % g.NumVertices());
  const uint32_t fanout = static_cast<uint32_t>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildMiniBatch(g, seeds, {fanout, fanout}, ++seed).input_rows);
  }
}
BENCHMARK(BM_MiniBatchSampling)->Arg(5)->Arg(25);

}  // namespace
}  // namespace gal

BENCHMARK_MAIN();
