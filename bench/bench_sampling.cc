// Experiment C7 (DESIGN.md): neighborhood sampling bounds the graph
// data communication of GNN training (the Euler / AliGraph / ByteGNN
// technique). Fanout sweep on a 2-layer GraphSAGE job: gathered feature
// volume collapses as fanout shrinks while accuracy degrades only
// mildly; an AliGraph-style hot-vertex cache recovers much of the
// remaining remote traffic.

#include "bench_util.h"
#include "dist/cache.h"
#include "gnn/dataset.h"
#include "gnn/sage.h"
#include "gnn/sampler.h"
#include "partition/partition.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C7", "neighborhood sampling vs communication (Sec. 3)");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 4000;
  data_options.num_classes = 8;
  data_options.p_in = 0.08;   // avg degree ~50: fanout truly truncates
  data_options.p_out = 0.004; // 2-hop neighborhoods
  data_options.noise = 3.0;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  std::printf("dataset: %s, %u-dim features\n\n", ds.graph.ToString().c_str(),
              ds.features.cols());

  Table table({"fanout", "accuracy", "feature rows", "feature MB",
               "sampled edges", "MB vs full"});
  uint64_t full_bytes = 0;
  for (uint32_t fanout : {0u, 25u, 10u, 5u, 2u}) {
    SageConfig config;
    config.fanouts = {fanout, fanout};
    config.epochs = 2;
    config.batch_size = 16;  // small batches: expansion cannot saturate
    SageReport r = TrainSageMinibatch(ds, config);
    if (fanout == 0) full_bytes = r.feature_bytes_gathered;
    table.AddRow({fanout == 0 ? "full" : Fmt("%u", fanout),
                  Fmt("%.3f", r.final_test_accuracy),
                  Human(r.feature_rows_gathered),
                  Fmt("%.2f", r.feature_bytes_gathered / 1e6),
                  Human(r.sampled_edges),
                  Fmt("%.0f%%", 100.0 * r.feature_bytes_gathered /
                                    std::max<uint64_t>(1, full_bytes))});
  }
  table.Print();

  // AliGraph-style cache on top of fanout-10 sampling, 4 workers.
  std::printf("\n-- hot-vertex feature cache (AliGraph), fanout 10, "
              "4 workers --\n");
  VertexPartition parts = HashPartition(ds.graph, 4);
  Table cache_table({"cache fraction", "hit rate", "remote fetches avoided"});
  for (double fraction : {0.0, 0.05, 0.2, 0.5}) {
    StaticFeatureCache cache(ds.graph, parts, fraction);
    // Replay the sampled reads of one epoch.
    std::vector<VertexId> train = ds.TrainVertices();
    for (size_t begin = 0; begin < train.size(); begin += 16) {
      const size_t end = std::min(train.size(), begin + 16);
      std::vector<VertexId> seeds(train.begin() + begin, train.begin() + end);
      MiniBatch batch = BuildMiniBatch(ds.graph, seeds, {10, 10}, 3);
      const uint32_t worker = parts.PartOf(seeds[0]);
      for (VertexId v : batch.blocks[0].input_vertices) {
        cache.Fetch(worker, v);
      }
    }
    cache_table.AddRow({Fmt("%.0f%%", fraction * 100),
                        Fmt("%.2f", cache.HitRate()),
                        Human(cache.hits())});
  }
  cache_table.Print();
  std::printf("\nShape check: fanout 10 keeps accuracy within a few points "
              "of full neighborhoods at a fraction of the gathered bytes;\n"
              "caching the hottest vertices pushes the hit rate up steeply "
              "because power-law access concentrates on hubs.\n");
  return 0;
}
