// Experiment C5 (DESIGN.md): work stealing balances the wildly skewed
// tasks of subgraph search (the G-thinker / STMatch / T-DFS load-
// balancing story), now on the lock-free Chase–Lev engine. Two parts:
//
//   1. Maximal clique enumeration on a hub-heavy graph: per-root task
//      cost varies by orders of magnitude, so static round-robin
//      partitioning strands most threads idle while one grinds through
//      the hubs; stealing (plus BK task splitting) levels it.
//   2. DFS subgraph matching with per-root tasks only vs adaptive
//      prefix splitting: stealing alone cannot help once the one
//      hub-rooted search tree is the makespan — splitting it can.

#include <thread>

#include "bench_util.h"
#include "graph/generators.h"
#include "match/executor.h"
#include "match/pattern.h"
#include "tlag/algos/cliques.h"

namespace {

/// Thread counts to sweep: powers of two, then the exact core count, so
/// a 6- or 12-core host still benches at full width instead of stopping
/// at the largest power of two below it.
std::vector<uint32_t> ThreadSweep(uint32_t cores) {
  std::vector<uint32_t> sweep;
  for (uint32_t t = 1; t < cores; t *= 2) sweep.push_back(t);
  sweep.push_back(cores);
  return sweep;
}

}  // namespace

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C5", "work stealing vs static task partitioning (Sec. 2)");

  // BA graphs have hub vertices whose clique neighborhoods dominate;
  // with a contiguous static shard of the degeneracy-ordered roots, the
  // heavy tail lands on one worker.
  Graph g = BarabasiAlbert(6000, 40, 5);
  const uint32_t cores = std::max(2u, std::thread::hardware_concurrency());
  std::printf("data graph: %s, max degree %u, %u hardware threads\n\n",
              g.ToString().c_str(), g.MaxDegree(), cores);

  Table table({"threads", "stealing", "wall ms", "efficiency", "steals",
               "failed steals", "parks", "speedup vs 1t"});
  double baseline = 0.0;
  for (uint32_t threads : ThreadSweep(cores)) {
    for (bool stealing : {false, true}) {
      if (threads == 1 && stealing) continue;
      MaximalCliqueOptions options;
      options.engine.num_threads = threads;
      options.engine.work_stealing = stealing;
      options.engine.distribution = InitialDistribution::kBlock;
      options.split_depth = stealing ? 3 : 1;
      MaximalCliqueResult r = MaximalCliques(g, options);
      if (threads == 1) baseline = r.task_stats.wall_seconds;
      table.AddRow(
          {Fmt("%u", threads), stealing ? "yes" : "no",
           Fmt("%.1f", r.task_stats.wall_seconds * 1e3),
           Fmt("%.2f", r.task_stats.ParallelEfficiency()),
           Human(r.task_stats.steals),
           Human(r.task_stats.failed_steal_attempts),
           Human(r.task_stats.parks),
           Fmt("%.2fx", baseline / std::max(1e-9,
                                            r.task_stats.wall_seconds))});
    }
  }
  table.Print();
  std::printf("\nShape check: at every thread count (including the exact "
              "%u-core row, not just powers of two), stealing keeps\n"
              "parallel efficiency near 1 while the static block shard "
              "loses time to whichever worker drew the hub roots — the\n"
              "imbalance task splitting + stealing removes. (On larger "
              "machines the gap widens with the thread count.)\n", cores);

  Banner("C5b", "per-root tasks vs adaptive prefix splitting (DFS matcher)");
  // A hub-dominated graph and a clique query: almost all 4-clique
  // embeddings live inside the top hubs' neighborhoods, so a handful of
  // root tasks carry nearly the whole search tree. Stealing alone
  // cannot subdivide them; depth-bounded prefix splitting can.
  Graph hub = BarabasiAlbert(4000, 25, 11);
  Graph query = CliquePattern(4);
  std::printf("data graph: %s, max degree %u, query: 4-clique\n\n",
              hub.ToString().c_str(), hub.MaxDegree());

  Table match_table({"threads", "split depth", "wall ms", "efficiency",
                     "steals", "failed steals", "spawned", "matches",
                     "speedup vs 1t"});
  double match_baseline = 0.0;
  const uint32_t match_threads = std::max(4u, cores);
  for (uint32_t threads : {1u, match_threads}) {
    for (uint32_t split : {0u, 2u}) {
      if (threads == 1 && split != 0) continue;
      MatchOptions options;
      options.engine.num_threads = threads;
      options.split_depth = split;
      MatchResult r = SubgraphMatch(hub, query, options);
      if (threads == 1) match_baseline = r.stats.task_stats.wall_seconds;
      match_table.AddRow(
          {Fmt("%u", threads),
           split == 0 ? "per-root only" : Fmt("%u", split),
           Fmt("%.1f", r.stats.task_stats.wall_seconds * 1e3),
           Fmt("%.2f", r.stats.task_stats.ParallelEfficiency()),
           Human(r.stats.task_stats.steals),
           Human(r.stats.task_stats.failed_steal_attempts),
           Human(r.stats.task_stats.tasks_spawned),
           Human(r.stats.matches),
           Fmt("%.2fx",
               match_baseline /
                   std::max(1e-9, r.stats.task_stats.wall_seconds))});
    }
  }
  match_table.Print();
  std::printf("\nShape check: match counts are identical in every row "
              "(splitting never changes results). At %u threads the\n"
              "per-root-only row is gated by the largest hub-rooted "
              "subtree; adaptive splitting spawns shallow extension\n"
              "subtasks under steal pressure and closes that gap (needs "
              ">= 4 real cores to show as wall-clock).\n", match_threads);
  return 0;
}
