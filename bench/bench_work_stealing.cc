// Experiment C5 (DESIGN.md): work stealing balances the wildly skewed
// tasks of subgraph search (the G-thinker / STMatch / T-DFS load-
// balancing story). Maximal clique enumeration on a hub-heavy graph:
// per-root task cost varies by orders of magnitude, so static
// round-robin partitioning strands most threads idle while one grinds
// through the hubs.

#include <thread>

#include "bench_util.h"
#include "graph/generators.h"
#include "tlag/algos/cliques.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C5", "work stealing vs static task partitioning (Sec. 2)");

  // BA graphs have hub vertices whose clique neighborhoods dominate;
  // with a contiguous static shard of the degeneracy-ordered roots, the
  // heavy tail lands on one worker.
  Graph g = BarabasiAlbert(6000, 40, 5);
  const uint32_t cores = std::max(2u, std::thread::hardware_concurrency());
  std::printf("data graph: %s, max degree %u, %u hardware threads\n\n",
              g.ToString().c_str(), g.MaxDegree(), cores);

  Table table({"threads", "stealing", "wall ms", "efficiency", "steals",
               "speedup vs 1t"});
  double baseline = 0.0;
  for (uint32_t threads = 1; threads <= cores; threads *= 2) {
    for (bool stealing : {false, true}) {
      if (threads == 1 && stealing) continue;
      MaximalCliqueOptions options;
      options.engine.num_threads = threads;
      options.engine.work_stealing = stealing;
      options.engine.distribution = InitialDistribution::kBlock;
      options.split_depth = stealing ? 3 : 1;
      MaximalCliqueResult r = MaximalCliques(g, options);
      if (threads == 1) baseline = r.task_stats.wall_seconds;
      table.AddRow(
          {Fmt("%u", threads), stealing ? "yes" : "no",
           Fmt("%.1f", r.task_stats.wall_seconds * 1e3),
           Fmt("%.2f", r.task_stats.ParallelEfficiency()),
           Human(r.task_stats.steals),
           Fmt("%.2fx", baseline / std::max(1e-9,
                                            r.task_stats.wall_seconds))});
    }
  }
  table.Print();
  std::printf("\nShape check: at every thread count (capped at the %u "
              "physical cores), stealing keeps parallel efficiency near 1\n"
              "while the static block shard loses time to whichever worker "
              "drew the hub roots — the imbalance task splitting +\n"
              "stealing removes. (On larger machines the gap widens with "
              "the thread count.)\n", cores);
  return 0;
}
