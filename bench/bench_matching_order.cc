// Experiment C4 (DESIGN.md): matching order matters — the claim behind
// the compilation-based systems (AutoMine / GraphPi / GraphZero). The
// same backtracking kernel run under a naive id order, a deliberately
// bad order, and the greedy cost-based order, with and without
// symmetry-breaking restrictions.
//
// Expected shape: the optimized order explores far fewer search-tree
// nodes on skewed graphs, and symmetry breaking removes the |Aut(p)|
// duplication — multiplicative savings, matching GraphPi's report of
// order-of-magnitude gaps between orders.

#include "bench_util.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "match/executor.h"
#include "match/pattern.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C4", "matching-order optimization and symmetry breaking (Sec. 2)");

  Graph data = BarabasiAlbert(3000, 4, 11);
  std::printf("data graph: %s (skewed degrees, BA model)\n\n",
              data.ToString().c_str());

  struct NamedPattern {
    const char* name;
    Graph pattern;
  };
  std::vector<NamedPattern> patterns;
  patterns.push_back({"tailed-triangle", TailedTrianglePattern()});
  patterns.push_back({"diamond", DiamondPattern()});
  patterns.push_back({"4-cycle", CyclePattern(4)});
  patterns.push_back({"4-clique", CliquePattern(4)});

  Table table({"pattern", "matches", "nodes(by-id)", "nodes(worst)",
               "nodes(greedy)", "worst/greedy", "nodes(greedy+sym)",
               "|Aut|"});
  for (const NamedPattern& np : patterns) {
    auto run = [&](OrderStrategy order, bool sym) {
      MatchOptions options;
      options.order = order;
      options.symmetry_breaking = sym;
      options.engine.num_threads = 8;
      return SubgraphMatch(data, np.pattern, options).stats;
    };
    MatchStats by_id = run(OrderStrategy::kById, false);
    MatchStats worst = run(OrderStrategy::kWorst, false);
    MatchStats greedy = run(OrderStrategy::kGreedyCost, false);
    MatchStats greedy_sym = run(OrderStrategy::kGreedyCost, true);
    GAL_CHECK(by_id.matches == worst.matches);
    GAL_CHECK(by_id.matches == greedy.matches);
    const size_t aut = Automorphisms(np.pattern).size();
    GAL_CHECK(greedy_sym.matches * aut == greedy.matches);

    table.AddRow({np.name, Human(greedy.matches), Human(by_id.search_nodes),
                  Human(worst.search_nodes), Human(greedy.search_nodes),
                  Fmt("%.1fx", static_cast<double>(worst.search_nodes) /
                                   std::max<uint64_t>(1, greedy.search_nodes)),
                  Human(greedy_sym.search_nodes), Fmt("%zu", aut)});
  }
  table.Print();

  // --- labeled queries: candidate selectivity drives the order ----------
  // Skewed label distribution: label 0 covers most vertices, label 3 is
  // rare. Starting the search at the rare end is the classic win of
  // cost-based ordering.
  Graph labeled = data;
  {
    std::vector<Label> labels(labeled.NumVertices());
    Rng rng(3);
    for (Label& l : labels) {
      const double r = rng.NextDouble();
      l = r < 0.70 ? 0 : r < 0.90 ? 1 : r < 0.98 ? 2 : 3;
    }
    GAL_CHECK_OK(labeled.SetLabels(std::move(labels)));
  }
  std::printf("\n-- labeled data (70%%/20%%/8%%/2%% label skew), labeled "
              "tailed-triangle query --\n");
  Table labeled_table({"query labels", "matches", "nodes(worst)",
                       "nodes(greedy)", "worst/greedy"});
  for (const auto& [name, qlabels] :
       std::vector<std::pair<const char*, std::vector<Label>>>{
           {"common anchor (0,0,0,0)", {0, 0, 0, 0}},
           {"rare tail (0,0,0,3)", {0, 0, 0, 3}},
           {"rare core (3,0,0,0)", {3, 0, 0, 0}}}) {
    Graph q = TailedTrianglePattern();
    GAL_CHECK_OK(q.SetLabels(std::vector<Label>(qlabels)));
    MatchOptions worst;
    worst.order = OrderStrategy::kWorst;
    MatchOptions greedy;
    greedy.order = OrderStrategy::kGreedyCost;
    MatchStats w = SubgraphMatch(labeled, q, worst).stats;
    MatchStats g = SubgraphMatch(labeled, q, greedy).stats;
    GAL_CHECK(w.matches == g.matches);
    labeled_table.AddRow(
        {name, Human(g.matches), Human(w.search_nodes),
         Human(g.search_nodes),
         Fmt("%.1fx", static_cast<double>(w.search_nodes) /
                          std::max<uint64_t>(1, g.search_nodes))});
  }
  labeled_table.Print();
  std::printf("\nShape check: on unlabeled skewed data the greedy order "
              "beats the pessimal one where connectivity allows a choice;\n"
              "with label selectivity the gap grows to an order of "
              "magnitude, and symmetry breaking divides result multiplicity "
              "by |Aut| —\nthe two levers AutoMine/GraphPi/GraphZero "
              "compile into their plans.\n");
  return 0;
}
