// Experiment C9 (DESIGN.md): model-synchronization paradigms — BSP
// (fresh halo exchange every epoch), bounded staleness s ∈ {2,4,8}
// (P3 / Dorylus), and Sancus's drift-adaptive broadcast skipping. Same
// model, same data, same partition; only the freshness policy differs.

#include <thread>

#include "bench_util.h"
#include "dist/dist_gcn.h"
#include "dist/pipeline.h"
#include "gnn/dataset.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C9", "sync vs bounded staleness vs Sancus (Sec. 3)");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 900;
  data_options.num_classes = 4;
  data_options.noise = 2.0;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  const uint32_t kEpochs = 40;
  std::printf("dataset: %s, 4 workers, %u epochs\n\n",
              ds.graph.ToString().c_str(), kEpochs);

  Table table({"paradigm", "comm MB", "exchanges", "skipped", "accuracy",
               "final loss", "sim total ms"});
  auto run = [&](const char* name, SyncMode mode, uint32_t bound,
                 double drift) {
    DistGcnConfig config;
    config.epochs = kEpochs;
    config.sync = mode;
    config.staleness_bound = bound;
    config.sancus_drift_threshold = drift;
    config.overlap_comm_compute = true;
    DistGcnReport r = TrainDistGcn(ds, config);
    table.AddRow({name, Fmt("%.2f", r.comm_bytes / 1e6),
                  Human(r.broadcasts_sent), Human(r.broadcasts_skipped),
                  Fmt("%.3f", r.final_test_accuracy),
                  Fmt("%.3f", r.epoch_loss.back()),
                  Fmt("%.1f", r.simulated_epoch_seconds * 1e3)});
    return r;
  };

  DistGcnReport bsp = run("BSP (sync)", SyncMode::kBsp, 0, 0.0);
  run("bounded s=2", SyncMode::kBoundedStaleness, 2, 0.0);
  run("bounded s=4", SyncMode::kBoundedStaleness, 4, 0.0);
  run("bounded s=8", SyncMode::kBoundedStaleness, 8, 0.0);
  run("Sancus (drift 5%)", SyncMode::kSancus, 0, 0.05);
  run("Sancus (drift 15%)", SyncMode::kSancus, 0, 0.15);
  table.Print();

  std::printf("\n-- convergence curve (loss at epoch k) --\n");
  Table curve({"epoch", "BSP", "bounded s=4", "Sancus 5%"});
  DistGcnConfig c4;
  c4.epochs = kEpochs;
  c4.sync = SyncMode::kBoundedStaleness;
  c4.staleness_bound = 4;
  DistGcnReport r4 = TrainDistGcn(ds, c4);
  DistGcnConfig cs;
  cs.epochs = kEpochs;
  cs.sync = SyncMode::kSancus;
  cs.sancus_drift_threshold = 0.05;
  DistGcnReport rs = TrainDistGcn(ds, cs);
  for (uint32_t e : {0u, 4u, 9u, 19u, 39u}) {
    curve.AddRow({Fmt("%u", e + 1), Fmt("%.3f", bsp.epoch_loss[e]),
                  Fmt("%.3f", r4.epoch_loss[e]),
                  Fmt("%.3f", rs.epoch_loss[e])});
  }
  curve.Print();

  std::printf("\n-- BSP per-stage observability (measured spans; modeled "
              "overlap on a virtual clock, hardware_concurrency %u) --\n",
              std::thread::hardware_concurrency());
  Table spans({"stage", "total ms", "p50 ms", "p95 ms", "max ms"});
  for (const StageTimingStat& st : bsp.stage_timings) {
    spans.AddRow({st.name, Fmt("%.1f", st.total_seconds * 1e3),
                  Fmt("%.2f", st.p50_seconds * 1e3),
                  Fmt("%.2f", st.p95_seconds * 1e3),
                  Fmt("%.2f", st.max_seconds * 1e3)});
  }
  spans.Print();

  std::printf("\n-- BSP kernel-class attribution (KernelContext spans across "
              "all four workers) --\n");
  Table kernels({"kernel class", "total ms", "p50 ms", "p95 ms", "max ms"});
  for (const StageTimingStat& st : bsp.kernel_timings) {
    kernels.AddRow({st.name, Fmt("%.1f", st.total_seconds * 1e3),
                    Fmt("%.2f", st.p50_seconds * 1e3),
                    Fmt("%.2f", st.p95_seconds * 1e3),
                    Fmt("%.2f", st.max_seconds * 1e3)});
  }
  kernels.Print();

  std::printf("modeled compute->comm overlap: %.1f ms total (%.2fx vs "
              "serial, %s-bound)\n",
              bsp.modeled_overlap_epoch_seconds * 1e3,
              bsp.modeled_overlap_speedup,
              bsp.overlap_bottleneck_stage == 0 ? "compute" : "comm");

  // -- modeled comm-channel sweep (k executors on the network stage) ---
  // Re-model BSP's compute->comm overlap from the report's per-epoch
  // traces with 1/2/4 parallel channels — the two-level scheduler's
  // k-executor scheduling applied to a modeled *network* stage, no
  // retraining needed.
  std::printf("\n-- modeled comm-channel sweep (BSP traces, k channels) --\n");
  DistGcnConfig bsp_config;  // the network cost model the run used
  Table channels({"channels", "modeled overlap ms", "bottleneck",
                  "comm occupancy"});
  for (uint32_t k : {1u, 2u, 4u}) {
    std::vector<ModeledStageSpec> overlap_stages = {
        {"compute", bsp.epoch_compute_trace, 1},
        ModeledNetworkStage("comm", bsp_config.network, bsp.epoch_comm_bytes,
                            bsp.epoch_comm_messages, k),
    };
    ModeledPipelineResult m = ModelPipelineSchedule(overlap_stages);
    channels.AddRow({Fmt("%u", k), Fmt("%.1f", m.pipelined_seconds * 1e3),
                     m.bottleneck_stage == 0 ? "compute" : "comm",
                     Fmt("%.0f%%", 100.0 * m.stage_occupancy[1])});
  }
  channels.Print();

  std::printf("\nShape check: staleness cuts exchanges (and simulated time) "
              "several-fold at a small accuracy/convergence cost that grows\n"
              "with the bound; Sancus lands near the best of both by "
              "skipping only low-drift broadcasts — the survey's §3 story.\n");
  return 0;
}
