// Experiment C6 (DESIGN.md): frequent subgraph mining in both settings
// the survey distinguishes — a single big graph with MNI support
// (GraMi / ScaleMine / T-FSM) and a transaction database (gSpan /
// PrefixFPM) — with a support-threshold sweep and a thread-scaling
// column for the parallel support evaluation that is T-FSM's
// contribution.

#include <thread>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "fsm/fsm.h"
#include "graph/generators.h"
#include "graph/transaction_db.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C6", "frequent subgraph mining: single-graph (MNI) and "
               "transactions (Sec. 2)");

  // --- single big graph --------------------------------------------------
  Graph data = WithRandomLabels(Rmat(10, 6, 3), 4, 9);
  std::printf("single graph: %s, 4 labels\n\n", data.ToString().c_str());

  const uint32_t cores = std::max(2u, std::thread::hardware_concurrency());
  Table single({"MNI threshold", "frequent patterns", "evaluated",
                "existence checks", "1-thread ms", "N-thread ms",
                "speedup"});
  for (uint32_t support : {160u, 80u, 40u}) {
    SingleGraphFsmOptions options;
    options.min_support = support;
    options.max_edges = 3;
    options.num_threads = 1;
    Timer t1;
    SingleGraphFsmResult serial = MineSingleGraph(data, options);
    const double serial_ms = t1.ElapsedMillis();
    options.num_threads = cores;
    Timer t8;
    SingleGraphFsmResult parallel = MineSingleGraph(data, options);
    const double parallel_ms = t8.ElapsedMillis();
    GAL_CHECK(serial.patterns.size() == parallel.patterns.size());
    single.AddRow({Fmt("%u", support), Fmt("%zu", serial.patterns.size()),
                   Human(serial.stats.patterns_evaluated),
                   Human(serial.stats.existence_checks),
                   Fmt("%.1f", serial_ms), Fmt("%.1f", parallel_ms),
                   Fmt("%.1fx", serial_ms / std::max(1e-9, parallel_ms))});
  }
  single.Print();

  // --- transaction database ----------------------------------------------
  MoleculeDbOptions db_options;
  db_options.num_transactions = 120;
  db_options.vertices_per_graph = 16;
  TransactionDb db = SyntheticMoleculeDb(db_options, 17);
  std::printf("\ntransaction DB: %zu synthetic molecules, 2 classes\n\n",
              db.size());

  Table tx({"support", "frequent patterns", "evaluated", "1-thread ms",
            "N-thread ms", "speedup"});
  for (uint32_t support : {80u, 50u, 30u}) {
    TransactionFsmOptions options;
    options.min_support = support;
    options.max_edges = 4;
    options.num_threads = 1;
    Timer t1;
    TransactionFsmResult serial = MineTransactions(db, options);
    const double serial_ms = t1.ElapsedMillis();
    options.num_threads = cores;
    Timer t8;
    TransactionFsmResult parallel = MineTransactions(db, options);
    const double parallel_ms = t8.ElapsedMillis();
    GAL_CHECK(serial.patterns.size() == parallel.patterns.size());
    tx.AddRow({Fmt("%u", support), Fmt("%zu", serial.patterns.size()),
               Human(serial.stats.patterns_evaluated), Fmt("%.1f", serial_ms),
               Fmt("%.1f", parallel_ms),
               Fmt("%.1fx", serial_ms / std::max(1e-9, parallel_ms))});
  }
  tx.Print();
  std::printf("\nShape check: pattern counts rise as the threshold drops; "
              "parallel support evaluation (T-FSM) and parallel pattern\n"
              "tasks (PrefixFPM) scale with the available cores (%u here) "
              "at low thresholds where support evaluation dominates.\n",
              cores);
  return 0;
}
