// Experiment C11 (DESIGN.md): operator scheduling — pipelining the
// sample -> gather -> compute stages of mini-batch GNN training (BGL's
// factored executors, ByteGNN's two-level scheduling, P3's pipelined
// phases) vs running them back-to-back.

#include <memory>
#include <thread>

#include "bench_util.h"
#include "dist/pipeline.h"
#include "gnn/dataset.h"
#include "gnn/sampler.h"
#include "nn/gcn.h"
#include "nn/optimizer.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C11", "pipelined operator scheduling for mini-batch GNN (Sec. 3)");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 2000;
  data_options.num_classes = 4;
  data_options.feature_dim = 64;
  data_options.p_in = 0.02;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);

  const uint32_t kBatch = 64;
  std::vector<VertexId> train = ds.TrainVertices();
  const uint32_t num_batches =
      static_cast<uint32_t>(train.size() / kBatch);
  // Deep fan-out makes sampling the dominant stage — the ByteGNN
  // motivation: the bottleneck is a per-batch-independent stage that can
  // be widened, unlike the shared-state optimizer step.
  const std::vector<uint32_t> kFanout = {20, 15};
  std::printf("dataset: %s; %u batches of %u seeds, fanout {20,15}\n\n",
              ds.graph.ToString().c_str(), num_batches, kBatch);

  GcnConfig model_config;
  model_config.dims = {ds.features.cols(), 8, ds.num_classes};
  GcnModel model(model_config);
  Adam opt(0.01f);
  opt.Attach(model.Parameters());

  // Stage state handed batch-to-batch (single producer/consumer per
  // stage boundary because the pipeline is batch-ordered).
  std::vector<MiniBatch> sampled(num_batches);
  std::vector<Matrix> gathered(num_batches);

  std::vector<PipelineStage> stages;
  stages.push_back({"sample", [&](uint32_t b) {
    std::vector<VertexId> seeds(train.begin() + b * kBatch,
                                train.begin() + (b + 1) * kBatch);
    sampled[b] = BuildMiniBatch(ds.graph, seeds, kFanout, 7 + b);
  }});
  stages.push_back({"gather", [&](uint32_t b) {
    const std::vector<VertexId>& rows = sampled[b].blocks[0].input_vertices;
    Matrix x(static_cast<uint32_t>(rows.size()), ds.features.cols());
    for (uint32_t i = 0; i < rows.size(); ++i) {
      const float* src = ds.features.row(rows[i]);
      std::copy(src, src + ds.features.cols(), x.row(i));
    }
    gathered[b] = std::move(x);
  }});
  stages.push_back({"compute", [&](uint32_t b) {
    const MiniBatch& batch = sampled[b];
    AggregateFn agg = [&batch](const Matrix& h, uint32_t layer,
                               bool backward) {
      const SparseMatrix& op = batch.blocks[layer].op;
      return backward ? op.TransposeMultiply(h) : op.Multiply(h);
    };
    Matrix logits = model.Forward(gathered[b], agg);
    const std::vector<VertexId>& seeds = batch.blocks.back().output_vertices;
    std::vector<int32_t> labels(seeds.size());
    std::vector<uint8_t> mask(seeds.size(), 1);
    for (size_t i = 0; i < seeds.size(); ++i) {
      labels[i] = ds.labels[seeds[i]];
    }
    SoftmaxXentResult loss = SoftmaxCrossEntropy(logits, labels, mask);
    opt.Step(model.Backward(loss.grad, agg));
  }});

  PipelineReport report = RunPipeline(stages, num_batches);

  std::printf("hardware_concurrency: %u (%zu stages -> measured overlap %s)\n\n",
              report.hardware_concurrency, stages.size(),
              report.overlap_feasible ? "feasible" : "INFEASIBLE on this host");

  Table table({"execution", "epoch wall ms", "speedup"});
  table.AddRow({"serial (stage-by-stage)",
                Fmt("%.1f", report.serial_seconds * 1e3), "1.00x"});
  table.AddRow({"pipelined, measured (one thread/stage)",
                Fmt("%.1f", report.pipelined_seconds * 1e3),
                Fmt("%.2fx", report.measured_speedup)});
  table.AddRow({"pipelined, modeled (one executor/stage)",
                Fmt("%.1f", report.modeled_pipelined_seconds * 1e3),
                Fmt("%.2fx", report.modeled_speedup)});
  table.Print();
  std::printf("\ncritical path (longest single-batch chain): %.1f ms; "
              "bottleneck stage: %s\n",
              report.critical_path_seconds * 1e3,
              report.stage_names[report.bottleneck_stage].c_str());

  std::printf("\n-- per-stage observability --\n");
  Table stages_table({"stage", "busy ms", "share", "busy p50/p95 ms",
                      "stall p50/p95 ms", "modeled fill/stall/drain ms"});
  for (size_t s = 0; s < report.stages.size(); ++s) {
    const PipelineStageStats& st = report.stages[s];
    stages_table.AddRow(
        {st.name, Fmt("%.1f", st.serial_busy_seconds * 1e3),
         Fmt("%.0f%%", 100.0 * st.serial_busy_seconds /
                           std::max(1e-9, report.serial_seconds)),
         Fmt("%.2f/%.2f", st.busy_p50_seconds * 1e3,
             st.busy_p95_seconds * 1e3),
         Fmt("%.2f/%.2f", st.stall_p50_seconds * 1e3,
             st.stall_p95_seconds * 1e3),
         Fmt("%.1f/%.1f/%.1f", st.modeled_fill_seconds * 1e3,
             st.modeled_stall_seconds * 1e3,
             st.modeled_drain_seconds * 1e3)});
  }
  stages_table.Print();
  std::printf("\nShape check: the modeled pipeline wall time approaches the "
              "busiest single stage instead of the stage sum — the\n"
              "utilization win BGL/ByteGNN get from giving sampling, "
              "gathering and compute their own executors. The measured\n"
              "number only matches when hardware_concurrency covers the "
              "stage count; the modeled one is core-count-independent.\n");

  // -- two-level scheduling: widen the per-batch-independent stages ----
  // sample and gather write only their own batch's slot, so they take
  // k executors each; compute mutates the shared model/optimizer and
  // must stay at 1. Throughput should improve monotonically 1 -> 2 on
  // the modeled numbers everywhere, and on measured numbers wherever
  // the host has cores to back the executors.
  std::printf("\n-- executor sweep (k executors on sample+gather; "
              "compute stays 1) --\n");
  Table sweep({"k", "measured ms", "measured speedup", "modeled ms",
               "modeled speedup", "modeled bottleneck", "occupancy"});
  std::string first_bottleneck, last_bottleneck;
  for (uint32_t k : {1u, 2u, 4u}) {
    stages[0].executors = k;
    stages[1].executors = k;
    stages[2].executors = 1;
    PipelineReport r = RunPipeline(stages, num_batches);
    // Modeled side of the row: the *first* run's serial trace replayed
    // at this k, so the modeled column is one deterministic sweep
    // instead of three noisy re-measurements.
    std::vector<ModeledStageSpec> what_if = report.serial_stage_traces;
    what_if[0].executors = k;
    what_if[1].executors = k;
    what_if[2].executors = 1;
    ModeledPipelineResult m = ModelPipelineSchedule(what_if);
    if (k == 1) first_bottleneck = what_if[m.bottleneck_stage].name;
    last_bottleneck = what_if[m.bottleneck_stage].name;
    sweep.AddRow({Fmt("%u", k), Fmt("%.1f", r.pipelined_seconds * 1e3),
                  Fmt("%.2fx", r.measured_speedup),
                  Fmt("%.1f", m.pipelined_seconds * 1e3),
                  Fmt("%.2fx", m.speedup),
                  what_if[m.bottleneck_stage].name,
                  Fmt("%.0f%%", 100.0 * m.stage_occupancy[m.bottleneck_stage])});
  }
  sweep.Print();
  std::printf("\nShape check: widening only helps while a widenable stage is "
              "the bottleneck. This trace starts %s-bound and ends\n"
              "%s-bound: once the serial compute stage (shared optimizer "
              "step) is the bottleneck, more executors cannot help —\n"
              "the Amdahl floor. Measured numbers track the modeled sweep "
              "only when hardware_concurrency >= total executors; the\n"
              "CoreBudget warns and clamps in-stage kernels when it does "
              "not.\n",
              first_bottleneck.c_str(), last_bottleneck.c_str());
  return 0;
}
