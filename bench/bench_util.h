#ifndef GAL_BENCH_BENCH_UTIL_H_
#define GAL_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <algorithm>
#include <string>
#include <vector>

namespace gal::bench {

/// Minimal fixed-width table printer so every bench emits the same
/// paper-style rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

inline std::string Human(uint64_t n) {
  char buffer[64];
  if (n >= 1000000000ull) {
    std::snprintf(buffer, sizeof(buffer), "%.2fG", n / 1e9);
  } else if (n >= 1000000ull) {
    std::snprintf(buffer, sizeof(buffer), "%.2fM", n / 1e6);
  } else if (n >= 10000ull) {
    std::snprintf(buffer, sizeof(buffer), "%.1fk", n / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(n));
  }
  return buffer;
}

inline void Banner(const char* id, const char* title) {
  std::printf("\n==== %s: %s ====\n", id, title);
}

}  // namespace gal::bench

#endif  // GAL_BENCH_BENCH_UTIL_H_
