// Ablation (survey §1, final paragraph): "Subgraph GNNs which model
// graphs as collections of subgraphs are found to be more expressive
// than regular GNNs" [Alsentzer et al.; Frasca et al.]. The textbook
// demonstration: pairs of non-isomorphic graphs that 1-WL message
// passing cannot distinguish (same degree sequences, same local trees)
// become trivially separable once vertices carry local subgraph counts.

#include "bench_util.h"
#include "gnn/graph_classifier.h"
#include "graph/generators.h"
#include "graph/transaction_db.h"

namespace {

using namespace gal;

Graph WithZeroLabels(Graph g) {
  GAL_CHECK_OK(g.SetLabels(std::vector<Label>(g.NumVertices(), 0)));
  return g;
}

/// Class 0 vs class 1, `copies` of each, classic WL-blind pairs.
TransactionDb BlindSpotDb(int which, uint32_t copies) {
  TransactionDb db;
  for (uint32_t i = 0; i < copies; ++i) {
    switch (which) {
      case 0: {  // C6 vs 2xC3 (both 2-regular on 6 vertices)
        db.Add(WithZeroLabels(Cycle(6)), 0);
        Graph two = std::move(
            Graph::FromEdges(
                6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}, {})
                .value());
        db.Add(WithZeroLabels(std::move(two)), 1);
        break;
      }
      default: {  // C8 vs 2xC4 (both 2-regular on 8 vertices)
        db.Add(WithZeroLabels(Cycle(8)), 0);
        Graph two = std::move(
            Graph::FromEdges(8,
                             {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                              {4, 5}, {5, 6}, {6, 7}, {7, 4}},
                             {})
                .value());
        db.Add(WithZeroLabels(std::move(two)), 1);
        break;
      }
    }
  }
  return db;
}

}  // namespace

int main() {
  using namespace gal::bench;
  Banner("SG", "Subgraph GNN expressiveness beyond the 1-WL ceiling "
               "(Sec. 1)");

  Table table({"task", "plain GNN train acc", "plain GNN test acc",
               "+subgraph counts train", "+subgraph counts test"});
  struct Task {
    const char* name;
    int which;
  };
  for (const Task& task : {Task{"C6 vs 2xC3 (triangle-blind)", 0},
                           Task{"C8 vs 2xC4 (4-cycle-blind)", 1}}) {
    TransactionDb db = BlindSpotDb(task.which, 12);
    GraphClassifierConfig plain;
    plain.epochs = 150;
    plain.subgraph_features = false;
    GraphClassifierReport rp = TrainGraphClassifier(db, plain);
    GraphClassifierConfig sub = plain;
    sub.subgraph_features = true;
    GraphClassifierReport rs = TrainGraphClassifier(db, sub);
    table.AddRow({task.name, Fmt("%.2f", rp.train_accuracy),
                  Fmt("%.2f", rp.test_accuracy),
                  Fmt("%.2f", rs.train_accuracy),
                  Fmt("%.2f", rs.test_accuracy)});
  }
  table.Print();
  std::printf("\nShape check: both pairs are regular graphs with identical "
              "1-WL color refinements, so the plain message-passing GNN\n"
              "cannot even FIT the training set (stuck at chance); local "
              "triangle/4-cycle counts — the cheapest 'collection of\n"
              "subgraphs' view — separate them perfectly. The survey's "
              "Subgraph-GNN expressiveness claim in four rows.\n");
  return 0;
}
