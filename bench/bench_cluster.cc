// Experiment: the unified simulated-cluster substrate (src/cluster/).
// One ClusterRuntime runs several distributed engines in sequence —
// TLAV PageRank, TLAG task-based triangle counting, BFS both push-only
// and direction-optimizing (src/frontier/), and a dist-GNN training run
// — so their communication volumes come from the *same* TrafficLedger
// and their modeled times from the *same* VirtualClock: one comparable
// axis across the survey's workload families. Width resolves from
// GAL_CLUSTER_WORKERS (default 4).

#include <cstdio>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "common/timer.h"
#include "dist/dist_gcn.h"
#include "gnn/dataset.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/traversal.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("CLUSTER", "three engines, one ledger, one clock");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 600;
  data_options.num_classes = 4;
  data_options.feature_dim = 32;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  const Graph& g = ds.graph;

  ClusterRuntime runtime;  // width from GAL_CLUSTER_WORKERS, default 4
  std::printf("graph: %s, %u simulated workers\n\n", g.ToString().c_str(),
              runtime.num_workers());

  Table table({"job", "rounds", "cross MB", "wire msgs", "local MB",
               "modeled ms", "wall ms"});
  struct JobMarks {
    TrafficSnapshot ledger;
    size_t rounds;
  };
  auto mark = [&] {
    return JobMarks{runtime.ledger().Snapshot(), runtime.clock().rounds()};
  };
  auto add_row = [&](const char* name, const JobMarks& m, double wall_s) {
    const TrafficSnapshot now = runtime.ledger().Snapshot();
    table.AddRow({name, Fmt("%zu", runtime.clock().rounds() - m.rounds),
                  Fmt("%.3f", (now.cross_bytes - m.ledger.cross_bytes) / 1e6),
                  Human(now.cross_messages - m.ledger.cross_messages),
                  Fmt("%.3f", (now.local_bytes - m.ledger.local_bytes) / 1e6),
                  Fmt("%.3f", runtime.clock().SecondsSince(m.rounds) * 1e3),
                  Fmt("%.1f", wall_s * 1e3)});
  };

  // 1. TLAV PageRank: BSP supersteps through the exchange channel.
  JobMarks m = mark();
  PageRankOptions pr_options;
  pr_options.iterations = 10;
  pr_options.engine.cluster = &runtime;
  const PageRankResult pr = PageRank(g, pr_options);
  add_row("TLAV PageRank", m, pr.stats.wall_seconds);

  // 2. TLAG triangle counting: work-stealing tasks attributing the
  // partition homes of every adjacency row they intersect.
  m = mark();
  TaskEngineConfig tri_config;
  tri_config.cluster = &runtime;
  const TriangleCountResult tri = TaskTriangleCount(g, tri_config);
  add_row("TLAG triangles", m, tri.wall_seconds);

  // 3. BFS twice on the same runtime — push-only vs direction-optimizing
  // (src/frontier/) — so the ledger shows the comm-volume flip directly.
  TraversalOptions bfs_push;
  bfs_push.engine.cluster = &runtime;
  bfs_push.direction.mode = DirectionMode::kPushOnly;
  m = mark();
  const BfsResult bfs_a = TlavBfs(g, 0, bfs_push);
  add_row("BFS push-only", m, bfs_a.stats.wall_seconds);
  TraversalOptions bfs_opt;
  bfs_opt.engine.cluster = &runtime;
  bfs_opt.direction.mode = DirectionMode::kAuto;
  m = mark();
  const BfsResult bfs_b = TlavBfs(g, 0, bfs_opt);
  add_row("BFS dir-opt", m, bfs_b.stats.wall_seconds);

  // 4. Dist-GNN: halo exchanges + optimizer epochs on the same ledger.
  m = mark();
  DistGcnConfig gcn;
  gcn.cluster = &runtime;
  gcn.epochs = 10;
  Timer gcn_timer;
  const DistGcnReport gnn = TrainDistGcn(ds, gcn);
  add_row("dist-GCN (10 epochs)", m, gcn_timer.ElapsedSeconds());

  table.Print();
  GAL_CHECK(bfs_a.distance == bfs_b.distance);
  std::printf("dist-GCN accuracy: %.3f, triangles: %s; BFS dir-opt: "
              "%u/%u supersteps pulled, identical distances\n",
              gnn.final_test_accuracy, Human(tri.triangles).c_str(),
              bfs_b.stats.pull_supersteps, bfs_b.stats.supersteps);

  const TrafficSnapshot total = runtime.ledger().Snapshot();
  std::printf(
      "\ncluster totals: %.3f MB across the wire in %s messages, "
      "%zu rounds, %.3f modeled s\n",
      total.cross_bytes / 1e6, Human(total.cross_messages).c_str(),
      runtime.clock().rounds(), runtime.clock().seconds());

  std::printf("\nper-worker wire view (whole run):\n");
  Table workers({"worker", "sent MB", "recv MB", "local MB"});
  for (uint32_t w = 0; w < runtime.num_workers(); ++w) {
    const WorkerTraffic t = runtime.ledger().Worker(w);
    workers.AddRow({Fmt("%u", w), Fmt("%.3f", t.sent_bytes / 1e6),
                    Fmt("%.3f", t.recv_bytes / 1e6),
                    Fmt("%.3f", t.local_bytes / 1e6)});
  }
  workers.Print();
  std::printf("sent-bytes imbalance (max/mean): %.2f\n",
              runtime.ledger().SentBytesImbalance());

  std::printf(
      "\nShape check: PageRank's wire volume dwarfs its local traffic "
      "(every superstep crosses the cut), the mining job is the inverse "
      "(intersections mostly touch home rows), and the GNN epochs pay "
      "fat feature/embedding rows per exchange. One ledger, one clock — "
      "the numbers are directly comparable.\n");
  return 0;
}
