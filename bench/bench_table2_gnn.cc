// Table 2 (DESIGN.md experiment T2): "Techniques of Distributed GNN
// Training Systems". The survey's technique columns — graph data
// communication reduction (sampling / partitioning / k-hop
// materialization), operator scheduling (pipelining), model computation
// placement, model synchronization (staleness), and compression — each
// demonstrated by running the simulated trainer with the technique on
// vs off, then the per-system matrix reprinted with the measured gain.

#include "bench_util.h"
#include "cluster/network.h"
#include "dist/cost_model.h"
#include "dist/dist_gcn.h"
#include "gnn/dataset.h"
#include "gnn/sage.h"
#include "gnn/sampler.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("T2", "distributed-GNN technique matrix, demonstrated live");

  PlantedDatasetOptions data_options;
  data_options.num_vertices = 900;
  data_options.num_classes = 4;
  data_options.feature_dim = 32;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  std::printf("dataset: %s, 4 simulated workers\n\n",
              ds.graph.ToString().c_str());

  DistGcnConfig base;
  base.epochs = 15;
  DistGcnReport baseline = TrainDistGcn(ds, base);

  std::printf("-- technique ablations (vs BSP/hash/fp32 baseline: "
              "%.2f MB comm, accuracy %.3f) --\n",
              baseline.comm_bytes / 1e6, baseline.final_test_accuracy);
  Table ablate({"technique", "systems using it", "measured effect"});

  {  // Neighborhood sampling (needs a dense graph to have bite).
    PlantedDatasetOptions dense_options;
    dense_options.num_vertices = 2000;
    dense_options.num_classes = 4;
    dense_options.p_in = 0.1;
    dense_options.p_out = 0.005;
    NodeClassificationDataset dense = MakePlantedDataset(dense_options);
    SageConfig full;
    full.epochs = 2;
    full.batch_size = 16;
    full.fanouts = {0, 0};
    SageConfig sampled = full;
    sampled.fanouts = {5, 5};
    SageReport rf = TrainSageMinibatch(dense, full);
    SageReport rs = TrainSageMinibatch(dense, sampled);
    ablate.AddRow({"neighborhood sampling", "Euler, AliGraph, ByteGNN, "
                   "DistDGL, AGL, BGL",
                   Fmt("gathered %.1f -> %.1f MB (acc %.3f -> %.3f)",
                       rf.feature_bytes_gathered / 1e6,
                       rs.feature_bytes_gathered / 1e6,
                       rf.final_test_accuracy, rs.final_test_accuracy)});
  }
  {  // Partitioning.
    DistGcnConfig ml = base;
    ml.partition = PartitionScheme::kMultilevel;
    DistGcnReport r = TrainDistGcn(ds, ml);
    ablate.AddRow({"graph partitioning", "DistDGL, DGCL (METIS); ByteGNN, "
                   "BGL (seed blocks)",
                   Fmt("comm %.2f -> %.2f MB (cut %s -> %s)",
                       baseline.comm_bytes / 1e6, r.comm_bytes / 1e6,
                       Human(baseline.edge_cut).c_str(),
                       Human(r.edge_cut).c_str())});
  }
  {  // k-hop materialization (AGL).
    std::vector<VertexId> train = ds.TrainVertices();
    KHopMaterializationStats k =
        MaterializeKHop(ds.graph, train, {10, 10}, ds.features.cols(), 3);
    ablate.AddRow({"k-hop materialization", "AGL (MapReduce preprocessing)",
                   Fmt("zero train-time graph comm for %.1f MB storage "
                       "(%.1fx blowup)",
                       k.storage_bytes / 1e6, k.blowup_vs_graph)});
  }
  {  // Feature/model split (P3) — its sweet spot is fat raw features.
    PlantedDatasetOptions fat_options;
    fat_options.num_vertices = 900;
    fat_options.num_classes = 4;
    fat_options.feature_dim = 256;
    NodeClassificationDataset fat = MakePlantedDataset(fat_options);
    DistGcnConfig dp = base;
    DistGcnConfig p3 = base;
    p3.p3_feature_split = true;
    DistGcnReport rd = TrainDistGcn(fat, dp);
    DistGcnReport rp = TrainDistGcn(fat, p3);
    ablate.AddRow({"feature-dim partitioning", "P3 (push-pull hybrid "
                   "parallelism)",
                   Fmt("256-dim features: comm %.2f -> %.2f MB, same loss "
                       "curve", rd.comm_bytes / 1e6, rp.comm_bytes / 1e6)});
  }
  {  // Bounded staleness.
    DistGcnConfig stale = base;
    stale.sync = SyncMode::kBoundedStaleness;
    stale.staleness_bound = 4;
    DistGcnReport r = TrainDistGcn(ds, stale);
    ablate.AddRow({"bounded-staleness async", "P3, Dorylus",
                   Fmt("exchanges %s -> %s, acc %.3f -> %.3f",
                       Human(baseline.broadcasts_sent).c_str(),
                       Human(r.broadcasts_sent).c_str(),
                       baseline.final_test_accuracy,
                       r.final_test_accuracy)});
  }
  {  // Staleness-aware skipping (Sancus).
    DistGcnConfig sancus = base;
    sancus.sync = SyncMode::kSancus;
    DistGcnReport r = TrainDistGcn(ds, sancus);
    ablate.AddRow({"staleness-aware skipping", "Sancus",
                   Fmt("%s broadcasts skipped adaptively, acc %.3f",
                       Human(r.broadcasts_skipped).c_str(),
                       r.final_test_accuracy)});
  }
  {  // Quantization.
    DistGcnConfig q = base;
    q.quantization = Quantization::kInt8;
    q.error_compensation = true;
    DistGcnReport r = TrainDistGcn(ds, q);
    ablate.AddRow({"lossy message compression", "EC-Graph, EXACT, F2CGT, "
                   "Sylvie",
                   Fmt("comm %.2f -> %.2f MB with int8+EC, acc %.3f",
                       baseline.comm_bytes / 1e6, r.comm_bytes / 1e6,
                       r.final_test_accuracy)});
  }
  {  // High-bandwidth fabric (DGCL).
    DistGcnConfig nvlink = base;
    nvlink.network = NetworkCostModel::Nvlink();
    DistGcnReport r = TrainDistGcn(ds, nvlink);
    ablate.AddRow({"NVLink-aware comm plans", "DGCL",
                   Fmt("modeled comm time %.2f -> %.4f ms/epoch",
                       baseline.comm_seconds * 1e3 / base.epochs,
                       r.comm_seconds * 1e3 / base.epochs)});
  }
  {  // Serverless (Dorylus).
    CostReport lambda = EvaluateDeployment(
        CloudDeployment::CpuPlusServerless(),
        baseline.simulated_epoch_seconds / base.epochs);
    ablate.AddRow({"serverless compute", "Dorylus",
                   Fmt("value %.2fx the CPU baseline per dollar",
                       lambda.value)});
  }
  {  // CPU-memory offload (HongTu / DistGNN full-graph).
    DistGcnConfig overlap = base;
    overlap.overlap_comm_compute = true;
    DistGcnReport r = TrainDistGcn(ds, overlap);
    ablate.AddRow({"full-graph on CPU cluster / offload", "DistGNN, HongTu, "
                   "NeutronStar",
                   Fmt("overlap: epoch %.2f -> %.2f ms simulated",
                       baseline.simulated_epoch_seconds * 1e3 / base.epochs,
                       r.simulated_epoch_seconds * 1e3 / base.epochs)});
  }
  ablate.Print();

  // --- The Table 2 matrix itself -----------------------------------------
  std::printf("\n-- Table 2: systems x techniques (x = uses technique; all "
              "columns demonstrated above) --\n");
  Table matrix({"system", "sampling/partition", "scheduling/pipeline",
                "staleness/async", "compression", "offload/cloud"});
  matrix.AddRow({"Euler", "x (sampling)", "x (operators)", "", "", ""});
  matrix.AddRow({"AliGraph", "x (sampling+cache)", "x (operators)", "", "",
                 ""});
  matrix.AddRow({"DistDGL", "x (METIS+sampling)", "", "", "", ""});
  matrix.AddRow({"AGL", "x (k-hop materialization)", "", "", "", ""});
  matrix.AddRow({"P3", "x (feature split)", "x (pipeline)",
                 "x (bounded staleness)", "", ""});
  matrix.AddRow({"NeutronStar", "", "x (auto-diff dependency)", "", "", ""});
  matrix.AddRow({"ByteGNN", "x (BFS blocks+sampling)", "x (two-level)", "",
                 "", ""});
  matrix.AddRow({"DGCL", "x (METIS)", "", "", "", "x (NVLink plans)"});
  matrix.AddRow({"BGL", "x (BFS blocks+cache)", "x (factored pipeline)", "",
                 "", ""});
  matrix.AddRow({"Sancus", "", "", "x (staleness-aware)", "", ""});
  matrix.AddRow({"Dorylus", "", "x (pipeline)", "x (bounded staleness)", "",
                 "x (serverless)"});
  matrix.AddRow({"DistGNN", "x (min vertex-cut)", "", "x (delayed updates)",
                 "", "x (CPU full-graph)"});
  matrix.AddRow({"HongTu", "x (partition)", "", "", "",
                 "x (CPU-mem offload)"});
  matrix.AddRow({"EC-Graph/EXACT/F2CGT/Sylvie", "", "", "",
                 "x (quantization)", ""});
  matrix.Print();
  return 0;
}
