// Ablation (survey §3 model landscape): the GNN architectures the paper
// names — GCN, GraphSAGE (the concat equations quoted in §3), and GAT —
// trained on identical node-classification tasks: a homophilous
// community graph, a label-random graph where only self features carry
// signal, and a noisy-feature graph where aggregation must denoise.
// The point is not a leaderboard but that architecture choice interacts
// with graph/feature regime — the reason systems must support a model
// zoo, not one hard-wired network.

#include "bench_util.h"
#include "gnn/dataset.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/sage_concat.h"
#include "tensor/sparse.h"

namespace {

using namespace gal;

struct Scores {
  double gcn;
  double sage;
  double gat;
  double mlp;
};

Scores RunAll(const NodeClassificationDataset& ds, uint32_t epochs) {
  TrainConfig train;
  train.epochs = epochs;
  train.weight_decay = 0.002f;
  GcnConfig config;
  config.dims = {ds.features.cols(), 16, ds.num_classes};

  Scores s{};
  {
    SparseMatrix adj = NormalizedAdjacency(ds.graph, AdjNorm::kSymmetric);
    AggregateFn agg = ExactAggregator(&adj);
    GcnModel model(config);
    s.gcn = TrainNodeClassifier(model, ds.features, ds.labels, ds.train_mask,
                                ds.test_mask, agg, train)
                .final_test_accuracy;
  }
  {
    SparseMatrix adj = NormalizedAdjacency(ds.graph, AdjNorm::kNeighborMean);
    AggregateFn agg = ExactAggregator(&adj);
    SageConcatModel model(config);
    s.sage = TrainSageConcatClassifier(model, ds.features, ds.labels,
                                       ds.train_mask, ds.test_mask, agg,
                                       train)
                 .final_test_accuracy;
  }
  {
    GatModel model(&ds.graph, config);
    TrainConfig gat_train = train;
    gat_train.lr = 0.01f;
    s.gat = TrainGatClassifier(model, ds.features, ds.labels, ds.train_mask,
                               ds.test_mask, gat_train)
                .final_test_accuracy;
  }
  {
    AggregateFn identity = [](const Matrix& h, uint32_t, bool) { return h; };
    GcnModel model(config);
    s.mlp = TrainNodeClassifier(model, ds.features, ds.labels, ds.train_mask,
                                ds.test_mask, identity, train)
                .final_test_accuracy;
  }
  return s;
}

}  // namespace

int main() {
  using namespace gal::bench;
  Banner("M1", "the survey's GNN model zoo on three graph/feature regimes");

  Table table({"regime", "MLP (no graph)", "GCN", "GraphSAGE (concat)",
               "GAT"});

  {
    PlantedDatasetOptions opt;  // homophily + moderate feature noise
    opt.num_vertices = 500;
    opt.num_classes = 4;
    opt.noise = 1.5;
    Scores s = RunAll(MakePlantedDataset(opt), 80);
    table.AddRow({"homophilous, noisy features", Fmt("%.3f", s.mlp),
                  Fmt("%.3f", s.gcn), Fmt("%.3f", s.sage),
                  Fmt("%.3f", s.gat)});
  }
  {
    PlantedDatasetOptions opt;  // heavy feature noise: graph is the signal
    opt.num_vertices = 500;
    opt.num_classes = 4;
    opt.p_in = 0.08;
    opt.noise = 3.5;
    Scores s = RunAll(MakePlantedDataset(opt), 80);
    table.AddRow({"homophilous, very noisy features", Fmt("%.3f", s.mlp),
                  Fmt("%.3f", s.gcn), Fmt("%.3f", s.sage),
                  Fmt("%.3f", s.gat)});
  }
  {
    PlantedDatasetOptions opt;  // label-random edges: self features only
    opt.num_vertices = 500;
    opt.num_classes = 4;
    opt.p_in = 0.02;
    opt.p_out = 0.02;
    opt.signal = 1.5;
    opt.noise = 0.4;
    Scores s = RunAll(MakePlantedDataset(opt), 80);
    table.AddRow({"label-random edges, clean features", Fmt("%.3f", s.mlp),
                  Fmt("%.3f", s.gcn), Fmt("%.3f", s.sage),
                  Fmt("%.3f", s.gat)});
  }
  table.Print();
  std::printf("\nShape check: with a homophilous graph the aggregating "
              "models beat the MLP decisively (more so as features get\n"
              "noisier); with label-random edges only GraphSAGE's dedicated "
              "CONCAT self-channel keeps the signal — mean aggregation\n"
              "(GCN) dilutes it and softmax attention (GAT) must *learn* to "
              "focus on the self vertex, which a hard-wired channel gets\n"
              "for free. No single architecture wins every regime — why "
              "GNN systems expose the model rather than hard-coding it.\n");
  return 0;
}
