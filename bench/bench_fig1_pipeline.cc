// Figure 1 (DESIGN.md experiment F1): the survey's pipeline for graph
// analytics and learning, executed end-to-end along all four analytics
// paths:
//   (1) vertex analytics           -> vertex scores (PageRank)
//   (2) vertex analytics + ML      -> structural features -> GNN node
//                                     classification
//   (3) structure analytics        -> dense subgraph structures
//   (4) structure analytics + ML   -> frequent patterns as features ->
//                                     graph classification
// One table row per path with its task, system family, and outcome.

#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "fsm/fsm.h"
#include "gnn/dataset.h"
#include "gnn/features.h"
#include "graph/generators.h"
#include "graph/transaction_db.h"
#include "match/executor.h"
#include "nn/gcn.h"
#include "nn/optimizer.h"
#include "tensor/sparse.h"
#include "tlag/algos/cliques.h"
#include "tlav/algos/pagerank.h"

namespace {

using namespace gal;

/// Path 4 helper: classify graph transactions by frequent-pattern
/// presence features + a linear softmax head.
double GraphClassificationAccuracy(const TransactionDb& db) {
  TransactionFsmOptions fsm_options;
  fsm_options.min_support = static_cast<uint32_t>(db.size() / 4);
  fsm_options.max_edges = 4;
  TransactionFsmResult fsm = MineTransactions(db, fsm_options);
  if (fsm.patterns.empty()) return 0.0;

  // Feature matrix: pattern-presence indicators.
  const uint32_t dim = static_cast<uint32_t>(fsm.patterns.size());
  Matrix x(static_cast<uint32_t>(db.size()), dim);
  for (uint32_t p = 0; p < dim; ++p) {
    for (uint32_t t : fsm.occurrences[p]) x.at(t, p) = 1.0f;
  }
  std::vector<int32_t> labels(db.size());
  for (uint32_t t = 0; t < db.size(); ++t) labels[t] = db[t].class_label;
  std::vector<uint8_t> train_mask(db.size(), 0);
  std::vector<uint8_t> test_mask(db.size(), 0);
  for (uint32_t t = 0; t < db.size(); ++t) {
    (t % 3 == 0 ? test_mask : train_mask)[t] = 1;
  }

  // Linear classifier == 1-layer GCN with identity aggregation.
  GcnConfig config;
  config.dims = {dim, 2};
  GcnModel model(config);
  AggregateFn identity = [](const Matrix& h, uint32_t, bool) { return h; };
  TrainConfig train;
  train.epochs = 200;
  train.lr = 0.1f;
  // 123-ish binary features vs ~60 training graphs: regularize.
  train.weight_decay = 0.02f;
  TrainReport report = TrainNodeClassifier(model, x, labels, train_mask,
                                           test_mask, identity, train);
  return report.final_test_accuracy;
}

}  // namespace

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("F1", "the graph analytics & learning pipeline, all four paths");

  Table table({"path", "task", "system family", "outcome"});

  // Shared dataset for paths 1-3.
  PlantedDatasetOptions data_options;
  data_options.num_vertices = 600;
  data_options.num_classes = 4;
  data_options.noise = 2.0;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);

  // --- Path 1: vertex analytics ---------------------------------------
  PageRankOptions pr_options;
  pr_options.iterations = 15;
  PageRankResult pr = PageRank(ds.graph, pr_options);
  VertexId top = 0;
  for (VertexId v = 1; v < ds.graph.NumVertices(); ++v) {
    if (pr.ranks[v] > pr.ranks[top]) top = v;
  }
  table.AddRow({"1", "vertex scoring (PageRank)", "TLAV (Pregel-like)",
                Fmt("top vertex %u, %u supersteps", top,
                    pr.stats.supersteps)});

  // --- Path 2: vertex analytics + ML -----------------------------------
  Matrix structural = StructuralFeatures(ds.graph);
  Matrix combined(ds.features.rows(),
                  ds.features.cols() + structural.cols());
  for (uint32_t v = 0; v < combined.rows(); ++v) {
    for (uint32_t j = 0; j < ds.features.cols(); ++j) {
      combined.at(v, j) = ds.features.at(v, j);
    }
    for (uint32_t j = 0; j < structural.cols(); ++j) {
      combined.at(v, ds.features.cols() + j) = structural.at(v, j);
    }
  }
  SparseMatrix adj = NormalizedAdjacency(ds.graph, AdjNorm::kSymmetric);
  AggregateFn aggregate = ExactAggregator(&adj);
  GcnConfig gcn_config;
  gcn_config.dims = {combined.cols(), 16, ds.num_classes};
  GcnModel gcn(gcn_config);
  TrainConfig train_config;
  train_config.epochs = 40;
  TrainReport gnn_report =
      TrainNodeClassifier(gcn, combined, ds.labels, ds.train_mask,
                          ds.test_mask, aggregate, train_config);
  table.AddRow({"2", "features -> GNN node classification",
                "TLAV features + GNN system",
                Fmt("test accuracy %.3f", gnn_report.final_test_accuracy)});

  // --- Path 3: structure analytics --------------------------------------
  // Structure analytics targets dense substructure, so run it on a
  // denser community graph (the kind of social network the survey's
  // community-detection motivation assumes).
  Graph social = PlantedPartition(320, 8, 0.3, 0.01, 5);
  MaximalCliqueOptions clique_options;
  clique_options.min_size = 5;
  MaximalCliqueResult cliques = MaximalCliques(social, clique_options);
  table.AddRow({"3", "community cores (maximal cliques >= 5)",
                "TLAG (G-thinker-like)",
                Fmt("%llu cliques, largest %u",
                    static_cast<unsigned long long>(cliques.count),
                    cliques.largest)});

  // --- Path 4: structure analytics + ML ----------------------------------
  MoleculeDbOptions db_options;
  db_options.num_transactions = 90;
  db_options.vertices_per_graph = 14;
  db_options.num_vertex_labels = 6;  // rarer label combos: crisper motifs
  db_options.extra_edges = 5;
  db_options.motif_rate = 0.9;
  TransactionDb db = SyntheticMoleculeDb(db_options, 21);
  const double accuracy = GraphClassificationAccuracy(db);
  table.AddRow({"4", "frequent patterns -> graph classification",
                "FSM (PrefixFPM-like) + classifier",
                Fmt("test accuracy %.3f", accuracy)});

  table.Print();
  std::printf("\nShape check: every Figure-1 path runs end-to-end on this "
              "library; structural/pattern features are discriminative\n"
              "(paths 2 and 4 reach high accuracy), matching the survey's "
              "motivation for combining analytics with ML.\n");
  return 0;
}
