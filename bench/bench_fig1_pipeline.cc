// Figure 1 (DESIGN.md experiment F1): the survey's pipeline for graph
// analytics and learning, executed end-to-end along all four analytics
// paths:
//   (1) vertex analytics           -> vertex scores (PageRank)
//   (2) vertex analytics + ML      -> structural features -> GNN node
//                                     classification
//   (3) structure analytics        -> dense subgraph structures
//   (4) structure analytics + ML   -> frequent patterns as features ->
//                                     graph classification
// One table row per path with its task, system family, and outcome.
//
// The four paths are run as literal pipeline stages over a sequence of
// graph snapshots (batch = snapshot), so the bench also exercises the
// measured + modeled pipeline executor: stage s of snapshot b overlaps
// stage s+1 of snapshot b-1, exactly the Figure-1 dataflow.

#include <algorithm>
#include <cmath>
#include <thread>

#include "bench_util.h"
#include "dist/pipeline.h"
#include "fsm/fsm.h"
#include "gnn/dataset.h"
#include "gnn/features.h"
#include "graph/generators.h"
#include "graph/transaction_db.h"
#include "match/executor.h"
#include "nn/gcn.h"
#include "nn/optimizer.h"
#include "tensor/sparse.h"
#include "tlag/algos/cliques.h"
#include "tlav/algos/pagerank.h"

namespace {

using namespace gal;

/// Path 4 helper: classify graph transactions by frequent-pattern
/// presence features + a linear softmax head.
double GraphClassificationAccuracy(const TransactionDb& db) {
  TransactionFsmOptions fsm_options;
  fsm_options.min_support = static_cast<uint32_t>(db.size() / 4);
  fsm_options.max_edges = 4;
  TransactionFsmResult fsm = MineTransactions(db, fsm_options);
  if (fsm.patterns.empty()) return 0.0;

  // Feature matrix: pattern-presence indicators.
  const uint32_t dim = static_cast<uint32_t>(fsm.patterns.size());
  Matrix x(static_cast<uint32_t>(db.size()), dim);
  for (uint32_t p = 0; p < dim; ++p) {
    for (uint32_t t : fsm.occurrences[p]) x.at(t, p) = 1.0f;
  }
  std::vector<int32_t> labels(db.size());
  for (uint32_t t = 0; t < db.size(); ++t) labels[t] = db[t].class_label;
  std::vector<uint8_t> train_mask(db.size(), 0);
  std::vector<uint8_t> test_mask(db.size(), 0);
  for (uint32_t t = 0; t < db.size(); ++t) {
    (t % 3 == 0 ? test_mask : train_mask)[t] = 1;
  }

  // Linear classifier == 1-layer GCN with identity aggregation.
  GcnConfig config;
  config.dims = {dim, 2};
  GcnModel model(config);
  AggregateFn identity = [](const Matrix& h, uint32_t, bool) { return h; };
  TrainConfig train;
  train.epochs = 200;
  train.lr = 0.1f;
  // 123-ish binary features vs ~60 training graphs: regularize.
  train.weight_decay = 0.02f;
  TrainReport report = TrainNodeClassifier(model, x, labels, train_mask,
                                           test_mask, identity, train);
  return report.final_test_accuracy;
}

}  // namespace

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("F1", "the graph analytics & learning pipeline, all four paths");

  // Each batch is one graph snapshot flowing through the Figure-1
  // pipeline; different seeds per snapshot, deterministic per batch (so
  // the serial and pipelined passes compute identical results).
  const uint32_t kSnapshots = 3;

  // Per-snapshot state handed stage-to-stage (single producer/consumer
  // per stage boundary because the pipeline is batch-ordered).
  std::vector<NodeClassificationDataset> ds(kSnapshots);
  std::vector<Matrix> structural(kSnapshots);
  std::vector<VertexId> top_vertex(kSnapshots, 0);
  std::vector<uint32_t> supersteps(kSnapshots, 0);
  std::vector<double> gnn_accuracy(kSnapshots, 0.0);
  std::vector<uint64_t> clique_count(kSnapshots, 0);
  std::vector<uint32_t> clique_largest(kSnapshots, 0);
  std::vector<TransactionDb> db(kSnapshots);
  std::vector<double> fsm_accuracy(kSnapshots, 0.0);

  std::vector<PipelineStage> stages;
  // --- Stage 1 / Path 1: vertex analytics ------------------------------
  stages.push_back({"vertex-analytics", [&](uint32_t b) {
    PlantedDatasetOptions data_options;
    data_options.num_vertices = 500;
    data_options.num_classes = 4;
    data_options.noise = 2.0;
    data_options.seed = 11 + b;
    ds[b] = MakePlantedDataset(data_options);
    PageRankOptions pr_options;
    pr_options.iterations = 15;
    PageRankResult pr = PageRank(ds[b].graph, pr_options);
    VertexId top = 0;
    for (VertexId v = 1; v < ds[b].graph.NumVertices(); ++v) {
      if (pr.ranks[v] > pr.ranks[top]) top = v;
    }
    top_vertex[b] = top;
    supersteps[b] = pr.stats.supersteps;
    structural[b] = StructuralFeatures(ds[b].graph);
  }});

  // --- Stage 2 / Path 2: vertex analytics + ML --------------------------
  stages.push_back({"vertex-ml", [&](uint32_t b) {
    Matrix combined(ds[b].features.rows(),
                    ds[b].features.cols() + structural[b].cols());
    for (uint32_t v = 0; v < combined.rows(); ++v) {
      for (uint32_t j = 0; j < ds[b].features.cols(); ++j) {
        combined.at(v, j) = ds[b].features.at(v, j);
      }
      for (uint32_t j = 0; j < structural[b].cols(); ++j) {
        combined.at(v, ds[b].features.cols() + j) = structural[b].at(v, j);
      }
    }
    SparseMatrix adj = NormalizedAdjacency(ds[b].graph, AdjNorm::kSymmetric);
    AggregateFn aggregate = ExactAggregator(&adj);
    GcnConfig gcn_config;
    gcn_config.dims = {combined.cols(), 16, ds[b].num_classes};
    GcnModel gcn(gcn_config);
    TrainConfig train_config;
    train_config.epochs = 40;
    TrainReport gnn_report =
        TrainNodeClassifier(gcn, combined, ds[b].labels, ds[b].train_mask,
                            ds[b].test_mask, aggregate, train_config);
    gnn_accuracy[b] = gnn_report.final_test_accuracy;
  }});

  // --- Stage 3 / Path 3: structure analytics ----------------------------
  // Structure analytics targets dense substructure, so run it on a
  // denser community graph (the kind of social network the survey's
  // community-detection motivation assumes).
  stages.push_back({"structure-analytics", [&](uint32_t b) {
    Graph social = PlantedPartition(320, 8, 0.3, 0.01, 5 + b);
    MaximalCliqueOptions clique_options;
    clique_options.min_size = 5;
    MaximalCliqueResult cliques = MaximalCliques(social, clique_options);
    clique_count[b] = cliques.count;
    clique_largest[b] = cliques.largest;
    MoleculeDbOptions db_options;
    db_options.num_transactions = 90;
    db_options.vertices_per_graph = 14;
    db_options.num_vertex_labels = 6;  // rarer label combos: crisper motifs
    db_options.extra_edges = 5;
    db_options.motif_rate = 0.9;
    db[b] = SyntheticMoleculeDb(db_options, 21 + b);
  }});

  // --- Stage 4 / Path 4: structure analytics + ML -----------------------
  stages.push_back({"structure-ml", [&](uint32_t b) {
    fsm_accuracy[b] = GraphClassificationAccuracy(db[b]);
  }});

  PipelineReport report = RunPipeline(stages, kSnapshots);

  const uint32_t last = kSnapshots - 1;
  Table table({"path", "task", "system family", "outcome"});
  table.AddRow({"1", "vertex scoring (PageRank)", "TLAV (Pregel-like)",
                Fmt("top vertex %u, %u supersteps", top_vertex[last],
                    supersteps[last])});
  table.AddRow({"2", "features -> GNN node classification",
                "TLAV features + GNN system",
                Fmt("test accuracy %.3f", gnn_accuracy[last])});
  table.AddRow({"3", "community cores (maximal cliques >= 5)",
                "TLAG (G-thinker-like)",
                Fmt("%llu cliques, largest %u",
                    static_cast<unsigned long long>(clique_count[last]),
                    clique_largest[last])});
  table.AddRow({"4", "frequent patterns -> graph classification",
                "FSM (PrefixFPM-like) + classifier",
                Fmt("test accuracy %.3f", fsm_accuracy[last])});
  table.Print();

  std::printf("\n-- the Figure-1 flow as a pipeline over %u snapshots --\n",
              kSnapshots);
  std::printf("hardware_concurrency: %u (%zu stages -> measured overlap %s)\n",
              report.hardware_concurrency, stages.size(),
              report.overlap_feasible ? "feasible" : "INFEASIBLE on this host");
  Table pipe({"execution", "wall ms", "speedup"});
  pipe.AddRow({"serial", Fmt("%.1f", report.serial_seconds * 1e3), "1.00x"});
  pipe.AddRow({"pipelined, measured",
               Fmt("%.1f", report.pipelined_seconds * 1e3),
               Fmt("%.2fx", report.measured_speedup)});
  pipe.AddRow({"pipelined, modeled (one executor/stage)",
               Fmt("%.1f", report.modeled_pipelined_seconds * 1e3),
               Fmt("%.2fx", report.modeled_speedup)});
  pipe.Print();
  std::printf("bottleneck stage: %s; critical path %.1f ms\n",
              report.stage_names[report.bottleneck_stage].c_str(),
              report.critical_path_seconds * 1e3);
  Table stage_table({"stage", "busy ms", "busy p50/p95 ms",
                     "stall p50/p95 ms"});
  for (const PipelineStageStats& st : report.stages) {
    stage_table.AddRow({st.name, Fmt("%.1f", st.serial_busy_seconds * 1e3),
                        Fmt("%.1f/%.1f", st.busy_p50_seconds * 1e3,
                            st.busy_p95_seconds * 1e3),
                        Fmt("%.1f/%.1f", st.stall_p50_seconds * 1e3,
                            st.stall_p95_seconds * 1e3)});
  }
  stage_table.Print();

  // -- two-level scheduling what-if: widen the bottleneck path ---------
  // Every Figure-1 stage writes only its own snapshot's slots, so any of
  // them could take k executors. Replay the measured trace through the
  // k-executor virtual clock, widening the bottleneck stage — the
  // modeled trend is deterministic on any core count.
  std::printf("\n-- modeled executor sweep on the bottleneck stage (%s) --\n",
              report.stage_names[report.bottleneck_stage].c_str());
  Table sweep({"k", "modeled wall ms", "modeled speedup",
               "bottleneck occupancy"});
  for (uint32_t k : {1u, 2u, 4u}) {
    std::vector<ModeledStageSpec> what_if = report.serial_stage_traces;
    what_if[report.bottleneck_stage].executors = k;
    ModeledPipelineResult m = ModelPipelineSchedule(what_if);
    sweep.AddRow({Fmt("%u", k), Fmt("%.1f", m.pipelined_seconds * 1e3),
                  Fmt("%.2fx", m.speedup),
                  Fmt("%.0f%%",
                      100.0 * m.stage_occupancy[report.bottleneck_stage])});
  }
  sweep.Print();

  std::printf("\nShape check: every Figure-1 path runs end-to-end on this "
              "library; structural/pattern features are discriminative\n"
              "(paths 2 and 4 reach high accuracy), matching the survey's "
              "motivation for combining analytics with ML. The modeled\n"
              "pipeline numbers show the overlap the four-path dataflow "
              "admits independent of this host's core count; widening the\n"
              "dominant path with k executors (ByteGNN's two-level "
              "scheduling) turns the stage-sum into roughly its per-executor\n"
              "share until another path becomes the bottleneck.\n");
  return 0;
}
