// Experiment C14 (DESIGN.md): out-of-core execution over the sharded
// compressed CSR — the GraphChi/GridGraph single-machine axis of §2.
// PageRank, WCC, and triangle counting run with the adjacency budget
// swept from unlimited down to one shard; results stay bit-identical to
// the in-memory engines while modeled I/O time traces the budget curve.

#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "ooc/ooc_algos.h"
#include "ooc/sharded_graph.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/wcc.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C14", "out-of-core sharded execution vs in-memory (Sec. 2)");

  // R-MAT with the PR-7 cache layout and PR-8 compression applied —
  // the store shards exactly what the in-memory hot path traverses.
  Graph base = Rmat(14, 16, 42);
  GraphOptions options;
  options.reorder = ReorderMode::kHubCluster;
  options.compression = CompressionMode::kDeltaVarint;
  Graph g =
      Graph::FromEdges(base.NumVertices(), base.CollectEdges(), options)
          .value();
  const uint64_t adj_bytes = g.AdjacencyBytes();
  std::printf("%s, adjacency %.1f KB compressed (%.2f B/entry)\n",
              g.ToString().c_str(), adj_bytes / 1024.0,
              static_cast<double>(adj_bytes) /
                  static_cast<double>(g.NumAdjacencyEntries()));

  // In-memory references (also the bit-identity oracle below).
  Timer t_pr;
  const PageRankResult mem_pr = PageRank(g);
  const double pr_wall = t_pr.ElapsedSeconds();
  Timer t_wcc;
  const WccResult mem_wcc = Wcc(g);
  const double wcc_wall = t_wcc.ElapsedSeconds();
  Timer t_tri;
  const TriangleCountResult mem_tri = TaskTriangleCount(g, {});
  const double tri_wall = t_tri.ElapsedSeconds();
  std::printf("in-memory: pagerank %.0f ms, wcc %.0f ms (%u comps), "
              "triangles %.0f ms (%llu)\n\n",
              pr_wall * 1e3, wcc_wall * 1e3, mem_wcc.num_components,
              tri_wall * 1e3,
              static_cast<unsigned long long>(mem_tri.triangles));

  const std::string store =
      (std::filesystem::temp_directory_path() / "gal_bench_ooc").string();
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = adj_bytes / 16;
  auto summary = WriteShardedGraph(g, store, wopt);
  GAL_CHECK(summary.ok()) << summary.status();
  std::printf("shard store: %u shards, %.1f KB adjacency, largest shard "
              "%.1f KB resident\n\n",
              summary.value().num_shards,
              summary.value().total_adj_bytes / 1024.0,
              summary.value().max_shard_resident_bytes / 1024.0);

  Table table({"budget", "algo", "loads", "hits", "evicts", "read MB",
               "peak KB", "io(model) ms", "total(model) ms", "wall ms",
               "identical"});
  // The budget sweep: unlimited, then 50% / 25% / 12.5% of the
  // in-memory adjacency footprint (floored at one shard, the smallest
  // budget that can run at all).
  for (uint64_t budget :
       {uint64_t{0}, adj_bytes / 2, adj_bytes / 4, adj_bytes / 8}) {
    OocOptions oopt;
    oopt.memory_budget_bytes =
        budget == 0
            ? 0
            : std::max(budget, summary.value().max_shard_resident_bytes);
    auto opened = ShardedGraph::Open(store, oopt);
    GAL_CHECK(opened.ok()) << opened.status();
    const ShardedGraph& sg = opened.value();
    const std::string label =
        budget == 0 ? "unlimited"
                    : Fmt("%.1f KB (%.0f%%)", oopt.memory_budget_bytes / 1024.0,
                          100.0 * static_cast<double>(budget) /
                              static_cast<double>(adj_bytes));

    auto add_row = [&](const char* algo, const OocStats& s, bool identical,
                       double wall) {
      GAL_CHECK(identical) << algo << " diverged from the in-memory run";
      if (s.budget_bytes > 0) {
        GAL_CHECK(s.peak_resident_bytes <= s.budget_bytes)
            << algo << " overshot the budget";
      }
      table.AddRow({label, algo, Human(s.shard_loads), Human(s.cache_hits),
                    Human(s.evictions),
                    Fmt("%.2f", s.shard_load_bytes / 1048576.0),
                    Fmt("%.1f", s.peak_resident_bytes / 1024.0),
                    Fmt("%.2f", s.modeled_io_seconds * 1e3),
                    Fmt("%.1f", s.modeled_seconds * 1e3),
                    Fmt("%.1f", wall * 1e3), identical ? "yes" : "NO"});
    };

    Timer tp;
    const OocPageRankResult pr = OocPageRank(sg);
    add_row("pagerank", pr.stats, pr.ranks == mem_pr.ranks,
            tp.ElapsedSeconds());
    Timer tw;
    const OocWccResult wcc = OocWcc(sg);
    add_row("wcc", wcc.stats,
            wcc.component == mem_wcc.component &&
                wcc.num_components == mem_wcc.num_components,
            tw.ElapsedSeconds());
    Timer tt;
    const OocTriangleResult tri = OocTriangleCount(sg);
    add_row("triangles", tri.stats,
            tri.triangles == mem_tri.triangles &&
                tri.intersection_ops == mem_tri.intersection_ops,
            tt.ElapsedSeconds());
  }
  table.Print();
  RemoveShardedGraphFiles(store);

  std::printf(
      "\nShape check: every row is bit-identical to the in-memory run and "
      "peak residency never exceeds the budget; shrinking the budget only "
      "moves time into modeled I/O (loads/evictions rise, the GraphChi "
      "trade). WCC's frontier-aware scheduler skips converged shards, so "
      "its late supersteps read almost nothing.\n");
  return 0;
}
