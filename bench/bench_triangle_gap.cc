// Experiment C1 (DESIGN.md): the survey's §1 anecdote — triangle
// counting on a vertex-centric (MapReduce/Pregel-style) engine vs a
// single machine doing oriented neighborhood intersections (Chu &
// Cheng's serial external-memory algorithm took 0.5 min where the
// 1636-machine MapReduce job took 5.33 min).
//
// Expected shape: the TLAV formulation moves one message per oriented
// wedge — orders of magnitude more "work units" and bytes than the
// intersection pass — and is correspondingly slower despite using the
// same number of cores.

#include <thread>

#include "bench_util.h"
#include "common/simd.h"
#include "graph/generators.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/triangle_tlav.h"

namespace {

const char* ReorderName(gal::ReorderMode mode) {
  switch (mode) {
    case gal::ReorderMode::kNone: return "none";
    case gal::ReorderMode::kDegreeDesc: return "degree-desc";
    case gal::ReorderMode::kHubCluster: return "hub-cluster";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C1", "triangle counting: vertex-centric vs task-based (Sec. 1)");

  Table table({"graph", "triangles", "tlav msgs", "tlav MB", "tlav ms",
               "serial ops", "serial ms", "task(N) ms", "speedup vs tlav"});
  for (uint32_t scale : {10u, 11u, 12u, 13u, 14u}) {
    Graph g = Rmat(scale, 8, 42);
    const uint32_t cores = std::max(2u, std::thread::hardware_concurrency());
    TlavConfig tlav_config;
    tlav_config.num_workers = cores;
    TlavTriangleResult tlav = TlavTriangleCount(g, tlav_config);
    TriangleCountResult serial = SerialTriangleCount(g);
    TaskEngineConfig task_config;
    task_config.num_threads = cores;
    TriangleCountResult task = TaskTriangleCount(g, task_config);
    GAL_CHECK(tlav.triangles == serial.triangles);
    GAL_CHECK(task.triangles == serial.triangles);

    table.AddRow({Fmt("rmat-%u (|E|=%s)", scale, Human(g.NumEdges()).c_str()),
                  Human(serial.triangles),
                  Human(tlav.stats.total_messages),
                  Fmt("%.1f", tlav.stats.total_message_bytes / 1e6),
                  Fmt("%.1f", tlav.stats.wall_seconds * 1e3),
                  Human(serial.intersection_ops),
                  Fmt("%.1f", serial.wall_seconds * 1e3),
                  Fmt("%.1f", task.wall_seconds * 1e3),
                  Fmt("%.1fx", tlav.stats.wall_seconds /
                                   std::max(1e-9, task.wall_seconds))});
  }
  table.Print();

  // Second table: the cache-layout x codec x SIMD matrix on the serial
  // intersection kernel itself. Rows are {reorder} x {raw/delta-varint}
  // x {SIMD off/on}; the baseline (none/raw/scalar) row is the
  // "before", everything else is "after". Triangle counts must agree
  // across all cells — the knobs are layout/codec/ISA policy only. The
  // B/edge column is AdjacencyBytes()/NumAdjacencyEntries(): 4.00 for
  // raw CSR, and the delta-varint rows show the compression ratio the
  // reordered, sorted adjacency admits (hub-cluster shrinks the gaps,
  // so the codec and the reorder compose). The ms delta between a raw
  // row and its compressed twin at the same (layout, simd) is the
  // streaming-decode overhead.
  std::printf("\n");
  Banner("C1b", "reorder x compression x SIMD sweep: serial intersection kernel");
  Table sweep({"layout", "codec", "simd", "triangles", "ops", "B/edge", "ms",
               "speedup"});
  Graph base = Rmat(13, 8, 42);
  const uint64_t expect_triangles = SerialTriangleCount(base).triangles;
  double baseline_ms = 0.0;
  for (ReorderMode mode : {ReorderMode::kNone, ReorderMode::kDegreeDesc,
                           ReorderMode::kHubCluster}) {
    for (CompressionMode codec :
         {CompressionMode::kNone, CompressionMode::kDeltaVarint}) {
      GraphOptions options;
      options.reorder = mode;
      options.compression = codec;
      Graph g =
          Graph::FromEdges(base.NumVertices(), base.CollectEdges(), options)
              .value();
      const double bytes_per_edge =
          static_cast<double>(g.AdjacencyBytes()) /
          std::max<uint64_t>(1, g.NumAdjacencyEntries());
      for (bool want_simd : {false, true}) {
        const bool prev = simd::SetEnabled(want_simd);
        TriangleCountResult r = SerialTriangleCount(g);
        simd::SetEnabled(prev);
        GAL_CHECK(r.triangles == expect_triangles);
        const double ms = r.wall_seconds * 1e3;
        if (mode == ReorderMode::kNone && codec == CompressionMode::kNone &&
            !want_simd) {
          baseline_ms = ms;
        }
        sweep.AddRow({ReorderName(mode),
                      codec == CompressionMode::kDeltaVarint ? "delta-varint"
                                                             : "raw",
                      want_simd && simd::Available() ? simd::ActiveIsa()
                                                     : "scalar",
                      Human(r.triangles), Human(r.intersection_ops),
                      Fmt("%.2f", bytes_per_edge), Fmt("%.1f", ms),
                      Fmt("%.2fx", baseline_ms / std::max(1e-9, ms))});
      }
    }
  }
  sweep.Print();

  std::printf("\nShape check: the vertex-centric engine ships one message "
              "per oriented wedge (megabytes buffered and routed through\n"
              "the BSP barrier) where the task engine does in-cache "
              "intersections; at equal core count the TLAV run is several\n"
              "times slower and the gap widens with scale — the survey's "
              "'1636 machines vs one' point in miniature.\n");
  return 0;
}
