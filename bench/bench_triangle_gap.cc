// Experiment C1 (DESIGN.md): the survey's §1 anecdote — triangle
// counting on a vertex-centric (MapReduce/Pregel-style) engine vs a
// single machine doing oriented neighborhood intersections (Chu &
// Cheng's serial external-memory algorithm took 0.5 min where the
// 1636-machine MapReduce job took 5.33 min).
//
// Expected shape: the TLAV formulation moves one message per oriented
// wedge — orders of magnitude more "work units" and bytes than the
// intersection pass — and is correspondingly slower despite using the
// same number of cores.

#include <thread>

#include "bench_util.h"
#include "graph/generators.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/triangle_tlav.h"

int main() {
  using namespace gal;
  using namespace gal::bench;
  Banner("C1", "triangle counting: vertex-centric vs task-based (Sec. 1)");

  Table table({"graph", "triangles", "tlav msgs", "tlav MB", "tlav ms",
               "serial ops", "serial ms", "task(N) ms", "speedup vs tlav"});
  for (uint32_t scale : {10u, 11u, 12u, 13u, 14u}) {
    Graph g = Rmat(scale, 8, 42);
    const uint32_t cores = std::max(2u, std::thread::hardware_concurrency());
    TlavConfig tlav_config;
    tlav_config.num_workers = cores;
    TlavTriangleResult tlav = TlavTriangleCount(g, tlav_config);
    TriangleCountResult serial = SerialTriangleCount(g);
    TaskEngineConfig task_config;
    task_config.num_threads = cores;
    TriangleCountResult task = TaskTriangleCount(g, task_config);
    GAL_CHECK(tlav.triangles == serial.triangles);
    GAL_CHECK(task.triangles == serial.triangles);

    table.AddRow({Fmt("rmat-%u (|E|=%s)", scale, Human(g.NumEdges()).c_str()),
                  Human(serial.triangles),
                  Human(tlav.stats.total_messages),
                  Fmt("%.1f", tlav.stats.total_message_bytes / 1e6),
                  Fmt("%.1f", tlav.stats.wall_seconds * 1e3),
                  Human(serial.intersection_ops),
                  Fmt("%.1f", serial.wall_seconds * 1e3),
                  Fmt("%.1f", task.wall_seconds * 1e3),
                  Fmt("%.1fx", tlav.stats.wall_seconds /
                                   std::max(1e-9, task.wall_seconds))});
  }
  table.Print();
  std::printf("\nShape check: the vertex-centric engine ships one message "
              "per oriented wedge (megabytes buffered and routed through\n"
              "the BSP barrier) where the task engine does in-cache "
              "intersections; at equal core count the TLAV run is several\n"
              "times slower and the gap widens with scale — the survey's "
              "'1636 machines vs one' point in miniature.\n");
  return 0;
}
