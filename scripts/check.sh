#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrent
# machinery (pipeline executor, thread pool, task engine). Run from
# anywhere; builds land in build/ and build-tsan/.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo
echo "== tsan: pipeline / threadpool / task-engine / tensor-kernel tests =="
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan --target gal_tests -j "${JOBS}"
# PipelineTest.* covers the two-level k-executor backend (bounded-queue
# handoff, batch-ordered release); CoreBudgetTest.* the stage/kernel core
# partitioning; the DistGcn cases drive the trainer's pipelined replay
# end-to-end under TSan. WorkDequeTest.* races owner pops against
# concurrent thieves on the Chase–Lev deque, TaskEngineTest.* covers the
# lock-free engine (incl. the deep-spawn stress and the eventcount
# parking lot), and MatchDeterminismTest.* drives the DFS matcher's
# adaptive prefix splitting at 8 threads. The cluster suites cover the
# simulated-cluster substrate: TrafficLedgerTest.ConcurrentChargesAreExact
# hammers the sharded ledger counters from 8 threads (the data race the
# old SimulatedNetwork had), and ClusterExchangeTest.* runs the TLAV
# engines at GAL_TASK_THREADS=8 over the exchange channel. The frontier
# suites run the direction-optimizing traversals (push scatter, pull
# gather over the shared bitmap, per-worker counters) across worker
# counts under TSan — the parity sweep is where a racy frontier merge
# would show up. The reorder/SIMD/compression parity suites
# (GraphReorderTest, ReorderSimdParityTest, IntersectTest, SimdTest,
# CompressedCsrTest) sweep thread and worker counts over the reordered
# and compressed layouts and vector kernels — the per-worker triangle
# tallies, the per-worker decode scratch, and the SIMD dispatch flag are
# the shared state TSan watches there.
./build-tsan/tests/gal_tests \
    --gtest_filter='PipelineTest.*:ThreadPoolTest.*:TaskEngineTest.*:WorkDequeTest.*:MatchDeterminismTest.*:KernelContextTest.*:KernelParityTest.*:TensorTest.*:MatrixTest.*:SparseTest.*:CoreBudgetTest.*:TrafficLedgerTest.*:VirtualClockTest.*:ClusterRuntimeTest.*:ExchangeChannelTest.*:ClusterExchangeTest.*:FrontierBitmapTest.*:SlidingQueueTest.*:VertexFrontierTest.*:Workers/FrontierParityTest.*:FrontierTraversalTest.*:GraphReorderTest.*:ReorderSimdParityTest.*:IntersectTest.*:SimdTest.*:CompressedCsrTest.*:DistGcnTest.OverlapReducesSimulatedTime:DistGcnTest.ReportExposesTracesAndOverlapOccupancy:DistGcnTest.CommChannelsRelieveCommBoundOverlap'

echo
echo "== ooc: out-of-core shard substrate (ctest label) =="
# The quick gate for src/ooc/ changes: writer/reader roundtrips,
# corrupt-file Status behavior, ShardCache LRU/budget/pin units, and
# the in-memory-vs-out-of-core bit-identity sweeps.
(cd build && ctest -L ooc --output-on-failure -j "${JOBS}")

echo
echo "== tsan: shard-cache suites =="
# The shard cache is the one genuinely concurrent piece of src/ooc/:
# blocking Acquire under a full budget, LRU eviction racing pins, and
# the engines' one-pin-per-thread discipline. The parity suites run the
# three out-of-core engines at 1 and 8 threads, so TSan watches the
# atomic accumulators (fetch_add rank mass, CAS label min, per-thread
# tallies) against concurrent shard loads/evictions.
./build-tsan/tests/gal_tests \
    --gtest_filter='ShardCacheTest.*:OocParityTest.*'

echo
echo "== forced tiny budget: every shard evicted between touches =="
# The out-of-core kill switch: GAL_OOC_BUDGET_BYTES=1 clamps every open
# to a single-largest-shard budget and GAL_OOC_SHARD_BYTES=512 makes
# shards tiny, so each superstep churns the whole cache. Only the
# parity suites run here — they assert results and budget-respect, not
# exact load/eviction counts (which these knobs deliberately change).
GAL_OOC_BUDGET_BYTES=1 GAL_OOC_SHARD_BYTES=512 ./build/tests/gal_tests \
    --gtest_filter='OocParityTest.*'

echo
echo "== tsan + forced compression: parity suites with GAL_GRAPH_COMPRESSION=1 =="
# Forces every FromEdges in the parity suites onto the delta-varint
# layout, so the streaming decode paths (cursors, per-worker scratch)
# run under TSan with reference and fast runs both compressed.
GAL_GRAPH_COMPRESSION=1 ./build-tsan/tests/gal_tests \
    --gtest_filter='GraphReorderTest.*:ReorderSimdParityTest.*:IntersectTest.*:SimdTest.*:CompressedCsrTest.*'

echo
echo "== scalar fallback: parity suites with GAL_SIMD=0 =="
# The kill switch must leave every result bit-identical — this run is
# what keeps the scalar fallback honest on AVX2 hosts (and is the only
# configuration non-AVX2 hosts ever execute).
GAL_SIMD=0 ./build/tests/gal_tests \
    --gtest_filter='GraphReorderTest.*:ReorderSimdParityTest.*:IntersectTest.*:SimdTest.*:CompressedCsrTest.*'

echo
echo "== scalar fallback + forced compression: GAL_SIMD=0 GAL_GRAPH_COMPRESSION=1 =="
# The two kill-switch extremes together: scalar kernels over the
# compressed layout must still be bit-identical.
GAL_SIMD=0 GAL_GRAPH_COMPRESSION=1 ./build/tests/gal_tests \
    --gtest_filter='GraphReorderTest.*:ReorderSimdParityTest.*:IntersectTest.*:SimdTest.*:CompressedCsrTest.*'

echo
echo "== fault: elastic cluster runtime (ctest label) =="
# The quick gate for cluster/fault.h + cluster/checkpoint.h changes:
# FaultPlan env/seed resolution, checkpoint ring accounting, the
# recovery session's failure/straggler machinery, and the cross-engine
# bit-identity sweeps (TLAV PageRank/WCC, dist-GCN, TLAG triangles).
(cd build && ctest -L fault --output-on-failure -j "${JOBS}")

echo
echo "== tsan: recovery-parity + rebalance suites =="
# Recovery serializes/restores engine state while host-thread pools run
# the supersteps, and rebalancing rewrites the partition mid-run — the
# sweeps rerun under TSan so a rollback racing a worker pool shows up.
./build-tsan/tests/gal_tests \
    --gtest_filter='FaultParityTest.*:RebalanceTest.*'

echo
echo "== forced fault schedule: parity suites with an injected failure =="
# The env kill-switch end of the fault substrate: every TLAV job in the
# reorder/SIMD parity suites picks up a checkpoint-every-2 schedule with
# worker 0 failing at superstep 3, and all the bit-identity assertions
# must still hold — recovery is invisible to results by construction.
GAL_CLUSTER_FAULT_CHECKPOINT=2 GAL_CLUSTER_FAULT_FAIL=0@3 ./build/tests/gal_tests \
    --gtest_filter='GraphReorderTest.*:ReorderSimdParityTest.*:IntersectTest.*:SimdTest.*:CompressedCsrTest.*'

echo
echo "check.sh: all green"
