// The elastic fault-tolerant cluster runtime (cluster/fault.h,
// cluster/checkpoint.h): deterministic fault schedules, checkpoint
// ledger/clock accounting, the recovery session's failure and straggler
// machinery, and the cross-engine contract — an injected mid-run worker
// failure (or straggler-triggered migration) leaves TLAV PageRank/WCC,
// dist-GCN training, and TLAG triangle counts bit-identical to their
// failure-free runs at any worker x host-thread combination. The parity
// and rebalance suites are also run under ThreadSanitizer by
// scripts/check.sh.

#include <cstdlib>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/checkpoint.h"
#include "cluster/cluster.h"
#include "cluster/fault.h"
#include "dist/dist_gcn.h"
#include "gnn/dataset.h"
#include "graph/generators.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/wcc.h"

namespace gal {
namespace {

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlanTest, BuildersAndQueries) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.active());

  plan.CheckpointEvery(5).FailWorkerAt(1, 7).SlowWorker(0, 2.0, 3, 9);
  EXPECT_TRUE(plan.active());
  EXPECT_EQ(plan.checkpoint_every(), 5u);
  ASSERT_EQ(plan.failures().size(), 1u);
  EXPECT_EQ(plan.failures()[0].worker, 1u);
  EXPECT_EQ(plan.failures()[0].round, 7u);
  ASSERT_EQ(plan.slowdowns().size(), 1u);
  EXPECT_FALSE(plan.rebalance().enabled);

  RebalanceConfig rb;
  rb.threshold = 3.0;
  plan.Rebalance(rb);  // builder forces enabled
  EXPECT_TRUE(plan.rebalance().enabled);
  EXPECT_DOUBLE_EQ(plan.rebalance().threshold, 3.0);
}

TEST(FaultPlanTest, SlowdownWindowsCompose) {
  FaultPlan plan;
  plan.SlowWorker(2, 3.0, 4, 8).SlowWorker(2, 2.0, 6, 10).SlowWorker(1, 5.0);
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(2, 3), 1.0);   // before both
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(2, 4), 3.0);   // first only
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(2, 7), 6.0);   // overlap multiplies
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(2, 8), 2.0);   // second only
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(2, 10), 1.0);  // after both
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(1, 0), 5.0);   // open-ended window
  EXPECT_DOUBLE_EQ(plan.SlowdownFactor(0, 5), 1.0);   // unlisted worker
}

TEST(FaultPlanTest, RandomIsDeterministicAndInBounds) {
  FaultPlan::RandomOptions options;
  options.seed = 42;
  options.num_workers = 3;
  options.horizon_rounds = 12;
  options.failures = 2;
  options.stragglers = 2;
  const FaultPlan a = FaultPlan::Random(options);
  const FaultPlan b = FaultPlan::Random(options);

  ASSERT_EQ(a.failures().size(), 2u);
  ASSERT_EQ(a.slowdowns().size(), 2u);
  EXPECT_EQ(a.checkpoint_every(), options.checkpoint_every);
  for (size_t i = 0; i < a.failures().size(); ++i) {
    EXPECT_EQ(a.failures()[i].worker, b.failures()[i].worker);
    EXPECT_EQ(a.failures()[i].round, b.failures()[i].round);
    EXPECT_LT(a.failures()[i].worker, options.num_workers);
    EXPECT_GE(a.failures()[i].round, 1u);
    EXPECT_LT(a.failures()[i].round, options.horizon_rounds);
  }
  for (size_t i = 0; i < a.slowdowns().size(); ++i) {
    EXPECT_EQ(a.slowdowns()[i].worker, b.slowdowns()[i].worker);
    EXPECT_DOUBLE_EQ(a.slowdowns()[i].factor, b.slowdowns()[i].factor);
    EXPECT_EQ(a.slowdowns()[i].from_round, b.slowdowns()[i].from_round);
    EXPECT_GE(a.slowdowns()[i].factor, options.min_slowdown);
    EXPECT_LE(a.slowdowns()[i].factor, options.max_slowdown);
  }
}

// --- env resolution ---------------------------------------------------------

class FaultEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("GAL_CLUSTER_FAULT_CHECKPOINT");
    unsetenv("GAL_CLUSTER_FAULT_FAIL");
    unsetenv("GAL_CLUSTER_FAULT_SLOW");
    unsetenv("GAL_CLUSTER_FAULT_SEED");
    unsetenv("GAL_CLUSTER_FAULT_REBALANCE");
    unsetenv("GAL_CLUSTER_WORKERS");
  }
};

TEST_F(FaultEnvTest, FromEnvParsesFullSpec) {
  ASSERT_EQ(setenv("GAL_CLUSTER_FAULT_CHECKPOINT", "5", 1), 0);
  ASSERT_EQ(setenv("GAL_CLUSTER_FAULT_FAIL", "1@7,0@9", 1), 0);
  ASSERT_EQ(setenv("GAL_CLUSTER_FAULT_SLOW", "2:3.5@4-9,0:2", 1), 0);
  ASSERT_EQ(setenv("GAL_CLUSTER_FAULT_REBALANCE", "1", 1), 0);
  Result<FaultPlan> plan = FaultPlan::FromEnv();
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_EQ(plan->checkpoint_every(), 5u);
  ASSERT_EQ(plan->failures().size(), 2u);
  EXPECT_EQ(plan->failures()[1].worker, 0u);
  EXPECT_EQ(plan->failures()[1].round, 9u);
  ASSERT_EQ(plan->slowdowns().size(), 2u);
  EXPECT_DOUBLE_EQ(plan->slowdowns()[0].factor, 3.5);
  EXPECT_EQ(plan->slowdowns()[0].from_round, 4u);
  EXPECT_EQ(plan->slowdowns()[0].until_round, 9u);
  EXPECT_EQ(plan->slowdowns()[1].until_round, UINT32_MAX);
  EXPECT_TRUE(plan->rebalance().enabled);
}

TEST_F(FaultEnvTest, FromEnvRejectsMalformedValues) {
  const std::pair<const char*, const char*> cases[] = {
      {"GAL_CLUSTER_FAULT_CHECKPOINT", "5x"},
      {"GAL_CLUSTER_FAULT_FAIL", "1@"},
      {"GAL_CLUSTER_FAULT_FAIL", "nope"},
      {"GAL_CLUSTER_FAULT_SLOW", "0:0.5"},   // factor < 1
      {"GAL_CLUSTER_FAULT_SLOW", "0:2@9-4"}, // empty window
      {"GAL_CLUSTER_FAULT_SEED", "abc"},
      {"GAL_CLUSTER_FAULT_REBALANCE", "yes"},
  };
  for (const auto& [var, value] : cases) {
    ASSERT_EQ(setenv(var, value, 1), 0);
    Result<FaultPlan> plan = FaultPlan::FromEnv();
    ASSERT_FALSE(plan.ok()) << var << "=" << value;
    EXPECT_NE(plan.status().message().find(var), std::string::npos);
    EXPECT_NE(plan.status().message().find(value), std::string::npos);
    // The warn-once path degrades to an empty plan instead of failing.
    EXPECT_TRUE(FaultPlan::FromEnvOrWarn().empty());
    ASSERT_EQ(unsetenv(var), 0);
  }
}

TEST_F(FaultEnvTest, SeedFillsInUnspecifiedEvents) {
  ASSERT_EQ(setenv("GAL_CLUSTER_FAULT_SEED", "7", 1), 0);
  Result<FaultPlan> seeded = FaultPlan::FromEnv();
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->failures().size(), 1u);
  EXPECT_EQ(seeded->slowdowns().size(), 1u);
  EXPECT_GT(seeded->checkpoint_every(), 0u);

  // Explicit FAIL wins: the seed only draws the straggler.
  ASSERT_EQ(setenv("GAL_CLUSTER_FAULT_FAIL", "0@3", 1), 0);
  Result<FaultPlan> mixed = FaultPlan::FromEnv();
  ASSERT_TRUE(mixed.ok());
  ASSERT_EQ(mixed->failures().size(), 1u);
  EXPECT_EQ(mixed->failures()[0].round, 3u);
  EXPECT_EQ(mixed->slowdowns().size(), 1u);
}

TEST_F(FaultEnvTest, ResolveClusterWorkersStrict) {
  ASSERT_EQ(setenv("GAL_CLUSTER_WORKERS", "6", 1), 0);
  Result<uint32_t> six = ResolveClusterWorkersStrict(0);
  ASSERT_TRUE(six.ok());
  EXPECT_EQ(six.value(), 6u);

  ASSERT_EQ(setenv("GAL_CLUSTER_WORKERS", "12abc", 1), 0);
  Result<uint32_t> bad = ResolveClusterWorkersStrict(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("GAL_CLUSTER_WORKERS"),
            std::string::npos);

  // Explicit request short-circuits the env entirely.
  Result<uint32_t> explicit_width = ResolveClusterWorkersStrict(3);
  ASSERT_TRUE(explicit_width.ok());
  EXPECT_EQ(explicit_width.value(), 3u);

  ASSERT_EQ(unsetenv("GAL_CLUSTER_WORKERS"), 0);
  Result<uint32_t> fallback = ResolveClusterWorkersStrict(0);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback.value(), 4u);
}

// --- CheckpointStore --------------------------------------------------------

TEST(CheckpointStoreTest, RingChargeIsExactAndOnTheClock) {
  ClusterRuntime cluster(ClusterOptions{4, {}});
  CheckpointStore store(&cluster);
  const size_t rounds_before = cluster.clock().rounds();

  store.Save(3, std::vector<uint8_t>(103, 0xAB));  // 103 = 4*25 + 3 remainder
  TrafficSnapshot snap = cluster.ledger().Snapshot();
  EXPECT_EQ(snap.cross_bytes, 103u);  // every ring hop is cross at W=4
  EXPECT_EQ(snap.local_bytes, 0u);
  EXPECT_EQ(cluster.clock().rounds(), rounds_before + 1);
  EXPECT_EQ(store.checkpoints_taken(), 1u);
  EXPECT_EQ(store.checkpoint_bytes(), 103u);
  EXPECT_TRUE(store.has_checkpoint());
  EXPECT_EQ(store.round(), 3u);

  const std::vector<uint8_t>& blob = store.Restore();
  EXPECT_EQ(blob.size(), 103u);
  snap = cluster.ledger().Snapshot();
  EXPECT_EQ(snap.cross_bytes, 206u);  // restore reverses the ring, same bytes
  EXPECT_EQ(cluster.clock().rounds(), rounds_before + 2);
  EXPECT_EQ(store.restored_bytes(), 103u);
}

TEST(CheckpointStoreTest, SingleWorkerCheckpointsAreLocal) {
  ClusterRuntime cluster(ClusterOptions{1, {}});
  CheckpointStore store(&cluster);
  store.Save(0, std::vector<uint8_t>(64, 1));
  store.Restore();
  TrafficSnapshot snap = cluster.ledger().Snapshot();
  EXPECT_EQ(snap.cross_bytes, 0u);  // w -> w: off the wire
  EXPECT_EQ(snap.local_bytes, 128u);
}

// --- RecoverySession --------------------------------------------------------

TEST(RecoverySessionTest, CheckpointCadenceAndScaling) {
  ClusterRuntime cluster(ClusterOptions{2, {}});
  RecoverySession session(
      &cluster, FaultPlan{}.CheckpointEvery(3).SlowWorker(1, 4.0, 2, 5));
  EXPECT_FALSE(session.WantsInitialCheckpoint());  // no failures scheduled
  EXPECT_FALSE(session.ShouldCheckpoint(0));
  EXPECT_FALSE(session.ShouldCheckpoint(1));
  EXPECT_TRUE(session.ShouldCheckpoint(2));
  EXPECT_TRUE(session.ShouldCheckpoint(5));
  EXPECT_FALSE(session.ShouldCheckpoint(6));

  std::vector<double> seconds = {1.0, 1.0};
  session.ScaleCompute(3, std::span<double>(seconds));
  EXPECT_DOUBLE_EQ(seconds[0], 1.0);
  EXPECT_DOUBLE_EQ(seconds[1], 4.0);
  session.ScaleCompute(5, std::span<double>(seconds));  // window [2,5) closed
  EXPECT_DOUBLE_EQ(seconds[1], 4.0);
}

TEST(RecoverySessionTest, FailureRollsBackAndIsConsumedOnce) {
  ClusterRuntime cluster(ClusterOptions{2, {}});
  RecoverySession session(&cluster,
                          FaultPlan{}.CheckpointEvery(2).FailWorkerAt(0, 3));
  EXPECT_TRUE(session.WantsInitialCheckpoint());
  session.Commit(RecoverySession::kInitialRound, {1, 2, 3});
  EXPECT_FALSE(session.WantsInitialCheckpoint());
  session.Commit(1, {4, 5, 6, 7});

  uint32_t resume = 99;
  EXPECT_EQ(session.OnFailure(2, &resume), nullptr);  // wrong round
  const std::vector<uint8_t>* blob = session.OnFailure(3, &resume);
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->size(), 4u);
  EXPECT_EQ(resume, 2u);  // checkpoint at 1 -> re-execute from 2
  EXPECT_EQ(session.stats().failures_recovered, 1u);
  EXPECT_EQ(session.stats().recomputed_rounds, 2u);  // rounds 2 and 3
  EXPECT_EQ(session.stats().restored_bytes, 4u);
  // Consumed: the replayed round 3 completes cleanly.
  EXPECT_EQ(session.OnFailure(3, &resume), nullptr);
}

TEST(RecoverySessionTest, FailureBeforeFirstCheckpointRestartsFromInitial) {
  ClusterRuntime cluster(ClusterOptions{2, {}});
  RecoverySession session(&cluster,
                          FaultPlan{}.CheckpointEvery(10).FailWorkerAt(1, 2));
  session.Commit(RecoverySession::kInitialRound, {9});
  uint32_t resume = 99;
  ASSERT_NE(session.OnFailure(2, &resume), nullptr);
  EXPECT_EQ(resume, 0u);
  EXPECT_EQ(session.stats().recomputed_rounds, 3u);  // rounds 0..2
}

TEST(RecoverySessionTest, OutOfRangeFailureIsInert) {
  ClusterRuntime cluster(ClusterOptions{2, {}});
  RecoverySession session(&cluster, FaultPlan{}.FailWorkerAt(7, 3));
  EXPECT_FALSE(session.WantsInitialCheckpoint());
  uint32_t resume = 0;
  EXPECT_EQ(session.OnFailure(3, &resume), nullptr);
  EXPECT_EQ(session.stats().failures_recovered, 0u);
}

TEST(RecoverySessionTest, StragglerDetectionSustainAndCooldown) {
  ClusterRuntime cluster(ClusterOptions{4, {}});
  // Default rebalance policy: threshold 2, sustain 3, cooldown 4. The
  // load signal is flat; worker 0's 8x slowdown makes it the straggler.
  RecoverySession session(
      &cluster, FaultPlan{}.SlowWorker(0, 8.0).Rebalance(RebalanceConfig{}));
  const std::vector<double> load = {10, 10, 10, 10};
  const std::span<const double> span(load);
  EXPECT_EQ(session.RebalanceCandidate(0, span), RecoverySession::kNoWorker);
  EXPECT_EQ(session.RebalanceCandidate(1, span), RecoverySession::kNoWorker);
  EXPECT_EQ(session.RebalanceCandidate(2, span), 0u);  // 3rd sustained round

  // Books the migration: ledger bytes, stats, and the cooldown window.
  const std::vector<std::pair<uint32_t, uint64_t>> moved = {{1, 300},
                                                            {2, 200}};
  session.CommitMigration(0, std::span<const std::pair<uint32_t, uint64_t>>(
                                 moved),
                          25);
  EXPECT_EQ(session.stats().rebalances, 1u);
  EXPECT_EQ(session.stats().migrated_vertices, 25u);
  EXPECT_EQ(session.stats().migration_bytes, 500u);
  EXPECT_EQ(cluster.ledger().Snapshot().cross_bytes, 500u);

  // Cooldown (rounds 3..6) suppresses detection; then sustain restarts.
  for (uint32_t round = 3; round <= 8; ++round) {
    EXPECT_EQ(session.RebalanceCandidate(round, span),
              RecoverySession::kNoWorker)
        << "round " << round;
  }
  EXPECT_EQ(session.RebalanceCandidate(9, span), 0u);
}

TEST(RecoverySessionTest, MaxMigrationsCapsRebalancing) {
  ClusterRuntime cluster(ClusterOptions{2, {}});
  RebalanceConfig rb;
  rb.sustain_rounds = 1;
  rb.cooldown_rounds = 0;
  rb.max_migrations = 1;
  RecoverySession session(&cluster,
                          FaultPlan{}.SlowWorker(0, 8.0).Rebalance(rb));
  const std::vector<double> load = {10, 10};
  ASSERT_EQ(session.RebalanceCandidate(0, std::span<const double>(load)), 0u);
  session.CommitMigration(0, {}, 5);
  for (uint32_t round = 1; round < 6; ++round) {
    EXPECT_EQ(session.RebalanceCandidate(round, std::span<const double>(load)),
              RecoverySession::kNoWorker);
  }
}

// --- cross-engine bit-identity under fault schedules ------------------------

// The three schedules every parity sweep runs: nothing, a mid-run
// failure, and a failure plus a straggler window.
std::vector<FaultPlan> ParitySchedules() {
  std::vector<FaultPlan> schedules;
  schedules.push_back(FaultPlan{});
  schedules.push_back(FaultPlan{}.CheckpointEvery(4).FailWorkerAt(1, 7));
  schedules.push_back(FaultPlan{}
                          .CheckpointEvery(3)
                          .FailWorkerAt(0, 8)
                          .SlowWorker(0, 3.0, 2, 12));
  return schedules;
}

TEST(FaultParityTest, PageRankBitIdenticalAcrossWorkersThreadsAndFaults) {
  Graph g = ErdosRenyi(300, 0.02, 7);
  PageRankOptions baseline_options;
  baseline_options.iterations = 15;
  const PageRankResult baseline = PageRank(g, baseline_options);

  for (const char* threads : {"1", "8"}) {
    ASSERT_EQ(setenv("GAL_TASK_THREADS", threads, 1), 0);
    for (uint32_t workers : {1u, 2u, 4u}) {
      for (const FaultPlan& plan : ParitySchedules()) {
        PageRankOptions options;
        options.iterations = 15;
        options.engine.num_workers = workers;
        options.engine.faults = plan;
        const PageRankResult r = PageRank(g, options);
        EXPECT_EQ(r.ranks, baseline.ranks)
            << "W=" << workers << " threads=" << threads
            << " failures=" << plan.failures().size();
        if (!plan.failures().empty() && workers > 1) {
          EXPECT_EQ(r.stats.failures_recovered, 1u);
          EXPECT_GT(r.stats.checkpoint_bytes, 0u);
          EXPECT_GT(r.stats.restored_bytes, 0u);
        }
      }
    }
  }
  ASSERT_EQ(unsetenv("GAL_TASK_THREADS"), 0);
}

TEST(FaultParityTest, WccBitIdenticalAcrossWorkersThreadsAndFaults) {
  Graph g = ErdosRenyi(400, 0.01, 3);
  const WccResult baseline = Wcc(g);

  for (const char* threads : {"1", "8"}) {
    ASSERT_EQ(setenv("GAL_TASK_THREADS", threads, 1), 0);
    for (uint32_t workers : {1u, 2u, 4u}) {
      for (const FaultPlan& plan : ParitySchedules()) {
        TlavConfig config;
        config.num_workers = workers;
        config.faults = plan;
        const WccResult r = Wcc(g, config);
        EXPECT_EQ(r.component, baseline.component)
            << "W=" << workers << " threads=" << threads;
        EXPECT_EQ(r.num_components, baseline.num_components);
      }
    }
  }
  ASSERT_EQ(unsetenv("GAL_TASK_THREADS"), 0);
}

TEST(FaultParityTest, DistGcnRecoveryIsBitIdentical) {
  PlantedDatasetOptions data;
  data.num_vertices = 300;
  data.num_classes = 3;
  NodeClassificationDataset ds = MakePlantedDataset(data);

  for (uint32_t workers : {1u, 2u, 4u}) {
    DistGcnConfig clean;
    clean.num_workers = workers;
    clean.epochs = 8;
    clean.faults = FaultPlan{};
    const DistGcnReport clean_report = TrainDistGcn(ds, clean);

    DistGcnConfig faulty = clean;
    faulty.faults = FaultPlan{}.CheckpointEvery(3).FailWorkerAt(0, 4);
    const DistGcnReport r = TrainDistGcn(ds, faulty);

    EXPECT_EQ(r.epoch_loss, clean_report.epoch_loss) << "W=" << workers;
    EXPECT_EQ(r.epoch_test_accuracy, clean_report.epoch_test_accuracy);
    EXPECT_EQ(r.final_test_accuracy, clean_report.final_test_accuracy);
    EXPECT_EQ(r.failures_recovered, 1u);
    EXPECT_EQ(r.recomputed_epochs, 2u);  // checkpoint at 2, failed at 4
    EXPECT_GT(r.checkpoints_taken, 0u);
    EXPECT_GT(r.checkpoint_bytes, 0u);
    EXPECT_GT(r.restored_bytes, 0u);
  }
}

TEST(FaultParityTest, DistGcnRecoveryUnderStalenessAndEc) {
  // The checkpoint blob carries the stale channels and EC residuals, so
  // recovery is bit-identical even when the wire is lossy and stale.
  PlantedDatasetOptions data;
  data.num_vertices = 250;
  data.num_classes = 3;
  NodeClassificationDataset ds = MakePlantedDataset(data);

  DistGcnConfig clean;
  clean.num_workers = 2;
  clean.epochs = 8;
  clean.sync = SyncMode::kBoundedStaleness;
  clean.staleness_bound = 3;
  clean.quantization = Quantization::kInt8;
  clean.error_compensation = true;
  clean.faults = FaultPlan{};
  const DistGcnReport clean_report = TrainDistGcn(ds, clean);

  DistGcnConfig faulty = clean;
  faulty.faults = FaultPlan{}.CheckpointEvery(2).FailWorkerAt(1, 4);
  const DistGcnReport r = TrainDistGcn(ds, faulty);
  EXPECT_EQ(r.epoch_loss, clean_report.epoch_loss);
  EXPECT_EQ(r.final_test_accuracy, clean_report.final_test_accuracy);
  EXPECT_EQ(r.failures_recovered, 1u);
}

TEST(FaultParityTest, TriangleCountBitIdenticalUnderFaults) {
  Graph g = Rmat(10, 8, 5);
  const TriangleCountResult serial = SerialTriangleCount(g);

  for (uint32_t workers : {2u, 4u}) {
    ClusterRuntime cluster(ClusterOptions{workers, {}});
    TaskEngineConfig config;
    config.cluster = &cluster;
    config.faults =
        FaultPlan{}.CheckpointEvery(4).FailWorkerAt(0, 9).SlowWorker(1, 2.0);
    const TriangleCountResult r = TaskTriangleCount(g, config);
    EXPECT_EQ(r.triangles, serial.triangles) << "W=" << workers;
    EXPECT_EQ(r.intersection_ops, serial.intersection_ops);
    EXPECT_EQ(r.failures_recovered, 1u);
    EXPECT_EQ(r.recomputed_rounds, 2u);  // checkpoint at 7, failed at 9
    EXPECT_GT(r.checkpoints_taken, 0u);
    EXPECT_GT(r.checkpoint_bytes, 0u);
  }
}

TEST(FaultParityTest, CheckpointBytesAreExactOnTheLedger) {
  // Failure at a checkpoint boundary recomputes nothing, so the faulty
  // run's extra cross-worker bytes are exactly the checkpoint ring
  // charges plus the one restore — the ledger-exactness contract.
  Graph g = Path(60);
  WccOptions clean;
  clean.engine.num_workers = 2;
  clean.direction.mode = DirectionMode::kPushOnly;  // same engine both runs
  ClusterRuntime clean_cluster(ClusterOptions{2, {}});
  clean.engine.cluster = &clean_cluster;
  const WccResult clean_result = Wcc(g, clean);

  WccOptions faulty = clean;
  ClusterRuntime faulty_cluster(ClusterOptions{2, {}});
  faulty.engine.cluster = &faulty_cluster;
  faulty.engine.faults = FaultPlan{}.CheckpointEvery(5).FailWorkerAt(0, 9);
  const WccResult faulty_result = Wcc(g, faulty);

  EXPECT_EQ(faulty_result.component, clean_result.component);
  EXPECT_EQ(faulty_result.stats.recomputed_supersteps, 0u);
  const uint64_t clean_cross = clean_cluster.ledger().Snapshot().cross_bytes;
  const uint64_t faulty_cross = faulty_cluster.ledger().Snapshot().cross_bytes;
  EXPECT_EQ(faulty_cross - clean_cross,
            faulty_result.stats.checkpoint_bytes +
                faulty_result.stats.restored_bytes);
}

// --- live rebalancing -------------------------------------------------------

TEST(RebalanceTest, PageRankRebalancePreservesRanksAndBooksMigration) {
  Graph g = ErdosRenyi(500, 0.01, 11);
  PageRankOptions clean;
  clean.iterations = 30;
  clean.engine.num_workers = 4;
  const PageRankResult baseline = PageRank(g, clean);

  PageRankOptions rebalanced = clean;
  rebalanced.engine.faults =
      FaultPlan{}.SlowWorker(0, 8.0).Rebalance(RebalanceConfig{});
  ClusterRuntime cluster(ClusterOptions{4, {}});
  rebalanced.engine.cluster = &cluster;
  const PageRankResult r = PageRank(g, rebalanced);

  EXPECT_EQ(r.ranks, baseline.ranks);
  EXPECT_GE(r.stats.rebalances, 1u);
  EXPECT_GT(r.stats.migrated_vertices, 0u);
  EXPECT_GT(r.stats.migration_bytes, 0u);
  // The migration's bytes really landed on the shared ledger.
  EXPECT_GE(cluster.ledger().Snapshot().cross_bytes,
            r.stats.migration_bytes);
}

TEST(RebalanceTest, WccRebalanceKeepsComponents) {
  Graph g = ErdosRenyi(400, 0.012, 19);
  const WccResult baseline = Wcc(g);
  TlavConfig config;
  config.num_workers = 4;
  config.faults = FaultPlan{}.SlowWorker(1, 6.0).Rebalance(RebalanceConfig{});
  const WccResult r = Wcc(g, config);
  EXPECT_EQ(r.component, baseline.component);
  EXPECT_EQ(r.num_components, baseline.num_components);
}

TEST(RebalanceTest, RebalanceComposesWithFailureRecovery) {
  Graph g = ErdosRenyi(300, 0.02, 23);
  PageRankOptions clean;
  clean.iterations = 25;
  clean.engine.num_workers = 4;
  const PageRankResult baseline = PageRank(g, clean);

  PageRankOptions options = clean;
  options.engine.faults = FaultPlan{}
                              .CheckpointEvery(5)
                              .FailWorkerAt(2, 12)
                              .SlowWorker(0, 8.0)
                              .Rebalance(RebalanceConfig{});
  const PageRankResult r = PageRank(g, options);
  EXPECT_EQ(r.ranks, baseline.ranks);
  EXPECT_EQ(r.stats.failures_recovered, 1u);
  EXPECT_GE(r.stats.rebalances, 1u);
}

TEST(RebalanceTest, DistGcnRebalancePreservesTraining) {
  // Unlike the TLAV engines (integer folds, bit-exact under any
  // partition), dist-GCN's local/remote adjacency split changes float
  // summation order when vertices migrate, so a rebalanced run matches
  // the clean one in math, not in ULPs: training quality is asserted
  // with a tolerance, while the migration accounting is exact.
  PlantedDatasetOptions data;
  data.num_vertices = 300;
  data.num_classes = 3;
  NodeClassificationDataset ds = MakePlantedDataset(data);

  DistGcnConfig clean;
  clean.num_workers = 4;
  clean.epochs = 10;
  clean.faults = FaultPlan{};
  const DistGcnReport clean_report = TrainDistGcn(ds, clean);

  DistGcnConfig rebalanced = clean;
  rebalanced.faults =
      FaultPlan{}.SlowWorker(0, 8.0).Rebalance(RebalanceConfig{});
  const DistGcnReport r = TrainDistGcn(ds, rebalanced);
  ASSERT_EQ(r.epoch_loss.size(), clean_report.epoch_loss.size());
  EXPECT_NEAR(r.final_test_accuracy, clean_report.final_test_accuracy, 0.1);
  EXPECT_GE(r.rebalances, 1u);
  EXPECT_GT(r.migration_bytes, 0u);
}

}  // namespace
}  // namespace gal
