#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "gnn/dataset.h"
#include "gnn/deepwalk.h"
#include "gnn/features.h"
#include "gnn/sage.h"
#include "gnn/sampler.h"
#include "graph/generators.h"

namespace gal {
namespace {

// --- features ----------------------------------------------------------------

TEST(FeaturesTest, PerVertexTrianglesSumsToThreeTimesTotal) {
  Graph g = ErdosRenyi(100, 0.08, 3);
  std::vector<uint64_t> per_vertex = PerVertexTriangles(g);
  uint64_t sum = 0;
  for (uint64_t c : per_vertex) sum += c;
  // Each triangle credited at all three corners.
  uint64_t brute = 0;
  std::vector<VertexId> row;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto nv = g.NeighborsInto(v, row);
    for (VertexId u : nv) {
      if (u <= v) continue;
      for (VertexId w : nv) {
        if (w <= u) continue;
        brute += g.HasEdge(u, w);
      }
    }
  }
  EXPECT_EQ(sum, 3 * brute);
}

TEST(FeaturesTest, ClusteringCoefficientKnownValues) {
  // Triangle: every vertex cc = 1. Path: all 0.
  std::vector<double> tri = ClusteringCoefficients(Complete(3));
  for (double c : tri) EXPECT_DOUBLE_EQ(c, 1.0);
  std::vector<double> path = ClusteringCoefficients(Path(5));
  for (double c : path) EXPECT_DOUBLE_EQ(c, 0.0);
  // Diamond (K4 minus an edge): the two degree-3... vertices 0,1 have
  // degree 3 in K4-minus-{2,3}: cc(0) = 2 triangles / 3 pairs.
  Graph diamond = std::move(
      Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}}, {})
          .value());
  std::vector<double> cc = ClusteringCoefficients(diamond);
  EXPECT_NEAR(cc[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cc[2], 1.0, 1e-9);  // degree-2 vertex in one triangle
}

TEST(FeaturesTest, StructuralFeatureMatrixShapeAndRanges) {
  Graph g = Rmat(8, 6, 5);
  Matrix x = StructuralFeatures(g);
  ASSERT_EQ(x.rows(), g.NumVertices());
  ASSERT_EQ(x.cols(), 6u);
  for (uint32_t v = 0; v < x.rows(); ++v) {
    EXPECT_FLOAT_EQ(x.at(v, 0), 1.0f);
    EXPECT_GE(x.at(v, 1), 0.0f);
    EXPECT_LE(x.at(v, 1), 1.0f);
    EXPECT_GE(x.at(v, 3), 0.0f);
    EXPECT_LE(x.at(v, 3), 1.0f);
    EXPECT_GE(x.at(v, 4), 0.0f);
    EXPECT_LE(x.at(v, 4), 1.0f + 1e-6f);
  }
}

// --- dataset -----------------------------------------------------------------

TEST(DatasetTest, PlantedDatasetConsistent) {
  PlantedDatasetOptions opt;
  opt.num_vertices = 200;
  opt.num_classes = 4;
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  EXPECT_EQ(ds.labels.size(), 200u);
  EXPECT_EQ(ds.features.rows(), 200u);
  for (VertexId v = 0; v < 200; ++v) {
    EXPECT_LT(ds.labels[v], 4);
    // Exactly one of train/test.
    EXPECT_EQ(ds.train_mask[v] + ds.test_mask[v], 1);
  }
  EXPECT_GT(ds.TrainVertices().size(), 50u);
}

TEST(DatasetTest, FeaturesCarryClassSignal) {
  std::vector<int32_t> labels = {0, 1, 2, 0, 1, 2};
  Matrix x = SyntheticNodeFeatures(labels, 3, 8, 5.0, 0.1, 7);
  for (uint32_t v = 0; v < 6; ++v) {
    uint32_t argmax = 0;
    for (uint32_t j = 1; j < 3; ++j) {
      if (x.at(v, j) > x.at(v, argmax)) argmax = j;
    }
    EXPECT_EQ(argmax, static_cast<uint32_t>(labels[v]));
  }
}

// --- sampler -----------------------------------------------------------------

TEST(SamplerTest, BlockShapesChainCorrectly) {
  Graph g = Rmat(8, 6, 3);
  std::vector<VertexId> seeds = {1, 5, 9, 13};
  MiniBatch batch = BuildMiniBatch(g, seeds, {5, 5}, 11);
  ASSERT_EQ(batch.blocks.size(), 2u);
  // Output of the last block = seeds.
  EXPECT_EQ(batch.blocks[1].output_vertices, seeds);
  // Chaining: inputs of block 1 are the outputs of block 0.
  EXPECT_EQ(batch.blocks[0].output_vertices, batch.blocks[1].input_vertices);
  EXPECT_EQ(batch.blocks[1].op.rows(), seeds.size());
  EXPECT_EQ(batch.blocks[1].op.cols(),
            batch.blocks[1].input_vertices.size());
  EXPECT_EQ(batch.input_rows, batch.blocks[0].input_vertices.size());
}

TEST(SamplerTest, FanoutBoundsSampledNeighbors) {
  Graph g = Star(100);  // hub has degree 99
  MiniBatch batch = BuildMiniBatch(g, {0}, {5}, 3);
  // Hub sampled at most 5 neighbors + itself.
  EXPECT_LE(batch.blocks[0].input_vertices.size(), 6u);
  EXPECT_EQ(batch.blocks[0].sampled_edges, 5u);
}

TEST(SamplerTest, ZeroFanoutKeepsAllNeighbors) {
  Graph g = Star(50);
  MiniBatch batch = BuildMiniBatch(g, {0}, {0}, 3);
  EXPECT_EQ(batch.blocks[0].input_vertices.size(), 50u);
}

TEST(SamplerTest, RowsAreMeanNormalized) {
  Graph g = Rmat(7, 5, 9);
  MiniBatch batch = BuildMiniBatch(g, {3, 8}, {4, 4}, 5);
  for (const SampledBlock& block : batch.blocks) {
    for (uint32_t r = 0; r < block.op.rows(); ++r) {
      float sum = 0;
      for (float v : block.op.RowValues(r)) sum += v;
      EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
  }
}

TEST(SamplerTest, DeterministicForSeed) {
  Graph g = Rmat(8, 6, 1);
  MiniBatch a = BuildMiniBatch(g, {2, 4, 6}, {3, 3}, 77);
  MiniBatch b = BuildMiniBatch(g, {2, 4, 6}, {3, 3}, 77);
  EXPECT_EQ(a.blocks[0].input_vertices, b.blocks[0].input_vertices);
  EXPECT_EQ(a.total_sampled_edges, b.total_sampled_edges);
}

TEST(SamplerTest, SmallerFanoutGathersFewerRows) {
  Graph g = Rmat(9, 8, 5);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < 32; ++v) seeds.push_back(v * 3);
  MiniBatch full = BuildMiniBatch(g, seeds, {0, 0}, 1);
  MiniBatch sampled = BuildMiniBatch(g, seeds, {5, 5}, 1);
  EXPECT_LT(sampled.input_rows, full.input_rows);
}

TEST(SamplerTest, KHopMaterializationAccounting) {
  Graph g = Rmat(8, 8, 7);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < 50; ++v) seeds.push_back(v);
  KHopMaterializationStats stats = MaterializeKHop(g, seeds, {10, 10}, 16, 3);
  EXPECT_GT(stats.total_stored_vertices, seeds.size());
  EXPECT_GT(stats.storage_bytes, 0u);
  EXPECT_GT(stats.blowup_vs_graph, 0.0);
}

// --- minibatch SAGE ------------------------------------------------------------

TEST(SageTest, LearnsPlantedCommunities) {
  PlantedDatasetOptions opt;
  opt.num_vertices = 400;
  opt.num_classes = 3;
  opt.noise = 1.5;
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  SageConfig config;
  config.epochs = 8;
  config.fanouts = {8, 8};
  SageReport report = TrainSageMinibatch(ds, config);
  EXPECT_GT(report.final_test_accuracy, 0.8);
  EXPECT_GT(report.feature_rows_gathered, 0u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
}

TEST(SageTest, SamplingReducesGatheredBytes) {
  PlantedDatasetOptions opt;
  opt.num_vertices = 500;
  opt.p_in = 0.1;
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  SageConfig full;
  full.epochs = 2;
  full.fanouts = {0, 0};
  SageConfig sampled;
  sampled.epochs = 2;
  sampled.fanouts = {5, 5};
  SageReport rf = TrainSageMinibatch(ds, full);
  SageReport rs = TrainSageMinibatch(ds, sampled);
  EXPECT_LT(rs.feature_bytes_gathered, rf.feature_bytes_gathered);
}

// --- DeepWalk / node2vec ----------------------------------------------------

TEST(DeepWalkTest, BiasedWalksFollowEdges) {
  Graph g = Rmat(7, 5, 3);
  BiasedWalkResult r = Node2VecWalks(g, 2, 6, 1.0, 1.0, 9);
  ASSERT_EQ(r.corpus.size(), g.NumVertices() * 2u);
  for (const auto& walk : r.corpus) {
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      ASSERT_TRUE(g.HasEdge(walk[i], walk[i + 1]));
    }
  }
}

TEST(DeepWalkTest, DeterministicAcrossWorkerCounts) {
  Graph g = Rmat(6, 4, 5);
  TlavConfig one;
  one.num_workers = 1;
  TlavConfig eight;
  eight.num_workers = 8;
  BiasedWalkResult a = Node2VecWalks(g, 2, 5, 0.5, 2.0, 7, one);
  BiasedWalkResult b = Node2VecWalks(g, 2, 5, 0.5, 2.0, 7, eight);
  EXPECT_EQ(a.corpus, b.corpus);
}

TEST(DeepWalkTest, HighReturnBiasRevisitsMore) {
  // p << 1 makes hopping back likely, so walks touch fewer distinct
  // vertices than outward-biased walks (q << 1).
  Graph g = Grid(20, 20);
  auto mean_distinct = [&](double p, double q) {
    BiasedWalkResult r = Node2VecWalks(g, 2, 10, p, q, 11);
    double total = 0.0;
    for (const auto& walk : r.corpus) {
      std::set<VertexId> distinct(walk.begin(), walk.end());
      total += static_cast<double>(distinct.size());
    }
    return total / static_cast<double>(r.corpus.size());
  };
  EXPECT_GT(mean_distinct(10.0, 0.25), mean_distinct(0.1, 4.0) + 1.0);
}

TEST(DeepWalkTest, EmbeddingsSeparateCommunities) {
  Graph g = PlantedPartition(200, 4, 0.2, 0.005, 13);
  DeepWalkOptions opt;
  opt.dim = 16;
  opt.walks_per_vertex = 6;
  opt.walk_length = 8;
  DeepWalkResult r = DeepWalkEmbeddings(g, opt);
  ASSERT_EQ(r.embeddings.rows(), 200u);
  EXPECT_GT(r.sgns_updates, 10000u);

  // Mean cosine similarity within communities must exceed across.
  auto cosine = [&](VertexId a, VertexId b) {
    const float* x = r.embeddings.row(a);
    const float* y = r.embeddings.row(b);
    double dot = 0, nx = 0, ny = 0;
    for (uint32_t d = 0; d < opt.dim; ++d) {
      dot += x[d] * y[d];
      nx += x[d] * x[d];
      ny += y[d] * y[d];
    }
    return dot / (std::sqrt(nx) * std::sqrt(ny) + 1e-12);
  };
  Rng rng(3);
  double intra = 0, inter = 0;
  int intra_n = 0, inter_n = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    VertexId a = static_cast<VertexId>(rng.Uniform(200));
    VertexId b = static_cast<VertexId>(rng.Uniform(200));
    if (a == b) continue;
    if (g.LabelOf(a) == g.LabelOf(b)) {
      intra += cosine(a, b);
      ++intra_n;
    } else {
      inter += cosine(a, b);
      ++inter_n;
    }
  }
  EXPECT_GT(intra / intra_n, inter / inter_n + 0.2);
}

}  // namespace
}  // namespace gal
