#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "graph/generators.h"
#include "tlag/algos/cliques.h"
#include "tlag/algos/quasi_clique.h"
#include "tlag/algos/subgraph_enum.h"
#include "tlag/algos/triangles.h"
#include "tlag/bfs_engine.h"
#include "tlag/task_engine.h"
#include "tlag/work_deque.h"

namespace gal {
namespace {

// --- WorkStealingDeque -------------------------------------------------------

TEST(WorkDequeTest, OwnerLifoThiefFifo) {
  WorkStealingDeque<int> dq;
  dq.Push(new int(1));
  dq.Push(new int(2));
  dq.Push(new int(3));
  EXPECT_EQ(dq.ApproxSize(), 3u);
  std::unique_ptr<int> stolen(dq.Steal());
  ASSERT_NE(stolen, nullptr);
  EXPECT_EQ(*stolen, 1);  // thieves take the oldest (biggest subproblem)
  std::unique_ptr<int> popped(dq.Pop());
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(*popped, 3);  // owner pops the newest (DFS order)
  popped.reset(dq.Pop());
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(*popped, 2);
  EXPECT_EQ(dq.Pop(), nullptr);
  EXPECT_EQ(dq.Steal(), nullptr);
  EXPECT_EQ(dq.ApproxSize(), 0u);
}

TEST(WorkDequeTest, GrowthPreservesAllTasks) {
  WorkStealingDeque<int> dq(4);  // forces several buffer doublings
  int64_t pushed = 0;
  int64_t seen = 0;
  int consumed = 0;
  for (int i = 1; i <= 1000; ++i) {
    dq.Push(new int(i));
    pushed += i;
    if ((i % 3) == 0) {  // interleave owner pops with growth
      std::unique_ptr<int> t(dq.Pop());
      ASSERT_NE(t, nullptr);
      seen += *t;
      ++consumed;
    }
  }
  for (;;) {  // drain from both ends
    std::unique_ptr<int> t(consumed % 2 == 0 ? dq.Pop() : dq.Steal());
    if (t == nullptr) break;
    seen += *t;
    ++consumed;
  }
  EXPECT_EQ(consumed, 1000);
  EXPECT_EQ(seen, pushed);
}

TEST(WorkDequeTest, ConcurrentStealsDeliverEachTaskExactlyOnce) {
  WorkStealingDeque<uint64_t> dq(8);
  constexpr uint64_t kTasks = 20000;
  std::atomic<uint64_t> consumed{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<bool> owner_done{false};
  auto consume = [&](uint64_t* t) {
    sum.fetch_add(*t, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
    delete t;
  };
  std::vector<std::thread> thieves;
  for (int i = 0; i < 3; ++i) {
    thieves.emplace_back([&] {
      while (!owner_done.load(std::memory_order_acquire) ||
             dq.ApproxSize() > 0) {
        uint64_t* t = dq.Steal();
        if (t != nullptr) consume(t);
      }
    });
  }
  for (uint64_t i = 1; i <= kTasks; ++i) {
    dq.Push(new uint64_t(i));
    if ((i & 7) == 0) {  // owner pops race thief CASes on the last element
      uint64_t* t = dq.Pop();
      if (t != nullptr) consume(t);
    }
  }
  uint64_t* t;
  while ((t = dq.Pop()) != nullptr) consume(t);
  owner_done.store(true, std::memory_order_release);
  for (std::thread& th : thieves) th.join();
  EXPECT_EQ(consumed.load(), kTasks);
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
}

// --- TaskEngine --------------------------------------------------------------

TEST(TaskEngineTest, ExecutesAllInitialTasks) {
  TaskEngine<int> engine(TaskEngineConfig{.num_threads = 4});
  std::atomic<int> sum{0};
  std::vector<int> tasks;
  for (int i = 1; i <= 100; ++i) tasks.push_back(i);
  TaskEngineStats stats =
      engine.Run(std::move(tasks),
                 [&sum](int& t, TaskEngine<int>::Context&) { sum += t; });
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(stats.tasks_executed, 100u);
}

TEST(TaskEngineTest, SpawnedTasksRunToo) {
  TaskEngine<int> engine(TaskEngineConfig{.num_threads = 4});
  std::atomic<int> count{0};
  TaskEngineStats stats = engine.Run(
      {3}, [&count](int& depth, TaskEngine<int>::Context& ctx) {
        count.fetch_add(1);
        if (depth > 0) {
          ctx.Spawn(depth - 1);
          ctx.Spawn(depth - 1);
        }
      });
  EXPECT_EQ(count.load(), 15);  // complete binary tree of depth 3
  EXPECT_EQ(stats.tasks_executed, 15u);
  EXPECT_EQ(stats.tasks_spawned, 14u);
}

TEST(TaskEngineTest, SingleThreadWorks) {
  TaskEngine<int> engine(TaskEngineConfig{.num_threads = 1});
  std::atomic<int> count{0};
  engine.Run({1, 2, 3},
             [&count](int&, TaskEngine<int>::Context&) { count++; });
  EXPECT_EQ(count.load(), 3);
}

TEST(TaskEngineTest, StealingMovesWorkFromSkewedQueues) {
  // All heavy work lands (round-robin) such that thread 0 owns the one
  // giant task plus spawns; stealing should record activity.
  TaskEngine<int> engine(TaskEngineConfig{.num_threads = 4});
  std::atomic<uint64_t> work{0};
  TaskEngineStats stats = engine.Run(
      {20000}, [&work](int& n, TaskEngine<int>::Context& ctx) {
        if (n > 1) {
          ctx.Spawn(n / 2);
          ctx.Spawn(n - n / 2);
        } else {
          // Simulate leaf work.
          volatile uint64_t x = 0;
          for (int i = 0; i < 50; ++i) x = x + i;
          work.fetch_add(1, std::memory_order_relaxed);
        }
      });
  EXPECT_EQ(work.load(), 20000u);
  EXPECT_GT(stats.steals, 0u);
}

TEST(TaskEngineTest, NoStealingStaysStatic) {
  TaskEngine<int> engine(
      TaskEngineConfig{.num_threads = 4, .work_stealing = false});
  std::atomic<int> count{0};
  TaskEngineStats stats = engine.Run(
      {1, 2, 3, 4, 5, 6, 7, 8},
      [&count](int&, TaskEngine<int>::Context&) { count++; });
  EXPECT_EQ(count.load(), 8);
  EXPECT_EQ(stats.steals, 0u);
}

TEST(TaskEngineTest, DeepRecursiveSpawnStressAtEightThreads) {
  // A complete binary spawn tree (bulk churn on every deque) followed by
  // a long spawn chain (one task alive at a time, so workers park and
  // wake constantly — the termination detector's worst case).
  TaskEngine<std::pair<int, int>> engine(TaskEngineConfig{.num_threads = 8});
  std::atomic<uint64_t> count{0};
  using Ctx = TaskEngine<std::pair<int, int>>::Context;
  TaskEngineStats tree = engine.Run(
      {{14, 0}}, [&count](std::pair<int, int>& t, Ctx& ctx) {
        count.fetch_add(1, std::memory_order_relaxed);
        if (t.first > 0) {
          ctx.Spawn({t.first - 1, 0});
          ctx.Spawn({t.first - 1, 0});
        }
      });
  EXPECT_EQ(count.load(), (1u << 15) - 1);  // 2^15 - 1 nodes
  EXPECT_EQ(tree.tasks_executed, (1u << 15) - 1);
  EXPECT_EQ(tree.tasks_spawned, (1u << 15) - 2);

  count.store(0);
  TaskEngineStats chain = engine.Run(
      {{0, 4000}}, [&count](std::pair<int, int>& t, Ctx& ctx) {
        count.fetch_add(1, std::memory_order_relaxed);
        if (t.second > 0) ctx.Spawn({0, t.second - 1});
      });
  EXPECT_EQ(count.load(), 4001u);
  EXPECT_EQ(chain.tasks_executed, 4001u);
}

TEST(TaskEngineTest, ParkedThievesRaiseStealPressure) {
  // One giant task, three empty workers: the thieves must park and the
  // busy worker must observe the pressure signal (the gate adaptive
  // splitting polls).
  TaskEngine<int> engine(TaskEngineConfig{.num_threads = 4});
  std::atomic<bool> saw_pressure{false};
  engine.Run({0}, [&saw_pressure](int&, TaskEngine<int>::Context& ctx) {
    Timer t;
    while (t.ElapsedSeconds() < 2.0) {
      if (ctx.StealPressure()) {
        saw_pressure.store(true);
        EXPECT_GE(ctx.ParkedWorkers(), 1u);
        break;
      }
    }
  });
  EXPECT_TRUE(saw_pressure.load());
}

TEST(TaskEngineTest, ParallelEfficiencyZeroOnEmptyRun) {
  TaskEngineStats fresh;
  EXPECT_EQ(fresh.ParallelEfficiency(), 0.0);  // no run: nothing perfect
  TaskEngine<int> engine(TaskEngineConfig{.num_threads = 2});
  TaskEngineStats stats =
      engine.Run({}, [](int&, TaskEngine<int>::Context&) {});
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.ParallelEfficiency(), 0.0);
}

TEST(TaskEngineTest, ThreadCountResolvesFromEnvAndHardware) {
  EXPECT_EQ(ResolveTaskThreads(5), 5u);  // explicit request wins
  ASSERT_EQ(setenv("GAL_TASK_THREADS", "3", 1), 0);
  EXPECT_EQ(ResolveTaskThreads(0), 3u);
  TaskEngine<int> engine(TaskEngineConfig{});  // num_threads = 0 -> env
  std::atomic<int> count{0};
  TaskEngineStats stats = engine.Run(
      {1, 2, 3}, [&count](int&, TaskEngine<int>::Context&) { count++; });
  EXPECT_EQ(count.load(), 3);
  EXPECT_EQ(stats.busy_seconds.size(), 3u);
  ASSERT_EQ(unsetenv("GAL_TASK_THREADS"), 0);
  EXPECT_GE(ResolveTaskThreads(0), 1u);  // hardware fallback
}

TEST(TaskEngineTest, StatsSurfaceStealAndParkSpans) {
  TaskEngine<int> engine(TaskEngineConfig{.num_threads = 4});
  TaskEngineStats stats = engine.Run(
      {12}, [](int& n, TaskEngine<int>::Context& ctx) {
        if (n > 0) {
          ctx.Spawn(n - 1);
          ctx.Spawn(n - 1);
        }
      });
  EXPECT_EQ(stats.steal_latency.name, "steal_latency");
  EXPECT_EQ(stats.park_time.name, "park_time");
  EXPECT_EQ(stats.queue_depth.name, "queue_depth");
  if (stats.steals > 0) {
    EXPECT_GT(stats.steal_latency.max_seconds, 0.0);
  }
  if (stats.parks > 0) {
    EXPECT_GT(stats.park_time.max_seconds, 0.0);
  }
}

// --- BFS extension engine ------------------------------------------------------

/// Clique-style canonical extension: common neighbors greater than the
/// last vertex.
BfsExtensionEngine::ExtendFn CliqueExtend(const Graph& g) {
  return [&g](const Embedding& e, std::vector<VertexId>& out) {
    const VertexId last = e.back();
    g.ForEachOutNeighbor(last, [&](VertexId u) {
      if (u <= last) return;
      bool adjacent_to_all = true;
      for (VertexId v : e) {
        if (v != last && !g.HasEdge(u, v)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) out.push_back(u);
    });
  };
}

std::vector<VertexId> AllVertices(const Graph& g) {
  std::vector<VertexId> roots(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) roots[v] = v;
  return roots;
}

TEST(BfsEngineTest, EnumeratesTrianglesOnce) {
  Graph g = Complete(6);
  BfsExtensionEngine engine(BfsEngineConfig{});
  std::atomic<uint64_t> triangles{0};
  BfsEngineStats stats =
      engine.Run(AllVertices(g), 3, CliqueExtend(g),
                 [&triangles](const Embedding&) { triangles++; });
  EXPECT_EQ(triangles.load(), 20u);  // C(6,3)
  EXPECT_GT(stats.peak_materialized, 0u);
  EXPECT_FALSE(stats.budget_exceeded);
}

TEST(BfsEngineTest, PeakMemoryGrowsWithLevelWidth) {
  Graph g = Complete(14);
  BfsExtensionEngine engine(BfsEngineConfig{});
  uint64_t outputs = 0;
  BfsEngineStats s4 = engine.Run(AllVertices(g), 4, CliqueExtend(g),
                                 [&outputs](const Embedding&) { ++outputs; });
  EXPECT_EQ(outputs, 1001u);  // C(14,4)
  // Materialized frontier must cover at least the size-3 level: C(14,3).
  EXPECT_GE(s4.peak_materialized, 364u);
}

TEST(BfsEngineTest, StrictPolicyAbortsOnBudget) {
  Graph g = Complete(12);
  BfsEngineConfig config;
  config.memory_budget_bytes = 512;  // absurdly small
  config.policy = MemoryPolicy::kStrict;
  BfsExtensionEngine engine(config);
  BfsEngineStats stats =
      engine.Run(AllVertices(g), 4, CliqueExtend(g), [](const Embedding&) {});
  EXPECT_TRUE(stats.budget_exceeded);
}

TEST(BfsEngineTest, SpillPolicyCompletesAndAccountsOverflow) {
  Graph g = Complete(12);
  BfsEngineConfig config;
  config.memory_budget_bytes = 2048;
  config.policy = MemoryPolicy::kSpill;
  BfsExtensionEngine engine(config);
  uint64_t outputs = 0;
  BfsEngineStats stats = engine.Run(AllVertices(g), 4, CliqueExtend(g),
                                    [&outputs](const Embedding&) { ++outputs; });
  EXPECT_EQ(outputs, 495u);  // C(12,4)
  EXPECT_GT(stats.spilled_bytes, 0u);
  EXPECT_FALSE(stats.budget_exceeded);
}

TEST(BfsEngineTest, SpillPolicyKeepsResidentBytesWithinBudget) {
  // Regression: spilled embeddings were charged to the next level's
  // resident bytes as well as spilled_bytes, double-counting the
  // overflow and reporting a peak far beyond the budget even though the
  // policy's whole point is that overflow lives in host memory.
  Graph g = Complete(12);
  BfsEngineConfig config;
  config.memory_budget_bytes = 2048;
  config.policy = MemoryPolicy::kSpill;
  BfsExtensionEngine engine(config);
  uint64_t outputs = 0;
  BfsEngineStats stats = engine.Run(AllVertices(g), 4, CliqueExtend(g),
                                    [&outputs](const Embedding&) { ++outputs; });
  EXPECT_EQ(outputs, 495u);  // spilling must not drop work: C(12,4)
  EXPECT_GT(stats.spilled_bytes, 0u);
  // Resident footprint never exceeds the budget by more than the one
  // embedding whose admission check tripped (the roots here fit).
  const uint64_t slack = 4 * sizeof(VertexId) + sizeof(Embedding);
  EXPECT_LE(stats.peak_bytes, config.memory_budget_bytes + slack);
}

TEST(BfsEngineTest, HybridPolicyMatchesCountWithBoundedMemory) {
  Graph g = Complete(12);
  BfsEngineConfig unlimited;
  BfsExtensionEngine full(unlimited);
  uint64_t expect = 0;
  full.Run(AllVertices(g), 4, CliqueExtend(g),
           [&expect](const Embedding&) { ++expect; });

  BfsEngineConfig config;
  config.memory_budget_bytes = 4096;
  config.policy = MemoryPolicy::kHybridDfs;
  BfsExtensionEngine hybrid(config);
  uint64_t outputs = 0;
  BfsEngineStats stats = hybrid.Run(AllVertices(g), 4, CliqueExtend(g),
                                    [&outputs](const Embedding&) { ++outputs; });
  EXPECT_EQ(outputs, expect);
  EXPECT_GT(stats.dfs_fallback_embeddings, 0u);
  EXPECT_LE(stats.peak_bytes, 2 * config.memory_budget_bytes);
}

// --- Triangles -----------------------------------------------------------------

uint64_t BruteTriangles(const Graph& g) {
  uint64_t count = 0;
  std::vector<VertexId> row;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto nv = g.NeighborsInto(v, row);
    for (VertexId u : nv) {
      if (u <= v) continue;
      for (VertexId w : nv) {
        if (w <= u) continue;
        count += g.HasEdge(u, w);
      }
    }
  }
  return count;
}

TEST(TrianglesTest, SerialMatchesBruteForce) {
  for (uint64_t seed : {1ull, 5ull, 9ull}) {
    Graph g = ErdosRenyi(150, 0.07, seed);
    EXPECT_EQ(SerialTriangleCount(g).triangles, BruteTriangles(g));
  }
}

TEST(TrianglesTest, TaskMatchesSerial) {
  Graph g = Rmat(10, 8, 17);
  TriangleCountResult serial = SerialTriangleCount(g);
  TriangleCountResult task =
      TaskTriangleCount(g, TaskEngineConfig{.num_threads = 8});
  EXPECT_EQ(task.triangles, serial.triangles);
  EXPECT_EQ(task.intersection_ops, serial.intersection_ops);
}

TEST(TrianglesTest, CompleteAndBipartite) {
  EXPECT_EQ(SerialTriangleCount(Complete(20)).triangles, 1140u);
  EXPECT_EQ(SerialTriangleCount(Grid(8, 8)).triangles, 0u);
}

// --- Maximal cliques ---------------------------------------------------------

TEST(MaximalCliquesTest, CompleteGraphHasOne) {
  MaximalCliqueResult r = MaximalCliques(Complete(8));
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(r.largest, 8u);
}

TEST(MaximalCliquesTest, TriangleWithPendant) {
  // Triangle {0,1,2} + pendant edge 2-3: maximal cliques {0,1,2}, {2,3}.
  Graph g = std::move(
      Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, {}).value());
  MaximalCliqueResult r = MaximalCliques(g, {}, /*collect=*/true);
  EXPECT_EQ(r.count, 2u);
  std::sort(r.cliques.begin(), r.cliques.end());
  EXPECT_EQ(r.cliques[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(r.cliques[1], (std::vector<VertexId>{2, 3}));
}

TEST(MaximalCliquesTest, MoonMoserWorstCase) {
  // K(3,3,3) complement-style: the cocktail-party-like bound. Build the
  // complete tripartite complement: 3 groups of 3, edges between groups.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 9; ++u) {
    for (VertexId v = u + 1; v < 9; ++v) {
      if (u / 3 != v / 3) edges.push_back({u, v});
    }
  }
  Graph g = std::move(Graph::FromEdges(9, edges, {}).value());
  MaximalCliqueResult r = MaximalCliques(g);
  EXPECT_EQ(r.count, 27u);  // 3^3 maximal cliques (Moon–Moser)
  EXPECT_EQ(r.largest, 3u);
}

TEST(MaximalCliquesTest, MinSizeFilters) {
  Graph g = std::move(
      Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, {}).value());
  MaximalCliqueOptions opt;
  opt.min_size = 3;
  EXPECT_EQ(MaximalCliques(g, opt).count, 1u);
}

TEST(MaximalCliquesTest, ThreadCountInvariant) {
  Graph g = ErdosRenyi(200, 0.08, 42);
  MaximalCliqueOptions opt1;
  opt1.engine.num_threads = 1;
  MaximalCliqueOptions opt8;
  opt8.engine.num_threads = 8;
  opt8.split_depth = 3;
  MaximalCliqueResult a = MaximalCliques(g, opt1);
  MaximalCliqueResult b = MaximalCliques(g, opt8);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.largest, b.largest);
}

TEST(MaximalCliquesTest, CollectedCliquesAreMaximalCliques) {
  Graph g = ErdosRenyi(80, 0.15, 7);
  MaximalCliqueResult r = MaximalCliques(g, {}, /*collect=*/true);
  ASSERT_EQ(r.cliques.size(), r.count);
  std::set<std::vector<VertexId>> unique(r.cliques.begin(), r.cliques.end());
  EXPECT_EQ(unique.size(), r.count);  // no duplicates
  for (const auto& clique : r.cliques) {
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        ASSERT_TRUE(g.HasEdge(clique[i], clique[j]));
      }
    }
    // Maximality: no vertex extends it.
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (std::binary_search(clique.begin(), clique.end(), v)) continue;
      bool extends = true;
      for (VertexId u : clique) {
        if (!g.HasEdge(u, v)) {
          extends = false;
          break;
        }
      }
      ASSERT_FALSE(extends);
    }
  }
}

// --- Maximum clique -----------------------------------------------------------

TEST(MaximumCliqueTest, FindsPlantedClique) {
  Graph bg = ErdosRenyi(150, 0.05, 3);
  std::vector<Edge> edges = bg.CollectEdges();
  for (VertexId u = 100; u < 108; ++u) {
    for (VertexId v = u + 1; v < 108; ++v) edges.push_back({u, v});
  }
  Graph g = std::move(Graph::FromEdges(150, edges, {}).value());
  MaximumCliqueResult r = MaximumClique(g);
  EXPECT_EQ(r.size, 8u);
  for (size_t i = 0; i < r.clique.size(); ++i) {
    for (size_t j = i + 1; j < r.clique.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(r.clique[i], r.clique[j]));
    }
  }
}

TEST(MaximumCliqueTest, AgreesWithMaximalLargest) {
  for (uint64_t seed : {2ull, 8ull}) {
    Graph g = ErdosRenyi(120, 0.12, seed);
    EXPECT_EQ(MaximumClique(g).size, MaximalCliques(g).largest);
  }
}

TEST(MaximumCliqueTest, PruningActuallyPrunes) {
  Graph g = ErdosRenyi(150, 0.2, 5);
  MaximumCliqueResult r = MaximumClique(g);
  EXPECT_GT(r.branches_pruned, 0u);
}

// --- Connected subgraph enumeration --------------------------------------------

TEST(SubgraphEnumTest, CountsAllConnectedSubsetsOfK4) {
  Graph g = Complete(4);
  SubgraphEnumOptions opt;
  opt.max_size = 4;
  std::atomic<uint64_t> count{0};
  SubgraphEnumStats stats = EnumerateConnectedSubgraphs(
      g, opt, [&count](const std::vector<VertexId>&) {
        count++;
        return true;
      });
  EXPECT_EQ(count.load(), 15u);  // all nonempty subsets of K4
  EXPECT_EQ(stats.subgraphs_visited, 15u);
}

TEST(SubgraphEnumTest, PathSubgraphsAreIntervals) {
  Graph g = Path(6);
  SubgraphEnumOptions opt;
  opt.max_size = 6;
  std::mutex mu;
  std::set<std::vector<VertexId>> seen;
  EnumerateConnectedSubgraphs(g, opt, [&](const std::vector<VertexId>& s) {
    std::vector<VertexId> sorted = s;
    std::sort(sorted.begin(), sorted.end());
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(sorted).second) << "duplicate subgraph";
    return true;
  });
  // Connected subgraphs of a path are intervals: 6+5+4+3+2+1 = 21.
  EXPECT_EQ(seen.size(), 21u);
}

TEST(SubgraphEnumTest, SizeCapRespected) {
  Graph g = Complete(6);
  SubgraphEnumOptions opt;
  opt.max_size = 2;
  std::atomic<uint64_t> count{0};
  EnumerateConnectedSubgraphs(g, opt, [&count](const std::vector<VertexId>& s) {
    EXPECT_LE(s.size(), 2u);
    count++;
    return true;
  });
  EXPECT_EQ(count.load(), 6u + 15u);  // singletons + edges
}

TEST(SubgraphEnumTest, PruningStopsExtensions) {
  Graph g = Complete(6);
  SubgraphEnumOptions opt;
  opt.max_size = 4;
  std::atomic<uint64_t> count{0};
  EnumerateConnectedSubgraphs(g, opt, [&count](const std::vector<VertexId>& s) {
    count++;
    return s.size() < 2;  // never extend beyond pairs
  });
  EXPECT_EQ(count.load(), 6u + 15u);
}

// --- Quasi-cliques -------------------------------------------------------------

std::vector<std::vector<VertexId>> BruteQuasiCliques(const Graph& g,
                                                     double gamma,
                                                     uint32_t min_size,
                                                     uint32_t max_size) {
  std::vector<std::vector<VertexId>> out;
  const VertexId n = g.NumVertices();
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> s;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) s.push_back(v);
    }
    if (s.size() < min_size || s.size() > max_size) continue;
    if (IsQuasiClique(g, s, gamma)) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(QuasiCliqueTest, MatchesBruteForceOnSmallGraphs) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    Graph g = ErdosRenyi(12, 0.35, seed);
    QuasiCliqueOptions opt;
    opt.gamma = 0.6;
    opt.min_size = 3;
    opt.max_size = 5;
    QuasiCliqueResult r = FindQuasiCliques(g, opt);
    EXPECT_EQ(r.quasi_cliques,
              BruteQuasiCliques(g, 0.6, 3, 5)) << "seed " << seed;
  }
}

TEST(QuasiCliqueTest, GammaOneMeansCliques) {
  Graph g = ErdosRenyi(14, 0.4, 11);
  QuasiCliqueOptions opt;
  opt.gamma = 1.0;
  opt.min_size = 3;
  opt.max_size = 4;
  QuasiCliqueResult r = FindQuasiCliques(g, opt);
  for (const auto& s : r.quasi_cliques) {
    for (size_t i = 0; i < s.size(); ++i) {
      for (size_t j = i + 1; j < s.size(); ++j) {
        EXPECT_TRUE(g.HasEdge(s[i], s[j]));
      }
    }
  }
}

TEST(QuasiCliqueTest, FindsPlantedDenseGroup) {
  // Sparse graph + near-clique (K6 minus one edge) on 0..5.
  Graph bg = ErdosRenyi(40, 0.02, 9);
  std::vector<Edge> edges = bg.CollectEdges();
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) {
      if (!(u == 0 && v == 1)) edges.push_back({u, v});
    }
  }
  Graph g = std::move(Graph::FromEdges(40, edges, {}).value());
  QuasiCliqueOptions opt;
  opt.gamma = 0.8;
  opt.min_size = 6;
  opt.max_size = 6;
  QuasiCliqueResult r = FindQuasiCliques(g, opt);
  std::vector<VertexId> planted = {0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(std::find(r.quasi_cliques.begin(), r.quasi_cliques.end(),
                        planted) != r.quasi_cliques.end());
}

TEST(QuasiCliqueTest, IsQuasiCliqueEdgeCases) {
  Graph g = Complete(5);
  EXPECT_TRUE(IsQuasiClique(g, {0, 1, 2}, 1.0));
  EXPECT_FALSE(IsQuasiClique(g, {}, 0.5));
  Graph p = Path(4);
  EXPECT_FALSE(IsQuasiClique(p, {0, 1, 2, 3}, 0.8));  // ends have deg 1
  EXPECT_TRUE(IsQuasiClique(p, {0, 1}, 1.0));
}

}  // namespace
}  // namespace gal
