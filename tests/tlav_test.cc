#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/random_walk.h"
#include "tlav/algos/traversal.h"
#include "tlav/algos/triangle_tlav.h"
#include "tlav/algos/wcc.h"
#include "tlav/algos/batched_queries.h"
#include "tlav/algos/wcc_sv.h"
#include "tlav/engine.h"

namespace gal {
namespace {

// --- serial references -----------------------------------------------------

std::vector<VertexId> SerialComponents(const Graph& g) {
  std::vector<VertexId> comp(g.NumVertices(), kInvalidVertex);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    if (comp[s] != kInvalidVertex) continue;
    std::queue<VertexId> q;
    q.push(s);
    comp[s] = s;
    while (!q.empty()) {
      VertexId v = q.front();
      q.pop();
      g.ForEachOutNeighbor(v, [&](VertexId u) {
        if (comp[u] == kInvalidVertex) {
          comp[u] = s;
          q.push(u);
        }
      });
    }
  }
  return comp;
}

std::vector<uint32_t> SerialBfs(const Graph& g, VertexId s) {
  std::vector<uint32_t> dist(g.NumVertices(), kUnreachable);
  std::queue<VertexId> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    });
  }
  return dist;
}

std::vector<uint64_t> SerialDijkstra(const Graph& g, VertexId s) {
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> dist(g.NumVertices(), kInf);
  using Item = std::pair<uint64_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.push({0, s});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      const uint64_t nd = d + SyntheticEdgeWeight(v, u);
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.push({nd, u});
      }
    });
  }
  return dist;
}

uint64_t SerialTriangles(const Graph& g) {
  uint64_t count = 0;
  std::vector<VertexId> row;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto nv = g.NeighborsInto(v, row);
    for (VertexId u : nv) {
      if (u <= v) continue;
      for (VertexId w : nv) {
        if (w <= u) continue;
        count += g.HasEdge(u, w);
      }
    }
  }
  return count;
}

// --- engine mechanics --------------------------------------------------------

struct CountdownProgram : public VertexProgram<int, int> {
  void Compute(VertexHandle<int, int>& v, std::span<const int>) override {
    if (v.superstep() < 3) {
      v.SendTo(v.id(), 0);  // self-message keeps the vertex alive
    } else {
      v.value() = static_cast<int>(v.superstep());
      v.VoteToHalt();
    }
  }
};

TEST(TlavEngineTest, TerminatesWhenAllHaltAndTracksSupersteps) {
  Graph g = Path(10);
  TlavEngine<int, int> engine(&g, TlavConfig{.num_workers = 2});
  CountdownProgram program;
  TlavStats stats = engine.Run(program);
  EXPECT_EQ(stats.supersteps, 4u);  // steps 0..3
  for (int v : engine.values()) EXPECT_EQ(v, 3);
}

struct EchoProgram : public VertexProgram<int, int> {
  void Compute(VertexHandle<int, int>& v, std::span<const int> msgs) override {
    if (v.superstep() == 0) {
      v.SendToAllNeighbors(1);
    } else {
      v.value() = static_cast<int>(msgs.size());
    }
    v.VoteToHalt();
  }
};

TEST(TlavEngineTest, MessageCountsMatchDegrees) {
  Graph g = Star(6);
  TlavEngine<int, int> engine(&g, TlavConfig{.num_workers = 3});
  EchoProgram program;
  TlavStats stats = engine.Run(program);
  EXPECT_EQ(engine.values()[0], 5);  // hub hears from all leaves
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(engine.values()[v], 1);
  EXPECT_EQ(stats.total_messages, 10u);  // 2 * |E|
}

TEST(TlavEngineTest, CrossWorkerTrafficDependsOnPartition) {
  Graph g = Path(64);
  // Range partition of a path keeps almost all edges internal.
  TlavEngine<int, int> range_engine(&g, TlavConfig{.num_workers = 4},
                                    RangePartition(g, 4));
  EchoProgram p1;
  TlavStats range_stats = range_engine.Run(p1);
  TlavEngine<int, int> hash_engine(&g, TlavConfig{.num_workers = 4});
  EchoProgram p2;
  TlavStats hash_stats = hash_engine.Run(p2);
  EXPECT_EQ(range_stats.total_messages, hash_stats.total_messages);
  EXPECT_LT(range_stats.cross_worker_messages,
            hash_stats.cross_worker_messages / 2);
}

struct AggregatorProgram : public VertexProgram<double, int> {
  void Compute(VertexHandle<double, int>& v, std::span<const int>) override {
    if (v.superstep() == 0) {
      v.Aggregate("degsum", v.Degree());
      v.SendTo(v.id(), 0);
    } else {
      v.value() = v.GetAggregate("degsum");
      v.VoteToHalt();
    }
  }
};

TEST(TlavEngineTest, AggregatorVisibleNextSuperstep) {
  Graph g = Complete(5);
  TlavEngine<double, int> engine(&g, TlavConfig{.num_workers = 2});
  engine.RegisterAggregator("degsum", AggregateOp::kSum);
  AggregatorProgram program;
  engine.Run(program);
  for (double v : engine.values()) EXPECT_DOUBLE_EQ(v, 20.0);  // 2|E|
}

TEST(TlavEngineTest, MaxSuperstepsBoundsRun) {
  Graph g = Path(4);
  TlavEngine<int, int> engine(&g, TlavConfig{.num_workers = 1,
                                             .max_supersteps = 2});
  CountdownProgram program;  // wants 4 supersteps
  TlavStats stats = engine.Run(program);
  EXPECT_EQ(stats.supersteps, 2u);
}

// --- Pregel+ hub mirroring -----------------------------------------------------

TEST(TlavEngineTest, MirroringCutsWireMessagesWithoutChangingResults) {
  // A hub broadcasting to receivers nobody else feeds is mirroring's
  // sweet spot: the combiner cannot collapse the hub's fan-out (every
  // message has a distinct destination), while one mirror per worker
  // can. Pregel+'s message reduction, on its ideal topology.
  Graph g = Star(2000);
  PageRankOptions plain;
  plain.engine.num_workers = 4;
  PageRankOptions mirrored = plain;
  mirrored.engine.mirror_degree_threshold = 64;
  PageRankResult a = PageRank(g, plain);
  PageRankResult b = PageRank(g, mirrored);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_NEAR(a.ranks[v], b.ranks[v], 1e-12);
  }
  EXPECT_GT(b.stats.mirrored_deliveries, 0u);
  // The hub's ~1500 cross-worker deliveries per superstep collapse to
  // <= 3 mirror messages: at least a 10x wire reduction overall.
  EXPECT_LT(b.stats.cross_worker_messages,
            a.stats.cross_worker_messages / 10);
  EXPECT_EQ(a.stats.total_messages, b.stats.total_messages);
}

TEST(TlavEngineTest, MirroringCanLoseToCombiningOnSharedReceivers) {
  // The Pregel+ trade-off the paper analyzes: when receivers are fed by
  // many senders, the combiner already collapses traffic and mirroring
  // adds its per-worker broadcast on top — no win. The engine's
  // accounting reproduces that tension honestly.
  Graph g = BarabasiAlbert(2000, 8, 3);
  PageRankOptions plain;
  plain.engine.num_workers = 4;
  PageRankOptions mirrored = plain;
  mirrored.engine.mirror_degree_threshold = 32;
  PageRankResult a = PageRank(g, plain);
  PageRankResult b = PageRank(g, mirrored);
  // Results identical; wire within ~5% either way on this topology.
  EXPECT_LT(b.stats.cross_worker_messages,
            a.stats.cross_worker_messages * 106 / 100);
  EXPECT_GT(b.stats.mirrored_deliveries, 0u);
}

TEST(TlavEngineTest, MirroringThresholdZeroIsOff) {
  Graph g = Star(100);
  BfsResult plain = TlavBfs(g, 0);
  EXPECT_EQ(plain.stats.mirrored_deliveries, 0u);
}

TEST(TlavEngineTest, MirroringHelpsEvenWithoutCombiner) {
  // BFS without mirroring: the hub sends 99 messages at step 0; with
  // mirroring, at most one wire message per worker.
  Graph g = Star(100);
  TlavConfig plain;
  plain.num_workers = 4;
  TlavConfig mirrored = plain;
  mirrored.mirror_degree_threshold = 8;
  // BFS uses a min-combiner; compare wire traffic of the hub fan-out.
  BfsResult a = TlavBfs(g, 0, plain);
  BfsResult b = TlavBfs(g, 0, mirrored);
  EXPECT_EQ(a.distance, b.distance);
  EXPECT_LT(b.stats.cross_worker_messages, a.stats.cross_worker_messages);
}

// --- checkpointing / fault tolerance (shared FaultPlan) ----------------------

TEST(TlavEngineTest, CheckpointsAreTakenAndAccounted) {
  Graph g = Path(64);
  TlavConfig config;
  config.num_workers = 2;
  config.faults = FaultPlan{}.CheckpointEvery(10);
  WccResult r = Wcc(g, config);
  EXPECT_GT(r.stats.checkpoints_taken, 3u);
  EXPECT_GT(r.stats.checkpoint_bytes, 0u);
  EXPECT_EQ(r.stats.failures_recovered, 0u);
}

TEST(TlavEngineTest, RecoveryFromInjectedFailureMatchesCleanRun) {
  Graph g = ErdosRenyi(300, 0.01, 9);
  WccResult clean = Wcc(g);
  TlavConfig faulty;
  faulty.faults = FaultPlan{}.CheckpointEvery(3).FailWorkerAt(1, 7);
  WccResult recovered = Wcc(g, faulty);
  EXPECT_EQ(recovered.component, clean.component);
  EXPECT_EQ(recovered.stats.failures_recovered, 1u);
  EXPECT_GT(recovered.stats.recomputed_supersteps, 0u);
  EXPECT_LE(recovered.stats.recomputed_supersteps, 3u);
}

TEST(TlavEngineTest, RecoveryWorksForPageRankWithAggregators) {
  Graph g = Rmat(8, 6, 3);
  PageRankOptions clean_options;
  PageRankResult clean = PageRank(g, clean_options);
  PageRankOptions faulty_options;
  faulty_options.engine.faults =
      FaultPlan{}.CheckpointEvery(4).FailWorkerAt(0, 9);
  PageRankResult recovered = PageRank(g, faulty_options);
  ASSERT_EQ(recovered.stats.failures_recovered, 1u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(recovered.ranks[v], clean.ranks[v], 1e-12);
  }
}

TEST(TlavEngineTest, MoreFrequentCheckpointsLessRecomputation) {
  Graph g = Path(256);
  TlavConfig sparse_cp;
  sparse_cp.faults = FaultPlan{}.CheckpointEvery(50).FailWorkerAt(0, 148);
  TlavConfig dense_cp;
  dense_cp.faults = FaultPlan{}.CheckpointEvery(5).FailWorkerAt(0, 148);
  WccResult a = Wcc(g, sparse_cp);
  WccResult b = Wcc(g, dense_cp);
  EXPECT_EQ(a.component, b.component);
  EXPECT_GT(a.stats.recomputed_supersteps, b.stats.recomputed_supersteps);
  EXPECT_GT(b.stats.checkpoint_bytes, a.stats.checkpoint_bytes);
}

TEST(TlavEngineTest, FailureBeforeFirstCheckpointRestoresInitialState) {
  Graph g = ErdosRenyi(200, 0.015, 5);
  WccResult clean = Wcc(g);
  TlavConfig faulty;
  // Checkpoints every 10 supersteps; the failure lands at superstep 4,
  // before any interval checkpoint — recovery replays from the initial
  // snapshot (rounds 0..4 recomputed).
  faulty.faults = FaultPlan{}.CheckpointEvery(10).FailWorkerAt(0, 4);
  WccResult recovered = Wcc(g, faulty);
  EXPECT_EQ(recovered.component, clean.component);
  EXPECT_EQ(recovered.stats.failures_recovered, 1u);
  EXPECT_EQ(recovered.stats.recomputed_supersteps, 5u);
}

// --- PageRank ---------------------------------------------------------------

TEST(PageRankTest, SumsToOneAndUniformOnRegularGraph) {
  Graph g = Cycle(20);
  PageRankResult r = PageRank(g);
  double sum = 0.0;
  for (double x : r.ranks) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (double x : r.ranks) EXPECT_NEAR(x, 1.0 / 20, 1e-9);
}

TEST(PageRankTest, HubOutranksLeaves) {
  Graph g = Star(50);
  PageRankResult r = PageRank(g);
  for (VertexId v = 1; v < 50; ++v) EXPECT_GT(r.ranks[0], r.ranks[v] * 5);
}

TEST(PageRankTest, DanglingMassIsConserved) {
  // Directed chain: 0 -> 1 -> 2; vertex 2 dangles.
  GraphOptions opt;
  opt.directed = true;
  Graph g = std::move(
      Graph::FromEdges(3, {{0, 1}, {1, 2}}, opt).value());
  PageRankResult r = PageRank(g);
  double sum = 0.0;
  for (double x : r.ranks) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, WorkerCountDoesNotChangeResult) {
  Graph g = Rmat(8, 6, 31);
  PageRankOptions one;
  one.engine.num_workers = 1;
  PageRankOptions eight;
  eight.engine.num_workers = 8;
  PageRankResult a = PageRank(g, one);
  PageRankResult b = PageRank(g, eight);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(a.ranks[v], b.ranks[v], 1e-9);
  }
}

// --- WCC ---------------------------------------------------------------------

TEST(WccTest, MatchesSerialReference) {
  Graph g = ErdosRenyi(300, 0.005, 77);  // sparse: several components
  WccResult r = Wcc(g);
  std::vector<VertexId> ref = SerialComponents(g);
  // Same partition of vertices into groups.
  std::set<VertexId> distinct(r.component.begin(), r.component.end());
  EXPECT_EQ(distinct.size(), r.num_components);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    g.ForEachOutNeighbor(u, [&](VertexId v) {
      EXPECT_EQ(r.component[u], r.component[v]);
    });
  }
  std::set<VertexId> ref_distinct(ref.begin(), ref.end());
  EXPECT_EQ(r.num_components, ref_distinct.size());
}

TEST(WccTest, PathTakesLinearSupersteps) {
  // The degenerate case the survey's complexity discussion warns about:
  // hash-min on a path needs O(|V|) supersteps, blowing the
  // O(log |V|)-iterations envelope where TLAV is efficient.
  Graph g = Path(128);
  WccResult r = Wcc(g);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_GT(r.stats.supersteps, 100u);
}

TEST(WccTest, LowDiameterGraphTakesFewSupersteps) {
  Graph g = Rmat(10, 16, 5);
  WccResult r = Wcc(g);
  EXPECT_LT(r.stats.supersteps, 12u);
}

TEST(WccTest, DirectedGraphYieldsWeakComponents) {
  // Regression: a directed path pointing toward lower ids. Propagating
  // along out-edges only moves labels the wrong way and leaves every
  // vertex its own component; *weak* connectivity must ignore direction
  // and find one.
  std::vector<Edge> edges;
  for (VertexId v = 1; v < 32; ++v) edges.push_back({v, v - 1});
  GraphOptions options;
  options.directed = true;
  Graph g = std::move(Graph::FromEdges(32, std::move(edges), options).value());
  WccResult r = Wcc(g);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.component, std::vector<VertexId>(32, 0));

  // The message-engine path (forced push) must agree.
  WccOptions push_only;
  push_only.direction.mode = DirectionMode::kPushOnly;
  WccResult engine = Wcc(g, push_only);
  EXPECT_EQ(engine.num_components, 1u);
  EXPECT_EQ(engine.component, r.component);
}

// --- SV pointer jumping & block-centric WCC ------------------------------

TEST(SvWccTest, MatchesHashMinOnVariedGraphs) {
  for (uint64_t seed : {3ull, 7ull}) {
    Graph g = ErdosRenyi(400, 0.004, seed);  // fragmented
    SvWccResult sv = SvWcc(g);
    WccResult ref = Wcc(g);
    EXPECT_EQ(sv.num_components, ref.num_components);
    // Same partition into components.
    for (const Edge& e : g.CollectEdges()) {
      EXPECT_EQ(sv.component[e.src], sv.component[e.dst]);
    }
  }
}

TEST(SvWccTest, LogarithmicRoundsOnPath) {
  // The whole point: pointer jumping needs O(log |V|) rounds where
  // hash-min needs Theta(|V|) supersteps.
  Graph g = Path(4096);
  SvWccResult sv = SvWcc(g);
  EXPECT_EQ(sv.num_components, 1u);
  EXPECT_LT(sv.rounds, 64u);
  WccResult hashmin = Wcc(g);
  EXPECT_GT(hashmin.stats.supersteps, 4000u);
}

TEST(SvWccTest, IsolatedVerticesAreOwnComponents) {
  Graph g = std::move(Graph::FromEdges(5, {{0, 1}}, {}).value());
  SvWccResult sv = SvWcc(g);
  EXPECT_EQ(sv.num_components, 4u);
}

TEST(BlockWccTest, MatchesHashMinAndShrinksSupersteps) {
  Graph g = Path(1024);
  WccResult ref = Wcc(g);
  BlockWccResult blk = BlockWcc(g, 32);
  EXPECT_EQ(blk.num_components, ref.num_components);
  EXPECT_EQ(blk.component, ref.component);
  // Hash-min needed ~|V| supersteps; the 32-block quotient needs ~32.
  EXPECT_LT(blk.block_supersteps, 70u);
  EXPECT_GT(ref.stats.supersteps, 1000u);
}

TEST(BlockWccTest, MultiComponentGraph) {
  // Two disjoint cycles plus isolated vertices.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 9; ++v) edges.push_back({v, static_cast<VertexId>((v + 1) % 10 == 0 ? v - 8 : v + 1)});
  Graph g = ErdosRenyi(300, 0.003, 5);
  BlockWccResult blk = BlockWcc(g, 16);
  WccResult ref = Wcc(g);
  EXPECT_EQ(blk.num_components, ref.num_components);
  EXPECT_EQ(blk.component, ref.component);
}

TEST(BlockWccTest, SingleBlockDegeneratesToSerial) {
  Graph g = Rmat(8, 4, 3);
  BlockWccResult blk = BlockWcc(g, 1);
  WccResult ref = Wcc(g);
  EXPECT_EQ(blk.num_components, ref.num_components);
}

// --- BFS / SSSP ---------------------------------------------------------------

TEST(TraversalTest, BfsMatchesSerialReference) {
  Graph g = Rmat(9, 4, 13);
  BfsResult r = TlavBfs(g, 0);
  std::vector<uint32_t> ref = SerialBfs(g, 0);
  EXPECT_EQ(r.distance, ref);
}

TEST(TraversalTest, BfsOnGridDistances) {
  Graph g = Grid(5, 5);
  BfsResult r = TlavBfs(g, 0);
  EXPECT_EQ(r.distance[24], 8u);  // Manhattan distance corner-to-corner
  EXPECT_EQ(r.distance[4], 4u);
}

TEST(TraversalTest, SsspMatchesDijkstra) {
  Graph g = ErdosRenyi(200, 0.03, 99);
  SsspResult r = TlavSssp(g, 0);
  std::vector<uint64_t> ref = SerialDijkstra(g, 0);
  EXPECT_EQ(r.distance, ref);
}

TEST(TraversalTest, OutOfRangeSourceIsAnError) {
  // Regression: an out-of-range source used to return all-kUnreachable
  // with an OK-looking result, indistinguishable from a real run on a
  // graph with an isolated source.
  Graph g = Path(8);
  BfsResult bfs = TlavBfs(g, 8);
  EXPECT_FALSE(bfs.status.ok());
  EXPECT_TRUE(bfs.distance.empty());
  SsspResult sssp = TlavSssp(g, 100);
  EXPECT_FALSE(sssp.status.ok());
  EXPECT_TRUE(sssp.distance.empty());
  // The message-engine path validates too.
  TraversalOptions push_only;
  push_only.direction.mode = DirectionMode::kPushOnly;
  EXPECT_FALSE(TlavBfs(g, 8, push_only).status.ok());
  // In-range sources carry an OK status.
  EXPECT_TRUE(TlavBfs(g, 7).status.ok());
}

TEST(TraversalTest, DirectionOptimizedBfsMatchesPushOnly) {
  // The tentpole invariant: identical distances whichever way each
  // level walked the edges, at several worker counts.
  for (uint32_t workers : {1u, 2u, 4u}) {
    Graph g = BarabasiAlbert(400, 4, 7);  // dense-frontier middle levels
    TlavConfig config;
    config.num_workers = workers;
    TraversalOptions push_only;
    push_only.engine = config;
    push_only.direction.mode = DirectionMode::kPushOnly;
    TraversalOptions opt;
    opt.engine = config;
    opt.direction.mode = DirectionMode::kAuto;
    BfsResult a = TlavBfs(g, 0, push_only);
    BfsResult b = TlavBfs(g, 0, opt);
    EXPECT_EQ(a.distance, b.distance) << "workers=" << workers;
    EXPECT_GT(b.stats.pull_supersteps, 0u);
    EXPECT_EQ(a.stats.pull_supersteps, 0u);
  }
}

TEST(TraversalTest, SyntheticWeightsSymmetricAndBounded) {
  for (VertexId u = 0; u < 50; ++u) {
    for (VertexId v = u + 1; v < 50; ++v) {
      const uint32_t w = SyntheticEdgeWeight(u, v);
      EXPECT_EQ(w, SyntheticEdgeWeight(v, u));
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 16u);
    }
  }
}

// --- Triangle counting --------------------------------------------------------

TEST(TriangleTlavTest, CountsMatchSerialOnVariedGraphs) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    Graph g = ErdosRenyi(120, 0.08, seed);
    TlavTriangleResult r = TlavTriangleCount(g);
    EXPECT_EQ(r.triangles, SerialTriangles(g)) << "seed " << seed;
  }
}

TEST(TriangleTlavTest, CompleteGraphCount) {
  Graph g = Complete(10);
  EXPECT_EQ(TlavTriangleCount(g).triangles, 120u);  // C(10,3)
}

TEST(TriangleTlavTest, TriangleFreeGraphIsZero) {
  EXPECT_EQ(TlavTriangleCount(Grid(6, 6)).triangles, 0u);
  EXPECT_EQ(TlavTriangleCount(Star(30)).triangles, 0u);
}

TEST(TriangleTlavTest, MessageVolumeIsWedgeBound) {
  // The misfit the survey highlights: message count equals the number of
  // oriented wedges, which dwarfs the triangle count on dense graphs.
  Graph g = Complete(16);
  TlavTriangleResult r = TlavTriangleCount(g);
  EXPECT_EQ(r.triangles, 560u);
  EXPECT_EQ(r.stats.total_messages, 560u);  // one query per oriented wedge
  Graph sparse = ErdosRenyi(200, 0.05, 4);
  TlavTriangleResult rs = TlavTriangleCount(sparse);
  EXPECT_GT(rs.stats.total_messages, rs.triangles);
}

// --- Quegel-style batched online queries -----------------------------------------

TEST(BatchedQueriesTest, MatchesPerQueryBfs) {
  Graph g = Rmat(8, 5, 13);
  std::vector<VertexId> sources = {0, 7, 31, 100};
  BatchedBfsResult batched = BatchedBfsQueries(g, sources);
  BatchedBfsResult sequential = SequentialBfsQueries(g, sources);
  ASSERT_EQ(batched.distances.size(), 4u);
  for (uint32_t q = 0; q < 4; ++q) {
    EXPECT_EQ(batched.distances[q], sequential.distances[q]) << "query " << q;
  }
}

TEST(BatchedQueriesTest, SuperstepSharingAmortizesBarriers) {
  // The Quegel argument: Q queries in one schedule need max(ecc_q)
  // supersteps instead of sum(ecc_q) — barriers shrink ~Q-fold.
  Graph g = Rmat(9, 6, 5);
  std::vector<VertexId> sources;
  for (VertexId s = 0; s < 16; ++s) sources.push_back(s * 31);
  BatchedBfsResult batched = BatchedBfsQueries(g, sources);
  BatchedBfsResult sequential = SequentialBfsQueries(g, sources);
  EXPECT_LT(batched.stats.supersteps, sequential.stats.supersteps / 8);
  // Logical message totals stay in the same ballpark (same frontiers).
  EXPECT_LT(batched.stats.total_messages,
            sequential.stats.total_messages * 2);
}

TEST(BatchedQueriesTest, DisconnectedSourceLeavesUnreachable) {
  Graph g = std::move(Graph::FromEdges(4, {{0, 1}}, {}).value());
  BatchedBfsResult r = BatchedBfsQueries(g, {0, 2});
  EXPECT_EQ(r.distances[0][1], 1u);
  EXPECT_EQ(r.distances[0][2], kUnreachable);
  EXPECT_EQ(r.distances[1][2], 0u);
  EXPECT_EQ(r.distances[1][0], kUnreachable);
}

// --- Random walks ---------------------------------------------------------------

TEST(RandomWalkTest, CorpusShapeAndValidity) {
  Graph g = Rmat(7, 6, 3);
  RandomWalkOptions opt;
  opt.walks_per_vertex = 2;
  opt.walk_length = 5;
  RandomWalkResult r = RandomWalkCorpus(g, opt);
  ASSERT_EQ(r.corpus.size(), g.NumVertices() * 2u);
  for (uint32_t w = 0; w < r.corpus.size(); ++w) {
    const auto& walk = r.corpus[w];
    ASSERT_GE(walk.size(), 1u);
    ASSERT_LE(walk.size(), opt.walk_length + 1u);
    EXPECT_EQ(walk[0], w / 2);  // starts at its seed vertex
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(walk[i], walk[i + 1]))
          << walk[i] << "->" << walk[i + 1];
    }
  }
}

TEST(RandomWalkTest, FullLengthWalksOnConnectedGraph) {
  Graph g = Complete(10);
  RandomWalkOptions opt;
  opt.walk_length = 4;
  RandomWalkResult r = RandomWalkCorpus(g, opt);
  for (const auto& walk : r.corpus) EXPECT_EQ(walk.size(), 5u);
}

TEST(RandomWalkTest, DeterministicAcrossWorkerCounts) {
  Graph g = Rmat(6, 4, 9);
  RandomWalkOptions a;
  a.engine.num_workers = 1;
  RandomWalkOptions b;
  b.engine.num_workers = 8;
  RandomWalkResult ra = RandomWalkCorpus(g, a);
  RandomWalkResult rb = RandomWalkCorpus(g, b);
  EXPECT_EQ(ra.corpus, rb.corpus);
}

TEST(RandomWalkTest, IsolatedVertexWalkTruncates) {
  Graph g = std::move(Graph::FromEdges(3, {{0, 1}}, {}).value());
  RandomWalkOptions opt;
  opt.walks_per_vertex = 1;
  RandomWalkResult r = RandomWalkCorpus(g, opt);
  EXPECT_EQ(r.corpus[2].size(), 1u);  // vertex 2 has no neighbors
}

}  // namespace
}  // namespace gal
