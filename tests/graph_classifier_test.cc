#include <gtest/gtest.h>

#include "common/rng.h"
#include "gnn/graph_classifier.h"
#include "graph/generators.h"
#include "graph/transaction_db.h"

namespace gal {
namespace {

// --- local subgraph features -------------------------------------------------

TEST(LocalSubgraphFeaturesTest, TriangleAndCycleCounts) {
  // Diamond: vertices 0,1 are in 2 triangles each, 2,3 in 1 each; every
  // vertex lies on exactly one 4-cycle? The diamond (K4 minus 2-3) has
  // exactly one 4-cycle (0-2-1-3) through all four vertices.
  Graph diamond = std::move(
      Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}}, {})
          .value());
  Matrix x = LocalSubgraphFeatures(diamond);
  EXPECT_FLOAT_EQ(x.at(0, 2), 2.0f);  // triangles through 0
  EXPECT_FLOAT_EQ(x.at(2, 2), 1.0f);
  for (VertexId v = 0; v < 4; ++v) EXPECT_FLOAT_EQ(x.at(v, 4), 1.0f);
  // Clustering: vertex 2 has degree 2 and its neighbors are adjacent.
  EXPECT_FLOAT_EQ(x.at(2, 3), 1.0f);
}

TEST(LocalSubgraphFeaturesTest, CycleGraphHasNoTriangles) {
  Graph c6 = Cycle(6);
  Matrix x = LocalSubgraphFeatures(c6);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_FLOAT_EQ(x.at(v, 2), 0.0f);
    EXPECT_FLOAT_EQ(x.at(v, 4), 0.0f);  // C6 has no 4-cycles either
  }
  Graph c4 = Cycle(4);
  Matrix x4 = LocalSubgraphFeatures(c4);
  for (VertexId v = 0; v < 4; ++v) EXPECT_FLOAT_EQ(x4.at(v, 4), 1.0f);
}

// --- graph classification ------------------------------------------------------

/// The classic 1-WL blind spot: a 6-cycle vs two disjoint triangles.
/// Both are 2-regular, so plain message passing from constant features
/// computes identical embeddings — a regular GNN cannot tell them
/// apart. Local subgraph counts (triangles!) separate them instantly:
/// the survey's Subgraph-GNN expressiveness claim, reproduced.
TransactionDb WlBlindSpotDb(uint32_t copies, uint64_t seed) {
  TransactionDb db;
  Rng rng(seed);
  for (uint32_t i = 0; i < copies; ++i) {
    // Class 0: one 6-cycle. Class 1: two disjoint triangles.
    Graph c6 = Cycle(6);
    GAL_CHECK_OK(c6.SetLabels(std::vector<Label>(6, 0)));
    db.Add(std::move(c6), 0);
    Graph two_triangles = std::move(
        Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}},
                         {})
            .value());
    GAL_CHECK_OK(two_triangles.SetLabels(std::vector<Label>(6, 0)));
    db.Add(std::move(two_triangles), 1);
  }
  (void)rng;
  return db;
}

TEST(GraphClassifierTest, PlainGnnCannotBeatChanceOnWlBlindSpot) {
  TransactionDb db = WlBlindSpotDb(12, 3);
  GraphClassifierConfig config;
  config.subgraph_features = false;
  config.epochs = 150;
  GraphClassifierReport r = TrainGraphClassifier(db, config);
  // Both classes are 2-regular on 6 vertices: embeddings identical,
  // so even TRAIN accuracy is stuck at chance.
  EXPECT_NEAR(r.train_accuracy, 0.5, 0.01);
  EXPECT_NEAR(r.test_accuracy, 0.5, 0.01);
}

TEST(GraphClassifierTest, SubgraphFeaturesBreakTheWlCeiling) {
  TransactionDb db = WlBlindSpotDb(12, 3);
  GraphClassifierConfig config;
  config.subgraph_features = true;
  config.epochs = 150;
  GraphClassifierReport r = TrainGraphClassifier(db, config);
  EXPECT_DOUBLE_EQ(r.train_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(r.test_accuracy, 1.0);
}

TEST(GraphClassifierTest, LearnsMoleculeClasses) {
  MoleculeDbOptions opt;
  opt.num_transactions = 60;
  opt.vertices_per_graph = 12;
  opt.motif_rate = 1.0;
  opt.extra_edges = 4;  // cleaner backbones: motif counts dominate
  TransactionDb db = SyntheticMoleculeDb(opt, 11);
  GraphClassifierConfig config;
  config.subgraph_features = true;
  config.epochs = 200;
  GraphClassifierReport r = TrainGraphClassifier(db, config);
  // Class 0 plants triangles, class 1 squares: triangle/4-cycle counts
  // are exactly the separating statistic.
  EXPECT_GT(r.test_accuracy, 0.85);
  EXPECT_LT(r.epoch_loss.back(), r.epoch_loss.front());
}

}  // namespace
}  // namespace gal
