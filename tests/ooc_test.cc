// Units for the out-of-core shard substrate (src/ooc/): writer/reader
// roundtrips across shard sizes and layouts, corrupt/truncated-file
// Status behavior, ShardCache LRU determinism / budget enforcement /
// pin safety, and bit-identity of the out-of-core engines against their
// in-memory counterparts across budgets and thread counts.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "ooc/ooc_algos.h"
#include "ooc/shard_format.h"
#include "ooc/sharded_graph.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/wcc.h"

namespace gal {
namespace {

std::string TempBase(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Clears the OOC env knobs for the duration of a test that asserts
/// exact shard/cache behavior, restoring whatever was set on exit.
/// Parity tests deliberately do NOT use this: they must keep passing
/// under the forced-tiny-budget run scripts/check.sh does.
struct OocEnvGuard {
  OocEnvGuard() {
    Save("GAL_OOC_BUDGET_BYTES", &had_budget, &budget);
    Save("GAL_OOC_SHARD_BYTES", &had_shard, &shard);
    unsetenv("GAL_OOC_BUDGET_BYTES");
    unsetenv("GAL_OOC_SHARD_BYTES");
  }
  ~OocEnvGuard() {
    Restore("GAL_OOC_BUDGET_BYTES", had_budget, budget);
    Restore("GAL_OOC_SHARD_BYTES", had_shard, shard);
  }
  static void Save(const char* name, bool* had, std::string* value) {
    const char* v = std::getenv(name);
    *had = v != nullptr;
    if (*had) *value = v;
  }
  static void Restore(const char* name, bool had, const std::string& value) {
    if (had) {
      setenv(name, value.c_str(), 1);
    } else {
      unsetenv(name);
    }
  }
  bool had_budget = false, had_shard = false;
  std::string budget, shard;
};

std::vector<VertexId> Neighbors(const Graph& g, VertexId v) {
  std::vector<VertexId> out;
  g.ForEachOutNeighbor(v, [&](VertexId u) { out.push_back(u); });
  return out;
}

/// Exercises all three access forms of the sharded store against the
/// in-memory graph, vertex by vertex.
void ExpectSameAdjacency(const Graph& g, const ShardedGraph& sg) {
  ASSERT_EQ(g.NumVertices(), sg.NumVertices());
  EXPECT_EQ(g.NumEdges(), sg.NumEdges());
  EXPECT_EQ(g.NumAdjacencyEntries(), sg.NumAdjacencyEntries());
  EXPECT_EQ(g.directed(), sg.directed());
  std::vector<VertexId> scratch;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(g.Degree(v), sg.Degree(v)) << "vertex " << v;
    const std::vector<VertexId> want = Neighbors(g, v);
    // Form 1: streaming visitor.
    std::vector<VertexId> got;
    sg.ForEachOutNeighbor(v, [&](VertexId u) { got.push_back(u); });
    ASSERT_EQ(want, got) << "ForEachOutNeighbor, vertex " << v;
    // Form 2: owning cursor.
    got.clear();
    for (auto cur = sg.OutNeighbors(v); cur.Valid(); cur.Next()) {
      got.push_back(cur.Get());
    }
    ASSERT_EQ(want, got) << "OutNeighbors cursor, vertex " << v;
    // Form 3: decode into scratch.
    const auto span = sg.NeighborsInto(v, scratch);
    ASSERT_EQ(want, std::vector<VertexId>(span.begin(), span.end()))
        << "NeighborsInto, vertex " << v;
  }
}

class ShardedGraphTest : public ::testing::Test {
 protected:
  OocEnvGuard guard_;
};

TEST_F(ShardedGraphTest, RoundtripMatchesInMemory) {
  const Graph g = ErdosRenyi(300, 0.02, 7);
  const std::string base = TempBase("gal_ooc_roundtrip");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 256;
  auto summary = WriteShardedGraph(g, base, wopt);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(summary.value().num_shards, 1u);

  auto opened = ShardedGraph::Open(base);
  ASSERT_TRUE(opened.ok()) << opened.status();
  const ShardedGraph& sg = opened.value();
  EXPECT_EQ(summary.value().num_shards, sg.NumShards());
  EXPECT_EQ(summary.value().total_adj_bytes, sg.TotalAdjacencyBytes());
  EXPECT_EQ(g.MaxDegree(), sg.MaxDegree());
  ExpectSameAdjacency(g, sg);
  RemoveShardedGraphFiles(base);
}

TEST_F(ShardedGraphTest, TinyShardsStillRoundtrip) {
  const Graph g = ErdosRenyi(120, 0.05, 3);
  const std::string base = TempBase("gal_ooc_tiny");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 1;  // every non-empty row becomes its own shard
  auto summary = WriteShardedGraph(g, base, wopt);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(summary.value().num_shards, 50u);
  auto opened = ShardedGraph::Open(base);
  ASSERT_TRUE(opened.ok()) << opened.status();
  ExpectSameAdjacency(g, opened.value());
  RemoveShardedGraphFiles(base);
}

TEST_F(ShardedGraphTest, ShardRangesPartitionTheVertexSpace) {
  const Graph g = ErdosRenyi(200, 0.03, 5);
  const std::string base = TempBase("gal_ooc_ranges");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 512;
  ASSERT_TRUE(WriteShardedGraph(g, base, wopt).ok());
  auto opened = ShardedGraph::Open(base);
  ASSERT_TRUE(opened.ok()) << opened.status();
  const ShardedGraph& sg = opened.value();
  VertexId expect = 0;
  for (uint32_t s = 0; s < sg.NumShards(); ++s) {
    EXPECT_EQ(expect, sg.shard(s).begin);
    expect = sg.shard(s).end;
    for (VertexId v = sg.shard(s).begin; v < sg.shard(s).end; ++v) {
      EXPECT_EQ(s, sg.ShardOf(v));
    }
  }
  EXPECT_EQ(g.NumVertices(), expect);
  RemoveShardedGraphFiles(base);
}

TEST_F(ShardedGraphTest, EmptyAndEdgelessGraphs) {
  const std::string base = TempBase("gal_ooc_empty");
  const Graph empty = Graph::FromEdges(0, {}).value();
  ASSERT_TRUE(WriteShardedGraph(empty, base).ok());
  auto opened = ShardedGraph::Open(base);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(0u, opened.value().NumVertices());
  EXPECT_EQ(0u, opened.value().NumShards());
  RemoveShardedGraphFiles(base);

  const Graph isolated = Graph::FromEdges(5, {}).value();
  ASSERT_TRUE(WriteShardedGraph(isolated, base).ok());
  auto opened2 = ShardedGraph::Open(base);
  ASSERT_TRUE(opened2.ok()) << opened2.status();
  ExpectSameAdjacency(isolated, opened2.value());
  RemoveShardedGraphFiles(base);
}

TEST_F(ShardedGraphTest, DirectedGraphRoundtrip) {
  GraphOptions options;
  options.directed = true;
  const Graph g =
      Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 3}, {5, 0}},
                       options)
          .value();
  const std::string base = TempBase("gal_ooc_directed");
  ASSERT_TRUE(WriteShardedGraph(g, base).ok());
  auto opened = ShardedGraph::Open(base);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_TRUE(opened.value().directed());
  ExpectSameAdjacency(g, opened.value());
  RemoveShardedGraphFiles(base);
}

TEST_F(ShardedGraphTest, ReorderedStoreMapsBackToOriginalIds) {
  const Graph base_g = ErdosRenyi(150, 0.04, 9);
  GraphOptions options;
  options.reorder = ReorderMode::kHubCluster;
  options.compression = CompressionMode::kDeltaVarint;
  const Graph g =
      Graph::FromEdges(base_g.NumVertices(), base_g.CollectEdges(), options)
          .value();
  ASSERT_TRUE(g.IsReordered());

  const std::string base = TempBase("gal_ooc_reordered");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 1024;
  ASSERT_TRUE(WriteShardedGraph(g, base, wopt).ok());
  auto opened = ShardedGraph::Open(base);
  ASSERT_TRUE(opened.ok()) << opened.status();
  const ShardedGraph& sg = opened.value();
  ASSERT_TRUE(sg.IsReordered());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.OriginalId(v), sg.OriginalId(v));
    EXPECT_EQ(g.InternalId(v), sg.InternalId(v));
  }
  std::vector<VertexId> identity(g.NumVertices());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(g.MapToOriginal(identity), sg.MapToOriginal(identity));
  ExpectSameAdjacency(g, sg);
  RemoveShardedGraphFiles(base);
}

TEST_F(ShardedGraphTest, RawAndCompressedInputsWriteIdenticalFiles) {
  const Graph raw = ErdosRenyi(100, 0.05, 13);
  GraphOptions options;
  options.compression = CompressionMode::kDeltaVarint;
  const Graph compressed =
      Graph::FromEdges(raw.NumVertices(), raw.CollectEdges(), options).value();
  ASSERT_TRUE(compressed.IsCompressed());

  const std::string base_a = TempBase("gal_ooc_from_raw");
  const std::string base_b = TempBase("gal_ooc_from_compressed");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 512;
  auto sa = WriteShardedGraph(raw, base_a, wopt);
  auto sb = WriteShardedGraph(compressed, base_b, wopt);
  ASSERT_TRUE(sa.ok() && sb.ok());
  ASSERT_EQ(sa.value().num_shards, sb.value().num_shards);

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  EXPECT_EQ(slurp(ManifestFileName(base_a)), slurp(ManifestFileName(base_b)));
  for (uint32_t s = 0; s < sa.value().num_shards; ++s) {
    EXPECT_EQ(slurp(ShardFileName(base_a, s)), slurp(ShardFileName(base_b, s)))
        << "shard " << s;
  }
  RemoveShardedGraphFiles(base_a);
  RemoveShardedGraphFiles(base_b);
}

// ---------------------------------------------------------------------------

class OocBadFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = TempBase("gal_ooc_badfile");
    g_ = ErdosRenyi(80, 0.06, 21);
    ShardWriterOptions wopt;
    wopt.target_shard_bytes = 128;
    auto summary = WriteShardedGraph(g_, base_, wopt);
    ASSERT_TRUE(summary.ok()) << summary.status();
    ASSERT_GT(summary.value().num_shards, 1u);
  }
  void TearDown() override { RemoveShardedGraphFiles(base_); }

  static void FlipByte(const std::string& path, int64_t offset) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    if (offset < 0) {
      f.seekg(0, std::ios::end);
      offset += static_cast<int64_t>(f.tellg());
    }
    f.seekg(offset);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x5a;
    f.seekp(offset);
    f.write(&c, 1);
  }
  static void Truncate(const std::string& path, int64_t remove_bytes) {
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path,
                                 size - static_cast<uintmax_t>(remove_bytes));
  }

  OocEnvGuard guard_;
  std::string base_;
  Graph g_;
};

TEST_F(OocBadFileTest, MissingManifestIsAnError) {
  std::filesystem::remove(ManifestFileName(base_));
  auto opened = ShardedGraph::Open(base_);
  EXPECT_FALSE(opened.ok());
}

TEST_F(OocBadFileTest, TruncatedManifestIsAnError) {
  Truncate(ManifestFileName(base_), 5);
  auto opened = ShardedGraph::Open(base_);
  EXPECT_FALSE(opened.ok());
}

TEST_F(OocBadFileTest, CorruptManifestIsAnError) {
  FlipByte(ManifestFileName(base_), 24);  // inside the header fields
  auto opened = ShardedGraph::Open(base_);
  EXPECT_FALSE(opened.ok());
}

TEST_F(OocBadFileTest, MissingShardFileIsAnError) {
  std::filesystem::remove(ShardFileName(base_, 1));
  auto opened = ShardedGraph::Open(base_);
  EXPECT_FALSE(opened.ok());
}

TEST_F(OocBadFileTest, TruncatedShardFileIsAnError) {
  Truncate(ShardFileName(base_, 0), 1);
  auto opened = ShardedGraph::Open(base_);
  EXPECT_FALSE(opened.ok());
}

TEST_F(OocBadFileTest, CorruptShardPayloadIsAnError) {
  FlipByte(ShardFileName(base_, 1), 0);  // first varint byte
  auto opened = ShardedGraph::Open(base_);
  EXPECT_FALSE(opened.ok());
  EXPECT_NE(std::string::npos, opened.status().message().find("checksum"));
}

TEST_F(OocBadFileTest, CorruptShardFooterMagicIsAnError) {
  FlipByte(ShardFileName(base_, 0), -static_cast<int64_t>(kOocShardFooterBytes));
  auto opened = ShardedGraph::Open(base_);
  EXPECT_FALSE(opened.ok());
}

TEST_F(OocBadFileTest, ExplicitlyTooSmallBudgetIsInvalidArgument) {
  OocOptions options;
  options.memory_budget_bytes = 1;
  auto opened = ShardedGraph::Open(base_, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, opened.status().code());
}

TEST_F(OocBadFileTest, EnvForcedTinyBudgetClampsUpAndOpens) {
  setenv("GAL_OOC_BUDGET_BYTES", "1", 1);
  auto opened = ShardedGraph::Open(base_);
  unsetenv("GAL_OOC_BUDGET_BYTES");
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened.value().MaxShardResidentBytes(),
            opened.value().cache().budget_bytes());
  ExpectSameAdjacency(g_, opened.value());
}

// ---------------------------------------------------------------------------

/// Cycle(12) has uniformly 2-byte rows (ids < 128, so every varint is
/// one byte), making shard resident sizes equal — the fixture for exact
/// LRU/budget arithmetic. target 6 B -> 4 shards of 3 vertices each.
class ShardCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = TempBase("gal_ooc_cache");
    g_ = Cycle(12);
    ShardWriterOptions wopt;
    wopt.target_shard_bytes = 6;
    auto summary = WriteShardedGraph(g_, base_, wopt);
    ASSERT_TRUE(summary.ok()) << summary.status();
    ASSERT_EQ(4u, summary.value().num_shards);
    shard_bytes_ = summary.value().max_shard_resident_bytes;
  }
  void TearDown() override { RemoveShardedGraphFiles(base_); }

  ShardedGraph OpenWithBudget(uint64_t budget) {
    OocOptions options;
    options.memory_budget_bytes = budget;
    auto opened = ShardedGraph::Open(base_, options);
    EXPECT_TRUE(opened.ok()) << opened.status();
    return std::move(opened.value());
  }

  OocEnvGuard guard_;
  std::string base_;
  Graph g_;
  uint64_t shard_bytes_ = 0;
};

TEST_F(ShardCacheTest, EvictionOrderIsStrictLru) {
  ShardedGraph sg = OpenWithBudget(2 * shard_bytes_);
  { PinnedShard p = sg.Pin(0); }
  { PinnedShard p = sg.Pin(1); }
  { PinnedShard p = sg.Pin(2); }  // evicts 0 (least recently used)
  EXPECT_EQ((std::vector<uint32_t>{1, 2}), sg.cache().ResidentShards());
  { PinnedShard p = sg.Pin(1); }  // hit; 2 becomes LRU
  { PinnedShard p = sg.Pin(3); }  // evicts 2, not 1
  EXPECT_EQ((std::vector<uint32_t>{1, 3}), sg.cache().ResidentShards());

  const ShardCacheStats stats = sg.cache().Stats();
  EXPECT_EQ(4u, stats.loads);
  EXPECT_EQ(1u, stats.hits);
  EXPECT_EQ(2u, stats.evictions);
  EXPECT_EQ(4u * shard_bytes_, stats.bytes_loaded);
}

TEST_F(ShardCacheTest, BudgetIsNeverExceeded) {
  ShardedGraph sg = OpenWithBudget(2 * shard_bytes_);
  // A pseudo-random but fixed access trace.
  const uint32_t trace[] = {0, 3, 1, 1, 2, 0, 3, 2, 1, 0, 2, 3, 3, 0, 1};
  for (uint32_t s : trace) {
    PinnedShard p = sg.Pin(s);
    EXPECT_LE(sg.cache().Stats().resident_bytes, sg.cache().budget_bytes());
  }
  EXPECT_LE(sg.cache().Stats().peak_resident_bytes, sg.cache().budget_bytes());
}

TEST_F(ShardCacheTest, UnlimitedBudgetNeverEvicts) {
  ShardedGraph sg = OpenWithBudget(0);
  for (uint32_t pass = 0; pass < 3; ++pass) {
    for (uint32_t s = 0; s < sg.NumShards(); ++s) {
      PinnedShard p = sg.Pin(s);
    }
  }
  const ShardCacheStats stats = sg.cache().Stats();
  EXPECT_EQ(4u, stats.loads);
  EXPECT_EQ(8u, stats.hits);
  EXPECT_EQ(0u, stats.evictions);
  EXPECT_EQ(4u * shard_bytes_, stats.resident_bytes);
}

TEST_F(ShardCacheTest, PinnedShardSurvivesEvictionPressure) {
  ShardedGraph sg = OpenWithBudget(2 * shard_bytes_);
  PinnedShard held = sg.Pin(0);
  auto cursor = held.OutNeighbors(0);
  // Cycle through every other shard repeatedly; each load must evict,
  // and the only legal victims are the unpinned shards.
  for (uint32_t pass = 0; pass < 3; ++pass) {
    for (uint32_t s = 1; s < sg.NumShards(); ++s) {
      PinnedShard p = sg.Pin(s);
      const std::vector<uint32_t> resident = sg.cache().ResidentShards();
      EXPECT_TRUE(std::find(resident.begin(), resident.end(), 0u) !=
                  resident.end())
          << "pinned shard 0 was evicted";
    }
  }
  // The held cursor still walks valid bytes: vertex 0's neighbors in
  // Cycle(12) are {1, 11}.
  std::vector<VertexId> got;
  for (; cursor.Valid(); cursor.Next()) got.push_back(cursor.Get());
  EXPECT_EQ((std::vector<VertexId>{1, 11}), got);
  EXPECT_LE(sg.cache().Stats().peak_resident_bytes, sg.cache().budget_bytes());
}

TEST_F(ShardCacheTest, OneShardBudgetIsSafeAcrossThreads) {
  ShardedGraph sg = OpenWithBudget(shard_bytes_);
  // Two threads hammer disjoint and overlapping shards; the blocking
  // Acquire plus the one-pin-per-thread discipline must neither
  // deadlock nor overshoot the budget.
  auto worker = [&](uint32_t salt) {
    std::vector<VertexId> scratch;
    for (uint32_t i = 0; i < 200; ++i) {
      const VertexId v = (i * 7 + salt) % sg.NumVertices();
      const auto span = sg.NeighborsInto(v, scratch);
      ASSERT_EQ(2u, span.size());  // every Cycle vertex has degree 2
    }
  };
  std::thread a(worker, 0), b(worker, 5);
  a.join();
  b.join();
  EXPECT_LE(sg.cache().Stats().peak_resident_bytes, sg.cache().budget_bytes());
}

// ---------------------------------------------------------------------------

struct ParityCase {
  uint64_t budget;  // option value; env may override (check.sh does)
  uint32_t threads;
};

class OocParityTest : public ::testing::Test {
 protected:
  static std::vector<ParityCase> Cases(const ShardWriteSummary& summary) {
    const uint64_t one_shard = summary.max_shard_resident_bytes;
    const uint64_t half =
        std::max(one_shard, summary.total_adj_bytes / 2);
    std::vector<ParityCase> cases;
    for (uint64_t budget : {one_shard, half, uint64_t{0}}) {
      for (uint32_t threads : {1u, 8u}) cases.push_back({budget, threads});
    }
    return cases;
  }
};

TEST_F(OocParityTest, PageRankBitIdenticalAcrossBudgetsAndThreads) {
  const Graph g = ErdosRenyi(250, 0.03, 11);
  const std::string base = TempBase("gal_ooc_parity_pr");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 1024;
  auto summary = WriteShardedGraph(g, base, wopt);
  ASSERT_TRUE(summary.ok()) << summary.status();

  const PageRankResult want = PageRank(g);
  for (const ParityCase& c : Cases(summary.value())) {
    OocOptions options;
    options.memory_budget_bytes = c.budget;
    auto opened = ShardedGraph::Open(base, options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    OocPageRankOptions propt;
    propt.num_threads = c.threads;
    const OocPageRankResult got = OocPageRank(opened.value(), propt);
    ASSERT_EQ(want.ranks, got.ranks)
        << "budget " << c.budget << ", threads " << c.threads;
    if (got.stats.budget_bytes > 0) {
      EXPECT_LE(got.stats.peak_resident_bytes, got.stats.budget_bytes);
    }
    EXPECT_EQ(20u, got.stats.supersteps);
    EXPECT_GT(got.stats.shard_loads, 0u);
  }
  RemoveShardedGraphFiles(base);
}

TEST_F(OocParityTest, WccBitIdenticalAcrossBudgetsAndThreads) {
  const Graph g = ErdosRenyi(250, 0.008, 17);  // sparse -> many components
  const std::string base = TempBase("gal_ooc_parity_wcc");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 512;
  auto summary = WriteShardedGraph(g, base, wopt);
  ASSERT_TRUE(summary.ok()) << summary.status();

  const WccResult want = Wcc(g);
  for (const ParityCase& c : Cases(summary.value())) {
    OocOptions options;
    options.memory_budget_bytes = c.budget;
    auto opened = ShardedGraph::Open(base, options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    OocWccOptions wopt2;
    wopt2.num_threads = c.threads;
    const OocWccResult got = OocWcc(opened.value(), wopt2);
    ASSERT_EQ(want.component, got.component)
        << "budget " << c.budget << ", threads " << c.threads;
    EXPECT_EQ(want.num_components, got.num_components);
    if (got.stats.budget_bytes > 0) {
      EXPECT_LE(got.stats.peak_resident_bytes, got.stats.budget_bytes);
    }
  }
  RemoveShardedGraphFiles(base);
}

TEST_F(OocParityTest, TrianglesAndOpsMatchTaskEngineAcrossBudgets) {
  const Graph g = ErdosRenyi(200, 0.06, 23);
  const std::string base = TempBase("gal_ooc_parity_tri");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 1024;
  auto summary = WriteShardedGraph(g, base, wopt);
  ASSERT_TRUE(summary.ok()) << summary.status();

  const TriangleCountResult want = TaskTriangleCount(g, {});
  EXPECT_GT(want.triangles, 0u);
  for (const ParityCase& c : Cases(summary.value())) {
    OocOptions options;
    options.memory_budget_bytes = c.budget;
    auto opened = ShardedGraph::Open(base, options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    OocTriangleOptions topt;
    topt.engine.num_threads = c.threads;
    const OocTriangleResult got = OocTriangleCount(opened.value(), topt);
    EXPECT_EQ(want.triangles, got.triangles)
        << "budget " << c.budget << ", threads " << c.threads;
    EXPECT_EQ(want.intersection_ops, got.intersection_ops)
        << "budget " << c.budget << ", threads " << c.threads;
    if (got.stats.budget_bytes > 0) {
      EXPECT_LE(got.stats.peak_resident_bytes, got.stats.budget_bytes);
    }
  }
  RemoveShardedGraphFiles(base);
}

TEST_F(OocParityTest, ReorderedCompressedStoreMatchesPlainResults) {
  const Graph plain = ErdosRenyi(220, 0.03, 29);
  GraphOptions options;
  options.reorder = ReorderMode::kHubCluster;
  options.compression = CompressionMode::kDeltaVarint;
  const Graph fancy =
      Graph::FromEdges(plain.NumVertices(), plain.CollectEdges(), options)
          .value();
  const std::string base = TempBase("gal_ooc_parity_reordered");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 1024;
  auto summary = WriteShardedGraph(fancy, base, wopt);
  ASSERT_TRUE(summary.ok()) << summary.status();

  OocOptions oopt;
  oopt.memory_budget_bytes = summary.value().max_shard_resident_bytes;
  auto opened = ShardedGraph::Open(base, oopt);
  ASSERT_TRUE(opened.ok()) << opened.status();
  const ShardedGraph& sg = opened.value();

  // Results come back in original-id space, so the plain in-memory run
  // is the reference — the same contract the reorder substrate has.
  EXPECT_EQ(PageRank(plain).ranks, OocPageRank(sg).ranks);
  const WccResult want_wcc = Wcc(plain);
  const OocWccResult got_wcc = OocWcc(sg);
  EXPECT_EQ(want_wcc.component, got_wcc.component);
  EXPECT_EQ(want_wcc.num_components, got_wcc.num_components);
  // intersection_ops is layout-dependent by design, so the ops
  // reference is the in-memory run on the SAME layout.
  const TriangleCountResult want_tri = TaskTriangleCount(fancy, {});
  const OocTriangleResult got_tri = OocTriangleCount(sg);
  EXPECT_EQ(TaskTriangleCount(plain, {}).triangles, got_tri.triangles);
  EXPECT_EQ(want_tri.triangles, got_tri.triangles);
  EXPECT_EQ(want_tri.intersection_ops, got_tri.intersection_ops);
  RemoveShardedGraphFiles(base);
}

TEST_F(OocParityTest, WccSkipsShardsOnceTheirRangeConverges) {
  // Component A (a triangle over vertices 0..2) converges in a couple
  // of supersteps; component B (a long cycle over 3..66) needs ~32.
  // With 3-vertex-range shards, A's shard must be skipped in the long
  // tail — the frontier-aware scheduling observable. The observable
  // depends on shard geometry, so this one parity test pins the env
  // knobs (the others deliberately honor them).
  OocEnvGuard guard;
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  for (VertexId v = 3; v < 66; ++v) edges.push_back({v, v + 1});
  edges.push_back({66, 3});
  const Graph g = Graph::FromEdges(67, std::move(edges)).value();
  const std::string base = TempBase("gal_ooc_skip");
  ShardWriterOptions wopt;
  wopt.target_shard_bytes = 8;
  auto summary = WriteShardedGraph(g, base, wopt);
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_GT(summary.value().num_shards, 4u);

  auto opened = ShardedGraph::Open(base);
  ASSERT_TRUE(opened.ok()) << opened.status();
  const OocWccResult got = OocWcc(opened.value());
  const WccResult want = Wcc(g);
  EXPECT_EQ(want.component, got.component);
  EXPECT_EQ(2u, got.num_components);
  EXPECT_GT(got.stats.shards_skipped, 0u);
  EXPECT_GT(got.stats.supersteps, 10u);
  RemoveShardedGraphFiles(base);
}

}  // namespace
}  // namespace gal
