// Parity suite for the cache-layout and SIMD pass: vertex reordering
// (GraphOptions::reorder), adjacency compression
// (GraphOptions::compression), and the vector kernels (common/simd.h)
// are pure performance knobs — every algorithm result must be
// bit-identical to the scalar run on the unordered, uncompressed
// layout, across thread counts and simulated-worker counts. The
// scalar/unordered path is the reference; these tests are what keeps
// the fast paths honest (they also run under TSan, once with
// GAL_SIMD=0, and once with GAL_GRAPH_COMPRESSION=1 via
// scripts/check.sh).

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/intersect.h"
#include "tensor/kernel_context.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"
#include "tlag/algos/cliques.h"
#include "tlag/algos/ktruss.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/traversal.h"
#include "tlav/algos/wcc.h"

namespace gal {
namespace {

const ReorderMode kAllModes[] = {ReorderMode::kNone, ReorderMode::kDegreeDesc,
                                 ReorderMode::kHubCluster};

const CompressionMode kAllCompression[] = {CompressionMode::kNone,
                                           CompressionMode::kDeltaVarint};

/// Scoped SIMD on/off switch; restores the previous setting on exit.
struct SimdGuard {
  explicit SimdGuard(bool on) : prev(simd::SetEnabled(on)) {}
  ~SimdGuard() { simd::SetEnabled(prev); }
  bool prev;
};

/// Restores default thread policies when a test exits.
struct ThreadGuard {
  ~ThreadGuard() {
    KernelContext::Get().SetNumThreads(0);
    unsetenv("GAL_TASK_THREADS");
  }
};

void SetHostThreads(uint32_t t) {
  setenv("GAL_TASK_THREADS", std::to_string(t).c_str(), 1);
}

/// Rebuilds `g`'s edge list under a reordering / compression mode. The
/// input graph is the caller's original-id ground truth.
Graph Rebuild(const Graph& g, ReorderMode mode,
              CompressionMode compression = CompressionMode::kNone) {
  GraphOptions options;
  options.directed = g.directed();
  options.reorder = mode;
  options.compression = compression;
  Result<Graph> r = Graph::FromEdges(g.NumVertices(), g.CollectEdges(), options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r.value());
}

// --- graph-level invariants -------------------------------------------------

TEST(GraphReorderTest, PermutationIsABijectionPreservingAdjacency) {
  const Graph g = BarabasiAlbert(300, 3, 7);
  std::vector<VertexId> want_row;
  for (ReorderMode mode : {ReorderMode::kDegreeDesc, ReorderMode::kHubCluster}) {
    for (CompressionMode compression : kAllCompression) {
      const Graph r = Rebuild(g, mode, compression);
      ASSERT_TRUE(r.IsReordered());
      EXPECT_EQ(r.reorder_mode(), mode);
      EXPECT_EQ(r.NumVertices(), g.NumVertices());
      EXPECT_EQ(r.NumEdges(), g.NumEdges());
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(r.OriginalId(r.InternalId(v)), v);
        EXPECT_EQ(r.Degree(r.InternalId(v)), g.Degree(v));
        // The neighborhood, mapped back to original ids, must match.
        std::vector<VertexId> nbrs;
        r.ForEachOutNeighbor(r.InternalId(v), [&](VertexId u) {
          nbrs.push_back(r.OriginalId(u));
        });
        std::sort(nbrs.begin(), nbrs.end());
        const auto want = g.NeighborsInto(v, want_row);
        ASSERT_EQ(nbrs.size(), want.size()) << "vertex " << v;
        EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), want.begin()));
      }
    }
  }
}

TEST(GraphReorderTest, DegreeDescPlacesHubsFirst) {
  const Graph r = Rebuild(BarabasiAlbert(200, 4, 3), ReorderMode::kDegreeDesc);
  for (VertexId v = 0; v + 1 < r.NumVertices(); ++v) {
    EXPECT_GE(r.Degree(v), r.Degree(v + 1)) << "internal id " << v;
  }
}

TEST(GraphReorderTest, LabelsStayInOriginalSpaceAndViewsShareMaps) {
  Graph g = PlantedPartition(120, 3, 0.2, 0.02, 11);
  const std::vector<Label> labels = g.labels();
  ASSERT_FALSE(labels.empty());
  Graph r = Rebuild(g, ReorderMode::kHubCluster);
  ASSERT_TRUE(r.SetLabels(labels).ok());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(r.LabelOf(r.InternalId(v)), labels[v]);
  }
  // MapToOriginal inverts the layout permutation.
  std::vector<uint32_t> per_internal(r.NumVertices());
  for (VertexId v = 0; v < r.NumVertices(); ++v) {
    per_internal[v] = r.OriginalId(v) * 10;
  }
  const std::vector<uint32_t> mapped = r.MapToOriginal(per_internal);
  for (VertexId v = 0; v < r.NumVertices(); ++v) {
    EXPECT_EQ(mapped[v], v * 10);
  }
  // Derived views live in the same internal id space.
  const Graph rev = r.Reversed();
  EXPECT_TRUE(rev.IsReordered());
  EXPECT_EQ(rev.InternalId(5), r.InternalId(5));
  EXPECT_TRUE(r.UndirectedView().IsReordered());
}

TEST(GraphReorderTest, EdgeCasesEmptyOneVertexHubStar) {
  for (ReorderMode mode : kAllModes) {
    for (CompressionMode compression : kAllCompression) {
      GraphOptions options;
      options.reorder = mode;
      options.compression = compression;
      const Graph empty = Graph::FromEdges(0, {}, options).value();
      EXPECT_EQ(empty.NumVertices(), 0u);
      const Graph one = Graph::FromEdges(1, {}, options).value();
      EXPECT_EQ(one.NumVertices(), 1u);
      EXPECT_EQ(one.OriginalId(one.InternalId(0)), 0u);

      // Hub-star: vertex 0 has degree 63, everything else degree 1 — the
      // extreme case both orderings exist for.
      const Graph star = Rebuild(Star(64), mode, compression);
      EXPECT_EQ(star.NumEdges(), 63u);
      EXPECT_EQ(star.Degree(star.InternalId(0)), 63u);
      if (mode != ReorderMode::kNone) {
        EXPECT_EQ(star.InternalId(0), 0u) << "hub must be placed first";
      }
      const BfsResult bfs = TlavBfs(star, 5);
      ASSERT_TRUE(bfs.status.ok());
      EXPECT_EQ(bfs.distance[5], 0u);
      EXPECT_EQ(bfs.distance[0], 1u);
      EXPECT_EQ(bfs.distance[63], 2u);
    }
  }
}

// --- algorithm parity across layouts, SIMD modes, threads, workers ----------

TEST(ReorderSimdParityTest, TraversalAndPageRankBitIdentical) {
  ThreadGuard guard;
  Graph g = Rmat(9, 8, 5);  // power-law, ~512 vertices
  const VertexId source = 3;

  // Reference: unordered layout, scalar kernels, one worker, one thread.
  SetHostThreads(1);
  std::vector<uint32_t> ref_bfs;
  std::vector<uint64_t> ref_sssp;
  std::vector<VertexId> ref_wcc;
  std::vector<double> ref_pr;
  {
    SimdGuard simd_off(false);
    TlavConfig config;
    config.num_workers = 1;
    ref_bfs = TlavBfs(g, source, config).distance;
    ref_sssp = TlavSssp(g, source, config).distance;
    ref_wcc = Wcc(g, config).component;
    PageRankOptions pr;
    pr.engine = config;
    ref_pr = PageRank(g, pr).ranks;
  }

  for (ReorderMode mode : kAllModes) {
    for (CompressionMode compression : kAllCompression) {
      const Graph r = Rebuild(g, mode, compression);
      for (bool simd_on : {false, true}) {
        SimdGuard simd_guard(simd_on);
        for (uint32_t workers : {1u, 4u}) {
          for (uint32_t threads : {1u, 8u}) {
            SetHostThreads(threads);
            TlavConfig config;
            config.num_workers = workers;
            const std::string what =
                "mode=" + std::to_string(static_cast<int>(mode)) +
                " compression=" +
                std::to_string(static_cast<int>(compression)) +
                " simd=" + std::to_string(simd_on) +
                " workers=" + std::to_string(workers) +
                " threads=" + std::to_string(threads);
            EXPECT_EQ(ref_bfs, TlavBfs(r, source, config).distance) << what;
            EXPECT_EQ(ref_sssp, TlavSssp(r, source, config).distance) << what;
            EXPECT_EQ(ref_wcc, Wcc(r, config).component) << what;
            PageRankOptions pr;
            pr.engine = config;
            const std::vector<double> ranks = PageRank(r, pr).ranks;
            ASSERT_EQ(ranks.size(), ref_pr.size()) << what;
            for (size_t v = 0; v < ranks.size(); ++v) {
              // Exact: fixed-point messages make the reduction integer.
              ASSERT_EQ(ranks[v], ref_pr[v]) << what << " vertex " << v;
            }
          }
        }
      }
    }
  }
}

TEST(ReorderSimdParityTest, SubgraphAlgorithmsBitIdentical) {
  ThreadGuard guard;
  Graph g = WattsStrogatz(256, 8, 0.1, 17);  // high clustering: triangles

  MaximalCliqueOptions mc_options;
  TriangleCountResult ref_tri;
  MaximalCliqueResult ref_cliques;
  MaximumCliqueResult ref_max;
  KTrussResult ref_truss;
  {
    SimdGuard simd_off(false);
    ref_tri = SerialTriangleCount(g);
    ref_cliques = MaximalCliques(g, mc_options, true);
    ref_max = MaximumClique(g, {});
    ref_truss = KTrussDecomposition(g);
  }

  for (ReorderMode mode : kAllModes) {
    for (CompressionMode compression : kAllCompression) {
    const Graph r = Rebuild(g, mode, compression);
    for (bool simd_on : {false, true}) {
      SimdGuard simd_guard(simd_on);
      const std::string what =
          "mode=" + std::to_string(static_cast<int>(mode)) +
          " compression=" + std::to_string(static_cast<int>(compression)) +
          " simd=" + std::to_string(simd_on);

      const TriangleCountResult serial = SerialTriangleCount(r);
      EXPECT_EQ(serial.triangles, ref_tri.triangles) << what;
      for (uint32_t threads : {1u, 8u}) {
        TaskEngineConfig config;
        config.num_threads = threads;
        const TriangleCountResult task = TaskTriangleCount(r, config);
        EXPECT_EQ(task.triangles, ref_tri.triangles) << what;
        // Same layout + same SIMD mode -> serial and task runs do the
        // exact same intersections, so the ops ledger folds identically.
        EXPECT_EQ(task.intersection_ops, serial.intersection_ops) << what;
      }

      MaximalCliqueResult cliques = MaximalCliques(r, mc_options, true);
      EXPECT_EQ(cliques.count, ref_cliques.count) << what;
      EXPECT_EQ(cliques.largest, ref_cliques.largest) << what;
      // Collected cliques arrive in task order; compare as sorted sets
      // of original-id cliques.
      std::vector<std::vector<VertexId>> got = std::move(cliques.cliques);
      std::vector<std::vector<VertexId>> want = ref_cliques.cliques;
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << what;

      EXPECT_EQ(MaximumClique(r, {}).size, ref_max.size) << what;

      KTrussResult truss = KTrussDecomposition(r);
      EXPECT_EQ(truss.max_trussness, ref_truss.max_trussness) << what;
      // Edges come back in original-id space; pair them with their
      // trussness and compare order-independently.
      auto keyed = [](const KTrussResult& t) {
        std::vector<std::tuple<VertexId, VertexId, uint32_t>> k;
        for (size_t e = 0; e < t.edges.size(); ++e) {
          k.emplace_back(t.edges[e].src, t.edges[e].dst, t.trussness[e]);
        }
        std::sort(k.begin(), k.end());
        return k;
      };
      EXPECT_EQ(keyed(truss), keyed(ref_truss)) << what;
    }
    }
  }
}

TEST(ReorderSimdParityTest, GemmAndSpmmBitIdenticalAcrossSimdAndThreads) {
  ThreadGuard guard;
  KernelContext& ctx = KernelContext::Get();
  Rng rng(31);
  Matrix a = Matrix::Xavier(193, 157, rng);
  Matrix b = Matrix::Xavier(157, 141, rng);
  Graph g = Rmat(9, 8, 3);
  SparseMatrix adj = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  Matrix h = Matrix::Xavier(g.NumVertices(), 13, rng);

  ctx.SetNumThreads(1);
  Matrix ref_mm, ref_spmm, ref_spmm_t;
  {
    SimdGuard simd_off(false);
    ref_mm = Matmul(a, b);
    ref_spmm = adj.Multiply(h);
    ref_spmm_t = adj.TransposeMultiply(h);
  }

  auto expect_same = [](const Matrix& want, const Matrix& got,
                        const std::string& what) {
    ASSERT_EQ(want.rows(), got.rows()) << what;
    ASSERT_EQ(want.cols(), got.cols()) << what;
    for (uint32_t i = 0; i < want.rows(); ++i) {
      for (uint32_t j = 0; j < want.cols(); ++j) {
        ASSERT_EQ(want.at(i, j), got.at(i, j)) << what << " at (" << i << ","
                                               << j << ")";
      }
    }
  };

  for (bool simd_on : {false, true}) {
    SimdGuard simd_guard(simd_on);
    for (size_t threads : {size_t{1}, size_t{8}}) {
      ctx.SetNumThreads(threads);
      const std::string what = "simd=" + std::to_string(simd_on) +
                               " threads=" + std::to_string(threads);
      expect_same(ref_mm, Matmul(a, b), "Matmul " + what);
      expect_same(ref_spmm, adj.Multiply(h), "SpMM " + what);
      expect_same(ref_spmm_t, adj.TransposeMultiply(h), "SpMM^T " + what);
      // The SpMM operator gathers rows through the graph; building it
      // from a compressed layout must produce the bit-identical
      // operator. (Reorder is deliberately not swept here: the operator
      // is layout-space by design, so a permuted build changes float
      // accumulation order — callers remap at the boundary instead.)
      for (CompressionMode compression : kAllCompression) {
        const Graph r = Rebuild(g, ReorderMode::kNone, compression);
        SparseMatrix adj_r = NormalizedAdjacency(r, AdjNorm::kSymmetric);
        const std::string layout =
            what +
            " compression=" + std::to_string(static_cast<int>(compression));
        expect_same(ref_spmm, adj_r.Multiply(h), "SpMM layout " + layout);
        expect_same(ref_spmm_t, adj_r.TransposeMultiply(h),
                    "SpMM^T layout " + layout);
      }
    }
  }
}

// --- intersection kernel unit tests -----------------------------------------

std::vector<VertexId> NaiveIntersect(const std::vector<VertexId>& a,
                                     const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<VertexId> RandomSortedIds(Rng& rng, size_t n, uint32_t universe) {
  std::vector<VertexId> v;
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.Uniform(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST(IntersectTest, AllPathsMatchTheNaiveReference) {
  Rng rng(43);
  // Size pairs spanning the strategy space: tiny (scalar tails), block
  // multiples of 8 (pure AVX2), odd sizes (vector + tail), and skewed
  // ratios past 32x (galloping).
  const std::pair<size_t, size_t> shapes[] = {
      {0, 0},  {0, 9},  {5, 5},   {8, 8},    {16, 64},  {31, 33},
      {64, 64}, {7, 300}, {3, 500}, {200, 11}, {257, 259}};
  for (const auto& [na, nb] : shapes) {
    const std::vector<VertexId> a = RandomSortedIds(rng, na, 700);
    const std::vector<VertexId> b = RandomSortedIds(rng, nb, 700);
    const std::vector<VertexId> want = NaiveIntersect(a, b);
    for (bool simd_on : {false, true}) {
      SimdGuard guard(simd_on);
      EXPECT_EQ(IntersectCount(a, b), want.size())
          << "na=" << a.size() << " nb=" << b.size() << " simd=" << simd_on;
      EXPECT_EQ(Intersect(a, b), want)
          << "na=" << a.size() << " nb=" << b.size() << " simd=" << simd_on;
      // Symmetric.
      EXPECT_EQ(IntersectCount(b, a), want.size());
      EXPECT_EQ(Intersect(b, a), want);
    }
  }
}

TEST(IntersectTest, ScalarOpsCountMatchesLegacyMergeSemantics) {
  SimdGuard guard(false);
  // Legacy IntersectCount counted one op per merge-loop iteration; for
  // disjoint equal-length runs that is exactly 2n - 1... depends on
  // arrangement, so pin a hand-computed case: a={1,3,5}, b={2,3,6}.
  // Iterations: (1,2)(3,2)(3,3)(5,6) -> 4 ops, 1 match.
  const std::vector<VertexId> a = {1, 3, 5};
  const std::vector<VertexId> b = {2, 3, 6};
  uint64_t ops = 0;
  EXPECT_EQ(IntersectCount(a, b, &ops), 1u);
  EXPECT_EQ(ops, 4u);
}

TEST(SimdTest, KillSwitchAndIsaReporting) {
  const bool prev = simd::Enabled();
  EXPECT_LE(simd::Enabled(), simd::Available());
  simd::SetEnabled(false);
  EXPECT_FALSE(simd::Enabled());
  EXPECT_STREQ(simd::ActiveIsa(), "scalar");
  simd::SetEnabled(true);
  EXPECT_EQ(simd::Enabled(), simd::Available());  // capped by Available
  if (simd::Available()) EXPECT_STREQ(simd::ActiveIsa(), "avx2");
  simd::SetEnabled(prev);
}

TEST(SimdTest, AxpyBitIdenticalToScalarLoop) {
  Rng rng(47);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                   size_t{64}, size_t{1003}}) {
    std::vector<float> x(n), y_scalar(n), y_simd(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
      y_scalar[i] = y_simd[i] =
          static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
    }
    const float alpha = 0.37f;
    {
      SimdGuard off(false);
      simd::AxpyF32(y_scalar.data(), x.data(), alpha, n);
    }
    {
      SimdGuard on(true);
      simd::AxpyF32(y_simd.data(), x.data(), alpha, n);
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(y_scalar[i], y_simd[i]) << "n=" << n << " i=" << i;
    }
  }
}

// Wall-clock check behind the acceptance criterion: >=1.3x on a hot
// kernel from the SIMD path. Tagged `timing` in ctest; skipped (not
// failed) on hosts without 4 cores or without AVX2.
TEST(ReorderSimdScalingTest, SimdGemmSpeedup) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  if (!simd::Available()) GTEST_SKIP() << "AVX2 not available";
  ThreadGuard guard;
  KernelContext& ctx = KernelContext::Get();
  ctx.SetNumThreads(1);  // isolate the SIMD effect from threading
  Rng rng(53);
  const uint32_t n = 384;
  Matrix a = Matrix::Xavier(n, n, rng);
  Matrix b = Matrix::Xavier(n, n, rng);
  auto best_of = [&](bool simd_on) {
    SimdGuard g(simd_on);
    Matmul(a, b);  // warm caches
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      Matrix c = Matmul(a, b);
      best = std::min(best, t.ElapsedSeconds());
      EXPECT_EQ(c.rows(), n);
    }
    return best;
  };
  const double scalar = best_of(false);
  const double vector = best_of(true);
  EXPECT_GT(scalar / vector, 1.3)
      << "scalar=" << scalar << "s avx2=" << vector << "s";
}

}  // namespace
}  // namespace gal
