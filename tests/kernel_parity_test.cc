// Parity suite for the parallel tensor kernels: every kernel must be
// bit-identical to its single-threaded run at any thread count, because
// each output element is produced by exactly one shard with a fixed
// accumulation order. Also covers the degenerate shapes (empty, 1-row,
// 1-col) and the KernelContext thread-count policy itself.

#include <cstdlib>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "common/core_budget.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "nn/gat.h"
#include "tensor/kernel_context.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gal {
namespace {

// Restores the default thread policy when a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { KernelContext::Get().SetNumThreads(0); }
};

const size_t kParityThreadCounts[] = {2, 8};

void ExpectBitIdentical(const Matrix& want, const Matrix& got,
                        const char* what) {
  ASSERT_EQ(want.rows(), got.rows()) << what;
  ASSERT_EQ(want.cols(), got.cols()) << what;
  if (want.data().empty()) return;
  EXPECT_EQ(0, std::memcmp(want.data().data(), got.data().data(),
                           want.data().size() * sizeof(float)))
      << what << " diverges from the serial reference";
}

TEST(KernelContextTest, ThreadCountPolicy) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  ctx.SetNumThreads(3);
  EXPECT_EQ(ctx.num_threads(), 3u);
  ctx.SetNumThreads(1);
  EXPECT_EQ(ctx.num_threads(), 1u);
  ctx.SetNumThreads(0);  // default policy: env override else hardware
  EXPECT_GE(ctx.num_threads(), 1u);
}

TEST(KernelContextTest, ShardCountRespectsGrainAndThreads) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  ctx.SetNumThreads(8);
  EXPECT_EQ(ctx.ShardCountFor(10), 1u);  // tiny job stays serial
  EXPECT_GE(ctx.ShardCountFor(uint64_t{1} << 30), 2u);
  EXPECT_LE(ctx.ShardCountFor(uint64_t{1} << 30), 8u);
  ctx.SetNumThreads(1);
  EXPECT_EQ(ctx.ShardCountFor(uint64_t{1} << 30), 1u);
}

TEST(KernelContextTest, ParallelFor1DCoversRangeOnce) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  ctx.SetNumThreads(4);
  std::vector<int> hits(1000, 0);
  // Large fake per-item work so the range actually shards.
  ctx.ParallelFor1D(hits.size(), 1 << 10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(KernelContextTest, ThreadCountChangesAfterFirstUseAreHonored) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  ctx.SetNumThreads(2);
  std::vector<int> hits(4096, 0);
  auto bump = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  };
  ctx.ParallelFor1D(hits.size(), 1 << 10, bump);
  // Resize after first use: the old pool is joined and the new width is
  // what subsequent dispatches shard against.
  ctx.SetNumThreads(5);
  EXPECT_EQ(ctx.num_threads(), 5u);
  EXPECT_LE(ctx.ShardCountFor(uint64_t{1} << 30), 5u);
  ctx.ParallelFor1D(hits.size(), 1 << 10, bump);
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 2) << i;

  // GAL_KERNEL_THREADS is re-resolved by SetNumThreads(0), also after
  // first use.
  setenv("GAL_KERNEL_THREADS", "3", 1);
  ctx.SetNumThreads(0);
  EXPECT_EQ(ctx.num_threads(), 3u);
  unsetenv("GAL_KERNEL_THREADS");
  ctx.SetNumThreads(0);
  EXPECT_GE(ctx.num_threads(), 1u);
}

TEST(KernelContextDeathTest, SetNumThreadsRejectedWhileKernelInFlight) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  ctx.SetNumThreads(2);
  EXPECT_DEATH(
      ctx.ParallelFor1D(size_t{1} << 20, 1 << 10,
                        [&](size_t, size_t) { ctx.SetNumThreads(4); }),
      "in flight");
}

// Restores the real hardware-core count when a test exits.
struct CoreOverrideGuard {
  ~CoreOverrideGuard() { CoreBudget::Get().OverrideHardwareCoresForTest(0); }
};

TEST(CoreBudgetTest, LeaseShrinksKernelShardCap) {
  ThreadCountGuard guard;
  CoreOverrideGuard core_guard;
  CoreBudget& budget = CoreBudget::Get();
  budget.OverrideHardwareCoresForTest(8);
  KernelContext& ctx = KernelContext::Get();
  ctx.SetNumThreads(8);
  EXPECT_EQ(ctx.ShardCountFor(uint64_t{1} << 30), 8u);
  {
    StageExecutorLease lease(4);
    EXPECT_EQ(budget.live_stage_executors(), 4u);
    EXPECT_EQ(budget.KernelShardCap(), 2u);
    EXPECT_EQ(ctx.ShardCountFor(uint64_t{1} << 30), 2u);
  }
  // Lease released: the kernel pool owns the machine again.
  EXPECT_EQ(budget.live_stage_executors(), 0u);
  EXPECT_EQ(ctx.ShardCountFor(uint64_t{1} << 30), 8u);
  {
    // Oversubscribed lease (the warning path): still grants the
    // serial-safe minimum of one shard.
    StageExecutorLease lease(16);
    EXPECT_EQ(budget.KernelShardCap(), 1u);
    EXPECT_EQ(ctx.ShardCountFor(uint64_t{1} << 30), 1u);
  }
}

TEST(CoreBudgetTest, NestedLeasesCompose) {
  CoreOverrideGuard core_guard;
  CoreBudget& budget = CoreBudget::Get();
  budget.OverrideHardwareCoresForTest(12);
  StageExecutorLease a(2);
  EXPECT_EQ(budget.KernelShardCap(), 6u);
  {
    StageExecutorLease b(4);
    EXPECT_EQ(budget.live_stage_executors(), 6u);
    EXPECT_EQ(budget.KernelShardCap(), 2u);
  }
  EXPECT_EQ(budget.KernelShardCap(), 6u);
}

TEST(KernelParityTest, DenseGemmAllVariants) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  Rng rng(11);
  // Odd sizes past one k-tile (128) and one C-row panel (64) exercise
  // the tile/panel remainders; the op count is far above the serial
  // grain, so 2- and 8-thread runs genuinely shard.
  Matrix a = Matrix::Xavier(193, 157, rng);
  Matrix b = Matrix::Xavier(157, 141, rng);
  Matrix at_in = Matrix::Xavier(157, 193, rng);  // A^T B: (157x193)^T * 157x141
  Matrix bt_in = Matrix::Xavier(141, 157, rng);  // A B^T: 193x157 * (141x157)^T

  ctx.SetNumThreads(1);
  Matrix ref_mm = Matmul(a, b);
  Matrix ref_ta = MatmulTransposeA(at_in, b);
  Matrix ref_tb = MatmulTransposeB(a, bt_in);

  for (size_t t : kParityThreadCounts) {
    ctx.SetNumThreads(t);
    ExpectBitIdentical(ref_mm, Matmul(a, b), "Matmul");
    ExpectBitIdentical(ref_ta, MatmulTransposeA(at_in, b), "MatmulTransposeA");
    ExpectBitIdentical(ref_tb, MatmulTransposeB(a, bt_in), "MatmulTransposeB");
  }
}

TEST(KernelParityTest, SpmmPowerLawBothDirections) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  // R-MAT gives the skewed degree distribution the nnz-balanced shards
  // exist for; a hub row must not change results when it spans a shard
  // boundary.
  Graph g = Rmat(10, 8, 3);
  SparseMatrix adj = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  Rng rng(13);
  Matrix h = Matrix::Xavier(g.NumVertices(), 13, rng);

  ctx.SetNumThreads(1);
  Matrix ref_fwd = adj.Multiply(h);
  Matrix ref_bwd = adj.TransposeMultiply(h);

  for (size_t t : kParityThreadCounts) {
    ctx.SetNumThreads(t);
    ExpectBitIdentical(ref_fwd, adj.Multiply(h), "SpMM forward");
    ExpectBitIdentical(ref_bwd, adj.TransposeMultiply(h), "SpMM transpose");
  }
}

TEST(KernelParityTest, SpmmRectangularOperator) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  // Rectangular readout-style operator (graphs x vertices), with a hub
  // row concentrating most of the nnz.
  std::vector<std::tuple<uint32_t, uint32_t, float>> triplets;
  for (uint32_t c = 0; c < 300; ++c) triplets.emplace_back(0, c, 0.01f * c);
  for (uint32_t r = 1; r < 7; ++r) {
    triplets.emplace_back(r, 300 + r, 1.0f / r);
  }
  SparseMatrix m = SparseMatrix::FromTriplets(7, 400, std::move(triplets));
  Rng rng(17);
  Matrix h_fwd = Matrix::Xavier(400, 9, rng);
  Matrix h_bwd = Matrix::Xavier(7, 9, rng);

  ctx.SetNumThreads(1);
  Matrix ref_fwd = m.Multiply(h_fwd);
  Matrix ref_bwd = m.TransposeMultiply(h_bwd);
  for (size_t t : kParityThreadCounts) {
    ctx.SetNumThreads(t);
    ExpectBitIdentical(ref_fwd, m.Multiply(h_fwd), "rect SpMM forward");
    ExpectBitIdentical(ref_bwd, m.TransposeMultiply(h_bwd),
                       "rect SpMM transpose");
  }
}

TEST(KernelParityTest, ElementwiseOps) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  Rng rng(19);
  // Big enough that every elementwise op clears the serial grain and
  // actually shards at 2 and 8 threads.
  const uint32_t rows = 1200;
  const uint32_t cols = 60;
  Matrix z = Matrix::Xavier(rows, cols, rng);
  Matrix other = Matrix::Xavier(rows, cols, rng);
  std::vector<int32_t> labels(rows);
  std::vector<uint8_t> mask(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    labels[i] = static_cast<int32_t>(i % cols);
    mask[i] = (i % 3 != 0);
  }

  ctx.SetNumThreads(1);
  Matrix ref_add = z;
  ref_add.AddScaled(other, 0.37f);
  Matrix ref_mask;
  Matrix ref_relu = ReluForward(z, &ref_mask);
  Matrix ref_relu_bwd = ReluBackward(other, ref_mask);
  Matrix ref_softmax = SoftmaxRows(z);
  SoftmaxXentResult ref_xent = SoftmaxCrossEntropy(z, labels, mask);

  for (size_t t : kParityThreadCounts) {
    ctx.SetNumThreads(t);
    Matrix add = z;
    add.AddScaled(other, 0.37f);
    ExpectBitIdentical(ref_add, add, "AddScaled");
    Matrix relu_mask;
    ExpectBitIdentical(ref_relu, ReluForward(z, &relu_mask), "ReluForward");
    ExpectBitIdentical(ref_mask, relu_mask, "ReluForward mask");
    ExpectBitIdentical(ref_relu_bwd, ReluBackward(other, ref_mask),
                       "ReluBackward");
    ExpectBitIdentical(ref_softmax, SoftmaxRows(z), "SoftmaxRows");
    SoftmaxXentResult xent = SoftmaxCrossEntropy(z, labels, mask);
    EXPECT_EQ(ref_xent.loss, xent.loss) << "xent loss (exact)";
    EXPECT_EQ(ref_xent.correct, xent.correct);
    EXPECT_EQ(ref_xent.total, xent.total);
    ExpectBitIdentical(ref_xent.grad, xent.grad, "xent grad");
  }
}

TEST(KernelParityTest, DegenerateShapes) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  Rng rng(23);
  Matrix one_row = Matrix::Xavier(1, 40, rng);
  Matrix one_col = Matrix::Xavier(40, 1, rng);

  for (size_t t : {size_t{1}, size_t{2}, size_t{8}}) {
    ctx.SetNumThreads(t);
    // Empty results and empty inner dimensions must not touch memory.
    EXPECT_EQ(Matmul(Matrix(0, 5), Matrix(5, 3)).rows(), 0u);
    Matrix inner_empty = Matmul(Matrix(3, 0), Matrix(0, 4));
    EXPECT_EQ(inner_empty.rows(), 3u);
    EXPECT_EQ(inner_empty.cols(), 4u);
    EXPECT_EQ(inner_empty.FrobeniusNorm(), 0.0);
    EXPECT_EQ(MatmulTransposeA(Matrix(0, 3), Matrix(0, 2)).rows(), 3u);
    EXPECT_EQ(MatmulTransposeB(Matrix(2, 0), Matrix(3, 0)).cols(), 3u);

    // 1-row / 1-col products against the dot-product identity.
    Matrix outer = Matmul(one_col, one_row);  // 40x40 rank-1
    EXPECT_EQ(outer.rows(), 40u);
    EXPECT_FLOAT_EQ(outer.at(3, 7), one_col.at(3, 0) * one_row.at(0, 7));

    // Empty CSR in both directions.
    SparseMatrix empty = SparseMatrix::FromTriplets(5, 4, {});
    EXPECT_EQ(empty.nnz(), 0u);
    EXPECT_EQ(empty.Multiply(Matrix(4, 3)).FrobeniusNorm(), 0.0);
    EXPECT_EQ(empty.TransposeMultiply(Matrix(5, 2)).cols(), 2u);
    SparseMatrix zero = SparseMatrix::FromTriplets(0, 0, {});
    EXPECT_EQ(zero.Multiply(Matrix(0, 6)).rows(), 0u);
    EXPECT_EQ(zero.TransposeMultiply(Matrix(0, 6)).rows(), 0u);
    // Default-constructed (no FromTriplets) must behave like 0x0.
    SparseMatrix default_constructed;
    EXPECT_EQ(default_constructed.Multiply(Matrix(0, 2)).rows(), 0u);
    EXPECT_EQ(default_constructed.TransposeMultiply(Matrix(0, 2)).rows(), 0u);

    // Elementwise on empty / single-row shapes.
    Matrix empty_mask;
    EXPECT_EQ(ReluForward(Matrix(0, 4), &empty_mask).rows(), 0u);
    EXPECT_EQ(SoftmaxRows(Matrix(3, 0)).cols(), 0u);
    EXPECT_EQ(SoftmaxRows(Matrix(0, 0)).rows(), 0u);
    Matrix p = SoftmaxRows(one_row);
    float sum = 0.0f;
    for (uint32_t j = 0; j < p.cols(); ++j) sum += p.at(0, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    SoftmaxXentResult none =
        SoftmaxCrossEntropy(Matrix(2, 3), {0, 1}, {0, 0});
    EXPECT_EQ(none.total, 0u);
    EXPECT_EQ(none.loss, 0.0);
  }
}

TEST(KernelParityTest, GatBackwardAcrossThreadCounts) {
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  // Large enough that the backward's two gather phases genuinely shard:
  // n * per-row work is far above the serial grain at d = 32.
  Graph g = ErdosRenyi(400, 0.05, 13);
  GcnConfig config;
  config.dims = {16, 32, 8};
  config.seed = 3;
  GatModel model(&g, config);
  Rng rng(21);
  Matrix x = Matrix::Xavier(400, 16, rng);
  Matrix grad = Matrix::Xavier(400, 8, rng);

  ctx.SetNumThreads(1);
  model.Forward(x);
  const std::vector<Matrix> ref = model.Backward(grad);
  ASSERT_EQ(ref.size(), 6u);  // {W, a_src, a_dst} x 2 layers

  for (size_t t : kParityThreadCounts) {
    ctx.SetNumThreads(t);
    model.Forward(x);
    const std::vector<Matrix> got = model.Backward(grad);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t k = 0; k < ref.size(); ++k) {
      ExpectBitIdentical(ref[k], got[k], "GAT backward grad");
    }
  }
}

// Wall-clock scaling check behind the acceptance criterion: >1.5x GEMM
// speedup at 4 threads on a 256^3 problem. Tagged `timing` in ctest;
// skipped (not failed) on hosts without 4 cores.
TEST(KernelScalingTest, GemmSpeedupAt4Threads) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  ThreadCountGuard guard;
  KernelContext& ctx = KernelContext::Get();
  const uint32_t n = 256;
  Rng rng(29);
  Matrix a = Matrix::Xavier(n, n, rng);
  Matrix b = Matrix::Xavier(n, n, rng);
  auto best_of = [&](size_t threads) {
    ctx.SetNumThreads(threads);
    Matmul(a, b);  // warm the pool and the caches
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      Matrix c = Matmul(a, b);
      best = std::min(best, t.ElapsedSeconds());
      EXPECT_EQ(c.rows(), n);
    }
    return best;
  };
  const double serial = best_of(1);
  const double parallel = best_of(4);
  EXPECT_GT(serial / parallel, 1.5)
      << "serial=" << serial << "s parallel4=" << parallel << "s";
}

}  // namespace
}  // namespace gal
