#include <algorithm>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "match/bfs_executor.h"
#include "match/candidates.h"
#include "match/executor.h"
#include "match/online.h"
#include "match/pattern.h"
#include "match/plan.h"
#include "tlag/algos/triangles.h"

namespace gal {
namespace {

// --- patterns / automorphisms -------------------------------------------------

TEST(PatternTest, AutomorphismCounts) {
  EXPECT_EQ(Automorphisms(TrianglePattern()).size(), 6u);     // S3
  EXPECT_EQ(Automorphisms(CliquePattern(4)).size(), 24u);     // S4
  EXPECT_EQ(Automorphisms(PathPattern(3)).size(), 2u);        // flip
  EXPECT_EQ(Automorphisms(CyclePattern(4)).size(), 8u);       // dihedral
  EXPECT_EQ(Automorphisms(StarPattern(3)).size(), 6u);        // leaves
  EXPECT_EQ(Automorphisms(TailedTrianglePattern()).size(), 2u);
  EXPECT_EQ(Automorphisms(DiamondPattern()).size(), 4u);
}

TEST(PatternTest, LabelsRestrictAutomorphisms) {
  Graph tri = TrianglePattern();
  ASSERT_TRUE(tri.SetLabels({0, 0, 1}).ok());
  EXPECT_EQ(Automorphisms(tri).size(), 2u);  // only 0<->1 swap remains
}

TEST(PatternTest, SymmetryRestrictionsOfClique) {
  // For K3: total order over all three positions.
  auto r = SymmetryBreakingRestrictions(TrianglePattern());
  EXPECT_EQ(r.size(), 3u);
}

// --- candidate filtering --------------------------------------------------------

TEST(CandidatesTest, LdfRespectsDegreeAndLabel) {
  Graph data = WithRandomLabels(Rmat(8, 6, 3), 3, 5);
  Graph query = TrianglePattern();
  ASSERT_TRUE(query.SetLabels({0, 1, 2}).ok());
  CandidateSets sets = LdfFilter(data, query);
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v : sets.candidates[u]) {
      EXPECT_EQ(data.LabelOf(v), query.LabelOf(u));
      EXPECT_GE(data.Degree(v), query.Degree(u));
    }
  }
}

TEST(CandidatesTest, NlfIsSubsetOfLdf) {
  Graph data = WithRandomLabels(Rmat(8, 6, 7), 3, 9);
  Graph query = CyclePattern(4);
  ASSERT_TRUE(query.SetLabels({0, 1, 0, 2}).ok());
  CandidateSets ldf = LdfFilter(data, query);
  CandidateSets nlf = NlfFilter(data, query);
  for (VertexId u = 0; u < 4; ++u) {
    EXPECT_LE(nlf.candidates[u].size(), ldf.candidates[u].size());
    for (VertexId v : nlf.candidates[u]) {
      EXPECT_TRUE(std::binary_search(ldf.candidates[u].begin(),
                                     ldf.candidates[u].end(), v));
    }
  }
}

TEST(CandidatesTest, UnlabeledNlfFallsBackToLdf) {
  Graph data = Rmat(7, 4, 1);
  Graph query = TrianglePattern();
  EXPECT_EQ(NlfFilter(data, query).TotalSize(),
            LdfFilter(data, query).TotalSize());
}

// --- plans -----------------------------------------------------------------------

TEST(PlanTest, OrdersAreConnectedPermutations) {
  Graph data = Rmat(7, 6, 2);
  for (const Graph& q : {TrianglePattern(), CyclePattern(5), DiamondPattern(),
                         TailedTrianglePattern(), StarPattern(4)}) {
    CandidateSets cand = LdfFilter(data, q);
    for (OrderStrategy s : {OrderStrategy::kById, OrderStrategy::kGreedyCost,
                            OrderStrategy::kWorst}) {
      MatchPlan plan = BuildPlan(q, cand, s, false);
      ASSERT_EQ(plan.order.size(), q.NumVertices());
      std::set<VertexId> seen(plan.order.begin(), plan.order.end());
      EXPECT_EQ(seen.size(), q.NumVertices());
      for (uint32_t i = 1; i < plan.order.size(); ++i) {
        EXPECT_FALSE(plan.backward_neighbors[i].empty())
            << "position " << i << " must join the prefix";
      }
    }
  }
}

// --- DFS matching ------------------------------------------------------------------

TEST(MatchTest, TriangleEmbeddingsEqualSixTimesTriangles) {
  Graph data = ErdosRenyi(150, 0.06, 11);
  const uint64_t triangles = SerialTriangleCount(data).triangles;
  MatchResult r = SubgraphMatch(data, TrianglePattern());
  EXPECT_EQ(r.stats.matches, 6 * triangles);  // |Aut(K3)| images each
}

TEST(MatchTest, SymmetryBreakingYieldsDistinctCount) {
  Graph data = ErdosRenyi(150, 0.06, 11);
  const uint64_t triangles = SerialTriangleCount(data).triangles;
  MatchOptions opt;
  opt.symmetry_breaking = true;
  MatchResult r = SubgraphMatch(data, TrianglePattern(), opt);
  EXPECT_EQ(r.stats.matches, triangles);
}

TEST(MatchTest, SymmetryBreakingConsistentAcrossPatterns) {
  Graph data = ErdosRenyi(80, 0.1, 23);
  for (const Graph& q : {CliquePattern(4), CyclePattern(4), PathPattern(4),
                         DiamondPattern(), StarPattern(3),
                         TailedTrianglePattern()}) {
    MatchResult all = SubgraphMatch(data, q);
    MatchOptions opt;
    opt.symmetry_breaking = true;
    MatchResult distinct = SubgraphMatch(data, q, opt);
    EXPECT_EQ(all.stats.matches,
              distinct.stats.matches * Automorphisms(q).size())
        << "pattern with " << q.NumVertices() << " vertices";
  }
}

TEST(MatchTest, OrderStrategiesAgreeOnCounts) {
  Graph data = Rmat(8, 6, 9);
  for (const Graph& q : {TrianglePattern(), DiamondPattern(),
                         TailedTrianglePattern(), CyclePattern(5)}) {
    MatchOptions by_id;
    by_id.order = OrderStrategy::kById;
    MatchOptions greedy;
    greedy.order = OrderStrategy::kGreedyCost;
    MatchOptions worst;
    worst.order = OrderStrategy::kWorst;
    const uint64_t a = SubgraphMatch(data, q, by_id).stats.matches;
    const uint64_t b = SubgraphMatch(data, q, greedy).stats.matches;
    const uint64_t c = SubgraphMatch(data, q, worst).stats.matches;
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, c);
  }
}

TEST(MatchTest, GreedyOrderCostsNoMoreThanWorst) {
  // Tailed triangle on a skewed graph: starting from the hub-heavy,
  // low-selectivity end explodes intermediate results.
  Graph data = BarabasiAlbert(800, 3, 5);
  MatchOptions greedy;
  greedy.order = OrderStrategy::kGreedyCost;
  MatchOptions worst;
  worst.order = OrderStrategy::kWorst;
  Graph q = TailedTrianglePattern();
  MatchResult g = SubgraphMatch(data, q, greedy);
  MatchResult w = SubgraphMatch(data, q, worst);
  EXPECT_EQ(g.stats.matches, w.stats.matches);
  EXPECT_LE(g.stats.search_nodes, w.stats.search_nodes);
}

TEST(MatchTest, LabeledMatchRespectsLabels) {
  // Path data 0-1-2 labeled A-B-C; query edge A-B matches once each way
  // of which only (0,1) is label-consistent.
  Graph data = Path(3);
  ASSERT_TRUE(data.SetLabels({0, 1, 2}).ok());
  Graph query = PathPattern(2);
  ASSERT_TRUE(query.SetLabels({0, 1}).ok());
  MatchResult r = SubgraphMatch(data, query);
  EXPECT_EQ(r.stats.matches, 1u);
}

TEST(MatchTest, LimitShortCircuits) {
  Graph data = Complete(30);
  MatchOptions opt;
  opt.limit = 10;
  MatchResult r = SubgraphMatch(data, TrianglePattern(), opt);
  EXPECT_EQ(r.stats.matches, 10u);
  // Unlimited would be 6*C(30,3) = 24360 matches.
  EXPECT_LT(r.stats.search_nodes, 24360u);
}

TEST(MatchTest, CollectedMatchesAreValidEmbeddings) {
  Graph data = ErdosRenyi(60, 0.12, 3);
  Graph q = DiamondPattern();
  MatchResult r = SubgraphMatch(data, q, {}, /*collect=*/true);
  ASSERT_EQ(r.matches.size(), r.stats.matches);
  for (const auto& m : r.matches) {
    std::set<VertexId> distinct(m.begin(), m.end());
    ASSERT_EQ(distinct.size(), m.size());  // injective
    for (uint32_t i = 0; i < q.NumVertices(); ++i) {
      for (uint32_t j : r.plan.backward_neighbors[i]) {
        ASSERT_TRUE(data.HasEdge(m[i], m[j]));
      }
    }
  }
}

TEST(MatchTest, ThreadCountInvariant) {
  Graph data = Rmat(9, 5, 21);
  MatchOptions one;
  one.engine.num_threads = 1;
  MatchOptions eight;
  eight.engine.num_threads = 8;
  Graph q = CyclePattern(4);
  EXPECT_EQ(SubgraphMatch(data, q, one).stats.matches,
            SubgraphMatch(data, q, eight).stats.matches);
}

// --- adaptive splitting determinism -----------------------------------------

// The acceptance bar for task splitting: the DFS search visits the
// bit-identical tree no matter how many threads run it or where prefix
// tasks are cut, so the match count, the search-node count, and the
// collected match *set* never move.
TEST(MatchDeterminismTest, CountAndCollectedSetInvariantAcrossSplits) {
  Graph data = BarabasiAlbert(300, 6, 13);
  Graph q = CliquePattern(4);

  MatchOptions ref_opt;
  ref_opt.engine.num_threads = 1;
  ref_opt.split_depth = 0;
  MatchResult ref = SubgraphMatch(data, q, ref_opt, /*collect=*/true);
  std::vector<std::vector<VertexId>> ref_set = ref.matches;
  std::sort(ref_set.begin(), ref_set.end());

  for (uint32_t threads : {1u, 2u, 8u}) {
    for (uint32_t split : {0u, 2u}) {
      MatchOptions opt;
      opt.engine.num_threads = threads;
      // Block distribution clusters the hub roots on one worker, so
      // thieves park early and splitting genuinely kicks in.
      opt.engine.distribution = InitialDistribution::kBlock;
      opt.split_depth = split;
      MatchResult r = SubgraphMatch(data, q, opt, /*collect=*/true);
      EXPECT_EQ(r.stats.matches, ref.stats.matches)
          << threads << " threads, split depth " << split;
      EXPECT_EQ(r.stats.search_nodes, ref.stats.search_nodes)
          << threads << " threads, split depth " << split;
      std::vector<std::vector<VertexId>> got = r.matches;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, ref_set)
          << threads << " threads, split depth " << split;
    }
  }
}

TEST(MatchDeterminismTest, SymmetryBreakingSurvivesSplitting) {
  Graph data = BarabasiAlbert(300, 6, 29);
  MatchOptions opt;
  opt.symmetry_breaking = true;
  opt.engine.num_threads = 8;
  opt.split_depth = 2;
  MatchOptions serial = opt;
  serial.engine.num_threads = 1;
  serial.split_depth = 0;
  for (const Graph& q : {TrianglePattern(), DiamondPattern()}) {
    EXPECT_EQ(SubgraphMatch(data, q, opt).stats.matches,
              SubgraphMatch(data, q, serial).stats.matches);
  }
}

// Wall-clock scaling check behind the acceptance criterion: adaptive
// splitting at 4 threads beats the 1-thread run by >= 1.5x on a
// hub-heavy BA graph. Tagged `timing` in ctest; skipped (not failed) on
// hosts without 4 cores.
TEST(MatchScalingTest, SplittingSpeedsUpHubHeavyMatchAt4Threads) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  Graph data = BarabasiAlbert(3000, 25, 7);
  Graph q = CliquePattern(4);
  auto best_of = [&](uint32_t threads, uint32_t split) {
    MatchOptions opt;
    opt.engine.num_threads = threads;
    opt.split_depth = split;
    SubgraphMatch(data, q, opt);  // warm caches
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      MatchResult r = SubgraphMatch(data, q, opt);
      best = std::min(best, r.stats.task_stats.wall_seconds);
    }
    return best;
  };
  const double serial = best_of(1, 0);
  const double adaptive = best_of(4, 2);
  EXPECT_GT(serial / adaptive, 1.5)
      << "serial=" << serial << "s adaptive4=" << adaptive << "s";
}

TEST(MatchTest, HasSubgraphMatchFindsAndRejects) {
  Graph tri_free = Grid(5, 5);
  EXPECT_FALSE(HasSubgraphMatch(tri_free, TrianglePattern()));
  EXPECT_TRUE(HasSubgraphMatch(tri_free, CyclePattern(4)));
  EXPECT_TRUE(HasSubgraphMatch(Complete(5), CliquePattern(5)));
  EXPECT_FALSE(HasSubgraphMatch(Complete(4), CliquePattern(5)));
}

// --- candidate refinement -------------------------------------------------------

TEST(RefineTest, NeverChangesMatchCounts) {
  Graph data = WithRandomLabels(Rmat(8, 6, 11), 3, 17);
  for (const Graph& base : {TrianglePattern(), CyclePattern(4),
                            TailedTrianglePattern()}) {
    Graph q = base;
    std::vector<Label> qlabels(q.NumVertices());
    for (uint32_t i = 0; i < qlabels.size(); ++i) qlabels[i] = i % 3;
    ASSERT_TRUE(q.SetLabels(std::move(qlabels)).ok());
    MatchOptions plain;
    MatchOptions refined;
    refined.refine_candidates = true;
    EXPECT_EQ(SubgraphMatch(data, q, plain).stats.matches,
              SubgraphMatch(data, q, refined).stats.matches);
  }
}

TEST(RefineTest, ShrinksCandidatesAndSearchOnLabeledData) {
  Graph data = WithRandomLabels(Rmat(9, 6, 3), 4, 21);
  Graph q = CyclePattern(4);
  ASSERT_TRUE(q.SetLabels({0, 1, 2, 3}).ok());
  MatchOptions plain;
  MatchOptions refined;
  refined.refine_candidates = true;
  MatchResult rp = SubgraphMatch(data, q, plain);
  MatchResult rr = SubgraphMatch(data, q, refined);
  EXPECT_EQ(rp.stats.matches, rr.stats.matches);
  EXPECT_LT(rr.stats.candidate_total, rp.stats.candidate_total);
  EXPECT_LE(rr.stats.search_nodes, rp.stats.search_nodes);
}

TEST(RefineTest, ReachesFixpointAndIsSound) {
  // A path query on a star data graph: the center is the only vertex
  // that can host the middle, and refinement must figure out that
  // leaves cannot host *both* path ends of a 3-path going through a
  // leaf (no second neighbor).
  Graph data = Star(6);
  Graph q = PathPattern(3);
  CandidateSets sets = LdfFilter(data, q);
  RefineStats stats = RefineCandidates(data, q, &sets);
  EXPECT_GE(stats.rounds, 1u);
  // Middle vertex (degree 2) can only be the hub.
  EXPECT_EQ(sets.candidates[1], (std::vector<VertexId>{0}));
  // Fixpoint: running again removes nothing.
  RefineStats again = RefineCandidates(data, q, &sets);
  EXPECT_EQ(again.removed, 0u);
}

// --- BFS / hybrid matching ------------------------------------------------------

TEST(BfsMatchTest, AgreesWithDfsExecutor) {
  Graph data = ErdosRenyi(100, 0.08, 17);
  for (const Graph& q :
       {TrianglePattern(), CyclePattern(4), DiamondPattern()}) {
    MatchResult dfs = SubgraphMatch(data, q);
    BfsMatchResult bfs = BfsSubgraphMatch(data, q);
    EXPECT_EQ(bfs.stats.matches, dfs.stats.matches);
  }
}

TEST(BfsMatchTest, HonorsInducedAndRefinement) {
  Graph data = ErdosRenyi(80, 0.12, 3);
  for (const Graph& q : {CyclePattern(4), DiamondPattern()}) {
    MatchOptions opt;
    opt.induced = true;
    opt.refine_candidates = true;
    MatchResult dfs = SubgraphMatch(data, q, opt);
    BfsMatchOptions bfs_opt;
    bfs_opt.match = opt;
    BfsMatchResult bfs = BfsSubgraphMatch(data, q, bfs_opt);
    EXPECT_EQ(bfs.stats.matches, dfs.stats.matches);
  }
}

TEST(BfsMatchTest, PeakMemoryTracked) {
  Graph data = Complete(20);
  BfsMatchResult r = BfsSubgraphMatch(data, CliquePattern(4));
  EXPECT_GT(r.peak_partial_matches, 1000u);  // K20 partials explode
  EXPECT_GT(r.peak_bytes, 0u);
}

TEST(BfsMatchTest, StrictBudgetAborts) {
  Graph data = Complete(20);
  BfsMatchOptions opt;
  opt.memory_budget_bytes = 1024;
  opt.policy = MemoryPolicy::kStrict;
  BfsMatchResult r = BfsSubgraphMatch(data, CliquePattern(4), opt);
  EXPECT_TRUE(r.budget_exceeded);
}

TEST(BfsMatchTest, HybridMatchesFullCountUnderBudget) {
  Graph data = ErdosRenyi(100, 0.1, 29);
  BfsMatchResult full = BfsSubgraphMatch(data, DiamondPattern());
  BfsMatchOptions opt;
  opt.memory_budget_bytes = 8192;
  opt.policy = MemoryPolicy::kHybridDfs;
  BfsMatchResult hybrid = BfsSubgraphMatch(data, DiamondPattern(), opt);
  EXPECT_EQ(hybrid.stats.matches, full.stats.matches);
  EXPECT_GT(hybrid.dfs_fallback_matches, 0u);
  EXPECT_LT(hybrid.peak_bytes, full.peak_bytes);
}

TEST(BfsMatchTest, SpillCompletesWithAccounting) {
  Graph data = ErdosRenyi(100, 0.1, 31);
  BfsMatchResult full = BfsSubgraphMatch(data, CyclePattern(4));
  BfsMatchOptions opt;
  opt.memory_budget_bytes = 4096;
  opt.policy = MemoryPolicy::kSpill;
  BfsMatchResult spill = BfsSubgraphMatch(data, CyclePattern(4), opt);
  EXPECT_EQ(spill.stats.matches, full.stats.matches);
  EXPECT_GT(spill.spilled_bytes, 0u);
}

// --- online server -----------------------------------------------------------------

TEST(OnlineServerTest, ConcurrentQueriesAllComplete) {
  Graph data = Rmat(9, 6, 13);
  OnlineQueryServer server(&data, 4);
  std::vector<std::future<OnlineQueryServer::QueryOutcome>> futures;
  futures.push_back(server.Submit(TrianglePattern()));
  futures.push_back(server.Submit(CyclePattern(4)));
  futures.push_back(server.Submit(PathPattern(3)));
  futures.push_back(server.Submit(StarPattern(3)));
  server.Drain();
  EXPECT_EQ(server.queries_completed(), 4u);
  MatchResult tri_ref = SubgraphMatch(data, TrianglePattern());
  EXPECT_EQ(futures[0].get().stats.matches, tri_ref.stats.matches);
  for (size_t i = 1; i < futures.size(); ++i) {
    OnlineQueryServer::QueryOutcome outcome = futures[i].get();
    EXPECT_GT(outcome.latency_seconds, 0.0);
  }
}

TEST(OnlineServerTest, ManySmallQueriesThroughput) {
  Graph data = ErdosRenyi(200, 0.05, 7);
  OnlineQueryServer server(&data, 8);
  std::vector<std::future<OnlineQueryServer::QueryOutcome>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(server.Submit(TrianglePattern()));
  }
  server.Drain();
  EXPECT_EQ(server.queries_completed(), 32u);
  const uint64_t expect = futures[0].get().stats.matches;
  for (size_t i = 1; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().stats.matches, expect);
  }
}

}  // namespace
}  // namespace gal
