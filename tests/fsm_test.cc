#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "fsm/canonical.h"
#include "fsm/fsm.h"
#include "fsm/mni.h"
#include "graph/generators.h"
#include "graph/transaction_db.h"
#include "match/executor.h"
#include "match/pattern.h"

namespace gal {
namespace {

Graph LabeledGraph(VertexId n, std::vector<Edge> edges,
                   std::vector<Label> labels) {
  Graph g = std::move(Graph::FromEdges(n, std::move(edges), {}).value());
  EXPECT_TRUE(g.SetLabels(std::move(labels)).ok());
  return g;
}

// --- canonical codes -----------------------------------------------------------

TEST(CanonicalTest, IsomorphicPatternsShareCode) {
  // Same labeled triangle, two vertex orderings.
  Graph a = LabeledGraph(3, {{0, 1}, {1, 2}, {0, 2}}, {5, 6, 7});
  Graph b = LabeledGraph(3, {{0, 1}, {1, 2}, {0, 2}}, {7, 5, 6});
  EXPECT_EQ(CanonicalCode(a), CanonicalCode(b));
  EXPECT_TRUE(PatternsIsomorphic(a, b));
}

TEST(CanonicalTest, DifferentStructuresDiffer) {
  Graph path = LabeledGraph(3, {{0, 1}, {1, 2}}, {1, 1, 1});
  Graph tri = LabeledGraph(3, {{0, 1}, {1, 2}, {0, 2}}, {1, 1, 1});
  EXPECT_NE(CanonicalCode(path), CanonicalCode(tri));
  EXPECT_FALSE(PatternsIsomorphic(path, tri));
}

TEST(CanonicalTest, LabelsDistinguish) {
  Graph a = LabeledGraph(2, {{0, 1}}, {1, 2});
  Graph b = LabeledGraph(2, {{0, 1}}, {1, 3});
  EXPECT_NE(CanonicalCode(a), CanonicalCode(b));
}

TEST(CanonicalTest, PathEndpointsIrrelevant) {
  Graph a = LabeledGraph(4, {{0, 1}, {1, 2}, {2, 3}}, {1, 2, 2, 1});
  Graph b = LabeledGraph(4, {{3, 2}, {2, 1}, {1, 0}}, {1, 2, 2, 1});
  EXPECT_TRUE(PatternsIsomorphic(a, b));
}

TEST(CanonicalTest, ExtendPatternProducesUniqueChildren) {
  Graph edge = EdgePattern(0, 0);
  std::vector<Graph> children = ExtendPattern(edge, {0, 1});
  std::set<std::string> codes;
  for (const Graph& c : children) {
    EXPECT_TRUE(codes.insert(CanonicalCode(c)).second);
    EXPECT_EQ(c.NumEdges(), 2u);
  }
  // Children of an A-A edge with alphabet {A,B}: a new vertex (A or B)
  // attached to either endpoint — but both endpoints are equivalent, so
  // exactly 2 distinct children (no closable pair exists).
  EXPECT_EQ(children.size(), 2u);
}

TEST(CanonicalTest, ExtendClosesTriangle) {
  Graph path = LabeledGraph(3, {{0, 1}, {1, 2}}, {0, 0, 0});
  std::vector<Graph> children = ExtendPattern(path, {0});
  bool has_triangle = false;
  for (const Graph& c : children) {
    if (c.NumVertices() == 3 && c.NumEdges() == 3) has_triangle = true;
  }
  EXPECT_TRUE(has_triangle);
}

// --- MNI support ------------------------------------------------------------------

TEST(MniTest, EdgePatternSupportByHand) {
  // Data: star with center label 0, three leaves label 1. Edge (0,1):
  // center image {c}, leaf images {3 leaves} -> MNI = min(1, 3) = 1.
  Graph data = LabeledGraph(4, {{0, 1}, {0, 2}, {0, 3}}, {0, 1, 1, 1});
  MniResult r = MniSupport(data, EdgePattern(0, 1));
  EXPECT_EQ(r.support, 1u);
  std::vector<uint32_t> sorted = r.images;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted.front(), 1u);
  EXPECT_EQ(sorted.back(), 3u);
}

TEST(MniTest, MatchesDistinctImagesFromFullEnumeration) {
  Graph data = WithRandomLabels(ErdosRenyi(60, 0.1, 5), 2, 7);
  Graph pattern = TrianglePattern();
  ASSERT_TRUE(pattern.SetLabels({0, 0, 1}).ok());
  MniResult mni = MniSupport(data, pattern);

  MatchResult full = SubgraphMatch(data, pattern, {}, /*collect=*/true);
  // full.matches[i][j] hosts plan.order[j]; recover per-query-vertex
  // image sets.
  std::vector<std::set<VertexId>> images(3);
  for (const auto& m : full.matches) {
    for (uint32_t j = 0; j < 3; ++j) {
      images[full.plan.order[j]].insert(m[j]);
    }
  }
  uint32_t expect = data.NumVertices();
  for (const auto& s : images) {
    expect = std::min(expect, static_cast<uint32_t>(s.size()));
  }
  EXPECT_EQ(mni.support, expect);
  for (uint32_t u = 0; u < 3; ++u) {
    EXPECT_EQ(mni.images[u], images[u].size());
  }
}

TEST(MniTest, EarlyTerminationStillDecidesFrequency) {
  Graph data = WithRandomLabels(Rmat(9, 6, 3), 2, 11);
  Graph pattern = EdgePattern(0, 1);
  MniResult exact = MniSupport(data, pattern);
  for (uint32_t threshold : {2u, 10u, 1000000u}) {
    MniOptions opt;
    opt.threshold = threshold;
    MniResult fast = MniSupport(data, pattern, opt);
    EXPECT_EQ(fast.support >= threshold, exact.support >= threshold)
        << "threshold " << threshold;
    EXPECT_LE(fast.existence_checks, exact.existence_checks);
  }
}

TEST(MniTest, ParallelMatchesSerial) {
  Graph data = WithRandomLabels(Rmat(8, 8, 9), 3, 13);
  Graph pattern = TrianglePattern();
  ASSERT_TRUE(pattern.SetLabels({0, 1, 2}).ok());
  MniOptions serial;
  serial.num_threads = 1;
  MniOptions parallel;
  parallel.num_threads = 8;
  EXPECT_EQ(MniSupport(data, pattern, serial).support,
            MniSupport(data, pattern, parallel).support);
}

// --- single-graph FSM ---------------------------------------------------------------

TEST(SingleGraphFsmTest, FindsPlantedFrequentTriangles) {
  // Plant many label-(0,1,2) triangles in a sparse labeled background.
  std::vector<Edge> edges;
  std::vector<Label> labels;
  const uint32_t kTriangles = 12;
  for (uint32_t t = 0; t < kTriangles; ++t) {
    const VertexId base = t * 3;
    edges.push_back({base, base + 1});
    edges.push_back({base + 1, base + 2});
    edges.push_back({base, base + 2});
    labels.push_back(0);
    labels.push_back(1);
    labels.push_back(2);
  }
  // Chain the triangles together so the graph is connected.
  for (uint32_t t = 0; t + 1 < kTriangles; ++t) {
    edges.push_back({t * 3, (t + 1) * 3});
  }
  Graph data = LabeledGraph(kTriangles * 3, edges, labels);

  SingleGraphFsmOptions opt;
  opt.min_support = kTriangles;
  opt.max_edges = 3;
  SingleGraphFsmResult r = MineSingleGraph(data, opt);

  Graph want = TrianglePattern();
  ASSERT_TRUE(want.SetLabels({0, 1, 2}).ok());
  bool found = false;
  for (const FrequentPattern& p : r.patterns) {
    if (PatternsIsomorphic(p.pattern, want)) {
      found = true;
      EXPECT_GE(p.support, kTriangles);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(r.stats.patterns_evaluated, 0u);
}

TEST(SingleGraphFsmTest, AllReportedPatternsAreActuallyFrequent) {
  Graph data = WithRandomLabels(ErdosRenyi(80, 0.06, 3), 2, 17);
  SingleGraphFsmOptions opt;
  opt.min_support = 5;
  opt.max_edges = 3;
  SingleGraphFsmResult r = MineSingleGraph(data, opt);
  for (const FrequentPattern& p : r.patterns) {
    MniResult exact = MniSupport(data, p.pattern);  // threshold 0: exact
    EXPECT_GE(exact.support, opt.min_support)
        << CanonicalCode(p.pattern);
  }
  // No isomorphic duplicates.
  std::set<std::string> codes;
  for (const FrequentPattern& p : r.patterns) {
    EXPECT_TRUE(codes.insert(CanonicalCode(p.pattern)).second);
  }
}

TEST(SingleGraphFsmTest, HigherThresholdYieldsSubset) {
  Graph data = WithRandomLabels(ErdosRenyi(100, 0.05, 9), 2, 23);
  SingleGraphFsmOptions low;
  low.min_support = 4;
  low.max_edges = 3;
  SingleGraphFsmOptions high = low;
  high.min_support = 12;
  SingleGraphFsmResult rl = MineSingleGraph(data, low);
  SingleGraphFsmResult rh = MineSingleGraph(data, high);
  EXPECT_LE(rh.patterns.size(), rl.patterns.size());
  std::set<std::string> low_codes;
  for (const FrequentPattern& p : rl.patterns) {
    low_codes.insert(CanonicalCode(p.pattern));
  }
  for (const FrequentPattern& p : rh.patterns) {
    EXPECT_TRUE(low_codes.count(CanonicalCode(p.pattern)));
  }
}

// --- transaction FSM ---------------------------------------------------------------

TEST(TransactionFsmTest, FindsClassMotifs) {
  MoleculeDbOptions db_opt;
  db_opt.num_transactions = 60;
  TransactionDb db = SyntheticMoleculeDb(db_opt, 31);
  TransactionFsmOptions opt;
  opt.min_support = 20;
  opt.max_edges = 3;
  TransactionFsmResult r = MineTransactions(db, opt);

  Graph motif = TrianglePattern();  // class-0 motif: labels 0,1,2
  ASSERT_TRUE(motif.SetLabels({0, 1, 2}).ok());
  bool found = false;
  for (const FrequentPattern& p : r.patterns) {
    if (PatternsIsomorphic(p.pattern, motif)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TransactionFsmTest, SupportsAreExactTransactionCounts) {
  MoleculeDbOptions db_opt;
  db_opt.num_transactions = 30;
  db_opt.vertices_per_graph = 12;
  TransactionDb db = SyntheticMoleculeDb(db_opt, 7);
  TransactionFsmOptions opt;
  opt.min_support = 10;
  opt.max_edges = 2;
  TransactionFsmResult r = MineTransactions(db, opt);
  ASSERT_EQ(r.patterns.size(), r.occurrences.size());
  for (size_t i = 0; i < r.patterns.size(); ++i) {
    uint32_t count = 0;
    for (uint32_t t = 0; t < db.size(); ++t) {
      MatchOptions m;
      m.limit = 1;
      if (HasSubgraphMatch(db[t].graph, r.patterns[i].pattern, m)) ++count;
    }
    EXPECT_EQ(r.patterns[i].support, count);
    EXPECT_EQ(r.occurrences[i].size(), count);
  }
}

TEST(TransactionFsmTest, NoDuplicatesAndThreadInvariant) {
  MoleculeDbOptions db_opt;
  db_opt.num_transactions = 24;
  db_opt.vertices_per_graph = 10;
  TransactionDb db = SyntheticMoleculeDb(db_opt, 9);
  TransactionFsmOptions opt1;
  opt1.min_support = 8;
  opt1.max_edges = 3;
  opt1.num_threads = 1;
  TransactionFsmOptions opt8 = opt1;
  opt8.num_threads = 8;
  TransactionFsmResult a = MineTransactions(db, opt1);
  TransactionFsmResult b = MineTransactions(db, opt8);

  auto codes = [](const TransactionFsmResult& r) {
    std::set<std::string> s;
    for (const FrequentPattern& p : r.patterns) {
      EXPECT_TRUE(s.insert(CanonicalCode(p.pattern)).second);
    }
    return s;
  };
  EXPECT_EQ(codes(a), codes(b));
}

// --- canonicalization choices agree ---------------------------------------------

TEST(FsmCanonicalizationTest, DfsCodeDedupMatchesPermutationDedup) {
  Graph data = WithRandomLabels(ErdosRenyi(80, 0.06, 3), 2, 17);
  SingleGraphFsmOptions perm;
  perm.min_support = 5;
  perm.max_edges = 3;
  SingleGraphFsmOptions dfs = perm;
  dfs.canonical = Canonicalization::kMinDfsCode;
  SingleGraphFsmResult a = MineSingleGraph(data, perm);
  SingleGraphFsmResult b = MineSingleGraph(data, dfs);
  auto codes = [](const SingleGraphFsmResult& r) {
    std::set<std::string> s;
    for (const FrequentPattern& p : r.patterns) {
      s.insert(CanonicalCode(p.pattern));
    }
    return s;
  };
  EXPECT_EQ(codes(a), codes(b));

  MoleculeDbOptions db_opt;
  db_opt.num_transactions = 24;
  db_opt.vertices_per_graph = 10;
  TransactionDb db = SyntheticMoleculeDb(db_opt, 9);
  TransactionFsmOptions tx_perm;
  tx_perm.min_support = 8;
  tx_perm.max_edges = 3;
  TransactionFsmOptions tx_dfs = tx_perm;
  tx_dfs.canonical = Canonicalization::kMinDfsCode;
  TransactionFsmResult ta = MineTransactions(db, tx_perm);
  TransactionFsmResult tb = MineTransactions(db, tx_dfs);
  std::set<std::string> sa, sb;
  for (const FrequentPattern& p : ta.patterns) sa.insert(CanonicalCode(p.pattern));
  for (const FrequentPattern& p : tb.patterns) sb.insert(CanonicalCode(p.pattern));
  EXPECT_EQ(sa, sb);
}

// --- closed patterns ---------------------------------------------------------

TEST(ClosedPatternsTest, RemovesSubPatternsOfEqualSupport) {
  MoleculeDbOptions db_opt;
  db_opt.num_transactions = 40;
  db_opt.vertices_per_graph = 12;
  TransactionDb db = SyntheticMoleculeDb(db_opt, 5);
  TransactionFsmOptions opt;
  opt.min_support = 12;
  opt.max_edges = 3;
  TransactionFsmResult r = MineTransactions(db, opt);
  std::vector<FrequentPattern> closed = ClosedPatterns(r.patterns);
  ASSERT_FALSE(closed.empty());
  EXPECT_LT(closed.size(), r.patterns.size());

  // Every closed pattern really has no equal-support super-pattern.
  for (const FrequentPattern& c : closed) {
    for (const FrequentPattern& p : r.patterns) {
      if (p.support != c.support) continue;
      if (p.pattern.NumEdges() <= c.pattern.NumEdges()) continue;
      MatchOptions m;
      m.limit = 1;
      EXPECT_FALSE(HasSubgraphMatch(p.pattern, c.pattern, m))
          << "closed pattern has an equal-support super-pattern";
    }
  }
  // And every removed pattern does have one.
  std::set<std::string> closed_codes;
  for (const FrequentPattern& c : closed) {
    closed_codes.insert(CanonicalCode(c.pattern));
  }
  for (const FrequentPattern& p : r.patterns) {
    if (closed_codes.count(CanonicalCode(p.pattern))) continue;
    bool has_super = false;
    for (const FrequentPattern& q : r.patterns) {
      if (q.support != p.support || q.pattern.NumEdges() <= p.pattern.NumEdges()) {
        continue;
      }
      MatchOptions m;
      m.limit = 1;
      if (HasSubgraphMatch(q.pattern, p.pattern, m)) {
        has_super = true;
        break;
      }
    }
    EXPECT_TRUE(has_super);
  }
}

TEST(ClosedPatternsTest, AllClosedWhenSupportsDiffer) {
  // Hand-built set: an edge (support 10) and a triangle (support 5):
  // the edge is contained in the triangle but supports differ -> both
  // closed.
  std::vector<FrequentPattern> patterns;
  patterns.push_back({EdgePattern(0, 0), 10});
  Graph tri = std::move(
      Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}, {}).value());
  GAL_CHECK_OK(tri.SetLabels({0, 0, 0}));
  patterns.push_back({tri, 5});
  EXPECT_EQ(ClosedPatterns(patterns).size(), 2u);
  // Equal support: only the triangle survives.
  patterns[1].support = 10;
  std::vector<FrequentPattern> closed = ClosedPatterns(patterns);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].pattern.NumEdges(), 3u);
}

}  // namespace
}  // namespace gal
