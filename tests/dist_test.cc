#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "dist/cache.h"
#include "dist/cost_model.h"
#include "dist/dist_gcn.h"
#include "dist/pipeline.h"
#include "dist/quantization.h"
#include "gnn/dataset.h"
#include "graph/generators.h"

namespace gal {
namespace {

// --- network cost model --------------------------------------------------------
// (The traffic-ledger tests live in cluster_test.cc with the rest of the
// simulated-cluster substrate.)

TEST(NetworkTest, NvlinkFasterThanEthernet) {
  const uint64_t bytes = 100 * 1024 * 1024;
  EXPECT_LT(NetworkCostModel::Nvlink().TransferSeconds(bytes),
            NetworkCostModel::Ethernet10G().TransferSeconds(bytes) / 10);
}

// --- quantization ----------------------------------------------------------------

TEST(QuantizationTest, WireBytesOrdering) {
  EXPECT_GT(WireBytes(Quantization::kNone, 100, 64),
            WireBytes(Quantization::kFp16, 100, 64));
  EXPECT_GT(WireBytes(Quantization::kFp16, 100, 64),
            WireBytes(Quantization::kInt8, 100, 64));
  EXPECT_GT(WireBytes(Quantization::kInt8, 100, 64),
            WireBytes(Quantization::kInt4, 100, 64));
}

TEST(QuantizationTest, ErrorShrinksWithMoreBits) {
  Rng rng(3);
  Matrix m = Matrix::Xavier(50, 32, rng);
  const double e16 = m.MeanAbsDiff(QuantizeDequantize(m, Quantization::kFp16));
  const double e8 = m.MeanAbsDiff(QuantizeDequantize(m, Quantization::kInt8));
  const double e4 = m.MeanAbsDiff(QuantizeDequantize(m, Quantization::kInt4));
  EXPECT_LT(e16, e8);
  EXPECT_LT(e8, e4);
  EXPECT_GT(e4, 0.0);
  EXPECT_EQ(m.MeanAbsDiff(QuantizeDequantize(m, Quantization::kNone)), 0.0);
}

TEST(QuantizationTest, Int8BoundedError) {
  Rng rng(9);
  Matrix m = Matrix::Xavier(20, 16, rng);
  Matrix q = QuantizeDequantize(m, Quantization::kInt8);
  // Max error <= half a quantization step of the per-row range.
  for (uint32_t r = 0; r < m.rows(); ++r) {
    float lo = m.at(r, 0);
    float hi = m.at(r, 0);
    for (uint32_t c = 0; c < m.cols(); ++c) {
      lo = std::min(lo, m.at(r, c));
      hi = std::max(hi, m.at(r, c));
    }
    const float step = (hi - lo) / 255.0f;
    for (uint32_t c = 0; c < m.cols(); ++c) {
      EXPECT_LE(std::abs(m.at(r, c) - q.at(r, c)), step * 0.51f);
    }
  }
}

TEST(QuantizationTest, ErrorCompensationCancelsBiasOverTime) {
  // Transmit the same matrix repeatedly; the *running mean* of EC
  // transmissions converges to the true values, while plain
  // quantization keeps its deterministic bias forever.
  Rng rng(5);
  Matrix m = Matrix::Xavier(10, 10, rng);
  ErrorCompensatedCodec codec(Quantization::kInt4);
  Matrix ec_mean(10, 10);
  Matrix plain_mean(10, 10);
  const int kRounds = 64;
  for (int i = 0; i < kRounds; ++i) {
    ec_mean.AddScaled(codec.Transmit(m), 1.0f / kRounds);
    plain_mean.AddScaled(QuantizeDequantize(m, Quantization::kInt4),
                         1.0f / kRounds);
  }
  EXPECT_LT(m.MeanAbsDiff(ec_mean), m.MeanAbsDiff(plain_mean) * 0.5);
}

// --- cache ------------------------------------------------------------------------

TEST(CacheTest, LocalVerticesAlwaysHit) {
  Graph g = Rmat(8, 6, 3);
  VertexPartition parts = HashPartition(g, 4);
  StaticFeatureCache cache(g, parts, 0.0);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_TRUE(cache.Fetch(parts.assignment[v], v));
  }
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(CacheTest, HotVerticesCachedRemotely) {
  Graph g = Star(200);  // vertex 0 is by far the hottest
  VertexPartition parts = HashPartition(g, 4);
  StaticFeatureCache cache(g, parts, 0.01);
  for (uint32_t w = 0; w < 4; ++w) {
    EXPECT_TRUE(cache.Fetch(w, 0)) << "hub must be cached on worker " << w;
  }
}

TEST(CacheTest, LargerCacheHigherHitRate) {
  Graph g = Rmat(9, 8, 7);
  VertexPartition parts = HashPartition(g, 4);
  StaticFeatureCache small(g, parts, 0.02);
  StaticFeatureCache big(g, parts, 0.4);
  Rng rng(3);
  // Degree-biased access pattern: sample adjacency slots (decoded up
  // front so the sampling works on compressed graphs too).
  std::vector<VertexId> slots;
  slots.reserve(g.NumAdjacencyEntries());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    g.ForEachOutNeighbor(u, [&](VertexId w) { slots.push_back(w); });
  }
  for (int i = 0; i < 20000; ++i) {
    const VertexId v = slots[rng.Uniform(slots.size())];
    const uint32_t w = static_cast<uint32_t>(rng.Uniform(4));
    small.Fetch(w, v);
    big.Fetch(w, v);
  }
  EXPECT_GT(big.HitRate(), small.HitRate());
}

// --- pipeline ----------------------------------------------------------------------

std::vector<PipelineStage> SpinStages() {
  auto spin = [](double ms) {
    const auto end =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(ms * 1000));
    while (std::chrono::steady_clock::now() < end) {
    }
  };
  return {
      {"sample", [=](uint32_t) { spin(2.0); }},
      {"gather", [=](uint32_t) { spin(2.0); }},
      {"compute", [=](uint32_t) { spin(2.0); }},
  };
}

TEST(PipelineTest, ModeledOverlapIndependentOfCores) {
  PipelineReport report = RunPipeline(SpinStages(), 16);
  // The modeled speedup schedules on a virtual clock and is therefore
  // deterministic on any core count: 3 equal stages over 16 batches
  // give 48/(16+2) ≈ 2.67x.
  EXPECT_GT(report.modeled_speedup, 1.5);
  EXPECT_EQ(report.stage_names.size(), 3u);
  EXPECT_GT(report.hardware_concurrency, 0u);
}

// `timing` label: the *measured* wall-clock speedup only materializes
// when the host can run one thread per CPU-bound spin stage — skipped
// (not failed) on smaller hosts.
TEST(PipelineTest, OverlapBeatsSerial) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  PipelineReport report = RunPipeline(SpinStages(), 16);
  EXPECT_GT(report.measured_speedup, 1.5);
}

TEST(PipelineTest, ModeledExecutorMoreStagesThanCores) {
  // 8 stages regardless of the host's core count: the modeled replay
  // must still show near-perfect overlap for uniform stages.
  const size_t kStages = 8;
  const uint32_t kBatches = 24;
  std::vector<std::vector<double>> busy(
      kStages, std::vector<double>(kBatches, 1.0));
  ModeledPipelineResult m = ModelPipelineSchedule(busy);
  EXPECT_DOUBLE_EQ(m.serial_seconds, double(kStages * kBatches));
  // Uniform pipeline makespan: batches + (stages - 1).
  EXPECT_DOUBLE_EQ(m.pipelined_seconds, double(kBatches + kStages - 1));
  EXPECT_NEAR(m.speedup,
              double(kStages * kBatches) / double(kBatches + kStages - 1),
              1e-12);
  EXPECT_DOUBLE_EQ(m.critical_path_seconds, double(kStages));
  // Fill + stall + busy + drain accounts for every stage's whole run.
  for (size_t s = 0; s < kStages; ++s) {
    EXPECT_NEAR(m.stage_fill_seconds[s] + m.stage_stall_seconds[s] +
                    m.stage_busy_seconds[s] + m.stage_drain_seconds[s],
                m.pipelined_seconds, 1e-9)
        << "stage " << s;
  }
}

TEST(PipelineTest, ModeledExecutorBottleneckDominates) {
  // Skewed stages: the slow middle stage sets the pace; modeled speedup
  // approaches total / bottleneck as batches grow.
  const uint32_t kBatches = 64;
  std::vector<std::vector<double>> busy = {
      std::vector<double>(kBatches, 0.1),
      std::vector<double>(kBatches, 1.0),
      std::vector<double>(kBatches, 0.1),
  };
  ModeledPipelineResult m = ModelPipelineSchedule(busy);
  EXPECT_EQ(m.bottleneck_stage, 1u);
  EXPECT_DOUBLE_EQ(m.bottleneck_busy_seconds, double(kBatches));
  // Makespan = fill (0.1) + bottleneck total (64) + drain (0.1).
  EXPECT_NEAR(m.pipelined_seconds, 0.1 + kBatches + 0.1, 1e-9);
  EXPECT_NEAR(m.speedup, m.serial_seconds / m.bottleneck_busy_seconds, 0.05);
  // Fast downstream stage mostly stalls waiting on the bottleneck.
  EXPECT_GT(m.stage_stall_seconds[2], 0.8 * kBatches * (1.0 - 0.1));
}

TEST(PipelineTest, ModeledExecutorSingleStageHasNoOverlap) {
  std::vector<std::vector<double>> busy = {{0.5, 1.0, 0.25, 2.0}};
  ModeledPipelineResult m = ModelPipelineSchedule(busy);
  EXPECT_DOUBLE_EQ(m.pipelined_seconds, m.serial_seconds);
  EXPECT_DOUBLE_EQ(m.speedup, 1.0);
  EXPECT_EQ(m.bottleneck_stage, 0u);
  EXPECT_DOUBLE_EQ(m.stage_fill_seconds[0], 0.0);
  EXPECT_DOUBLE_EQ(m.stage_stall_seconds[0], 0.0);
  EXPECT_DOUBLE_EQ(m.stage_drain_seconds[0], 0.0);
  EXPECT_DOUBLE_EQ(m.critical_path_seconds, 2.0);
}

TEST(PipelineTest, ReportSeparatesSerialAndPipelinedBusyTime) {
  std::vector<PipelineStage> stages = {
      {"a", [](uint32_t) {}},
      {"b", [](uint32_t) {}},
  };
  PipelineReport report = RunPipeline(stages, 8);
  ASSERT_EQ(report.stages.size(), 2u);
  for (const PipelineStageStats& s : report.stages) {
    // Both passes ran all 8 batches; both busy totals were recorded.
    EXPECT_GE(s.serial_busy_seconds, 0.0);
    EXPECT_GE(s.pipelined_busy_seconds, 0.0);
    EXPECT_GE(s.busy_max_seconds, s.busy_p50_seconds);
    EXPECT_GE(s.stall_max_seconds, s.stall_p50_seconds);
  }
  // Virtual-clock consistency: modeled makespan is bounded below by the
  // critical path and above by the serial total.
  EXPECT_GE(report.modeled_pipelined_seconds, report.critical_path_seconds);
  EXPECT_LE(report.modeled_pipelined_seconds,
            report.serial_seconds + 1e-9);
}

TEST(PipelineTest, OrderingRespected) {
  // Stage 1 must never process batch b before stage 0 finished it.
  std::vector<std::atomic<int>> stage0_done(32);
  std::atomic<bool> violation{false};
  std::vector<PipelineStage> stages = {
      {"first", [&](uint32_t b) { stage0_done[b] = 1; }},
      {"second",
       [&](uint32_t b) {
         if (!stage0_done[b].load()) violation = true;
       }},
  };
  RunPipeline(stages, 32);
  EXPECT_FALSE(violation.load());
}

TEST(PipelineTest, ModeledSecondExecutorHalvesBottleneck) {
  // Deterministic regression for the two-level scheduler: widening the
  // bottleneck stage to 2 executors halves its per-executor busy time
  // and (nearly) halves the modeled critical-path makespan.
  const uint32_t kBatches = 8;
  auto stages_with = [&](uint32_t bottleneck_executors) {
    std::vector<ModeledStageSpec> stages = {
        {"sample", std::vector<double>(kBatches, 0.1), 1},
        {"compute", std::vector<double>(kBatches, 1.0),
         bottleneck_executors},
        {"emit", std::vector<double>(kBatches, 0.1), 1},
    };
    return stages;
  };
  ModeledPipelineResult one = ModelPipelineSchedule(stages_with(1));
  ModeledPipelineResult two = ModelPipelineSchedule(stages_with(2));

  // k = 1: fill (0.1) + bottleneck total (8.0) + drain (0.1).
  EXPECT_NEAR(one.pipelined_seconds, 8.2, 1e-9);
  // k = 2: the two executors interleave odd/even batches; the last
  // batch leaves the widened stage at 4.2 and emits by 4.3.
  EXPECT_NEAR(two.pipelined_seconds, 4.3, 1e-9);
  EXPECT_GT(one.pipelined_seconds / two.pipelined_seconds, 1.9);

  // The bottleneck is per-executor busy: halved by the second executor.
  EXPECT_EQ(one.bottleneck_stage, 1u);
  EXPECT_EQ(two.bottleneck_stage, 1u);
  EXPECT_DOUBLE_EQ(one.bottleneck_busy_seconds, 8.0);
  EXPECT_DOUBLE_EQ(two.bottleneck_busy_seconds, 4.0);
  ASSERT_EQ(two.stage_executors.size(), 3u);
  EXPECT_EQ(two.stage_executors[1], 2u);

  // Accounting invariant: fill + stall + busy + drain covers every
  // executor of every stage for the whole makespan.
  for (size_t s = 0; s < 3; ++s) {
    const double k = double(two.stage_executors[s]);
    EXPECT_NEAR(two.stage_fill_seconds[s] + two.stage_stall_seconds[s] +
                    two.stage_busy_seconds[s] + two.stage_drain_seconds[s],
                k * two.pipelined_seconds, 1e-9)
        << "stage " << s;
    EXPECT_NEAR(two.stage_occupancy[s],
                two.stage_busy_seconds[s] / (k * two.pipelined_seconds),
                1e-12);
  }
}

TEST(PipelineTest, ModeledNetworkStageChargesCostModel) {
  NetworkCostModel cost;  // 10 Gb/s, 50 µs/message
  const std::vector<uint64_t> bytes = {1250000000, 2500000000, 0};
  const std::vector<uint64_t> messages = {1, 2, 4};
  ModeledStageSpec comm = ModeledNetworkStage("comm", cost, bytes, messages, 2);
  ASSERT_EQ(comm.busy.size(), 3u);
  EXPECT_EQ(comm.executors, 2u);
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_DOUBLE_EQ(comm.busy[b], cost.TransferSeconds(bytes[b], messages[b]));
  }

  // Modeled compute->comm overlap where comm dominates: doubling the
  // channels (executors) halves the per-channel bottleneck.
  std::vector<ModeledStageSpec> narrow = {
      {"compute", {0.1, 0.1, 0.1}, 1},
      ModeledNetworkStage("comm", cost, bytes, messages, 1),
  };
  std::vector<ModeledStageSpec> wide = {
      {"compute", {0.1, 0.1, 0.1}, 1},
      ModeledNetworkStage("comm", cost, bytes, messages, 2),
  };
  ModeledPipelineResult n = ModelPipelineSchedule(narrow);
  ModeledPipelineResult w = ModelPipelineSchedule(wide);
  EXPECT_EQ(n.bottleneck_stage, 1u);
  EXPECT_NEAR(w.bottleneck_busy_seconds, n.bottleneck_busy_seconds / 2,
              1e-12);
  EXPECT_LT(w.pipelined_seconds, n.pipelined_seconds);
}

TEST(PipelineTest, KExecutorStagePreservesBatchOrder) {
  // A widened stage finishes batches out of order (batch 0 is slow), but
  // the batch-ordered handoff must release them downstream in ascending
  // order regardless.
  const uint32_t kBatches = 12;
  std::vector<uint32_t> seen;
  std::mutex seen_mu;
  std::vector<PipelineStage> stages = {
      {"produce",
       [&](uint32_t b) {
         std::this_thread::sleep_for(
             std::chrono::milliseconds(b == 0 ? 30 : 1));
       },
       2},
      {"consume",
       [&](uint32_t b) {
         std::lock_guard<std::mutex> lock(seen_mu);
         seen.push_back(b);
       },
       1},
  };
  PipelineReport report = RunPipeline(stages, kBatches);
  // Both passes (serial + pipelined) consume every batch in order.
  ASSERT_EQ(seen.size(), 2 * kBatches);
  for (uint32_t b = 0; b < kBatches; ++b) {
    EXPECT_EQ(seen[b], b);
    EXPECT_EQ(seen[kBatches + b], b);
  }
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].executors, 2u);
  EXPECT_EQ(report.stages[1].executors, 1u);
  EXPECT_EQ(report.total_executors, 3u);
}

TEST(PipelineTest, OutputsBitIdenticalAcrossExecutorConfigs) {
  // Every (stage, batch) pair executes exactly once per pass, writing
  // its own slot — so outputs are bit-identical between the serial pass
  // and any executor configuration.
  const uint32_t kBatches = 16;
  const size_t kDim = 64;
  auto run_with = [&](uint32_t executors) {
    std::vector<std::vector<float>> mid(kBatches), out(kBatches);
    std::vector<PipelineStage> stages = {
        {"transform",
         [&](uint32_t b) {
           std::vector<float>& row = mid[b];
           row.assign(kDim, 0.0f);
           for (size_t i = 0; i < kDim; ++i) {
             row[i] = std::sin(0.1f * float(b) + 0.01f * float(i));
           }
         },
         executors},
        {"reduce",
         [&](uint32_t b) {
           std::vector<float>& row = out[b];
           row.assign(kDim, 0.0f);
           float acc = 0.0f;
           for (size_t i = 0; i < kDim; ++i) {
             acc += mid[b][i];
             row[i] = acc;
           }
         },
         executors},
    };
    RunPipeline(stages, kBatches);
    return out;
  };
  const std::vector<std::vector<float>> ref = run_with(1);
  for (uint32_t k : {2u, 4u}) {
    const std::vector<std::vector<float>> got = run_with(k);
    for (uint32_t b = 0; b < kBatches; ++b) {
      ASSERT_EQ(ref[b].size(), got[b].size());
      EXPECT_EQ(0, std::memcmp(ref[b].data(), got[b].data(),
                               ref[b].size() * sizeof(float)))
          << "batch " << b << " diverges at " << k << " executors";
    }
  }
}

TEST(PipelineTest, ResolveStageExecutorsHonorsEnvDefault) {
  EXPECT_EQ(ResolveStageExecutors(3), 3u);  // explicit wins
  setenv("GAL_STAGE_EXECUTORS", "4", 1);
  EXPECT_EQ(ResolveStageExecutors(0), 4u);
  EXPECT_EQ(ResolveStageExecutors(2), 2u);
  setenv("GAL_STAGE_EXECUTORS", "garbage", 1);
  EXPECT_EQ(ResolveStageExecutors(0), 1u);
  unsetenv("GAL_STAGE_EXECUTORS");
  EXPECT_EQ(ResolveStageExecutors(0), 1u);
}

// --- cost model -----------------------------------------------------------------------

TEST(CostModelTest, DorylusValueShape) {
  const double cpu_epoch = 100.0;
  CostReport cpu = EvaluateDeployment(CloudDeployment::CpuServer(), cpu_epoch);
  CostReport gpu = EvaluateDeployment(CloudDeployment::GpuServer(), cpu_epoch);
  CostReport lambda =
      EvaluateDeployment(CloudDeployment::CpuPlusServerless(), cpu_epoch);
  EXPECT_NEAR(cpu.value, 1.0, 1e-9);
  // GPU is fastest...
  EXPECT_LT(gpu.epoch_seconds, lambda.epoch_seconds);
  // ...but serverless has the best value (the Dorylus claim).
  EXPECT_GT(lambda.value, gpu.value);
  EXPECT_GT(lambda.value, cpu.value);
}

// --- distributed GCN ---------------------------------------------------------------------

NodeClassificationDataset SmallDataset() {
  PlantedDatasetOptions opt;
  opt.num_vertices = 300;
  opt.num_classes = 3;
  opt.noise = 1.5;
  return MakePlantedDataset(opt);
}

TEST(DistGcnTest, BspMatchesAccuracyOfCentralized) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig config;
  config.epochs = 40;
  DistGcnReport report = TrainDistGcn(ds, config);
  EXPECT_GT(report.final_test_accuracy, 0.8);
  EXPECT_GT(report.comm_bytes, 0u);
  EXPECT_EQ(report.broadcasts_skipped, 0u);
}

TEST(DistGcnTest, ReportAttributesKernelClassTimings) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig config;
  config.epochs = 3;
  DistGcnReport report = TrainDistGcn(ds, config);
  ASSERT_EQ(report.kernel_timings.size(), 3u);
  EXPECT_EQ(report.kernel_timings[0].name, "gemm");
  EXPECT_EQ(report.kernel_timings[1].name, "spmm");
  EXPECT_EQ(report.kernel_timings[2].name, "elementwise");
  // A GCN epoch exercises all three kernel classes, so each span sink
  // must have accumulated real wall time.
  for (const StageTimingStat& st : report.kernel_timings) {
    EXPECT_GT(st.total_seconds, 0.0) << st.name;
    EXPECT_GE(st.max_seconds, st.p50_seconds) << st.name;
  }
}

TEST(DistGcnTest, HalosCoverExactlyCrossNeighbors) {
  Graph g = Rmat(7, 5, 3);
  VertexPartition parts = HashPartition(g, 4);
  auto halos = ComputeHalos(g, parts);
  for (uint32_t w = 0; w < 4; ++w) {
    for (VertexId u : halos[w]) {
      EXPECT_NE(parts.assignment[u], w);
    }
  }
  // Every cross edge's far endpoint is in the owner's halo.
  for (const Edge& e : g.CollectEdges()) {
    const uint32_t pw = parts.assignment[e.src];
    const uint32_t pu = parts.assignment[e.dst];
    if (pw == pu) continue;
    EXPECT_TRUE(std::binary_search(halos[pw].begin(), halos[pw].end(), e.dst));
    EXPECT_TRUE(std::binary_search(halos[pu].begin(), halos[pu].end(), e.src));
  }
}

TEST(DistGcnTest, BetterPartitionLessComm) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig hash;
  hash.epochs = 5;
  hash.partition = PartitionScheme::kHash;
  DistGcnConfig ml = hash;
  ml.partition = PartitionScheme::kMultilevel;
  DistGcnReport rh = TrainDistGcn(ds, hash);
  DistGcnReport rm = TrainDistGcn(ds, ml);
  EXPECT_LT(rm.edge_cut, rh.edge_cut);
  EXPECT_LT(rm.comm_bytes, rh.comm_bytes);
}

TEST(DistGcnTest, BoundedStalenessCutsCommKeepsAccuracy) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig bsp;
  bsp.epochs = 40;
  DistGcnConfig stale = bsp;
  stale.sync = SyncMode::kBoundedStaleness;
  stale.staleness_bound = 4;
  DistGcnReport rb = TrainDistGcn(ds, bsp);
  DistGcnReport rs = TrainDistGcn(ds, stale);
  EXPECT_LT(rs.comm_bytes, rb.comm_bytes);
  EXPECT_GT(rs.broadcasts_skipped, 0u);
  EXPECT_GT(rs.final_test_accuracy, rb.final_test_accuracy - 0.1);
}

TEST(DistGcnTest, SancusSkipsBroadcastsAdaptively) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig config;
  config.epochs = 40;
  config.sync = SyncMode::kSancus;
  config.sancus_drift_threshold = 0.1;
  DistGcnReport report = TrainDistGcn(ds, config);
  EXPECT_GT(report.broadcasts_skipped, 0u);
  EXPECT_GT(report.final_test_accuracy, 0.7);
}

TEST(DistGcnTest, QuantizationCutsBytesAtSmallAccuracyCost) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig fp32;
  fp32.epochs = 40;
  DistGcnConfig int8 = fp32;
  int8.quantization = Quantization::kInt8;
  DistGcnReport r32 = TrainDistGcn(ds, fp32);
  DistGcnReport r8 = TrainDistGcn(ds, int8);
  // int8 payload is 1/4 of fp32 plus 8B/row scale metadata, so with
  // 16-wide activations the wire ratio lands near 37%.
  EXPECT_LT(r8.comm_bytes, r32.comm_bytes * 2 / 5);
  EXPECT_GT(r8.final_test_accuracy, r32.final_test_accuracy - 0.08);
}

TEST(DistGcnTest, P3SplitChangesLayer0Traffic) {
  PlantedDatasetOptions opt;
  opt.num_vertices = 300;
  opt.feature_dim = 128;  // fat features: P3's sweet spot
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  DistGcnConfig base;
  base.epochs = 5;
  base.hidden_dim = 8;
  DistGcnConfig p3 = base;
  p3.p3_feature_split = true;
  DistGcnReport rb = TrainDistGcn(ds, base);
  DistGcnReport rp = TrainDistGcn(ds, p3);
  // Identical math => same learning curve.
  EXPECT_NEAR(rb.epoch_loss.back(), rp.epoch_loss.back(), 1e-5);
  // Fat raw features dominate the halo traffic; P3 avoids shipping them.
  EXPECT_LT(rp.comm_bytes, rb.comm_bytes);
}

TEST(DistGcnTest, SingleWorkerHasZeroCommunication) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig config;
  config.num_workers = 1;
  config.epochs = 5;
  DistGcnReport r = TrainDistGcn(ds, config);
  EXPECT_EQ(r.comm_bytes, 0u);
  EXPECT_EQ(r.edge_cut, 0u);
  EXPECT_EQ(r.halo_rows_exchanged, 0u);
}

TEST(DistGcnTest, WorkerCountDoesNotChangeTheMathUnderBsp) {
  // BSP with fp32 exchanges fresh values every epoch: the computation
  // is exactly the centralized one regardless of the worker count.
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig one;
  one.num_workers = 1;
  one.epochs = 8;
  DistGcnConfig four = one;
  four.num_workers = 4;
  DistGcnReport a = TrainDistGcn(ds, one);
  DistGcnReport b = TrainDistGcn(ds, four);
  for (size_t e = 0; e < a.epoch_loss.size(); ++e) {
    EXPECT_NEAR(a.epoch_loss[e], b.epoch_loss[e], 1e-6) << "epoch " << e;
  }
}

TEST(DistGcnTest, OverlapReducesSimulatedTime) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig serial;
  serial.epochs = 10;
  // simulated_epoch_seconds mixes *measured* compute with modeled comm,
  // and the two runs measure compute independently; throttle the wire so
  // the deterministic comm term dominates host-load jitter in compute.
  serial.network.bandwidth_bytes_per_sec = 1e6;
  DistGcnConfig overlap = serial;
  overlap.overlap_comm_compute = true;
  DistGcnReport rs = TrainDistGcn(ds, serial);
  DistGcnReport ro = TrainDistGcn(ds, overlap);
  EXPECT_LE(ro.simulated_epoch_seconds, rs.simulated_epoch_seconds);
}

TEST(DistGcnTest, ReportExposesTracesAndOverlapOccupancy) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig config;
  config.epochs = 6;
  config.overlap_comm_compute = true;
  DistGcnReport r = TrainDistGcn(ds, config);
  // Per-epoch traces back the modeled overlap and are re-modelable.
  ASSERT_EQ(r.epoch_compute_trace.size(), config.epochs);
  ASSERT_EQ(r.epoch_comm_bytes.size(), config.epochs);
  ASSERT_EQ(r.epoch_comm_messages.size(), config.epochs);
  // {compute, comm} occupancy of the modeled overlap pipeline.
  ASSERT_EQ(r.overlap_stage_occupancy.size(), 2u);
  for (double occ : r.overlap_stage_occupancy) {
    EXPECT_GT(occ, 0.0);
    EXPECT_LE(occ, 1.0 + 1e-12);
  }
  // Re-modeling from the exposed traces reproduces the report's number.
  std::vector<ModeledStageSpec> stages = {
      {"compute", r.epoch_compute_trace, 1},
      ModeledNetworkStage("comm", config.network, r.epoch_comm_bytes,
                          r.epoch_comm_messages, config.comm_channels),
  };
  ModeledPipelineResult m = ModelPipelineSchedule(stages);
  EXPECT_NEAR(m.pipelined_seconds, r.modeled_overlap_epoch_seconds, 1e-9);
}

TEST(DistGcnTest, CommChannelsRelieveCommBoundOverlap) {
  NodeClassificationDataset ds = SmallDataset();
  DistGcnConfig slow;
  slow.epochs = 6;
  slow.overlap_comm_compute = true;
  // Throttle the wire so the modeled overlap is comm-bound.
  slow.network.bandwidth_bytes_per_sec = 1e6;
  DistGcnConfig twochan = slow;
  twochan.comm_channels = 2;
  DistGcnReport a = TrainDistGcn(ds, slow);
  DistGcnReport b = TrainDistGcn(ds, twochan);
  EXPECT_EQ(a.overlap_bottleneck_stage, 1u);  // comm
  // The math is unchanged — only the modeled schedule differs.
  EXPECT_NEAR(a.final_test_accuracy, b.final_test_accuracy, 1e-12);
  EXPECT_LT(b.modeled_overlap_epoch_seconds,
            a.modeled_overlap_epoch_seconds);
}

}  // namespace
}  // namespace gal
