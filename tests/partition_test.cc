#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "tlav/engine.h"

namespace gal {
namespace {

void ExpectValid(const Graph& g, const VertexPartition& p,
                 uint32_t num_parts) {
  ASSERT_EQ(p.num_parts, num_parts);
  ASSERT_EQ(p.assignment.size(), g.NumVertices());
  for (uint32_t a : p.assignment) EXPECT_LT(a, num_parts);
}

TEST(PartitionTest, HashBalancedAndValid) {
  Graph g = Rmat(10, 8, 1);
  VertexPartition p = HashPartition(g, 4);
  ExpectValid(g, p, 4);
  PartitionQuality q = EvaluatePartition(g, p);
  EXPECT_LT(q.balance, 1.15);
}

TEST(PartitionTest, RangePartitionContiguous) {
  Graph g = Path(100);
  VertexPartition p = RangePartition(g, 4);
  ExpectValid(g, p, 4);
  // Contiguity: assignment is non-decreasing over vertex ids.
  EXPECT_TRUE(std::is_sorted(p.assignment.begin(), p.assignment.end()));
  // A path split into 4 ranges cuts exactly 3 edges.
  EXPECT_EQ(EvaluatePartition(g, p).edge_cut, 3u);
}

TEST(PartitionTest, LdgBeatsHashOnCommunityGraph) {
  Graph g = PlantedPartition(400, 4, 0.15, 0.005, 17);
  PartitionQuality hash = EvaluatePartition(g, HashPartition(g, 4));
  PartitionQuality ldg = EvaluatePartition(g, LdgPartition(g, 4, 3));
  EXPECT_LT(ldg.edge_cut, hash.edge_cut);
  EXPECT_LT(ldg.balance, 1.3);
}

TEST(PartitionTest, MultilevelBeatsHashOnCommunityGraph) {
  Graph g = PlantedPartition(600, 6, 0.12, 0.004, 23);
  PartitionQuality hash = EvaluatePartition(g, HashPartition(g, 6));
  PartitionQuality ml = EvaluatePartition(g, MultilevelPartition(g, 6));
  EXPECT_LT(ml.edge_cut, hash.edge_cut / 2);
  EXPECT_LT(ml.balance, 1.25);
}

TEST(PartitionTest, MultilevelGridLowCut) {
  Graph g = Grid(40, 40);
  PartitionQuality ml = EvaluatePartition(g, MultilevelPartition(g, 4));
  // A 40x40 grid has 3120 edges; a good 4-way cut is O(perimeter).
  EXPECT_LT(ml.edge_cut, g.NumEdges() / 8);
}

TEST(PartitionTest, SinglePartIsTrivial) {
  Graph g = Rmat(8, 4, 9);
  for (const VertexPartition& p :
       {HashPartition(g, 1), LdgPartition(g, 1), MultilevelPartition(g, 1)}) {
    PartitionQuality q = EvaluatePartition(g, p);
    EXPECT_EQ(q.edge_cut, 0u);
  }
}

TEST(PartitionTest, BfsVoronoiCoversAllVerticesEvenDisconnected) {
  // Two disconnected cliques plus isolated vertices.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) edges.push_back({u, v});
  for (VertexId u = 5; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) edges.push_back({u, v});
  Graph g = std::move(Graph::FromEdges(12, edges, {}).value());
  VertexPartition p = BfsVoronoiPartition(g, 2, {0, 5});
  ExpectValid(g, p, 2);
}

TEST(PartitionTest, BfsVoronoiKeepsSeedNeighborhoodsLocal) {
  Graph g = PlantedPartition(400, 8, 0.2, 0.002, 31);
  // One seed per community (communities are v % 8).
  std::vector<VertexId> seeds;
  for (VertexId s = 0; s < 8; ++s) seeds.push_back(s);
  VertexPartition p = BfsVoronoiPartition(g, 4, seeds);
  ExpectValid(g, p, 4);
  // Each seed's 1-hop neighborhood should be mostly co-located with it.
  uint64_t local = 0;
  uint64_t total = 0;
  for (VertexId s : seeds) {
    g.ForEachOutNeighbor(s, [&](VertexId u) {
      ++total;
      local += (p.PartOf(u) == p.PartOf(s));
    });
  }
  EXPECT_GT(static_cast<double>(local) / total, 0.6);
}

TEST(PartitionTest, BfsVoronoiBalancesSeeds) {
  Graph g = Rmat(9, 8, 3);
  std::vector<VertexId> seeds;
  for (VertexId s = 0; s < 64; ++s) seeds.push_back(s * 7 % g.NumVertices());
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  VertexPartition p = BfsVoronoiPartition(g, 4, seeds);
  std::vector<uint32_t> seeds_per_part(4, 0);
  for (VertexId s : seeds) ++seeds_per_part[p.PartOf(s)];
  const uint32_t max_seeds =
      *std::max_element(seeds_per_part.begin(), seeds_per_part.end());
  const uint32_t min_seeds =
      *std::min_element(seeds_per_part.begin(), seeds_per_part.end());
  EXPECT_LE(max_seeds - min_seeds, seeds.size() / 2);
}

TEST(PartitionTest, GreedyVertexCutAssignsEveryEdge) {
  Graph g = Rmat(9, 8, 5);
  EdgePartition ep = GreedyVertexCut(g, 4);
  EXPECT_EQ(ep.edge_assignment.size(), g.NumEdges());
  for (uint32_t a : ep.edge_assignment) EXPECT_LT(a, 4u);
}

TEST(PartitionTest, GreedyVertexCutReplicationBounded) {
  Graph g = Rmat(10, 8, 7);
  EdgePartition ep = GreedyVertexCut(g, 4);
  EXPECT_GE(ep.replication_factor, 1.0);
  EXPECT_LE(ep.replication_factor, 4.0);
  // Greedy should do far better than the worst case on most vertices.
  EXPECT_LT(ep.replication_factor, 2.5);
}

TEST(PartitionTest, GreedyVertexCutSinglePartHasNoReplication) {
  Graph g = Rmat(8, 4, 11);
  EdgePartition ep = GreedyVertexCut(g, 1);
  EXPECT_DOUBLE_EQ(ep.replication_factor, 1.0);
}

TEST(PartitionTest, FeatureDimensionPartitionCoversAllColumns) {
  auto ranges = FeatureDimensionPartition(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<uint32_t, uint32_t>{0, 4}));
  EXPECT_EQ(ranges[1], (std::pair<uint32_t, uint32_t>{4, 7}));
  EXPECT_EQ(ranges[2], (std::pair<uint32_t, uint32_t>{7, 10}));
}

TEST(PartitionTest, FeatureDimensionPartitionMorePartsThanDims) {
  auto ranges = FeatureDimensionPartition(2, 4);
  ASSERT_EQ(ranges.size(), 4u);
  uint32_t total = 0;
  for (auto [b, e] : ranges) total += e - b;
  EXPECT_EQ(total, 2u);
}

// --- traffic skew through the cluster ledger --------------------------------
// One superstep of everyone-tells-their-neighbors, run under different
// partitioning strategies on a shared-nothing 4-worker runtime: the
// TrafficLedger's per-worker views expose both the volume a strategy
// puts on the wire and how unevenly it loads the workers.

struct PingProgram : public VertexProgram<VertexId, VertexId> {
  void Compute(VertexHandle<VertexId, VertexId>& v,
               std::span<const VertexId>) override {
    if (v.superstep() == 0) v.SendToAllNeighbors(v.id());
    v.VoteToHalt();
  }
};

// Returns {cross wire bytes, max/mean sent-byte imbalance} of the job.
std::pair<uint64_t, double> PingTraffic(const Graph& g,
                                        VertexPartition parts) {
  ClusterRuntime runtime(ClusterOptions{parts.num_parts, {}});
  TlavConfig config;
  config.cluster = &runtime;
  TlavEngine<VertexId, VertexId> engine(&g, config, std::move(parts));
  PingProgram program;
  const TlavStats stats = engine.Run(program);
  // Per-worker sent bytes decompose the cross total exactly.
  uint64_t sent = 0;
  for (uint32_t w = 0; w < runtime.num_workers(); ++w) {
    sent += runtime.ledger().Worker(w).sent_bytes;
  }
  EXPECT_EQ(sent, runtime.ledger().TotalBytes());
  EXPECT_EQ(stats.cross_worker_bytes, runtime.ledger().TotalBytes());
  return {runtime.ledger().TotalBytes(), runtime.ledger().SentBytesImbalance()};
}

TEST(PartitionTest, LedgerExposesTrafficSkewAcrossStrategies) {
  const Graph g = PlantedPartition(400, 4, 0.15, 0.005, 17);
  const auto [hash_bytes, hash_skew] = PingTraffic(g, HashPartition(g, 4));
  const auto [ml_bytes, ml_skew] =
      PingTraffic(g, MultilevelPartition(g, 4));
  const std::vector<VertexId> seeds = {0, 1, 2, 3};
  const auto [bfs_bytes, bfs_skew] =
      PingTraffic(g, BfsVoronoiPartition(g, 4, seeds));

  ASSERT_GT(hash_bytes, 0u);
  ASSERT_GT(ml_bytes, 0u);
  ASSERT_GT(bfs_bytes, 0u);
  // max/mean sent bytes is >= 1 by construction once traffic flows.
  EXPECT_GE(hash_skew, 1.0);
  EXPECT_GE(ml_skew, 1.0);
  EXPECT_GE(bfs_skew, 1.0);
  // The METIS-like partition keeps communities intact, so the identical
  // job puts far less on the wire than the hash baseline.
  EXPECT_LT(ml_bytes, hash_bytes);
}

// Property sweep: every strategy yields a valid partition on varied
// graphs and part counts.
class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(PartitionPropertyTest, AllStrategiesValid) {
  const auto [graph_kind, parts] = GetParam();
  Graph g;
  switch (graph_kind) {
    case 0: g = Rmat(8, 6, 13); break;
    case 1: g = ErdosRenyi(300, 0.02, 13); break;
    case 2: g = Grid(15, 20); break;
    default: g = BarabasiAlbert(300, 3, 13); break;
  }
  std::vector<VertexId> seeds;
  for (VertexId s = 0; s < std::min<VertexId>(16, g.NumVertices()); ++s) {
    seeds.push_back(s);
  }
  for (const VertexPartition& p :
       {HashPartition(g, parts), RangePartition(g, parts),
        LdgPartition(g, parts), MultilevelPartition(g, parts),
        BfsVoronoiPartition(g, parts, seeds)}) {
    ASSERT_EQ(p.assignment.size(), g.NumVertices());
    std::set<uint32_t> used;
    for (uint32_t a : p.assignment) {
      ASSERT_LT(a, parts);
      used.insert(a);
    }
    // All parts used when there are enough vertices.
    if (g.NumVertices() >= parts * 8) {
      EXPECT_EQ(used.size(), parts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(2u, 3u, 8u)));

}  // namespace
}  // namespace gal
