#include <cmath>

#include <gtest/gtest.h>

#include "gnn/dataset.h"
#include "graph/generators.h"
#include "nn/gat.h"

namespace gal {
namespace {

TEST(GatTest, AttentionRowsSumToOne) {
  Graph g = ErdosRenyi(20, 0.3, 3);
  GcnConfig config;
  config.dims = {6, 5, 3};
  GatModel model(&g, config);
  Rng rng(1);
  Matrix x = Matrix::Xavier(20, 6, rng);
  model.Forward(x);
  for (uint32_t l = 0; l < 2; ++l) {
    for (VertexId v = 0; v < 20; ++v) {
      const auto& att = model.attention(l)[v];
      ASSERT_EQ(att.size(), g.Degree(v) + 1u);
      float sum = 0;
      for (float a : att) {
        EXPECT_GE(a, 0.0f);
        sum += a;
      }
      EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
  }
}

TEST(GatTest, GradientsMatchFiniteDifferences) {
  Graph g = ErdosRenyi(10, 0.35, 7);
  GcnConfig config;
  config.dims = {4, 5, 3};
  config.seed = 9;
  GatModel model(&g, config);
  Rng rng(5);
  Matrix x = Matrix::Xavier(10, 4, rng);
  std::vector<int32_t> labels(10);
  for (int i = 0; i < 10; ++i) labels[i] = i % 3;
  std::vector<uint8_t> mask(10, 1);

  Matrix logits = model.Forward(x);
  SoftmaxXentResult loss = SoftmaxCrossEntropy(logits, labels, mask);
  std::vector<Matrix> grads = model.Backward(loss.grad);
  ASSERT_EQ(grads.size(), 6u);  // (W, a_src, a_dst) x 2 layers

  auto loss_at = [&]() {
    Matrix l = model.Forward(x);
    return SoftmaxCrossEntropy(l, labels, mask).loss;
  };
  const float eps = 1e-3f;
  std::vector<Matrix*> params = model.Parameters();
  for (size_t p = 0; p < params.size(); ++p) {
    Matrix& w = *params[p];
    for (uint32_t probe = 0; probe < 5; ++probe) {
      const uint32_t i = (probe * 3) % w.rows();
      const uint32_t j = (probe * 7 + 1) % w.cols();
      const float orig = w.at(i, j);
      w.at(i, j) = orig + eps;
      const double lp = loss_at();
      w.at(i, j) = orig - eps;
      const double lm = loss_at();
      w.at(i, j) = orig;
      EXPECT_NEAR((lp - lm) / (2 * eps), grads[p].at(i, j), 3e-3)
          << "param " << p << " (" << i << "," << j << ")";
    }
  }
}

TEST(GatTest, LearnsPlantedCommunities) {
  PlantedDatasetOptions opt;
  opt.num_vertices = 300;
  opt.num_classes = 3;
  opt.noise = 1.5;
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  GcnConfig config;
  config.dims = {ds.features.cols(), 12, ds.num_classes};
  GatModel model(&ds.graph, config);
  TrainConfig train;
  train.epochs = 120;
  train.lr = 0.01f;
  train.weight_decay = 0.002f;
  TrainReport report = TrainGatClassifier(
      model, ds.features, ds.labels, ds.train_mask, ds.test_mask, train);
  EXPECT_GT(report.final_test_accuracy, 0.8);
  EXPECT_LT(report.epochs.back().loss, report.epochs.front().loss * 0.5);
}

TEST(GatTest, AttentionDownweightsNoiseNeighbors) {
  // Community graph with a few cross-community ("noise") edges: after
  // training, attention on intra-community neighbors should exceed
  // attention on cross-community ones on average — the interpretability
  // property GAT is known for.
  PlantedDatasetOptions opt;
  opt.num_vertices = 300;
  opt.num_classes = 3;
  opt.p_in = 0.06;
  opt.p_out = 0.01;
  opt.noise = 1.0;
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  GcnConfig config;
  config.dims = {ds.features.cols(), 12, ds.num_classes};
  GatModel model(&ds.graph, config);
  TrainConfig train;
  train.epochs = 60;
  train.lr = 0.01f;
  TrainGatClassifier(model, ds.features, ds.labels, ds.train_mask,
                     ds.test_mask, train);
  model.Forward(ds.features);

  double intra = 0, inter = 0;
  uint64_t intra_n = 0, inter_n = 0;
  std::vector<VertexId> row;
  for (VertexId v = 0; v < ds.graph.NumVertices(); ++v) {
    const auto nbrs = ds.graph.NeighborsInto(v, row);
    const auto& att = model.attention(0)[v];
    for (size_t j = 0; j < nbrs.size(); ++j) {
      if (ds.labels[v] == ds.labels[nbrs[j]]) {
        intra += att[j + 1];
        ++intra_n;
      } else {
        inter += att[j + 1];
        ++inter_n;
      }
    }
  }
  ASSERT_GT(inter_n, 0u);
  EXPECT_GT(intra / intra_n, inter / inter_n);
}

TEST(GatTest, DeterministicForSeed) {
  Graph g = ErdosRenyi(30, 0.2, 3);
  GcnConfig config;
  config.dims = {4, 6, 2};
  config.seed = 21;
  Rng rng(2);
  Matrix x = Matrix::Xavier(30, 4, rng);
  GatModel a(&g, config);
  GatModel b(&g, config);
  Matrix la = a.Forward(x);
  Matrix lb = b.Forward(x);
  EXPECT_EQ(la.data(), lb.data());
}

}  // namespace
}  // namespace gal
