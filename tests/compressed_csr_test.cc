// Units for the delta-varint adjacency codec (graph/compressed_csr.h)
// and for the Graph surface that rides on it: streaming cursors, decode
// scratch, HasEdge probes, the GAL_GRAPH_COMPRESSION env override, and
// the original-id contract of InducedSubgraph under reordering.

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/compressed_csr.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace gal {
namespace {

/// Restores GAL_GRAPH_COMPRESSION on exit so later tests see the
/// environment they started with.
struct EnvGuard {
  EnvGuard() {
    const char* v = std::getenv("GAL_GRAPH_COMPRESSION");
    had = v != nullptr;
    if (had) saved = v;
  }
  ~EnvGuard() {
    if (had) {
      setenv("GAL_GRAPH_COMPRESSION", saved.c_str(), 1);
    } else {
      unsetenv("GAL_GRAPH_COMPRESSION");
    }
  }
  bool had = false;
  std::string saved;
};

std::vector<uint32_t> DecodeRow(const CompressedCsr& c,
                                const std::vector<uint64_t>& offsets,
                                VertexId v) {
  const uint32_t degree = static_cast<uint32_t>(offsets[v + 1] - offsets[v]);
  std::vector<uint32_t> out(degree);
  DecodeAdjacencyBlock(c.bytes.data() + c.row_offsets[v], degree,
                       c.delta_bias, out.data());
  return out;
}

Graph Build(VertexId n, std::vector<Edge> edges, GraphOptions options) {
  Result<Graph> g = Graph::FromEdges(n, std::move(edges), options);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g.value());
}

GraphOptions Compressed() {
  GraphOptions options;
  options.compression = CompressionMode::kDeltaVarint;
  return options;
}

// --- varint primitives -------------------------------------------------------

TEST(CompressedCsrTest, VarintRoundTripsBoundaryValues) {
  for (uint32_t value :
       {0u, 1u, 127u, 128u, 16383u, 16384u, 2097151u, 268435455u,
        268435456u, std::numeric_limits<uint32_t>::max()}) {
    std::vector<uint8_t> bytes;
    AppendVarint(bytes, value);
    EXPECT_LE(bytes.size(), 5u) << value;
    const uint8_t* p = bytes.data();
    EXPECT_EQ(ReadVarint(p), value);
    EXPECT_EQ(p, bytes.data() + bytes.size()) << "cursor must consume all";
  }
}

TEST(CompressedCsrTest, EncodeHandlesEmptyAndSingleRows) {
  // Vertex 0: empty. Vertex 1: one neighbor. Vertex 2: empty.
  const std::vector<uint64_t> offsets = {0, 0, 1, 1};
  const std::vector<uint32_t> targets = {7};
  const CompressedCsr c = EncodeDeltaVarint(offsets, targets, true);
  EXPECT_EQ(c.delta_bias, 1u);
  EXPECT_TRUE(DecodeRow(c, offsets, 0).empty());
  EXPECT_EQ(DecodeRow(c, offsets, 1), std::vector<uint32_t>{7});
  EXPECT_TRUE(DecodeRow(c, offsets, 2).empty());
}

TEST(CompressedCsrTest, EncodeHandlesMaxDeltaRow) {
  // One row spanning the full id range: gaps force 5-byte varints.
  const uint32_t lo = 0;
  const uint32_t hi = std::numeric_limits<uint32_t>::max();
  const std::vector<uint64_t> offsets = {0, 2};
  const std::vector<uint32_t> targets = {lo, hi};
  const CompressedCsr c = EncodeDeltaVarint(offsets, targets, true);
  const std::vector<uint32_t> row = DecodeRow(c, offsets, 0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], lo);
  EXPECT_EQ(row[1], hi);
}

TEST(CompressedCsrTest, EncodeWithoutDedupKeepsEqualNeighbors) {
  // bias 0: repeated targets (parallel edges kept) must survive.
  const std::vector<uint64_t> offsets = {0, 3};
  const std::vector<uint32_t> targets = {4, 4, 9};
  const CompressedCsr c = EncodeDeltaVarint(offsets, targets, false);
  EXPECT_EQ(c.delta_bias, 0u);
  EXPECT_EQ(DecodeRow(c, offsets, 0), (std::vector<uint32_t>{4, 4, 9}));
}

TEST(CompressedCsrTest, RandomGraphsRoundTripExactly) {
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(400));
    std::vector<uint64_t> offsets = {0};
    std::vector<uint32_t> targets;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t degree = static_cast<uint32_t>(rng.Uniform(30));
      std::vector<uint32_t> row;
      for (uint32_t i = 0; i < degree; ++i) {
        row.push_back(static_cast<uint32_t>(rng.Uniform(n)));
      }
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      targets.insert(targets.end(), row.begin(), row.end());
      offsets.push_back(targets.size());
    }
    const CompressedCsr c = EncodeDeltaVarint(offsets, targets, true);
    std::vector<uint32_t> decoded;
    for (uint32_t v = 0; v < n; ++v) {
      const std::vector<uint32_t> row = DecodeRow(c, offsets, v);
      decoded.insert(decoded.end(), row.begin(), row.end());
    }
    EXPECT_EQ(decoded, targets) << "trial " << trial;
  }
}

// --- Graph-level access paths ------------------------------------------------

TEST(CompressedCsrTest, CursorForEachAndScratchAgreeOnHubStar) {
  const Graph star = Build(64, Star(64).CollectEdges(), Compressed());
  ASSERT_TRUE(star.IsCompressed());
  EXPECT_EQ(star.compression_mode(), CompressionMode::kDeltaVarint);
  EXPECT_EQ(star.Degree(0), 63u);

  // All three access forms agree on the hub row and a leaf row.
  std::vector<VertexId> scratch;
  for (VertexId v : {VertexId{0}, VertexId{17}}) {
    std::vector<VertexId> from_foreach;
    star.ForEachOutNeighbor(
        v, [&](VertexId u) { from_foreach.push_back(u); });
    std::vector<VertexId> from_cursor;
    for (Graph::NeighborCursor cur = star.OutNeighbors(v); cur.Valid();
         cur.Next()) {
      from_cursor.push_back(cur.Get());
    }
    const auto from_scratch = star.NeighborsInto(v, scratch);
    EXPECT_EQ(from_foreach, from_cursor);
    ASSERT_EQ(from_foreach.size(), from_scratch.size());
    EXPECT_TRUE(std::equal(from_foreach.begin(), from_foreach.end(),
                           from_scratch.begin()));
    EXPECT_TRUE(std::is_sorted(from_foreach.begin(), from_foreach.end()));
  }
  EXPECT_TRUE(star.HasEdge(0, 63));
  EXPECT_TRUE(star.HasEdge(29, 0));
  EXPECT_FALSE(star.HasEdge(29, 30));
}

TEST(CompressedCsrTest, CompressedMatchesRawOnRandomGraph) {
  // This test contrasts the two layouts, so it must control the knob
  // even when the suite runs under GAL_GRAPH_COMPRESSION=1.
  EnvGuard guard;
  unsetenv("GAL_GRAPH_COMPRESSION");
  const Graph raw = Rmat(10, 8, 11);
  const Graph packed = Build(raw.NumVertices(), raw.CollectEdges(),
                             Compressed());
  ASSERT_TRUE(packed.IsCompressed());
  EXPECT_EQ(packed.NumEdges(), raw.NumEdges());
  std::vector<VertexId> scratch;
  for (VertexId v = 0; v < raw.NumVertices(); ++v) {
    const auto want = raw.Neighbors(v);
    const auto got = packed.NeighborsInto(v, scratch);
    ASSERT_EQ(want.size(), got.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()))
        << "vertex " << v;
  }
  // The varint stream must be strictly smaller than 4 bytes/entry here.
  EXPECT_LT(packed.AdjacencyBytes(), raw.AdjacencyBytes());
}

TEST(CompressedCsrTest, ViewsInheritCompression) {
  GraphOptions options = Compressed();
  options.directed = true;
  const Graph g = Build(6, {{0, 1}, {0, 2}, {3, 0}, {4, 5}}, options);
  ASSERT_TRUE(g.IsCompressed());
  const Graph rev = g.Reversed();
  EXPECT_TRUE(rev.IsCompressed());
  EXPECT_TRUE(rev.HasEdge(1, 0));
  EXPECT_TRUE(rev.HasEdge(0, 3));
  const Graph undirected = g.UndirectedView();
  EXPECT_TRUE(undirected.IsCompressed());
  EXPECT_TRUE(undirected.HasEdge(0, 3));
  EXPECT_TRUE(undirected.HasEdge(3, 0));
}

TEST(CompressedCsrTest, EnvOverrideForcesAndDisablesCompression) {
  EnvGuard guard;
  setenv("GAL_GRAPH_COMPRESSION", "1", 1);
  const Graph forced = Build(5, {{0, 1}, {2, 3}}, GraphOptions{});
  EXPECT_TRUE(forced.IsCompressed());

  setenv("GAL_GRAPH_COMPRESSION", "0", 1);
  const Graph disabled = Build(5, {{0, 1}, {2, 3}}, Compressed());
  EXPECT_FALSE(disabled.IsCompressed());

  setenv("GAL_GRAPH_COMPRESSION", "none", 1);
  const Graph named_off = Build(5, {{0, 1}, {2, 3}}, Compressed());
  EXPECT_FALSE(named_off.IsCompressed());

  unsetenv("GAL_GRAPH_COMPRESSION");
  const Graph unforced = Build(5, {{0, 1}, {2, 3}}, Compressed());
  EXPECT_TRUE(unforced.IsCompressed());
}

// --- InducedSubgraph contract under reordering -------------------------------

TEST(CompressedCsrTest, InducedSubgraphTakesOriginalIdsOnReorderedParent) {
  // Regression: InducedSubgraph used to read its inputs as internal
  // layout ids on reordered parents (and indexed labels with them),
  // silently selecting the wrong vertices. The contract is original ids
  // in, fresh unreordered id space out.
  Graph plain = WithRandomLabels(BarabasiAlbert(120, 3, 29), 5, 13);
  GraphOptions options;
  options.reorder = ReorderMode::kHubCluster;
  options.compression = CompressionMode::kDeltaVarint;
  Graph reordered = Build(plain.NumVertices(), plain.CollectEdges(), options);
  ASSERT_TRUE(reordered.SetLabels(plain.labels()).ok());
  ASSERT_TRUE(reordered.IsReordered());

  const std::vector<VertexId> vertices = {3, 17, 40, 41, 90, 119};
  Result<Graph> want = plain.InducedSubgraph(vertices);
  Result<Graph> got = reordered.InducedSubgraph(vertices);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());

  EXPECT_FALSE(got->IsReordered());
  EXPECT_TRUE(got->IsCompressed()) << "compression is inherited";
  EXPECT_EQ(got->NumVertices(), vertices.size());
  EXPECT_EQ(got->NumEdges(), want->NumEdges());
  std::vector<Edge> want_edges = want->CollectEdges();
  std::vector<Edge> got_edges = got->CollectEdges();
  EXPECT_EQ(got_edges, want_edges);
  // Labels follow the selected original vertices, in selection order.
  for (uint32_t i = 0; i < vertices.size(); ++i) {
    EXPECT_EQ(got->LabelOf(i), plain.LabelOf(vertices[i])) << "slot " << i;
  }
}

}  // namespace
}  // namespace gal
