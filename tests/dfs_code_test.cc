#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fsm/canonical.h"
#include "fsm/dfs_code.h"
#include "graph/generators.h"
#include "match/pattern.h"

namespace gal {
namespace {

Graph Labeled(Graph g, std::vector<Label> labels) {
  GAL_CHECK_OK(g.SetLabels(std::move(labels)));
  return g;
}

/// Relabels vertices of a pattern by a random permutation.
Graph Permuted(const Graph& g, Rng& rng) {
  const VertexId n = g.NumVertices();
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (VertexId i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  std::vector<Edge> edges;
  for (const Edge& e : g.CollectEdges()) {
    edges.push_back({perm[e.src], perm[e.dst]});
  }
  Graph out = std::move(Graph::FromEdges(n, std::move(edges), {}).value());
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[perm[v]] = g.LabelOf(v);
  GAL_CHECK_OK(out.SetLabels(std::move(labels)));
  return out;
}

TEST(DfsCodeTest, SingleEdge) {
  Graph e = Labeled(std::move(Graph::FromEdges(2, {{0, 1}}, {}).value()),
                    {3, 1});
  std::vector<DfsEdge> code = MinDfsCode(e);
  ASSERT_EQ(code.size(), 1u);
  EXPECT_EQ(code[0].from, 0u);
  EXPECT_EQ(code[0].to, 1u);
  // Minimal orientation starts at the smaller label.
  EXPECT_EQ(code[0].from_label, 1u);
  EXPECT_EQ(code[0].to_label, 3u);
}

TEST(DfsCodeTest, TriangleCodeShape) {
  Graph tri = Labeled(TrianglePattern(), {0, 0, 0});
  std::vector<DfsEdge> code = MinDfsCode(tri);
  ASSERT_EQ(code.size(), 3u);
  // Canonical triangle: (0,1)(1,2)(2,0) — two forward, one backward.
  EXPECT_EQ(code[0].from, 0u);
  EXPECT_EQ(code[0].to, 1u);
  EXPECT_EQ(code[1].from, 1u);
  EXPECT_EQ(code[1].to, 2u);
  EXPECT_EQ(code[2].from, 2u);
  EXPECT_EQ(code[2].to, 0u);
}

TEST(DfsCodeTest, InvariantUnderVertexPermutation) {
  Rng rng(7);
  for (const Graph& base :
       {TrianglePattern(), CyclePattern(5), DiamondPattern(),
        TailedTrianglePattern(), StarPattern(3), PathPattern(5)}) {
    Graph g = Labeled(base, std::vector<Label>(base.NumVertices(), 0));
    const std::string reference = DfsCodeString(MinDfsCode(g));
    for (int trial = 0; trial < 5; ++trial) {
      Graph p = Permuted(g, rng);
      EXPECT_EQ(DfsCodeString(MinDfsCode(p)), reference);
    }
  }
}

TEST(DfsCodeTest, AgreesWithPermutationCanonicalForm) {
  // The decisive property: two patterns have equal min DFS codes iff
  // they have equal permutation-canonical codes. Checked over many
  // random small labeled patterns — two independently derived
  // canonical forms validating each other.
  Rng rng(13);
  std::vector<Graph> patterns;
  for (int i = 0; i < 40; ++i) {
    const VertexId n = 3 + static_cast<VertexId>(rng.Uniform(3));  // 3..5
    // Random connected pattern: spanning tree + extra edges.
    std::vector<Edge> edges;
    for (VertexId v = 1; v < n; ++v) {
      edges.push_back({static_cast<VertexId>(rng.Uniform(v)), v});
    }
    const uint32_t extra = static_cast<uint32_t>(rng.Uniform(3));
    for (uint32_t e = 0; e < extra; ++e) {
      VertexId a = static_cast<VertexId>(rng.Uniform(n));
      VertexId b = static_cast<VertexId>(rng.Uniform(n));
      if (a != b) edges.push_back({std::min(a, b), std::max(a, b)});
    }
    Graph g = std::move(Graph::FromEdges(n, std::move(edges), {}).value());
    std::vector<Label> labels(n);
    for (Label& l : labels) l = static_cast<Label>(rng.Uniform(2));
    GAL_CHECK_OK(g.SetLabels(std::move(labels)));
    patterns.push_back(std::move(g));
  }
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (size_t j = i + 1; j < patterns.size(); ++j) {
      if (patterns[i].NumVertices() != patterns[j].NumVertices()) continue;
      const bool iso_by_perm =
          CanonicalCode(patterns[i]) == CanonicalCode(patterns[j]);
      const bool iso_by_dfs = DfsCodeString(MinDfsCode(patterns[i])) ==
                              DfsCodeString(MinDfsCode(patterns[j]));
      EXPECT_EQ(iso_by_perm, iso_by_dfs)
          << "pattern pair (" << i << "," << j << ")";
    }
  }
}

TEST(DfsCodeTest, LabelsBreakTies) {
  Graph a = Labeled(PathPattern(3), {0, 1, 0});
  Graph b = Labeled(PathPattern(3), {1, 0, 1});
  EXPECT_NE(DfsCodeString(MinDfsCode(a)), DfsCodeString(MinDfsCode(b)));
  Graph c = Labeled(PathPattern(3), {0, 1, 0});
  EXPECT_EQ(DfsCodeString(MinDfsCode(a)), DfsCodeString(MinDfsCode(c)));
}

TEST(DfsCodeTest, EdgeOrderRelationSanity) {
  // Forward edges extending to later vertices are larger; backward from
  // deeper vertices are larger; deeper forward source wins ties.
  DfsEdge f01{0, 1, 0, 0};
  DfsEdge f12{1, 2, 0, 0};
  DfsEdge f02{0, 2, 0, 0};
  DfsEdge b20{2, 0, 0, 0};
  DfsEdge f23{2, 3, 0, 0};
  EXPECT_TRUE(DfsEdgeLess(f01, f12));
  EXPECT_TRUE(DfsEdgeLess(f12, f02));  // deeper source first at same target
  // Backward edges from the rightmost vertex precede its forward
  // extensions (gSpan: i1 < j2).
  EXPECT_TRUE(DfsEdgeLess(b20, f23));
  EXPECT_FALSE(DfsEdgeLess(f23, b20));
  EXPECT_FALSE(DfsEdgeLess(f02, f02));
}

}  // namespace
}  // namespace gal
