// The direction-optimizing frontier substrate: representation
// exactness, the Beamer switch heuristics, and bit-identical traversal
// results across directions, worker counts, and host thread counts.

#include <cstdlib>
#include <queue>

#include <gtest/gtest.h>

#include "frontier/direction.h"
#include "frontier/frontier.h"
#include "frontier/traversal.h"
#include "graph/generators.h"
#include "tlav/algos/traversal.h"
#include "tlav/algos/wcc.h"

namespace gal {
namespace {

// --- Representations ----------------------------------------------------------

TEST(FrontierBitmapTest, SetTestClearRoundTrip) {
  FrontierBitmap bits(200);
  EXPECT_TRUE(bits.Empty());
  for (size_t i = 0; i < 200; i += 7) bits.Set(i);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(bits.Test(i), i % 7 == 0) << i;
  }
  EXPECT_EQ(bits.Count(), (200 + 6) / 7);
  bits.Clear(0);
  EXPECT_FALSE(bits.Test(0));
  bits.Reset();
  EXPECT_TRUE(bits.Empty());
}

TEST(FrontierBitmapTest, AppendSetBitsMatchesTestExactly) {
  // Word boundaries (63, 64, 65) and a sparse tail.
  FrontierBitmap bits(300);
  const std::vector<VertexId> want = {0, 1, 63, 64, 65, 127, 128, 255, 299};
  for (VertexId v : want) bits.Set(v);
  std::vector<VertexId> got;
  bits.AppendSetBits(got);
  EXPECT_EQ(got, want);  // ascending, exact
  EXPECT_EQ(bits.Count(), want.size());
}

TEST(SlidingQueueTest, SlideExposesExactlyWhatWasPushed) {
  SlidingQueue<int> q;
  q.Push(3);
  q.Push(1);
  EXPECT_TRUE(q.WindowEmpty());
  EXPECT_EQ(q.PendingSize(), 2u);
  q.Slide();
  ASSERT_EQ(q.WindowSize(), 2u);
  EXPECT_EQ(q.At(0), 3);
  EXPECT_EQ(q.At(1), 1);
  // Push while consuming: lands in the next window, not the current one.
  for (size_t i = 0; i < q.WindowSize(); ++i) q.Push(q.At(i) * 10);
  EXPECT_EQ(q.WindowSize(), 2u);
  q.Slide();
  ASSERT_EQ(q.WindowSize(), 2u);
  EXPECT_EQ(q.At(0), 30);
  EXPECT_EQ(q.At(1), 10);
  q.Slide();
  EXPECT_TRUE(q.WindowEmpty());
}

TEST(VertexFrontierTest, SparseAndDenseViewsAgree) {
  Graph g = Star(50);
  VertexFrontier f(g.NumVertices());
  uint64_t edges = 0;
  for (VertexId v : {VertexId{0}, VertexId{7}, VertexId{49}}) {
    f.Add(v, g.Degree(v));
    edges += g.Degree(v);
  }
  EXPECT_EQ(f.VertexCount(), 3u);
  EXPECT_EQ(f.EdgeCount(), edges);  // scout count = sum of degrees
  const FrontierBitmap& bits = f.Bitmap();
  EXPECT_EQ(bits.Count(), 3u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(bits.Test(v), v == 0 || v == 7 || v == 49) << v;
  }
  // Dense -> sparse round trip is exact.
  VertexFrontier back(g.NumVertices());
  back.AssignFromBitmap(bits, g);
  EXPECT_EQ(std::vector<VertexId>(back.Vertices().begin(),
                                  back.Vertices().end()),
            (std::vector<VertexId>{0, 7, 49}));
  EXPECT_EQ(back.EdgeCount(), edges);
}

// --- Direction heuristics -----------------------------------------------------

TEST(DirectionControllerTest, SwitchesAtBeamerThresholdsWithHysteresis) {
  DirectionConfig config;  // alpha = 15, beta = 18
  DirectionController c(config, /*num_vertices=*/1800);
  // Sparse frontier: m_f well under m_u / alpha stays push.
  EXPECT_EQ(c.Next(/*m_f=*/10, /*n_f=*/5, /*m_u=*/15000), Direction::kPush);
  // m_f crosses m_u / alpha = 1000: flip to pull.
  EXPECT_EQ(c.Next(1001, 500, 15000), Direction::kPull);
  // Hysteresis: a pull step with the same m_f stays pull while the
  // frontier is at least |V| / beta = 100 vertices.
  EXPECT_EQ(c.Next(1001, 100, 15000), Direction::kPull);
  // Frontier thins below |V| / beta: back to push.
  EXPECT_EQ(c.Next(50, 99, 15000), Direction::kPush);
  EXPECT_EQ(c.switches(), 2u);
}

TEST(DirectionControllerTest, ForcedModesNeverSwitch) {
  DirectionController push(DirectionConfig{DirectionMode::kPushOnly, 15, 18},
                           100);
  EXPECT_EQ(push.Next(1000000, 100, 1), Direction::kPush);
  DirectionController pull(DirectionConfig{DirectionMode::kPullOnly, 15, 18},
                           100);
  EXPECT_EQ(pull.Next(0, 1, 1000000), Direction::kPull);
  EXPECT_EQ(push.switches(), 0u);
  EXPECT_EQ(pull.switches(), 0u);
}

TEST(DirectionConfigTest, EnvOverridesKnobs) {
  ASSERT_EQ(setenv("GAL_FRONTIER_MODE", "pull", 1), 0);
  ASSERT_EQ(setenv("GAL_FRONTIER_ALPHA", "3.5", 1), 0);
  ASSERT_EQ(setenv("GAL_FRONTIER_BETA", "7", 1), 0);
  DirectionConfig config = DirectionConfig::FromEnv();
  EXPECT_EQ(config.mode, DirectionMode::kPullOnly);
  EXPECT_DOUBLE_EQ(config.alpha, 3.5);
  EXPECT_DOUBLE_EQ(config.beta, 7.0);
  // Garbage keeps the defaults.
  ASSERT_EQ(setenv("GAL_FRONTIER_MODE", "sideways", 1), 0);
  ASSERT_EQ(setenv("GAL_FRONTIER_ALPHA", "-2", 1), 0);
  ASSERT_EQ(setenv("GAL_FRONTIER_BETA", "garbage", 1), 0);
  config = DirectionConfig::FromEnv();
  EXPECT_EQ(config.mode, DirectionMode::kAuto);
  EXPECT_DOUBLE_EQ(config.alpha, 15.0);
  EXPECT_DOUBLE_EQ(config.beta, 18.0);
  ASSERT_EQ(unsetenv("GAL_FRONTIER_MODE"), 0);
  ASSERT_EQ(unsetenv("GAL_FRONTIER_ALPHA"), 0);
  ASSERT_EQ(unsetenv("GAL_FRONTIER_BETA"), 0);
}

// --- Traversal parity ---------------------------------------------------------

std::vector<uint32_t> SerialBfs(const Graph& g, VertexId source) {
  std::vector<uint32_t> dist(g.NumVertices(), kFrontierUnreachable);
  std::queue<VertexId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (dist[u] == kFrontierUnreachable) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    });
  }
  return dist;
}

FrontierEngineOptions ModeOptions(DirectionMode mode, uint32_t workers) {
  FrontierEngineOptions options;
  options.direction.mode = mode;
  options.num_workers = workers;
  return options;
}

class FrontierParityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FrontierParityTest, BfsIdenticalAcrossDirectionsAndWorkers) {
  const uint32_t workers = GetParam();
  for (int kind = 0; kind < 3; ++kind) {
    Graph g = kind == 0   ? Rmat(8, 8, 21)
              : kind == 1 ? Grid(13, 17)
                          : Star(160);
    const std::vector<uint32_t> ref = SerialBfs(g, 0);
    FrontierBfsResult push =
        FrontierBfs(g, 0, ModeOptions(DirectionMode::kPushOnly, workers));
    FrontierBfsResult pull =
        FrontierBfs(g, 0, ModeOptions(DirectionMode::kPullOnly, workers));
    FrontierBfsResult hybrid =
        FrontierBfs(g, 0, ModeOptions(DirectionMode::kAuto, workers));
    ASSERT_TRUE(push.status.ok());
    EXPECT_EQ(push.distance, ref) << "kind=" << kind;
    EXPECT_EQ(pull.distance, ref) << "kind=" << kind;
    EXPECT_EQ(hybrid.distance, ref) << "kind=" << kind;
    EXPECT_EQ(push.stats.pull_steps, 0u);
    EXPECT_EQ(pull.stats.push_steps, 0u);
  }
}

TEST_P(FrontierParityTest, WccIdenticalAcrossDirectionsAndWorkers) {
  const uint32_t workers = GetParam();
  for (int kind = 0; kind < 3; ++kind) {
    Graph g = kind == 0   ? ErdosRenyi(300, 0.004, 9)  // fragmented
              : kind == 1 ? Rmat(8, 6, 33)
                          : Path(150);
    FrontierWccResult push =
        FrontierWcc(g, ModeOptions(DirectionMode::kPushOnly, workers));
    FrontierWccResult pull =
        FrontierWcc(g, ModeOptions(DirectionMode::kPullOnly, workers));
    FrontierWccResult hybrid =
        FrontierWcc(g, ModeOptions(DirectionMode::kAuto, workers));
    EXPECT_EQ(pull.component, push.component) << "kind=" << kind;
    EXPECT_EQ(hybrid.component, push.component) << "kind=" << kind;
    EXPECT_EQ(pull.num_components, push.num_components);
    EXPECT_EQ(hybrid.num_components, push.num_components);
    // Every edge joins one component; labels are component minima.
    for (const Edge& e : g.CollectEdges()) {
      EXPECT_EQ(push.component[e.src], push.component[e.dst]);
      EXPECT_LE(push.component[e.src], e.src);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, FrontierParityTest,
                         ::testing::Values(1u, 2u, 4u));

TEST(FrontierTraversalTest, ResultsInvariantToHostThreads) {
  Graph g = Rmat(8, 8, 5);
  FrontierEngineOptions options;  // kAuto
  options.num_workers = 4;
  ASSERT_EQ(setenv("GAL_TASK_THREADS", "1", 1), 0);
  FrontierBfsResult bfs1 = FrontierBfs(g, 0, options);
  FrontierWccResult wcc1 = FrontierWcc(g, options);
  ASSERT_EQ(setenv("GAL_TASK_THREADS", "8", 1), 0);
  FrontierBfsResult bfs8 = FrontierBfs(g, 0, options);
  FrontierWccResult wcc8 = FrontierWcc(g, options);
  ASSERT_EQ(unsetenv("GAL_TASK_THREADS"), 0);
  EXPECT_EQ(bfs1.distance, bfs8.distance);
  EXPECT_EQ(wcc1.component, wcc8.component);
  // Simulated work is an engine property, not a host-thread property.
  EXPECT_EQ(bfs1.stats.edges_scanned, bfs8.stats.edges_scanned);
  EXPECT_EQ(bfs1.stats.wire_messages, bfs8.stats.wire_messages);
  EXPECT_EQ(wcc1.stats.messages, wcc8.stats.messages);
}

TEST(FrontierTraversalTest, DenseFrontierPullsThenSparseTailPushes) {
  // A star forces the flip: one step saturates the frontier. Pull scans
  // fewer edges than the push fan-out (no echo scans back at the hub).
  Graph g = Star(300);
  FrontierBfsResult r = FrontierBfs(g, 0, ModeOptions(DirectionMode::kAuto, 4));
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.stats.pull_steps, 0u);
  FrontierBfsResult push =
      FrontierBfs(g, 0, ModeOptions(DirectionMode::kPushOnly, 4));
  EXPECT_LT(r.stats.edges_scanned, push.stats.edges_scanned);

  // On a dense power-law graph the wire volume flips too: push sends a
  // duplicate claim per frontier in-edge of every unvisited vertex,
  // pull stops probing at the first frontier hit.
  Graph pl = BarabasiAlbert(500, 8, 3);
  FrontierBfsResult pl_auto =
      FrontierBfs(pl, 0, ModeOptions(DirectionMode::kAuto, 4));
  FrontierBfsResult pl_push =
      FrontierBfs(pl, 0, ModeOptions(DirectionMode::kPushOnly, 4));
  ASSERT_GT(pl_auto.stats.pull_steps, 0u);
  EXPECT_EQ(pl_auto.distance, pl_push.distance);
  EXPECT_LT(pl_auto.stats.edges_scanned, pl_push.stats.edges_scanned);
  EXPECT_LT(pl_auto.stats.wire_bytes, pl_push.stats.wire_bytes);
}

TEST(FrontierTraversalTest, PullOnDirectedGraphUsesInNeighbors) {
  // Directed path 0->1->2->...: pull must gather over in-edges to see
  // the frontier at all.
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 64; ++v) edges.push_back({v, v + 1});
  GraphOptions go;
  go.directed = true;
  Graph g = std::move(Graph::FromEdges(64, std::move(edges), go).value());
  const std::vector<uint32_t> ref = SerialBfs(g, 0);
  FrontierBfsResult pull =
      FrontierBfs(g, 0, ModeOptions(DirectionMode::kPullOnly, 2));
  EXPECT_EQ(pull.distance, ref);
  EXPECT_EQ(pull.stats.push_steps, 0u);
}

TEST(FrontierTraversalTest, SsspMatchesMessageEngine) {
  Graph g = Rmat(7, 8, 11);
  TlavConfig push_engine;
  TraversalOptions push_only;
  push_only.engine = push_engine;
  push_only.direction.mode = DirectionMode::kPushOnly;
  SsspResult baseline = TlavSssp(g, 3, push_only);
  FrontierEngineOptions options;
  options.num_workers = 4;
  FrontierSsspResult frontier =
      FrontierSssp(g, 3, &SyntheticEdgeWeight, options);
  ASSERT_TRUE(frontier.status.ok());
  EXPECT_EQ(frontier.distance, baseline.distance);
}

TEST(FrontierTraversalTest, BfsRejectsOutOfRangeSource) {
  Graph g = Path(10);
  FrontierBfsResult r = FrontierBfs(g, 10, {});
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.distance.empty());
  FrontierSsspResult s = FrontierSssp(g, 1000, &SyntheticEdgeWeight, {});
  EXPECT_FALSE(s.status.ok());
  EXPECT_TRUE(s.distance.empty());
}

}  // namespace
}  // namespace gal
