#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "fsm/canonical.h"
#include "graph/generators.h"
#include "match/executor.h"
#include "match/pattern.h"
#include "tlag/algos/ktruss.h"
#include "tlag/algos/motif_census.h"

namespace gal {
namespace {

Graph Unlabeled(Graph g) {
  GAL_CHECK_OK(g.SetLabels(std::vector<Label>(g.NumVertices(), 0)));
  return g;
}

// --- k-truss -------------------------------------------------------------------

TEST(KTrussTest, CompleteGraphTrussness) {
  // Every edge of K5 is in C(3,1)=3 triangles: trussness 5.
  KTrussResult r = KTrussDecomposition(Complete(5));
  EXPECT_EQ(r.max_trussness, 5u);
  for (uint32_t t : r.trussness) EXPECT_EQ(t, 5u);
}

TEST(KTrussTest, TriangleFreeGraphIsTwoTruss) {
  KTrussResult r = KTrussDecomposition(Grid(5, 5));
  EXPECT_EQ(r.max_trussness, 2u);
  for (uint32_t t : r.trussness) EXPECT_EQ(t, 2u);
}

TEST(KTrussTest, TriangleWithPendant) {
  Graph g = std::move(
      Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, {}).value());
  KTrussResult r = KTrussDecomposition(g);
  for (uint32_t e = 0; e < r.edges.size(); ++e) {
    const bool pendant = r.edges[e].dst == 3;
    EXPECT_EQ(r.trussness[e], pendant ? 2u : 3u);
  }
}

TEST(KTrussTest, KTrussSubgraphPropertyHolds) {
  // Property: inside the k-truss edge set, every edge closes >= k-2
  // triangles with other k-truss edges.
  Graph g = ErdosRenyi(120, 0.12, 7);
  KTrussResult r = KTrussDecomposition(g);
  const uint32_t k = r.max_trussness;
  ASSERT_GE(k, 3u);
  // Collect surviving edge set.
  std::set<std::pair<VertexId, VertexId>> kept;
  for (uint32_t e = 0; e < r.edges.size(); ++e) {
    if (r.trussness[e] >= k) {
      kept.insert({r.edges[e].src, r.edges[e].dst});
    }
  }
  ASSERT_FALSE(kept.empty());
  auto has = [&](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return kept.count({a, b}) > 0;
  };
  for (const auto& [u, v] : kept) {
    uint32_t closed = 0;
    g.ForEachOutNeighbor(u, [&](VertexId w) {
      if (w != v && has(u, w) && has(v, w)) ++closed;
    });
    EXPECT_GE(closed, k - 2) << u << "-" << v;
  }
}

TEST(KTrussTest, PlantedCliqueHasHighestTrussness) {
  Graph bg = ErdosRenyi(100, 0.03, 9);
  std::vector<Edge> edges = bg.CollectEdges();
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) edges.push_back({u, v});
  }
  Graph g = std::move(Graph::FromEdges(100, edges, {}).value());
  std::vector<VertexId> truss = KTrussVertices(g, 6);
  // The 6-truss should be (essentially) the planted K7.
  ASSERT_GE(truss.size(), 7u);
  for (VertexId v = 0; v < 7; ++v) {
    EXPECT_TRUE(std::binary_search(truss.begin(), truss.end(), v));
  }
}

// --- motif census ----------------------------------------------------------------

TEST(MotifCensusTest, MotifNamesMatchCanonicalCodes) {
  EXPECT_STREQ(MotifName(CanonicalCode(Unlabeled(PathPattern(3)))), "path-3");
  EXPECT_STREQ(MotifName(CanonicalCode(Unlabeled(TrianglePattern()))),
               "triangle");
  EXPECT_STREQ(MotifName(CanonicalCode(Unlabeled(PathPattern(4)))), "path-4");
  EXPECT_STREQ(MotifName(CanonicalCode(Unlabeled(StarPattern(3)))), "star-3");
  EXPECT_STREQ(MotifName(CanonicalCode(Unlabeled(TailedTrianglePattern()))),
               "tailed-triangle");
  EXPECT_STREQ(MotifName(CanonicalCode(Unlabeled(CyclePattern(4)))),
               "4-cycle");
  EXPECT_STREQ(MotifName(CanonicalCode(Unlabeled(DiamondPattern()))),
               "diamond");
  EXPECT_STREQ(MotifName(CanonicalCode(Unlabeled(CliquePattern(4)))),
               "4-clique");
}

TEST(MotifCensusTest, CountsOnCompleteGraph) {
  MotifCensus c3 = ExactMotifCensus(Complete(6), 3);
  // K6: every 3-subset is a triangle: C(6,3) = 20, no paths.
  EXPECT_EQ(c3.counts[CanonicalCode(Unlabeled(TrianglePattern()))], 20u);
  EXPECT_EQ(c3.counts.count(CanonicalCode(Unlabeled(PathPattern(3)))), 0u);
  MotifCensus c4 = ExactMotifCensus(Complete(6), 4);
  EXPECT_EQ(c4.counts[CanonicalCode(Unlabeled(CliquePattern(4)))], 15u);
}

TEST(MotifCensusTest, CountsMatchSymmetryBrokenMatching) {
  // Cross-validation of two independent subsystems: the ESU census and
  // the matching executor with symmetry breaking must agree on *induced*
  // counts. 4-cycles: induced 4-cycles = matched 4-cycles minus those
  // with chords (diamonds count twice, cliques three times).
  Graph g = ErdosRenyi(60, 0.15, 21);
  MotifCensus census = ExactMotifCensus(g, 4);
  MatchOptions opt;
  opt.symmetry_breaking = true;
  const uint64_t cycles =
      SubgraphMatch(g, CyclePattern(4), opt).stats.matches;
  const uint64_t diamonds =
      SubgraphMatch(g, DiamondPattern(), opt).stats.matches;
  const uint64_t cliques =
      SubgraphMatch(g, CliquePattern(4), opt).stats.matches;
  const uint64_t induced_cycles =
      census.counts[CanonicalCode(Unlabeled(CyclePattern(4)))];
  // Containment algebra: an induced diamond holds exactly 1 non-induced
  // 4-cycle and a K4 holds 3; but the *matched* diamond count itself
  // includes 6 diamond images per K4. Substituting:
  //   cycles = induced_cycles + induced_diamonds + 3*K4
  //   diamonds_matched = induced_diamonds + 6*K4
  // => cycles = induced_cycles + diamonds_matched - 3*K4.
  EXPECT_EQ(cycles, induced_cycles + diamonds - 3 * cliques);
}

TEST(MotifCensusTest, TotalSizeThreeCountIsWedgePlusTriangle) {
  Graph g = Rmat(7, 5, 5);
  MotifCensus census = ExactMotifCensus(g, 3);
  uint64_t total = 0;
  for (const auto& [code, count] : census.counts) total += count;
  // Total connected 3-sets = wedges ("open") + triangles, where
  // wedges counted as sum over v of C(deg,2) - 3*triangles... simpler:
  // verify against the enumeration count itself.
  EXPECT_EQ(total, census.subgraphs_enumerated);
  EXPECT_EQ(census.counts.size(), 2u);  // only path-3 and triangle exist
}

TEST(MotifCensusTest, SampledEstimateIsClose) {
  Graph g = ErdosRenyi(150, 0.08, 13);
  MotifCensus exact = ExactMotifCensus(g, 4);
  MotifCensus sampled = SampledMotifCensus(g, 4, 0.5, 3);
  EXPECT_LT(sampled.subgraphs_enumerated, exact.subgraphs_enumerated);
  for (const auto& [code, count] : exact.counts) {
    if (count < 200) continue;  // only statistically meaningful motifs
    const double estimate = static_cast<double>(sampled.counts[code]);
    EXPECT_NEAR(estimate / count, 1.0, 0.35) << MotifName(code);
  }
}

TEST(MotifCensusTest, RetentionOneEqualsExact) {
  Graph g = ErdosRenyi(80, 0.1, 5);
  MotifCensus exact = ExactMotifCensus(g, 3);
  MotifCensus sampled = SampledMotifCensus(g, 3, 1.0, 9);
  EXPECT_EQ(exact.counts, sampled.counts);
}

// --- induced matching cross-validation -------------------------------------------

TEST(InducedMatchTest, InducedCountsEqualCensusCounts) {
  // Strongest cross-check in the repo: the ESU census and the induced
  // matcher are completely independent implementations of "count
  // induced subgraphs"; they must agree on every size-4 motif.
  Graph g = ErdosRenyi(70, 0.12, 9);
  MotifCensus census = ExactMotifCensus(g, 4);
  MatchOptions opt;
  opt.symmetry_breaking = true;
  opt.induced = true;
  struct Case {
    const char* name;
    Graph pattern;
  };
  for (Case c : {Case{"path-4", PathPattern(4)},
                 Case{"star-3", StarPattern(3)},
                 Case{"4-cycle", CyclePattern(4)},
                 Case{"tailed-triangle", TailedTrianglePattern()},
                 Case{"diamond", DiamondPattern()},
                 Case{"4-clique", CliquePattern(4)}}) {
    const uint64_t matched = SubgraphMatch(g, c.pattern, opt).stats.matches;
    const std::string code = CanonicalCode(Unlabeled(c.pattern));
    const uint64_t counted =
        census.counts.count(code) ? census.counts.at(code) : 0;
    EXPECT_EQ(matched, counted) << c.name;
  }
}

TEST(InducedMatchTest, InducedIsSubsetOfNonInduced) {
  Graph g = ErdosRenyi(80, 0.15, 5);
  for (const Graph& q : {CyclePattern(4), DiamondPattern(), PathPattern(4)}) {
    MatchOptions plain;
    MatchOptions induced;
    induced.induced = true;
    EXPECT_LE(SubgraphMatch(g, q, induced).stats.matches,
              SubgraphMatch(g, q, plain).stats.matches);
  }
}

TEST(InducedMatchTest, CliquesAreInducedByDefinition) {
  // A complete pattern has no non-edges: induced == non-induced.
  Graph g = ErdosRenyi(80, 0.2, 7);
  MatchOptions plain;
  MatchOptions induced;
  induced.induced = true;
  EXPECT_EQ(SubgraphMatch(g, CliquePattern(4), induced).stats.matches,
            SubgraphMatch(g, CliquePattern(4), plain).stats.matches);
}

}  // namespace
}  // namespace gal
