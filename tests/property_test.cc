// Cross-cutting property sweeps (TEST_P): the invariants that must hold
// for every engine regardless of graph shape, worker count, or policy.

#include <atomic>
#include <numeric>
#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "dist/quantization.h"
#include "graph/generators.h"
#include "match/executor.h"
#include "match/pattern.h"
#include "tlag/algos/subgraph_enum.h"
#include "tlag/algos/triangles.h"
#include "tlag/bfs_engine.h"
#include "tlav/algos/traversal.h"
#include "tlav/algos/wcc.h"

namespace gal {
namespace {

Graph MakeGraph(int kind) {
  switch (kind) {
    case 0: return Rmat(8, 6, 13);
    case 1: return ErdosRenyi(300, 0.02, 13);
    case 2: return Grid(16, 16);
    case 3: return BarabasiAlbert(300, 3, 13);
    default: return Path(200);
  }
}

const char* GraphName(int kind) {
  switch (kind) {
    case 0: return "rmat";
    case 1: return "er";
    case 2: return "grid";
    case 3: return "ba";
    default: return "path";
  }
}

// --- TLAV results are invariant to the worker count and match serial ----------

class TlavInvarianceTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(TlavInvarianceTest, WccAndBfsMatchSerialReferences) {
  const auto [kind, workers] = GetParam();
  Graph g = MakeGraph(kind);
  TlavConfig config;
  config.num_workers = workers;

  // Serial WCC reference via BFS flood fill.
  std::vector<VertexId> ref(g.NumVertices(), kInvalidVertex);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    if (ref[s] != kInvalidVertex) continue;
    std::queue<VertexId> q;
    q.push(s);
    ref[s] = s;
    while (!q.empty()) {
      VertexId v = q.front();
      q.pop();
      g.ForEachOutNeighbor(v, [&](VertexId u) {
        if (ref[u] == kInvalidVertex) {
          ref[u] = s;
          q.push(u);
        }
      });
    }
  }
  WccResult wcc = Wcc(g, config);
  EXPECT_EQ(wcc.component, ref) << GraphName(kind);

  std::vector<uint32_t> bfs_ref(g.NumVertices(), kUnreachable);
  std::queue<VertexId> q;
  bfs_ref[0] = 0;
  q.push(0);
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (bfs_ref[u] == kUnreachable) {
        bfs_ref[u] = bfs_ref[v] + 1;
        q.push(u);
      }
    });
  }
  EXPECT_EQ(TlavBfs(g, 0, config).distance, bfs_ref) << GraphName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TlavInvarianceTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1u, 3u, 8u)));

// --- Triangle counting agrees across all four implementations ------------------

class TriangleAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(TriangleAgreementTest, AllEnginesAgree) {
  Graph g = MakeGraph(GetParam());
  const uint64_t serial = SerialTriangleCount(g).triangles;
  EXPECT_EQ(TaskTriangleCount(g).triangles, serial);
  MatchOptions sym;
  sym.symmetry_breaking = true;
  EXPECT_EQ(SubgraphMatch(g, TrianglePattern(), sym).stats.matches, serial);
  // ESU census of size-3 cliques.
  SubgraphEnumOptions options;
  options.max_size = 3;
  std::atomic<uint64_t> census{0};
  EnumerateConnectedSubgraphs(
      g, options, [&g, &census](const std::vector<VertexId>& s) {
        if (s.size() == 3 && g.HasEdge(s[0], s[1]) && g.HasEdge(s[1], s[2]) &&
            g.HasEdge(s[0], s[2])) {
          census.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
      });
  EXPECT_EQ(census.load(), serial);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriangleAgreementTest,
                         ::testing::Values(0, 1, 2, 3));

// --- BFS-extension and DFS enumeration produce identical clique counts ---------

class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(EngineEquivalenceTest, CliqueCountsEqualAcrossEngines) {
  const auto [p, k] = GetParam();
  Graph g = ErdosRenyi(120, p, 31);
  // BFS extension.
  BfsExtensionEngine bfs(BfsEngineConfig{});
  std::vector<VertexId> roots(g.NumVertices());
  std::iota(roots.begin(), roots.end(), 0);
  std::atomic<uint64_t> bfs_count{0};
  bfs.Run(
      roots, k,
      [&g](const Embedding& e, std::vector<VertexId>& out) {
        g.ForEachOutNeighbor(e.back(), [&](VertexId u) {
          if (u <= e.back()) return;
          bool ok = true;
          for (size_t i = 0; i + 1 < e.size(); ++i) {
            if (!g.HasEdge(e[i], u)) {
              ok = false;
              break;
            }
          }
          if (ok) out.push_back(u);
        });
      },
      [&bfs_count](const Embedding&) { bfs_count++; });
  // Matching with symmetry breaking.
  MatchOptions sym;
  sym.symmetry_breaking = true;
  const uint64_t matched =
      SubgraphMatch(g, CliquePattern(k), sym).stats.matches;
  EXPECT_EQ(bfs_count.load(), matched) << "p=" << p << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalenceTest,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.2),
                       ::testing::Values(3u, 4u)));

// --- quantization error is monotone in precision --------------------------------

class QuantizationMonotoneTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(QuantizationMonotoneTest, MoreBitsNeverWorse) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 31 + cols);
  Matrix m = Matrix::Xavier(rows, cols, rng);
  const double e16 = m.MeanAbsDiff(QuantizeDequantize(m, Quantization::kFp16));
  const double e8 = m.MeanAbsDiff(QuantizeDequantize(m, Quantization::kInt8));
  const double e4 = m.MeanAbsDiff(QuantizeDequantize(m, Quantization::kInt4));
  EXPECT_LE(e16, e8);
  EXPECT_LE(e8, e4);
  EXPECT_LT(WireBytes(Quantization::kInt4, rows, cols),
            WireBytes(Quantization::kInt8, rows, cols));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantizationMonotoneTest,
    ::testing::Combine(::testing::Values(8u, 64u), ::testing::Values(4u, 32u)));

// --- matching invariants across patterns and thread counts ----------------------

class MatchInvarianceTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(MatchInvarianceTest, CountsStableAndSymmetryExact) {
  const auto [pattern_kind, threads] = GetParam();
  Graph g = ErdosRenyi(100, 0.08, 7);
  Graph q = pattern_kind == 0   ? TrianglePattern()
            : pattern_kind == 1 ? CyclePattern(4)
            : pattern_kind == 2 ? DiamondPattern()
                                : TailedTrianglePattern();
  MatchOptions plain;
  plain.engine.num_threads = threads;
  MatchOptions sym = plain;
  sym.symmetry_breaking = true;
  const uint64_t all = SubgraphMatch(g, q, plain).stats.matches;
  const uint64_t distinct = SubgraphMatch(g, q, sym).stats.matches;
  EXPECT_EQ(all, distinct * Automorphisms(q).size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatchInvarianceTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1u, 4u)));

}  // namespace
}  // namespace gal
