#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/threadpool.h"

namespace gal {
namespace {

// ---------------------------------------------------------------------------
// Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kAborted,
        StatusCode::kIOError}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusConstructionBecomesInternalError) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailingHelper() { return Status::Aborted("nope"); }
Status PropagatingHelper(bool fail) {
  if (fail) GAL_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(PropagatingHelper(true).code(), StatusCode::kAborted);
  EXPECT_TRUE(PropagatingHelper(false).ok());
}

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntHonorsInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(5000);
  pool.ParallelFor(5000, [&visits](size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ParallelForShardsCoversRangeExactly) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.ParallelForShards(1001, [&total](size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 1001u);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterAccumulatesConcurrently) {
  Counter c;
  ThreadPool pool(8);
  pool.ParallelFor(10000, [&c](size_t) { c.Increment(); });
  EXPECT_EQ(c.Get(), 10000);
  c.Reset();
  EXPECT_EQ(c.Get(), 0);
}

TEST(MetricsTest, MaxGaugeTracksMaximum) {
  MaxGauge g;
  g.Observe(5);
  g.Observe(3);
  g.Observe(9);
  g.Observe(7);
  EXPECT_EQ(g.Get(), 9);
}

TEST(MetricsTest, RegistryAccumulatesByName) {
  MetricRegistry reg;
  reg.Add("messages", 10);
  reg.Add("messages", 5);
  reg.Add("bytes", 100);
  EXPECT_EQ(reg.Get("messages"), 15);
  EXPECT_EQ(reg.Get("bytes"), 100);
  EXPECT_EQ(reg.Get("absent"), 0);
  auto snap = reg.Snapshot();
  EXPECT_EQ(snap.size(), 2u);
}

TEST(MetricsTest, HistogramQuantilesAndMax) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.P50(), 50.5, 1e-9);
  EXPECT_NEAR(h.P95(), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsTest, HistogramEmptyReadsAsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.P50(), 0.0);
  EXPECT_DOUBLE_EQ(h.P95(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
}

TEST(MetricsTest, HistogramObserveIsThreadSafe) {
  Histogram h;
  ThreadPool pool(8);
  pool.ParallelFor(5000, [&h](size_t) { h.Observe(1.0); });
  EXPECT_EQ(h.count(), 5000u);
  EXPECT_DOUBLE_EQ(h.sum(), 5000.0);
}

TEST(MetricsTest, ScopedSpanRecordsOneSample) {
  Histogram h;
  {
    ScopedSpan span(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.Max(), 0.0);
}

TEST(MetricsTest, StageTimingStatSummarizesHistogram) {
  Histogram h;
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(3.0);
  StageTimingStat stat = StageTimingStat::FromHistogram("forward", h);
  EXPECT_EQ(stat.name, "forward");
  EXPECT_DOUBLE_EQ(stat.total_seconds, 6.0);
  EXPECT_DOUBLE_EQ(stat.p50_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stat.max_seconds, 3.0);
}

}  // namespace
}  // namespace gal
