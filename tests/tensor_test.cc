#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gal {
namespace {

Matrix FromRows(std::vector<std::vector<float>> rows) {
  Matrix m(static_cast<uint32_t>(rows.size()),
           static_cast<uint32_t>(rows[0].size()));
  for (uint32_t i = 0; i < m.rows(); ++i) {
    for (uint32_t j = 0; j < m.cols(); ++j) m.at(i, j) = rows[i][j];
  }
  return m;
}

TEST(MatrixTest, MatmulSmallKnown) {
  Matrix a = FromRows({{1, 2}, {3, 4}});
  Matrix b = FromRows({{5, 6}, {7, 8}});
  Matrix c = Matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(MatrixTest, TransposeVariantsConsistent) {
  Rng rng(3);
  Matrix a = Matrix::Xavier(7, 5, rng);
  Matrix b = Matrix::Xavier(7, 4, rng);
  // A^T B  ==  manual transpose then matmul.
  Matrix at(5, 7);
  for (uint32_t i = 0; i < 7; ++i) {
    for (uint32_t j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  }
  Matrix expect = Matmul(at, b);
  Matrix got = MatmulTransposeA(a, b);
  EXPECT_LT(expect.MeanAbsDiff(got), 1e-6);

  Matrix c = Matrix::Xavier(6, 5, rng);
  Matrix ct(5, 6);
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint32_t j = 0; j < 5; ++j) ct.at(j, i) = c.at(i, j);
  }
  Matrix expect2 = Matmul(a, ct);           // (7x5)*(5x6)
  Matrix got2 = MatmulTransposeB(a, c);     // A * C^T
  EXPECT_LT(expect2.MeanAbsDiff(got2), 1e-6);
}

TEST(MatrixTest, XavierBoundsAndDeterminism) {
  Rng r1(7);
  Rng r2(7);
  Matrix a = Matrix::Xavier(20, 30, r1);
  Matrix b = Matrix::Xavier(20, 30, r2);
  EXPECT_EQ(a.data(), b.data());
  const float bound = std::sqrt(6.0f / 50.0f);
  for (float v : a.data()) {
    EXPECT_LE(std::abs(v), bound);
  }
}

TEST(MatrixTest, ReluForwardBackward) {
  Matrix z = FromRows({{-1, 2}, {0, -3}});
  Matrix mask;
  Matrix h = ReluForward(z, &mask);
  EXPECT_FLOAT_EQ(h.at(0, 0), 0);
  EXPECT_FLOAT_EQ(h.at(0, 1), 2);
  EXPECT_FLOAT_EQ(mask.at(0, 1), 1);
  EXPECT_FLOAT_EQ(mask.at(1, 1), 0);
  Matrix grad = FromRows({{10, 10}, {10, 10}});
  Matrix dz = ReluBackward(grad, mask);
  EXPECT_FLOAT_EQ(dz.at(0, 0), 0);
  EXPECT_FLOAT_EQ(dz.at(0, 1), 10);
}

TEST(MatrixTest, SoftmaxRowsSumToOne) {
  Matrix z = FromRows({{1, 2, 3}, {-5, 0, 5}, {100, 100, 100}});
  Matrix p = SoftmaxRows(z);
  for (uint32_t i = 0; i < 3; ++i) {
    float s = 0;
    for (uint32_t j = 0; j < 3; ++j) {
      s += p.at(i, j);
      EXPECT_GE(p.at(i, j), 0.0f);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 0));
  EXPECT_NEAR(p.at(2, 0), 1.0f / 3, 1e-5);
}

TEST(MatrixTest, SoftmaxCrossEntropyGradAndAccuracy) {
  Matrix logits = FromRows({{10, 0}, {0, 10}, {10, 0}});
  std::vector<int32_t> labels = {0, 1, 1};  // last one wrong
  std::vector<uint8_t> mask = {1, 1, 1};
  SoftmaxXentResult r = SoftmaxCrossEntropy(logits, labels, mask);
  EXPECT_EQ(r.correct, 2u);
  EXPECT_EQ(r.total, 3u);
  EXPECT_GT(r.loss, 0.0);
  // Gradient rows sum to ~0 (softmax minus one-hot property).
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(r.grad.at(i, 0) + r.grad.at(i, 1), 0.0f, 1e-6);
  }
  // Masked-out rows contribute nothing.
  mask = {1, 0, 0};
  SoftmaxXentResult masked = SoftmaxCrossEntropy(logits, labels, mask);
  EXPECT_EQ(masked.total, 1u);
  EXPECT_FLOAT_EQ(masked.grad.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(masked.grad.at(2, 1), 0.0f);
}

TEST(MatrixTest, NumericalGradientOfXent) {
  // d loss / d logit matches finite differences.
  Matrix logits = FromRows({{0.3f, -0.2f, 0.5f}});
  std::vector<int32_t> labels = {2};
  std::vector<uint8_t> mask = {1};
  SoftmaxXentResult r = SoftmaxCrossEntropy(logits, labels, mask);
  const float eps = 1e-3f;
  for (uint32_t j = 0; j < 3; ++j) {
    Matrix plus = logits;
    plus.at(0, j) += eps;
    Matrix minus = logits;
    minus.at(0, j) -= eps;
    const double num =
        (SoftmaxCrossEntropy(plus, labels, mask).loss -
         SoftmaxCrossEntropy(minus, labels, mask).loss) /
        (2 * eps);
    EXPECT_NEAR(num, r.grad.at(0, j), 1e-3);
  }
}

TEST(SparseTest, MultiplyMatchesDense) {
  Rng rng(5);
  Graph g = ErdosRenyi(40, 0.15, 9);
  SparseMatrix a = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  Matrix h = Matrix::Xavier(40, 8, rng);
  Matrix sparse_out = a.Multiply(h);
  // Dense reconstruction.
  Matrix dense(40, 40);
  for (uint32_t r = 0; r < 40; ++r) {
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t e = 0; e < idx.size(); ++e) dense.at(r, idx[e]) = val[e];
  }
  Matrix dense_out = Matmul(dense, h);
  EXPECT_LT(sparse_out.MeanAbsDiff(dense_out), 1e-6);

  Matrix tr_sparse = a.TransposeMultiply(h);
  Matrix tr_dense = MatmulTransposeA(dense, h);
  EXPECT_LT(tr_sparse.MeanAbsDiff(tr_dense), 1e-6);
}

TEST(SparseTest, RowMeanRowsSumToOne) {
  Graph g = Rmat(6, 4, 3);
  SparseMatrix a = NormalizedAdjacency(g, AdjNorm::kRowMean);
  for (uint32_t r = 0; r < a.rows(); ++r) {
    float s = 0;
    for (float v : a.RowValues(r)) s += v;
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
}

TEST(SparseTest, SymmetricNormalizationIsSymmetric) {
  Graph g = ErdosRenyi(30, 0.2, 2);
  SparseMatrix a = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  // Reconstruct dense and check A == A^T.
  Matrix dense(30, 30);
  for (uint32_t r = 0; r < 30; ++r) {
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t e = 0; e < idx.size(); ++e) dense.at(r, idx[e]) = val[e];
  }
  for (uint32_t i = 0; i < 30; ++i) {
    for (uint32_t j = 0; j < 30; ++j) {
      EXPECT_NEAR(dense.at(i, j), dense.at(j, i), 1e-6);
    }
  }
}

TEST(SparseTest, FromTripletsCollapsesDuplicates) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {0, 0, 2.0f}, {1, 1, 4.0f}});
  EXPECT_EQ(m.nnz(), 2u);
  Matrix h = FromRows({{1}, {1}});
  Matrix out = m.Multiply(h);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 4.0f);
}

}  // namespace
}  // namespace gal
