// The simulated-cluster substrate (src/cluster/): traffic ledger,
// virtual clock, runtime resolution, the typed BSP exchange channel, and
// the cross-engine contracts — bit-identical TLAV results at any worker
// or host-thread count, and one shared ledger/clock under TLAV, TLAG and
// dist-GNN jobs. The ledger and exchange suites are also run under
// ThreadSanitizer by scripts/check.sh.

#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/exchange.h"
#include "dist/dist_gcn.h"
#include "gnn/dataset.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "tlag/algos/triangles.h"
#include "tlav/algos/pagerank.h"
#include "tlav/algos/wcc.h"

namespace gal {
namespace {

// --- traffic ledger ---------------------------------------------------------

TEST(TrafficLedgerTest, CrossVsLocalAccounting) {
  TrafficLedger ledger(3);
  ledger.Charge(0, 1, 100);
  ledger.Charge(1, 1, 999);  // src == dst: free on the wire, booked local
  ledger.Charge(2, 0, 50, 2);
  EXPECT_EQ(ledger.TotalBytes(), 150u);
  EXPECT_EQ(ledger.TotalMessages(), 3u);
  EXPECT_EQ(ledger.PairBytes(0, 1), 100u);
  EXPECT_EQ(ledger.PairBytes(1, 0), 0u);
  EXPECT_EQ(ledger.PairMessages(2, 0), 2u);
  EXPECT_EQ(ledger.TotalLocalBytes(), 999u);
  EXPECT_EQ(ledger.TotalLocalMessages(), 1u);
}

TEST(TrafficLedgerTest, BroadcastHitsEveryPeer) {
  TrafficLedger ledger(4);
  ledger.ChargeBroadcast(1, 10);
  EXPECT_EQ(ledger.TotalBytes(), 30u);
  EXPECT_EQ(ledger.PairBytes(1, 0), 10u);
  EXPECT_EQ(ledger.PairBytes(1, 1), 0u);
}

TEST(TrafficLedgerTest, WorkerViewsImbalanceAndReset) {
  TrafficLedger ledger(2);
  ledger.Charge(0, 1, 300, 3);
  ledger.Charge(1, 0, 100);
  ledger.Charge(0, 0, 40);
  const WorkerTraffic w0 = ledger.Worker(0);
  EXPECT_EQ(w0.sent_bytes, 300u);
  EXPECT_EQ(w0.sent_messages, 3u);
  EXPECT_EQ(w0.recv_bytes, 100u);
  EXPECT_EQ(w0.recv_messages, 1u);
  EXPECT_EQ(w0.local_bytes, 40u);
  // max over workers (300) / mean over workers (200).
  EXPECT_DOUBLE_EQ(ledger.SentBytesImbalance(), 1.5);
  const TrafficSnapshot snap = ledger.Snapshot();
  EXPECT_EQ(snap.cross_bytes, 400u);
  EXPECT_EQ(snap.cross_messages, 4u);
  EXPECT_EQ(snap.local_bytes, 40u);
  ledger.Reset();
  EXPECT_EQ(ledger.TotalBytes(), 0u);
  EXPECT_EQ(ledger.TotalLocalBytes(), 0u);
  EXPECT_DOUBLE_EQ(ledger.SentBytesImbalance(), 0.0);
}

// The race the sharded atomics exist for: many host threads charging on
// behalf of overlapping simulated workers (stolen TLAG tasks do exactly
// this) must lose no charge. The old SimulatedNetwork raced its plain
// uint64_t counters here; scripts/check.sh runs this under TSan.
TEST(TrafficLedgerTest, ConcurrentChargesAreExact) {
  constexpr uint32_t kWorkers = 4;
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 20000;
  TrafficLedger ledger(kWorkers);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, t] {
      const uint32_t src = static_cast<uint32_t>(t) % kWorkers;
      for (int i = 0; i < kChargesPerThread; ++i) {
        ledger.Charge(src, (src + 1) % kWorkers, 3);
        ledger.Charge(src, src, 2);  // local column
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const uint64_t charges =
      static_cast<uint64_t>(kThreads) * kChargesPerThread;
  EXPECT_EQ(ledger.TotalBytes(), 3 * charges);
  EXPECT_EQ(ledger.TotalMessages(), charges);
  EXPECT_EQ(ledger.TotalLocalBytes(), 2 * charges);
  EXPECT_EQ(ledger.TotalLocalMessages(), charges);
}

// --- virtual clock ----------------------------------------------------------

TEST(VirtualClockTest, RoundIsMaxComputePlusTransfer) {
  const NetworkCostModel cost;
  VirtualClock clock(cost);
  const std::vector<double> compute = {0.5, 2.0, 1.0};
  const double s = clock.AdvanceRound(std::span<const double>(compute),
                                      1000, 2);
  EXPECT_DOUBLE_EQ(s, 2.0 + cost.TransferSeconds(1000, 2));
  EXPECT_EQ(clock.rounds(), 1u);
  EXPECT_DOUBLE_EQ(clock.seconds(), s);
  const std::vector<ClusterRound> rounds = clock.RoundsSince(0);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_DOUBLE_EQ(rounds[0].compute_seconds, 2.0);
  EXPECT_EQ(rounds[0].comm_bytes, 1000u);
  EXPECT_EQ(rounds[0].comm_messages, 2u);
}

TEST(VirtualClockTest, QuietRoundPaysNoWireTime) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.AdvanceRound(1.0, 0, 0), 1.0);
  const std::vector<ClusterRound> rounds = clock.RoundsSince(0);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_DOUBLE_EQ(rounds[0].comm_seconds, 0.0);
}

TEST(VirtualClockTest, MarksAttributeJobsOnASharedClock) {
  VirtualClock clock;
  clock.AdvanceRound(1.0, 0, 0);  // an earlier job's round
  const size_t mark = clock.rounds();
  clock.AdvanceRound(2.0, 0, 0);
  clock.AdvanceRound(3.0, 0, 0);
  EXPECT_EQ(clock.RoundsSince(mark).size(), 2u);
  EXPECT_DOUBLE_EQ(clock.SecondsSince(mark), 5.0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 6.0);
  clock.Reset();
  EXPECT_EQ(clock.rounds(), 0u);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

// --- runtime ---------------------------------------------------------------

TEST(ClusterRuntimeTest, WorkerCountResolution) {
  EXPECT_EQ(ClusterRuntime(ClusterOptions{3, {}}).num_workers(), 3u);
  ASSERT_EQ(setenv("GAL_CLUSTER_WORKERS", "6", 1), 0);
  EXPECT_EQ(ResolveClusterWorkers(0), 6u);
  EXPECT_EQ(ResolveClusterWorkers(2), 2u);  // explicit wins
  EXPECT_EQ(ClusterRuntime().num_workers(), 6u);
  ASSERT_EQ(setenv("GAL_CLUSTER_WORKERS", "garbage", 1), 0);
  EXPECT_EQ(ResolveClusterWorkers(0), 4u);
  ASSERT_EQ(unsetenv("GAL_CLUSTER_WORKERS"), 0);
  EXPECT_EQ(ResolveClusterWorkers(0), 4u);  // default width
}

TEST(ClusterRuntimeTest, InstallsPartitionOfMatchingWidth) {
  const Graph g = Grid(6, 6);
  ClusterRuntime runtime(ClusterOptions{4, {}});
  EXPECT_FALSE(runtime.has_partition());
  runtime.InstallPartition(HashPartition(g, 4));
  EXPECT_TRUE(runtime.has_partition());
  EXPECT_EQ(runtime.partition().num_parts, 4u);
  EXPECT_EQ(runtime.partition().assignment.size(), g.NumVertices());
}

// --- exchange channel -------------------------------------------------------

TEST(ExchangeChannelTest, DeliversInSourceWorkerThenSendOrder) {
  ClusterRuntime runtime(ClusterOptions{3, {}});
  ExchangeChannel<int> channel(&runtime, 8);
  channel.Begin(nullptr);
  // Sends issued out of source order; delivery to worker 0 must still be
  // src 0's lane in send order, then src 1's, then src 2's.
  channel.Send(2, 0, 7, 70);
  channel.Send(0, 0, 5, 50);
  channel.Send(0, 0, 6, 60);
  channel.Send(1, 0, 5, 51);
  std::vector<std::pair<VertexId, int>> got;
  const auto totals =
      channel.Flush(nullptr, [&](uint32_t dst_worker, VertexId v, int&& m) {
        EXPECT_EQ(dst_worker, 0u);
        got.push_back({v, m});
      });
  const std::vector<std::pair<VertexId, int>> want = {
      {5, 50}, {6, 60}, {5, 51}, {7, 70}};
  EXPECT_EQ(got, want);
  EXPECT_EQ(totals.logical_messages, 4u);
  // src 0 -> worker 0 stays on-worker; the two remote sends pay
  // sizeof(int) + 8-byte envelope each.
  EXPECT_EQ(totals.cross_messages, 2u);
  EXPECT_EQ(totals.cross_bytes, 2 * (sizeof(int) + 8));
  EXPECT_EQ(runtime.ledger().TotalBytes(), totals.cross_bytes);
  EXPECT_EQ(runtime.ledger().TotalMessages(), 2u);
}

TEST(ExchangeChannelTest, CombinerCollapsesWireMessages) {
  ClusterRuntime runtime(ClusterOptions{2, {}});
  ExchangeChannel<int> channel(&runtime, 0);
  channel.Begin([](const int& a, const int& b) { return a + b; });
  channel.Send(0, 1, 9, 1);
  channel.Send(0, 1, 9, 2);
  channel.Send(0, 1, 9, 3);
  int delivered = -1;
  uint32_t count = 0;
  const auto totals =
      channel.Flush(nullptr, [&](uint32_t, VertexId v, int&& m) {
        EXPECT_EQ(v, 9u);
        delivered = m;
        ++count;
      });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(delivered, 6);
  EXPECT_EQ(totals.logical_messages, 3u);
  EXPECT_EQ(totals.cross_messages, 1u);  // one combined slot on the wire
  EXPECT_EQ(runtime.ledger().TotalMessages(), 1u);
}

TEST(ExchangeChannelTest, ClearDropsBufferedMessages) {
  ClusterRuntime runtime(ClusterOptions{2, {}});
  ExchangeChannel<int> channel(&runtime, 0);
  channel.Begin(nullptr);
  channel.Send(0, 1, 3, 33);
  channel.Clear();
  uint32_t count = 0;
  const auto totals =
      channel.Flush(nullptr, [&](uint32_t, VertexId, int&&) { ++count; });
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(totals.logical_messages, 0u);
  EXPECT_EQ(runtime.ledger().TotalBytes(), 0u);
}

// --- cross-engine determinism ----------------------------------------------
// The exchange-channel ordering contract in action: TLAV results and
// logical stats must be bit-identical at any simulated worker count and
// any host thread count. Host threads are an execution detail; the
// worker count changes only what crosses the wire.

TEST(ClusterExchangeTest, PageRankBitIdenticalAcrossWorkersAndThreads) {
  // Grid: no zero-degree vertices, so the dangling aggregator (whose
  // fold order is scheduling-dependent) stays untouched.
  const Graph g = Grid(12, 12);
  std::vector<double> base_ranks;
  TlavStats base_stats;
  bool have_base = false;
  for (const uint32_t workers : {1u, 2u, 4u}) {
    std::vector<double> fixed_ranks;
    TlavStats fixed_stats;
    bool have_fixed = false;
    for (const char* threads : {"1", "8"}) {
      ASSERT_EQ(setenv("GAL_TASK_THREADS", threads, 1), 0);
      PageRankOptions options;
      options.iterations = 12;
      options.engine.num_workers = workers;
      const PageRankResult r = PageRank(g, options);
      if (workers == 1) {
        EXPECT_EQ(r.stats.cross_worker_messages, 0u);
        EXPECT_EQ(r.stats.cross_worker_bytes, 0u);
      }
      if (!have_fixed) {
        fixed_ranks = r.ranks;
        fixed_stats = r.stats;
        have_fixed = true;
      } else {
        // Bit-identical ranks and wire stats at any host thread count.
        ASSERT_EQ(r.ranks.size(), fixed_ranks.size());
        for (size_t i = 0; i < r.ranks.size(); ++i) {
          EXPECT_EQ(r.ranks[i], fixed_ranks[i]) << "vertex " << i;
        }
        EXPECT_EQ(r.stats.cross_worker_messages,
                  fixed_stats.cross_worker_messages);
        EXPECT_EQ(r.stats.cross_worker_bytes, fixed_stats.cross_worker_bytes);
        EXPECT_EQ(r.stats.mirrored_deliveries,
                  fixed_stats.mirrored_deliveries);
      }
      if (!have_base) {
        base_ranks = r.ranks;
        base_stats = r.stats;
        have_base = true;
      }
      // Logical stats are partition-independent: identical across worker
      // counts as well.
      EXPECT_EQ(r.stats.supersteps, base_stats.supersteps);
      EXPECT_EQ(r.stats.total_messages, base_stats.total_messages);
      EXPECT_EQ(r.stats.total_message_bytes, base_stats.total_message_bytes);
      EXPECT_EQ(r.stats.vertex_activations, base_stats.vertex_activations);
      ASSERT_EQ(r.stats.per_step.size(), base_stats.per_step.size());
      for (size_t s = 0; s < r.stats.per_step.size(); ++s) {
        EXPECT_EQ(r.stats.per_step[s].active_vertices,
                  base_stats.per_step[s].active_vertices);
        EXPECT_EQ(r.stats.per_step[s].messages,
                  base_stats.per_step[s].messages);
      }
    }
  }
  ASSERT_EQ(unsetenv("GAL_TASK_THREADS"), 0);
}

TEST(ClusterExchangeTest, WccIdenticalAcrossWorkersAndThreads) {
  const Graph g = PlantedPartition(240, 3, 0.12, 0.008, 11);
  WccResult base;
  bool have_base = false;
  for (const uint32_t workers : {1u, 2u, 4u}) {
    for (const char* threads : {"1", "8"}) {
      ASSERT_EQ(setenv("GAL_TASK_THREADS", threads, 1), 0);
      TlavConfig config;
      config.num_workers = workers;
      const WccResult r = Wcc(g, config);
      if (!have_base) {
        base = r;
        have_base = true;
        continue;
      }
      // Min-combining is order-independent, so even the values are
      // identical across worker counts, not just thread counts.
      EXPECT_EQ(r.component, base.component);
      EXPECT_EQ(r.num_components, base.num_components);
      EXPECT_EQ(r.stats.supersteps, base.stats.supersteps);
      EXPECT_EQ(r.stats.total_messages, base.stats.total_messages);
      EXPECT_EQ(r.stats.total_message_bytes, base.stats.total_message_bytes);
      ASSERT_EQ(r.stats.per_step.size(), base.stats.per_step.size());
      for (size_t s = 0; s < r.stats.per_step.size(); ++s) {
        EXPECT_EQ(r.stats.per_step[s].active_vertices,
                  base.stats.per_step[s].active_vertices);
        EXPECT_EQ(r.stats.per_step[s].messages,
                  base.stats.per_step[s].messages);
      }
    }
  }
  ASSERT_EQ(unsetenv("GAL_TASK_THREADS"), 0);
}

// --- one runtime under three engines ----------------------------------------
// The tentpole contract: a TLAV job, a TLAG mining job and a dist-GNN
// training run sharing one ClusterRuntime charge one ledger and advance
// one clock, each attributing its own delta.

TEST(ClusterRuntimeTest, SharedRuntimeAccumulatesAcrossEngines) {
  PlantedDatasetOptions data_options;
  data_options.num_vertices = 200;
  NodeClassificationDataset ds = MakePlantedDataset(data_options);
  const Graph& g = ds.graph;
  ClusterRuntime runtime(ClusterOptions{4, {}});

  // TLAV job.
  TlavConfig tlav;
  tlav.cluster = &runtime;
  const WccResult wcc = Wcc(g, tlav);
  const TrafficSnapshot after_wcc = runtime.ledger().Snapshot();
  const size_t rounds_after_wcc = runtime.clock().rounds();
  EXPECT_EQ(wcc.stats.cross_worker_bytes, after_wcc.cross_bytes);
  EXPECT_GT(wcc.stats.cross_worker_bytes, 0u);
  EXPECT_GE(rounds_after_wcc, wcc.stats.supersteps);
  EXPECT_GT(wcc.stats.modeled_seconds, 0.0);
  EXPECT_DOUBLE_EQ(wcc.stats.modeled_seconds, runtime.clock().seconds());

  // TLAG mining job on the same runtime (reuses the installed partition).
  TaskEngineConfig task_config;
  task_config.num_threads = 3;
  task_config.cluster = &runtime;
  const TriangleCountResult tri = TaskTriangleCount(g, task_config);
  const TrafficSnapshot after_tri = runtime.ledger().Snapshot();
  EXPECT_EQ(tri.triangles, SerialTriangleCount(g).triangles);
  EXPECT_EQ(tri.migrated_bytes, after_tri.cross_bytes - after_wcc.cross_bytes);
  EXPECT_GT(tri.data_touched_bytes, 0u);
  EXPECT_GE(tri.data_touched_bytes, tri.migrated_bytes);
  EXPECT_EQ(runtime.clock().rounds(), rounds_after_wcc + 1);
  EXPECT_GT(tri.modeled_seconds, 0.0);

  // Dist-GNN training on the same runtime.
  DistGcnConfig gcn;
  gcn.cluster = &runtime;
  gcn.epochs = 2;
  gcn.hidden_dim = 4;
  const DistGcnReport report = TrainDistGcn(ds, gcn);
  const TrafficSnapshot after_gcn = runtime.ledger().Snapshot();
  EXPECT_EQ(report.comm_bytes, after_gcn.cross_bytes - after_tri.cross_bytes);
  EXPECT_GT(report.comm_bytes, 0u);
  EXPECT_EQ(runtime.clock().rounds(), rounds_after_wcc + 1 + gcn.epochs);
  EXPECT_GT(report.simulated_epoch_seconds, 0.0);

  // The shared clock accumulated every job's rounds.
  EXPECT_GT(runtime.clock().seconds(), wcc.stats.modeled_seconds);
}

}  // namespace
}  // namespace gal
