#include <cmath>

#include <gtest/gtest.h>

#include "gnn/dataset.h"
#include "graph/generators.h"
#include "nn/gcn.h"
#include "nn/optimizer.h"
#include "nn/sage_concat.h"
#include "tensor/sparse.h"

namespace gal {
namespace {

TEST(OptimizerTest, SgdMovesAgainstGradient) {
  Matrix w(1, 2);
  w.at(0, 0) = 1.0f;
  w.at(0, 1) = -1.0f;
  Sgd opt(0.1f);
  opt.Attach({&w});
  Matrix g(1, 2);
  g.at(0, 0) = 2.0f;
  g.at(0, 1) = -2.0f;
  opt.Step({g});
  EXPECT_FLOAT_EQ(w.at(0, 0), 0.8f);
  EXPECT_FLOAT_EQ(w.at(0, 1), -0.8f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize ||w - target||^2 by gradient steps.
  Matrix w(1, 3);
  Matrix target(1, 3);
  target.at(0, 0) = 1.0f;
  target.at(0, 1) = -2.0f;
  target.at(0, 2) = 0.5f;
  Adam opt(0.05f);
  opt.Attach({&w});
  for (int step = 0; step < 500; ++step) {
    Matrix g = w;
    g.AddScaled(target, -1.0f);  // grad = 2(w - t), constant dropped
    opt.Step({g});
  }
  EXPECT_LT(w.MeanAbsDiff(target), 0.02);
}

/// Numerical gradient check of the full GCN backward pass.
TEST(GcnModelTest, GradientsMatchFiniteDifferences) {
  Graph g = ErdosRenyi(12, 0.3, 5);
  SparseMatrix adj = NormalizedAdjacency(g, AdjNorm::kSymmetric);
  AggregateFn agg = ExactAggregator(&adj);

  Rng rng(3);
  Matrix x = Matrix::Xavier(12, 4, rng);
  std::vector<int32_t> labels(12);
  for (int i = 0; i < 12; ++i) labels[i] = i % 3;
  std::vector<uint8_t> mask(12, 1);

  GcnConfig config;
  config.dims = {4, 5, 3};
  config.seed = 11;
  GcnModel model(config);

  Matrix logits = model.Forward(x, agg);
  SoftmaxXentResult loss = SoftmaxCrossEntropy(logits, labels, mask);
  std::vector<Matrix> grads = model.Backward(loss.grad, agg);
  ASSERT_EQ(grads.size(), 2u);

  auto loss_at = [&]() {
    Matrix l = model.Forward(x, agg);
    return SoftmaxCrossEntropy(l, labels, mask).loss;
  };
  const float eps = 1e-3f;
  for (uint32_t layer = 0; layer < 2; ++layer) {
    Matrix& w = model.mutable_weights()[layer];
    // Spot-check a handful of entries.
    for (uint32_t probe = 0; probe < 6; ++probe) {
      const uint32_t i = probe % w.rows();
      const uint32_t j = (probe * 7) % w.cols();
      const float orig = w.at(i, j);
      w.at(i, j) = orig + eps;
      const double lp = loss_at();
      w.at(i, j) = orig - eps;
      const double lm = loss_at();
      w.at(i, j) = orig;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(numeric, grads[layer].at(i, j), 2e-3)
          << "layer " << layer << " (" << i << "," << j << ")";
    }
  }
}

TEST(GcnModelTest, TrainingLearnsPlantedCommunities) {
  PlantedDatasetOptions opt;
  opt.num_vertices = 400;
  opt.num_classes = 3;
  opt.feature_dim = 8;
  opt.noise = 1.5;
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  SparseMatrix adj = NormalizedAdjacency(ds.graph, AdjNorm::kSymmetric);
  AggregateFn agg = ExactAggregator(&adj);

  GcnConfig config;
  config.dims = {ds.features.cols(), 16, ds.num_classes};
  GcnModel model(config);
  TrainConfig train;
  train.epochs = 60;
  TrainReport report = TrainNodeClassifier(model, ds.features, ds.labels,
                                           ds.train_mask, ds.test_mask, agg,
                                           train);
  EXPECT_GT(report.final_test_accuracy, 0.85);
  // Loss decreased substantially.
  EXPECT_LT(report.epochs.back().loss, report.epochs.front().loss * 0.5);
}

TEST(GcnModelTest, AggregationBeatsRawFeatures) {
  // Under heavy feature noise, the graph is what carries the signal:
  // a GCN must beat the identity-aggregation (MLP) baseline.
  PlantedDatasetOptions opt;
  opt.num_vertices = 400;
  opt.num_classes = 4;
  opt.noise = 3.0;
  opt.p_in = 0.08;
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  SparseMatrix adj = NormalizedAdjacency(ds.graph, AdjNorm::kSymmetric);

  AggregateFn graph_agg = ExactAggregator(&adj);
  AggregateFn identity_agg = [](const Matrix& h, uint32_t, bool) {
    return h;
  };

  TrainConfig train;
  train.epochs = 60;
  GcnConfig config;
  config.dims = {ds.features.cols(), 16, ds.num_classes};

  GcnModel gcn(config);
  TrainReport with_graph = TrainNodeClassifier(
      gcn, ds.features, ds.labels, ds.train_mask, ds.test_mask, graph_agg,
      train);
  GcnModel mlp(config);
  TrainReport without_graph = TrainNodeClassifier(
      mlp, ds.features, ds.labels, ds.train_mask, ds.test_mask, identity_agg,
      train);
  EXPECT_GT(with_graph.final_test_accuracy,
            without_graph.final_test_accuracy + 0.1);
}

TEST(GcnModelTest, DeterministicForSeed) {
  NodeClassificationDataset ds = MakePlantedDataset({});
  SparseMatrix adj = NormalizedAdjacency(ds.graph, AdjNorm::kSymmetric);
  AggregateFn agg = ExactAggregator(&adj);
  TrainConfig train;
  train.epochs = 5;
  GcnConfig config;
  config.dims = {ds.features.cols(), 8, ds.num_classes};
  config.seed = 42;
  GcnModel a(config);
  GcnModel b(config);
  TrainReport ra = TrainNodeClassifier(a, ds.features, ds.labels,
                                       ds.train_mask, ds.test_mask, agg, train);
  TrainReport rb = TrainNodeClassifier(b, ds.features, ds.labels,
                                       ds.train_mask, ds.test_mask, agg, train);
  EXPECT_EQ(ra.final_test_accuracy, rb.final_test_accuracy);
  EXPECT_EQ(ra.epochs.back().loss, rb.epochs.back().loss);
}

// --- GraphSAGE concat model (the survey's layer equations) ----------------

TEST(SageConcatTest, GradientsMatchFiniteDifferences) {
  Graph g = ErdosRenyi(12, 0.3, 7);
  SparseMatrix adj = NormalizedAdjacency(g, AdjNorm::kNeighborMean);
  AggregateFn agg = ExactAggregator(&adj);

  Rng rng(5);
  Matrix x = Matrix::Xavier(12, 4, rng);
  std::vector<int32_t> labels(12);
  for (int i = 0; i < 12; ++i) labels[i] = i % 3;
  std::vector<uint8_t> mask(12, 1);

  GcnConfig config;
  config.dims = {4, 5, 3};
  config.seed = 13;
  SageConcatModel model(config);

  Matrix logits = model.Forward(x, agg);
  SoftmaxXentResult loss = SoftmaxCrossEntropy(logits, labels, mask);
  std::vector<Matrix> grads = model.Backward(loss.grad, agg);
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_EQ(grads[0].rows(), 8u);  // 2 * in_dim

  auto loss_at = [&]() {
    Matrix l = model.Forward(x, agg);
    return SoftmaxCrossEntropy(l, labels, mask).loss;
  };
  const float eps = 1e-3f;
  for (uint32_t layer = 0; layer < 2; ++layer) {
    Matrix& w = model.mutable_weights()[layer];
    for (uint32_t probe = 0; probe < 8; ++probe) {
      const uint32_t i = (probe * 3) % w.rows();
      const uint32_t j = (probe * 5) % w.cols();
      const float orig = w.at(i, j);
      w.at(i, j) = orig + eps;
      const double lp = loss_at();
      w.at(i, j) = orig - eps;
      const double lm = loss_at();
      w.at(i, j) = orig;
      EXPECT_NEAR((lp - lm) / (2 * eps), grads[layer].at(i, j), 2e-3)
          << "layer " << layer << " (" << i << "," << j << ")";
    }
  }
}

TEST(SageConcatTest, LearnsHomophilousCommunities) {
  PlantedDatasetOptions opt;
  opt.num_vertices = 400;
  opt.num_classes = 3;
  opt.noise = 1.5;
  NodeClassificationDataset ds = MakePlantedDataset(opt);
  SparseMatrix adj = NormalizedAdjacency(ds.graph, AdjNorm::kNeighborMean);
  AggregateFn agg = ExactAggregator(&adj);
  GcnConfig config;
  config.dims = {ds.features.cols(), 16, ds.num_classes};
  SageConcatModel model(config);
  TrainConfig train;
  train.epochs = 60;
  TrainReport report = TrainSageConcatClassifier(
      model, ds.features, ds.labels, ds.train_mask, ds.test_mask, agg, train);
  EXPECT_GT(report.final_test_accuracy, 0.85);
}

TEST(SageConcatTest, ConcatChannelRescuesSelfSignalLostByPureAggregation) {
  // Same neighbor-only aggregator for both models. The vertex's own
  // features carry the label; neighborhoods are label-random (edges
  // ignore classes), so a network that only sees AGGREGATE(h_N) loses
  // the signal, while CONCAT(h_v, h_N) keeps the dedicated self channel
  // — the architectural point of the survey's GraphSAGE equations.
  PlantedDatasetOptions opt;
  opt.num_vertices = 400;
  opt.num_classes = 4;
  opt.p_in = 0.02;
  opt.p_out = 0.02;  // class-independent edges: neighbors carry no label
  opt.signal = 1.5;
  opt.noise = 0.4;
  NodeClassificationDataset ds = MakePlantedDataset(opt);

  TrainConfig train;
  train.epochs = 60;
  // The label-random neighbor channel is pure memorization fodder on
  // ~200 training rows; regularize so the comparison is about signal.
  train.weight_decay = 0.02f;
  GcnConfig config;
  config.dims = {ds.features.cols(), 16, ds.num_classes};

  SparseMatrix nbr_adj = NormalizedAdjacency(ds.graph, AdjNorm::kNeighborMean);
  AggregateFn nbr_agg = ExactAggregator(&nbr_adj);

  GcnModel agg_only_model(config);
  TrainReport agg_only =
      TrainNodeClassifier(agg_only_model, ds.features, ds.labels,
                          ds.train_mask, ds.test_mask, nbr_agg, train);

  SageConcatModel concat_model(config);
  TrainReport concat = TrainSageConcatClassifier(
      concat_model, ds.features, ds.labels, ds.train_mask, ds.test_mask,
      nbr_agg, train);

  EXPECT_GT(concat.final_test_accuracy, 0.85);
  EXPECT_GT(concat.final_test_accuracy,
            agg_only.final_test_accuracy + 0.15);
}

TEST(SparseTest, NeighborMeanHasNoSelfLoopAndZeroRowsForIsolated) {
  Graph g = std::move(Graph::FromEdges(4, {{0, 1}, {1, 2}}, {}).value());
  SparseMatrix a = NormalizedAdjacency(g, AdjNorm::kNeighborMean);
  // Vertex 3 is isolated: empty row.
  EXPECT_EQ(a.RowIndices(3).size(), 0u);
  // Vertex 1 averages vertices 0 and 2 with weight 1/2, no self.
  auto idx = a.RowIndices(1);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);
  for (float w : a.RowValues(1)) EXPECT_FLOAT_EQ(w, 0.5f);
}

}  // namespace
}  // namespace gal
