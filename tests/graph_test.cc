#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/kcore.h"
#include "graph/transaction_db.h"

namespace gal {
namespace {

Graph MustBuild(VertexId n, std::vector<Edge> edges, GraphOptions opt = {}) {
  Result<Graph> g = Graph::FromEdges(n, std::move(edges), opt);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g.value());
}

// ---------------------------------------------------------------------------
// CSR construction

TEST(GraphTest, EmptyGraph) {
  Graph g = MustBuild(0, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, UndirectedStoresBothDirections) {
  Graph g = MustBuild(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.NumAdjacencyEntries(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(GraphTest, DirectedKeepsDirection) {
  GraphOptions opt;
  opt.directed = true;
  Graph g = MustBuild(3, {{0, 1}, {1, 2}}, opt);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(GraphTest, SelfLoopsRemovedByDefault) {
  Graph g = MustBuild(3, {{0, 0}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, DuplicatesCollapsedByDefault) {
  Graph g = MustBuild(2, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, NeighborsAreSorted) {
  Graph g = MustBuild(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  std::vector<VertexId> row;
  const auto nbrs = g.NeighborsInto(2, row);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(GraphTest, OutOfRangeEndpointRejected) {
  Result<Graph> g = Graph::FromEdges(2, {{0, 5}}, GraphOptions{});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, LabelsRoundTrip) {
  Graph g = MustBuild(3, {{0, 1}});
  EXPECT_FALSE(g.IsLabeled());
  EXPECT_TRUE(g.SetLabels({5, 6, 7}).ok());
  EXPECT_TRUE(g.IsLabeled());
  EXPECT_EQ(g.LabelOf(1), 6u);
  EXPECT_FALSE(g.SetLabels({1}).ok());
}

TEST(GraphTest, ReversedFlipsDirectedEdges) {
  GraphOptions opt;
  opt.directed = true;
  Graph g = MustBuild(3, {{0, 1}, {0, 2}}, opt);
  Graph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 0));
  EXPECT_FALSE(r.HasEdge(0, 1));
  EXPECT_EQ(r.NumEdges(), 2u);
}

TEST(GraphTest, ReversedOfUndirectedIsIdentical) {
  Graph g = MustBuild(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph r = g.Reversed();
  EXPECT_EQ(r.NumEdges(), g.NumEdges());
  std::vector<VertexId> row_a, row_b;
  for (VertexId v = 0; v < 4; ++v) {
    const auto a = g.NeighborsInto(v, row_a);
    const auto b = r.NeighborsInto(v, row_b);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(GraphTest, InducedSubgraphKeepsInternalEdges) {
  // Triangle 0-1-2 plus pendant 3.
  Graph g = MustBuild(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  std::vector<VertexId> vs = {0, 1, 2};
  Result<Graph> sub = g.InducedSubgraph(vs);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->NumVertices(), 3u);
  EXPECT_EQ(sub->NumEdges(), 3u);
}

TEST(GraphTest, InducedSubgraphRemapsAndCarriesLabels) {
  Graph g = MustBuild(4, {{1, 3}});
  ASSERT_TRUE(g.SetLabels({10, 11, 12, 13}).ok());
  std::vector<VertexId> vs = {3, 1};
  Result<Graph> sub = g.InducedSubgraph(vs);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->HasEdge(0, 1));
  EXPECT_EQ(sub->LabelOf(0), 13u);
  EXPECT_EQ(sub->LabelOf(1), 11u);
}

TEST(GraphTest, InducedSubgraphRejectsDuplicates) {
  Graph g = MustBuild(3, {{0, 1}});
  std::vector<VertexId> vs = {0, 0};
  EXPECT_FALSE(g.InducedSubgraph(vs).ok());
}

TEST(GraphTest, CollectEdgesRoundTripsUndirected) {
  std::vector<Edge> in = {{0, 1}, {1, 2}, {0, 3}};
  Graph g = MustBuild(4, in);
  std::vector<Edge> out = g.CollectEdges();
  std::sort(in.begin(), in.end());
  std::sort(out.begin(), out.end());
  EXPECT_EQ(in, out);
}

// ---------------------------------------------------------------------------
// Generators

TEST(GeneratorsTest, PathHasNMinusOneEdges) {
  Graph g = Path(10);
  EXPECT_EQ(g.NumEdges(), 9u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(5), 2u);
}

TEST(GeneratorsTest, CompleteGraphDegrees) {
  Graph g = Complete(6);
  EXPECT_EQ(g.NumEdges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 5u);
}

TEST(GeneratorsTest, StarHubDegree) {
  Graph g = Star(8);
  EXPECT_EQ(g.Degree(0), 7u);
  EXPECT_EQ(g.NumEdges(), 7u);
}

TEST(GeneratorsTest, CycleAllDegreeTwo) {
  Graph g = Cycle(5);
  EXPECT_EQ(g.NumEdges(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 2u);
}

TEST(GeneratorsTest, GridEdgeCount) {
  Graph g = Grid(3, 4);
  // 3 rows x 4 cols: horizontal 3*3, vertical 2*4.
  EXPECT_EQ(g.NumVertices(), 12u);
  EXPECT_EQ(g.NumEdges(), 17u);
}

TEST(GeneratorsTest, ErdosRenyiDeterministicAndPlausibleDensity) {
  Graph a = ErdosRenyi(500, 0.02, 42);
  Graph b = ErdosRenyi(500, 0.02, 42);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  const double expected = 0.02 * 500 * 499 / 2;
  EXPECT_NEAR(static_cast<double>(a.NumEdges()), expected, expected * 0.25);
}

TEST(GeneratorsTest, ErdosRenyiExtremes) {
  EXPECT_EQ(ErdosRenyi(100, 0.0, 1).NumEdges(), 0u);
  EXPECT_EQ(ErdosRenyi(10, 1.0, 1).NumEdges(), 45u);
}

TEST(GeneratorsTest, RmatProducesSkewedDegrees) {
  Graph g = Rmat(10, 8, 7);
  EXPECT_EQ(g.NumVertices(), 1024u);
  EXPECT_GT(g.NumEdges(), 1000u);
  // Power-law-ish: max degree far above average.
  const double avg = 2.0 * g.NumEdges() / g.NumVertices();
  EXPECT_GT(g.MaxDegree(), 4 * avg);
}

TEST(GeneratorsTest, BarabasiAlbertEdgeCount) {
  const VertexId n = 300;
  const uint32_t m = 3;
  Graph g = BarabasiAlbert(n, m, 5);
  // Seed clique edges + m per subsequent vertex (dedup may drop a few).
  const uint64_t expected = 6 + static_cast<uint64_t>(n - m - 1) * m;
  EXPECT_LE(g.NumEdges(), expected);
  EXPECT_GT(g.NumEdges(), expected * 9 / 10);
}

TEST(GeneratorsTest, PlantedPartitionLabelsAndAssortativity) {
  Graph g = PlantedPartition(200, 4, 0.2, 0.01, 3);
  ASSERT_TRUE(g.IsLabeled());
  uint64_t intra = 0;
  uint64_t inter = 0;
  for (const Edge& e : g.CollectEdges()) {
    (g.LabelOf(e.src) == g.LabelOf(e.dst) ? intra : inter) += 1;
  }
  EXPECT_GT(intra, inter);
}

TEST(GeneratorsTest, WattsStrogatzLatticeAndRewiring) {
  // beta = 0: exact ring lattice with n*k/2 edges and high clustering.
  Graph lattice = WattsStrogatz(100, 4, 0.0, 3);
  EXPECT_EQ(lattice.NumEdges(), 200u);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(lattice.Degree(v), 4u);
  EXPECT_TRUE(lattice.HasEdge(0, 1));
  EXPECT_TRUE(lattice.HasEdge(0, 2));
  EXPECT_FALSE(lattice.HasEdge(0, 3));
  // beta = 1: mostly random, loses lattice structure but keeps ~|E|.
  Graph random = WattsStrogatz(100, 4, 1.0, 3);
  EXPECT_GT(random.NumEdges(), 150u);
  // Determinism.
  Graph again = WattsStrogatz(100, 4, 0.3, 7);
  Graph again2 = WattsStrogatz(100, 4, 0.3, 7);
  EXPECT_EQ(again.CollectEdges(), again2.CollectEdges());
}

TEST(GeneratorsTest, WattsStrogatzClusteringDropsWithBeta) {
  // The small-world signature: rewiring destroys triangles.
  auto triangles = [](const Graph& g) {
    uint64_t count = 0;
    std::vector<VertexId> row;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const auto nv = g.NeighborsInto(v, row);
      for (VertexId u : nv) {
        if (u <= v) continue;
        for (VertexId w : nv) {
          if (w <= u) continue;
          count += g.HasEdge(u, w);
        }
      }
    }
    return count;
  };
  Graph ordered = WattsStrogatz(300, 6, 0.0, 5);
  Graph rewired = WattsStrogatz(300, 6, 0.8, 5);
  EXPECT_GT(triangles(ordered), 2 * triangles(rewired));
}

TEST(GeneratorsTest, WithRandomLabelsCoversAlphabet) {
  Graph g = WithRandomLabels(Complete(100), 5, 11);
  std::set<Label> seen(g.labels().begin(), g.labels().end());
  EXPECT_EQ(seen.size(), 5u);
}

// ---------------------------------------------------------------------------
// IO

TEST(IoTest, ParseEdgeListWithCommentsAndRemap) {
  Result<Graph> g = ParseEdgeList("# comment\n10 20\n20 30\n% other\n10 30\n");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
}

TEST(IoTest, ParseRejectsMalformedLine) {
  Result<Graph> g = ParseEdgeList("1 2\nbogus\n");
  EXPECT_FALSE(g.ok());
}

TEST(IoTest, SaveLoadRoundTrip) {
  Graph g = ErdosRenyi(50, 0.1, 9);
  const std::string path =
      (std::filesystem::temp_directory_path() / "gal_io_test.txt").string();
  ASSERT_TRUE(SaveEdgeListFile(g, path).ok());
  Result<Graph> loaded = LoadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  std::filesystem::remove(path);
}

TEST(IoTest, LoadMissingFileIsIOError) {
  Result<Graph> g = LoadEdgeListFile("/nonexistent/gal/file.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

TEST(IoTest, LoadStreamsCommentsBlanksAndMissingTrailingNewline) {
  // The streaming loader must keep ParseEdgeList's exact semantics:
  // '#'/'%' comments and blank lines skipped (but still counted for
  // line numbers), and a final line without '\n' still parsed.
  const std::string path =
      (std::filesystem::temp_directory_path() / "gal_io_stream_test.txt")
          .string();
  {
    std::ofstream out(path);
    out << "# header comment\n\n10 20\n% matrix-market style\n\n20 30\n10 30";
  }
  Result<Graph> g = LoadEdgeListFile(path);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  std::filesystem::remove(path);
}

TEST(IoTest, LoadReportsMalformedLineWithItsNumber) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gal_io_malformed_test.txt")
          .string();
  {
    std::ofstream out(path);
    out << "# comment\n1 2\nbogus line\n3 4\n";
  }
  Result<Graph> g = LoadEdgeListFile(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(g.status().message().find("line 3"), std::string::npos)
      << g.status();
  EXPECT_NE(g.status().message().find("bogus line"), std::string::npos);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// k-core / degeneracy / densest subgraph

TEST(KCoreTest, TriangleWithPendantCoreNumbers) {
  // Triangle 0-1-2, pendant 3 on 2.
  Graph g = MustBuild(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  std::vector<uint32_t> core = CoreNumbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
}

TEST(KCoreTest, CompleteGraphCoreIsNMinusOne) {
  Graph g = Complete(7);
  for (uint32_t c : CoreNumbers(g)) EXPECT_EQ(c, 6u);
  EXPECT_EQ(DegeneracyOrder(g).degeneracy, 6u);
}

TEST(KCoreTest, PathDegeneracyIsOne) {
  EXPECT_EQ(DegeneracyOrder(Path(50)).degeneracy, 1u);
}

TEST(KCoreTest, KCoreExtractsDensePart) {
  // Complete(5) with a path of 5 attached to vertex 0.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) edges.push_back({u, v});
  for (VertexId v = 5; v < 9; ++v) edges.push_back({v, static_cast<VertexId>(v - 5)});
  Graph g = MustBuild(9, edges);
  std::vector<VertexId> core3 = KCore(g, 3);
  EXPECT_EQ(core3.size(), 5u);
  for (VertexId v : core3) EXPECT_LT(v, 5u);
}

TEST(KCoreTest, DegeneracyOrderPropertyHolds) {
  // Property: in the peeling order, each vertex has <= degeneracy
  // neighbors appearing later.
  Graph g = Rmat(8, 8, 21);
  DegeneracyResult res = DegeneracyOrder(g);
  std::vector<uint32_t> pos(g.NumVertices());
  for (uint32_t i = 0; i < res.order.size(); ++i) pos[res.order[i]] = i;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint32_t later = 0;
    g.ForEachOutNeighbor(v, [&](VertexId u) { later += (pos[u] > pos[v]); });
    EXPECT_LE(later, res.degeneracy);
  }
}

TEST(KCoreTest, DensestSubgraphFindsPlantedClique) {
  // Sparse background + planted K6 on vertices 0..5.
  Graph bg = ErdosRenyi(100, 0.01, 4);
  std::vector<Edge> edges = bg.CollectEdges();
  for (VertexId u = 0; u < 6; ++u)
    for (VertexId v = u + 1; v < 6; ++v) edges.push_back({u, v});
  Graph g = MustBuild(100, edges);
  DensestSubgraphResult res = DensestSubgraphPeel(g);
  EXPECT_GE(res.density, 2.0);
  int clique_members = 0;
  for (VertexId v : res.vertices) clique_members += (v < 6);
  EXPECT_EQ(clique_members, 6);
}

// ---------------------------------------------------------------------------
// Transaction DB

TEST(TransactionDbTest, SyntheticMoleculeDbShape) {
  MoleculeDbOptions opt;
  opt.num_transactions = 50;
  TransactionDb db = SyntheticMoleculeDb(opt, 123);
  ASSERT_EQ(db.size(), 50u);
  int class0 = 0;
  for (const auto& t : db.transactions()) {
    EXPECT_EQ(t.graph.NumVertices(), opt.vertices_per_graph);
    EXPECT_TRUE(t.graph.IsLabeled());
    EXPECT_GE(t.class_label, 0);
    class0 += (t.class_label == 0);
  }
  EXPECT_EQ(class0, 25);
}

TEST(TransactionDbTest, Deterministic) {
  MoleculeDbOptions opt;
  opt.num_transactions = 10;
  TransactionDb a = SyntheticMoleculeDb(opt, 7);
  TransactionDb b = SyntheticMoleculeDb(opt, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].graph.NumEdges(), b[i].graph.NumEdges());
    EXPECT_EQ(a[i].graph.labels(), b[i].graph.labels());
  }
}

}  // namespace
}  // namespace gal
