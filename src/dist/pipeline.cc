#include "dist/pipeline.h"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace gal {

PipelineReport RunPipeline(const std::vector<PipelineStage>& stages,
                           uint32_t num_batches) {
  GAL_CHECK(!stages.empty());
  PipelineReport report;
  report.stage_busy_seconds.assign(stages.size(), 0.0);
  for (const PipelineStage& s : stages) report.stage_names.push_back(s.name);

  // Pass 1: serial.
  {
    Timer wall;
    for (uint32_t b = 0; b < num_batches; ++b) {
      for (size_t s = 0; s < stages.size(); ++s) {
        Timer t;
        stages[s].work(b);
        report.stage_busy_seconds[s] += t.ElapsedSeconds();
      }
    }
    report.serial_seconds = wall.ElapsedSeconds();
  }

  // Pass 2: pipelined — one thread per stage; stage s may process batch
  // b once stage s-1 finished batch b. progress[s] = batches completed
  // by stage s.
  {
    std::vector<uint32_t> progress(stages.size(), 0);
    std::mutex mu;
    std::condition_variable cv;
    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(stages.size());
    for (size_t s = 0; s < stages.size(); ++s) {
      threads.emplace_back([&, s] {
        for (uint32_t b = 0; b < num_batches; ++b) {
          if (s > 0) {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return progress[s - 1] > b; });
          }
          stages[s].work(b);
          {
            std::lock_guard<std::mutex> lock(mu);
            progress[s] = b + 1;
          }
          cv.notify_all();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    report.pipelined_seconds = wall.ElapsedSeconds();
  }

  report.speedup = report.pipelined_seconds > 0.0
                       ? report.serial_seconds / report.pipelined_seconds
                       : 1.0;
  return report;
}

}  // namespace gal
