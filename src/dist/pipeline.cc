#include "dist/pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"

namespace gal {

ModeledPipelineResult ModelPipelineSchedule(
    const std::vector<std::vector<double>>& busy) {
  GAL_CHECK(!busy.empty());
  const size_t num_stages = busy.size();
  const size_t num_batches = busy[0].size();
  for (const auto& row : busy) GAL_CHECK(row.size() == num_batches);

  ModeledPipelineResult result;
  result.stage_busy_seconds.assign(num_stages, 0.0);
  result.stage_fill_seconds.assign(num_stages, 0.0);
  result.stage_stall_seconds.assign(num_stages, 0.0);
  result.stage_drain_seconds.assign(num_stages, 0.0);
  if (num_batches == 0) return result;

  // finish[s] tracks stage s's finish time for the batch most recently
  // scheduled on it; prev_stage_finish[b] is only needed one batch at a
  // time, so a rolling column suffices.
  std::vector<double> finish(num_stages, 0.0);
  for (uint32_t b = 0; b < num_batches; ++b) {
    double upstream_done = 0.0;  // stage s-1's finish time for batch b
    double chain = 0.0;          // Σ_s busy[s][b], the batch's own chain
    for (size_t s = 0; s < num_stages; ++s) {
      const double t = busy[s][b];
      const double ready = finish[s];  // executor free (batch b-1 done)
      const double start = std::max(ready, upstream_done);
      if (b == 0) {
        result.stage_fill_seconds[s] = start;
      } else {
        result.stage_stall_seconds[s] += std::max(0.0, upstream_done - ready);
      }
      finish[s] = start + t;
      upstream_done = finish[s];
      result.stage_busy_seconds[s] += t;
      result.serial_seconds += t;
      chain += t;
    }
    result.critical_path_seconds = std::max(result.critical_path_seconds, chain);
  }
  result.pipelined_seconds = finish[num_stages - 1];
  for (size_t s = 0; s < num_stages; ++s) {
    result.stage_drain_seconds[s] = result.pipelined_seconds - finish[s];
    if (result.stage_busy_seconds[s] > result.bottleneck_busy_seconds) {
      result.bottleneck_busy_seconds = result.stage_busy_seconds[s];
      result.bottleneck_stage = s;
    }
  }
  result.speedup = result.pipelined_seconds > 0.0
                       ? result.serial_seconds / result.pipelined_seconds
                       : 1.0;
  return result;
}

std::string PipelineReport::Summary() const {
  std::ostringstream os;
  os << "measured " << measured_speedup << "x, modeled " << modeled_speedup
     << "x over " << stages.size() << " stages (bottleneck "
     << (bottleneck_stage < stage_names.size()
             ? stage_names[bottleneck_stage]
             : "?")
     << ", hw_concurrency " << hardware_concurrency
     << (overlap_feasible ? "" : " — overlap infeasible") << ")";
  return os.str();
}

PipelineReport RunPipeline(const std::vector<PipelineStage>& stages,
                           uint32_t num_batches) {
  GAL_CHECK(!stages.empty());
  PipelineReport report;
  report.hardware_concurrency = std::thread::hardware_concurrency();
  report.overlap_feasible =
      report.hardware_concurrency >= stages.size();
  report.stages.resize(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    report.stages[s].name = stages[s].name;
    report.stage_names.push_back(stages[s].name);
  }

  // Pass 1: serial, recording per-stage per-batch busy times — these
  // feed both the busy histograms and the modeled replay.
  std::vector<std::vector<double>> busy(
      stages.size(), std::vector<double>(num_batches, 0.0));
  std::vector<Histogram> busy_hist(stages.size());
  {
    Timer wall;
    for (uint32_t b = 0; b < num_batches; ++b) {
      for (size_t s = 0; s < stages.size(); ++s) {
        Timer t;
        stages[s].work(b);
        busy[s][b] = t.ElapsedSeconds();
        busy_hist[s].Observe(busy[s][b]);
        report.stages[s].serial_busy_seconds += busy[s][b];
      }
    }
    report.serial_seconds = wall.ElapsedSeconds();
  }

  // Modeled pipeline: replay the recorded times through the virtual
  // clock. Deterministic given the recorded times, and correct on any
  // core count (a 1-core host records valid busy times serially).
  ModeledPipelineResult modeled = ModelPipelineSchedule(busy);
  report.modeled_pipelined_seconds = modeled.pipelined_seconds;
  report.modeled_speedup = modeled.speedup;
  report.critical_path_seconds = modeled.critical_path_seconds;
  report.bottleneck_stage = modeled.bottleneck_stage;
  for (size_t s = 0; s < stages.size(); ++s) {
    report.stages[s].modeled_fill_seconds = modeled.stage_fill_seconds[s];
    report.stages[s].modeled_stall_seconds = modeled.stage_stall_seconds[s];
    report.stages[s].modeled_drain_seconds = modeled.stage_drain_seconds[s];
  }

  // Pass 2: pipelined — one thread per stage; stage s may process batch
  // b once stage s-1 finished batch b. progress[s] = batches completed
  // by stage s. Workers are pre-spawned and parked at a start line so
  // thread-creation overhead is not charged to the pipelined wall time.
  {
    std::vector<uint32_t> progress(stages.size(), 0);
    std::vector<double> pipelined_busy(stages.size(), 0.0);
    std::vector<Histogram> stall_hist(stages.size());
    std::mutex mu;
    std::condition_variable cv;
    bool go = false;
    std::vector<std::thread> threads;
    threads.reserve(stages.size());
    for (size_t s = 0; s < stages.size(); ++s) {
      threads.emplace_back([&, s] {
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return go; });
        }
        for (uint32_t b = 0; b < num_batches; ++b) {
          if (s > 0) {
            Timer wait;
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return progress[s - 1] > b; });
            lock.unlock();
            stall_hist[s].Observe(wait.ElapsedSeconds());
          } else {
            stall_hist[s].Observe(0.0);
          }
          Timer t;
          stages[s].work(b);
          pipelined_busy[s] += t.ElapsedSeconds();
          {
            std::lock_guard<std::mutex> lock(mu);
            progress[s] = b + 1;
          }
          cv.notify_all();
        }
      });
    }
    Timer wall;
    {
      std::lock_guard<std::mutex> lock(mu);
      go = true;
      wall.Reset();
    }
    cv.notify_all();
    for (std::thread& t : threads) t.join();
    report.pipelined_seconds = wall.ElapsedSeconds();
    for (size_t s = 0; s < stages.size(); ++s) {
      report.stages[s].pipelined_busy_seconds = pipelined_busy[s];
      report.stages[s].stall_p50_seconds = stall_hist[s].P50();
      report.stages[s].stall_p95_seconds = stall_hist[s].P95();
      report.stages[s].stall_max_seconds = stall_hist[s].Max();
    }
  }

  for (size_t s = 0; s < stages.size(); ++s) {
    report.stages[s].busy_p50_seconds = busy_hist[s].P50();
    report.stages[s].busy_p95_seconds = busy_hist[s].P95();
    report.stages[s].busy_max_seconds = busy_hist[s].Max();
  }
  report.measured_speedup = report.pipelined_seconds > 0.0
                                ? report.serial_seconds /
                                      report.pipelined_seconds
                                : 1.0;
  return report;
}

}  // namespace gal
