#include "dist/pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/core_budget.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/threadpool.h"
#include "common/timer.h"

namespace gal {

uint32_t ResolveStageExecutors(uint32_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("GAL_STAGE_EXECUTORS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<uint32_t>(v);
  }
  return 1;
}

ModeledStageSpec ModeledNetworkStage(const std::string& name,
                                     const NetworkCostModel& cost,
                                     const std::vector<uint64_t>& bytes,
                                     const std::vector<uint64_t>& messages,
                                     uint32_t executors) {
  GAL_CHECK(messages.empty() || messages.size() == bytes.size());
  ModeledStageSpec spec;
  spec.name = name;
  spec.executors = std::max(1u, executors);
  spec.busy.reserve(bytes.size());
  for (size_t b = 0; b < bytes.size(); ++b) {
    const uint64_t msgs = messages.empty() ? 1 : messages[b];
    spec.busy.push_back(cost.TransferSeconds(bytes[b], msgs));
  }
  return spec;
}

ModeledPipelineResult ModelClusterOverlap(
    const std::vector<ClusterRound>& rounds, const NetworkCostModel& cost,
    uint32_t comm_channels) {
  std::vector<ModeledStageSpec> stages(2);
  stages[0].name = "compute";
  stages[0].executors = 1;
  stages[0].busy.reserve(rounds.size());
  std::vector<uint64_t> bytes;
  std::vector<uint64_t> messages;
  bytes.reserve(rounds.size());
  messages.reserve(rounds.size());
  for (const ClusterRound& r : rounds) {
    stages[0].busy.push_back(r.compute_seconds);
    bytes.push_back(r.comm_bytes);
    messages.push_back(r.comm_messages);
  }
  stages[1] = ModeledNetworkStage("comm", cost, bytes, messages,
                                  std::max(1u, comm_channels));
  return ModelPipelineSchedule(stages);
}

ModeledPipelineResult ModelPipelineSchedule(
    const std::vector<std::vector<double>>& busy) {
  std::vector<ModeledStageSpec> stages(busy.size());
  for (size_t s = 0; s < busy.size(); ++s) {
    stages[s].busy = busy[s];
    stages[s].executors = 1;
  }
  return ModelPipelineSchedule(stages);
}

ModeledPipelineResult ModelPipelineSchedule(
    const std::vector<ModeledStageSpec>& stages) {
  GAL_CHECK(!stages.empty());
  const size_t num_stages = stages.size();
  const size_t num_batches = stages[0].busy.size();
  for (const ModeledStageSpec& s : stages) {
    GAL_CHECK(s.busy.size() == num_batches);
    GAL_CHECK(s.executors >= 1);
  }

  ModeledPipelineResult result;
  result.stage_executors.resize(num_stages);
  for (size_t s = 0; s < num_stages; ++s) {
    result.stage_executors[s] = stages[s].executors;
  }
  result.stage_busy_seconds.assign(num_stages, 0.0);
  result.stage_fill_seconds.assign(num_stages, 0.0);
  result.stage_stall_seconds.assign(num_stages, 0.0);
  result.stage_drain_seconds.assign(num_stages, 0.0);
  result.stage_occupancy.assign(num_stages, 0.0);
  if (num_batches == 0) return result;

  // Per-executor virtual-clock state, kept per stage so fill/stall/drain
  // can be settled once the global makespan is known.
  struct ExecutorClock {
    std::vector<double> free_at;  // when executor e can take its next batch
    std::vector<bool> started;
    std::vector<double> fill;
    std::vector<double> stall;
  };
  std::vector<ExecutorClock> clocks(num_stages);

  // prev_finish[b]: when stage s-1 finished batch b (all zeros for the
  // source stage). With k executors, a stage's batches no longer finish
  // in admission order, so the full column is kept per stage.
  std::vector<double> prev_finish(num_batches, 0.0);
  std::vector<double> cur_finish(num_batches, 0.0);
  for (size_t s = 0; s < num_stages; ++s) {
    const uint32_t k = stages[s].executors;
    ExecutorClock& clock = clocks[s];
    clock.free_at.assign(k, 0.0);
    clock.started.assign(k, false);
    clock.fill.assign(k, 0.0);
    clock.stall.assign(k, 0.0);
    // Batches are admitted in ascending order (batch-ordered handoff)
    // onto the earliest-free executor; lowest index wins ties so the
    // schedule is deterministic.
    for (uint32_t b = 0; b < num_batches; ++b) {
      uint32_t e = 0;
      for (uint32_t i = 1; i < k; ++i) {
        if (clock.free_at[i] < clock.free_at[e]) e = i;
      }
      const double upstream_done = prev_finish[b];
      const double start = std::max(clock.free_at[e], upstream_done);
      if (!clock.started[e]) {
        clock.started[e] = true;
        clock.fill[e] = start;
      } else {
        clock.stall[e] += std::max(0.0, upstream_done - clock.free_at[e]);
      }
      const double t = stages[s].busy[b];
      clock.free_at[e] = start + t;
      cur_finish[b] = clock.free_at[e];
      result.stage_busy_seconds[s] += t;
      result.serial_seconds += t;
    }
    std::swap(prev_finish, cur_finish);
  }
  // prev_finish now holds the last stage's finish column.
  double makespan = 0.0;
  for (uint32_t b = 0; b < num_batches; ++b) {
    makespan = std::max(makespan, prev_finish[b]);
  }
  result.pipelined_seconds = makespan;

  for (size_t s = 0; s < num_stages; ++s) {
    const uint32_t k = stages[s].executors;
    const ExecutorClock& clock = clocks[s];
    for (uint32_t e = 0; e < k; ++e) {
      if (clock.started[e]) {
        result.stage_fill_seconds[s] += clock.fill[e];
        result.stage_stall_seconds[s] += clock.stall[e];
        result.stage_drain_seconds[s] += makespan - clock.free_at[e];
      } else {
        // An executor that never got a batch idled the whole run waiting
        // for a first batch: all fill.
        result.stage_fill_seconds[s] += makespan;
      }
    }
    result.stage_occupancy[s] =
        makespan > 0.0
            ? result.stage_busy_seconds[s] / (static_cast<double>(k) * makespan)
            : 0.0;
    const double per_executor_busy =
        result.stage_busy_seconds[s] / static_cast<double>(k);
    if (per_executor_busy > result.bottleneck_busy_seconds) {
      result.bottleneck_busy_seconds = per_executor_busy;
      result.bottleneck_stage = s;
    }
  }

  // Latency critical path: longest single-batch chain (executor counts
  // cannot shorten a single batch's serial stage chain).
  for (uint32_t b = 0; b < num_batches; ++b) {
    double chain = 0.0;
    for (size_t s = 0; s < num_stages; ++s) chain += stages[s].busy[b];
    result.critical_path_seconds =
        std::max(result.critical_path_seconds, chain);
  }

  result.speedup = result.pipelined_seconds > 0.0
                       ? result.serial_seconds / result.pipelined_seconds
                       : 1.0;
  return result;
}

std::string PipelineReport::Summary() const {
  std::ostringstream os;
  os << "measured " << measured_speedup << "x, modeled " << modeled_speedup
     << "x over " << stages.size() << " stages / " << total_executors
     << " executors (bottleneck "
     << (bottleneck_stage < stage_names.size()
             ? stage_names[bottleneck_stage]
             : "?")
     << ", hw_concurrency " << hardware_concurrency
     << (overlap_feasible ? "" : " — overlap infeasible") << ")";
  return os.str();
}

namespace {

/// Shared state of one pipelined pass: per-stage bounded ready queues
/// with batch-ordered release. One mutex guards everything — executor
/// transitions are rare (per batch, not per element) and a single lock
/// keeps the handoff protocol trivially race-free under TSan.
struct PipelineRun {
  struct StageState {
    std::deque<uint32_t> ready;  // released, not yet taken (s > 0)
    size_t capacity = 2;         // bound on `ready`
    uint32_t next_admit = 0;     // source stage: next batch to hand out
    uint32_t taken = 0;          // batches handed to an executor
    std::vector<char> done;      // per-batch completion flags
    uint32_t released = 0;       // prefix of `done` already handed down
  };

  explicit PipelineRun(size_t num_stages, uint32_t num_batches)
      : batches(num_batches), stages(num_stages) {
    for (StageState& s : stages) s.done.assign(num_batches, 0);
  }

  /// Moves completed batches of stage s downstream, in batch order, up
  /// to the downstream queue bound. Call with `mu` held.
  void Release(size_t s) {
    if (s + 1 >= stages.size()) return;
    StageState& up = stages[s];
    StageState& down = stages[s + 1];
    while (up.released < batches && up.done[up.released] &&
           down.ready.size() < down.capacity) {
      down.ready.push_back(up.released);
      ++up.released;
    }
  }

  uint32_t batches;
  std::vector<StageState> stages;
  std::mutex mu;
  std::condition_variable cv;
  bool go = false;
};

}  // namespace

PipelineReport RunPipeline(const std::vector<PipelineStage>& stages,
                           uint32_t num_batches) {
  GAL_CHECK(!stages.empty());
  PipelineReport report;
  report.hardware_concurrency = std::thread::hardware_concurrency();
  report.stages.resize(stages.size());
  std::vector<uint32_t> executors(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    executors[s] = ResolveStageExecutors(stages[s].executors);
    report.total_executors += executors[s];
    report.stages[s].name = stages[s].name;
    report.stages[s].executors = executors[s];
    report.stage_names.push_back(stages[s].name);
  }
  report.overlap_feasible =
      report.hardware_concurrency >= report.total_executors;

  // Pass 1: serial, recording per-stage per-batch busy times — these
  // feed both the busy histograms and the modeled replay.
  std::vector<std::vector<double>> busy(
      stages.size(), std::vector<double>(num_batches, 0.0));
  std::vector<Histogram> busy_hist(stages.size());
  {
    Timer wall;
    for (uint32_t b = 0; b < num_batches; ++b) {
      for (size_t s = 0; s < stages.size(); ++s) {
        Timer t;
        stages[s].work(b);
        busy[s][b] = t.ElapsedSeconds();
        busy_hist[s].Observe(busy[s][b]);
        report.stages[s].serial_busy_seconds += busy[s][b];
      }
    }
    report.serial_seconds = wall.ElapsedSeconds();
  }

  // Modeled pipeline: replay the recorded times through the virtual
  // clock with the same executor counts the measured pass will use.
  // Deterministic given the recorded times, and correct on any core
  // count (a 1-core host records valid busy times serially).
  std::vector<ModeledStageSpec> specs(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    specs[s].name = stages[s].name;
    specs[s].busy = busy[s];
    specs[s].executors = executors[s];
  }
  ModeledPipelineResult modeled = ModelPipelineSchedule(specs);
  report.serial_stage_traces = specs;
  report.modeled_pipelined_seconds = modeled.pipelined_seconds;
  report.modeled_speedup = modeled.speedup;
  report.critical_path_seconds = modeled.critical_path_seconds;
  report.bottleneck_stage = modeled.bottleneck_stage;
  for (size_t s = 0; s < stages.size(); ++s) {
    report.stages[s].modeled_fill_seconds = modeled.stage_fill_seconds[s];
    report.stages[s].modeled_stall_seconds = modeled.stage_stall_seconds[s];
    report.stages[s].modeled_drain_seconds = modeled.stage_drain_seconds[s];
    report.stages[s].modeled_occupancy = modeled.stage_occupancy[s];
  }

  // Pass 2: pipelined on the two-level task-engine backend — a shared
  // ThreadPool hosts k_s long-running executors per stage; stage s may
  // process batch b once stage s-1 finished and *released* it
  // (batch-ordered handoff). Executors are pre-spawned and parked at a
  // start line so thread-creation overhead is not charged to the
  // pipelined wall time. The executor threads are leased from the
  // process CoreBudget for the duration of the pass, which shrinks the
  // fan-out of tensor kernels called inside stages accordingly.
  {
    PipelineRun run(stages.size(), num_batches);
    for (size_t s = 0; s < stages.size(); ++s) {
      run.stages[s].capacity = std::max<size_t>(2, 2 * executors[s]);
    }
    std::vector<Histogram> pipelined_hist(stages.size());
    std::vector<Histogram> stall_hist(stages.size());

    StageExecutorLease lease(report.total_executors);
    ThreadPool pool(report.total_executors);
    for (size_t s = 0; s < stages.size(); ++s) {
      for (uint32_t e = 0; e < executors[s]; ++e) {
        pool.Submit([&, s] {
          {
            std::unique_lock<std::mutex> lock(run.mu);
            run.cv.wait(lock, [&] { return run.go; });
          }
          for (;;) {
            Timer wait;
            uint32_t b = 0;
            {
              std::unique_lock<std::mutex> lock(run.mu);
              PipelineRun::StageState& st = run.stages[s];
              if (s == 0) {
                if (st.next_admit >= num_batches) break;
                b = st.next_admit++;
              } else {
                run.cv.wait(lock, [&] {
                  return !st.ready.empty() || st.taken == num_batches;
                });
                if (st.ready.empty()) break;
                b = st.ready.front();
                st.ready.pop_front();
                ++st.taken;
                // A slot freed up: pull more completed upstream batches
                // into this stage's queue, still in batch order.
                run.Release(s - 1);
                run.cv.notify_all();
              }
            }
            stall_hist[s].Observe(wait.ElapsedSeconds());
            {
              ScopedSpan span(&pipelined_hist[s]);
              stages[s].work(b);
            }
            {
              std::lock_guard<std::mutex> lock(run.mu);
              run.stages[s].done[b] = 1;
              run.Release(s);
            }
            run.cv.notify_all();
          }
        });
      }
    }
    Timer wall;
    {
      std::lock_guard<std::mutex> lock(run.mu);
      run.go = true;
      wall.Reset();
    }
    run.cv.notify_all();
    pool.Wait();
    report.pipelined_seconds = wall.ElapsedSeconds();
    for (size_t s = 0; s < stages.size(); ++s) {
      report.stages[s].pipelined_busy_seconds = pipelined_hist[s].sum();
      report.stages[s].occupancy =
          report.pipelined_seconds > 0.0
              ? pipelined_hist[s].sum() /
                    (static_cast<double>(executors[s]) *
                     report.pipelined_seconds)
              : 0.0;
      report.stages[s].stall_p50_seconds = stall_hist[s].P50();
      report.stages[s].stall_p95_seconds = stall_hist[s].P95();
      report.stages[s].stall_max_seconds = stall_hist[s].Max();
    }
  }

  for (size_t s = 0; s < stages.size(); ++s) {
    report.stages[s].busy_p50_seconds = busy_hist[s].P50();
    report.stages[s].busy_p95_seconds = busy_hist[s].P95();
    report.stages[s].busy_max_seconds = busy_hist[s].Max();
  }
  report.measured_speedup = report.pipelined_seconds > 0.0
                                ? report.serial_seconds /
                                      report.pipelined_seconds
                                : 1.0;
  return report;
}

}  // namespace gal
