#include "dist/cache.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace gal {

StaticFeatureCache::StaticFeatureCache(const Graph& g,
                                       const VertexPartition& parts,
                                       double cache_fraction)
    : parts_(&parts), num_vertices_(g.NumVertices()) {
  GAL_CHECK(cache_fraction >= 0.0 && cache_fraction <= 1.0);
  cached_.assign(static_cast<size_t>(parts.num_parts) * num_vertices_, 0);

  // Hottest vertices first.
  std::vector<VertexId> by_degree(num_vertices_);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](VertexId a, VertexId b) {
                     return g.Degree(a) > g.Degree(b);
                   });
  const uint64_t budget_per_worker =
      static_cast<uint64_t>(cache_fraction * num_vertices_);
  for (uint32_t w = 0; w < parts.num_parts; ++w) {
    uint64_t used = 0;
    for (VertexId v : by_degree) {
      if (used >= budget_per_worker) break;
      if (parts.assignment[v] == w) continue;  // already local
      cached_[static_cast<size_t>(w) * num_vertices_ + v] = 1;
      ++used;
    }
    cached_entries_ += used;
  }
}

bool StaticFeatureCache::Fetch(uint32_t worker, VertexId v) {
  GAL_DCHECK(worker < parts_->num_parts && v < num_vertices_);
  const bool hit =
      parts_->assignment[v] == worker ||
      cached_[static_cast<size_t>(worker) * num_vertices_ + v] != 0;
  if (hit) {
    ++hits_;
  } else {
    ++misses_;
  }
  return hit;
}

}  // namespace gal
