#include "dist/quantization.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gal {
namespace {

/// Per-row affine quantization to `levels` buckets and back.
Matrix AffineRoundTrip(const Matrix& m, uint32_t levels) {
  Matrix out(m.rows(), m.cols());
  for (uint32_t r = 0; r < m.rows(); ++r) {
    const float* src = m.row(r);
    float* dst = out.row(r);
    float lo = src[0];
    float hi = src[0];
    for (uint32_t c = 1; c < m.cols(); ++c) {
      lo = std::min(lo, src[c]);
      hi = std::max(hi, src[c]);
    }
    const float range = hi - lo;
    if (range <= 0.0f) {
      std::copy(src, src + m.cols(), dst);
      continue;
    }
    const float step = range / static_cast<float>(levels - 1);
    for (uint32_t c = 0; c < m.cols(); ++c) {
      const float q = std::round((src[c] - lo) / step);
      dst[c] = lo + q * step;
    }
  }
  return out;
}

/// fp32 -> fp16 -> fp32 round trip via bit manipulation (round-to-
/// nearest-even omitted; truncation is accurate enough for simulation).
float Fp16RoundTrip(float v) {
  union {
    float f;
    uint32_t u;
  } in{v};
  const uint32_t sign = (in.u >> 16) & 0x8000u;
  const int32_t exponent =
      static_cast<int32_t>((in.u >> 23) & 0xFF) - 127 + 15;
  uint32_t mantissa = (in.u >> 13) & 0x3FFu;
  uint16_t half;
  if (exponent <= 0) {
    half = static_cast<uint16_t>(sign);  // flush denormals to zero
  } else if (exponent >= 31) {
    half = static_cast<uint16_t>(sign | 0x7C00u);  // overflow to inf
  } else {
    half = static_cast<uint16_t>(sign | (exponent << 10) | mantissa);
  }
  // Back to fp32.
  const uint32_t s = (half & 0x8000u) << 16;
  const uint32_t e = (half >> 10) & 0x1Fu;
  const uint32_t f = half & 0x3FFu;
  union {
    uint32_t u;
    float fl;
  } out{0};
  if (e == 0) {
    out.u = s;  // zero (denormals flushed)
  } else if (e == 31) {
    out.u = s | 0x7F800000u | (f << 13);
  } else {
    out.u = s | ((e - 15 + 127) << 23) | (f << 13);
  }
  return out.fl;
}

}  // namespace

double BytesPerElement(Quantization scheme) {
  switch (scheme) {
    case Quantization::kNone:
      return 4.0;
    case Quantization::kFp16:
      return 2.0;
    case Quantization::kInt8:
      return 1.0;
    case Quantization::kInt4:
      return 0.5;
  }
  return 4.0;
}

uint64_t WireBytes(Quantization scheme, uint32_t rows, uint32_t cols) {
  const double payload =
      BytesPerElement(scheme) * static_cast<double>(rows) * cols;
  uint64_t metadata = 0;
  if (scheme == Quantization::kInt8 || scheme == Quantization::kInt4) {
    metadata = static_cast<uint64_t>(rows) * 8;  // fp32 scale + offset
  }
  return static_cast<uint64_t>(payload) + metadata;
}

Matrix QuantizeDequantize(const Matrix& m, Quantization scheme) {
  switch (scheme) {
    case Quantization::kNone:
      return m;
    case Quantization::kFp16: {
      Matrix out = m;
      out.Apply(Fp16RoundTrip);
      return out;
    }
    case Quantization::kInt8:
      return AffineRoundTrip(m, 256);
    case Quantization::kInt4:
      return AffineRoundTrip(m, 16);
  }
  return m;
}

Matrix ErrorCompensatedCodec::Transmit(const Matrix& m) {
  if (residual_.rows() != m.rows() || residual_.cols() != m.cols()) {
    residual_ = Matrix(m.rows(), m.cols());
  }
  Matrix corrected = m;
  corrected.AddScaled(residual_, 1.0f);
  Matrix received = QuantizeDequantize(corrected, scheme_);
  // residual = corrected - received.
  residual_ = corrected;
  residual_.AddScaled(received, -1.0f);
  return received;
}

}  // namespace gal
