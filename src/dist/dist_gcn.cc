#include "dist/dist_gcn.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <sstream>
#include <unordered_set>

#include "cluster/checkpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "dist/pipeline.h"
#include "nn/gcn.h"
#include "nn/optimizer.h"
#include "tensor/kernel_context.h"
#include "tensor/sparse.h"

namespace gal {

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kHash: return "hash";
    case PartitionScheme::kRange: return "range";
    case PartitionScheme::kLdg: return "ldg";
    case PartitionScheme::kMultilevel: return "multilevel";
    case PartitionScheme::kBfsVoronoi: return "bfs-voronoi";
  }
  return "?";
}

const char* SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kBsp: return "bsp";
    case SyncMode::kBoundedStaleness: return "bounded-staleness";
    case SyncMode::kSancus: return "sancus";
  }
  return "?";
}

const char* QuantizationName(Quantization scheme) {
  switch (scheme) {
    case Quantization::kNone: return "fp32";
    case Quantization::kFp16: return "fp16";
    case Quantization::kInt8: return "int8";
    case Quantization::kInt4: return "int4";
  }
  return "?";
}

std::string DistGcnReport::Summary() const {
  std::ostringstream os;
  os << "acc=" << final_test_accuracy << " comm=" << comm_bytes
     << "B halo_rows=" << halo_rows_exchanged << " skipped="
     << broadcasts_skipped << " sim_epoch_s=" << simulated_epoch_seconds
     << " modeled_overlap_s=" << modeled_overlap_epoch_seconds
     << " modeled_overlap=" << modeled_overlap_speedup << "x ("
     << (overlap_bottleneck_stage == 0 ? "compute" : "comm")
     << "-bound)";
  return os.str();
}

VertexPartition MakePartition(const Graph& g, PartitionScheme scheme,
                              uint32_t num_parts,
                              const std::vector<VertexId>& seeds) {
  switch (scheme) {
    case PartitionScheme::kHash:
      return HashPartition(g, num_parts);
    case PartitionScheme::kRange:
      return RangePartition(g, num_parts);
    case PartitionScheme::kLdg:
      return LdgPartition(g, num_parts);
    case PartitionScheme::kMultilevel:
      return MultilevelPartition(g, num_parts);
    case PartitionScheme::kBfsVoronoi:
      return BfsVoronoiPartition(g, num_parts, seeds);
  }
  return HashPartition(g, num_parts);
}

std::vector<std::vector<VertexId>> ComputeHalos(const Graph& g,
                                                const VertexPartition& parts) {
  std::vector<std::unordered_set<VertexId>> halo_sets(parts.num_parts);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint32_t owner = parts.assignment[v];
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (parts.assignment[u] != owner) halo_sets[owner].insert(u);
    });
  }
  std::vector<std::vector<VertexId>> halos(parts.num_parts);
  for (uint32_t w = 0; w < parts.num_parts; ++w) {
    halos[w].assign(halo_sets[w].begin(), halo_sets[w].end());
    std::sort(halos[w].begin(), halos[w].end());
  }
  return halos;
}

namespace {

/// Splits the normalized adjacency into intra-worker and cross-worker
/// entry sets, so aggregation can mix fresh local rows with
/// policy-transformed remote rows.
void SplitAdjacency(const Graph& g, const VertexPartition& parts,
                    AdjNorm norm, SparseMatrix* local, SparseMatrix* remote) {
  const uint32_t n = g.NumVertices();
  SparseMatrix full = NormalizedAdjacency(g, norm);
  std::vector<std::tuple<uint32_t, uint32_t, float>> local_t;
  std::vector<std::tuple<uint32_t, uint32_t, float>> remote_t;
  for (uint32_t r = 0; r < n; ++r) {
    const auto idx = full.RowIndices(r);
    const auto val = full.RowValues(r);
    for (size_t e = 0; e < idx.size(); ++e) {
      if (parts.assignment[r] == parts.assignment[idx[e]]) {
        local_t.emplace_back(r, idx[e], val[e]);
      } else {
        remote_t.emplace_back(r, idx[e], val[e]);
      }
    }
  }
  *local = SparseMatrix::FromTriplets(n, n, std::move(local_t));
  *remote = SparseMatrix::FromTriplets(n, n, std::move(remote_t));
}

/// Per-(layer, direction) stale store + codec state. (Not to be confused
/// with the cluster ExchangeChannel<M>, which moves typed BSP messages —
/// this is the *staleness* side of a halo exchange: the receiver-view
/// copy a sync policy may decline to refresh.)
struct StaleChannel {
  Matrix stale;              // last transmitted version (receiver view)
  bool initialized = false;
  std::unique_ptr<ErrorCompensatedCodec> codec;  // when EC is on
};

}  // namespace

DistGcnReport TrainDistGcn(const NodeClassificationDataset& dataset,
                           const DistGcnConfig& config) {
  DistGcnReport report;
  const Graph& g = dataset.graph;

  // The simulated-cluster substrate: a caller-shared runtime puts this
  // job's traffic on the same ledger/clock as TLAV and TLAG jobs; the
  // private fallback keeps standalone runs self-contained.
  std::unique_ptr<ClusterRuntime> owned_cluster;
  ClusterRuntime* cluster = config.cluster;
  if (cluster == nullptr) {
    owned_cluster = std::make_unique<ClusterRuntime>(
        ClusterOptions{config.num_workers, config.network});
    cluster = owned_cluster.get();
  }
  const uint32_t num_workers = cluster->num_workers();
  const NetworkCostModel cost = cluster->cost_model();
  TrafficLedger& ledger = cluster->ledger();
  const TrafficSnapshot run_start = ledger.Snapshot();
  const size_t clock_start = cluster->clock().rounds();

  VertexPartition parts = MakePartition(g, config.partition, num_workers,
                                        dataset.TrainVertices());
  report.edge_cut = EvaluatePartition(g, parts).edge_cut;
  std::vector<std::vector<VertexId>> halos = ComputeHalos(g, parts);
  uint64_t halo_rows_per_exchange = 0;
  for (const auto& h : halos) halo_rows_per_exchange += h.size();

  SparseMatrix adj_local;
  SparseMatrix adj_remote;
  SplitAdjacency(g, parts, AdjNorm::kSymmetric, &adj_local, &adj_remote);
  cluster->InstallPartition(parts);

  GcnConfig model_config;
  model_config.dims = {dataset.features.cols(), config.hidden_dim,
                       dataset.num_classes};
  model_config.seed = config.seed;
  GcnModel model(model_config);
  Adam opt(config.lr);
  opt.Attach(model.Parameters());

  const uint32_t num_layers = model.num_layers();
  std::vector<StaleChannel> forward_channels(num_layers);
  std::vector<StaleChannel> backward_channels(num_layers);
  if (config.error_compensation) {
    for (uint32_t l = 0; l < num_layers; ++l) {
      forward_channels[l].codec =
          std::make_unique<ErrorCompensatedCodec>(config.quantization);
      backward_channels[l].codec =
          std::make_unique<ErrorCompensatedCodec>(config.quantization);
    }
  }

  uint32_t epoch = 0;

  // --- elastic cluster runtime: checkpoint serialization ----------------
  // The recovery-relevant trainer state is the model weights, the Adam
  // step count + moments, and every stale channel (its receiver-view
  // matrix, initialized flag, and — under EC — the codec's carried
  // residual). Training is epoch-deterministic given that state, so a
  // rollback + replay reproduces the failure-free run bit-for-bit.
  auto write_matrix = [](BlobWriter& w, const Matrix& m) {
    w.Pod<uint32_t>(m.rows());
    w.Pod<uint32_t>(m.cols());
    w.Vec(m.data());
  };
  auto read_matrix = [](BlobReader& r) {
    const uint32_t rows = r.Pod<uint32_t>();
    const uint32_t cols = r.Pod<uint32_t>();
    Matrix m(rows, cols);
    std::vector<float> data = r.Vec<float>();
    GAL_CHECK(data.size() == m.size()) << "checkpoint matrix shape mismatch";
    m.data() = std::move(data);
    return m;
  };
  auto serialize_state = [&]() {
    BlobWriter w;
    for (const Matrix* p : model.Parameters()) write_matrix(w, *p);
    w.Pod<uint64_t>(opt.step_count());
    w.Pod<uint64_t>(opt.first_moments().size());
    for (const Matrix& m : opt.first_moments()) write_matrix(w, m);
    for (const Matrix& m : opt.second_moments()) write_matrix(w, m);
    auto write_channels = [&](const std::vector<StaleChannel>& channels) {
      for (const StaleChannel& ch : channels) {
        w.Pod<uint8_t>(ch.initialized ? 1 : 0);
        write_matrix(w, ch.stale);
        if (ch.codec != nullptr) write_matrix(w, ch.codec->residual());
      }
    };
    write_channels(forward_channels);
    write_channels(backward_channels);
    return std::move(w).Take();
  };
  auto restore_state = [&](const std::vector<uint8_t>& blob) {
    BlobReader r(blob);
    for (Matrix* p : model.Parameters()) *p = read_matrix(r);
    const uint64_t t = r.Pod<uint64_t>();
    const uint64_t moments = r.Pod<uint64_t>();
    std::vector<Matrix> m(moments);
    std::vector<Matrix> v(moments);
    for (Matrix& mm : m) mm = read_matrix(r);
    for (Matrix& vv : v) vv = read_matrix(r);
    opt.RestoreState(t, std::move(m), std::move(v));
    auto read_channels = [&](std::vector<StaleChannel>& channels) {
      for (StaleChannel& ch : channels) {
        ch.initialized = r.Pod<uint8_t>() != 0;
        ch.stale = read_matrix(r);
        if (ch.codec != nullptr) ch.codec->set_residual(read_matrix(r));
      }
    };
    read_channels(forward_channels);
    read_channels(backward_channels);
    GAL_CHECK(r.exhausted()) << "trailing bytes in dist-GCN checkpoint";
  };

  // Charges one cluster-wide halo exchange of `mat` to the ledger.
  auto charge_exchange = [&](uint32_t cols) {
    // Receiver-side accounting: each worker receives its halo rows from
    // the owners; we charge the aggregate volume on a ring of pairs.
    const uint64_t bytes = WireBytes(
        config.quantization, static_cast<uint32_t>(halo_rows_per_exchange),
        cols);
    // Spread across worker pairs for the ledger (volume is what
    // matters for the benches; per-pair split is uniform). At W=1 the
    // ring charge is src==dst, which the ledger books as local — the
    // single-worker run stays communication-free on the wire.
    for (uint32_t w = 0; w < num_workers; ++w) {
      ledger.Charge(w, (w + 1) % num_workers,
                    bytes / std::max(1u, num_workers));
    }
    report.halo_rows_exchanged += halo_rows_per_exchange;
    ++report.broadcasts_sent;
  };

  // Policy: should this (epoch, channel) refresh its stale copy?
  auto should_refresh = [&](const StaleChannel& ch,
                            const Matrix& fresh) -> bool {
    if (!ch.initialized) return true;
    switch (config.sync) {
      case SyncMode::kBsp:
        return true;
      case SyncMode::kBoundedStaleness:
        return epoch % std::max(1u, config.staleness_bound) == 0;
      case SyncMode::kSancus: {
        // Drift of the fresh activations vs the last broadcast copy,
        // relative to the activation scale.
        const double drift = fresh.MeanAbsDiff(ch.stale);
        double scale = 0.0;
        for (float v : fresh.data()) scale += std::abs(v);
        scale = fresh.size() ? scale / static_cast<double>(fresh.size()) : 0.0;
        return drift > config.sancus_drift_threshold * std::max(scale, 1e-12);
      }
    }
    return true;
  };

  auto exchange = [&](StaleChannel& ch, const Matrix& fresh) -> Matrix* {
    if (should_refresh(ch, fresh)) {
      Matrix received = ch.codec
                            ? ch.codec->Transmit(fresh)
                            : QuantizeDequantize(fresh, config.quantization);
      ch.stale = std::move(received);
      ch.initialized = true;
      charge_exchange(fresh.cols());
    } else {
      ++report.broadcasts_skipped;
    }
    return &ch.stale;
  };

  AggregateFn aggregate = [&](const Matrix& h, uint32_t layer,
                              bool backward) -> Matrix {
    StaleChannel& ch =
        backward ? backward_channels[layer] : forward_channels[layer];
    if (!backward && layer == 0 && config.p3_feature_split) {
      // P3 hybrid parallelism: features are dimension-partitioned, so no
      // raw-feature halo exchange happens at all; instead each worker
      // produces a partial (|V| x hidden) aggregate that is all-reduced.
      // The math is identical (Σ_w Â H[:,w] W[w,:] = Â H W); only the
      // traffic differs.
      const uint64_t partial_bytes = static_cast<uint64_t>(g.NumVertices()) *
                                     config.hidden_dim * sizeof(float);
      // Ring all-reduce: 2 (W-1)/W of the payload per worker.
      for (uint32_t w = 0; w < num_workers; ++w) {
        ledger.Charge(w, (w + 1) % num_workers,
                      2 * partial_bytes * (num_workers - 1) /
                          std::max(1u, num_workers));
      }
      ++report.broadcasts_sent;
      Matrix out = adj_local.Multiply(h);
      out.AddScaled(adj_remote.Multiply(h), 1.0f);  // exact: Σ partials
      return out;
    }
    Matrix* remote_view = exchange(ch, h);
    Matrix out = backward ? adj_local.TransposeMultiply(h)
                          : adj_local.Multiply(h);
    Matrix remote_part = backward
                             ? adj_remote.TransposeMultiply(*remote_view)
                             : adj_remote.Multiply(*remote_view);
    out.AddScaled(remote_part, 1.0f);
    return out;
  };

  // Per-epoch span histograms: the GNN "stages" of one training step.
  Histogram forward_hist;
  Histogram backward_hist;
  Histogram step_hist;
  // Kernel-class attribution: pre-warm the shared pool so worker spawn
  // lands outside the timed epochs, and restart the per-kernel spans so
  // report.kernel_timings covers exactly this run.
  KernelContext& kernel_ctx = KernelContext::Get();
  kernel_ctx.ResetKernelStats();
  // Each epoch is one VirtualClock round: the data-parallel compute
  // share plus the ledger's cross-worker traffic delta. The clock's
  // recorded rounds are replayed through the modeled pipeline executor
  // (ModelClusterOverlap) after the loop and also kept on the report as
  // traces for benches.
  TrafficSnapshot prev = run_start;
  // The fault-tolerance driver (cluster/checkpoint.h). Rebalancing is
  // applied only when migrating vertices cannot change the math: under
  // staleness, lossy wires, EC residuals, or P3's dimension split, the
  // set of values crossing the wire depends on the partition, so a
  // migration would perturb training — those configs keep their
  // partition and rely on checkpoints alone.
  RecoverySession session(cluster, config.faults);
  const bool can_rebalance = config.sync == SyncMode::kBsp &&
                             config.quantization == Quantization::kNone &&
                             !config.error_compensation &&
                             !config.p3_feature_split;
  if (session.WantsInitialCheckpoint()) {
    session.Commit(RecoverySession::kInitialRound, serialize_state());
    prev = ledger.Snapshot();
  }
  while (epoch < config.epochs) {
    Timer compute_timer;
    Matrix logits = [&] {
      ScopedSpan span(&forward_hist);
      return model.Forward(dataset.features, aggregate);
    }();
    SoftmaxXentResult train =
        SoftmaxCrossEntropy(logits, dataset.labels, dataset.train_mask);
    std::vector<Matrix> grads = [&] {
      ScopedSpan span(&backward_hist);
      return model.Backward(train.grad, aggregate);
    }();
    {
      ScopedSpan span(&step_hist);
      opt.Step(grads);
    }
    // Data-parallel compute: each worker handles ~1/W of the rows.
    // Scheduled stragglers stretch their worker's share before the
    // round hits the clock (the span-form AdvanceRound takes the max).
    const double epoch_compute =
        compute_timer.ElapsedSeconds() / std::max(1u, num_workers);
    std::vector<double> worker_compute(num_workers, epoch_compute);
    session.ScaleCompute(epoch, std::span<double>(worker_compute));

    SoftmaxXentResult test =
        SoftmaxCrossEntropy(logits, dataset.labels, dataset.test_mask);
    report.epoch_loss.push_back(train.loss);
    report.epoch_test_accuracy.push_back(
        test.total ? static_cast<double>(test.correct) / test.total : 0.0);

    const TrafficSnapshot snap = ledger.Snapshot();
    const uint64_t epoch_bytes = snap.cross_bytes - prev.cross_bytes;
    const uint64_t epoch_msgs = snap.cross_messages - prev.cross_messages;
    prev = snap;
    // One BSP round on the shared clock. Messages floor at 1 so an
    // epoch always pays at least one latency envelope, matching the
    // pre-cluster accounting.
    cluster->clock().AdvanceRound(std::span<const double>(worker_compute),
                                  epoch_bytes,
                                  std::max<uint64_t>(epoch_msgs, 1));

    // Checkpoint / failure / rebalance barrier. The session charges its
    // own ledger bytes and clock rounds, so `prev` re-snapshots after
    // any commit or restore — checkpoint traffic must not leak into the
    // next epoch's halo-exchange delta.
    if (session.ShouldCheckpoint(epoch)) {
      session.Commit(epoch, serialize_state());
      prev = ledger.Snapshot();
    }
    uint32_t resume_epoch = 0;
    if (const std::vector<uint8_t>* blob =
            session.OnFailure(epoch, &resume_epoch)) {
      restore_state(*blob);
      report.epoch_loss.resize(resume_epoch);
      report.epoch_test_accuracy.resize(resume_epoch);
      epoch = resume_epoch;
      prev = ledger.Snapshot();
      continue;
    }
    if (can_rebalance && config.faults.rebalance().enabled &&
        num_workers > 1) {
      std::vector<double> worker_load(num_workers, 0.0);
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        worker_load[parts.assignment[v]] += 1.0;
      }
      const uint32_t straggler = session.RebalanceCandidate(
          epoch, std::span<const double>(worker_load));
      if (straggler != RecoverySession::kNoWorker) {
        std::vector<VertexId> moved;
        parts = RebalanceAway(g, parts, straggler,
                              config.faults.rebalance().migrate_fraction,
                              &moved);
        // Moved state on the wire: each vertex's raw feature row ships
        // to its new owner (embeddings are recomputed, not shipped).
        const uint64_t row_bytes =
            static_cast<uint64_t>(dataset.features.cols()) * sizeof(float);
        std::vector<uint64_t> dst_bytes(num_workers, 0);
        for (VertexId v : moved) dst_bytes[parts.assignment[v]] += row_bytes;
        std::vector<std::pair<uint32_t, uint64_t>> per_dst;
        for (uint32_t w = 0; w < num_workers; ++w) {
          if (dst_bytes[w] > 0) per_dst.emplace_back(w, dst_bytes[w]);
        }
        session.CommitMigration(straggler, per_dst, moved.size());
        halos = ComputeHalos(g, parts);
        halo_rows_per_exchange = 0;
        for (const auto& h : halos) halo_rows_per_exchange += h.size();
        SplitAdjacency(g, parts, AdjNorm::kSymmetric, &adj_local,
                       &adj_remote);
        cluster->InstallPartition(parts);
        report.edge_cut = EvaluatePartition(g, parts).edge_cut;
        prev = ledger.Snapshot();
      }
    }
    ++epoch;
  }

  const FaultStats& fault_stats = session.stats();
  report.checkpoints_taken = fault_stats.checkpoints_taken;
  report.checkpoint_bytes = fault_stats.checkpoint_bytes;
  report.restored_bytes = fault_stats.restored_bytes;
  report.failures_recovered = fault_stats.failures_recovered;
  report.recomputed_epochs = fault_stats.recomputed_rounds;
  report.rebalances = fault_stats.rebalances;
  report.migration_bytes = fault_stats.migration_bytes;

  report.stage_timings = {
      StageTimingStat::FromHistogram("forward", forward_hist),
      StageTimingStat::FromHistogram("backward", backward_hist),
      StageTimingStat::FromHistogram("step", step_hist),
  };
  report.kernel_timings = kernel_ctx.KernelStats();

  // Everything timing-related below derives from the clock's recorded
  // rounds — the report's traces, totals, and overlap numbers all read
  // one trace, and a caller-shared clock attributes only this job's
  // rounds (from `clock_start`).
  const std::vector<ClusterRound> rounds =
      cluster->clock().RoundsSince(clock_start);
  for (const ClusterRound& r : rounds) {
    report.compute_seconds += r.compute_seconds;
    report.comm_seconds += r.comm_seconds;
    report.epoch_compute_trace.push_back(r.compute_seconds);
    report.epoch_comm_bytes.push_back(r.comm_bytes);
    report.epoch_comm_messages.push_back(r.comm_messages);
  }
  if (!rounds.empty()) {
    // Epochs flow through the 2-stage compute -> comm modeled pipeline;
    // the comm stage is a modeled network stage charged NetworkCostModel
    // time for each round's recorded traffic, on `comm_channels` modeled
    // executors. The modeled makespan is what a pipelined system
    // (P3/Dorylus-style overlap) would pay, regardless of this host's
    // core count.
    ModeledPipelineResult overlap =
        ModelClusterOverlap(rounds, cost, std::max(1u, config.comm_channels));
    report.simulated_epoch_seconds = config.overlap_comm_compute
                                         ? overlap.pipelined_seconds
                                         : overlap.serial_seconds;
    report.modeled_overlap_epoch_seconds = overlap.pipelined_seconds;
    report.modeled_overlap_speedup = overlap.speedup;
    report.overlap_bottleneck_stage =
        static_cast<uint32_t>(overlap.bottleneck_stage);
    report.overlap_stage_occupancy = overlap.stage_occupancy;
  }

  Matrix logits = model.Forward(dataset.features, aggregate);
  SoftmaxXentResult test =
      SoftmaxCrossEntropy(logits, dataset.labels, dataset.test_mask);
  report.final_test_accuracy =
      test.total ? static_cast<double>(test.correct) / test.total : 0.0;
  report.comm_bytes = ledger.Snapshot().cross_bytes - run_start.cross_bytes;
  return report;
}

}  // namespace gal
