#include "dist/dist_gcn.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <unordered_set>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "dist/pipeline.h"
#include "nn/gcn.h"
#include "nn/optimizer.h"
#include "tensor/kernel_context.h"
#include "tensor/sparse.h"

namespace gal {

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kHash: return "hash";
    case PartitionScheme::kRange: return "range";
    case PartitionScheme::kLdg: return "ldg";
    case PartitionScheme::kMultilevel: return "multilevel";
    case PartitionScheme::kBfsVoronoi: return "bfs-voronoi";
  }
  return "?";
}

const char* SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kBsp: return "bsp";
    case SyncMode::kBoundedStaleness: return "bounded-staleness";
    case SyncMode::kSancus: return "sancus";
  }
  return "?";
}

const char* QuantizationName(Quantization scheme) {
  switch (scheme) {
    case Quantization::kNone: return "fp32";
    case Quantization::kFp16: return "fp16";
    case Quantization::kInt8: return "int8";
    case Quantization::kInt4: return "int4";
  }
  return "?";
}

std::string DistGcnReport::Summary() const {
  std::ostringstream os;
  os << "acc=" << final_test_accuracy << " comm=" << comm_bytes
     << "B halo_rows=" << halo_rows_exchanged << " skipped="
     << broadcasts_skipped << " sim_epoch_s=" << simulated_epoch_seconds
     << " modeled_overlap_s=" << modeled_overlap_epoch_seconds
     << " modeled_overlap=" << modeled_overlap_speedup << "x ("
     << (overlap_bottleneck_stage == 0 ? "compute" : "comm")
     << "-bound)";
  return os.str();
}

VertexPartition MakePartition(const Graph& g, PartitionScheme scheme,
                              uint32_t num_parts,
                              const std::vector<VertexId>& seeds) {
  switch (scheme) {
    case PartitionScheme::kHash:
      return HashPartition(g, num_parts);
    case PartitionScheme::kRange:
      return RangePartition(g, num_parts);
    case PartitionScheme::kLdg:
      return LdgPartition(g, num_parts);
    case PartitionScheme::kMultilevel:
      return MultilevelPartition(g, num_parts);
    case PartitionScheme::kBfsVoronoi:
      return BfsVoronoiPartition(g, num_parts, seeds);
  }
  return HashPartition(g, num_parts);
}

std::vector<std::vector<VertexId>> ComputeHalos(const Graph& g,
                                                const VertexPartition& parts) {
  std::vector<std::unordered_set<VertexId>> halo_sets(parts.num_parts);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint32_t owner = parts.assignment[v];
    for (VertexId u : g.Neighbors(v)) {
      if (parts.assignment[u] != owner) halo_sets[owner].insert(u);
    }
  }
  std::vector<std::vector<VertexId>> halos(parts.num_parts);
  for (uint32_t w = 0; w < parts.num_parts; ++w) {
    halos[w].assign(halo_sets[w].begin(), halo_sets[w].end());
    std::sort(halos[w].begin(), halos[w].end());
  }
  return halos;
}

namespace {

/// Splits the normalized adjacency into intra-worker and cross-worker
/// entry sets, so aggregation can mix fresh local rows with
/// policy-transformed remote rows.
void SplitAdjacency(const Graph& g, const VertexPartition& parts,
                    AdjNorm norm, SparseMatrix* local, SparseMatrix* remote) {
  const uint32_t n = g.NumVertices();
  SparseMatrix full = NormalizedAdjacency(g, norm);
  std::vector<std::tuple<uint32_t, uint32_t, float>> local_t;
  std::vector<std::tuple<uint32_t, uint32_t, float>> remote_t;
  for (uint32_t r = 0; r < n; ++r) {
    const auto idx = full.RowIndices(r);
    const auto val = full.RowValues(r);
    for (size_t e = 0; e < idx.size(); ++e) {
      if (parts.assignment[r] == parts.assignment[idx[e]]) {
        local_t.emplace_back(r, idx[e], val[e]);
      } else {
        remote_t.emplace_back(r, idx[e], val[e]);
      }
    }
  }
  *local = SparseMatrix::FromTriplets(n, n, std::move(local_t));
  *remote = SparseMatrix::FromTriplets(n, n, std::move(remote_t));
}

/// Per-(layer, direction) stale store + codec state.
struct ExchangeChannel {
  Matrix stale;              // last transmitted version (receiver view)
  bool initialized = false;
  std::unique_ptr<ErrorCompensatedCodec> codec;  // when EC is on
};

}  // namespace

DistGcnReport TrainDistGcn(const NodeClassificationDataset& dataset,
                           const DistGcnConfig& config) {
  DistGcnReport report;
  const Graph& g = dataset.graph;

  VertexPartition parts = MakePartition(g, config.partition,
                                        config.num_workers,
                                        dataset.TrainVertices());
  report.edge_cut = EvaluatePartition(g, parts).edge_cut;
  const std::vector<std::vector<VertexId>> halos = ComputeHalos(g, parts);
  uint64_t halo_rows_per_exchange = 0;
  for (const auto& h : halos) halo_rows_per_exchange += h.size();

  SparseMatrix adj_local;
  SparseMatrix adj_remote;
  SplitAdjacency(g, parts, AdjNorm::kSymmetric, &adj_local, &adj_remote);

  GcnConfig model_config;
  model_config.dims = {dataset.features.cols(), config.hidden_dim,
                       dataset.num_classes};
  model_config.seed = config.seed;
  GcnModel model(model_config);
  Adam opt(config.lr);
  opt.Attach(model.Parameters());

  SimulatedNetwork network(config.num_workers, config.network);
  const uint32_t num_layers = model.num_layers();
  std::vector<ExchangeChannel> forward_channels(num_layers);
  std::vector<ExchangeChannel> backward_channels(num_layers);
  if (config.error_compensation) {
    for (uint32_t l = 0; l < num_layers; ++l) {
      forward_channels[l].codec =
          std::make_unique<ErrorCompensatedCodec>(config.quantization);
      backward_channels[l].codec =
          std::make_unique<ErrorCompensatedCodec>(config.quantization);
    }
  }

  uint32_t epoch = 0;
  uint64_t prev_bytes = 0;
  uint64_t prev_msgs = 0;

  // Charges one cluster-wide halo exchange of `mat` to the ledger.
  auto charge_exchange = [&](uint32_t cols) {
    // Receiver-side accounting: each worker receives its halo rows from
    // the owners; we charge the aggregate volume on a ring of pairs.
    const uint64_t bytes = WireBytes(
        config.quantization, static_cast<uint32_t>(halo_rows_per_exchange),
        cols);
    // Spread across worker pairs for the ledger (volume is what
    // matters for the benches; per-pair split is uniform).
    for (uint32_t w = 0; w < config.num_workers; ++w) {
      network.Record(w, (w + 1) % config.num_workers,
                     bytes / std::max(1u, config.num_workers));
    }
    report.halo_rows_exchanged += halo_rows_per_exchange;
    ++report.broadcasts_sent;
  };

  // Policy: should this (epoch, channel) refresh its stale copy?
  auto should_refresh = [&](const ExchangeChannel& ch,
                            const Matrix& fresh) -> bool {
    if (!ch.initialized) return true;
    switch (config.sync) {
      case SyncMode::kBsp:
        return true;
      case SyncMode::kBoundedStaleness:
        return epoch % std::max(1u, config.staleness_bound) == 0;
      case SyncMode::kSancus: {
        // Drift of the fresh activations vs the last broadcast copy,
        // relative to the activation scale.
        const double drift = fresh.MeanAbsDiff(ch.stale);
        double scale = 0.0;
        for (float v : fresh.data()) scale += std::abs(v);
        scale = fresh.size() ? scale / static_cast<double>(fresh.size()) : 0.0;
        return drift > config.sancus_drift_threshold * std::max(scale, 1e-12);
      }
    }
    return true;
  };

  auto exchange = [&](ExchangeChannel& ch, const Matrix& fresh) -> Matrix* {
    if (should_refresh(ch, fresh)) {
      Matrix received = ch.codec
                            ? ch.codec->Transmit(fresh)
                            : QuantizeDequantize(fresh, config.quantization);
      ch.stale = std::move(received);
      ch.initialized = true;
      charge_exchange(fresh.cols());
    } else {
      ++report.broadcasts_skipped;
    }
    return &ch.stale;
  };

  AggregateFn aggregate = [&](const Matrix& h, uint32_t layer,
                              bool backward) -> Matrix {
    ExchangeChannel& ch =
        backward ? backward_channels[layer] : forward_channels[layer];
    if (!backward && layer == 0 && config.p3_feature_split) {
      // P3 hybrid parallelism: features are dimension-partitioned, so no
      // raw-feature halo exchange happens at all; instead each worker
      // produces a partial (|V| x hidden) aggregate that is all-reduced.
      // The math is identical (Σ_w Â H[:,w] W[w,:] = Â H W); only the
      // traffic differs.
      const uint64_t partial_bytes = static_cast<uint64_t>(g.NumVertices()) *
                                     config.hidden_dim * sizeof(float);
      // Ring all-reduce: 2 (W-1)/W of the payload per worker.
      for (uint32_t w = 0; w < config.num_workers; ++w) {
        network.Record(w, (w + 1) % config.num_workers,
                       2 * partial_bytes * (config.num_workers - 1) /
                           std::max(1u, config.num_workers));
      }
      ++report.broadcasts_sent;
      Matrix out = adj_local.Multiply(h);
      out.AddScaled(adj_remote.Multiply(h), 1.0f);  // exact: Σ partials
      return out;
    }
    Matrix* remote_view = exchange(ch, h);
    Matrix out = backward ? adj_local.TransposeMultiply(h)
                          : adj_local.Multiply(h);
    Matrix remote_part = backward
                             ? adj_remote.TransposeMultiply(*remote_view)
                             : adj_remote.Multiply(*remote_view);
    out.AddScaled(remote_part, 1.0f);
    return out;
  };

  // Per-epoch span histograms: the GNN "stages" of one training step.
  Histogram forward_hist;
  Histogram backward_hist;
  Histogram step_hist;
  // Kernel-class attribution: pre-warm the shared pool so worker spawn
  // lands outside the timed epochs, and restart the per-kernel spans so
  // report.kernel_timings covers exactly this run.
  KernelContext& kernel_ctx = KernelContext::Get();
  kernel_ctx.ResetKernelStats();
  // Per-epoch {compute, comm-traffic} traces, replayed through the
  // modeled pipeline executor (compute stage + cost-model-charged
  // network stage) after the loop; kept on the report for benches.

  Timer total_timer;
  for (epoch = 0; epoch < config.epochs; ++epoch) {
    Timer compute_timer;
    Matrix logits = [&] {
      ScopedSpan span(&forward_hist);
      return model.Forward(dataset.features, aggregate);
    }();
    SoftmaxXentResult train =
        SoftmaxCrossEntropy(logits, dataset.labels, dataset.train_mask);
    std::vector<Matrix> grads = [&] {
      ScopedSpan span(&backward_hist);
      return model.Backward(train.grad, aggregate);
    }();
    {
      ScopedSpan span(&step_hist);
      opt.Step(grads);
    }
    // Data-parallel compute: each worker handles ~1/W of the rows.
    const double epoch_compute =
        compute_timer.ElapsedSeconds() / std::max(1u, config.num_workers);

    SoftmaxXentResult test =
        SoftmaxCrossEntropy(logits, dataset.labels, dataset.test_mask);
    report.epoch_loss.push_back(train.loss);
    report.epoch_test_accuracy.push_back(
        test.total ? static_cast<double>(test.correct) / test.total : 0.0);

    const uint64_t epoch_bytes = network.total_bytes() - prev_bytes;
    const uint64_t epoch_msgs = network.total_messages() - prev_msgs;
    prev_bytes = network.total_bytes();
    prev_msgs = network.total_messages();
    const double epoch_comm =
        config.network.TransferSeconds(epoch_bytes, std::max<uint64_t>(
                                                        epoch_msgs, 1));
    report.compute_seconds += epoch_compute;
    report.comm_seconds += epoch_comm;
    report.simulated_epoch_seconds += config.overlap_comm_compute
                                          ? std::max(epoch_compute, epoch_comm)
                                          : epoch_compute + epoch_comm;
    report.epoch_compute_trace.push_back(epoch_compute);
    report.epoch_comm_bytes.push_back(epoch_bytes);
    report.epoch_comm_messages.push_back(std::max<uint64_t>(epoch_msgs, 1));
  }

  report.stage_timings = {
      StageTimingStat::FromHistogram("forward", forward_hist),
      StageTimingStat::FromHistogram("backward", backward_hist),
      StageTimingStat::FromHistogram("step", step_hist),
  };
  report.kernel_timings = kernel_ctx.KernelStats();
  if (!report.epoch_compute_trace.empty()) {
    // Epochs flow through a 2-stage compute -> comm pipeline; the comm
    // stage is a modeled network stage charged NetworkCostModel time
    // for each epoch's recorded traffic, on `comm_channels` modeled
    // executors. The modeled makespan is what a pipelined system
    // (P3/Dorylus-style overlap) would pay, regardless of this host's
    // core count.
    std::vector<ModeledStageSpec> overlap_stages(2);
    overlap_stages[0].name = "compute";
    overlap_stages[0].busy = report.epoch_compute_trace;
    overlap_stages[0].executors = 1;
    overlap_stages[1] = ModeledNetworkStage(
        "comm", config.network, report.epoch_comm_bytes,
        report.epoch_comm_messages, std::max(1u, config.comm_channels));
    ModeledPipelineResult overlap = ModelPipelineSchedule(overlap_stages);
    report.modeled_overlap_epoch_seconds = overlap.pipelined_seconds;
    report.modeled_overlap_speedup = overlap.speedup;
    report.overlap_bottleneck_stage =
        static_cast<uint32_t>(overlap.bottleneck_stage);
    report.overlap_stage_occupancy = overlap.stage_occupancy;
  }

  Matrix logits = model.Forward(dataset.features, aggregate);
  SoftmaxXentResult test =
      SoftmaxCrossEntropy(logits, dataset.labels, dataset.test_mask);
  report.final_test_accuracy =
      test.total ? static_cast<double>(test.correct) / test.total : 0.0;
  report.comm_bytes = network.total_bytes();
  return report;
}

}  // namespace gal
