#ifndef GAL_DIST_CACHE_H_
#define GAL_DIST_CACHE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/partition.h"

namespace gal {

/// AliGraph-style static feature cache: each worker caches the features
/// of the most "important" remote vertices (by degree — AliGraph's
/// importance is essentially in-degree weighted), so repeated sampling
/// reads hit locally instead of crossing the network.
class StaticFeatureCache {
 public:
  /// Caches, on each worker, the top `cache_fraction` of all vertices by
  /// degree that are remote to that worker.
  StaticFeatureCache(const Graph& g, const VertexPartition& parts,
                     double cache_fraction);

  /// Records a read of `v`'s features by `worker`; returns true on a
  /// local-or-cached hit (no network traffic).
  bool Fetch(uint32_t worker, VertexId v);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }
  uint64_t cached_entries() const { return cached_entries_; }

 private:
  const VertexPartition* parts_;
  /// cached_[w * n + v] = worker w holds v's features locally.
  std::vector<uint8_t> cached_;
  VertexId num_vertices_;
  uint64_t cached_entries_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace gal

#endif  // GAL_DIST_CACHE_H_
