#ifndef GAL_DIST_PIPELINE_H_
#define GAL_DIST_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gal {

/// A mini-batch training pipeline in the BGL/ByteGNN/P3 mold: the epoch
/// is a sequence of batches, each passing through ordered stages
/// (sample -> gather -> compute). Serial execution runs stages
/// back-to-back; pipelined execution gives each stage its own executor
/// so stage s of batch b overlaps stage s+1 of batch b-1 — the
/// "factored"/operator-scheduling design the survey describes.
struct PipelineStage {
  std::string name;
  /// Processes one batch (by index). Runtime is whatever the callable
  /// actually takes; the executor measures it.
  std::function<void(uint32_t batch)> work;
};

struct PipelineReport {
  double serial_seconds = 0.0;     // Σ over batches and stages
  double pipelined_seconds = 0.0;  // measured overlapped wall time
  /// Busy seconds per stage (same for both executions).
  std::vector<double> stage_busy_seconds;
  std::vector<std::string> stage_names;
  double speedup = 0.0;            // serial / pipelined
};

/// Runs `num_batches` through the stages twice — serially and pipelined
/// (one thread per stage, batch-ordered handoff) — and reports both
/// wall times. Stage callables must be safe to call again for the
/// second execution.
PipelineReport RunPipeline(const std::vector<PipelineStage>& stages,
                           uint32_t num_batches);

}  // namespace gal

#endif  // GAL_DIST_PIPELINE_H_
