#ifndef GAL_DIST_PIPELINE_H_
#define GAL_DIST_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/network.h"
#include "cluster/virtual_clock.h"

namespace gal {

/// A mini-batch training pipeline in the BGL/ByteGNN/P3 mold: the epoch
/// is a sequence of batches, each passing through ordered stages
/// (sample -> gather -> compute). Serial execution runs stages
/// back-to-back; pipelined execution gives each stage its own
/// executor(s) so stage s of batch b overlaps stage s+1 of batch b-1 —
/// the "factored"/operator-scheduling design the survey describes.
/// ByteGNN's two-level scheduling adds the second level: a stage may be
/// widened to k executors pulling batches from its queue, so a slow
/// stage stops bottlenecking the pipe without rewriting it.
struct PipelineStage {
  std::string name;
  /// Processes one batch (by index). Runtime is whatever the callable
  /// actually takes; the executor measures it.
  std::function<void(uint32_t batch)> work;
  /// Executors for this stage in the pipelined pass. 0 means "default":
  /// the GAL_STAGE_EXECUTORS env var if set to a positive integer, else
  /// 1. Stages whose work mutates state shared across batches (e.g. an
  /// optimizer step) must keep 1 executor; stages writing only per-batch
  /// slots can be widened freely.
  uint32_t executors = 0;
};

/// Resolved executor count for one stage: `configured` if positive, else
/// the GAL_STAGE_EXECUTORS env override if positive, else 1.
uint32_t ResolveStageExecutors(uint32_t configured);

/// One stage of the *modeled* pipeline: a per-batch busy-time row plus
/// how many executors the virtual clock may schedule it on.
struct ModeledStageSpec {
  std::string name;
  std::vector<double> busy;  // seconds, one entry per batch
  uint32_t executors = 1;
};

/// Builds a modeled *network* stage whose per-batch busy time is what
/// the cost model charges for that batch's traffic — the survey's
/// "communication as a pipeline stage" (P3/Dorylus overlap). `executors`
/// models parallel channels/links.
ModeledStageSpec ModeledNetworkStage(const std::string& name,
                                     const NetworkCostModel& cost,
                                     const std::vector<uint64_t>& bytes,
                                     const std::vector<uint64_t>& messages,
                                     uint32_t executors = 1);

/// Result of replaying recorded per-stage, per-batch busy times through
/// a virtual clock with k_s executors per stage and batch-ordered
/// handoff: stage s may start batch b once (a) one of its k_s executors
/// is free and (b) stage s-1 finished batch b; batches are admitted to
/// each stage in ascending order. With k_s == 1 everywhere this is the
/// classic one-executor-per-stage pipeline. This is the *modeled*
/// pipeline — deterministic and independent of how many cores the host
/// happens to have, matching how the survey's systems (and the rest of
/// the simulated cluster, e.g. VirtualClock) report overlap
/// analytically.
struct ModeledPipelineResult {
  double serial_seconds = 0.0;     // Σ over stages and batches
  double pipelined_seconds = 0.0;  // virtual-clock makespan
  double speedup = 1.0;            // serial / pipelined
  /// Longest single-batch stage chain (max_b Σ_s busy[s][b]) — the
  /// latency critical path: no schedule finishes faster even with
  /// unlimited executors per stage.
  double critical_path_seconds = 0.0;
  /// Stage with the largest total busy time *per executor*
  /// (busy / k_s); its per-executor total is the throughput lower bound
  /// on the makespan.
  size_t bottleneck_stage = 0;
  double bottleneck_busy_seconds = 0.0;  // per-executor busy of that stage
  /// Executors the schedule assumed for each stage.
  std::vector<uint32_t> stage_executors;
  /// Per-stage virtual-clock accounting, summed over the stage's
  /// executors. For every stage:
  ///   fill + stall + busy + drain == k_s * pipelined_seconds.
  std::vector<double> stage_busy_seconds;   // Σ_b busy[s][b]
  std::vector<double> stage_fill_seconds;   // idle before first batch
  std::vector<double> stage_stall_seconds;  // idle waiting for upstream
  std::vector<double> stage_drain_seconds;  // idle after last batch
  /// busy / (k_s * makespan): how much of the stage's executor capacity
  /// did useful work.
  std::vector<double> stage_occupancy;
};

/// Replays `busy[s][b]` (stage s, batch b; all rows the same length)
/// through the virtual clock with one executor per stage. Pure function
/// — the unit of testability for the modeled executor.
ModeledPipelineResult ModelPipelineSchedule(
    const std::vector<std::vector<double>>& busy);

/// k-executor form: stages carry their own busy rows and executor
/// counts (use ModeledNetworkStage for cost-model-charged comm stages).
ModeledPipelineResult ModelPipelineSchedule(
    const std::vector<ModeledStageSpec>& stages);

/// Replays VirtualClock rounds as the 2-stage {compute, comm} modeled
/// pipeline: stage 0 is each round's max-worker compute time on one
/// executor, stage 1 a ModeledNetworkStage charged each round's recorded
/// traffic on `comm_channels` executors. serial_seconds is the
/// barriered BSP total (what the clock itself accumulated);
/// pipelined_seconds is what a system overlapping round r's
/// communication with round r+1's compute would pay. This is how
/// TrainDistGcn derives its comm_channels overlap from the clock.
ModeledPipelineResult ModelClusterOverlap(
    const std::vector<ClusterRound>& rounds, const NetworkCostModel& cost,
    uint32_t comm_channels = 1);

/// Per-stage observability of one RunPipeline call.
struct PipelineStageStats {
  std::string name;
  /// Executors this stage ran with in the pipelined pass.
  uint32_t executors = 1;
  /// Busy seconds accumulated during the serial pass (pass 1).
  double serial_busy_seconds = 0.0;
  /// Busy seconds accumulated during the pipelined pass (pass 2) — kept
  /// separate from the serial pass because thread contention can make
  /// them differ, and the stall accounting is relative to this pass.
  double pipelined_busy_seconds = 0.0;
  /// Measured executor occupancy of the pipelined pass:
  /// pipelined_busy / (executors * pipelined wall).
  double occupancy = 0.0;
  /// Modeled (virtual clock) idle accounting, from the serial-pass times.
  double modeled_fill_seconds = 0.0;
  double modeled_stall_seconds = 0.0;
  double modeled_drain_seconds = 0.0;
  double modeled_occupancy = 0.0;
  /// Per-batch busy distribution (serial pass).
  double busy_p50_seconds = 0.0;
  double busy_p95_seconds = 0.0;
  double busy_max_seconds = 0.0;
  /// Measured per-batch wait-for-work distribution (pipelined pass; an
  /// executor's wait before its first batch is its measured fill time).
  double stall_p50_seconds = 0.0;
  double stall_p95_seconds = 0.0;
  double stall_max_seconds = 0.0;
};

struct PipelineReport {
  /// std::thread::hardware_concurrency() at run time. When this is
  /// smaller than the total executor count, CPU-bound stages cannot
  /// actually overlap and the *measured* speedup is meaningless — use
  /// the modeled numbers, which schedule on a virtual clock.
  unsigned hardware_concurrency = 0;
  bool overlap_feasible = false;  // hardware_concurrency >= Σ executors
  /// Σ over stages of resolved executor counts — the worker threads the
  /// pipelined pass leased from the CoreBudget.
  uint32_t total_executors = 0;

  // Measured (wall clock, real threads).
  double serial_seconds = 0.0;     // pass 1 wall time
  double pipelined_seconds = 0.0;  // pass 2 wall time, workers pre-spawned
  double measured_speedup = 1.0;   // serial / pipelined

  // Modeled (virtual clock over the serial pass's recorded times, with
  // the same per-stage executor counts as the measured pass).
  double modeled_pipelined_seconds = 0.0;
  double modeled_speedup = 1.0;
  double critical_path_seconds = 0.0;
  size_t bottleneck_stage = 0;

  std::vector<PipelineStageStats> stages;
  std::vector<std::string> stage_names;  // convenience view of stages[].name

  /// The serial pass's recorded per-batch busy rows, with the resolved
  /// executor counts — exactly what the modeled numbers above were
  /// computed from. Benches re-model executor what-ifs from this single
  /// trace (ModelPipelineSchedule with edited executor counts) so sweep
  /// rows are comparable instead of each re-measuring its own trace.
  std::vector<ModeledStageSpec> serial_stage_traces;

  /// One-line human summary (measured vs modeled).
  std::string Summary() const;
};

/// Runs `num_batches` through the stages twice — serially and pipelined
/// — and reports measured wall times for both, plus the modeled pipeline
/// obtained by replaying the serial pass's per-batch stage times through
/// ModelPipelineSchedule (same executor counts).
///
/// The pipelined pass is a two-level task-engine: one shared ThreadPool
/// hosts k_s long-running executors per stage (k_s from
/// PipelineStage::executors / GAL_STAGE_EXECUTORS); executors pull batch
/// indices from bounded per-stage ready queues. Handoff is
/// batch-ordered: stage s+1's queue receives batch b only after stage s
/// finished it, and batches are released downstream in ascending order
/// even when a widened stage completes them out of order. The pass
/// leases its executor threads from the process CoreBudget, so tensor
/// kernels called inside a stage shrink their shard fan-out instead of
/// oversubscribing the machine (see common/core_budget.h).
///
/// Stage callables must be safe to call again for the second execution.
/// Every (stage, batch) pair executes exactly once per pass, so outputs
/// written to per-batch slots are identical — bit for bit — between the
/// serial pass and any executor configuration. The pipelined wall timer
/// starts only after every executor has been spawned and parked at the
/// start line, so thread-creation overhead is not charged to the
/// pipelined run.
PipelineReport RunPipeline(const std::vector<PipelineStage>& stages,
                           uint32_t num_batches);

}  // namespace gal

#endif  // GAL_DIST_PIPELINE_H_
