#ifndef GAL_DIST_PIPELINE_H_
#define GAL_DIST_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gal {

/// A mini-batch training pipeline in the BGL/ByteGNN/P3 mold: the epoch
/// is a sequence of batches, each passing through ordered stages
/// (sample -> gather -> compute). Serial execution runs stages
/// back-to-back; pipelined execution gives each stage its own executor
/// so stage s of batch b overlaps stage s+1 of batch b-1 — the
/// "factored"/operator-scheduling design the survey describes.
struct PipelineStage {
  std::string name;
  /// Processes one batch (by index). Runtime is whatever the callable
  /// actually takes; the executor measures it.
  std::function<void(uint32_t batch)> work;
};

/// Result of replaying recorded per-stage, per-batch busy times through
/// a virtual clock that assumes one dedicated executor per stage and
/// batch-ordered handoff: stage s may start batch b once (a) stage s
/// finished batch b-1 and (b) stage s-1 finished batch b. This is the
/// *modeled* pipeline — deterministic and independent of how many cores
/// the host happens to have, matching how the survey's systems (and the
/// rest of src/dist, e.g. SimulatedNetwork::SerializedSeconds) report
/// overlap analytically.
struct ModeledPipelineResult {
  double serial_seconds = 0.0;     // Σ over stages and batches
  double pipelined_seconds = 0.0;  // virtual-clock makespan
  double speedup = 1.0;            // serial / pipelined
  /// Longest single-batch stage chain (max_b Σ_s busy[s][b]) — the
  /// latency critical path: no schedule finishes faster even with
  /// unlimited executors per stage.
  double critical_path_seconds = 0.0;
  /// Stage with the largest total busy time; its total is the
  /// throughput lower bound on the makespan.
  size_t bottleneck_stage = 0;
  double bottleneck_busy_seconds = 0.0;
  /// Per-stage virtual-clock accounting. For every stage:
  ///   fill + stall + busy + drain == pipelined_seconds.
  std::vector<double> stage_busy_seconds;   // Σ_b busy[s][b]
  std::vector<double> stage_fill_seconds;   // idle before its first batch
  std::vector<double> stage_stall_seconds;  // idle waiting for upstream
  std::vector<double> stage_drain_seconds;  // idle after its last batch
};

/// Replays `busy[s][b]` (stage s, batch b; all rows the same length)
/// through the virtual clock described above. Pure function — the unit
/// of testability for the modeled executor.
ModeledPipelineResult ModelPipelineSchedule(
    const std::vector<std::vector<double>>& busy);

/// Per-stage observability of one RunPipeline call.
struct PipelineStageStats {
  std::string name;
  /// Busy seconds accumulated during the serial pass (pass 1).
  double serial_busy_seconds = 0.0;
  /// Busy seconds accumulated during the pipelined pass (pass 2) — kept
  /// separate from the serial pass because thread contention can make
  /// them differ, and the stall accounting is relative to this pass.
  double pipelined_busy_seconds = 0.0;
  /// Modeled (virtual clock) idle accounting, from the serial-pass times.
  double modeled_fill_seconds = 0.0;
  double modeled_stall_seconds = 0.0;
  double modeled_drain_seconds = 0.0;
  /// Per-batch busy distribution (serial pass).
  double busy_p50_seconds = 0.0;
  double busy_p95_seconds = 0.0;
  double busy_max_seconds = 0.0;
  /// Measured per-batch wait-for-upstream distribution (pipelined pass;
  /// the first batch's wait is the measured fill time).
  double stall_p50_seconds = 0.0;
  double stall_p95_seconds = 0.0;
  double stall_max_seconds = 0.0;
};

struct PipelineReport {
  /// std::thread::hardware_concurrency() at run time. When this is
  /// smaller than the stage count, CPU-bound stages cannot actually
  /// overlap and the *measured* speedup is meaningless — use the
  /// modeled numbers, which assume one executor per stage.
  unsigned hardware_concurrency = 0;
  bool overlap_feasible = false;  // hardware_concurrency >= #stages

  // Measured (wall clock, real threads).
  double serial_seconds = 0.0;     // pass 1 wall time
  double pipelined_seconds = 0.0;  // pass 2 wall time, workers pre-spawned
  double measured_speedup = 1.0;   // serial / pipelined

  // Modeled (virtual clock over the serial pass's recorded times).
  double modeled_pipelined_seconds = 0.0;
  double modeled_speedup = 1.0;
  double critical_path_seconds = 0.0;
  size_t bottleneck_stage = 0;

  std::vector<PipelineStageStats> stages;
  std::vector<std::string> stage_names;  // convenience view of stages[].name

  /// One-line human summary (measured vs modeled).
  std::string Summary() const;
};

/// Runs `num_batches` through the stages twice — serially and pipelined
/// (one thread per stage, batch-ordered handoff) — and reports measured
/// wall times for both, plus the modeled pipeline obtained by replaying
/// the serial pass's per-batch stage times through ModelPipelineSchedule.
/// Stage callables must be safe to call again for the second execution.
/// The pipelined wall timer starts only after every worker thread has
/// been spawned and parked at the start line, so thread-creation
/// overhead is not charged to the pipelined run.
PipelineReport RunPipeline(const std::vector<PipelineStage>& stages,
                           uint32_t num_batches);

}  // namespace gal

#endif  // GAL_DIST_PIPELINE_H_
