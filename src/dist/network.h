#ifndef GAL_DIST_NETWORK_H_
#define GAL_DIST_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace gal {

/// Cost model of the simulated interconnect. Defaults approximate a
/// 10 Gb/s datacenter network; the NVLink preset models DGCL's
/// high-bandwidth GPU fabric.
struct NetworkCostModel {
  double bandwidth_bytes_per_sec = 1.25e9;  // 10 Gb/s
  double latency_sec = 50e-6;               // per message

  static NetworkCostModel Ethernet10G() { return {}; }
  static NetworkCostModel Nvlink() {
    // ~300 GB/s aggregate; ~2 µs effective per-message latency (the
    // link itself is sub-microsecond, but driver/launch overhead
    // dominates what a transfer actually pays).
    return {3.0e11, 2e-6};
  }

  double TransferSeconds(uint64_t bytes, uint64_t messages = 1) const {
    return latency_sec * static_cast<double>(messages) +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

/// Byte/message ledger of a simulated cluster run. All distributed
/// components charge their traffic here so benches can print one
/// comparable "communication volume" number per configuration.
class SimulatedNetwork {
 public:
  explicit SimulatedNetwork(uint32_t num_workers,
                            NetworkCostModel cost = {})
      : num_workers_(num_workers), cost_(cost),
        pair_bytes_(static_cast<size_t>(num_workers) * num_workers, 0) {}

  void Record(uint32_t src, uint32_t dst, uint64_t bytes) {
    GAL_DCHECK(src < num_workers_ && dst < num_workers_);
    if (src == dst) return;  // local handoff is free
    pair_bytes_[static_cast<size_t>(src) * num_workers_ + dst] += bytes;
    total_bytes_ += bytes;
    ++total_messages_;
  }

  /// Broadcast of `bytes` from one worker to all others.
  void RecordBroadcast(uint32_t src, uint64_t bytes) {
    for (uint32_t dst = 0; dst < num_workers_; ++dst) {
      if (dst != src) Record(src, dst, bytes);
    }
  }

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }
  uint64_t PairBytes(uint32_t src, uint32_t dst) const {
    return pair_bytes_[static_cast<size_t>(src) * num_workers_ + dst];
  }

  /// Modeled wire time if transfers were serialized.
  double SerializedSeconds() const {
    return cost_.TransferSeconds(total_bytes_, total_messages_);
  }
  const NetworkCostModel& cost_model() const { return cost_; }

  void Reset() {
    std::fill(pair_bytes_.begin(), pair_bytes_.end(), 0);
    total_bytes_ = 0;
    total_messages_ = 0;
  }

 private:
  uint32_t num_workers_;
  NetworkCostModel cost_;
  std::vector<uint64_t> pair_bytes_;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
};

}  // namespace gal

#endif  // GAL_DIST_NETWORK_H_
