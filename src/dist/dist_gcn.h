#ifndef GAL_DIST_DIST_GCN_H_
#define GAL_DIST_DIST_GCN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/fault.h"
#include "common/metrics.h"
#include "dist/quantization.h"
#include "gnn/dataset.h"
#include "partition/partition.h"

namespace gal {

/// Partitioning strategies the distributed trainer can be run under.
enum class PartitionScheme : uint8_t {
  kHash,        // Pregel/DistDGL-default baseline
  kRange,
  kLdg,         // streaming greedy
  kMultilevel,  // METIS stand-in (DistDGL/DGCL)
  kBfsVoronoi,  // ByteGNN/BGL seed-centric blocks
};

/// Model-synchronization paradigms from the survey's §3.
enum class SyncMode : uint8_t {
  kBsp,               // fresh halo exchange every epoch
  kBoundedStaleness,  // refresh every `staleness_bound` epochs (P3/Dorylus)
  kSancus,            // drift-triggered broadcast skipping
};

struct DistGcnConfig {
  uint32_t num_workers = 4;
  PartitionScheme partition = PartitionScheme::kHash;
  SyncMode sync = SyncMode::kBsp;
  uint32_t staleness_bound = 4;
  /// Sancus: broadcast layer activations only when their mean absolute
  /// drift since the last broadcast exceeds this fraction of the
  /// activation scale.
  double sancus_drift_threshold = 0.05;
  Quantization quantization = Quantization::kNone;
  /// EC-Graph-style error compensation on top of quantization.
  bool error_compensation = false;
  /// P3: partition raw features by dimension; layer-0 runs hybrid
  /// model/data parallelism with partial-aggregate all-reduce instead
  /// of raw-feature halo exchange.
  bool p3_feature_split = false;
  NetworkCostModel network;
  /// When true, communication of one epoch overlaps the next epoch's
  /// computation in the simulated-time model (pipelined systems).
  bool overlap_comm_compute = false;
  /// Modeled parallel network channels: the comm stage of the modeled
  /// compute->comm pipeline gets this many executors in the virtual
  /// clock (k-executor scheduling; >1 models multi-channel/multi-NIC
  /// overlap a la ByteGNN's two-level scheduler).
  uint32_t comm_channels = 1;

  uint32_t hidden_dim = 16;
  uint32_t epochs = 40;
  float lr = 0.05f;
  uint64_t seed = 1;

  /// Shared simulated-cluster substrate. When set, the trainer adopts
  /// its worker count and cost model (overriding `num_workers` and
  /// `network`), charges halo/all-reduce traffic to its ledger, advances
  /// its VirtualClock one round per epoch, and installs the job's
  /// partition on it. When null the trainer owns a private runtime.
  ClusterRuntime* cluster = nullptr;

  /// Shared fault-tolerance schedule (cluster/fault.h), driven at the
  /// epoch barrier: checkpoints snapshot model weights, Adam moments,
  /// and every stale channel (matrix + EC residual); a worker failure
  /// rolls the trainer back to the last checkpoint and replays, with
  /// checkpoint/restore bytes on the ledger and their transfer time on
  /// the clock. Training is epoch-deterministic, so a recovered run's
  /// losses and accuracy are bit-identical to the failure-free run.
  /// Rebalancing applies only under semantics-preserving configs (BSP +
  /// fp32, no EC/P3) — see DESIGN.md.
  FaultPlan faults = FaultPlan::FromEnvOrWarn();
};

struct DistGcnReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_test_accuracy;
  double final_test_accuracy = 0.0;

  uint64_t comm_bytes = 0;          // all cross-worker traffic
  uint64_t halo_rows_exchanged = 0; // embedding rows that crossed the wire
  uint64_t broadcasts_skipped = 0;  // Sancus / staleness savings
  uint64_t broadcasts_sent = 0;
  uint64_t edge_cut = 0;            // of the chosen partition

  /// Fault-tolerance accounting of this run (cluster/checkpoint.h):
  /// checkpoint/restore volume, recovered failures, replayed epochs,
  /// and straggler-triggered migrations.
  uint32_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t restored_bytes = 0;
  uint32_t failures_recovered = 0;
  uint32_t recomputed_epochs = 0;
  uint32_t rebalances = 0;
  uint64_t migration_bytes = 0;

  double compute_seconds = 0.0;       // measured math time
  double comm_seconds = 0.0;          // modeled wire time
  /// Modeled seconds of the whole run, from the cluster VirtualClock's
  /// per-epoch rounds replayed through ModelPipelineSchedule: the
  /// barriered serial total without overlap, the pipelined makespan
  /// with overlap_comm_compute.
  double simulated_epoch_seconds = 0.0;

  /// Per-epoch traces behind the modeled overlap replay, exposed so
  /// benches can re-model alternative schedules (e.g. comm-channel
  /// sweeps) without retraining.
  std::vector<double> epoch_compute_trace;   // seconds, data-parallel share
  std::vector<uint64_t> epoch_comm_bytes;    // wire volume per epoch
  std::vector<uint64_t> epoch_comm_messages; // wire messages per epoch

  /// Measured per-epoch span summaries (forward / backward / optimizer
  /// step), p50/p95/max over epochs — the same stage-level
  /// observability RunPipeline reports for batch pipelines.
  std::vector<StageTimingStat> stage_timings;

  /// Kernel-class attribution of the run's compute time ("gemm" /
  /// "spmm" / "elementwise"), from the KernelContext span histograms.
  /// TrainDistGcn resets the process-wide kernel histograms at entry, so
  /// these cover exactly this training run.
  std::vector<StageTimingStat> kernel_timings;

  /// Modeled comm/compute overlap: the per-epoch {compute, comm} times
  /// replayed through the virtual-clock pipeline executor
  /// (ModelPipelineSchedule) — the comm stage is a modeled *network
  /// stage* charged from `NetworkCostModel` per-epoch traffic, with
  /// `config.comm_channels` executors — independent of this host's core
  /// count. `overlap_bottleneck_stage` is 0 for compute, 1 for comm.
  double modeled_overlap_epoch_seconds = 0.0;
  double modeled_overlap_speedup = 1.0;
  uint32_t overlap_bottleneck_stage = 0;
  /// Executor occupancy of the modeled {compute, comm} stages:
  /// busy / (executors * makespan) — how busy each side of the overlap
  /// pipeline stays.
  std::vector<double> overlap_stage_occupancy;

  std::string Summary() const;
};

/// Trains a 2-layer GCN on the dataset over a simulated `num_workers`
/// cluster, with the communication behavior of the configured paradigm
/// fully accounted. The math runs in one process; distribution shows up
/// as (a) which embedding rows cross the wire and when, (b) the lossy /
/// stale values remote readers actually aggregate.
DistGcnReport TrainDistGcn(const NodeClassificationDataset& dataset,
                           const DistGcnConfig& config);

/// The halo of each worker: remote vertices whose embeddings the worker
/// must read to aggregate its own rows. Exposed for benches/tests.
std::vector<std::vector<VertexId>> ComputeHalos(const Graph& g,
                                                const VertexPartition& parts);

/// Builds the partition for a scheme (seeds: training vertices, used by
/// the seed-centric scheme).
VertexPartition MakePartition(const Graph& g, PartitionScheme scheme,
                              uint32_t num_parts,
                              const std::vector<VertexId>& seeds);

const char* PartitionSchemeName(PartitionScheme scheme);
const char* SyncModeName(SyncMode mode);
const char* QuantizationName(Quantization scheme);

}  // namespace gal

#endif  // GAL_DIST_DIST_GCN_H_
