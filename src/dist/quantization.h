#ifndef GAL_DIST_QUANTIZATION_H_
#define GAL_DIST_QUANTIZATION_H_

#include <cstdint>

#include "tensor/matrix.h"

namespace gal {

/// Lossy message-compression schemes for GNN traffic (EXACT, EC-Graph,
/// F²CGT, Sylvie): activations/gradients are quantized per row before
/// hitting the wire and dequantized on arrival.
enum class Quantization : uint8_t {
  kNone,   // fp32 on the wire
  kFp16,   // value truncation to half precision (simulated)
  kInt8,   // per-row affine int8
  kInt4,   // per-row affine int4
};

/// Bytes per matrix element on the wire under a scheme (per-row scale /
/// zero-point overhead is charged separately in WireBytes).
double BytesPerElement(Quantization scheme);

/// Wire size of an r x c matrix under the scheme, including per-row
/// scale+zero metadata for the integer schemes.
uint64_t WireBytes(Quantization scheme, uint32_t rows, uint32_t cols);

/// Round-trips a matrix through the codec: returns what the receiver
/// would reconstruct. kNone returns the input unchanged.
Matrix QuantizeDequantize(const Matrix& m, Quantization scheme);

/// Error-compensated codec (EC-Graph): the sender keeps the residual of
/// each transmission and folds it into the next one, so quantization
/// error stops accumulating across training steps.
class ErrorCompensatedCodec {
 public:
  explicit ErrorCompensatedCodec(Quantization scheme) : scheme_(scheme) {}

  /// Encodes m + carried residual; updates the residual; returns the
  /// receiver-side reconstruction.
  Matrix Transmit(const Matrix& m);

  const Matrix& residual() const { return residual_; }
  /// Checkpoint restore of the carried residual (elastic cluster
  /// runtime): replayed transmissions must fold the same error state.
  void set_residual(Matrix r) { residual_ = std::move(r); }

 private:
  Quantization scheme_;
  Matrix residual_;  // empty until first Transmit
};

}  // namespace gal

#endif  // GAL_DIST_QUANTIZATION_H_
