#ifndef GAL_DIST_COST_MODEL_H_
#define GAL_DIST_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace gal {

/// Dorylus-style cloud cost accounting: the paper's claim is not that
/// serverless threads are *faster* than GPUs, but that they deliver
/// more training throughput per dollar ("value"). Prices default to
/// public-cloud magnitudes circa the Dorylus paper (absolute values do
/// not matter; the ratio shapes the bench).
struct CloudDeployment {
  std::string name;
  double dollars_per_hour = 0.0;
  /// Relative epoch-throughput multiplier vs the CPU baseline (1.0).
  double relative_speed = 1.0;

  static CloudDeployment GpuServer() {
    // p3.2xlarge-like: ~$3/h, ~8x a CPU server on GNN epochs.
    return {"gpu", 3.06, 8.0};
  }
  static CloudDeployment CpuServer() {
    // c5.4xlarge-like: ~$0.68/h.
    return {"cpu", 0.68, 1.0};
  }
  static CloudDeployment CpuPlusServerless() {
    // Dorylus: CPU graph servers + a burst of Lambda compute threads.
    // Lambdas roughly 2.4x the CPU-only throughput for ~10% extra cost
    // (tensor work bursts onto thousands of cheap short-lived threads),
    // which is what makes its value beat the GPU's.
    return {"cpu+serverless", 0.75, 2.4};
  }
};

struct CostReport {
  std::string name;
  double epoch_seconds = 0.0;
  double dollars_per_epoch = 0.0;
  /// Epochs per dollar, normalized so the CPU baseline is 1.0 —
  /// Dorylus's "value" metric.
  double value = 0.0;
  /// $/result accounting: completed training runs (results) one dollar
  /// buys under this deployment — the elastic-runtime counterpart of
  /// `value`, fed by VirtualClock modeled seconds instead of a static
  /// epoch estimate. 0 when not computed by the modeled path.
  double results_per_dollar = 0.0;
};

/// Computes time and cost of a training job under a deployment, given
/// the measured CPU-baseline epoch time.
inline CostReport EvaluateDeployment(const CloudDeployment& d,
                                     double cpu_epoch_seconds) {
  CostReport r;
  r.name = d.name;
  r.epoch_seconds = cpu_epoch_seconds / d.relative_speed;
  r.dollars_per_epoch = r.epoch_seconds / 3600.0 * d.dollars_per_hour;
  const double cpu_cost =
      cpu_epoch_seconds / 3600.0 * CloudDeployment::CpuServer().dollars_per_hour;
  r.value = cpu_cost / r.dollars_per_epoch;
  return r;
}

/// Modeled-seconds variant, fed from a real training run's VirtualClock
/// split (dist_gcn.h report.compute_seconds / comm_seconds): faster
/// hardware scales the *compute* share by `relative_speed` but the wire
/// time stays — which is exactly why Dorylus's cheap burst compute wins
/// on value for comm-bound GNN jobs while the GPU wins on raw epoch
/// time. `epochs` converts the per-run totals into $/result
/// (results_per_dollar = how many completed runs a dollar buys).
inline CostReport EvaluateDeploymentModeled(const CloudDeployment& d,
                                            double compute_seconds,
                                            double comm_seconds,
                                            uint32_t epochs) {
  CostReport r;
  r.name = d.name;
  const double run_seconds = compute_seconds / d.relative_speed + comm_seconds;
  r.epoch_seconds = epochs > 0 ? run_seconds / epochs : run_seconds;
  r.dollars_per_epoch = r.epoch_seconds / 3600.0 * d.dollars_per_hour;
  const double cpu_run_seconds = compute_seconds + comm_seconds;
  const double cpu_epoch_seconds =
      epochs > 0 ? cpu_run_seconds / epochs : cpu_run_seconds;
  const double cpu_cost = cpu_epoch_seconds / 3600.0 *
                          CloudDeployment::CpuServer().dollars_per_hour;
  r.value = r.dollars_per_epoch > 0.0 ? cpu_cost / r.dollars_per_epoch : 0.0;
  const double dollars_per_run = run_seconds / 3600.0 * d.dollars_per_hour;
  r.results_per_dollar =
      dollars_per_run > 0.0 ? 1.0 / dollars_per_run : 0.0;
  return r;
}

}  // namespace gal

#endif  // GAL_DIST_COST_MODEL_H_
