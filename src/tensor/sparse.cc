#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace gal {

SparseMatrix SparseMatrix::FromTriplets(
    uint32_t rows, uint32_t cols,
    std::vector<std::tuple<uint32_t, uint32_t, float>> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              return std::get<0>(a) != std::get<0>(b)
                         ? std::get<0>(a) < std::get<0>(b)
                         : std::get<1>(a) < std::get<1>(b);
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_.assign(rows + 1, 0);
  for (size_t i = 0; i < triplets.size(); ++i) {
    const auto& [r, c, v] = triplets[i];
    GAL_CHECK(r < rows && c < cols);
    if (!m.cols_idx_.empty() && i > 0 &&
        std::get<0>(triplets[i - 1]) == r &&
        std::get<1>(triplets[i - 1]) == c) {
      m.values_.back() += v;  // collapse duplicates
      continue;
    }
    ++m.offsets_[r + 1];
    m.cols_idx_.push_back(c);
    m.values_.push_back(v);
  }
  for (uint32_t r = 0; r < rows; ++r) m.offsets_[r + 1] += m.offsets_[r];
  return m;
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  GAL_CHECK(cols_ == dense.rows());
  Matrix out(rows_, dense.cols());
  for (uint32_t r = 0; r < rows_; ++r) {
    float* or_ = out.row(r);
    for (uint64_t e = offsets_[r]; e < offsets_[r + 1]; ++e) {
      const float w = values_[e];
      const float* src = dense.row(cols_idx_[e]);
      for (uint32_t j = 0; j < dense.cols(); ++j) or_[j] += w * src[j];
    }
  }
  return out;
}

Matrix SparseMatrix::TransposeMultiply(const Matrix& dense) const {
  GAL_CHECK(rows_ == dense.rows());
  Matrix out(cols_, dense.cols());
  for (uint32_t r = 0; r < rows_; ++r) {
    const float* src = dense.row(r);
    for (uint64_t e = offsets_[r]; e < offsets_[r + 1]; ++e) {
      const float w = values_[e];
      float* dst = out.row(cols_idx_[e]);
      for (uint32_t j = 0; j < dense.cols(); ++j) dst[j] += w * src[j];
    }
  }
  return out;
}

SparseMatrix NormalizedAdjacency(const Graph& g, AdjNorm norm) {
  const uint32_t n = g.NumVertices();
  std::vector<std::tuple<uint32_t, uint32_t, float>> triplets;
  triplets.reserve(g.NumAdjacencyEntries() + n);
  if (norm == AdjNorm::kSymmetric) {
    std::vector<float> inv_sqrt(n);
    for (VertexId v = 0; v < n; ++v) {
      inv_sqrt[v] = 1.0f / std::sqrt(static_cast<float>(g.Degree(v)) + 1.0f);
    }
    for (VertexId v = 0; v < n; ++v) {
      triplets.emplace_back(v, v, inv_sqrt[v] * inv_sqrt[v]);
      for (VertexId u : g.Neighbors(v)) {
        triplets.emplace_back(v, u, inv_sqrt[v] * inv_sqrt[u]);
      }
    }
  } else if (norm == AdjNorm::kRowMean) {
    for (VertexId v = 0; v < n; ++v) {
      const float inv = 1.0f / (static_cast<float>(g.Degree(v)) + 1.0f);
      triplets.emplace_back(v, v, inv);
      for (VertexId u : g.Neighbors(v)) triplets.emplace_back(v, u, inv);
    }
  } else {  // kNeighborMean
    for (VertexId v = 0; v < n; ++v) {
      if (g.Degree(v) == 0) continue;
      const float inv = 1.0f / static_cast<float>(g.Degree(v));
      for (VertexId u : g.Neighbors(v)) triplets.emplace_back(v, u, inv);
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace gal
