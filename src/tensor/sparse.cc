#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "common/simd.h"
#include "tensor/kernel_context.h"

namespace gal {
namespace {

/// Splits rows [0, rows) into `shards` contiguous ranges with roughly
/// equal nnz, via binary search on the CSR offset prefix sums. Returns
/// shards+1 row bounds. Row-count splitting would serialize on the hub
/// shard of a power-law graph; nnz splitting keeps shards balanced.
std::vector<uint32_t> NnzBalancedRowBounds(
    const std::vector<uint64_t>& offsets, uint32_t rows, size_t shards) {
  std::vector<uint32_t> bounds(shards + 1, rows);
  bounds[0] = 0;
  const uint64_t total = offsets.empty() ? 0 : offsets[rows];
  for (size_t s = 1; s < shards; ++s) {
    const uint64_t target = total * s / shards;
    const auto it =
        std::lower_bound(offsets.begin(), offsets.begin() + rows + 1, target);
    uint32_t row = static_cast<uint32_t>(it - offsets.begin());
    bounds[s] = std::max(bounds[s - 1], std::min(row, rows));
  }
  return bounds;
}

}  // namespace

struct SparseMatrix::TransposeCache {
  std::once_flag once;
  SparseMatrix transposed;
};

SparseMatrix SparseMatrix::FromTriplets(
    uint32_t rows, uint32_t cols,
    std::vector<std::tuple<uint32_t, uint32_t, float>> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              return std::get<0>(a) != std::get<0>(b)
                         ? std::get<0>(a) < std::get<0>(b)
                         : std::get<1>(a) < std::get<1>(b);
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_.assign(static_cast<size_t>(rows) + 1, 0);
  for (size_t i = 0; i < triplets.size(); ++i) {
    const auto& [r, c, v] = triplets[i];
    GAL_CHECK(r < rows && c < cols)
        << "triplet (" << r << "," << c << ") out of " << m.ShapeString();
    if (!m.cols_idx_.empty() && i > 0 &&
        std::get<0>(triplets[i - 1]) == r &&
        std::get<1>(triplets[i - 1]) == c) {
      m.values_.back() += v;  // collapse duplicates
      continue;
    }
    ++m.offsets_[r + 1];
    m.cols_idx_.push_back(c);
    m.values_.push_back(v);
  }
  for (uint32_t r = 0; r < rows; ++r) m.offsets_[r + 1] += m.offsets_[r];
  m.tcache_ = std::make_shared<TransposeCache>();
  return m;
}

std::string SparseMatrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << " nnz=" << nnz() << "]";
  return os.str();
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  GAL_CHECK(cols_ == dense.rows())
      << ShapeString() << " * " << dense.ShapeString();
  Matrix out(rows_, dense.cols());
  if (rows_ == 0 || dense.cols() == 0 || nnz() == 0) return out;
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.spmm_hist());
  const size_t shards = std::min<size_t>(
      rows_, ctx.ShardCountFor(nnz() * dense.cols()));
  const std::vector<uint32_t> bounds =
      NnzBalancedRowBounds(offsets_, rows_, shards);
  ctx.RunShards(shards, [&](size_t s) {
    // Each output row is reduced by exactly one shard in edge order, so
    // the result is bit-identical at any thread count.
    for (uint32_t r = bounds[s]; r < bounds[s + 1]; ++r) {
      float* or_ = out.row(r);
      for (uint64_t e = offsets_[r]; e < offsets_[r + 1]; ++e) {
        // axpy row gather; per-lane multiply-then-add keeps the result
        // bit-identical to the scalar loop.
        simd::AxpyF32(or_, dense.row(cols_idx_[e]), values_[e], dense.cols());
      }
    }
  });
  return out;
}

const SparseMatrix& SparseMatrix::Transposed() const {
  GAL_CHECK(tcache_ != nullptr);
  std::call_once(tcache_->once, [this] {
    SparseMatrix& t = tcache_->transposed;
    t.rows_ = cols_;
    t.cols_ = rows_;
    t.offsets_.assign(static_cast<size_t>(cols_) + 1, 0);
    for (uint32_t c : cols_idx_) ++t.offsets_[c + 1];
    for (uint32_t c = 0; c < cols_; ++c) t.offsets_[c + 1] += t.offsets_[c];
    t.cols_idx_.resize(cols_idx_.size());
    t.values_.resize(values_.size());
    // Counting sort preserves source-row order within each column, so a
    // gather over row c of the transpose accumulates contributions in
    // the same ascending-r order the serial scatter produced.
    std::vector<uint64_t> cursor(t.offsets_.begin(), t.offsets_.end() - 1);
    for (uint32_t r = 0; r < rows_; ++r) {
      for (uint64_t e = offsets_[r]; e < offsets_[r + 1]; ++e) {
        const uint64_t pos = cursor[cols_idx_[e]]++;
        t.cols_idx_[pos] = r;
        t.values_[pos] = values_[e];
      }
    }
  });
  return tcache_->transposed;
}

Matrix SparseMatrix::TransposeMultiply(const Matrix& dense) const {
  GAL_CHECK(rows_ == dense.rows())
      << ShapeString() << "^T * " << dense.ShapeString();
  if (cols_ == 0 || dense.cols() == 0 || nnz() == 0) {
    return Matrix(cols_, dense.cols());
  }
  // Gather over the cached transposed CSR: race-free under row sharding,
  // unlike scattering along this matrix's own rows.
  const SparseMatrix& t = Transposed();
  Matrix out(t.rows_, dense.cols());
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.spmm_hist());
  const size_t shards = std::min<size_t>(
      t.rows_, ctx.ShardCountFor(t.nnz() * dense.cols()));
  const std::vector<uint32_t> bounds =
      NnzBalancedRowBounds(t.offsets_, t.rows_, shards);
  ctx.RunShards(shards, [&](size_t s) {
    for (uint32_t r = bounds[s]; r < bounds[s + 1]; ++r) {
      float* or_ = out.row(r);
      for (uint64_t e = t.offsets_[r]; e < t.offsets_[r + 1]; ++e) {
        simd::AxpyF32(or_, dense.row(t.cols_idx_[e]), t.values_[e],
                      dense.cols());
      }
    }
  });
  return out;
}

SparseMatrix NormalizedAdjacency(const Graph& g, AdjNorm norm) {
  const uint32_t n = g.NumVertices();
  std::vector<std::tuple<uint32_t, uint32_t, float>> triplets;
  triplets.reserve(g.NumAdjacencyEntries() + n);
  if (norm == AdjNorm::kSymmetric) {
    std::vector<float> inv_sqrt(n);
    for (VertexId v = 0; v < n; ++v) {
      inv_sqrt[v] = 1.0f / std::sqrt(static_cast<float>(g.Degree(v)) + 1.0f);
    }
    for (VertexId v = 0; v < n; ++v) {
      triplets.emplace_back(v, v, inv_sqrt[v] * inv_sqrt[v]);
      g.ForEachOutNeighbor(v, [&](VertexId u) {
        triplets.emplace_back(v, u, inv_sqrt[v] * inv_sqrt[u]);
      });
    }
  } else if (norm == AdjNorm::kRowMean) {
    for (VertexId v = 0; v < n; ++v) {
      const float inv = 1.0f / (static_cast<float>(g.Degree(v)) + 1.0f);
      triplets.emplace_back(v, v, inv);
      g.ForEachOutNeighbor(
          v, [&](VertexId u) { triplets.emplace_back(v, u, inv); });
    }
  } else {  // kNeighborMean
    for (VertexId v = 0; v < n; ++v) {
      if (g.Degree(v) == 0) continue;
      const float inv = 1.0f / static_cast<float>(g.Degree(v));
      g.ForEachOutNeighbor(
          v, [&](VertexId u) { triplets.emplace_back(v, u, inv); });
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace gal
