#include "tensor/kernel_context.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/logging.h"

namespace gal {
namespace {

/// Below this many scalar operations a kernel runs inline: the pool's
/// dispatch + wakeup latency would dominate the work itself.
constexpr uint64_t kSerialGrain = 1 << 15;

}  // namespace

KernelContext& KernelContext::Get() {
  static KernelContext ctx;
  return ctx;
}

KernelContext::KernelContext() { SetNumThreads(0); }

size_t KernelContext::DefaultNumThreads() {
  if (const char* env = std::getenv("GAL_KERNEL_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

void KernelContext::SetNumThreads(size_t n) {
  GAL_CHECK(in_flight_.load(std::memory_order_acquire) == 0)
      << "KernelContext::SetNumThreads called while "
      << in_flight_.load(std::memory_order_relaxed)
      << " kernel dispatch(es) are in flight — resizing would join the "
         "pool out from under running shards. Finish (or do not issue) "
         "kernels before changing the thread count.";
  if (n == 0) n = DefaultNumThreads();
  if (n == num_threads_ && (n == 1) == (pool_ == nullptr)) return;
  pool_.reset();  // join old workers before spawning the new pool
  if (n > 1) pool_ = std::make_unique<ThreadPool>(n);
  num_threads_ = n;
}

size_t KernelContext::ShardCountFor(uint64_t work) const {
  if (num_threads_ <= 1 || work < kSerialGrain) return 1;
  const uint64_t by_work =
      std::min<uint64_t>(num_threads_, work / kSerialGrain);
  // Two-level coordination: live pipeline stage executors shrink the
  // per-kernel fan-out so executors * shards stays within the machine.
  return static_cast<size_t>(
      std::min<uint64_t>(by_work, CoreBudget::Get().KernelShardCap()));
}

void KernelContext::RunShards(size_t shards,
                              const std::function<void(size_t)>& fn) {
  if (shards <= 1 || pool_ == nullptr) {
    for (size_t s = 0; s < shards; ++s) fn(s);
    return;
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  pool_->ParallelFor(shards, fn);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void KernelContext::ParallelFor1D(
    size_t n, uint64_t work_per_item,
    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards =
      std::min<size_t>(n, ShardCountFor(n * std::max<uint64_t>(1, work_per_item)));
  if (shards <= 1) {
    fn(0, n);
    return;
  }
  RunShards(shards, [&](size_t s) {
    const size_t begin = n * s / shards;
    const size_t end = n * (s + 1) / shards;
    if (begin < end) fn(begin, end);
  });
}

std::vector<StageTimingStat> KernelContext::KernelStats() const {
  return {
      StageTimingStat::FromHistogram("gemm", gemm_hist_),
      StageTimingStat::FromHistogram("spmm", spmm_hist_),
      StageTimingStat::FromHistogram("elementwise", elementwise_hist_),
  };
}

void KernelContext::ResetKernelStats() {
  gemm_hist_.Reset();
  spmm_hist_.Reset();
  elementwise_hist_.Reset();
}

}  // namespace gal
