#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/simd.h"
#include "tensor/kernel_context.h"

namespace gal {
namespace {

/// k-tile width: one tile of B (kKTile rows) stays hot in cache while a
/// shard's C rows stream over it.
constexpr uint32_t kKTile = 128;
/// C-row panel width for the transpose-A kernel: the panel of output
/// rows revisited on every k step must fit in cache.
constexpr uint32_t kIPanel = 64;

/// Shard count for a GEMM parallelized over `out_rows` output rows doing
/// `work` scalar ops total. Each output row is produced by exactly one
/// shard, so results are bit-identical at any thread count.
size_t GemmShards(const KernelContext& ctx, uint32_t out_rows, uint64_t work) {
  return std::min<size_t>(std::max<uint32_t>(1, out_rows),
                          ctx.ShardCountFor(work));
}

}  // namespace

Matrix Matrix::Xavier(uint32_t rows, uint32_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const float bound =
      std::sqrt(6.0f / (static_cast<float>(rows) + static_cast<float>(cols)));
  for (float& v : m.data_) {
    v = static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * bound;
  }
  return m;
}

void Matrix::AddScaled(const Matrix& other, float alpha) {
  GAL_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << ShapeString() << " += alpha * " << other.ShapeString();
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.elementwise_hist());
  ctx.ParallelFor1D(data_.size(), 2, [&](size_t begin, size_t end) {
    simd::AxpyF32(data_.data() + begin, other.data_.data() + begin, alpha,
                  end - begin);
  });
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

double Matrix::MeanAbsDiff(const Matrix& other) const {
  GAL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    s += std::abs(static_cast<double>(data_[i]) - other.data_[i]);
  }
  return s / static_cast<double>(data_.size());
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << "]";
  return os.str();
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  GAL_CHECK(a.cols() == b.rows())
      << a.ShapeString() << " * " << b.ShapeString();
  Matrix c(a.rows(), b.cols());
  if (a.rows() == 0 || a.cols() == 0 || b.cols() == 0) return c;
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.gemm_hist());
  const uint64_t work =
      uint64_t{a.rows()} * a.cols() * b.cols();
  const size_t shards = GemmShards(ctx, a.rows(), work);
  const uint32_t rows = a.rows();
  const uint32_t kdim = a.cols();
  const uint32_t ncols = b.cols();
  ctx.RunShards(shards, [&](size_t s) {
    const uint32_t r0 = static_cast<uint32_t>(uint64_t{rows} * s / shards);
    const uint32_t r1 =
        static_cast<uint32_t>(uint64_t{rows} * (s + 1) / shards);
    // Row-panel × k-tile: per k-tile the touched B panel stays cached
    // while this shard's C rows stream over it. Per C row the k order is
    // 0..K ascending whatever the shard bounds — bit-deterministic.
    for (uint32_t k0 = 0; k0 < kdim; k0 += kKTile) {
      const uint32_t k1 = std::min(kdim, k0 + kKTile);
      for (uint32_t i = r0; i < r1; ++i) {
        float* ci = c.row(i);
        const float* ai = a.row(i);
        for (uint32_t k = k0; k < k1; ++k) {
          const float aik = ai[k];
          if (aik == 0.0f) continue;
          // axpy form: per-lane multiply-then-add preserves the scalar
          // loop's per-element rounding at any vector width.
          simd::AxpyF32(ci, b.row(k), aik, ncols);
        }
      }
    }
  });
  return c;
}

Matrix MatmulTransposeA(const Matrix& a, const Matrix& b) {
  GAL_CHECK(a.rows() == b.rows())
      << a.ShapeString() << "^T * " << b.ShapeString();
  Matrix c(a.cols(), b.cols());
  if (a.rows() == 0 || a.cols() == 0 || b.cols() == 0) return c;
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.gemm_hist());
  const uint64_t work = uint64_t{a.rows()} * a.cols() * b.cols();
  const size_t shards = GemmShards(ctx, a.cols(), work);
  const uint32_t out_rows = a.cols();
  const uint32_t kdim = a.rows();
  const uint32_t ncols = b.cols();
  ctx.RunShards(shards, [&](size_t s) {
    const uint32_t r0 = static_cast<uint32_t>(uint64_t{out_rows} * s / shards);
    const uint32_t r1 =
        static_cast<uint32_t>(uint64_t{out_rows} * (s + 1) / shards);
    // Output rows of C = A^T B are indexed by A's columns; sharding by
    // output row keeps the scatter race-free. Within a C-row panel each
    // k step reads a contiguous slice a[k][i0..i1) and one B row.
    for (uint32_t i0 = r0; i0 < r1; i0 += kIPanel) {
      const uint32_t i1 = std::min(r1, i0 + kIPanel);
      for (uint32_t k = 0; k < kdim; ++k) {
        const float* ak = a.row(k);
        const float* bk = b.row(k);
        for (uint32_t i = i0; i < i1; ++i) {
          const float aki = ak[i];
          if (aki == 0.0f) continue;
          simd::AxpyF32(c.row(i), bk, aki, ncols);
        }
      }
    }
  });
  return c;
}

Matrix MatmulTransposeB(const Matrix& a, const Matrix& b) {
  GAL_CHECK(a.cols() == b.cols())
      << a.ShapeString() << " * " << b.ShapeString() << "^T";
  Matrix c(a.rows(), b.rows());
  if (a.rows() == 0 || a.cols() == 0 || b.rows() == 0) return c;
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.gemm_hist());
  const uint64_t work = uint64_t{a.rows()} * a.cols() * b.rows();
  const size_t shards = GemmShards(ctx, a.rows(), work);
  const uint32_t rows = a.rows();
  const uint32_t kdim = a.cols();
  const uint32_t out_cols = b.rows();
  ctx.RunShards(shards, [&](size_t s) {
    const uint32_t r0 = static_cast<uint32_t>(uint64_t{rows} * s / shards);
    const uint32_t r1 =
        static_cast<uint32_t>(uint64_t{rows} * (s + 1) / shards);
    // Blocked accumulator form of the dot products: per k-tile partial
    // sums flow into the C row, so the k-tile of B is streamed once per
    // A row instead of once per (i, j) pair.
    for (uint32_t i = r0; i < r1; ++i) {
      const float* ai = a.row(i);
      float* ci = c.row(i);
      for (uint32_t k0 = 0; k0 < kdim; k0 += kKTile) {
        const uint32_t k1 = std::min(kdim, k0 + kKTile);
        for (uint32_t j = 0; j < out_cols; ++j) {
          const float* bj = b.row(j);
          float s_kj = 0.0f;
          for (uint32_t k = k0; k < k1; ++k) s_kj += ai[k] * bj[k];
          ci[j] += s_kj;
        }
      }
    }
  });
  return c;
}

Matrix ReluForward(const Matrix& z, Matrix* mask) {
  Matrix h = z;
  if (mask != nullptr) *mask = Matrix(z.rows(), z.cols());
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.elementwise_hist());
  float* hd = h.data().data();
  float* md = mask != nullptr ? mask->data().data() : nullptr;
  const float* zd = z.data().data();
  ctx.ParallelFor1D(h.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (zd[i] > 0.0f) {
        if (md != nullptr) md[i] = 1.0f;
      } else {
        hd[i] = 0.0f;
      }
    }
  });
  return h;
}

Matrix ReluBackward(const Matrix& grad, const Matrix& mask) {
  GAL_CHECK(grad.rows() == mask.rows() && grad.cols() == mask.cols())
      << grad.ShapeString() << " vs mask " << mask.ShapeString();
  Matrix out = grad;
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.elementwise_hist());
  float* od = out.data().data();
  const float* md = mask.data().data();
  ctx.ParallelFor1D(out.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) od[i] *= md[i];
  });
  return out;
}

namespace {

/// Row-parallel softmax body shared by SoftmaxRows and the fused
/// cross-entropy (which must not double-record the elementwise span).
Matrix SoftmaxRowsImpl(const Matrix& z) {
  Matrix p(z.rows(), z.cols());
  if (z.rows() == 0 || z.cols() == 0) return p;
  KernelContext& ctx = KernelContext::Get();
  ctx.ParallelFor1D(z.rows(), 4 * uint64_t{z.cols()},
                    [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float* zi = z.row(static_cast<uint32_t>(i));
      float* pi = p.row(static_cast<uint32_t>(i));
      float mx = zi[0];
      for (uint32_t j = 1; j < z.cols(); ++j) mx = std::max(mx, zi[j]);
      double sum = 0.0;
      for (uint32_t j = 0; j < z.cols(); ++j) {
        pi[j] = std::exp(zi[j] - mx);
        sum += pi[j];
      }
      for (uint32_t j = 0; j < z.cols(); ++j) {
        pi[j] = static_cast<float>(pi[j] / sum);
      }
    }
  });
  return p;
}

}  // namespace

Matrix SoftmaxRows(const Matrix& z) {
  ScopedSpan span(KernelContext::Get().elementwise_hist());
  return SoftmaxRowsImpl(z);
}

SoftmaxXentResult SoftmaxCrossEntropy(const Matrix& logits,
                                      const std::vector<int32_t>& labels,
                                      const std::vector<uint8_t>& mask) {
  GAL_CHECK(labels.size() == logits.rows());
  GAL_CHECK(mask.size() == logits.rows());
  KernelContext& ctx = KernelContext::Get();
  ScopedSpan span(ctx.elementwise_hist());
  SoftmaxXentResult result;
  result.grad = Matrix(logits.rows(), logits.cols());
  Matrix probs = SoftmaxRowsImpl(logits);
  uint32_t selected = 0;
  for (uint32_t i = 0; i < logits.rows(); ++i) selected += (mask[i] != 0);
  result.total = selected;
  if (selected == 0) return result;

  // Per-row pass is embarrassingly parallel (grad rows are disjoint);
  // the loss/accuracy reduction runs serially afterwards in row order so
  // the sums are bit-identical at any thread count.
  std::vector<double> row_loss(logits.rows(), 0.0);
  std::vector<uint8_t> row_correct(logits.rows(), 0);
  ctx.ParallelFor1D(logits.rows(), 4 * uint64_t{logits.cols()},
                    [&](size_t begin, size_t end) {
    for (size_t row = begin; row < end; ++row) {
      const uint32_t i = static_cast<uint32_t>(row);
      if (!mask[i]) continue;
      const int32_t y = labels[i];
      GAL_CHECK(y >= 0 && static_cast<uint32_t>(y) < logits.cols());
      const float p = std::max(probs.at(i, y), 1e-12f);
      row_loss[i] = -std::log(p);
      uint32_t argmax = 0;
      for (uint32_t j = 1; j < logits.cols(); ++j) {
        if (probs.at(i, j) > probs.at(i, argmax)) argmax = j;
      }
      row_correct[i] = (argmax == static_cast<uint32_t>(y));
      for (uint32_t j = 0; j < logits.cols(); ++j) {
        result.grad.at(i, j) =
            (probs.at(i, j) - (j == static_cast<uint32_t>(y) ? 1.0f : 0.0f)) /
            static_cast<float>(selected);
      }
    }
  });
  for (uint32_t i = 0; i < logits.rows(); ++i) {
    result.loss += row_loss[i];
    result.correct += row_correct[i];
  }
  result.loss /= selected;
  return result;
}

}  // namespace gal
