#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gal {

Matrix Matrix::Xavier(uint32_t rows, uint32_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const float bound =
      std::sqrt(6.0f / (static_cast<float>(rows) + static_cast<float>(cols)));
  for (float& v : m.data_) {
    v = static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * bound;
  }
  return m;
}

void Matrix::AddScaled(const Matrix& other, float alpha) {
  GAL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Apply(const std::function<float(float)>& fn) {
  for (float& v : data_) v = fn(v);
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

double Matrix::MeanAbsDiff(const Matrix& other) const {
  GAL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    s += std::abs(static_cast<double>(data_[i]) - other.data_[i]);
  }
  return s / static_cast<double>(data_.size());
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << "]";
  return os.str();
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  GAL_CHECK(a.cols() == b.rows())
      << a.ShapeString() << " * " << b.ShapeString();
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order: streams through b and c rows (cache-friendly).
  for (uint32_t i = 0; i < a.rows(); ++i) {
    float* ci = c.row(i);
    const float* ai = a.row(i);
    for (uint32_t k = 0; k < a.cols(); ++k) {
      const float aik = ai[k];
      if (aik == 0.0f) continue;
      const float* bk = b.row(k);
      for (uint32_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

Matrix MatmulTransposeA(const Matrix& a, const Matrix& b) {
  GAL_CHECK(a.rows() == b.rows())
      << a.ShapeString() << "^T * " << b.ShapeString();
  Matrix c(a.cols(), b.cols());
  for (uint32_t k = 0; k < a.rows(); ++k) {
    const float* ak = a.row(k);
    const float* bk = b.row(k);
    for (uint32_t i = 0; i < a.cols(); ++i) {
      const float aki = ak[i];
      if (aki == 0.0f) continue;
      float* ci = c.row(i);
      for (uint32_t j = 0; j < b.cols(); ++j) ci[j] += aki * bk[j];
    }
  }
  return c;
}

Matrix MatmulTransposeB(const Matrix& a, const Matrix& b) {
  GAL_CHECK(a.cols() == b.cols())
      << a.ShapeString() << " * " << b.ShapeString() << "^T";
  Matrix c(a.rows(), b.rows());
  for (uint32_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (uint32_t j = 0; j < b.rows(); ++j) {
      const float* bj = b.row(j);
      double s = 0.0;
      for (uint32_t k = 0; k < a.cols(); ++k) s += ai[k] * bj[k];
      ci[j] = static_cast<float>(s);
    }
  }
  return c;
}

Matrix ReluForward(const Matrix& z, Matrix* mask) {
  Matrix h = z;
  if (mask != nullptr) *mask = Matrix(z.rows(), z.cols());
  for (uint32_t i = 0; i < z.rows(); ++i) {
    for (uint32_t j = 0; j < z.cols(); ++j) {
      if (z.at(i, j) > 0.0f) {
        if (mask != nullptr) mask->at(i, j) = 1.0f;
      } else {
        h.at(i, j) = 0.0f;
      }
    }
  }
  return h;
}

Matrix ReluBackward(const Matrix& grad, const Matrix& mask) {
  GAL_CHECK(grad.rows() == mask.rows() && grad.cols() == mask.cols());
  Matrix out = grad;
  for (size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] *= mask.data()[i];
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& z) {
  Matrix p(z.rows(), z.cols());
  for (uint32_t i = 0; i < z.rows(); ++i) {
    const float* zi = z.row(i);
    float* pi = p.row(i);
    float mx = zi[0];
    for (uint32_t j = 1; j < z.cols(); ++j) mx = std::max(mx, zi[j]);
    double sum = 0.0;
    for (uint32_t j = 0; j < z.cols(); ++j) {
      pi[j] = std::exp(zi[j] - mx);
      sum += pi[j];
    }
    for (uint32_t j = 0; j < z.cols(); ++j) {
      pi[j] = static_cast<float>(pi[j] / sum);
    }
  }
  return p;
}

SoftmaxXentResult SoftmaxCrossEntropy(const Matrix& logits,
                                      const std::vector<int32_t>& labels,
                                      const std::vector<uint8_t>& mask) {
  GAL_CHECK(labels.size() == logits.rows());
  GAL_CHECK(mask.size() == logits.rows());
  SoftmaxXentResult result;
  result.grad = Matrix(logits.rows(), logits.cols());
  Matrix probs = SoftmaxRows(logits);
  uint32_t selected = 0;
  for (uint32_t i = 0; i < logits.rows(); ++i) selected += (mask[i] != 0);
  result.total = selected;
  if (selected == 0) return result;

  for (uint32_t i = 0; i < logits.rows(); ++i) {
    if (!mask[i]) continue;
    const int32_t y = labels[i];
    GAL_CHECK(y >= 0 && static_cast<uint32_t>(y) < logits.cols());
    const float p = std::max(probs.at(i, y), 1e-12f);
    result.loss -= std::log(p);
    uint32_t argmax = 0;
    for (uint32_t j = 1; j < logits.cols(); ++j) {
      if (probs.at(i, j) > probs.at(i, argmax)) argmax = j;
    }
    result.correct += (argmax == static_cast<uint32_t>(y));
    for (uint32_t j = 0; j < logits.cols(); ++j) {
      result.grad.at(i, j) =
          (probs.at(i, j) - (j == static_cast<uint32_t>(y) ? 1.0f : 0.0f)) /
          static_cast<float>(selected);
    }
  }
  result.loss /= selected;
  return result;
}

}  // namespace gal
