#ifndef GAL_TENSOR_SPARSE_H_
#define GAL_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace gal {

/// A CSR float sparse matrix — the aggregation operator of GNN layers
/// (Â in GCN, the sampled-block operator in mini-batch training).
/// Immutable once built; Multiply / TransposeMultiply run on the shared
/// KernelContext with nnz-balanced row shards, bit-deterministic at any
/// thread count.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  /// Builds from triplets (row, col, value); duplicates are summed.
  /// Degenerate shapes (0 rows / 0 cols / no triplets) are valid and
  /// produce an empty but well-formed CSR.
  static SparseMatrix FromTriplets(
      uint32_t rows, uint32_t cols,
      std::vector<std::tuple<uint32_t, uint32_t, float>> triplets);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  uint64_t nnz() const { return values_.size(); }
  std::string ShapeString() const;

  /// Dense result of (*this) * dense. Parallel over row shards balanced
  /// by nnz (prefix-sum over the CSR offsets), so power-law degree skew
  /// does not serialize on the hub shard.
  Matrix Multiply(const Matrix& dense) const;
  /// Dense result of (*this)^T * dense. Gathers over a lazily built,
  /// cached transposed CSR instead of scattering, so the parallel path
  /// is race-free and bit-identical to the serial scatter.
  Matrix TransposeMultiply(const Matrix& dense) const;

  /// Row access (column indices + values, parallel arrays).
  std::span<const uint32_t> RowIndices(uint32_t r) const {
    GAL_DCHECK(r < rows_);
    return {cols_idx_.data() + offsets_[r], cols_idx_.data() + offsets_[r + 1]};
  }
  std::span<const float> RowValues(uint32_t r) const {
    GAL_DCHECK(r < rows_);
    return {values_.data() + offsets_[r], values_.data() + offsets_[r + 1]};
  }

 private:
  /// The transposed CSR, built on first use under a once_flag. Heap-held
  /// (and defined in the .cc, where SparseMatrix is complete) so
  /// SparseMatrix stays movable; copies share the cache — safe because
  /// the matrix is immutable after FromTriplets.
  struct TransposeCache;

  const SparseMatrix& Transposed() const;

  uint32_t rows_;
  uint32_t cols_;
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> cols_idx_;
  std::vector<float> values_;
  mutable std::shared_ptr<TransposeCache> tcache_;
};

/// GCN normalization choices.
enum class AdjNorm : uint8_t {
  /// D^-1/2 (A + I) D^-1/2 — the Kipf–Welling GCN operator.
  kSymmetric,
  /// D^-1 (A + I) — mean aggregation over the closed neighborhood
  /// (GraphSAGE-mean without concat).
  kRowMean,
  /// D^-1 A — mean over neighbors only, the AGGREGATE of the survey's
  /// GraphSAGE equations (the self vertex enters via CONCAT instead).
  /// Isolated vertices aggregate to zero.
  kNeighborMean,
};

/// The normalized adjacency of an undirected graph (self-loops added).
SparseMatrix NormalizedAdjacency(const Graph& g, AdjNorm norm);

}  // namespace gal

#endif  // GAL_TENSOR_SPARSE_H_
