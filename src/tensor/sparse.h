#ifndef GAL_TENSOR_SPARSE_H_
#define GAL_TENSOR_SPARSE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace gal {

/// A CSR float sparse matrix — the aggregation operator of GNN layers
/// (Â in GCN, the sampled-block operator in mini-batch training).
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  /// Builds from triplets (row, col, value); duplicates are summed.
  static SparseMatrix FromTriplets(
      uint32_t rows, uint32_t cols,
      std::vector<std::tuple<uint32_t, uint32_t, float>> triplets);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  uint64_t nnz() const { return values_.size(); }

  /// Dense result of (*this) * dense.
  Matrix Multiply(const Matrix& dense) const;
  /// Dense result of (*this)^T * dense.
  Matrix TransposeMultiply(const Matrix& dense) const;

  /// Row access (column indices + values, parallel arrays).
  std::span<const uint32_t> RowIndices(uint32_t r) const {
    return {cols_idx_.data() + offsets_[r], cols_idx_.data() + offsets_[r + 1]};
  }
  std::span<const float> RowValues(uint32_t r) const {
    return {values_.data() + offsets_[r], values_.data() + offsets_[r + 1]};
  }

 private:
  uint32_t rows_;
  uint32_t cols_;
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> cols_idx_;
  std::vector<float> values_;
};

/// GCN normalization choices.
enum class AdjNorm : uint8_t {
  /// D^-1/2 (A + I) D^-1/2 — the Kipf–Welling GCN operator.
  kSymmetric,
  /// D^-1 (A + I) — mean aggregation over the closed neighborhood
  /// (GraphSAGE-mean without concat).
  kRowMean,
  /// D^-1 A — mean over neighbors only, the AGGREGATE of the survey's
  /// GraphSAGE equations (the self vertex enters via CONCAT instead).
  /// Isolated vertices aggregate to zero.
  kNeighborMean,
};

/// The normalized adjacency of an undirected graph (self-loops added).
SparseMatrix NormalizedAdjacency(const Graph& g, AdjNorm norm);

}  // namespace gal

#endif  // GAL_TENSOR_SPARSE_H_
