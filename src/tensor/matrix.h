#ifndef GAL_TENSOR_MATRIX_H_
#define GAL_TENSOR_MATRIX_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace gal {

/// A dense row-major float matrix — the minimal tensor the GNN stack
/// needs (feature tables, layer weights, activations). Laptop-scale by
/// design; no BLAS dependency so the repository is self-contained.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(uint32_t rows, uint32_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {}

  static Matrix Zeros(uint32_t rows, uint32_t cols) {
    return Matrix(rows, cols);
  }
  /// Xavier/Glorot uniform initialization (deterministic in `rng`).
  static Matrix Xavier(uint32_t rows, uint32_t cols, Rng& rng);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  uint64_t bytes() const { return data_.size() * sizeof(float); }

  float& at(uint32_t r, uint32_t c) {
    GAL_DCHECK(r < rows_ && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(uint32_t r, uint32_t c) const {
    GAL_DCHECK(r < rows_ && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* row(uint32_t r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(uint32_t r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// this += alpha * other (same shape).
  void AddScaled(const Matrix& other, float alpha);
  /// Elementwise transform in place. Templated (not std::function) so
  /// activation/rounding lambdas inline into the loop.
  template <typename Fn>
  void Apply(Fn&& fn) {
    for (float& v : data_) v = fn(v);
  }
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  double FrobeniusNorm() const;
  /// Mean absolute difference against another matrix of the same shape.
  double MeanAbsDiff(const Matrix& other) const;

  std::string ShapeString() const;

 private:
  uint32_t rows_;
  uint32_t cols_;
  std::vector<float> data_;
};

/// C = A * B.
Matrix Matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix MatmulTransposeA(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix MatmulTransposeB(const Matrix& a, const Matrix& b);

/// ReLU forward; `mask` (same shape) records active units for backward.
Matrix ReluForward(const Matrix& z, Matrix* mask);
/// Gradient gated by the forward mask: dZ = dH ⊙ mask.
Matrix ReluBackward(const Matrix& grad, const Matrix& mask);

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& z);

/// Mean cross-entropy over the rows selected by `mask` (mask[i] != 0),
/// with integer class labels. Also emits dZ = (softmax - onehot) /
/// |selected| on the selected rows (zero elsewhere).
struct SoftmaxXentResult {
  double loss = 0.0;
  Matrix grad;            // dL/dZ
  uint32_t correct = 0;   // argmax == label among selected rows
  uint32_t total = 0;
};
SoftmaxXentResult SoftmaxCrossEntropy(const Matrix& logits,
                                      const std::vector<int32_t>& labels,
                                      const std::vector<uint8_t>& mask);

}  // namespace gal

#endif  // GAL_TENSOR_MATRIX_H_
