#ifndef GAL_TENSOR_KERNEL_CONTEXT_H_
#define GAL_TENSOR_KERNEL_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/core_budget.h"
#include "common/metrics.h"
#include "common/threadpool.h"

namespace gal {

/// Process-wide executor + instrumentation shared by every tensor kernel
/// (dense GEMM, SpMM, elementwise). Kernels shard work over output rows,
/// so each output element is produced by exactly one shard with a fixed
/// accumulation order — results are bit-identical regardless of thread
/// count.
///
/// Thread count resolution: `GAL_KERNEL_THREADS` env override if set to
/// a positive integer, else `hardware_concurrency`. With one thread no
/// pool is spawned and every kernel runs inline (serial fallback).
class KernelContext {
 public:
  /// The singleton; first call resolves the thread-count policy and
  /// spawns the pool.
  static KernelContext& Get();

  KernelContext(const KernelContext&) = delete;
  KernelContext& operator=(const KernelContext&) = delete;

  /// Rebuilds the worker pool with `n` threads; `n == 0` re-resolves the
  /// default policy (env override, else hardware concurrency), so a
  /// GAL_KERNEL_THREADS change after first use is honored by calling
  /// SetNumThreads(0). Calling while kernels are in flight — including
  /// from inside a kernel shard — is rejected with a fatal error rather
  /// than silently corrupting the pool (the old pool would be joined
  /// from one of its own workers).
  void SetNumThreads(size_t n);
  size_t num_threads() const { return num_threads_; }

  /// Runs fn(shard) for shard in [0, shards). Serial inline loop when
  /// `shards <= 1` or the context is single-threaded. Shards must write
  /// disjoint output.
  void RunShards(size_t shards, const std::function<void(size_t)>& fn);

  /// Splits [0, n) into at most ShardCountFor(n * work_per_item)
  /// contiguous ranges and runs fn(begin, end) on each — the elementwise
  /// fast path.
  void ParallelFor1D(size_t n, uint64_t work_per_item,
                     const std::function<void(size_t, size_t)>& fn);

  /// How many shards a job of `work` scalar operations deserves: 1 below
  /// the serial grain (parallel dispatch would cost more than it saves),
  /// else capped by the thread count AND by the process CoreBudget — when
  /// E pipeline stage executors are live, the cap shrinks to
  /// max(1, hardware / E) so stage- and kernel-level parallelism share
  /// the machine instead of multiplying (see common/core_budget.h).
  size_t ShardCountFor(uint64_t work) const;

  /// Per-kernel-class span sinks; every kernel entry point records its
  /// wall time into one of these so training loops can attribute compute
  /// to kernel class (see DistGcnReport::kernel_timings).
  Histogram* gemm_hist() { return &gemm_hist_; }
  Histogram* spmm_hist() { return &spmm_hist_; }
  Histogram* elementwise_hist() { return &elementwise_hist_; }

  /// Summaries of the three kernel-class histograms, named
  /// "gemm" / "spmm" / "elementwise".
  std::vector<StageTimingStat> KernelStats() const;
  void ResetKernelStats();

 private:
  KernelContext();
  static size_t DefaultNumThreads();

  size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
  /// Kernel dispatches currently running; guards SetNumThreads.
  std::atomic<uint32_t> in_flight_{0};

  Histogram gemm_hist_;
  Histogram spmm_hist_;
  Histogram elementwise_hist_;
};

}  // namespace gal

#endif  // GAL_TENSOR_KERNEL_CONTEXT_H_
