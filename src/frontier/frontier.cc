#include "frontier/frontier.h"

namespace gal {

void FrontierBitmap::AppendSetBits(std::vector<VertexId>& out) const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<VertexId>(wi * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
}

void VertexFrontier::AssignFromBitmap(const FrontierBitmap& bits,
                                      const Graph& g) {
  verts_.clear();
  edges_ = 0;
  bits.AppendSetBits(verts_);
  for (VertexId v : verts_) edges_ += g.Degree(v);
  bitmap_ = bits;
  bitmap_valid_ = true;
}

}  // namespace gal
