#ifndef GAL_FRONTIER_FRONTIER_H_
#define GAL_FRONTIER_FRONTIER_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// Dense frontier representation: one bit per vertex. The pull ("bottom
/// up") direction of a direction-optimizing traversal tests membership
/// per inspected in-edge, so membership must be O(1) — a sorted sparse
/// queue would pay a binary search per probe.
class FrontierBitmap {
 public:
  FrontierBitmap() = default;
  explicit FrontierBitmap(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t num_bits() const { return num_bits_; }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Zeroes every bit (word-wise; O(|V|/64)).
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Population count over all words.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  void Swap(FrontierBitmap& other) {
    std::swap(num_bits_, other.num_bits_);
    words_.swap(other.words_);
  }

  /// Appends every set bit index, ascending, to `out` — the dense→sparse
  /// conversion of the hybrid frontier.
  void AppendSetBits(std::vector<VertexId>& out) const;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Sparse frontier representation: one growing buffer with a sliding
/// window marking the current level (the classic sliding-queue idiom of
/// direction-optimizing BFS runtimes). Pushes append after the window;
/// Slide() retires the consumed window and exposes what was pushed as
/// the next one. Access is index-based so producers may push while the
/// current window is being consumed (a reallocation never invalidates a
/// window index, only outstanding references).
template <typename T>
class SlidingQueue {
 public:
  SlidingQueue() = default;

  void Reserve(size_t n) { buf_.reserve(n); }

  /// Appends to the *next* window.
  void Push(T v) { buf_.push_back(std::move(v)); }

  /// Number of elements in the current window.
  size_t WindowSize() const { return window_end_ - window_begin_; }
  bool WindowEmpty() const { return window_end_ == window_begin_; }

  /// Element i of the current window. The reference is invalidated by
  /// Push (reallocation); re-index after mutating the queue.
  const T& At(size_t i) const { return buf_[window_begin_ + i]; }
  T& At(size_t i) { return buf_[window_begin_ + i]; }

  /// Elements pushed since the last Slide (the next window so far).
  size_t PendingSize() const { return buf_.size() - window_end_; }

  /// Retires the current window and makes everything pushed since the
  /// last Slide the new one. Consumed elements are erased so the buffer
  /// footprint tracks the live levels, not the whole traversal history.
  void Slide() {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(window_end_));
    window_begin_ = 0;
    window_end_ = buf_.size();
  }

  void Clear() {
    buf_.clear();
    window_begin_ = window_end_ = 0;
  }

  /// Contiguous view of the current window. Invalidated by Push.
  std::span<const T> Window() const {
    return {buf_.data() + window_begin_, buf_.data() + window_end_};
  }

 private:
  std::vector<T> buf_;
  size_t window_begin_ = 0;
  size_t window_end_ = 0;
};

/// The hybrid vertex frontier: a sparse id queue that can materialize a
/// dense bitmap of the same set on demand. Traversal engines build the
/// next frontier sparsely (push order), then ask for whichever
/// representation the chosen direction needs; the two views always
/// describe the same vertex set.
class VertexFrontier {
 public:
  explicit VertexFrontier(VertexId num_vertices)
      : bitmap_(num_vertices), bitmap_valid_(true) {}

  VertexId num_vertices() const {
    return static_cast<VertexId>(bitmap_.num_bits());
  }

  /// Adds v to the frontier and accumulates its out-degree into the
  /// scout count used by the direction heuristic. Duplicates are the
  /// caller's responsibility (engines dedup with a per-step bitmap).
  void Add(VertexId v, uint32_t degree) {
    verts_.push_back(v);
    edges_ += degree;
    bitmap_valid_ = false;
  }

  /// Replaces the contents with the set bits of `bits` (ascending).
  void AssignFromBitmap(const FrontierBitmap& bits, const Graph& g);

  std::span<const VertexId> Vertices() const { return verts_; }
  uint64_t VertexCount() const { return verts_.size(); }
  /// Σ out-degree of the frontier — Beamer's m_f scout count.
  uint64_t EdgeCount() const { return edges_; }
  bool Empty() const { return verts_.empty(); }

  /// Dense view; built lazily from the sparse queue on first use after a
  /// mutation. The conversion is exact: Test(v) iff v was Added.
  const FrontierBitmap& Bitmap() {
    if (!bitmap_valid_) {
      bitmap_.Reset();
      for (VertexId v : verts_) bitmap_.Set(v);
      bitmap_valid_ = true;
    }
    return bitmap_;
  }

  void Clear() {
    verts_.clear();
    edges_ = 0;
    bitmap_.Reset();
    bitmap_valid_ = true;
  }

  void Swap(VertexFrontier& other) {
    verts_.swap(other.verts_);
    std::swap(edges_, other.edges_);
    bitmap_.Swap(other.bitmap_);
    std::swap(bitmap_valid_, other.bitmap_valid_);
  }

 private:
  std::vector<VertexId> verts_;
  uint64_t edges_ = 0;
  FrontierBitmap bitmap_;
  bool bitmap_valid_ = false;
};

}  // namespace gal

#endif  // GAL_FRONTIER_FRONTIER_H_
