#include "frontier/traversal.h"

#include <algorithm>
#include <numeric>

#include "common/threadpool.h"
#include "common/timer.h"
#include "partition/partition.h"

namespace gal {
namespace {

/// Per-worker counters a worker updates without synchronization.
struct alignas(64) StepCounters {
  uint64_t edges = 0;
  uint64_t messages = 0;
  uint64_t active = 0;
};

/// The simulated-cluster scaffolding every frontier traversal shares:
/// worker count and partition resolution, per-worker vertex buckets,
/// exchange lanes, and the ledger/clock bookkeeping of one step.
class FrontierRuntime {
 public:
  FrontierRuntime(const Graph& g, const FrontierEngineOptions& options)
      : owned_(options.cluster == nullptr
                   ? std::make_unique<ClusterRuntime>(ClusterOptions{
                         ResolveClusterWorkers(options.num_workers),
                         NetworkCostModel{}})
                   : nullptr),
        cluster_(options.cluster != nullptr ? options.cluster : owned_.get()),
        workers_(cluster_->num_workers()),
        partition_(HashPartition(g, workers_)),
        pool_(std::min(workers_, ResolveTaskThreads(0))),
        owned_vertices_(workers_),
        counters_(workers_),
        wire_msgs_(workers_, std::vector<uint64_t>(workers_, 0)),
        compute_seconds_(workers_, 0.0) {
    cluster_->InstallPartition(partition_);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      owned_vertices_[partition_.assignment[v]].push_back(v);
    }
  }

  uint32_t workers() const { return workers_; }
  ClusterRuntime& cluster() { return *cluster_; }
  uint32_t OwnerOf(VertexId v) const { return partition_.assignment[v]; }
  const std::vector<VertexId>& OwnedVertices(uint32_t w) const {
    return owned_vertices_[w];
  }

  /// Runs fn(w) on every simulated worker (host threads are an
  /// execution detail) and accumulates per-worker wall time for the
  /// virtual clock.
  void ForEachWorker(const std::function<void(uint32_t)>& fn) {
    pool_.ParallelFor(workers_, [&](size_t w) {
      Timer t;
      fn(static_cast<uint32_t>(w));
      compute_seconds_[w] += t.ElapsedSeconds();
    });
  }

  StepCounters& counters(uint32_t w) { return counters_[w]; }
  /// Counts one wire message from src to dst (no-op when src == dst —
  /// local handoffs are free on the wire).
  void CountWire(uint32_t src, uint32_t dst) {
    if (src != dst) ++wire_msgs_[src][dst];
  }

  void BeginStep() {
    for (StepCounters& c : counters_) c = StepCounters{};
    for (auto& row : wire_msgs_) std::fill(row.begin(), row.end(), 0);
    std::fill(compute_seconds_.begin(), compute_seconds_.end(), 0.0);
    extra_wire_bytes_ = 0;
    extra_wire_msgs_ = 0;
  }

  /// Charges an all-to-all broadcast of `bytes_per_pair` from every
  /// worker to every other — the frontier-bitmap shipment that lets a
  /// pull step test membership locally instead of messaging per edge.
  void ChargeBroadcast(uint64_t bytes_per_pair) {
    TrafficLedger& ledger = cluster_->ledger();
    for (uint32_t src = 0; src < workers_; ++src) {
      for (uint32_t dst = 0; dst < workers_; ++dst) {
        if (src == dst) continue;
        ledger.Charge(src, dst, bytes_per_pair, 1);
        extra_wire_bytes_ += bytes_per_pair;
        ++extra_wire_msgs_;
      }
    }
  }

  /// The step barrier: charges the step's wire traffic to the ledger,
  /// advances the virtual clock one round, and folds the counters into
  /// `stats` as one FrontierStep.
  void EndStep(Direction dir, uint64_t frontier_vertices,
               uint64_t frontier_edges, uint64_t wire_message_bytes,
               FrontierTraversalStats& stats) {
    FrontierStep step;
    step.direction = dir;
    step.frontier_vertices = frontier_vertices;
    step.frontier_edges = frontier_edges;
    for (const StepCounters& c : counters_) {
      step.edges_scanned += c.edges;
      step.messages += c.messages;
      step.active_vertices += c.active;
    }
    TrafficLedger& ledger = cluster_->ledger();
    for (uint32_t src = 0; src < workers_; ++src) {
      for (uint32_t dst = 0; dst < workers_; ++dst) {
        const uint64_t msgs = wire_msgs_[src][dst];
        if (msgs == 0) continue;
        ledger.Charge(src, dst, msgs * wire_message_bytes, msgs);
        step.wire_messages += msgs;
        step.wire_bytes += msgs * wire_message_bytes;
      }
    }
    step.wire_messages += extra_wire_msgs_;
    step.wire_bytes += extra_wire_bytes_;
    cluster_->clock().AdvanceRound(
        std::span<const double>(compute_seconds_), step.wire_bytes,
        step.wire_messages);
    ++stats.steps;
    if (dir == Direction::kPush) ++stats.push_steps;
    else ++stats.pull_steps;
    stats.edges_scanned += step.edges_scanned;
    stats.messages += step.messages;
    stats.vertex_activations += step.active_vertices;
    stats.per_step.push_back(step);
  }

  /// Finalizes run-wide stats from the ledger/clock deltas.
  void Finish(const TrafficSnapshot& ledger_start, size_t clock_start,
              double wall_seconds, uint32_t switches,
              FrontierTraversalStats& stats) {
    const TrafficSnapshot end = cluster_->ledger().Snapshot();
    stats.wire_messages = end.cross_messages - ledger_start.cross_messages;
    stats.wire_bytes = end.cross_bytes - ledger_start.cross_bytes;
    stats.modeled_seconds = cluster_->clock().SecondsSince(clock_start);
    stats.wall_seconds = wall_seconds;
    stats.direction_switches = switches;
  }

 private:
  std::unique_ptr<ClusterRuntime> owned_;
  ClusterRuntime* cluster_;
  uint32_t workers_;
  VertexPartition partition_;
  ThreadPool pool_;
  std::vector<std::vector<VertexId>> owned_vertices_;
  std::vector<StepCounters> counters_;
  std::vector<std::vector<uint64_t>> wire_msgs_;  // [src][dst], per step
  uint64_t extra_wire_bytes_ = 0;  // broadcast traffic, per step
  uint64_t extra_wire_msgs_ = 0;
  std::vector<double> compute_seconds_;
};

/// Per-(src worker, dst worker) exchange lanes of one step, reused
/// across steps. Only the owning src worker appends to its row.
template <typename Entry>
class Lanes {
 public:
  explicit Lanes(uint32_t workers)
      : lanes_(workers, std::vector<std::vector<Entry>>(workers)) {}

  void Push(uint32_t src, uint32_t dst, Entry e) {
    lanes_[src][dst].push_back(std::move(e));
  }
  /// Visits dst's inbound lanes in ascending src order (the
  /// deterministic delivery order) and clears them.
  void Drain(uint32_t dst, const std::function<void(const Entry&)>& fn) {
    for (auto& row : lanes_) {
      for (const Entry& e : row[dst]) fn(e);
      row[dst].clear();
    }
  }

 private:
  std::vector<std::vector<std::vector<Entry>>> lanes_;  // [src][dst]
};

/// Splits the frontier into per-owner buckets for a push step.
void BucketByOwner(const FrontierRuntime& rt,
                   std::span<const VertexId> frontier,
                   std::vector<std::vector<VertexId>>& buckets) {
  for (auto& b : buckets) b.clear();
  for (VertexId v : frontier) buckets[rt.OwnerOf(v)].push_back(v);
}

}  // namespace

FrontierBfsResult FrontierBfs(const Graph& g, VertexId source,
                              const FrontierEngineOptions& options) {
  FrontierBfsResult result;
  const VertexId n = g.NumVertices();
  if (source >= n) {
    result.status = Status::InvalidArgument(
        "BFS source " + std::to_string(source) + " out of range for |V|=" +
        std::to_string(n));
    return result;
  }
  Timer timer;
  FrontierRuntime rt(g, options);
  const uint32_t W = rt.workers();
  const TrafficSnapshot ledger_start = rt.cluster().ledger().Snapshot();
  const size_t clock_start = rt.cluster().clock().rounds();
  const uint64_t wire_bytes_per_msg =
      sizeof(VertexId) + options.message_overhead_bytes;

  std::vector<uint32_t>& dist = result.distance;
  dist.assign(n, kFrontierUnreachable);
  dist[source] = 0;

  VertexFrontier frontier(n), next(n);
  frontier.Add(source, g.Degree(source));
  uint64_t unexplored_edges = g.NumAdjacencyEntries() - g.Degree(source);
  DirectionController controller(options.direction, n);
  const Graph* reversed = nullptr;  // in-neighbor view, built at first pull

  Lanes<VertexId> lanes(W);
  std::vector<std::vector<VertexId>> buckets(W);
  std::vector<std::vector<VertexId>> next_lane(W);

  uint32_t level = 0;
  while (!frontier.Empty() && level < options.max_steps) {
    ++level;
    const Direction dir = controller.Next(
        frontier.EdgeCount(), frontier.VertexCount(), unexplored_edges);
    rt.BeginStep();

    if (dir == Direction::kPush) {
      BucketByOwner(rt, frontier.Vertices(), buckets);
      // Scatter: frontier vertices send their id to every still
      // unvisited out-neighbor's owner.
      rt.ForEachWorker([&](uint32_t w) {
        StepCounters& c = rt.counters(w);
        for (VertexId v : buckets[w]) {
          ++c.active;
          g.ForEachOutNeighbor(v, [&](VertexId u) {
            ++c.edges;
            if (dist[u] != kFrontierUnreachable) return;
            ++c.messages;
            const uint32_t dst = rt.OwnerOf(u);
            rt.CountWire(w, dst);
            lanes.Push(w, dst, u);
          });
        }
      });
      // Deliver: each owner claims its newly reached vertices in the
      // deterministic lane order.
      rt.ForEachWorker([&](uint32_t d) {
        lanes.Drain(d, [&](const VertexId& u) {
          if (dist[u] == kFrontierUnreachable) {
            dist[u] = level;
            next_lane[d].push_back(u);
          }
        });
      });
    } else {
      if (reversed == nullptr) reversed = &g.ReversedView();
      const FrontierBitmap& bits = frontier.Bitmap();
      // A pull step's only wire traffic is the frontier bitmap: each
      // worker ships its |V|/W-vertex slice to every other worker once,
      // and all membership probes after that are local. This is the
      // comm-volume flip: a dense frontier costs O(|V|/8) bytes instead
      // of one message per unclaimed in-edge.
      rt.ChargeBroadcast((n + W - 1) / W / 8 + 1 +
                         options.message_overhead_bytes);
      // Gather: every unvisited vertex probes its in-neighbors and
      // claims the level at the first frontier hit.
      rt.ForEachWorker([&](uint32_t d) {
        StepCounters& c = rt.counters(d);
        for (VertexId v : rt.OwnedVertices(d)) {
          if (dist[v] != kFrontierUnreachable) continue;
          ++c.active;
          // Cursor, not callback: the whole point of the pull lane is
          // stopping at the first frontier hit, which a ForEach can't.
          for (Graph::NeighborCursor cur = reversed->OutNeighbors(v);
               cur.Valid(); cur.Next()) {
            ++c.edges;
            ++c.messages;
            if (bits.Test(cur.Get())) {
              dist[v] = level;
              next_lane[d].push_back(v);
              break;
            }
          }
        }
      });
    }

    // Merge the next frontier in worker order — deterministic at any
    // host thread count.
    next.Clear();
    for (uint32_t w = 0; w < W; ++w) {
      for (VertexId v : next_lane[w]) next.Add(v, g.Degree(v));
      next_lane[w].clear();
    }
    unexplored_edges -= next.EdgeCount();
    rt.EndStep(dir, frontier.VertexCount(), frontier.EdgeCount(),
               wire_bytes_per_msg, result.stats);
    frontier.Swap(next);
  }

  rt.Finish(ledger_start, clock_start, timer.ElapsedSeconds(),
            controller.switches(), result.stats);
  return result;
}

FrontierWccResult FrontierWcc(const Graph& g,
                              const FrontierEngineOptions& options) {
  FrontierWccResult result;
  // Weak components: propagate over out ∪ in neighbors. For undirected
  // graphs this is the graph itself; for directed ones the lazily
  // cached symmetrized view.
  const Graph& ug = g.UndirectedView();
  const VertexId n = ug.NumVertices();
  Timer timer;
  FrontierRuntime rt(ug, options);
  const uint32_t W = rt.workers();
  const TrafficSnapshot ledger_start = rt.cluster().ledger().Snapshot();
  const size_t clock_start = rt.cluster().clock().rounds();
  const uint64_t wire_bytes_per_msg =
      sizeof(VertexId) + options.message_overhead_bytes;

  std::vector<VertexId>& label = result.component;
  label.resize(n);
  std::iota(label.begin(), label.end(), 0);
  std::vector<VertexId> next_label = label;

  VertexFrontier frontier(n), next(n);
  for (VertexId v = 0; v < n; ++v) frontier.Add(v, ug.Degree(v));
  // Labels keep improving anywhere, so Beamer's "unexplored" mass is the
  // whole edge set: pull once the frontier covers > 1/alpha of it.
  const uint64_t total_edges = ug.NumAdjacencyEntries();
  DirectionController controller(options.direction, n);

  struct LabelMsg {
    VertexId dst;
    VertexId label;
  };
  Lanes<LabelMsg> lanes(W);
  std::vector<std::vector<VertexId>> buckets(W);
  std::vector<std::vector<VertexId>> next_lane(W);

  uint32_t steps = 0;
  while (!frontier.Empty() && steps < options.max_steps) {
    ++steps;
    const Direction dir = controller.Next(
        frontier.EdgeCount(), frontier.VertexCount(), total_edges);
    rt.BeginStep();

    if (dir == Direction::kPush) {
      BucketByOwner(rt, frontier.Vertices(), buckets);
      rt.ForEachWorker([&](uint32_t w) {
        StepCounters& c = rt.counters(w);
        for (VertexId v : buckets[w]) {
          ++c.active;
          const VertexId lv = label[v];
          ug.ForEachOutNeighbor(v, [&](VertexId u) {
            ++c.edges;
            if (lv >= label[u]) return;  // cannot improve u
            ++c.messages;
            const uint32_t dst = rt.OwnerOf(u);
            rt.CountWire(w, dst);
            lanes.Push(w, dst, {u, lv});
          });
        }
      });
      rt.ForEachWorker([&](uint32_t d) {
        lanes.Drain(d, [&](const LabelMsg& m) {
          if (m.label < next_label[m.dst]) {
            // First improvement enrolls the vertex in the next frontier.
            if (next_label[m.dst] == label[m.dst]) {
              next_lane[d].push_back(m.dst);
            }
            next_label[m.dst] = m.label;
          }
        });
      });
    } else {
      const FrontierBitmap& bits = frontier.Bitmap();
      // Gather: every vertex takes the minimum label over its frontier
      // neighbors. No early exit exists for a min-gather, but the scan
      // is sequential over the local CSR and pays wire cost only for
      // cross-partition probes.
      rt.ForEachWorker([&](uint32_t d) {
        StepCounters& c = rt.counters(d);
        for (VertexId v : rt.OwnedVertices(d)) {
          ++c.active;
          VertexId best = label[v];
          ug.ForEachOutNeighbor(v, [&](VertexId u) {
            ++c.edges;
            if (!bits.Test(u)) return;
            ++c.messages;
            rt.CountWire(d, rt.OwnerOf(u));
            best = std::min(best, label[u]);
          });
          if (best < label[v]) {
            next_label[v] = best;
            next_lane[d].push_back(v);
          }
        }
      });
    }

    next.Clear();
    for (uint32_t w = 0; w < W; ++w) {
      for (VertexId v : next_lane[w]) {
        label[v] = next_label[v];
        next.Add(v, ug.Degree(v));
      }
      next_lane[w].clear();
    }
    rt.EndStep(dir, frontier.VertexCount(), frontier.EdgeCount(),
               wire_bytes_per_msg, result.stats);
    frontier.Swap(next);
  }

  std::vector<uint8_t> seen(n, 0);
  uint32_t components = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!seen[label[v]]) {
      seen[label[v]] = 1;
      ++components;
    }
  }
  result.num_components = components;
  rt.Finish(ledger_start, clock_start, timer.ElapsedSeconds(),
            controller.switches(), result.stats);
  return result;
}

FrontierSsspResult FrontierSssp(const Graph& g, VertexId source,
                                EdgeWeightFn weight,
                                const FrontierEngineOptions& options) {
  FrontierSsspResult result;
  const VertexId n = g.NumVertices();
  if (source >= n) {
    result.status = Status::InvalidArgument(
        "SSSP source " + std::to_string(source) + " out of range for |V|=" +
        std::to_string(n));
    return result;
  }
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  Timer timer;
  FrontierRuntime rt(g, options);
  const uint32_t W = rt.workers();
  const TrafficSnapshot ledger_start = rt.cluster().ledger().Snapshot();
  const size_t clock_start = rt.cluster().clock().rounds();
  const uint64_t wire_bytes_per_msg =
      sizeof(uint64_t) + options.message_overhead_bytes;

  std::vector<uint64_t>& dist = result.distance;
  dist.assign(n, kInf);
  dist[source] = 0;

  // Weighted relaxation has no pull early-exit, so every step scatters;
  // the frontier substrate still carries the active set (sparse queue,
  // bitmap dedup of re-improved vertices).
  VertexFrontier frontier(n), next(n);
  frontier.Add(source, g.Degree(source));
  // One dedup bitmap PER drain worker: workers own disjoint vertices,
  // but bits of different owners share 64-bit words, so a single
  // shared bitmap would make the drain phase's read-modify-writes race
  // (a lost Set drops an improved vertex from the next frontier).
  std::vector<FrontierBitmap> in_next(W, FrontierBitmap(n));

  struct DistMsg {
    VertexId dst;
    uint64_t dist;
  };
  Lanes<DistMsg> lanes(W);
  std::vector<std::vector<VertexId>> buckets(W);
  std::vector<std::vector<VertexId>> next_lane(W);

  uint32_t steps = 0;
  while (!frontier.Empty() && steps < options.max_steps) {
    ++steps;
    rt.BeginStep();
    BucketByOwner(rt, frontier.Vertices(), buckets);
    rt.ForEachWorker([&](uint32_t w) {
      StepCounters& c = rt.counters(w);
      for (VertexId v : buckets[w]) {
        ++c.active;
        const uint64_t dv = dist[v];
        g.ForEachOutNeighbor(v, [&](VertexId u) {
          ++c.edges;
          // Weights are a function of ORIGINAL ids so a reordered
          // layout traverses the same weighted graph.
          const uint64_t cand = dv + weight(g.OriginalId(v), g.OriginalId(u));
          if (cand >= dist[u]) return;  // stale reads only skip work
          ++c.messages;
          const uint32_t dst = rt.OwnerOf(u);
          rt.CountWire(w, dst);
          lanes.Push(w, dst, {u, cand});
        });
      }
    });
    rt.ForEachWorker([&](uint32_t d) {
      lanes.Drain(d, [&](const DistMsg& m) {
        if (m.dist < dist[m.dst]) {
          dist[m.dst] = m.dist;
          if (!in_next[d].Test(m.dst)) {
            in_next[d].Set(m.dst);
            next_lane[d].push_back(m.dst);
          }
        }
      });
    });

    next.Clear();
    for (uint32_t w = 0; w < W; ++w) {
      for (VertexId v : next_lane[w]) {
        in_next[w].Clear(v);
        next.Add(v, g.Degree(v));
      }
      next_lane[w].clear();
    }
    rt.EndStep(Direction::kPush, frontier.VertexCount(),
               frontier.EdgeCount(), wire_bytes_per_msg, result.stats);
    frontier.Swap(next);
  }

  rt.Finish(ledger_start, clock_start, timer.ElapsedSeconds(), 0,
            result.stats);
  return result;
}

}  // namespace gal
