#ifndef GAL_FRONTIER_DIRECTION_H_
#define GAL_FRONTIER_DIRECTION_H_

#include <cstdint>

#include "graph/graph.h"

namespace gal {

/// Which way a traversal step walks the adjacency structure.
///   kPush — scatter from frontier vertices over their out-edges (the
///           classic top-down / message-passing step);
///   kPull — every candidate vertex gathers over its in-edges, stopping
///           at the first frontier hit (Beamer's bottom-up step).
enum class Direction : uint8_t { kPush, kPull };

/// How the per-step direction is chosen.
enum class DirectionMode : uint8_t {
  kAuto,      // Beamer scout-count heuristic (the default)
  kPushOnly,  // baseline: never pull (bit-identical reference)
  kPullOnly,  // always gather (for representation-parity testing)
};

/// Direction-optimizing knobs (Beamer, Asanović, Patterson, SC'12).
/// A step switches push→pull when the edges the frontier would scatter
/// over exceed 1/alpha of the edges still incident to unexplored
/// vertices, and pull→push when the frontier shrinks below |V|/beta.
struct DirectionConfig {
  DirectionMode mode = DirectionMode::kAuto;
  double alpha = 15.0;
  double beta = 18.0;

  /// Defaults with environment overrides applied:
  ///   GAL_FRONTIER_MODE  ∈ {auto, push, pull}
  ///   GAL_FRONTIER_ALPHA > 0 (push→pull aggressiveness; higher = later)
  ///   GAL_FRONTIER_BETA  > 0 (pull→push switch-back; higher = later)
  static DirectionConfig FromEnv();
};

/// Per-run direction chooser with the hysteresis the two thresholds
/// encode: once pulling, keep pulling until the frontier is sparse again.
class DirectionController {
 public:
  DirectionController(const DirectionConfig& config, VertexId num_vertices)
      : config_(config), num_vertices_(num_vertices) {}

  /// Direction for the step about to run. `frontier_edges` is Beamer's
  /// m_f (Σ out-degree of the frontier), `frontier_vertices` its n_f,
  /// `unexplored_edges` his m_u (Σ degree of not-yet-claimed vertices).
  Direction Next(uint64_t frontier_edges, uint64_t frontier_vertices,
                 uint64_t unexplored_edges);

  Direction current() const { return current_; }
  uint32_t switches() const { return switches_; }

 private:
  DirectionConfig config_;
  VertexId num_vertices_;
  Direction current_ = Direction::kPush;
  uint32_t switches_ = 0;
};

}  // namespace gal

#endif  // GAL_FRONTIER_DIRECTION_H_
