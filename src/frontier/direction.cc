#include "frontier/direction.h"

#include <cstdlib>
#include <cstring>

namespace gal {

DirectionConfig DirectionConfig::FromEnv() {
  DirectionConfig config;
  if (const char* env = std::getenv("GAL_FRONTIER_MODE")) {
    if (std::strcmp(env, "push") == 0) config.mode = DirectionMode::kPushOnly;
    else if (std::strcmp(env, "pull") == 0) config.mode = DirectionMode::kPullOnly;
    else if (std::strcmp(env, "auto") == 0) config.mode = DirectionMode::kAuto;
    // Unrecognized values keep the auto default.
  }
  if (const char* env = std::getenv("GAL_FRONTIER_ALPHA")) {
    const double v = std::atof(env);
    if (v > 0.0) config.alpha = v;
  }
  if (const char* env = std::getenv("GAL_FRONTIER_BETA")) {
    const double v = std::atof(env);
    if (v > 0.0) config.beta = v;
  }
  return config;
}

Direction DirectionController::Next(uint64_t frontier_edges,
                                    uint64_t frontier_vertices,
                                    uint64_t unexplored_edges) {
  switch (config_.mode) {
    case DirectionMode::kPushOnly:
      current_ = Direction::kPush;
      return current_;
    case DirectionMode::kPullOnly:
      current_ = Direction::kPull;
      return current_;
    case DirectionMode::kAuto:
      break;
  }
  if (current_ == Direction::kPush) {
    // Scatter would check more edges than 1/alpha of what is left to
    // claim: gathering over in-edges with early exit is cheaper.
    if (static_cast<double>(frontier_edges) >
        static_cast<double>(unexplored_edges) / config_.alpha) {
      current_ = Direction::kPull;
      ++switches_;
    }
  } else {
    // The frontier thinned out: scanning every candidate's in-edges
    // costs more than scattering the few remaining frontier vertices.
    if (static_cast<double>(frontier_vertices) <
        static_cast<double>(num_vertices_) / config_.beta) {
      current_ = Direction::kPush;
      ++switches_;
    }
  }
  return current_;
}

}  // namespace gal
