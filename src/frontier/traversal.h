#ifndef GAL_FRONTIER_TRAVERSAL_H_
#define GAL_FRONTIER_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "frontier/direction.h"
#include "frontier/frontier.h"
#include "graph/graph.h"

namespace gal {

/// Distance sentinel of the frontier traversals (same value as the TLAV
/// kUnreachable so result vectors compare bit-identical across engines).
inline constexpr uint32_t kFrontierUnreachable =
    std::numeric_limits<uint32_t>::max();

/// Configuration of the frontier-based (level-synchronous) traversal
/// engine. Like TlavConfig, a non-null `cluster` makes the run charge
/// the shared runtime's TrafficLedger and VirtualClock and adopt its
/// worker count; otherwise a private runtime with `num_workers` workers
/// is used. Host threads (GAL_TASK_THREADS) never change results.
struct FrontierEngineOptions {
  DirectionConfig direction = DirectionConfig::FromEnv();
  ClusterRuntime* cluster = nullptr;
  /// Simulated workers when `cluster` is null (0 = GAL_CLUSTER_WORKERS,
  /// else 4 — the same default every engine config uses).
  uint32_t num_workers = 0;
  /// Per-wire-message envelope added to the payload, matching the TLAV
  /// engine's message_overhead_bytes so wire volumes are comparable.
  uint32_t message_overhead_bytes = 8;
  /// Safety bound on level-synchronous steps.
  uint32_t max_steps = 1000000;
};

/// One level-synchronous step as the engine executed it.
struct FrontierStep {
  Direction direction = Direction::kPush;
  uint64_t frontier_vertices = 0;  // n_f entering the step
  uint64_t frontier_edges = 0;     // m_f scout count entering the step
  uint64_t active_vertices = 0;    // vertices computed this step
  uint64_t edges_scanned = 0;      // adjacency entries inspected
  uint64_t messages = 0;           // logical sends (push) / probes (pull)
  /// Cross-partition traffic: per-message for scatter steps; for a BFS
  /// pull step, the all-to-all frontier-bitmap broadcast that makes the
  /// membership probes local (WCC pulls fetch remote *labels*, so they
  /// stay per-probe).
  uint64_t wire_messages = 0;
  uint64_t wire_bytes = 0;
};

/// Run totals; wire fields are this run's TrafficLedger delta and
/// modeled seconds this run's VirtualClock delta, exactly like
/// TlavStats, so push-only and direction-optimizing rows land on one
/// comparable axis.
struct FrontierTraversalStats {
  uint32_t steps = 0;
  uint32_t push_steps = 0;
  uint32_t pull_steps = 0;
  uint32_t direction_switches = 0;
  uint64_t edges_scanned = 0;
  uint64_t messages = 0;
  uint64_t vertex_activations = 0;
  uint64_t wire_messages = 0;
  uint64_t wire_bytes = 0;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;
  std::vector<FrontierStep> per_step;
};

/// Direction-optimizing BFS (Beamer-style): push steps scatter the
/// frontier over out-edges; pull steps gather over Graph::ReversedView()
/// in-edges with first-hit early exit. Results are bit-identical to a
/// push-only run for any direction schedule, worker count, and host
/// thread count. `status` is non-OK (and `distance` empty) when `source`
/// is out of range.
struct FrontierBfsResult {
  std::vector<uint32_t> distance;  // kFrontierUnreachable if not reached
  FrontierTraversalStats stats;
  Status status;
};
FrontierBfsResult FrontierBfs(const Graph& g, VertexId source,
                              const FrontierEngineOptions& options = {});

/// Hash-min weakly-connected components over the undirected view
/// (Graph::UndirectedView(): out ∪ in neighbors), so directed graphs get
/// *weak* components. Push steps scatter changed labels; pull steps
/// gather the neighborhood minimum under the frontier bitmap.
struct FrontierWccResult {
  std::vector<VertexId> component;  // min vertex id of each component
  uint32_t num_components = 0;
  FrontierTraversalStats stats;
};
FrontierWccResult FrontierWcc(const Graph& g,
                              const FrontierEngineOptions& options = {});

/// Bellman-Ford SSSP with SyntheticEdgeWeight-compatible weights
/// supplied by `weight`. Always scatters (weighted gather has no early
/// exit), but the active set rides the frontier substrate: the sparse
/// queue tracks improved vertices, deduplicated through the bitmap.
struct FrontierSsspResult {
  std::vector<uint64_t> distance;  // UINT64_MAX if not reached
  FrontierTraversalStats stats;
  Status status;
};
using EdgeWeightFn = uint32_t (*)(VertexId, VertexId);
FrontierSsspResult FrontierSssp(const Graph& g, VertexId source,
                                EdgeWeightFn weight,
                                const FrontierEngineOptions& options = {});

}  // namespace gal

#endif  // GAL_FRONTIER_TRAVERSAL_H_
