#ifndef GAL_TLAV_ALGOS_BATCHED_QUERIES_H_
#define GAL_TLAV_ALGOS_BATCHED_QUERIES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tlav/engine.h"

namespace gal {

/// Quegel-style online vertex queries with superstep-sharing: many
/// light point queries (here: single-source BFS distance queries) run
/// *inside one BSP schedule*, so the per-superstep barrier and message
/// routing are amortized across the whole batch instead of being paid
/// per query — the core idea of the presenters' query-centric system.
struct BatchedBfsResult {
  /// distances[q][v] = hop distance from sources[q] (kUnreachable if
  /// not reached).
  std::vector<std::vector<uint32_t>> distances;
  TlavStats stats;           // one engine run for the whole batch
  uint32_t queries = 0;
};

BatchedBfsResult BatchedBfsQueries(const Graph& g,
                                   const std::vector<VertexId>& sources,
                                   const TlavConfig& config = {});

/// Baseline: the same queries as independent engine runs (one BSP
/// schedule each). Returns summed stats for comparison.
BatchedBfsResult SequentialBfsQueries(const Graph& g,
                                      const std::vector<VertexId>& sources,
                                      const TlavConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_BATCHED_QUERIES_H_
