#include "tlav/algos/wcc_sv.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "tlav/algos/wcc.h"

namespace gal {

SvWccResult SvWcc(const Graph& g) {
  const VertexId n = g.NumVertices();
  SvWccResult result;
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  if (n == 0) return result;

  // Synchronous rounds, as a BSP engine would execute them: every hook
  // decision in a round reads the round's *snapshot* of the parent
  // array (what a Pregel superstep sees), so the measured round count
  // reflects the parallel algorithm's O(log |V|), not sequential luck.
  std::vector<VertexId> proposal(n);
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    // Hook phase: every root collects the minimum neighboring root
    // proposed against the snapshot.
    for (VertexId v = 0; v < n; ++v) proposal[v] = parent[v];
    for (VertexId u = 0; u < n; ++u) {
      g.ForEachOutNeighbor(u, [&](VertexId v) {
        ++result.work;
        const VertexId ru = parent[u];
        const VertexId rv = parent[v];
        if (ru == rv) return;
        // Hook only roots (parent[r] == r) to preserve forest shape.
        if (ru < rv && parent[rv] == rv) {
          proposal[rv] = std::min(proposal[rv], ru);
        } else if (rv < ru && parent[ru] == ru) {
          proposal[ru] = std::min(proposal[ru], rv);
        }
      });
    }
    for (VertexId v = 0; v < n; ++v) {
      if (proposal[v] != parent[v]) {
        parent[v] = proposal[v];
        changed = true;
      }
    }
    // Jump phase: one synchronous halving step (parent = grandparent),
    // again from a snapshot.
    for (VertexId v = 0; v < n; ++v) proposal[v] = parent[parent[v]];
    for (VertexId v = 0; v < n; ++v) {
      ++result.work;
      if (parent[v] != proposal[v]) {
        parent[v] = proposal[v];
        changed = true;
      }
    }
  }

  result.component = std::move(parent);
  std::unordered_set<VertexId> roots(result.component.begin(),
                                     result.component.end());
  result.num_components = static_cast<uint32_t>(roots.size());
  return result;
}

BlockWccResult BlockWcc(const Graph& g, uint32_t num_blocks,
                        const TlavConfig& config) {
  const VertexId n = g.NumVertices();
  BlockWccResult result;
  if (n == 0) return result;
  GAL_CHECK(num_blocks >= 1);

  // Deterministic spread of seeds across the id space.
  std::vector<VertexId> seeds;
  const VertexId stride = std::max<VertexId>(1, n / num_blocks);
  for (VertexId s = 0; s < n && seeds.size() < num_blocks; s += stride) {
    seeds.push_back(s);
  }
  VertexPartition blocks = BfsVoronoiPartition(g, num_blocks, seeds);
  result.num_blocks = num_blocks;

  // Step 1 (inside each block, serial): local components via union-find.
  std::vector<VertexId> local_root(n);
  for (VertexId v = 0; v < n; ++v) local_root[v] = v;
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (local_root[v] != v) {
      local_root[v] = local_root[local_root[v]];
      v = local_root[v];
    }
    return v;
  };
  for (VertexId u = 0; u < n; ++u) {
    g.ForEachOutNeighbor(u, [&](VertexId v) {
      if (blocks.assignment[u] != blocks.assignment[v]) return;
      const VertexId ru = find(u);
      const VertexId rv = find(v);
      if (ru != rv) local_root[std::max(ru, rv)] = std::min(ru, rv);
    });
  }
  for (VertexId v = 0; v < n; ++v) local_root[v] = find(v);

  // Step 2: quotient graph over local components, connected by the
  // cross-block edges, solved with hash-min on the TLAV engine. The
  // quotient is tiny, so supersteps track its diameter, not the
  // original graph's.
  std::unordered_map<VertexId, VertexId> quotient_id;
  std::vector<VertexId> quotient_rep;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId r = local_root[v];
    if (quotient_id.emplace(r, static_cast<VertexId>(quotient_rep.size()))
            .second) {
      quotient_rep.push_back(r);
    }
  }
  std::vector<Edge> quotient_edges;
  for (VertexId u = 0; u < n; ++u) {
    g.ForEachOutNeighbor(u, [&](VertexId v) {
      if (blocks.assignment[u] == blocks.assignment[v]) return;
      const VertexId qu = quotient_id[local_root[u]];
      const VertexId qv = quotient_id[local_root[v]];
      if (qu != qv) {
        quotient_edges.push_back({std::min(qu, qv), std::max(qu, qv)});
      }
    });
  }
  Result<Graph> quotient = Graph::FromEdges(
      static_cast<VertexId>(quotient_rep.size()), std::move(quotient_edges),
      GraphOptions{});
  GAL_CHECK(quotient.ok()) << quotient.status();

  TlavConfig block_config = config;
  WccResult quotient_wcc = Wcc(quotient.value(), block_config);
  result.block_supersteps = quotient_wcc.stats.supersteps;
  result.block_stats = quotient_wcc.stats;

  // Project back: component of v = quotient component of its local root,
  // normalized to the smallest original vertex id in the component so
  // results are comparable with Wcc()/SvWcc().
  std::unordered_map<VertexId, VertexId> comp_min;
  std::vector<VertexId> comp_of(n);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId q = quotient_id[local_root[v]];
    comp_of[v] = quotient_wcc.component[q];
    auto [it, inserted] = comp_min.emplace(comp_of[v], v);
    if (!inserted) it->second = std::min(it->second, v);
  }
  result.component.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.component[v] = comp_min[comp_of[v]];
  }
  result.num_components = static_cast<uint32_t>(comp_min.size());
  return result;
}

}  // namespace gal
