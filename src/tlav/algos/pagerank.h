#ifndef GAL_TLAV_ALGOS_PAGERANK_H_
#define GAL_TLAV_ALGOS_PAGERANK_H_

#include <vector>

#include "graph/graph.h"
#include "tlav/engine.h"

namespace gal {

/// PageRank on the TLAV engine — the survey's canonical "vertex
/// analytics" workload (Figure 1 path 1). Dangling mass is redistributed
/// through an aggregator, exercising Pregel's aggregator mechanism.
struct PageRankOptions {
  uint32_t iterations = 20;
  double damping = 0.85;
  TlavConfig engine;
};

struct PageRankResult {
  std::vector<double> ranks;  // sums to ~1
  TlavStats stats;
};

PageRankResult PageRank(const Graph& g, const PageRankOptions& options = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_PAGERANK_H_
