#ifndef GAL_TLAV_ALGOS_WCC_SV_H_
#define GAL_TLAV_ALGOS_WCC_SV_H_

#include <vector>

#include "graph/graph.h"
#include "partition/partition.h"
#include "tlav/engine.h"

namespace gal {

/// Connected components in O(log |V|) rounds by Shiloach–Vishkin-style
/// pointer jumping — the class of "Pregel algorithms with performance
/// guarantees" the survey's complexity bound refers to: each phase
/// halves the depth of the component forest, so even a path graph
/// finishes in logarithmically many phases (vs hash-min's Θ(|V|)).
///
/// Implemented as a sequence of TLAV-style phases over a parent array:
///   hook  — every vertex points its root to the smallest neighboring
///           root (min-hooking keeps the forest acyclic);
///   jump  — parent = parent(parent) until the forest is flat.
/// Rounds and per-round work are reported in the same units as
/// TlavStats so it is directly comparable with hash-min Wcc().
struct SvWccResult {
  std::vector<VertexId> component;
  uint32_t num_components = 0;
  /// Hook + jump phases executed (the "supersteps" of this algorithm).
  uint32_t rounds = 0;
  /// Total parent reads/writes — the O(|V|+|E|) per-round work measure.
  uint64_t work = 0;
};

SvWccResult SvWcc(const Graph& g);

/// Blogel-style block-centric WCC (Yan et al. [49]): partition the graph
/// into blocks (graph Voronoi), solve components *inside* each block
/// serially in one step, then run label propagation on the tiny block
/// quotient graph. Supersteps collapse from O(diameter) to
/// O(block-graph diameter) — the "think like a block" speedup.
struct BlockWccResult {
  std::vector<VertexId> component;
  uint32_t num_components = 0;
  uint32_t num_blocks = 0;
  /// Supersteps of the TLAV run over the block quotient graph.
  uint32_t block_supersteps = 0;
  TlavStats block_stats;
};

/// `num_blocks` seeds are chosen deterministically; pass the worker
/// count (or more) for a realistic Blogel configuration.
BlockWccResult BlockWcc(const Graph& g, uint32_t num_blocks,
                        const TlavConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_WCC_SV_H_
