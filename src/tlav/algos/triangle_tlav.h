#ifndef GAL_TLAV_ALGOS_TRIANGLE_TLAV_H_
#define GAL_TLAV_ALGOS_TRIANGLE_TLAV_H_

#include <cstdint>

#include "graph/graph.h"
#include "tlav/engine.h"

namespace gal {

/// Triangle counting expressed vertex-centrically: every vertex forwards
/// its higher-ordered neighbor pairs as "is w your neighbor?" queries.
/// This is the message-heavy MapReduce/Pregel formulation that the
/// survey's §1 anecdote skewers (5.33 min on 1636 machines vs 0.5 min on
/// one): the wedge-query messages dwarf the serial algorithm's work.
/// Kept deliberately faithful so bench_triangle_gap can measure the gap.
struct TlavTriangleResult {
  uint64_t triangles = 0;
  TlavStats stats;
};

TlavTriangleResult TlavTriangleCount(const Graph& g,
                                     const TlavConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_TRIANGLE_TLAV_H_
