#include "tlav/algos/traversal.h"

#include <algorithm>

#include "tlav/algos/frontier_bridge.h"

namespace gal {
namespace {

Status ValidateSource(const Graph& g, VertexId source) {
  if (source >= g.NumVertices()) {
    return Status::InvalidArgument(
        "traversal source " + std::to_string(source) +
        " out of range for |V|=" + std::to_string(g.NumVertices()));
  }
  return Status::Ok();
}

struct BfsProgram : public VertexProgram<uint32_t, uint32_t> {
  explicit BfsProgram(VertexId source) : source_(source) {}

  void Compute(VertexHandle<uint32_t, uint32_t>& v,
               std::span<const uint32_t> messages) override {
    if (v.superstep() == 0) {
      v.value() = kUnreachable;
      if (v.id() == source_) {
        v.value() = 0;
        v.SendToAllNeighbors(1);
      }
      v.VoteToHalt();
      return;
    }
    uint32_t best = v.value();
    for (uint32_t m : messages) best = std::min(best, m);
    if (best < v.value()) {
      v.value() = best;
      v.SendToAllNeighbors(best + 1);
    }
    v.VoteToHalt();
  }

  bool has_combiner() const override { return true; }
  uint32_t Combine(const uint32_t& a, const uint32_t& b) const override {
    return std::min(a, b);
  }

  VertexId source_;
};

struct SsspProgram : public VertexProgram<uint64_t, uint64_t> {
  SsspProgram(VertexId source, const Graph* g) : source_(source), g_(g) {}

  void Compute(VertexHandle<uint64_t, uint64_t>& v,
               std::span<const uint64_t> messages) override {
    if (v.superstep() == 0) {
      v.value() = std::numeric_limits<uint64_t>::max();
      if (v.id() == source_) {
        v.value() = 0;
        Relax(v);
      }
      v.VoteToHalt();
      return;
    }
    uint64_t best = v.value();
    for (uint64_t m : messages) best = std::min(best, m);
    if (best < v.value()) {
      v.value() = best;
      Relax(v);
    }
    v.VoteToHalt();
  }

  void Relax(VertexHandle<uint64_t, uint64_t>& v) {
    // Synthetic weights are a pure function of the ORIGINAL endpoint
    // ids, so a reordered layout sees the exact same weighted graph.
    const VertexId vo = g_->OriginalId(v.id());
    for (VertexId u : v.Neighbors()) {
      v.SendTo(u, v.value() + SyntheticEdgeWeight(vo, g_->OriginalId(u)));
    }
  }

  bool has_combiner() const override { return true; }
  uint64_t Combine(const uint64_t& a, const uint64_t& b) const override {
    return std::min(a, b);
  }

  VertexId source_;
  const Graph* g_;
};

}  // namespace

uint32_t SyntheticEdgeWeight(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  uint64_t x = (static_cast<uint64_t>(u) << 32) | v;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x % 16) + 1;
}

BfsResult TlavBfs(const Graph& g, VertexId source,
                  const TraversalOptions& options) {
  BfsResult result;
  result.status = ValidateSource(g, source);
  if (!result.status.ok()) return result;
  // Callers address vertices in original-id space; the engines run in
  // the (possibly reordered) internal layout, so translate on the way
  // in and permute per-vertex results back on the way out.
  source = g.InternalId(source);

  if (internal::UseFrontierPath(options.engine, options.direction)) {
    FrontierBfsResult fr = FrontierBfs(
        g, source, internal::ToFrontierOptions(options.engine, options.direction));
    result.distance = g.MapToOriginal(std::move(fr.distance));
    result.stats = internal::BridgeStats(fr.stats, sizeof(uint32_t),
                                         options.engine.message_overhead_bytes);
    result.status = std::move(fr.status);
    return result;
  }

  TlavEngine<uint32_t, uint32_t> engine(&g, options.engine);
  BfsProgram program(source);
  result.stats = engine.Run(program);
  result.distance = g.MapToOriginal(engine.values());
  return result;
}

BfsResult TlavBfs(const Graph& g, VertexId source, const TlavConfig& config) {
  TraversalOptions options;
  options.engine = config;
  return TlavBfs(g, source, options);
}

SsspResult TlavSssp(const Graph& g, VertexId source,
                    const TraversalOptions& options) {
  SsspResult result;
  result.status = ValidateSource(g, source);
  if (!result.status.ok()) return result;
  source = g.InternalId(source);

  if (internal::UseFrontierPath(options.engine, options.direction)) {
    FrontierSsspResult fr = FrontierSssp(
        g, source, &SyntheticEdgeWeight,
        internal::ToFrontierOptions(options.engine, options.direction));
    result.distance = g.MapToOriginal(std::move(fr.distance));
    result.stats = internal::BridgeStats(fr.stats, sizeof(uint64_t),
                                         options.engine.message_overhead_bytes);
    result.status = std::move(fr.status);
    return result;
  }

  TlavEngine<uint64_t, uint64_t> engine(&g, options.engine);
  SsspProgram program(source, &g);
  result.stats = engine.Run(program);
  result.distance = g.MapToOriginal(engine.values());
  return result;
}

SsspResult TlavSssp(const Graph& g, VertexId source, const TlavConfig& config) {
  TraversalOptions options;
  options.engine = config;
  return TlavSssp(g, source, options);
}

}  // namespace gal
