#ifndef GAL_TLAV_ALGOS_TRAVERSAL_H_
#define GAL_TLAV_ALGOS_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "tlav/engine.h"

namespace gal {

inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

/// Hop distances from `source` (frontier-style BFS on the TLAV engine).
struct BfsResult {
  std::vector<uint32_t> distance;  // kUnreachable if not reached
  TlavStats stats;
};
BfsResult TlavBfs(const Graph& g, VertexId source, const TlavConfig& config = {});

/// Deterministic synthetic edge weight in [1, 16], symmetric in (u, v).
/// Gives the unweighted substrate a weighted-SSSP workload without
/// storing weights in the CSR arrays.
uint32_t SyntheticEdgeWeight(VertexId u, VertexId v);

/// Single-source shortest paths with SyntheticEdgeWeight, Pregel-style
/// (delta-free Bellman-Ford with min combiner).
struct SsspResult {
  std::vector<uint64_t> distance;  // UINT64_MAX if not reached
  TlavStats stats;
};
SsspResult TlavSssp(const Graph& g, VertexId source,
                    const TlavConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_TRAVERSAL_H_
