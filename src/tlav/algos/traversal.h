#ifndef GAL_TLAV_ALGOS_TRAVERSAL_H_
#define GAL_TLAV_ALGOS_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "frontier/direction.h"
#include "graph/graph.h"
#include "tlav/engine.h"

namespace gal {

inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

/// How a traversal runs: the Pregel-style engine parameters plus the
/// frontier substrate's direction policy. With the default (kAuto, or
/// GAL_FRONTIER_MODE override) the run routes through the
/// direction-optimizing frontier substrate (src/frontier/); forcing
/// kPushOnly — or using engine features the substrate does not model
/// (mirroring, checkpointing, fault injection) — runs the original
/// message-passing engine. Results are bit-identical either way.
struct TraversalOptions {
  TlavConfig engine;
  DirectionConfig direction = DirectionConfig::FromEnv();
};

/// Hop distances from `source` (frontier-style BFS). `status` is non-OK
/// and `distance` empty when `source` is out of range — callers that
/// ignored the old silent all-kUnreachable behavior now see the error.
struct BfsResult {
  std::vector<uint32_t> distance;  // kUnreachable if not reached
  TlavStats stats;
  Status status;
};
BfsResult TlavBfs(const Graph& g, VertexId source,
                  const TraversalOptions& options);
BfsResult TlavBfs(const Graph& g, VertexId source,
                  const TlavConfig& config = {});

/// Deterministic synthetic edge weight in [1, 16], symmetric in (u, v).
/// Gives the unweighted substrate a weighted-SSSP workload without
/// storing weights in the CSR arrays.
uint32_t SyntheticEdgeWeight(VertexId u, VertexId v);

/// Single-source shortest paths with SyntheticEdgeWeight, Pregel-style
/// (delta-free Bellman-Ford with min combiner). Same error contract as
/// TlavBfs for an out-of-range source.
struct SsspResult {
  std::vector<uint64_t> distance;  // UINT64_MAX if not reached
  TlavStats stats;
  Status status;
};
SsspResult TlavSssp(const Graph& g, VertexId source,
                    const TraversalOptions& options);
SsspResult TlavSssp(const Graph& g, VertexId source,
                    const TlavConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_TRAVERSAL_H_
