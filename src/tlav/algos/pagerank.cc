#include "tlav/algos/pagerank.h"

#include <cmath>

namespace gal {
namespace {

/// Rank contributions travel as fixed-point integers (2^-50 resolution).
/// Floating-point summation is order-sensitive, and both vertex
/// reordering and worker/thread splits change the order messages fold in
/// — integer addition is associative and commutative, so the reduction
/// is exact and the final ranks are bit-identical across layouts,
/// worker counts, and delivery orders. Total rank mass is ~1, so the
/// fixed-point sum stays far below 2^63 (and below 2^53 when mirrored
/// into the double-typed dangling aggregator, keeping that sum exact
/// too). Quantization error is ~2^-51 per edge, orders of magnitude
/// under the tolerance any consumer of PageRank uses.
constexpr double kFixedScale = static_cast<double>(1ull << 50);

uint64_t ToFixed(double x) {
  return static_cast<uint64_t>(std::llround(x * kFixedScale));
}

double FromFixed(uint64_t fixed) {
  return static_cast<double>(fixed) / kFixedScale;
}

struct PageRankProgram : public VertexProgram<double, uint64_t> {
  PageRankProgram(uint32_t iterations, double damping)
      : iterations_(iterations), damping_(damping) {}

  void Compute(VertexHandle<double, uint64_t>& v,
               std::span<const uint64_t> messages) override {
    const double n = static_cast<double>(v.num_vertices());
    if (v.superstep() == 0) {
      v.value() = 1.0 / n;
    } else {
      uint64_t sum = 0;
      for (uint64_t m : messages) sum += m;
      // Dangling mass from the previous superstep is shared uniformly.
      // The aggregate holds an exact integer (fixed-point units).
      const double dangling = FromFixed(
          static_cast<uint64_t>(v.GetAggregate("dangling"))) / n;
      v.value() = (1.0 - damping_) / n + damping_ * (FromFixed(sum) + dangling);
    }
    if (v.superstep() < iterations_) {
      const uint32_t degree = v.Degree();
      if (degree > 0) {
        v.SendToAllNeighbors(ToFixed(v.value() / degree));
      } else {
        v.Aggregate("dangling", static_cast<double>(ToFixed(v.value())));
      }
    } else {
      v.VoteToHalt();
    }
  }

  bool has_combiner() const override { return true; }
  uint64_t Combine(const uint64_t& a, const uint64_t& b) const override {
    return a + b;
  }

  uint32_t iterations_;
  double damping_;
};

}  // namespace

PageRankResult PageRank(const Graph& g, const PageRankOptions& options) {
  TlavEngine<double, uint64_t> engine(&g, options.engine);
  engine.RegisterAggregator("dangling", AggregateOp::kSum, 0.0);
  PageRankProgram program(options.iterations, options.damping);
  PageRankResult result;
  result.stats = engine.Run(program);
  result.ranks = g.MapToOriginal(engine.values());
  return result;
}

}  // namespace gal
