#include "tlav/algos/pagerank.h"

namespace gal {
namespace {

struct PageRankProgram : public VertexProgram<double, double> {
  PageRankProgram(uint32_t iterations, double damping)
      : iterations_(iterations), damping_(damping) {}

  void Compute(VertexHandle<double, double>& v,
               std::span<const double> messages) override {
    const double n = static_cast<double>(v.num_vertices());
    if (v.superstep() == 0) {
      v.value() = 1.0 / n;
    } else {
      double sum = 0.0;
      for (double m : messages) sum += m;
      // Dangling mass from the previous superstep is shared uniformly.
      const double dangling = v.GetAggregate("dangling") / n;
      v.value() = (1.0 - damping_) / n + damping_ * (sum + dangling);
    }
    if (v.superstep() < iterations_) {
      const uint32_t degree = v.Degree();
      if (degree > 0) {
        v.SendToAllNeighbors(v.value() / degree);
      } else {
        v.Aggregate("dangling", v.value());
      }
    } else {
      v.VoteToHalt();
    }
  }

  bool has_combiner() const override { return true; }
  double Combine(const double& a, const double& b) const override {
    return a + b;
  }

  uint32_t iterations_;
  double damping_;
};

}  // namespace

PageRankResult PageRank(const Graph& g, const PageRankOptions& options) {
  TlavEngine<double, double> engine(&g, options.engine);
  engine.RegisterAggregator("dangling", AggregateOp::kSum, 0.0);
  PageRankProgram program(options.iterations, options.damping);
  PageRankResult result;
  result.stats = engine.Run(program);
  result.ranks = engine.values();
  return result;
}

}  // namespace gal
