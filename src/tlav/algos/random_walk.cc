#include "tlav/algos/random_walk.h"

#include "common/rng.h"

namespace gal {
namespace {

struct WalkerMsg {
  uint32_t walk_id;
};

/// Deterministic per-(walk, step) randomness so the corpus is stable
/// regardless of worker count or scheduling.
uint64_t WalkHash(uint64_t seed, uint32_t walk_id, uint32_t step) {
  uint64_t x = seed ^ (static_cast<uint64_t>(walk_id) << 32) ^ step;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct WalkProgram : public VertexProgram<uint8_t, WalkerMsg> {
  WalkProgram(const RandomWalkOptions* options,
              std::vector<std::vector<VertexId>>* corpus)
      : options_(options), corpus_(corpus) {}

  void Compute(VertexHandle<uint8_t, WalkerMsg>& v,
               std::span<const WalkerMsg> messages) override {
    const uint32_t step = v.superstep();
    if (step == 0) {
      for (uint32_t k = 0; k < options_->walks_per_vertex; ++k) {
        const uint32_t walk_id = v.id() * options_->walks_per_vertex + k;
        (*corpus_)[walk_id].push_back(v.id());
        Forward(v, walk_id, 0);
      }
    } else {
      for (const WalkerMsg& m : messages) {
        // Safe without locking: a walk occupies one vertex per step.
        (*corpus_)[m.walk_id].push_back(v.id());
        if (step < options_->walk_length) Forward(v, m.walk_id, step);
      }
    }
    v.VoteToHalt();
  }

  void Forward(VertexHandle<uint8_t, WalkerMsg>& v, uint32_t walk_id,
               uint32_t step) {
    const auto nbrs = v.Neighbors();
    if (nbrs.empty()) return;  // dead end: walk truncates
    const uint64_t h = WalkHash(options_->seed, walk_id, step);
    v.SendTo(nbrs[h % nbrs.size()], {walk_id});
  }

  const RandomWalkOptions* options_;
  std::vector<std::vector<VertexId>>* corpus_;
};

}  // namespace

RandomWalkResult RandomWalkCorpus(const Graph& g,
                                  const RandomWalkOptions& options) {
  RandomWalkResult result;
  const uint64_t num_walks =
      static_cast<uint64_t>(g.NumVertices()) * options.walks_per_vertex;
  result.corpus.assign(num_walks, {});
  TlavEngine<uint8_t, WalkerMsg> engine(&g, options.engine);
  WalkProgram program(&options, &result.corpus);
  result.stats = engine.Run(program);
  return result;
}

}  // namespace gal
