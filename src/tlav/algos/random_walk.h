#ifndef GAL_TLAV_ALGOS_RANDOM_WALK_H_
#define GAL_TLAV_ALGOS_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tlav/engine.h"

namespace gal {

/// DeepWalk-style random-walk corpus generation on the TLAV engine
/// (Figure 1 path 2's analytics stage: walks feed vertex-embedding
/// learners). Each vertex starts `walks_per_vertex` walkers; a walker is
/// a message hopping to a uniform random neighbor each superstep.
struct RandomWalkOptions {
  uint32_t walks_per_vertex = 2;
  uint32_t walk_length = 6;  // steps, so each walk has walk_length+1 vertices
  uint64_t seed = 1;
  TlavConfig engine;
};

struct RandomWalkResult {
  /// corpus[w] is the vertex sequence of walk w; walks from dead ends
  /// are truncated.
  std::vector<std::vector<VertexId>> corpus;
  TlavStats stats;
};

RandomWalkResult RandomWalkCorpus(const Graph& g,
                                  const RandomWalkOptions& options = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_RANDOM_WALK_H_
