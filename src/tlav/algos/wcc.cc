#include "tlav/algos/wcc.h"

#include <algorithm>
#include <unordered_set>

#include "tlav/algos/frontier_bridge.h"

namespace gal {
namespace {

struct WccProgram : public VertexProgram<VertexId, VertexId> {
  void Compute(VertexHandle<VertexId, VertexId>& v,
               std::span<const VertexId> messages) override {
    if (v.superstep() == 0) {
      v.value() = v.id();
      v.SendToAllNeighbors(v.value());
      v.VoteToHalt();
      return;
    }
    VertexId best = v.value();
    for (VertexId m : messages) best = std::min(best, m);
    if (best < v.value()) {
      v.value() = best;
      v.SendToAllNeighbors(best);
    }
    v.VoteToHalt();
  }

  bool has_combiner() const override { return true; }
  VertexId Combine(const VertexId& a, const VertexId& b) const override {
    return std::min(a, b);
  }
};

uint32_t CountComponents(const std::vector<VertexId>& component) {
  std::unordered_set<VertexId> roots(component.begin(), component.end());
  return static_cast<uint32_t>(roots.size());
}

/// Labels computed in internal space are each component's min *internal*
/// id, which depends on the layout. Relabel to the min *original* id so
/// reordered runs are bit-identical to unordered ones: one ascending
/// pass over original ids — the first original id to reach a component
/// root is, by construction, that component's minimum.
std::vector<VertexId> CanonicalizeComponents(const Graph& g,
                                             std::vector<VertexId> internal) {
  if (!g.IsReordered()) return internal;
  const VertexId n = g.NumVertices();
  std::vector<VertexId> mapped(n);
  std::vector<VertexId> root_label(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId root = internal[g.InternalId(v)];
    if (root_label[root] == kInvalidVertex) root_label[root] = v;
    mapped[v] = root_label[root];
  }
  return mapped;
}

}  // namespace

WccResult Wcc(const Graph& g, const WccOptions& options) {
  WccResult result;
  if (internal::UseFrontierPath(options.engine, options.direction)) {
    FrontierWccResult fr = FrontierWcc(
        g, internal::ToFrontierOptions(options.engine, options.direction));
    result.component = CanonicalizeComponents(g, std::move(fr.component));
    result.num_components = fr.num_components;
    result.stats = internal::BridgeStats(fr.stats, sizeof(VertexId),
                                         options.engine.message_overhead_bytes);
    return result;
  }

  // Weak connectivity is direction-blind: the message engine propagates
  // over the symmetrized view so a directed edge carries labels both
  // ways (SendToAllNeighbors alone would walk out-edges only).
  const Graph& ug = g.UndirectedView();
  TlavEngine<VertexId, VertexId> engine(&ug, options.engine);
  WccProgram program;
  result.stats = engine.Run(program);
  result.component = CanonicalizeComponents(g, engine.values());
  result.num_components = CountComponents(result.component);
  return result;
}

WccResult Wcc(const Graph& g, const TlavConfig& config) {
  WccOptions options;
  options.engine = config;
  return Wcc(g, options);
}

}  // namespace gal
