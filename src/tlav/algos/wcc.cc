#include "tlav/algos/wcc.h"

#include <algorithm>
#include <unordered_set>

namespace gal {
namespace {

struct WccProgram : public VertexProgram<VertexId, VertexId> {
  void Compute(VertexHandle<VertexId, VertexId>& v,
               std::span<const VertexId> messages) override {
    if (v.superstep() == 0) {
      v.value() = v.id();
      v.SendToAllNeighbors(v.value());
      v.VoteToHalt();
      return;
    }
    VertexId best = v.value();
    for (VertexId m : messages) best = std::min(best, m);
    if (best < v.value()) {
      v.value() = best;
      v.SendToAllNeighbors(best);
    }
    v.VoteToHalt();
  }

  bool has_combiner() const override { return true; }
  VertexId Combine(const VertexId& a, const VertexId& b) const override {
    return std::min(a, b);
  }
};

}  // namespace

WccResult Wcc(const Graph& g, const TlavConfig& config) {
  TlavEngine<VertexId, VertexId> engine(&g, config);
  WccProgram program;
  WccResult result;
  result.stats = engine.Run(program);
  result.component = engine.values();
  std::unordered_set<VertexId> roots(result.component.begin(),
                                     result.component.end());
  result.num_components = static_cast<uint32_t>(roots.size());
  return result;
}

}  // namespace gal
