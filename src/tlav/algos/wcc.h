#ifndef GAL_TLAV_ALGOS_WCC_H_
#define GAL_TLAV_ALGOS_WCC_H_

#include <vector>

#include "frontier/direction.h"
#include "graph/graph.h"
#include "tlav/engine.h"

namespace gal {

/// Weakly connected components by hash-min label propagation: each
/// vertex repeatedly adopts the minimum id seen in its neighborhood.
/// On directed graphs, propagation runs over the symmetrized
/// Graph::UndirectedView() — weak connectivity ignores edge direction
/// (an earlier version propagated along out-edges only, over-counting
/// components on directed graphs).
///
/// Superstep count is O(diameter) — the workload behind the survey's
/// discussion of TLAV's O((|V|+|E|) log |V|) practical-efficiency
/// envelope (low-diameter graphs converge in ~log |V| rounds; a path
/// graph shows the degenerate linear case).
struct WccResult {
  std::vector<VertexId> component;  // min vertex id of each component
  uint32_t num_components = 0;
  TlavStats stats;
};

/// Like TraversalOptions: the default direction (kAuto unless
/// GAL_FRONTIER_MODE says otherwise) routes through the frontier
/// substrate; forced push or engine features (mirroring, checkpointing,
/// fault injection) run the message engine. Components are identical
/// either way.
struct WccOptions {
  TlavConfig engine;
  DirectionConfig direction = DirectionConfig::FromEnv();
};

WccResult Wcc(const Graph& g, const WccOptions& options);
WccResult Wcc(const Graph& g, const TlavConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_WCC_H_
