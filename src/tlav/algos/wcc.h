#ifndef GAL_TLAV_ALGOS_WCC_H_
#define GAL_TLAV_ALGOS_WCC_H_

#include <vector>

#include "graph/graph.h"
#include "tlav/engine.h"

namespace gal {

/// Weakly connected components by hash-min label propagation: each
/// vertex repeatedly adopts the minimum id seen in its neighborhood.
/// Superstep count is O(diameter) — the workload behind the survey's
/// discussion of TLAV's O((|V|+|E|) log |V|) practical-efficiency
/// envelope (low-diameter graphs converge in ~log |V| rounds; a path
/// graph shows the degenerate linear case).
struct WccResult {
  std::vector<VertexId> component;  // min vertex id of each component
  uint32_t num_components = 0;
  TlavStats stats;
};

WccResult Wcc(const Graph& g, const TlavConfig& config = {});

}  // namespace gal

#endif  // GAL_TLAV_ALGOS_WCC_H_
