#include "tlav/algos/batched_queries.h"

#include <algorithm>

#include "common/logging.h"
#include "tlav/algos/traversal.h"

namespace gal {
namespace {

/// Message: a frontier update of one query.
struct QueryMsg {
  uint32_t query;
  uint32_t distance;
};

/// Vertex value is unused; per-(query, vertex) distances live in one
/// shared table. A vertex's row slice is only written while that vertex
/// computes, so no locking is needed.
struct BatchedBfsProgram : public VertexProgram<uint8_t, QueryMsg> {
  BatchedBfsProgram(const std::vector<VertexId>* sources,
                    std::vector<std::vector<uint32_t>>* distances)
      : sources_(sources), distances_(distances) {}

  void Compute(VertexHandle<uint8_t, QueryMsg>& v,
               std::span<const QueryMsg> messages) override {
    if (v.superstep() == 0) {
      for (uint32_t q = 0; q < sources_->size(); ++q) {
        if ((*sources_)[q] == v.id()) {
          (*distances_)[q][v.id()] = 0;
          v.SendToAllNeighbors({q, 1});
        }
      }
      v.VoteToHalt();
      return;
    }
    // Relax each query's frontier independently; forward improvements.
    for (const QueryMsg& m : messages) {
      uint32_t& cell = (*distances_)[m.query][v.id()];
      if (m.distance < cell) {
        cell = m.distance;
        v.SendToAllNeighbors({m.query, m.distance + 1});
      }
    }
    v.VoteToHalt();
  }

  const std::vector<VertexId>* sources_;
  std::vector<std::vector<uint32_t>>* distances_;
};

}  // namespace

BatchedBfsResult BatchedBfsQueries(const Graph& g,
                                   const std::vector<VertexId>& sources,
                                   const TlavConfig& config) {
  BatchedBfsResult result;
  result.queries = static_cast<uint32_t>(sources.size());
  result.distances.assign(sources.size(),
                          std::vector<uint32_t>(g.NumVertices(),
                                                kUnreachable));
  TlavEngine<uint8_t, QueryMsg> engine(&g, config);
  BatchedBfsProgram program(&sources, &result.distances);
  result.stats = engine.Run(program);
  return result;
}

BatchedBfsResult SequentialBfsQueries(const Graph& g,
                                      const std::vector<VertexId>& sources,
                                      const TlavConfig& config) {
  BatchedBfsResult result;
  result.queries = static_cast<uint32_t>(sources.size());
  // Force push-only so this stays the one-query-per-run message-engine
  // baseline the batched (Quegel-style) engine is measured against;
  // direction-optimizing runs would change the per-query message counts.
  TraversalOptions per_query;
  per_query.engine = config;
  per_query.direction.mode = DirectionMode::kPushOnly;
  for (VertexId s : sources) {
    BfsResult one = TlavBfs(g, s, per_query);
    result.distances.push_back(std::move(one.distance));
    result.stats.supersteps += one.stats.supersteps;
    result.stats.total_messages += one.stats.total_messages;
    result.stats.cross_worker_messages += one.stats.cross_worker_messages;
    result.stats.total_message_bytes += one.stats.total_message_bytes;
    result.stats.cross_worker_bytes += one.stats.cross_worker_bytes;
    result.stats.vertex_activations += one.stats.vertex_activations;
    result.stats.wall_seconds += one.stats.wall_seconds;
  }
  return result;
}

}  // namespace gal
