#ifndef GAL_TLAV_ALGOS_FRONTIER_BRIDGE_H_
#define GAL_TLAV_ALGOS_FRONTIER_BRIDGE_H_

#include <cstdint>

#include "frontier/traversal.h"
#include "tlav/engine.h"

namespace gal {
namespace internal {

/// Whether a traversal configured with `engine` + `direction` routes
/// through the frontier substrate. Forced push keeps the original
/// message engine (the Quegel-style baseline batched queries compare
/// against), as do engine features the substrate does not model:
/// Pregel+ mirroring and any active FaultPlan (checkpointing, failure
/// injection, slowdowns, rebalancing) — results are identical either
/// way.
inline bool UseFrontierPath(const TlavConfig& engine,
                            const DirectionConfig& direction) {
  return direction.mode != DirectionMode::kPushOnly &&
         engine.mirror_degree_threshold == 0 && engine.faults.empty();
}

inline FrontierEngineOptions ToFrontierOptions(const TlavConfig& engine,
                                               const DirectionConfig& direction) {
  FrontierEngineOptions options;
  options.direction = direction;
  options.cluster = engine.cluster;
  options.num_workers = engine.num_workers;
  options.message_overhead_bytes = engine.message_overhead_bytes;
  options.max_steps = engine.max_supersteps;
  return options;
}

/// Folds frontier-substrate run totals into the TlavStats shape so both
/// engines report on one axis. `payload_bytes` is sizeof the logical
/// message the equivalent vertex program would send (wire bytes add
/// message_overhead_bytes on top, exactly like the message engine).
inline TlavStats BridgeStats(const FrontierTraversalStats& fs,
                             uint64_t payload_bytes,
                             uint32_t message_overhead_bytes) {
  TlavStats stats;
  stats.supersteps = fs.steps;
  stats.total_messages = fs.messages;
  stats.cross_worker_messages = fs.wire_messages;
  stats.total_message_bytes =
      fs.messages * (payload_bytes + message_overhead_bytes);
  stats.cross_worker_bytes = fs.wire_bytes;
  stats.vertex_activations = fs.vertex_activations;
  stats.edge_scans = fs.edges_scanned;
  stats.wall_seconds = fs.wall_seconds;
  stats.modeled_seconds = fs.modeled_seconds;
  stats.pull_supersteps = fs.pull_steps;
  stats.direction_switches = fs.direction_switches;
  stats.per_step.reserve(fs.per_step.size());
  for (const FrontierStep& s : fs.per_step) {
    stats.per_step.push_back({s.active_vertices, s.messages});
  }
  return stats;
}

}  // namespace internal
}  // namespace gal

#endif  // GAL_TLAV_ALGOS_FRONTIER_BRIDGE_H_
