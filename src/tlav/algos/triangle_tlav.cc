#include "tlav/algos/triangle_tlav.h"

namespace gal {
namespace {

/// Orders vertices by (degree, id); orienting wedges toward the
/// higher-ordered endpoint bounds per-vertex work on skewed graphs.
bool Precedes(const Graph& g, VertexId a, VertexId b) {
  const uint32_t da = g.Degree(a);
  const uint32_t db = g.Degree(b);
  return da != db ? da < db : a < b;
}

struct TriangleProgram : public VertexProgram<uint64_t, VertexId> {
  explicit TriangleProgram(const Graph* g) : g_(g) {}

  void Compute(VertexHandle<uint64_t, VertexId>& v,
               std::span<const VertexId> messages) override {
    if (v.superstep() == 0) {
      v.value() = 0;
      // For each oriented wedge (v; u, w) with v < u < w in the degree
      // order, ask u whether w is adjacent to it.
      const auto nbrs = v.Neighbors();
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId u = nbrs[i];
        if (!Precedes(*g_, v.id(), u)) continue;
        for (size_t j = 0; j < nbrs.size(); ++j) {
          const VertexId w = nbrs[j];
          if (!Precedes(*g_, u, w)) continue;
          v.SendTo(u, w);
        }
      }
      v.VoteToHalt();
      return;
    }
    // Superstep 1: answer the queries against the local adjacency list.
    uint64_t found = 0;
    for (VertexId w : messages) found += g_->HasEdge(v.id(), w);
    v.value() += found;
    v.VoteToHalt();
  }

  const Graph* g_;
};

}  // namespace

TlavTriangleResult TlavTriangleCount(const Graph& g, const TlavConfig& config) {
  TlavEngine<uint64_t, VertexId> engine(&g, config);
  TriangleProgram program(&g);
  TlavTriangleResult result;
  result.stats = engine.Run(program);
  for (uint64_t c : engine.values()) result.triangles += c;
  return result;
}

}  // namespace gal
