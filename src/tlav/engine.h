#ifndef GAL_TLAV_ENGINE_H_
#define GAL_TLAV_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "partition/partition.h"

namespace gal {

/// How an aggregator folds per-vertex contributions.
enum class AggregateOp : uint8_t { kSum, kMin, kMax };

/// Per-superstep and cumulative statistics of a TLAV run. The simulated
/// workers make communication observable: a message is "cross-worker"
/// when source and destination vertices live on different parts of the
/// configured partition, which is exactly the traffic a real Pregel
/// deployment puts on the network.
struct TlavStats {
  uint32_t supersteps = 0;
  uint64_t total_messages = 0;        // logical deliveries
  uint64_t cross_worker_messages = 0; // wire messages between workers
  uint64_t total_message_bytes = 0;
  uint64_t cross_worker_bytes = 0;
  /// Logical deliveries folded into mirror broadcasts (Pregel+).
  uint64_t mirrored_deliveries = 0;
  /// Sum over supersteps of the number of vertices computed; the
  /// "work" measure behind the O((|V|+|E|) log |V|) bound discussion.
  uint64_t vertex_activations = 0;
  uint64_t edge_scans = 0;
  double wall_seconds = 0.0;
  // Fault-tolerance accounting (LWCP-style checkpointing).
  uint32_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes = 0;
  uint32_t failures_recovered = 0;
  uint32_t recomputed_supersteps = 0;

  struct PerStep {
    uint64_t active_vertices = 0;
    uint64_t messages = 0;
  };
  std::vector<PerStep> per_step;
};

template <typename V, typename M>
class TlavEngine;

/// The view of one vertex handed to a VertexProgram::Compute call.
/// Mirrors Pregel's Vertex class: value access, message sending,
/// VoteToHalt, and aggregator access.
template <typename V, typename M>
class VertexHandle {
 public:
  VertexId id() const { return id_; }
  uint32_t superstep() const;
  VertexId num_vertices() const;

  V& value() { return *value_; }
  const V& value() const { return *value_; }

  std::span<const VertexId> Neighbors() const;
  uint32_t Degree() const;

  void SendTo(VertexId target, const M& message);
  void SendToAllNeighbors(const M& message);

  /// Deactivates this vertex; it is revived by any incoming message.
  void VoteToHalt();

  /// Contributes to a registered aggregator (visible next superstep).
  void Aggregate(const std::string& name, double value);
  /// Value of an aggregator as of the end of the previous superstep.
  double GetAggregate(const std::string& name) const;

 private:
  friend class TlavEngine<V, M>;
  VertexHandle(TlavEngine<V, M>* engine, uint32_t worker, VertexId id, V* value)
      : engine_(engine), worker_(worker), id_(id), value_(value) {}

  TlavEngine<V, M>* engine_;
  uint32_t worker_;
  VertexId id_;
  V* value_;
};

/// A user computation in the think-like-a-vertex model. Subclass and
/// override Compute; optionally provide a commutative/associative
/// combiner to shrink message traffic (Pregel's optimization).
template <typename V, typename M>
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Called on every active vertex each superstep. At superstep 0 all
  /// vertices are active and `messages` is empty.
  virtual void Compute(VertexHandle<V, M>& vertex,
                       std::span<const M> messages) = 0;

  /// Return true and implement Combine to enable sender-side combining.
  virtual bool has_combiner() const { return false; }
  virtual M Combine(const M& a, const M& b) const {
    (void)a;
    return b;
  }
};

/// Engine configuration.
struct TlavConfig {
  uint32_t num_workers = 4;
  uint32_t max_supersteps = 1000000;
  /// Simulated per-message network overhead added to sizeof(M) when the
  /// message crosses workers (envelope: dst id + lengths).
  uint32_t message_overhead_bytes = 8;
  /// Pregel+-style mirroring: a vertex whose degree reaches this
  /// threshold broadcasts to each remote worker once (its "mirror"
  /// fans the value out locally) instead of once per neighbor
  /// (0 = off). Only affects SendToAllNeighbors, and only the wire
  /// accounting — logical deliveries are unchanged.
  uint32_t mirror_degree_threshold = 0;
  /// Lightweight checkpointing (LWCP-style): snapshot vertex state and
  /// in-flight messages every N supersteps (0 = off). Checkpoint cost
  /// is accounted in TlavStats.
  uint32_t checkpoint_every = 0;
  /// Fault injection for recovery testing: the named superstep "fails"
  /// after its compute phase and the engine rolls back to the last
  /// checkpoint, recomputing from there (UINT32_MAX = never). Requires
  /// checkpoint_every > 0. The failure fires once.
  uint32_t fail_at_superstep = UINT32_MAX;
};

/// A Pregel-style Bulk Synchronous Parallel engine over a simulated
/// cluster of `num_workers` workers (threads). Vertices are placed by an
/// explicit VertexPartition so partitioning strategies can be compared
/// under identical programs.
template <typename V, typename M>
class TlavEngine {
 public:
  /// `partition` must cover g's vertices; pass HashPartition(g, workers)
  /// for the Pregel default.
  TlavEngine(const Graph* graph, TlavConfig config, VertexPartition partition)
      : graph_(graph),
        config_(config),
        partition_(std::move(partition)),
        pool_(config.num_workers) {
    GAL_CHECK(partition_.assignment.size() == graph_->NumVertices());
    GAL_CHECK(partition_.num_parts == config_.num_workers);
    const VertexId n = graph_->NumVertices();
    values_.resize(n);
    halted_.assign(n, 0);
    inbox_.resize(n);
    next_inbox_.resize(n);
    worker_vertices_.resize(config_.num_workers);
    for (VertexId v = 0; v < n; ++v) {
      worker_vertices_[partition_.assignment[v]].push_back(v);
    }
    outboxes_.resize(config_.num_workers);
  }

  /// Convenience: hash partition.
  TlavEngine(const Graph* graph, TlavConfig config)
      : TlavEngine(graph, config, HashPartition(*graph, config.num_workers)) {}

  /// Sets every vertex value before the run.
  void InitValues(const std::function<V(VertexId)>& init) {
    for (VertexId v = 0; v < graph_->NumVertices(); ++v) values_[v] = init(v);
  }

  void RegisterAggregator(const std::string& name, AggregateOp op,
                          double initial = 0.0) {
    aggregators_[name] = {op, initial, initial, initial};
  }

  /// Runs supersteps until every vertex has halted and no messages are
  /// in flight (or max_supersteps is hit). Returns accumulated stats.
  TlavStats Run(VertexProgram<V, M>& program);

  const std::vector<V>& values() const { return values_; }
  std::vector<V>& mutable_values() { return values_; }
  const Graph& graph() const { return *graph_; }
  const TlavStats& stats() const { return stats_; }

 private:
  friend class VertexHandle<V, M>;

  struct Aggregator {
    AggregateOp op;
    double initial;
    double current;   // being accumulated this superstep
    double previous;  // readable by Compute
    void Fold(double v) {
      switch (op) {
        case AggregateOp::kSum: current += v; break;
        case AggregateOp::kMin: current = std::min(current, v); break;
        case AggregateOp::kMax: current = std::max(current, v); break;
      }
    }
  };

  struct Outgoing {
    VertexId dst;
    M message;
  };

  /// Per-source-worker buffers, one lane per destination worker; no
  /// locking needed because a worker only appends to its own buffers.
  /// With a combiner, messages fold into one slot per destination vertex
  /// (Pregel's sender-side combining).
  struct Outbox {
    std::vector<std::vector<Outgoing>> lanes;                   // [dst_worker]
    /// Combined slot: folded message + whether any non-mirrored send
    /// touched it (mirrored sends ride the per-worker mirror message,
    /// so they do not add per-vertex wire cost).
    struct CombinedSlot {
      M message;
      uint8_t non_mirrored = 0;
    };
    std::vector<std::unordered_map<VertexId, CombinedSlot>> combined;
    /// Wire-message count per destination worker this superstep:
    /// normal sends cost one each; a mirror broadcast costs one per
    /// remote worker regardless of how many neighbors it covers.
    std::vector<uint64_t> wire;                                 // [dst_worker]
    std::vector<uint64_t> logical;                              // [dst_worker]
    uint64_t mirrored = 0;
    uint64_t edge_scans = 0;
  };

  void Send(uint32_t src_worker, VertexId dst, const M& message,
            VertexProgram<V, M>* program, bool mirrored = false) {
    Outbox& box = outboxes_[src_worker];
    const uint32_t dst_worker = partition_.assignment[dst];
    ++box.logical[dst_worker];
    if (program->has_combiner()) {
      auto [it, inserted] = box.combined[dst_worker].emplace(
          dst, typename Outbox::CombinedSlot{message, 0});
      if (!inserted) {
        it->second.message = program->Combine(it->second.message, message);
      }
      if (!mirrored) it->second.non_mirrored = 1;
      return;
    }
    if (!mirrored) ++box.wire[dst_worker];
    box.lanes[dst_worker].push_back({dst, message});
  }

  /// SendToAllNeighbors with Pregel+ mirroring for eligible hubs: one
  /// wire message per remote worker that hosts any neighbor.
  void Broadcast(uint32_t src_worker, VertexId src, const M& message,
                 VertexProgram<V, M>* program) {
    const auto nbrs = graph_->Neighbors(src);
    const bool mirror = config_.mirror_degree_threshold > 0 &&
                        nbrs.size() >= config_.mirror_degree_threshold;
    if (!mirror) {
      for (VertexId u : nbrs) Send(src_worker, u, message, program);
      return;
    }
    Outbox& box = outboxes_[src_worker];
    std::vector<uint8_t> worker_touched(config_.num_workers, 0);
    for (VertexId u : nbrs) {
      const uint32_t w = partition_.assignment[u];
      if (!worker_touched[w]) {
        worker_touched[w] = 1;
        ++box.wire[w];  // the single mirror message to that worker
      } else {
        ++box.mirrored;
      }
      Send(src_worker, u, message, program, /*mirrored=*/true);
    }
  }

  const Graph* graph_;
  TlavConfig config_;
  VertexPartition partition_;
  ThreadPool pool_;

  std::vector<V> values_;
  std::vector<uint8_t> halted_;
  std::vector<std::vector<M>> inbox_;       // messages for this superstep
  std::vector<std::vector<M>> next_inbox_;  // being filled for next one
  std::vector<std::vector<VertexId>> worker_vertices_;
  std::vector<Outbox> outboxes_;
  std::map<std::string, Aggregator> aggregators_;
  std::mutex aggregator_mu_;
  uint32_t superstep_ = 0;
  TlavStats stats_;
  VertexProgram<V, M>* running_program_ = nullptr;

  /// A consistent cut taken at the superstep barrier.
  struct Checkpoint {
    uint32_t superstep = 0;
    std::vector<V> values;
    std::vector<uint8_t> halted;
    std::vector<std::vector<M>> inbox;
    std::map<std::string, Aggregator> aggregators;
    size_t per_step_size = 0;
  };
  Checkpoint checkpoint_;
  bool have_checkpoint_ = false;
};

// --- implementation --------------------------------------------------------

template <typename V, typename M>
uint32_t VertexHandle<V, M>::superstep() const { return engine_->superstep_; }

template <typename V, typename M>
VertexId VertexHandle<V, M>::num_vertices() const {
  return engine_->graph_->NumVertices();
}

template <typename V, typename M>
std::span<const VertexId> VertexHandle<V, M>::Neighbors() const {
  engine_->outboxes_[worker_].edge_scans += engine_->graph_->Degree(id_);
  return engine_->graph_->Neighbors(id_);
}

template <typename V, typename M>
uint32_t VertexHandle<V, M>::Degree() const {
  return engine_->graph_->Degree(id_);
}

template <typename V, typename M>
void VertexHandle<V, M>::SendTo(VertexId target, const M& message) {
  engine_->Send(worker_, target, message, engine_->running_program_);
}

template <typename V, typename M>
void VertexHandle<V, M>::SendToAllNeighbors(const M& message) {
  engine_->outboxes_[worker_].edge_scans += engine_->graph_->Degree(id_);
  engine_->Broadcast(worker_, id_, message, engine_->running_program_);
}

template <typename V, typename M>
void VertexHandle<V, M>::VoteToHalt() { engine_->halted_[id_] = 1; }

template <typename V, typename M>
void VertexHandle<V, M>::Aggregate(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(engine_->aggregator_mu_);
  auto it = engine_->aggregators_.find(name);
  GAL_CHECK(it != engine_->aggregators_.end()) << "unknown aggregator " << name;
  it->second.Fold(value);
}

template <typename V, typename M>
double VertexHandle<V, M>::GetAggregate(const std::string& name) const {
  std::lock_guard<std::mutex> lock(engine_->aggregator_mu_);
  auto it = engine_->aggregators_.find(name);
  GAL_CHECK(it != engine_->aggregators_.end()) << "unknown aggregator " << name;
  return it->second.previous;
}

template <typename V, typename M>
TlavStats TlavEngine<V, M>::Run(VertexProgram<V, M>& program) {
  Timer timer;
  stats_ = TlavStats{};
  running_program_ = &program;
  const uint32_t workers = config_.num_workers;
  for (Outbox& box : outboxes_) {
    box.lanes.assign(workers, {});
    box.combined.assign(workers, {});
    box.wire.assign(workers, 0);
    box.logical.assign(workers, 0);
    box.mirrored = 0;
  }

  uint64_t pending_messages = 0;
  for (superstep_ = 0; superstep_ < config_.max_supersteps; ++superstep_) {
    // Compute phase: each worker processes its own vertices.
    std::atomic<uint64_t> active_count{0};
    pool_.ParallelFor(workers, [&](size_t w) {
      uint64_t active = 0;
      for (VertexId v : worker_vertices_[w]) {
        const bool has_messages = !inbox_[v].empty();
        if (halted_[v] && !has_messages) continue;
        halted_[v] = 0;
        VertexHandle<V, M> handle(this, static_cast<uint32_t>(w), v,
                                  &values_[v]);
        program.Compute(handle, std::span<const M>(inbox_[v]));
        inbox_[v].clear();
        ++active;
      }
      active_count.fetch_add(active);
    });

    // Message delivery phase (the BSP barrier): route every outbox lane
    // to its destination worker's inboxes, applying receiver-side
    // combining when the program has a combiner.
    uint64_t step_messages = 0;
    uint64_t step_cross = 0;
    for (uint32_t src = 0; src < workers; ++src) {
      stats_.mirrored_deliveries += outboxes_[src].mirrored;
      outboxes_[src].mirrored = 0;
      for (uint32_t dst = 0; dst < workers; ++dst) {
        // Wire cost: one per mirror broadcast (already in wire[]) plus,
        // with a combiner, one per combined slot that a non-mirrored
        // send touched; without one, every non-mirrored send.
        uint64_t wire = outboxes_[src].wire[dst];
        if (program.has_combiner()) {
          for (const auto& [v, slot] : outboxes_[src].combined[dst]) {
            wire += slot.non_mirrored;
          }
        }
        step_messages += outboxes_[src].logical[dst];
        if (src != dst) step_cross += wire;
        outboxes_[src].wire[dst] = 0;
        outboxes_[src].logical[dst] = 0;
      }
    }
    pool_.ParallelFor(workers, [&](size_t dst) {
      for (uint32_t src = 0; src < workers; ++src) {
        std::vector<Outgoing>& lane = outboxes_[src].lanes[dst];
        for (Outgoing& o : lane) {
          next_inbox_[o.dst].push_back(std::move(o.message));
        }
        lane.clear();
        auto& combined = outboxes_[src].combined[dst];
        for (auto& [v, slot] : combined) {
          // Receiver-side combining collapses the per-source slots.
          std::vector<M>& box = next_inbox_[v];
          if (!box.empty()) {
            box[0] = program.Combine(box[0], slot.message);
          } else {
            box.push_back(std::move(slot.message));
          }
        }
        combined.clear();
      }
    });
    std::swap(inbox_, next_inbox_);

    // Aggregator barrier.
    for (auto& [name, agg] : aggregators_) {
      agg.previous = agg.current;
      agg.current = agg.initial;
    }

    // Stats.
    stats_.vertex_activations += active_count.load();
    stats_.total_messages += step_messages;
    stats_.cross_worker_messages += step_cross;
    stats_.total_message_bytes += step_messages * sizeof(M);
    stats_.cross_worker_bytes +=
        step_cross * (sizeof(M) + config_.message_overhead_bytes);
    for (Outbox& box : outboxes_) {
      stats_.edge_scans += box.edge_scans;
      box.edge_scans = 0;
    }
    stats_.per_step.push_back({active_count.load(), step_messages});

    // --- LWCP checkpointing & failure injection -----------------------
    if (config_.checkpoint_every > 0 &&
        (superstep_ + 1) % config_.checkpoint_every == 0) {
      checkpoint_.superstep = superstep_;
      checkpoint_.values = values_;
      checkpoint_.halted = halted_;
      checkpoint_.inbox = inbox_;  // messages already delivered for next step
      checkpoint_.aggregators = aggregators_;
      checkpoint_.per_step_size = stats_.per_step.size();
      have_checkpoint_ = true;
      ++stats_.checkpoints_taken;
      uint64_t bytes = values_.size() * sizeof(V) + halted_.size();
      for (const auto& box : inbox_) bytes += box.size() * sizeof(M);
      stats_.checkpoint_bytes += bytes;
    }
    if (superstep_ == config_.fail_at_superstep) {
      config_.fail_at_superstep = UINT32_MAX;  // fail once
      GAL_CHECK(have_checkpoint_)
          << "failure injected before any checkpoint exists";
      ++stats_.failures_recovered;
      stats_.recomputed_supersteps += superstep_ - checkpoint_.superstep;
      values_ = checkpoint_.values;
      halted_ = checkpoint_.halted;
      inbox_ = checkpoint_.inbox;
      aggregators_ = checkpoint_.aggregators;
      for (auto& box : next_inbox_) box.clear();
      for (Outbox& box : outboxes_) {
        for (auto& lane : box.lanes) lane.clear();
        for (auto& lane : box.combined) lane.clear();
      }
      stats_.per_step.resize(checkpoint_.per_step_size);
      superstep_ = checkpoint_.superstep;
      continue;  // re-execute from the superstep after the checkpoint
    }

    pending_messages = step_messages;
    if (active_count.load() == 0 && pending_messages == 0) break;
    if (pending_messages == 0) {
      // Check whether everything halted this step.
      bool all_halted = true;
      for (uint8_t h : halted_) {
        if (!h) {
          all_halted = false;
          break;
        }
      }
      if (all_halted) {
        ++superstep_;
        break;
      }
    }
  }

  stats_.supersteps = superstep_ + (superstep_ < config_.max_supersteps ? 1 : 0);
  // Trim: the final bookkeeping step with zero activity is not a superstep.
  while (!stats_.per_step.empty() && stats_.per_step.back().active_vertices == 0 &&
         stats_.per_step.back().messages == 0) {
    stats_.per_step.pop_back();
  }
  stats_.supersteps = static_cast<uint32_t>(stats_.per_step.size());
  stats_.wall_seconds = timer.ElapsedSeconds();
  running_program_ = nullptr;
  return stats_;
}

}  // namespace gal

#endif  // GAL_TLAV_ENGINE_H_
