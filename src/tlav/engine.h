#ifndef GAL_TLAV_ENGINE_H_
#define GAL_TLAV_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cluster/checkpoint.h"
#include "cluster/cluster.h"
#include "cluster/exchange.h"
#include "cluster/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "partition/partition.h"

namespace gal {

/// How an aggregator folds per-vertex contributions.
enum class AggregateOp : uint8_t { kSum, kMin, kMax };

/// Per-superstep and cumulative statistics of a TLAV run. The simulated
/// workers make communication observable: a message is "cross-worker"
/// when source and destination vertices live on different parts of the
/// configured partition, which is exactly the traffic a real Pregel
/// deployment puts on the network. The cross-worker fields are a view
/// over the ClusterRuntime's TrafficLedger (this run's delta), so TLAV
/// traffic lands on the same axis as dist-GNN and TLAG traffic.
struct TlavStats {
  uint32_t supersteps = 0;
  uint64_t total_messages = 0;        // logical deliveries
  uint64_t cross_worker_messages = 0; // wire messages between workers
  uint64_t total_message_bytes = 0;
  uint64_t cross_worker_bytes = 0;
  /// Logical deliveries folded into mirror broadcasts (Pregel+).
  uint64_t mirrored_deliveries = 0;
  /// Sum over supersteps of the number of vertices computed; the
  /// "work" measure behind the O((|V|+|E|) log |V|) bound discussion.
  uint64_t vertex_activations = 0;
  uint64_t edge_scans = 0;
  double wall_seconds = 0.0;
  /// Modeled cluster seconds of this run from the runtime's
  /// VirtualClock: Σ over supersteps of max-worker compute +
  /// cost-model comm (includes recomputed supersteps after an injected
  /// failure — recovery costs modeled time too).
  double modeled_seconds = 0.0;
  // Direction-optimizing traversal accounting. The message engine is
  // push-only (both stay 0); runs routed through the frontier substrate
  // report how many supersteps gathered over in-edges and how often the
  // Beamer heuristic flipped direction.
  uint32_t pull_supersteps = 0;
  uint32_t direction_switches = 0;
  // Fault-tolerance accounting, read back from the shared
  // RecoverySession (cluster/checkpoint.h) this run drove.
  uint32_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t restored_bytes = 0;
  uint32_t failures_recovered = 0;
  uint32_t recomputed_supersteps = 0;
  // Live rebalancing (straggler mitigation).
  uint32_t rebalances = 0;
  uint64_t migrated_vertices = 0;
  uint64_t migration_bytes = 0;

  struct PerStep {
    uint64_t active_vertices = 0;
    uint64_t messages = 0;
  };
  std::vector<PerStep> per_step;
};

template <typename V, typename M>
class TlavEngine;

/// The view of one vertex handed to a VertexProgram::Compute call.
/// Mirrors Pregel's Vertex class: value access, message sending,
/// VoteToHalt, and aggregator access.
template <typename V, typename M>
class VertexHandle {
 public:
  VertexId id() const { return id_; }
  uint32_t superstep() const;
  VertexId num_vertices() const;

  V& value() { return *value_; }
  const V& value() const { return *value_; }

  std::span<const VertexId> Neighbors() const;
  uint32_t Degree() const;

  void SendTo(VertexId target, const M& message);
  void SendToAllNeighbors(const M& message);

  /// Deactivates this vertex; it is revived by any incoming message.
  void VoteToHalt();

  /// Contributes to a registered aggregator (visible next superstep).
  void Aggregate(const std::string& name, double value);
  /// Value of an aggregator as of the end of the previous superstep.
  double GetAggregate(const std::string& name) const;

 private:
  friend class TlavEngine<V, M>;
  VertexHandle(TlavEngine<V, M>* engine, uint32_t worker, VertexId id, V* value)
      : engine_(engine), worker_(worker), id_(id), value_(value) {}

  TlavEngine<V, M>* engine_;
  uint32_t worker_;
  VertexId id_;
  V* value_;
};

/// A user computation in the think-like-a-vertex model. Subclass and
/// override Compute; optionally provide a commutative/associative
/// combiner to shrink message traffic (Pregel's optimization).
template <typename V, typename M>
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Called on every active vertex each superstep. At superstep 0 all
  /// vertices are active and `messages` is empty.
  virtual void Compute(VertexHandle<V, M>& vertex,
                       std::span<const M> messages) = 0;

  /// Return true and implement Combine to enable sender-side combining.
  virtual bool has_combiner() const { return false; }
  virtual M Combine(const M& a, const M& b) const {
    (void)a;
    return b;
  }
};

/// Engine configuration.
struct TlavConfig {
  uint32_t num_workers = 4;
  uint32_t max_supersteps = 1000000;
  /// Simulated per-message network overhead added to sizeof(M) when the
  /// message crosses workers (envelope: dst id + lengths).
  uint32_t message_overhead_bytes = 8;
  /// Pregel+-style mirroring: a vertex whose degree reaches this
  /// threshold broadcasts to each remote worker once (its "mirror"
  /// fans the value out locally) instead of once per neighbor
  /// (0 = off). Only affects SendToAllNeighbors, and only the wire
  /// accounting — logical deliveries are unchanged.
  uint32_t mirror_degree_threshold = 0;
  /// The shared fault-tolerance schedule (cluster/fault.h): checkpoint
  /// cadence, worker failures, straggler slowdowns, and live
  /// rebalancing, all driven through one RecoverySession per run. The
  /// default resolves GAL_CLUSTER_FAULT_* (empty plan when unset).
  /// Checkpoint/restore/migration traffic is charged to the runtime's
  /// ledger and clock; results stay bit-identical to the fault-free run
  /// for order-independent programs (all shipped ones).
  FaultPlan faults = FaultPlan::FromEnvOrWarn();
  /// Shared simulated-cluster substrate. When set, the engine adopts its
  /// worker count, charges cross-worker traffic to its ledger, advances
  /// its VirtualClock one round per superstep, and installs the job's
  /// partition on it. When null the engine owns a private runtime with
  /// `num_workers` workers.
  ClusterRuntime* cluster = nullptr;
};

/// A Pregel-style Bulk Synchronous Parallel engine over a simulated
/// cluster of `num_workers` workers. Vertices are placed by an explicit
/// VertexPartition so partitioning strategies can be compared under
/// identical programs. Messages route through the runtime's
/// ExchangeChannel, whose deterministic (src-worker, seq) delivery order
/// keeps results and stats bit-identical at any host thread count
/// (GAL_TASK_THREADS caps the host threads that execute the simulated
/// workers; it never changes the math).
template <typename V, typename M>
class TlavEngine {
 public:
  /// `partition` must cover g's vertices; pass HashPartition(g, workers)
  /// for the Pregel default.
  TlavEngine(const Graph* graph, TlavConfig config, VertexPartition partition)
      : graph_(graph),
        config_(AdoptClusterWidth(config)),
        owned_cluster_(config.cluster == nullptr
                           ? std::make_unique<ClusterRuntime>(ClusterOptions{
                                 config_.num_workers, NetworkCostModel{}})
                           : nullptr),
        cluster_(config.cluster != nullptr ? config.cluster
                                           : owned_cluster_.get()),
        partition_(std::move(partition)),
        pool_(std::min(config_.num_workers, ResolveTaskThreads(0))),
        channel_(std::make_unique<ExchangeChannel<M>>(
            cluster_, config_.message_overhead_bytes)) {
    GAL_CHECK(partition_.assignment.size() == graph_->NumVertices());
    GAL_CHECK(partition_.num_parts == config_.num_workers);
    cluster_->InstallPartition(partition_);
    const VertexId n = graph_->NumVertices();
    values_.resize(n);
    halted_.assign(n, 0);
    inbox_.resize(n);
    next_inbox_.resize(n);
    worker_vertices_.resize(config_.num_workers);
    for (VertexId v = 0; v < n; ++v) {
      worker_vertices_[partition_.assignment[v]].push_back(v);
    }
    worker_counters_.resize(config_.num_workers);
  }

  /// Convenience: hash partition.
  TlavEngine(const Graph* graph, TlavConfig config)
      : TlavEngine(graph, config,
                   HashPartition(*graph, config.cluster != nullptr
                                             ? config.cluster->num_workers()
                                             : config.num_workers)) {}

  /// Sets every vertex value before the run.
  void InitValues(const std::function<V(VertexId)>& init) {
    for (VertexId v = 0; v < graph_->NumVertices(); ++v) values_[v] = init(v);
  }

  void RegisterAggregator(const std::string& name, AggregateOp op,
                          double initial = 0.0) {
    aggregators_[name] = {op, initial, initial, initial};
  }

  /// Runs supersteps until every vertex has halted and no messages are
  /// in flight (or max_supersteps is hit). Returns accumulated stats.
  TlavStats Run(VertexProgram<V, M>& program);

  const std::vector<V>& values() const { return values_; }
  std::vector<V>& mutable_values() { return values_; }
  const Graph& graph() const { return *graph_; }
  const TlavStats& stats() const { return stats_; }
  ClusterRuntime& cluster() { return *cluster_; }

 private:
  friend class VertexHandle<V, M>;

  /// A config.cluster runtime dictates the simulated width.
  static TlavConfig AdoptClusterWidth(TlavConfig config) {
    if (config.cluster != nullptr) {
      config.num_workers = config.cluster->num_workers();
    }
    return config;
  }

  struct Aggregator {
    AggregateOp op;
    double initial;
    double current;   // being accumulated this superstep
    double previous;  // readable by Compute
    void Fold(double v) {
      switch (op) {
        case AggregateOp::kSum: current += v; break;
        case AggregateOp::kMin: current = std::min(current, v); break;
        case AggregateOp::kMax: current = std::max(current, v); break;
      }
    }
  };

  /// Per-worker counters a worker updates without synchronization,
  /// cache-line separated. `decode_scratch` is the worker's adjacency
  /// decode buffer for compressed graphs: exactly one VertexHandle is
  /// live per worker at a time, so the span VertexHandle::Neighbors()
  /// returns over it stays valid for the duration of a Compute call.
  struct alignas(64) WorkerCounters {
    uint64_t edge_scans = 0;
    std::vector<VertexId> decode_scratch;
  };

  void Send(uint32_t src_worker, VertexId dst, const M& message,
            bool mirrored = false) {
    channel_->Send(src_worker, partition_.assignment[dst], dst, message,
                   mirrored);
  }

  /// SendToAllNeighbors with Pregel+ mirroring for eligible hubs: one
  /// wire message per remote worker that hosts any neighbor. Streams the
  /// adjacency (decoding in-register when compressed) without touching
  /// the worker's decode scratch, so a span a Compute call still holds
  /// from VertexHandle::Neighbors() stays valid across a send.
  void Broadcast(uint32_t src_worker, VertexId src, const M& message) {
    const bool mirror = config_.mirror_degree_threshold > 0 &&
                        graph_->Degree(src) >= config_.mirror_degree_threshold;
    if (!mirror) {
      graph_->ForEachOutNeighbor(
          src, [&](VertexId u) { Send(src_worker, u, message); });
      return;
    }
    std::vector<uint8_t> worker_touched(config_.num_workers, 0);
    graph_->ForEachOutNeighbor(src, [&](VertexId u) {
      const uint32_t w = partition_.assignment[u];
      if (!worker_touched[w]) {
        worker_touched[w] = 1;
        channel_->AddMirrorWire(src_worker, w);  // the single mirror message
      } else {
        channel_->NoteMirroredDelivery(src_worker);
      }
      Send(src_worker, u, message, /*mirrored=*/true);
    });
  }

  const Graph* graph_;
  TlavConfig config_;
  std::unique_ptr<ClusterRuntime> owned_cluster_;
  ClusterRuntime* cluster_;
  VertexPartition partition_;
  ThreadPool pool_;
  std::unique_ptr<ExchangeChannel<M>> channel_;

  std::vector<V> values_;
  std::vector<uint8_t> halted_;
  std::vector<std::vector<M>> inbox_;       // messages for this superstep
  std::vector<std::vector<M>> next_inbox_;  // being filled for next one
  std::vector<std::vector<VertexId>> worker_vertices_;
  std::vector<WorkerCounters> worker_counters_;
  std::map<std::string, Aggregator> aggregators_;
  std::mutex aggregator_mu_;
  uint32_t superstep_ = 0;
  TlavStats stats_;

  /// A consistent cut at the superstep barrier for the shared
  /// CheckpointStore: vertex values, halt flags, the delivered inbox
  /// (the in-flight messages of the next superstep), aggregator state,
  /// and the per-step stats length to truncate back to on rollback.
  std::vector<uint8_t> SerializeState() const {
    static_assert(std::is_trivially_copyable_v<V> &&
                      std::is_trivially_copyable_v<M>,
                  "TLAV checkpointing snapshots V/M by bytes");
    BlobWriter w;
    w.Vec(values_);
    w.Vec(halted_);
    w.Pod<uint64_t>(inbox_.size());
    for (const std::vector<M>& box : inbox_) w.Vec(box);
    w.Pod<uint64_t>(aggregators_.size());
    for (const auto& [name, agg] : aggregators_) {
      w.Str(name);
      w.Pod(agg.op);
      w.Pod(agg.initial);
      w.Pod(agg.current);
      w.Pod(agg.previous);
    }
    w.Pod<uint64_t>(stats_.per_step.size());
    return std::move(w).Take();
  }

  void RestoreState(const std::vector<uint8_t>& blob) {
    BlobReader r(blob);
    values_ = r.template Vec<V>();
    halted_ = r.template Vec<uint8_t>();
    const uint64_t boxes = r.template Pod<uint64_t>();
    GAL_CHECK(boxes == inbox_.size());
    for (std::vector<M>& box : inbox_) box = r.template Vec<M>();
    const uint64_t num_aggregators = r.template Pod<uint64_t>();
    aggregators_.clear();
    for (uint64_t i = 0; i < num_aggregators; ++i) {
      const std::string name = r.Str();
      Aggregator agg;
      agg.op = r.template Pod<AggregateOp>();
      agg.initial = r.template Pod<double>();
      agg.current = r.template Pod<double>();
      agg.previous = r.template Pod<double>();
      aggregators_[name] = agg;
    }
    stats_.per_step.resize(r.template Pod<uint64_t>());
    GAL_CHECK(r.exhausted());
  }

  /// Live rebalancing: sheds migrate_fraction of the straggler's
  /// vertices via RebalanceAway, reinstalls the partition, and books
  /// the moved state (value + halt flag + queued inbox messages per
  /// vertex) through the session. Shipped programs fold messages
  /// order-independently, so moving a vertex's home mid-run changes
  /// traffic and timing but never results.
  void MigrateAway(uint32_t from, RecoverySession& session) {
    std::vector<VertexId> moved;
    VertexPartition next =
        RebalanceAway(*graph_, partition_, from,
                      config_.faults.rebalance().migrate_fraction, &moved);
    if (moved.empty()) return;
    std::vector<uint64_t> dst_bytes(config_.num_workers, 0);
    for (VertexId v : moved) {
      dst_bytes[next.assignment[v]] +=
          sizeof(V) + 1 + inbox_[v].size() * sizeof(M);
    }
    std::vector<std::pair<uint32_t, uint64_t>> per_dst;
    for (uint32_t w = 0; w < config_.num_workers; ++w) {
      if (dst_bytes[w] > 0) per_dst.emplace_back(w, dst_bytes[w]);
    }
    partition_ = std::move(next);
    cluster_->InstallPartition(partition_);
    for (std::vector<VertexId>& list : worker_vertices_) list.clear();
    for (VertexId v = 0; v < graph_->NumVertices(); ++v) {
      worker_vertices_[partition_.assignment[v]].push_back(v);
    }
    session.CommitMigration(from, per_dst, moved.size());
  }
};

// --- implementation --------------------------------------------------------

template <typename V, typename M>
uint32_t VertexHandle<V, M>::superstep() const { return engine_->superstep_; }

template <typename V, typename M>
VertexId VertexHandle<V, M>::num_vertices() const {
  return engine_->graph_->NumVertices();
}

template <typename V, typename M>
std::span<const VertexId> VertexHandle<V, M>::Neighbors() const {
  auto& counters = engine_->worker_counters_[worker_];
  counters.edge_scans += engine_->graph_->Degree(id_);
  // Raw layout: a direct span into the CSR. Compressed: decoded into
  // this worker's scratch, valid until the worker's next Neighbors()
  // call (i.e. for the rest of this Compute invocation).
  return engine_->graph_->NeighborsInto(id_, counters.decode_scratch);
}

template <typename V, typename M>
uint32_t VertexHandle<V, M>::Degree() const {
  return engine_->graph_->Degree(id_);
}

template <typename V, typename M>
void VertexHandle<V, M>::SendTo(VertexId target, const M& message) {
  engine_->Send(worker_, target, message);
}

template <typename V, typename M>
void VertexHandle<V, M>::SendToAllNeighbors(const M& message) {
  engine_->worker_counters_[worker_].edge_scans +=
      engine_->graph_->Degree(id_);
  engine_->Broadcast(worker_, id_, message);
}

template <typename V, typename M>
void VertexHandle<V, M>::VoteToHalt() { engine_->halted_[id_] = 1; }

template <typename V, typename M>
void VertexHandle<V, M>::Aggregate(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(engine_->aggregator_mu_);
  auto it = engine_->aggregators_.find(name);
  GAL_CHECK(it != engine_->aggregators_.end()) << "unknown aggregator " << name;
  it->second.Fold(value);
}

template <typename V, typename M>
double VertexHandle<V, M>::GetAggregate(const std::string& name) const {
  std::lock_guard<std::mutex> lock(engine_->aggregator_mu_);
  auto it = engine_->aggregators_.find(name);
  GAL_CHECK(it != engine_->aggregators_.end()) << "unknown aggregator " << name;
  return it->second.previous;
}

template <typename V, typename M>
TlavStats TlavEngine<V, M>::Run(VertexProgram<V, M>& program) {
  Timer timer;
  stats_ = TlavStats{};
  const uint32_t workers = config_.num_workers;
  const bool combining = program.has_combiner();
  typename ExchangeChannel<M>::Combiner combiner;
  if (combining) {
    combiner = [&program](const M& a, const M& b) {
      return program.Combine(a, b);
    };
  }
  channel_->Begin(std::move(combiner));
  const TrafficSnapshot ledger_start = cluster_->ledger().Snapshot();
  const size_t clock_start = cluster_->clock().rounds();
  std::vector<double> compute_seconds(workers, 0.0);

  // The shared fault-tolerance driver: checkpoints, injected failures,
  // straggler slowdowns, and rebalancing all flow through this session
  // against the runtime's ledger and clock.
  RecoverySession session(cluster_, config_.faults);
  if (session.WantsInitialCheckpoint()) {
    session.Commit(RecoverySession::kInitialRound, SerializeState());
  }
  std::vector<double> worker_load(workers, 0.0);

  uint64_t pending_messages = 0;
  superstep_ = 0;
  while (superstep_ < config_.max_supersteps) {
    // Compute phase: each simulated worker processes its own vertices
    // (host threads pick up whole workers, so outbox lanes stay
    // single-writer).
    std::atomic<uint64_t> active_count{0};
    pool_.ParallelFor(workers, [&](size_t w) {
      Timer worker_timer;
      uint64_t active = 0;
      for (VertexId v : worker_vertices_[w]) {
        const bool has_messages = !inbox_[v].empty();
        if (halted_[v] && !has_messages) continue;
        halted_[v] = 0;
        VertexHandle<V, M> handle(this, static_cast<uint32_t>(w), v,
                                  &values_[v]);
        program.Compute(handle, std::span<const M>(inbox_[v]));
        inbox_[v].clear();
        ++active;
      }
      active_count.fetch_add(active);
      compute_seconds[w] = worker_timer.ElapsedSeconds();
    });
    // Straggler injection: scheduled slowdown factors scale the modeled
    // per-worker compute before the round is priced.
    session.ScaleCompute(superstep_, std::span<double>(compute_seconds));

    // Message delivery phase (the BSP barrier): the exchange channel
    // charges the step's wire traffic to the cluster ledger and routes
    // every lane to its destination worker's inboxes, with
    // receiver-side combining when the program has a combiner.
    const auto totals = channel_->Flush(
        &pool_, [&](uint32_t /*dst_worker*/, VertexId v, M&& m) {
          std::vector<M>& box = next_inbox_[v];
          if (combining && !box.empty()) {
            // Receiver-side combining collapses the per-source slots.
            box[0] = program.Combine(box[0], m);
          } else {
            box.push_back(std::move(m));
          }
        });
    const uint64_t step_messages = totals.logical_messages;
    stats_.mirrored_deliveries += totals.mirrored;
    std::swap(inbox_, next_inbox_);

    // The modeled cluster round: slowest worker + this step's wire time.
    cluster_->clock().AdvanceRound(
        std::span<const double>(compute_seconds), totals.cross_bytes,
        totals.cross_messages);

    // Aggregator barrier.
    for (auto& [name, agg] : aggregators_) {
      agg.previous = agg.current;
      agg.current = agg.initial;
    }

    // Stats.
    stats_.vertex_activations += active_count.load();
    stats_.total_messages += step_messages;
    stats_.total_message_bytes += step_messages * sizeof(M);
    for (WorkerCounters& counters : worker_counters_) {
      stats_.edge_scans += counters.edge_scans;
      counters.edge_scans = 0;
    }
    stats_.per_step.push_back({active_count.load(), step_messages});

    // --- shared checkpoint / recovery / rebalance hooks ---------------
    // The snapshot lands at the superstep barrier: values, halt flags,
    // and the just-delivered inbox (the in-flight messages of the next
    // superstep). Its bytes ride the ledger, its transfer time the clock.
    if (session.ShouldCheckpoint(superstep_)) {
      session.Commit(superstep_, SerializeState());
    }
    uint32_t resume_superstep = 0;
    if (const std::vector<uint8_t>* blob =
            session.OnFailure(superstep_, &resume_superstep)) {
      RestoreState(*blob);
      for (auto& box : next_inbox_) box.clear();
      channel_->Clear();
      superstep_ = resume_superstep;
      continue;  // replay from the superstep after the checkpoint
    }
    if (config_.faults.rebalance().enabled) {
      // Deterministic load signal: owned vertices, scaled inside the
      // session by each worker's scheduled slowdown.
      for (uint32_t w = 0; w < workers; ++w) {
        worker_load[w] = static_cast<double>(worker_vertices_[w].size());
      }
      const uint32_t straggler = session.RebalanceCandidate(
          superstep_, std::span<const double>(worker_load));
      if (straggler != RecoverySession::kNoWorker) {
        MigrateAway(straggler, session);
      }
    }

    pending_messages = step_messages;
    if (active_count.load() == 0 && pending_messages == 0) break;
    if (pending_messages == 0) {
      // Check whether everything halted this step.
      bool all_halted = true;
      for (uint8_t h : halted_) {
        if (!h) {
          all_halted = false;
          break;
        }
      }
      if (all_halted) {
        ++superstep_;
        break;
      }
    }
    ++superstep_;
  }

  stats_.supersteps = superstep_ + (superstep_ < config_.max_supersteps ? 1 : 0);
  // Trim: the final bookkeeping step with zero activity is not a superstep.
  while (!stats_.per_step.empty() && stats_.per_step.back().active_vertices == 0 &&
         stats_.per_step.back().messages == 0) {
    stats_.per_step.pop_back();
  }
  stats_.supersteps = static_cast<uint32_t>(stats_.per_step.size());
  stats_.wall_seconds = timer.ElapsedSeconds();
  // Cross-worker traffic is read back from the ledger: TlavStats is a
  // view over this run's ledger delta.
  const TrafficSnapshot ledger_end = cluster_->ledger().Snapshot();
  stats_.cross_worker_messages =
      ledger_end.cross_messages - ledger_start.cross_messages;
  stats_.cross_worker_bytes = ledger_end.cross_bytes - ledger_start.cross_bytes;
  stats_.modeled_seconds = cluster_->clock().SecondsSince(clock_start);
  const FaultStats& fault_stats = session.stats();
  stats_.checkpoints_taken = fault_stats.checkpoints_taken;
  stats_.checkpoint_bytes = fault_stats.checkpoint_bytes;
  stats_.restored_bytes = fault_stats.restored_bytes;
  stats_.failures_recovered = fault_stats.failures_recovered;
  stats_.recomputed_supersteps = fault_stats.recomputed_rounds;
  stats_.rebalances = fault_stats.rebalances;
  stats_.migrated_vertices = fault_stats.migrated_vertices;
  stats_.migration_bytes = fault_stats.migration_bytes;
  return stats_;
}

}  // namespace gal

#endif  // GAL_TLAV_ENGINE_H_
