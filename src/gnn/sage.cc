#include "gnn/sage.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "nn/optimizer.h"

namespace gal {
namespace {

/// Gathers feature rows for the given vertices.
Matrix GatherRows(const Matrix& features, const std::vector<VertexId>& rows) {
  Matrix out(static_cast<uint32_t>(rows.size()), features.cols());
  for (uint32_t i = 0; i < rows.size(); ++i) {
    const float* src = features.row(rows[i]);
    std::copy(src, src + features.cols(), out.row(i));
  }
  return out;
}

/// Aggregator view over one mini-batch's blocks.
AggregateFn BlockAggregator(const MiniBatch* batch) {
  return [batch](const Matrix& h, uint32_t layer, bool backward) {
    const SparseMatrix& op = batch->blocks[layer].op;
    return backward ? op.TransposeMultiply(h) : op.Multiply(h);
  };
}

}  // namespace

SageReport TrainSageMinibatch(const NodeClassificationDataset& dataset,
                              const SageConfig& config) {
  GAL_CHECK(!config.fanouts.empty());
  Timer timer;
  SageReport report;

  GcnConfig model_config;
  model_config.dims = {dataset.features.cols(), config.hidden_dim,
                       dataset.num_classes};
  GAL_CHECK(config.fanouts.size() == model_config.dims.size() - 1)
      << "one fanout per layer";
  model_config.seed = config.seed;
  GcnModel model(model_config);
  Adam opt(config.lr);
  opt.Attach(model.Parameters());

  std::vector<VertexId> train = dataset.TrainVertices();
  Rng rng(config.seed + 17);

  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Shuffle training seeds each epoch.
    for (size_t i = train.size(); i > 1; --i) {
      std::swap(train[i - 1], train[rng.Uniform(i)]);
    }
    double epoch_loss = 0.0;
    uint32_t batches = 0;
    for (size_t begin = 0; begin < train.size();
         begin += config.batch_size) {
      const size_t end = std::min(train.size(), begin + config.batch_size);
      std::vector<VertexId> seeds(train.begin() + begin, train.begin() + end);
      MiniBatch batch = BuildMiniBatch(dataset.graph, seeds, config.fanouts,
                                       config.seed + epoch);
      report.feature_rows_gathered += batch.input_rows;
      report.sampled_edges += batch.total_sampled_edges;

      Matrix x = GatherRows(dataset.features, batch.blocks[0].input_vertices);
      AggregateFn agg = BlockAggregator(&batch);
      Matrix logits = model.Forward(x, agg);

      std::vector<int32_t> labels(seeds.size());
      std::vector<uint8_t> mask(seeds.size(), 1);
      for (size_t i = 0; i < seeds.size(); ++i) {
        labels[i] = dataset.labels[seeds[i]];
      }
      SoftmaxXentResult loss = SoftmaxCrossEntropy(logits, labels, mask);
      std::vector<Matrix> grads = model.Backward(loss.grad, agg);
      opt.Step(grads);
      epoch_loss += loss.loss;
      ++batches;
    }
    report.epoch_loss.push_back(batches ? epoch_loss / batches : 0.0);
  }
  report.feature_bytes_gathered =
      report.feature_rows_gathered * dataset.features.cols() * sizeof(float);

  // Evaluation: full (unsampled) inference so test accuracy reflects the
  // learned weights, not sampling noise.
  SparseMatrix adj = NormalizedAdjacency(dataset.graph, AdjNorm::kRowMean);
  AggregateFn exact = ExactAggregator(&adj);
  Matrix logits = model.Forward(dataset.features, exact);
  SoftmaxXentResult test =
      SoftmaxCrossEntropy(logits, dataset.labels, dataset.test_mask);
  report.final_test_accuracy =
      test.total ? static_cast<double>(test.correct) / test.total : 0.0;
  report.wall_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace gal
