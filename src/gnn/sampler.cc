#include "gnn/sampler.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace gal {
namespace {

/// Deterministic per-(seed, vertex, layer) sampling stream.
Rng VertexRng(uint64_t seed, VertexId v, uint32_t layer) {
  return Rng(seed ^ (static_cast<uint64_t>(v) << 20) ^ layer);
}

/// Samples up to `fanout` distinct neighbors (all when fanout == 0 or
/// degree <= fanout) — reservoir-free partial Fisher-Yates on a copy.
std::vector<VertexId> SampleNeighbors(const Graph& g, VertexId v,
                                      uint32_t fanout, uint64_t seed,
                                      uint32_t layer) {
  std::vector<VertexId> pool;
  pool.reserve(g.Degree(v));
  g.ForEachOutNeighbor(v, [&](VertexId u) { pool.push_back(u); });
  if (fanout == 0 || pool.size() <= fanout) return pool;
  Rng rng = VertexRng(seed, v, layer);
  for (uint32_t i = 0; i < fanout; ++i) {
    const uint64_t j = i + rng.Uniform(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(fanout);
  return pool;
}

}  // namespace

MiniBatch BuildMiniBatch(const Graph& g, const std::vector<VertexId>& seeds,
                         const std::vector<uint32_t>& fanouts,
                         uint64_t seed) {
  GAL_CHECK(!fanouts.empty());
  MiniBatch batch;
  const uint32_t num_layers = static_cast<uint32_t>(fanouts.size());
  batch.blocks.resize(num_layers);

  // Build from the output layer down: layer (num_layers-1) outputs the
  // seeds; each lower layer's outputs are the inputs of the one above.
  std::vector<VertexId> outputs = seeds;
  for (uint32_t l = num_layers; l-- > 0;) {
    SampledBlock& block = batch.blocks[l];
    block.output_vertices = outputs;

    // Inputs: outputs themselves (self-loop) plus sampled neighbors.
    std::vector<VertexId> inputs = outputs;
    std::unordered_map<VertexId, uint32_t> input_index;
    input_index.reserve(outputs.size() * 2);
    for (uint32_t i = 0; i < inputs.size(); ++i) input_index[inputs[i]] = i;

    std::vector<std::tuple<uint32_t, uint32_t, float>> triplets;
    for (uint32_t row = 0; row < outputs.size(); ++row) {
      const VertexId v = outputs[row];
      std::vector<VertexId> sampled =
          SampleNeighbors(g, v, fanouts[l], seed, l);
      block.sampled_edges += sampled.size();
      const float w = 1.0f / (static_cast<float>(sampled.size()) + 1.0f);
      triplets.emplace_back(row, row, w);  // self
      for (VertexId u : sampled) {
        auto [it, inserted] =
            input_index.emplace(u, static_cast<uint32_t>(inputs.size()));
        if (inserted) inputs.push_back(u);
        triplets.emplace_back(row, it->second, w);
      }
    }
    block.op = SparseMatrix::FromTriplets(
        static_cast<uint32_t>(outputs.size()),
        static_cast<uint32_t>(inputs.size()), std::move(triplets));
    block.input_vertices = inputs;
    batch.total_sampled_edges += block.sampled_edges;
    outputs = std::move(inputs);
  }
  batch.input_rows = batch.blocks[0].input_vertices.size();
  return batch;
}

KHopMaterializationStats MaterializeKHop(const Graph& g,
                                         const std::vector<VertexId>& seeds,
                                         const std::vector<uint32_t>& fanouts,
                                         uint32_t feature_dim, uint64_t seed) {
  KHopMaterializationStats stats;
  for (VertexId s : seeds) {
    MiniBatch batch = BuildMiniBatch(g, {s}, fanouts, seed);
    stats.total_stored_vertices += batch.input_rows;
    stats.total_stored_edges += batch.total_sampled_edges;
  }
  stats.storage_bytes =
      stats.total_stored_vertices * (sizeof(VertexId) + feature_dim * 4ull) +
      stats.total_stored_edges * 2ull * sizeof(VertexId);
  const uint64_t base_bytes =
      g.MemoryBytes() + static_cast<uint64_t>(g.NumVertices()) * feature_dim * 4ull;
  stats.blowup_vs_graph =
      base_bytes == 0 ? 0.0
                      : static_cast<double>(stats.storage_bytes) / base_bytes;
  return stats;
}

}  // namespace gal
