#ifndef GAL_GNN_DEEPWALK_H_
#define GAL_GNN_DEEPWALK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"
#include "tlav/engine.h"

namespace gal {

/// DeepWalk / node2vec vertex embeddings — the topology-only embedding
/// path of Figure 1 ("vertex embeddings can be learned from the graph
/// topology as in DeepWalk and node2vec"). Walks are generated on the
/// TLAV engine (walkers are messages); embeddings are trained with
/// skip-gram + negative sampling (SGNS).
struct DeepWalkOptions {
  uint32_t dim = 32;
  uint32_t walks_per_vertex = 4;
  uint32_t walk_length = 8;
  uint32_t window = 3;
  uint32_t negatives = 4;
  uint32_t epochs = 2;
  float lr = 0.025f;
  /// node2vec biasing: return parameter p (likelihood of hopping back)
  /// and in-out parameter q (<1 favors outward/DFS-like exploration,
  /// >1 keeps walks local/BFS-like). p = q = 1 is plain DeepWalk.
  double return_p = 1.0;
  double inout_q = 1.0;
  uint64_t seed = 1;
  TlavConfig engine;
};

struct DeepWalkResult {
  Matrix embeddings;  // |V| x dim (the "input" table of SGNS)
  uint64_t walk_vertices = 0;
  uint64_t sgns_updates = 0;
  TlavStats walk_stats;
};

DeepWalkResult DeepWalkEmbeddings(const Graph& g,
                                  const DeepWalkOptions& options = {});

/// Second-order (node2vec) random-walk corpus on the TLAV engine:
/// walkers carry their previous vertex and choose the next one with the
/// p/q-biased distribution. p = q = 1 reduces to RandomWalkCorpus's
/// distribution.
struct BiasedWalkResult {
  std::vector<std::vector<VertexId>> corpus;
  TlavStats stats;
};
BiasedWalkResult Node2VecWalks(const Graph& g, uint32_t walks_per_vertex,
                               uint32_t walk_length, double return_p,
                               double inout_q, uint64_t seed,
                               const TlavConfig& config = {});

}  // namespace gal

#endif  // GAL_GNN_DEEPWALK_H_
