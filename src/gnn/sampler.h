#ifndef GAL_GNN_SAMPLER_H_
#define GAL_GNN_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"

namespace gal {

/// Neighborhood sampling and mini-batch block construction — the
/// machinery behind the "graph data communication" reductions of Euler,
/// AliGraph, DistDGL and ByteGNN.

/// One message-flow block: rows are the layer's output vertices, columns
/// its input vertices, entries the mean-aggregation weights over the
/// sampled closed neighborhood.
struct SampledBlock {
  SparseMatrix op;
  /// Data-graph ids of the block's input rows (columns of op).
  std::vector<VertexId> input_vertices;
  /// Data-graph ids of the output rows.
  std::vector<VertexId> output_vertices;
  uint64_t sampled_edges = 0;
};

/// Layered blocks for `seeds` with per-layer fanouts; fanout 0 = keep
/// every neighbor (no sampling). blocks[0] consumes raw features;
/// blocks.back() produces the seed representations. Deterministic in
/// (seeds, fanouts, seed).
struct MiniBatch {
  std::vector<SampledBlock> blocks;
  /// Raw-feature rows this batch must gather = blocks[0].input_vertices.
  uint64_t input_rows = 0;
  uint64_t total_sampled_edges = 0;
};
MiniBatch BuildMiniBatch(const Graph& g, const std::vector<VertexId>& seeds,
                         const std::vector<uint32_t>& fanouts, uint64_t seed);

/// AGL-style k-hop materialization accounting: the storage required to
/// pre-extract every training vertex's k-hop neighborhood (with the
/// given fanouts), which is what AGL trades for zero training-time
/// graph communication.
struct KHopMaterializationStats {
  uint64_t total_stored_vertices = 0;  // Σ per-seed subgraph vertices
  uint64_t total_stored_edges = 0;
  uint64_t storage_bytes = 0;          // ids + features
  double blowup_vs_graph = 0.0;        // storage / (graph + feature) bytes
};
KHopMaterializationStats MaterializeKHop(const Graph& g,
                                         const std::vector<VertexId>& seeds,
                                         const std::vector<uint32_t>& fanouts,
                                         uint32_t feature_dim, uint64_t seed);

}  // namespace gal

#endif  // GAL_GNN_SAMPLER_H_
