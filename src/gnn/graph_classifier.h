#ifndef GAL_GNN_GRAPH_CLASSIFIER_H_
#define GAL_GNN_GRAPH_CLASSIFIER_H_

#include <cstdint>
#include <vector>

#include "graph/transaction_db.h"
#include "nn/gcn.h"
#include "tensor/sparse.h"

namespace gal {

/// Whole-graph classification: GCN vertex embeddings, mean-pool readout
/// per graph, linear head — trained over a TransactionDb batched as one
/// disjoint-union graph. This is the "graph classification" task of
/// Figure 1, and the substrate for the survey's Subgraph-GNN claim:
/// with `subgraph_features` enabled, each vertex's input is augmented
/// with its local subgraph statistics (triangle count, 4-cycle count,
/// clustering), which lifts the model past the 1-WL expressiveness
/// ceiling of plain message passing (Subgraph NNs / ESAN — §1's
/// "more expressive than regular GNNs").
struct GraphClassifierConfig {
  uint32_t hidden_dim = 16;
  uint32_t epochs = 120;
  float lr = 0.02f;
  float weight_decay = 0.002f;
  /// Augment vertex features with local subgraph counts.
  bool subgraph_features = false;
  /// Fraction of transactions used for training (head of the db;
  /// callers should shuffle/interleave classes).
  double train_fraction = 0.67;
  uint64_t seed = 1;
};

struct GraphClassifierReport {
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  std::vector<double> epoch_loss;
  uint32_t feature_dim = 0;
};

GraphClassifierReport TrainGraphClassifier(const TransactionDb& db,
                                           const GraphClassifierConfig& config);

/// Per-vertex local-subgraph descriptors of one graph: [1, degree,
/// triangle count, clustering coefficient, 4-cycles through the vertex].
Matrix LocalSubgraphFeatures(const Graph& g);

}  // namespace gal

#endif  // GAL_GNN_GRAPH_CLASSIFIER_H_
