#include "gnn/features.h"

#include <algorithm>
#include <cmath>

#include "graph/intersect.h"
#include "graph/kcore.h"
#include "tlav/algos/pagerank.h"

namespace gal {

std::vector<uint64_t> PerVertexTriangles(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<uint64_t> count(n, 0);
  // For each edge (v, u) with v < u, intersect sorted neighborhoods and
  // credit all three corners of each triangle found with w > u.
  std::vector<VertexId> common;  // scratch, reused across edges
  NeighborScratch scratch;       // v's row lives in .a, u's decodes via .b
  for (VertexId v = 0; v < n; ++v) {
    const auto nv = g.NeighborsInto(v, scratch.a);
    for (VertexId u : nv) {
      if (u <= v) continue;
      IntersectInto(nv, g, u, common, scratch);
      for (const VertexId w : common) {
        if (w > u) {
          ++count[v];
          ++count[u];
          ++count[w];
        }
      }
    }
  }
  return count;
}

std::vector<double> ClusteringCoefficients(const Graph& g) {
  const std::vector<uint64_t> triangles = PerVertexTriangles(g);
  std::vector<double> cc(g.NumVertices(), 0.0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint64_t d = g.Degree(v);
    if (d < 2) continue;
    cc[v] = 2.0 * static_cast<double>(triangles[v]) /
            (static_cast<double>(d) * (d - 1));
  }
  return cc;
}

Matrix StructuralFeatures(const Graph& g) {
  const VertexId n = g.NumVertices();
  Matrix x(n, 6);
  const double max_degree = std::max<uint32_t>(1, g.MaxDegree());
  const double log_max = std::log1p(max_degree);
  const std::vector<double> cc = ClusteringCoefficients(g);
  const DegeneracyResult degen = DegeneracyOrder(g);
  const double degeneracy = std::max<uint32_t>(1, degen.degeneracy);
  PageRankOptions pr_options;
  pr_options.iterations = 15;
  const PageRankResult pr = PageRank(g, pr_options);

  for (VertexId v = 0; v < n; ++v) {
    x.at(v, 0) = 1.0f;
    x.at(v, 1) = static_cast<float>(g.Degree(v) / max_degree);
    x.at(v, 2) = static_cast<float>(std::log1p(g.Degree(v)) / log_max);
    x.at(v, 3) = static_cast<float>(cc[v]);
    x.at(v, 4) = static_cast<float>(degen.core_numbers[v] / degeneracy);
    // PageRank reports ranks in original-id space; feature rows here
    // are per layout vertex, so translate when the graph is reordered.
    x.at(v, 5) = static_cast<float>(pr.ranks[g.OriginalId(v)] * n);
  }
  return x;
}

}  // namespace gal
