#ifndef GAL_GNN_DATASET_H_
#define GAL_GNN_DATASET_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace gal {

/// A node-classification task: graph topology, per-vertex features,
/// integer class labels, and train/test splits — the input shape of
/// every distributed-GNN experiment in the survey.
struct NodeClassificationDataset {
  Graph graph;
  Matrix features;              // |V| x dim
  std::vector<int32_t> labels;  // class per vertex
  std::vector<uint8_t> train_mask;
  std::vector<uint8_t> test_mask;

  uint32_t num_classes = 0;
  std::vector<VertexId> TrainVertices() const;
};

struct PlantedDatasetOptions {
  VertexId num_vertices = 600;
  uint32_t num_classes = 4;
  double p_in = 0.06;
  double p_out = 0.003;
  uint32_t feature_dim = 16;
  /// Features are class-signal + Gaussian noise; aggregation over a
  /// homophilous graph denoises them, so GNN accuracy responds to the
  /// fidelity of aggregation (sampling, staleness, quantization).
  double signal = 1.0;
  double noise = 2.0;
  double train_fraction = 0.5;
  uint64_t seed = 1;
};

/// Planted-partition dataset: community structure aligned with labels,
/// noisy class-coded features. The synthetic stand-in for the
/// ogbn/Reddit-style benchmarks the surveyed systems evaluate on.
NodeClassificationDataset MakePlantedDataset(
    const PlantedDatasetOptions& options = {});

/// Noisy class-coded features for any labeled vertex set: the first
/// num_classes columns carry `signal` at the label position, all
/// columns carry N(0, noise) jitter. Extra columns are pure noise.
Matrix SyntheticNodeFeatures(const std::vector<int32_t>& labels,
                             uint32_t num_classes, uint32_t dim,
                             double signal, double noise, uint64_t seed);

}  // namespace gal

#endif  // GAL_GNN_DATASET_H_
