#include "gnn/graph_classifier.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "graph/intersect.h"
#include "nn/optimizer.h"
#include "tensor/kernel_context.h"

namespace gal {

Matrix LocalSubgraphFeatures(const Graph& g) {
  const VertexId n = g.NumVertices();
  Matrix x(n, 5);
  const float max_degree = std::max<uint32_t>(1, g.MaxDegree());

  // Each vertex fills only its own feature row (the co-neighbor map is
  // loop-local), so the structural sweep shards cleanly over vertices.
  const uint64_t avg_deg = 1 + g.NumAdjacencyEntries() / std::max<VertexId>(1, n);
  KernelContext::Get().ParallelFor1D(
      n, avg_deg * avg_deg, [&](size_t v_begin, size_t v_end) {
  // Chunk-local decode buffers: allocated once per shard, reused for
  // every vertex in it (steady-state zero-allocation under compression).
  NeighborScratch scratch;
  for (VertexId v = static_cast<VertexId>(v_begin);
       v < static_cast<VertexId>(v_end); ++v) {
    // Triangles through v: pairs of adjacent neighbors. One row decode
    // per neighbor i, then sorted membership probes for each j > i.
    uint64_t triangles = 0;
    const auto nv = g.NeighborsInto(v, scratch.a);
    for (size_t i = 0; i < nv.size(); ++i) {
      const auto ni = g.NeighborsInto(nv[i], scratch.b);
      for (size_t j = i + 1; j < nv.size(); ++j) {
        triangles += std::binary_search(ni.begin(), ni.end(), nv[j]);
      }
    }
    // 4-cycles through v: an opposite vertex w plus a pair of common
    // neighbors {a, b} of v and w.
    std::unordered_map<VertexId, uint32_t> co_neighbors;
    for (VertexId a : nv) {
      g.ForEachOutNeighbor(a, [&](VertexId w) {
        if (w != v) ++co_neighbors[w];
      });
    }
    uint64_t cycles = 0;
    for (const auto& [w, c] : co_neighbors) {
      cycles += static_cast<uint64_t>(c) * (c - 1) / 2;
    }
    const double d = g.Degree(v);
    x.at(v, 0) = 1.0f;
    x.at(v, 1) = static_cast<float>(d / max_degree);
    x.at(v, 2) = static_cast<float>(triangles);
    x.at(v, 3) = d >= 2 ? static_cast<float>(2.0 * triangles / (d * (d - 1)))
                        : 0.0f;
    x.at(v, 4) = static_cast<float>(cycles);
  }
  });
  return x;
}

GraphClassifierReport TrainGraphClassifier(
    const TransactionDb& db, const GraphClassifierConfig& config) {
  GAL_CHECK(db.size() >= 4);
  // --- batch the transactions as one disjoint-union graph --------------
  VertexId total = 0;
  int32_t num_classes = 0;
  std::vector<VertexId> offset(db.size());
  for (uint32_t t = 0; t < db.size(); ++t) {
    offset[t] = total;
    total += db[t].graph.NumVertices();
    GAL_CHECK(db[t].class_label >= 0);
    num_classes = std::max(num_classes, db[t].class_label + 1);
  }
  std::vector<Edge> union_edges;
  for (uint32_t t = 0; t < db.size(); ++t) {
    for (const Edge& e : db[t].graph.CollectEdges()) {
      union_edges.push_back({e.src + offset[t], e.dst + offset[t]});
    }
  }
  Result<Graph> union_graph =
      Graph::FromEdges(total, std::move(union_edges), GraphOptions{});
  GAL_CHECK(union_graph.ok()) << union_graph.status();

  // --- vertex features ---------------------------------------------------
  // Label alphabet across the db (atom types) -> one-hot columns.
  std::unordered_map<Label, uint32_t> label_column;
  for (uint32_t t = 0; t < db.size(); ++t) {
    if (!db[t].graph.IsLabeled()) continue;
    for (Label l : db[t].graph.labels()) {
      label_column.emplace(l, static_cast<uint32_t>(label_column.size()));
    }
  }
  const uint32_t base_dim = 2;  // [1, degree]
  const uint32_t label_dim = static_cast<uint32_t>(label_column.size());
  const uint32_t sub_dim = config.subgraph_features ? 3 : 0;
  uint32_t dim = base_dim + label_dim + sub_dim;
  Matrix x(total, dim);
  for (uint32_t t = 0; t < db.size(); ++t) {
    Matrix local = LocalSubgraphFeatures(db[t].graph);
    for (VertexId v = 0; v < db[t].graph.NumVertices(); ++v) {
      const VertexId row = offset[t] + v;
      x.at(row, 0) = local.at(v, 0);
      x.at(row, 1) = local.at(v, 1);
      if (db[t].graph.IsLabeled()) {
        x.at(row, base_dim + label_column[db[t].graph.LabelOf(v)]) = 1.0f;
      }
      if (config.subgraph_features) {
        x.at(row, base_dim + label_dim + 0) = local.at(v, 2);  // triangles
        x.at(row, base_dim + label_dim + 1) = local.at(v, 3);  // clustering
        x.at(row, base_dim + label_dim + 2) = local.at(v, 4);  // 4-cycles
      }
    }
  }

  // --- mean-pool readout operator ----------------------------------------
  std::vector<std::tuple<uint32_t, uint32_t, float>> pool_triplets;
  for (uint32_t t = 0; t < db.size(); ++t) {
    const float inv = 1.0f / db[t].graph.NumVertices();
    for (VertexId v = 0; v < db[t].graph.NumVertices(); ++v) {
      pool_triplets.emplace_back(t, offset[t] + v, inv);
    }
  }
  SparseMatrix pool = SparseMatrix::FromTriplets(
      static_cast<uint32_t>(db.size()), total, std::move(pool_triplets));

  // --- model ---------------------------------------------------------------
  SparseMatrix adj =
      NormalizedAdjacency(union_graph.value(), AdjNorm::kSymmetric);
  AggregateFn agg = ExactAggregator(&adj);
  GcnConfig gcn_config;
  gcn_config.dims = {dim, config.hidden_dim, config.hidden_dim};
  gcn_config.seed = config.seed;
  GcnModel gcn(gcn_config);
  Rng rng(config.seed + 7);
  Matrix head = Matrix::Xavier(config.hidden_dim,
                               static_cast<uint32_t>(num_classes), rng);

  std::vector<Matrix*> params = gcn.Parameters();
  params.push_back(&head);
  Adam opt(config.lr);
  opt.Attach(params);

  std::vector<int32_t> labels(db.size());
  std::vector<uint8_t> train_mask(db.size(), 0);
  std::vector<uint8_t> test_mask(db.size(), 0);
  const uint32_t train_count =
      static_cast<uint32_t>(config.train_fraction * db.size());
  for (uint32_t t = 0; t < db.size(); ++t) {
    labels[t] = db[t].class_label;
    (t < train_count ? train_mask : test_mask)[t] = 1;
  }

  GraphClassifierReport report;
  report.feature_dim = dim;
  SoftmaxXentResult train_eval;
  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    Matrix emb = gcn.Forward(x, agg);       // total x hidden
    Matrix pooled = pool.Multiply(emb);     // graphs x hidden
    Matrix logits = Matmul(pooled, head);   // graphs x classes
    train_eval = SoftmaxCrossEntropy(logits, labels, train_mask);
    // Backward: head, then through the pool into the GCN.
    Matrix dhead = MatmulTransposeA(pooled, train_eval.grad);
    Matrix dpooled = MatmulTransposeB(train_eval.grad, head);
    Matrix demb = pool.TransposeMultiply(dpooled);
    std::vector<Matrix> grads = gcn.Backward(demb, agg);
    grads.push_back(std::move(dhead));
    if (config.weight_decay > 0.0f) {
      for (size_t i = 0; i < grads.size(); ++i) {
        grads[i].AddScaled(*params[i], config.weight_decay);
      }
    }
    opt.Step(grads);
    report.epoch_loss.push_back(train_eval.loss);
  }

  Matrix emb = gcn.Forward(x, agg);
  Matrix logits = Matmul(pool.Multiply(emb), head);
  SoftmaxXentResult train_final =
      SoftmaxCrossEntropy(logits, labels, train_mask);
  SoftmaxXentResult test_final =
      SoftmaxCrossEntropy(logits, labels, test_mask);
  report.train_accuracy =
      train_final.total
          ? static_cast<double>(train_final.correct) / train_final.total
          : 0.0;
  report.test_accuracy =
      test_final.total
          ? static_cast<double>(test_final.correct) / test_final.total
          : 0.0;
  return report;
}

}  // namespace gal
