#ifndef GAL_GNN_FEATURES_H_
#define GAL_GNN_FEATURES_H_

#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace gal {

/// Classic structural vertex features — the survey's "vertex analytics +
/// ML" path (Figure 1 path 2) where analytics output feeds downstream
/// models, and the kind of features Stolman et al. show can outperform
/// embeddings. Columns:
///   0: constant 1
///   1: degree / max_degree
///   2: log(1 + degree), scaled to [0, 1]
///   3: local clustering coefficient
///   4: core number / degeneracy
///   5: PageRank, scaled by |V| (≈1 for average vertices)
Matrix StructuralFeatures(const Graph& g);

/// Triangle count through each vertex (exact, oriented intersections).
std::vector<uint64_t> PerVertexTriangles(const Graph& g);

/// Local clustering coefficient per vertex.
std::vector<double> ClusteringCoefficients(const Graph& g);

}  // namespace gal

#endif  // GAL_GNN_FEATURES_H_
