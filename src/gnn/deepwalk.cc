#include "gnn/deepwalk.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace gal {
namespace {

struct BiasedWalkerMsg {
  uint32_t walk_id;
  VertexId previous;  // kInvalidVertex on the first hop
};

uint64_t WalkHash(uint64_t seed, uint32_t walk_id, uint32_t step) {
  uint64_t x = seed ^ (static_cast<uint64_t>(walk_id) << 32) ^ (step + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct BiasedWalkProgram : public VertexProgram<uint8_t, BiasedWalkerMsg> {
  BiasedWalkProgram(const Graph* g, uint32_t walks_per_vertex,
                    uint32_t walk_length, double p, double q, uint64_t seed,
                    std::vector<std::vector<VertexId>>* corpus)
      : g_(g), walks_per_vertex_(walks_per_vertex),
        walk_length_(walk_length), p_(p), q_(q), seed_(seed),
        corpus_(corpus) {}

  void Compute(VertexHandle<uint8_t, BiasedWalkerMsg>& v,
               std::span<const BiasedWalkerMsg> messages) override {
    const uint32_t step = v.superstep();
    if (step == 0) {
      for (uint32_t k = 0; k < walks_per_vertex_; ++k) {
        const uint32_t walk_id = v.id() * walks_per_vertex_ + k;
        (*corpus_)[walk_id].push_back(v.id());
        Forward(v, walk_id, kInvalidVertex, 0);
      }
    } else {
      for (const BiasedWalkerMsg& m : messages) {
        (*corpus_)[m.walk_id].push_back(v.id());
        if (step < walk_length_) Forward(v, m.walk_id, m.previous, step);
      }
    }
    v.VoteToHalt();
  }

  void Forward(VertexHandle<uint8_t, BiasedWalkerMsg>& v, uint32_t walk_id,
               VertexId previous, uint32_t step) {
    const auto nbrs = v.Neighbors();
    if (nbrs.empty()) return;
    // node2vec weights: 1/p back to the previous vertex, 1 to common
    // neighbors of previous, 1/q to two-hops-away vertices.
    double total = 0.0;
    weights_.resize(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      double w = 1.0;
      if (previous != kInvalidVertex) {
        if (nbrs[i] == previous) {
          w = 1.0 / p_;
        } else if (!g_->HasEdge(previous, nbrs[i])) {
          w = 1.0 / q_;
        }
      }
      weights_[i] = w;
      total += w;
    }
    double pick = (WalkHash(seed_, walk_id, step) >> 11) *
                  (1.0 / 9007199254740992.0) * total;
    size_t chosen = nbrs.size() - 1;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      pick -= weights_[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    v.SendTo(nbrs[chosen], {walk_id, v.id()});
  }

  const Graph* g_;
  uint32_t walks_per_vertex_;
  uint32_t walk_length_;
  double p_;
  double q_;
  uint64_t seed_;
  std::vector<std::vector<VertexId>>* corpus_;
  // Scratch reused per Forward call. Compute runs per worker-thread on
  // distinct program copies? No — one program instance is shared, so
  // keep this thread-local instead.
  static thread_local std::vector<double> weights_;
};

thread_local std::vector<double> BiasedWalkProgram::weights_;

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

BiasedWalkResult Node2VecWalks(const Graph& g, uint32_t walks_per_vertex,
                               uint32_t walk_length, double return_p,
                               double inout_q, uint64_t seed,
                               const TlavConfig& config) {
  GAL_CHECK(return_p > 0.0 && inout_q > 0.0);
  BiasedWalkResult result;
  result.corpus.assign(
      static_cast<size_t>(g.NumVertices()) * walks_per_vertex, {});
  TlavEngine<uint8_t, BiasedWalkerMsg> engine(&g, config);
  BiasedWalkProgram program(&g, walks_per_vertex, walk_length, return_p,
                            inout_q, seed, &result.corpus);
  result.stats = engine.Run(program);
  return result;
}

DeepWalkResult DeepWalkEmbeddings(const Graph& g,
                                  const DeepWalkOptions& options) {
  DeepWalkResult result;
  BiasedWalkResult walks = Node2VecWalks(
      g, options.walks_per_vertex, options.walk_length, options.return_p,
      options.inout_q, options.seed, options.engine);
  result.walk_stats = walks.stats;
  for (const auto& walk : walks.corpus) result.walk_vertices += walk.size();

  const VertexId n = g.NumVertices();
  Rng rng(options.seed + 101);
  // SGNS tables: input (the embedding we return) and output (context).
  Matrix in = Matrix::Xavier(n, options.dim, rng);
  Matrix out(n, options.dim);

  // Degree-biased negative table (unigram^1; ^0.75 matters little here).
  std::vector<VertexId> negative_table;
  negative_table.reserve(g.NumAdjacencyEntries());
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t d = 0; d < std::max<uint32_t>(1, g.Degree(v)); ++d) {
      negative_table.push_back(v);
    }
  }

  std::vector<float> grad_center(options.dim);
  auto update_pair = [&](VertexId center, VertexId context, float label) {
    float* ic = in.row(center);
    float* oc = out.row(context);
    float dot = 0.0f;
    for (uint32_t d = 0; d < options.dim; ++d) dot += ic[d] * oc[d];
    const float gradient = (label - Sigmoid(dot)) * options.lr;
    for (uint32_t d = 0; d < options.dim; ++d) {
      grad_center[d] += gradient * oc[d];
      oc[d] += gradient * ic[d];
    }
    ++result.sgns_updates;
  };

  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (const auto& walk : walks.corpus) {
      for (size_t c = 0; c < walk.size(); ++c) {
        const VertexId center = walk[c];
        const size_t begin = c >= options.window ? c - options.window : 0;
        const size_t end = std::min(walk.size(), c + options.window + 1);
        for (size_t x = begin; x < end; ++x) {
          if (x == c) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          update_pair(center, walk[x], 1.0f);
          for (uint32_t k = 0; k < options.negatives; ++k) {
            update_pair(center,
                        negative_table[rng.Uniform(negative_table.size())],
                        0.0f);
          }
          float* ic = in.row(center);
          for (uint32_t d = 0; d < options.dim; ++d) {
            ic[d] += grad_center[d];
          }
        }
      }
    }
  }
  result.embeddings = std::move(in);
  return result;
}

}  // namespace gal
