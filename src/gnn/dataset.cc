#include "gnn/dataset.h"

#include "common/logging.h"
#include "common/rng.h"
#include "graph/generators.h"

namespace gal {

std::vector<VertexId> NodeClassificationDataset::TrainVertices() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < train_mask.size(); ++v) {
    if (train_mask[v]) out.push_back(v);
  }
  return out;
}

Matrix SyntheticNodeFeatures(const std::vector<int32_t>& labels,
                             uint32_t num_classes, uint32_t dim,
                             double signal, double noise, uint64_t seed) {
  GAL_CHECK(dim >= num_classes);
  Rng rng(seed);
  Matrix x(static_cast<uint32_t>(labels.size()), dim);
  for (uint32_t v = 0; v < labels.size(); ++v) {
    for (uint32_t j = 0; j < dim; ++j) {
      x.at(v, j) = static_cast<float>(rng.NextGaussian() * noise);
    }
    GAL_CHECK(labels[v] >= 0 &&
              static_cast<uint32_t>(labels[v]) < num_classes);
    x.at(v, static_cast<uint32_t>(labels[v])) += static_cast<float>(signal);
  }
  return x;
}

NodeClassificationDataset MakePlantedDataset(
    const PlantedDatasetOptions& options) {
  NodeClassificationDataset ds;
  ds.graph = PlantedPartition(options.num_vertices, options.num_classes,
                              options.p_in, options.p_out, options.seed);
  ds.num_classes = options.num_classes;
  ds.labels.reserve(options.num_vertices);
  for (Label l : ds.graph.labels()) {
    ds.labels.push_back(static_cast<int32_t>(l));
  }
  ds.features =
      SyntheticNodeFeatures(ds.labels, options.num_classes,
                            options.feature_dim, options.signal,
                            options.noise, options.seed + 1);
  Rng rng(options.seed + 2);
  ds.train_mask.assign(options.num_vertices, 0);
  ds.test_mask.assign(options.num_vertices, 0);
  for (VertexId v = 0; v < options.num_vertices; ++v) {
    if (rng.Bernoulli(options.train_fraction)) {
      ds.train_mask[v] = 1;
    } else {
      ds.test_mask[v] = 1;
    }
  }
  return ds;
}

}  // namespace gal
