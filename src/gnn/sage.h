#ifndef GAL_GNN_SAGE_H_
#define GAL_GNN_SAGE_H_

#include <cstdint>
#include <vector>

#include "gnn/dataset.h"
#include "gnn/sampler.h"
#include "nn/gcn.h"

namespace gal {

/// Mini-batch GraphSAGE training with neighbor sampling — the standard
/// industrial recipe (Euler / AliGraph / DistDGL / ByteGNN). The model
/// is the mean-aggregation network of nn/gcn driven by per-batch
/// sampled blocks; the report exposes the communication quantities the
/// survey's sampling discussion turns on.
struct SageConfig {
  std::vector<uint32_t> fanouts = {10, 10};  // per layer; 0 = no sampling
  uint32_t hidden_dim = 16;
  uint32_t batch_size = 64;
  uint32_t epochs = 5;
  float lr = 0.01f;
  uint64_t seed = 1;
};

struct SageReport {
  double final_test_accuracy = 0.0;
  std::vector<double> epoch_loss;
  /// Raw feature rows gathered across all batches/epochs — the graph
  /// data communication that sampling bounds.
  uint64_t feature_rows_gathered = 0;
  uint64_t feature_bytes_gathered = 0;
  uint64_t sampled_edges = 0;
  double wall_seconds = 0.0;
};

SageReport TrainSageMinibatch(const NodeClassificationDataset& dataset,
                              const SageConfig& config);

}  // namespace gal

#endif  // GAL_GNN_SAGE_H_
