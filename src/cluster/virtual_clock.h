#ifndef GAL_CLUSTER_VIRTUAL_CLOCK_H_
#define GAL_CLUSTER_VIRTUAL_CLOCK_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "cluster/network.h"
#include "common/metrics.h"

namespace gal {

/// One bulk-synchronous round as the clock recorded it: the slowest
/// worker's compute time plus the cost-model time of the round's
/// cross-worker traffic.
struct ClusterRound {
  double compute_seconds = 0.0;   // max over workers
  uint64_t comm_bytes = 0;
  uint64_t comm_messages = 0;
  double comm_seconds = 0.0;      // cost.TransferSeconds(bytes, messages)
  double round_seconds = 0.0;     // compute + comm (the BSP barrier model)
};

/// Models the wall time of a simulated-cluster job: each round costs
/// `max over workers(compute) + TransferSeconds(comm)` — compute is
/// measured on the host, communication is charged by the NetworkCostModel,
/// so the modeled seconds are comparable across engines and deterministic
/// for a fixed traffic trace regardless of host core count. Rounds are
/// recorded so callers can replay them through the modeled pipeline
/// executor (compute/comm overlap what-ifs; see ModelClusterOverlap in
/// dist/pipeline.h). Per-round compute and comm spans feed the PR-1
/// Histogram facility for p50/p95/max readout.
///
/// Thread-safe; one clock may be shared by several engines run in
/// sequence (benches do), each attributing its own rounds via marks from
/// rounds().
class VirtualClock {
 public:
  explicit VirtualClock(NetworkCostModel cost = {}) : cost_(cost) {}

  /// Advances by one BSP round; returns the round's modeled seconds.
  double AdvanceRound(std::span<const double> per_worker_compute,
                      uint64_t comm_bytes, uint64_t comm_messages);
  /// Single-compute-value form (callers that already folded the max).
  double AdvanceRound(double max_compute_seconds, uint64_t comm_bytes,
                      uint64_t comm_messages);

  /// Modeled seconds elapsed so far (Σ round_seconds).
  double seconds() const;
  size_t rounds() const;
  /// Seconds accumulated by rounds [first_round, rounds()).
  double SecondsSince(size_t first_round) const;
  /// Copy of rounds [first_round, rounds()) — the replay trace.
  std::vector<ClusterRound> RoundsSince(size_t first_round) const;

  StageTimingStat ComputeTimings() const {
    return StageTimingStat::FromHistogram("cluster_compute", compute_hist_);
  }
  StageTimingStat CommTimings() const {
    return StageTimingStat::FromHistogram("cluster_comm", comm_hist_);
  }

  const NetworkCostModel& cost_model() const { return cost_; }

  void Reset();

 private:
  NetworkCostModel cost_;
  mutable std::mutex mu_;
  std::vector<ClusterRound> rounds_;
  double seconds_ = 0.0;
  Histogram compute_hist_;
  Histogram comm_hist_;
};

}  // namespace gal

#endif  // GAL_CLUSTER_VIRTUAL_CLOCK_H_
