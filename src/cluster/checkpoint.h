#ifndef GAL_CLUSTER_CHECKPOINT_H_
#define GAL_CLUSTER_CHECKPOINT_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/fault.h"
#include "common/logging.h"

namespace gal {

/// Byte-blob serializer for checkpoint snapshots. Engines append PODs,
/// POD vectors, and strings; the blob's size is what the CheckpointStore
/// charges to the ledger, so serializing exactly the recovery-relevant
/// state keeps the modeled checkpoint cost honest.
class BlobWriter {
 public:
  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void Vec(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<uint64_t>(values.size());
    const size_t offset = bytes_.size();
    bytes_.resize(offset + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(bytes_.data() + offset, values.data(),
                  values.size() * sizeof(T));
    }
  }

  void Str(const std::string& s) {
    Pod<uint64_t>(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  std::vector<uint8_t> Take() && { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Mirror-image reader; a read past the end is a fatal error (a
/// checkpoint blob is produced and consumed by the same engine build, so
/// a shape mismatch is a bug, not an input condition).
class BlobReader {
 public:
  explicit BlobReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T Pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    GAL_CHECK(offset_ + sizeof(T) <= bytes_.size())
        << "checkpoint blob underflow";
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> Vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t n = Pod<uint64_t>();
    GAL_CHECK(offset_ + n * sizeof(T) <= bytes_.size())
        << "checkpoint blob underflow";
    std::vector<T> values(n);
    if (n > 0) {
      std::memcpy(values.data(), bytes_.data() + offset_, n * sizeof(T));
    }
    offset_ += n * sizeof(T);
    return values;
  }

  std::string Str() {
    const uint64_t n = Pod<uint64_t>();
    GAL_CHECK(offset_ + n <= bytes_.size()) << "checkpoint blob underflow";
    std::string s(reinterpret_cast<const char*>(bytes_.data() + offset_), n);
    offset_ += n;
    return s;
  }

  bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
};

/// Holds the latest engine-state snapshot and charges its movement: a
/// Save books the blob's bytes to the TrafficLedger on a ring of worker
/// pairs (worker w ships its state share to w+1 mod W; at W=1 the charge
/// is local — checkpointing to yourself is off the wire but still data
/// touched) and advances the VirtualClock one round of pure transfer
/// time. Restore charges the read-back the same way. Engines never pay
/// for snapshots they don't take: an empty FaultPlan means no store
/// traffic at all.
class CheckpointStore {
 public:
  /// Sentinel round of the pre-round-0 snapshot (the initial state a
  /// failure before any interval checkpoint rolls back to).
  static constexpr uint32_t kInitialRound = UINT32_MAX;

  explicit CheckpointStore(ClusterRuntime* cluster) : cluster_(cluster) {
    GAL_CHECK(cluster_ != nullptr);
  }

  void Save(uint32_t round, std::vector<uint8_t> blob);

  bool has_checkpoint() const { return has_checkpoint_; }
  uint32_t round() const { return round_; }

  /// Charges the read-back of the latest snapshot and returns it.
  const std::vector<uint8_t>& Restore();

  uint32_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t checkpoint_bytes() const { return checkpoint_bytes_; }
  uint64_t restored_bytes() const { return restored_bytes_; }

 private:
  void ChargeRing(uint64_t bytes, bool reverse);

  ClusterRuntime* cluster_;
  std::vector<uint8_t> blob_;
  uint32_t round_ = kInitialRound;
  bool has_checkpoint_ = false;
  uint32_t checkpoints_taken_ = 0;
  uint64_t checkpoint_bytes_ = 0;
  uint64_t restored_bytes_ = 0;
};

/// Cumulative fault-tolerance accounting of one engine run, read back
/// into each engine family's own stats shape.
struct FaultStats {
  uint32_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t restored_bytes = 0;
  uint32_t failures_recovered = 0;
  uint32_t recomputed_rounds = 0;
  uint32_t rebalances = 0;
  uint64_t migrated_vertices = 0;
  uint64_t migration_bytes = 0;
};

/// One engine run's view of a FaultPlan: the shared checkpoint /
/// failure-recovery / straggler-mitigation driver all three engine
/// families call at their round barrier, in this order:
///
///   1. ScaleCompute(round, per_worker_seconds)   straggler injection
///   2. (engine flushes messages, advances its own clock round)
///   3. if ShouldCheckpoint(round): Commit(round, Serialize())
///   4. if OnFailure(round, &resume): restore blob, resume at `resume`
///   5. RebalanceCandidate(round, per_worker_load) -> engine migrates,
///      then CommitMigration books the moved bytes
///
/// The session consumes each failure event once, so a replayed round
/// does not re-fail; slowdown windows do re-apply on replay (the
/// straggler is still slow the second time through).
class RecoverySession {
 public:
  static constexpr uint32_t kInitialRound = CheckpointStore::kInitialRound;
  static constexpr uint32_t kNoWorker = UINT32_MAX;

  RecoverySession(ClusterRuntime* cluster, FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool active() const { return !plan_.empty(); }

  /// True when the engine must snapshot its pristine state before round
  /// 0 (any live failure schedule: recovery needs somewhere to roll back
  /// to even if the failure lands before the first interval checkpoint).
  bool WantsInitialCheckpoint() const {
    return wants_initial_ && !store_.has_checkpoint();
  }

  /// Multiplies each worker's measured compute seconds by its scheduled
  /// slowdown factor for this round.
  void ScaleCompute(uint32_t round, std::span<double> per_worker_seconds);

  bool ShouldCheckpoint(uint32_t round) const {
    return plan_.checkpoint_every() > 0 &&
           (round + 1) % plan_.checkpoint_every() == 0;
  }

  /// Snapshots `state` as of the end of `round` (or kInitialRound for
  /// the pre-run snapshot), charging it to the ledger and clock.
  void Commit(uint32_t round, std::vector<uint8_t> state);

  /// Probes the failure schedule at the end of `round`. When a failure
  /// of a worker this cluster actually has fires, consumes it, charges
  /// the restore, updates the stats, and returns the blob to
  /// deserialize; `*resume_round` is the round to re-execute from.
  /// Returns nullptr when the round completes cleanly.
  const std::vector<uint8_t>* OnFailure(uint32_t round,
                                        uint32_t* resume_round);

  /// Sustained-straggler detector over a deterministic per-worker load
  /// signal (engines pass e.g. owned-vertex counts; the session scales
  /// by the round's slowdown factors). Returns the worker to shed load
  /// from, or kNoWorker. Purely observational — the engine performs the
  /// migration and reports it via CommitMigration.
  uint32_t RebalanceCandidate(uint32_t round,
                              std::span<const double> per_worker_load);

  /// Books a completed migration: per-destination byte charges on the
  /// ledger, one clock round of transfer time, stats, and the rebalance
  /// cooldown.
  void CommitMigration(
      uint32_t from,
      std::span<const std::pair<uint32_t, uint64_t>> per_dst_bytes,
      uint64_t vertices_moved);

  const FaultStats& stats() const { return stats_; }

 private:
  ClusterRuntime* cluster_;
  FaultPlan plan_;
  CheckpointStore store_;
  std::vector<uint8_t> consumed_;  // parallel to plan_.failures()
  bool wants_initial_ = false;
  uint32_t straggler_ = kNoWorker;
  uint32_t sustained_rounds_ = 0;
  uint32_t cooldown_until_round_ = 0;
  uint32_t migrations_done_ = 0;
  FaultStats stats_;
};

}  // namespace gal

#endif  // GAL_CLUSTER_CHECKPOINT_H_
