#ifndef GAL_CLUSTER_CLUSTER_H_
#define GAL_CLUSTER_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "cluster/ledger.h"
#include "cluster/network.h"
#include "cluster/virtual_clock.h"
#include "common/logging.h"
#include "common/status.h"
#include "partition/partition.h"

namespace gal {
namespace internal {

/// Strict full-string parse of a positive integer: "12abc", "", "-3" and
/// "0" are all malformed (the old atoi-based resolution silently
/// accepted prefixes and fell through on garbage).
inline bool ParsePositiveEnvInt(const char* text, uint32_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (*end != '\0' || v <= 0 || v > static_cast<long>(UINT32_MAX)) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

/// One process-wide warning per env variable; repeated resolutions of
/// the same malformed value stay quiet.
inline void WarnOnceBadEnv(std::atomic<bool>& warned, const char* var,
                           const char* value, uint32_t fallback) {
  if (warned.exchange(true)) return;
  GAL_LOG(Warning) << var << "=\"" << value
                   << "\" is not a positive integer; using " << fallback;
}

}  // namespace internal

/// Worker-thread count for engines that execute simulated workers on
/// host threads: an explicit request wins, else the GAL_TASK_THREADS
/// environment variable, else all hardware threads. (Host threads are an
/// execution detail — results are bit-identical at any count.) A
/// malformed env value warns once and falls through.
inline uint32_t ResolveTaskThreads(uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  const uint32_t fallback = hw == 0 ? 1 : hw;
  if (const char* env = std::getenv("GAL_TASK_THREADS")) {
    uint32_t v = 0;
    if (internal::ParsePositiveEnvInt(env, &v)) return v;
    static std::atomic<bool> warned{false};
    internal::WarnOnceBadEnv(warned, "GAL_TASK_THREADS", env, fallback);
  }
  return fallback;
}

/// Simulated-cluster width: an explicit request wins, else the
/// GAL_CLUSTER_WORKERS environment variable, else 4 (the default width
/// every engine config also defaults to). Unlike host threads, the
/// worker count is semantically visible — it decides the partition and
/// therefore what traffic crosses the wire. A malformed env value warns
/// once and falls through to the default.
inline uint32_t ResolveClusterWorkers(uint32_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("GAL_CLUSTER_WORKERS")) {
    uint32_t v = 0;
    if (internal::ParsePositiveEnvInt(env, &v)) return v;
    static std::atomic<bool> warned{false};
    internal::WarnOnceBadEnv(warned, "GAL_CLUSTER_WORKERS", env, 4);
  }
  return 4;
}

/// Strict variant for callers that want malformed GAL_CLUSTER_WORKERS to
/// be an error instead of a warn-and-default (CLI front ends, tests).
inline Result<uint32_t> ResolveClusterWorkersStrict(uint32_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("GAL_CLUSTER_WORKERS")) {
    uint32_t v = 0;
    if (!internal::ParsePositiveEnvInt(env, &v)) {
      return Status::InvalidArgument(std::string("GAL_CLUSTER_WORKERS=\"") +
                                     env + "\" is not a positive integer");
    }
    return v;
  }
  return 4u;
}

struct ClusterOptions {
  /// 0 = resolve from GAL_CLUSTER_WORKERS, else 4.
  uint32_t num_workers = 0;
  NetworkCostModel network;
};

/// The one simulated-cluster substrate under every distributed component
/// (TLAV engine, TLAG task engine, dist-GNN trainer): `num_workers`
/// simulated workers, the VertexPartition that places data on them, a
/// thread-safe TrafficLedger every engine charges, and a VirtualClock
/// that turns per-round compute + charged traffic into modeled seconds.
/// Engines accept a non-owning `ClusterRuntime*`; passing the same
/// runtime to several jobs puts a PageRank superstep, a triangle-mining
/// round and a GCN epoch on one communication/wall-time axis.
///
/// The ledger and clock are safe to charge from any thread. The
/// partition is installed by whichever job currently runs (engines call
/// InstallPartition at start of run) and must not be swapped while a job
/// is in flight — jobs sharing a runtime run in sequence.
class ClusterRuntime {
 public:
  explicit ClusterRuntime(ClusterOptions options = {})
      : num_workers_(ResolveClusterWorkers(options.num_workers)),
        cost_(options.network),
        ledger_(num_workers_),
        clock_(options.network) {}

  uint32_t num_workers() const { return num_workers_; }
  const NetworkCostModel& cost_model() const { return cost_; }

  TrafficLedger& ledger() { return ledger_; }
  const TrafficLedger& ledger() const { return ledger_; }
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }

  /// The current data placement. Engines install the partition they run
  /// under; a shared runtime tracks the most recent job's placement.
  const VertexPartition& partition() const { return partition_; }
  bool has_partition() const { return !partition_.assignment.empty(); }
  void InstallPartition(VertexPartition partition) {
    GAL_CHECK(partition.num_parts == num_workers_)
        << "partition width " << partition.num_parts
        << " != cluster width " << num_workers_;
    partition_ = std::move(partition);
  }

 private:
  uint32_t num_workers_;
  NetworkCostModel cost_;
  TrafficLedger ledger_;
  VirtualClock clock_;
  VertexPartition partition_;
};

}  // namespace gal

#endif  // GAL_CLUSTER_CLUSTER_H_
