#ifndef GAL_CLUSTER_EXCHANGE_H_
#define GAL_CLUSTER_EXCHANGE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "graph/graph.h"

namespace gal {

/// Typed bulk-synchronous message exchange over a ClusterRuntime: the
/// communication step of one BSP superstep. Producers buffer messages
/// per (source worker, destination worker) lane during the compute
/// phase; Flush() charges the wire traffic to the runtime's
/// TrafficLedger and hands every message to the caller's deliver
/// callback.
///
/// Ordering contract: within one destination worker, messages are
/// delivered in ascending source-worker order, and within one
/// (src, dst) lane in send order (seq). That order depends only on the
/// send sequence — not on how many host threads executed the compute
/// phase — so engine results and stats stay bit-identical at any thread
/// count.
///
/// Thread safety: Send/AddMirrorWire/NoteMirroredDelivery touch only the
/// source worker's buffers, so the usual BSP discipline (each simulated
/// worker driven by one host thread at a time) needs no locks. Flush
/// delivers destination workers in parallel on the caller's pool;
/// distinct destinations never share a lane.
///
/// Combining (Pregel's optimization): with a combiner installed, sends
/// fold sender-side into one slot per (destination worker, destination
/// vertex); Flush delivers one message per slot and the wire cost counts
/// slots, not sends. Mirrored sends (Pregel+ hub broadcasts) ride the
/// per-worker mirror message accounted via AddMirrorWire, so they do not
/// add per-vertex wire cost.
template <typename M>
class ExchangeChannel {
 public:
  using Combiner = std::function<M(const M&, const M&)>;
  /// Called once per delivered message, in the deterministic order above.
  using Deliver = std::function<void(uint32_t dst_worker, VertexId dst, M&&)>;

  /// Wire totals of one Flush (one superstep's communication).
  struct StepTotals {
    uint64_t logical_messages = 0;  // deliveries, including local ones
    uint64_t cross_messages = 0;    // wire messages between distinct workers
    uint64_t cross_bytes = 0;       // cross messages * (sizeof(M) + envelope)
    uint64_t mirrored = 0;          // deliveries folded into mirror messages
  };

  /// `envelope_bytes` is the simulated per-message overhead added to
  /// sizeof(M) for cross-worker wire messages (dst id + lengths).
  ExchangeChannel(ClusterRuntime* cluster, uint32_t envelope_bytes)
      : cluster_(cluster), envelope_bytes_(envelope_bytes) {
    GAL_CHECK(cluster_ != nullptr);
    const uint32_t workers = cluster_->num_workers();
    boxes_.resize(workers);
    for (Outbox& box : boxes_) {
      box.lanes.assign(workers, {});
      box.combined.assign(workers, {});
      box.wire.assign(workers, 0);
      box.logical.assign(workers, 0);
      box.mirrored = 0;
    }
  }

  /// Installs (or clears, with nullptr) the combiner for the coming
  /// supersteps and drops any buffered messages.
  void Begin(Combiner combiner) {
    combiner_ = std::move(combiner);
    Clear();
  }

  /// Buffers one message from src worker to `dst_vertex` on dst worker.
  /// `mirrored` marks deliveries that ride a mirror broadcast's single
  /// per-worker wire message.
  void Send(uint32_t src, uint32_t dst_worker, VertexId dst_vertex,
            const M& message, bool mirrored = false) {
    Outbox& box = boxes_[src];
    ++box.logical[dst_worker];
    if (combiner_) {
      auto [it, inserted] = box.combined[dst_worker].emplace(
          dst_vertex, CombinedSlot{message, 0});
      if (!inserted) {
        it->second.message = combiner_(it->second.message, message);
      }
      if (!mirrored) it->second.non_mirrored = 1;
      return;
    }
    if (!mirrored) ++box.wire[dst_worker];
    box.lanes[dst_worker].push_back({dst_vertex, message});
  }

  /// Accounts the single wire message a mirror broadcast pays per remote
  /// worker it touches.
  void AddMirrorWire(uint32_t src, uint32_t dst_worker) {
    ++boxes_[src].wire[dst_worker];
  }

  /// Accounts one logical delivery folded into an already-paid mirror
  /// message.
  void NoteMirroredDelivery(uint32_t src) { ++boxes_[src].mirrored; }

  /// The BSP barrier: charges this step's wire traffic to the runtime
  /// ledger, delivers every buffered message via `deliver` (destination
  /// workers in parallel on `pool` if given), clears the buffers, and
  /// returns the step's totals.
  StepTotals Flush(ThreadPool* pool, const Deliver& deliver) {
    const uint32_t workers = cluster_->num_workers();
    TrafficLedger& ledger = cluster_->ledger();
    StepTotals totals;
    const uint64_t wire_message_bytes = sizeof(M) + envelope_bytes_;
    for (uint32_t src = 0; src < workers; ++src) {
      Outbox& box = boxes_[src];
      totals.mirrored += box.mirrored;
      box.mirrored = 0;
      for (uint32_t dst = 0; dst < workers; ++dst) {
        // Wire cost: one per mirror broadcast (already in wire[]) plus,
        // with a combiner, one per combined slot that a non-mirrored
        // send touched; without one, every non-mirrored send.
        uint64_t wire = box.wire[dst];
        if (combiner_) {
          for (const auto& [v, slot] : box.combined[dst]) {
            wire += slot.non_mirrored;
          }
        }
        totals.logical_messages += box.logical[dst];
        if (src != dst && wire > 0) {
          totals.cross_messages += wire;
          totals.cross_bytes += wire * wire_message_bytes;
          ledger.Charge(src, dst, wire * wire_message_bytes, wire);
        }
        box.wire[dst] = 0;
        box.logical[dst] = 0;
      }
    }
    auto deliver_to = [&](size_t dst) {
      for (uint32_t src = 0; src < workers; ++src) {
        Outbox& box = boxes_[src];
        std::vector<Outgoing>& lane = box.lanes[dst];
        for (Outgoing& o : lane) {
          deliver(static_cast<uint32_t>(dst), o.dst, std::move(o.message));
        }
        lane.clear();
        auto& combined = box.combined[dst];
        for (auto& [v, slot] : combined) {
          deliver(static_cast<uint32_t>(dst), v, std::move(slot.message));
        }
        combined.clear();
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(workers, deliver_to);
    } else {
      for (uint32_t dst = 0; dst < workers; ++dst) deliver_to(dst);
    }
    return totals;
  }

  /// Drops all buffered messages (failure rollback).
  void Clear() {
    for (Outbox& box : boxes_) {
      for (auto& lane : box.lanes) lane.clear();
      for (auto& slots : box.combined) slots.clear();
      std::fill(box.wire.begin(), box.wire.end(), 0);
      std::fill(box.logical.begin(), box.logical.end(), 0);
      box.mirrored = 0;
    }
  }

  bool has_combiner() const { return static_cast<bool>(combiner_); }
  uint32_t envelope_bytes() const { return envelope_bytes_; }
  ClusterRuntime* cluster() const { return cluster_; }

 private:
  struct Outgoing {
    VertexId dst;
    M message;
  };
  /// Combined slot: folded message + whether any non-mirrored send
  /// touched it.
  struct CombinedSlot {
    M message;
    uint8_t non_mirrored = 0;
  };
  /// Per-source-worker buffers, one lane per destination worker; no
  /// locking needed because a worker only appends to its own buffers.
  struct Outbox {
    std::vector<std::vector<Outgoing>> lanes;                          // [dst]
    std::vector<std::unordered_map<VertexId, CombinedSlot>> combined;  // [dst]
    std::vector<uint64_t> wire;                                        // [dst]
    std::vector<uint64_t> logical;                                     // [dst]
    uint64_t mirrored = 0;
  };

  ClusterRuntime* cluster_;
  uint32_t envelope_bytes_;
  Combiner combiner_;
  std::vector<Outbox> boxes_;
};

}  // namespace gal

#endif  // GAL_CLUSTER_EXCHANGE_H_
