#ifndef GAL_CLUSTER_FAULT_H_
#define GAL_CLUSTER_FAULT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace gal {

/// A scheduled worker failure: the worker "crashes" at the end of BSP
/// round `round` (after its compute and message flush), forcing the job
/// to roll back to the last checkpoint and replay. Events with
/// `worker >= num_workers` of the runtime they run under are inert, so
/// one env-supplied plan can be applied to jobs of any width.
struct FailureEvent {
  uint32_t worker = 0;
  uint32_t round = 0;
};

/// A scheduled straggler: worker `worker` computes `factor` times slower
/// during rounds [from_round, until_round). Overlapping windows on the
/// same worker multiply.
struct SlowdownEvent {
  uint32_t worker = 0;
  double factor = 1.0;
  uint32_t from_round = 0;
  uint32_t until_round = UINT32_MAX;
};

/// Live-rebalancing policy: when one worker's (slowdown-scaled) load
/// stays above `threshold` x the mean of the other workers for
/// `sustain_rounds` consecutive rounds, the engine migrates
/// `migrate_fraction` of its vertices to the other workers (via
/// RebalanceAway, the LDG-style greedy), books the moved state to the
/// TrafficLedger, and waits `cooldown_rounds` before re-triggering.
struct RebalanceConfig {
  bool enabled = false;
  double threshold = 2.0;
  uint32_t sustain_rounds = 3;
  double migrate_fraction = 0.5;
  uint32_t cooldown_rounds = 4;
  uint32_t max_migrations = 4;
};

/// A deterministic, seed-driven schedule of cluster misbehavior — the
/// shared fault-injection substrate every engine family (TLAV, dist-GNN,
/// TLAG) consumes through a RecoverySession. A plan is pure data: the
/// same plan applied to the same job yields the same checkpoints,
/// failures, slowdowns, and (for the order-independent programs shipped
/// here) bit-identical results at any worker x host-thread combination.
///
/// Env resolution (all optional; FromEnv returns InvalidArgument on a
/// malformed value, FromEnvOrWarn warns once and ignores it):
///   GAL_CLUSTER_FAULT_CHECKPOINT=N     checkpoint every N rounds
///   GAL_CLUSTER_FAULT_FAIL=w@r[,w@r]*  fail worker w at round r
///   GAL_CLUSTER_FAULT_SLOW=w:f[@a-b][,...]
///                                      slow worker w by factor f
///                                      (rounds [a,b), default all)
///   GAL_CLUSTER_FAULT_SEED=s           random plan from seed s
///                                      (ignored when FAIL/SLOW given)
///   GAL_CLUSTER_FAULT_REBALANCE=0|1    straggler-triggered rebalancing
class FaultPlan {
 public:
  FaultPlan() = default;

  // --- builders (chainable) -------------------------------------------
  FaultPlan& CheckpointEvery(uint32_t rounds) {
    checkpoint_every_ = rounds;
    return *this;
  }
  FaultPlan& FailWorkerAt(uint32_t worker, uint32_t round) {
    failures_.push_back({worker, round});
    return *this;
  }
  FaultPlan& SlowWorker(uint32_t worker, double factor, uint32_t from_round = 0,
                        uint32_t until_round = UINT32_MAX) {
    slowdowns_.push_back({worker, factor, from_round, until_round});
    return *this;
  }
  FaultPlan& Rebalance(RebalanceConfig config) {
    config.enabled = true;
    rebalance_ = config;
    return *this;
  }

  // --- queries ----------------------------------------------------------
  uint32_t checkpoint_every() const { return checkpoint_every_; }
  const std::vector<FailureEvent>& failures() const { return failures_; }
  const std::vector<SlowdownEvent>& slowdowns() const { return slowdowns_; }
  const RebalanceConfig& rebalance() const { return rebalance_; }

  /// True when the plan prescribes no behavior at all — the fast path
  /// every engine checks before paying any fault-tolerance machinery.
  bool empty() const {
    return checkpoint_every_ == 0 && failures_.empty() && slowdowns_.empty() &&
           !rebalance_.enabled;
  }
  bool active() const { return !empty(); }

  /// Product of the slowdown windows covering (worker, round); >= 1.
  double SlowdownFactor(uint32_t worker, uint32_t round) const {
    double factor = 1.0;
    for (const SlowdownEvent& s : slowdowns_) {
      if (s.worker == worker && round >= s.from_round &&
          round < s.until_round) {
        factor *= s.factor;
      }
    }
    return factor;
  }

  // --- construction from environment / seed -----------------------------
  /// Resolves the GAL_CLUSTER_FAULT_* variables; a malformed value is an
  /// InvalidArgument naming the variable and the offending text.
  static Result<FaultPlan> FromEnv();
  /// Like FromEnv, but a malformed value logs one process-wide warning
  /// and yields an empty plan — the default-config path engines take.
  static FaultPlan FromEnvOrWarn();

  struct RandomOptions {
    uint64_t seed = 1;
    uint32_t num_workers = 4;
    /// Rounds the schedule is drawn over (events land in [1, horizon)).
    uint32_t horizon_rounds = 16;
    uint32_t failures = 1;
    uint32_t stragglers = 1;
    double min_slowdown = 2.0;
    double max_slowdown = 8.0;
    uint32_t checkpoint_every = 4;
  };
  /// Deterministic seed-driven schedule: same options, same plan.
  static FaultPlan Random(const RandomOptions& options);

 private:
  uint32_t checkpoint_every_ = 0;
  std::vector<FailureEvent> failures_;
  std::vector<SlowdownEvent> slowdowns_;
  RebalanceConfig rebalance_;
};

}  // namespace gal

#endif  // GAL_CLUSTER_FAULT_H_
