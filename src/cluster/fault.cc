#include "cluster/fault.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/rng.h"

namespace gal {
namespace {

/// Strict full-string parse of a non-negative integer ("12abc" is
/// malformed, unlike atoi's silent prefix parse).
bool ParseU32(const std::string& text, uint32_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || v > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

Status Malformed(const char* var, const std::string& value) {
  return Status::InvalidArgument(std::string(var) + "=\"" + value +
                                 "\" is malformed");
}

/// "w@r[,w@r]*" -> failure events.
Status ParseFailSpec(const std::string& spec, FaultPlan* plan) {
  for (const std::string& item : SplitOn(spec, ',')) {
    const size_t at = item.find('@');
    uint32_t worker = 0;
    uint32_t round = 0;
    if (at == std::string::npos || !ParseU32(item.substr(0, at), &worker) ||
        !ParseU32(item.substr(at + 1), &round)) {
      return Malformed("GAL_CLUSTER_FAULT_FAIL", spec);
    }
    plan->FailWorkerAt(worker, round);
  }
  return Status::Ok();
}

/// "w:f[@a-b][,...]" -> slowdown events.
Status ParseSlowSpec(const std::string& spec, FaultPlan* plan) {
  for (const std::string& item : SplitOn(spec, ',')) {
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Malformed("GAL_CLUSTER_FAULT_SLOW", spec);
    }
    uint32_t worker = 0;
    if (!ParseU32(item.substr(0, colon), &worker)) {
      return Malformed("GAL_CLUSTER_FAULT_SLOW", spec);
    }
    std::string rest = item.substr(colon + 1);
    uint32_t from_round = 0;
    uint32_t until_round = UINT32_MAX;
    const size_t at = rest.find('@');
    if (at != std::string::npos) {
      const std::string window = rest.substr(at + 1);
      rest = rest.substr(0, at);
      const size_t dash = window.find('-');
      if (dash == std::string::npos ||
          !ParseU32(window.substr(0, dash), &from_round) ||
          !ParseU32(window.substr(dash + 1), &until_round) ||
          until_round <= from_round) {
        return Malformed("GAL_CLUSTER_FAULT_SLOW", spec);
      }
    }
    double factor = 1.0;
    if (!ParseDouble(rest, &factor) || factor < 1.0) {
      return Malformed("GAL_CLUSTER_FAULT_SLOW", spec);
    }
    plan->SlowWorker(worker, factor, from_round, until_round);
  }
  return Status::Ok();
}

}  // namespace

Result<FaultPlan> FaultPlan::FromEnv() {
  FaultPlan plan;
  if (const char* env = std::getenv("GAL_CLUSTER_FAULT_CHECKPOINT")) {
    uint32_t every = 0;
    if (!ParseU32(env, &every)) {
      return Malformed("GAL_CLUSTER_FAULT_CHECKPOINT", env);
    }
    plan.CheckpointEvery(every);
  }
  const char* fail_spec = std::getenv("GAL_CLUSTER_FAULT_FAIL");
  const char* slow_spec = std::getenv("GAL_CLUSTER_FAULT_SLOW");
  if (fail_spec != nullptr) {
    GAL_RETURN_IF_ERROR(ParseFailSpec(fail_spec, &plan));
  }
  if (slow_spec != nullptr) {
    GAL_RETURN_IF_ERROR(ParseSlowSpec(slow_spec, &plan));
  }
  if (const char* env = std::getenv("GAL_CLUSTER_FAULT_SEED")) {
    uint32_t seed = 0;
    if (!ParseU32(env, &seed)) {
      return Malformed("GAL_CLUSTER_FAULT_SEED", env);
    }
    // Explicit events win over the seeded schedule; the seed only fills
    // in whatever FAIL/SLOW left unspecified.
    RandomOptions options;
    options.seed = seed;
    options.num_workers = ResolveClusterWorkers(0);
    if (plan.checkpoint_every_ > 0) {
      options.checkpoint_every = plan.checkpoint_every_;
    }
    options.failures = fail_spec == nullptr ? 1 : 0;
    options.stragglers = slow_spec == nullptr ? 1 : 0;
    FaultPlan seeded = Random(options);
    plan.checkpoint_every_ = seeded.checkpoint_every_;
    for (const FailureEvent& f : seeded.failures_) plan.failures_.push_back(f);
    for (const SlowdownEvent& s : seeded.slowdowns_) {
      plan.slowdowns_.push_back(s);
    }
  }
  if (const char* env = std::getenv("GAL_CLUSTER_FAULT_REBALANCE")) {
    const std::string value(env);
    if (value == "1") {
      RebalanceConfig config;
      config.enabled = true;
      plan.rebalance_ = config;
    } else if (value != "0") {
      return Malformed("GAL_CLUSTER_FAULT_REBALANCE", value);
    }
  }
  // A failure schedule needs a checkpoint cadence to bound recomputation;
  // recovery without one replays from the initial snapshot, which is
  // legal but almost never what an env user meant — so it is allowed,
  // not an error.
  return plan;
}

FaultPlan FaultPlan::FromEnvOrWarn() {
  Result<FaultPlan> plan = FromEnv();
  if (plan.ok()) return std::move(plan).value();
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    GAL_LOG(Warning) << "ignoring fault-injection env: "
                     << plan.status().message();
  }
  return FaultPlan{};
}

FaultPlan FaultPlan::Random(const RandomOptions& options) {
  FaultPlan plan;
  plan.CheckpointEvery(options.checkpoint_every);
  Rng rng(options.seed);
  const uint32_t horizon = std::max(2u, options.horizon_rounds);
  const uint32_t workers = std::max(1u, options.num_workers);
  for (uint32_t i = 0; i < options.failures; ++i) {
    plan.FailWorkerAt(static_cast<uint32_t>(rng.Uniform(workers)),
                      1 + static_cast<uint32_t>(rng.Uniform(horizon - 1)));
  }
  for (uint32_t i = 0; i < options.stragglers; ++i) {
    const uint32_t worker = static_cast<uint32_t>(rng.Uniform(workers));
    const double span = options.max_slowdown - options.min_slowdown;
    const double factor = options.min_slowdown + span * rng.NextDouble();
    const uint32_t from =
        static_cast<uint32_t>(rng.Uniform(horizon - 1));
    plan.SlowWorker(worker, factor, from, UINT32_MAX);
  }
  return plan;
}

}  // namespace gal
