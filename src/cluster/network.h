#ifndef GAL_CLUSTER_NETWORK_H_
#define GAL_CLUSTER_NETWORK_H_

#include <cstdint>

namespace gal {

/// Cost model of the simulated interconnect. Defaults approximate a
/// 10 Gb/s datacenter network; the NVLink preset models DGCL's
/// high-bandwidth GPU fabric.
struct NetworkCostModel {
  double bandwidth_bytes_per_sec = 1.25e9;  // 10 Gb/s
  double latency_sec = 50e-6;               // per message

  static NetworkCostModel Ethernet10G() { return {}; }
  static NetworkCostModel Nvlink() {
    // ~300 GB/s aggregate; ~2 µs effective per-message latency (the
    // link itself is sub-microsecond, but driver/launch overhead
    // dominates what a transfer actually pays).
    return {3.0e11, 2e-6};
  }

  double TransferSeconds(uint64_t bytes, uint64_t messages = 1) const {
    return latency_sec * static_cast<double>(messages) +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

}  // namespace gal

#endif  // GAL_CLUSTER_NETWORK_H_
