#include "cluster/virtual_clock.h"

#include <algorithm>

#include "common/logging.h"

namespace gal {

double VirtualClock::AdvanceRound(std::span<const double> per_worker_compute,
                                  uint64_t comm_bytes,
                                  uint64_t comm_messages) {
  double max_compute = 0.0;
  for (double c : per_worker_compute) max_compute = std::max(max_compute, c);
  return AdvanceRound(max_compute, comm_bytes, comm_messages);
}

double VirtualClock::AdvanceRound(double max_compute_seconds,
                                  uint64_t comm_bytes,
                                  uint64_t comm_messages) {
  ClusterRound round;
  round.compute_seconds = max_compute_seconds;
  round.comm_bytes = comm_bytes;
  round.comm_messages = comm_messages;
  round.comm_seconds =
      (comm_bytes == 0 && comm_messages == 0)
          ? 0.0
          : cost_.TransferSeconds(comm_bytes, comm_messages);
  round.round_seconds = round.compute_seconds + round.comm_seconds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rounds_.push_back(round);
    seconds_ += round.round_seconds;
  }
  compute_hist_.Observe(round.compute_seconds);
  comm_hist_.Observe(round.comm_seconds);
  return round.round_seconds;
}

double VirtualClock::seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seconds_;
}

size_t VirtualClock::rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rounds_.size();
}

double VirtualClock::SecondsSince(size_t first_round) const {
  std::lock_guard<std::mutex> lock(mu_);
  double s = 0.0;
  for (size_t r = first_round; r < rounds_.size(); ++r) {
    s += rounds_[r].round_seconds;
  }
  return s;
}

std::vector<ClusterRound> VirtualClock::RoundsSince(size_t first_round) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_round >= rounds_.size()) return {};
  return std::vector<ClusterRound>(rounds_.begin() + first_round,
                                   rounds_.end());
}

void VirtualClock::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rounds_.clear();
  seconds_ = 0.0;
  compute_hist_.Reset();
  comm_hist_.Reset();
}

}  // namespace gal
