#include "cluster/checkpoint.h"

#include <algorithm>

namespace gal {

void CheckpointStore::ChargeRing(uint64_t bytes, bool reverse) {
  const uint32_t workers = cluster_->num_workers();
  TrafficLedger& ledger = cluster_->ledger();
  // Each worker ships its share of the snapshot to its ring neighbor
  // (the "stable storage" of the simulation lives one hop away); the
  // remainder rides worker 0's share so the total is exactly `bytes`.
  // Restore reverses the ring. At W=1 the charge is src == dst, which
  // the ledger books as local — off the wire, still data touched.
  const uint64_t share = bytes / workers;
  for (uint32_t w = 0; w < workers; ++w) {
    const uint64_t piece = share + (w == 0 ? bytes % workers : 0);
    const uint32_t neighbor = (w + 1) % workers;
    if (reverse) {
      ledger.Charge(neighbor, w, piece);
    } else {
      ledger.Charge(w, neighbor, piece);
    }
  }
  // Snapshot/restore time is its own clock round of pure transfer: no
  // compute, `bytes` over `workers` messages.
  cluster_->clock().AdvanceRound(0.0, bytes, workers);
}

void CheckpointStore::Save(uint32_t round, std::vector<uint8_t> blob) {
  const uint64_t bytes = blob.size();
  blob_ = std::move(blob);
  round_ = round;
  has_checkpoint_ = true;
  ++checkpoints_taken_;
  checkpoint_bytes_ += bytes;
  ChargeRing(bytes, /*reverse=*/false);
}

const std::vector<uint8_t>& CheckpointStore::Restore() {
  GAL_CHECK(has_checkpoint_) << "restore without a checkpoint";
  restored_bytes_ += blob_.size();
  ChargeRing(blob_.size(), /*reverse=*/true);
  return blob_;
}

RecoverySession::RecoverySession(ClusterRuntime* cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)), store_(cluster) {
  GAL_CHECK(cluster_ != nullptr);
  consumed_.assign(plan_.failures().size(), 0);
  for (const FailureEvent& f : plan_.failures()) {
    if (f.worker < cluster_->num_workers()) {
      wants_initial_ = true;
      break;
    }
  }
}

void RecoverySession::ScaleCompute(uint32_t round,
                                   std::span<double> per_worker_seconds) {
  if (plan_.slowdowns().empty()) return;
  for (size_t w = 0; w < per_worker_seconds.size(); ++w) {
    per_worker_seconds[w] *=
        plan_.SlowdownFactor(static_cast<uint32_t>(w), round);
  }
}

void RecoverySession::Commit(uint32_t round, std::vector<uint8_t> state) {
  store_.Save(round, std::move(state));
  stats_.checkpoints_taken = store_.checkpoints_taken();
  stats_.checkpoint_bytes = store_.checkpoint_bytes();
}

const std::vector<uint8_t>* RecoverySession::OnFailure(
    uint32_t round, uint32_t* resume_round) {
  const std::vector<FailureEvent>& failures = plan_.failures();
  bool fired = false;
  for (size_t i = 0; i < failures.size(); ++i) {
    if (consumed_[i] || failures[i].round != round) continue;
    if (failures[i].worker >= cluster_->num_workers()) {
      consumed_[i] = 1;  // inert: the plan outranges this cluster
      continue;
    }
    consumed_[i] = 1;
    fired = true;  // concurrent failures at one round share one rollback
  }
  if (!fired) return nullptr;
  GAL_CHECK(store_.has_checkpoint())
      << "failure injected with no checkpoint to roll back to";
  const std::vector<uint8_t>& blob = store_.Restore();
  const uint32_t checkpoint_round = store_.round();
  *resume_round =
      checkpoint_round == kInitialRound ? 0 : checkpoint_round + 1;
  ++stats_.failures_recovered;
  stats_.recomputed_rounds +=
      checkpoint_round == kInitialRound ? round + 1 : round - checkpoint_round;
  stats_.restored_bytes = store_.restored_bytes();
  return &blob;
}

uint32_t RecoverySession::RebalanceCandidate(
    uint32_t round, std::span<const double> per_worker_load) {
  const RebalanceConfig& rb = plan_.rebalance();
  if (!rb.enabled || per_worker_load.size() < 2) return kNoWorker;
  if (migrations_done_ >= rb.max_migrations) return kNoWorker;
  if (round < cooldown_until_round_) return kNoWorker;

  double total = 0.0;
  size_t heaviest = 0;
  std::vector<double> scaled(per_worker_load.size());
  for (size_t w = 0; w < per_worker_load.size(); ++w) {
    scaled[w] = per_worker_load[w] *
                plan_.SlowdownFactor(static_cast<uint32_t>(w), round);
    total += scaled[w];
    if (scaled[w] > scaled[heaviest]) heaviest = w;
  }
  const double others_mean =
      (total - scaled[heaviest]) /
      static_cast<double>(per_worker_load.size() - 1);
  if (others_mean <= 0.0 ||
      scaled[heaviest] <= rb.threshold * others_mean) {
    straggler_ = kNoWorker;
    sustained_rounds_ = 0;
    return kNoWorker;
  }
  if (static_cast<uint32_t>(heaviest) != straggler_) {
    straggler_ = static_cast<uint32_t>(heaviest);
    sustained_rounds_ = 0;
  }
  if (++sustained_rounds_ < rb.sustain_rounds) return kNoWorker;
  sustained_rounds_ = 0;
  cooldown_until_round_ = round + 1 + rb.cooldown_rounds;
  return straggler_;
}

void RecoverySession::CommitMigration(
    uint32_t from, std::span<const std::pair<uint32_t, uint64_t>> per_dst_bytes,
    uint64_t vertices_moved) {
  uint64_t total_bytes = 0;
  for (const auto& [dst, bytes] : per_dst_bytes) {
    cluster_->ledger().Charge(from, dst, bytes);
    total_bytes += bytes;
  }
  // Migration is its own clock round of pure transfer time.
  cluster_->clock().AdvanceRound(
      0.0, total_bytes, std::max<uint64_t>(per_dst_bytes.size(), 1));
  ++migrations_done_;
  ++stats_.rebalances;
  stats_.migrated_vertices += vertices_moved;
  stats_.migration_bytes += total_bytes;
}

}  // namespace gal
