#include "cluster/ledger.h"

#include <algorithm>

#include "common/logging.h"

namespace gal {

TrafficLedger::TrafficLedger(uint32_t num_workers)
    : num_workers_(num_workers) {
  GAL_CHECK(num_workers_ >= 1);
  shards_.reserve(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    shards_.push_back(std::make_unique<Shard>(num_workers_));
  }
}

void TrafficLedger::Charge(uint32_t src, uint32_t dst, uint64_t bytes,
                           uint64_t messages) {
  GAL_DCHECK(src < num_workers_ && dst < num_workers_);
  Shard& shard = *shards_[src];
  if (src == dst) {
    shard.local_bytes.fetch_add(bytes, std::memory_order_relaxed);
    shard.local_messages.fetch_add(messages, std::memory_order_relaxed);
    return;
  }
  shard.pair_bytes[dst].fetch_add(bytes, std::memory_order_relaxed);
  shard.pair_messages[dst].fetch_add(messages, std::memory_order_relaxed);
}

void TrafficLedger::ChargeBroadcast(uint32_t src, uint64_t bytes) {
  for (uint32_t dst = 0; dst < num_workers_; ++dst) {
    if (dst != src) Charge(src, dst, bytes);
  }
}

uint64_t TrafficLedger::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& c : shard->pair_bytes) {
      total += c.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t TrafficLedger::TotalMessages() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& c : shard->pair_messages) {
      total += c.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t TrafficLedger::PairBytes(uint32_t src, uint32_t dst) const {
  GAL_DCHECK(src < num_workers_ && dst < num_workers_);
  if (src == dst) return 0;
  return shards_[src]->pair_bytes[dst].load(std::memory_order_relaxed);
}

uint64_t TrafficLedger::PairMessages(uint32_t src, uint32_t dst) const {
  GAL_DCHECK(src < num_workers_ && dst < num_workers_);
  if (src == dst) return 0;
  return shards_[src]->pair_messages[dst].load(std::memory_order_relaxed);
}

uint64_t TrafficLedger::TotalLocalBytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->local_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TrafficLedger::TotalLocalMessages() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->local_messages.load(std::memory_order_relaxed);
  }
  return total;
}

WorkerTraffic TrafficLedger::Worker(uint32_t w) const {
  GAL_DCHECK(w < num_workers_);
  WorkerTraffic t;
  const Shard& own = *shards_[w];
  for (uint32_t dst = 0; dst < num_workers_; ++dst) {
    t.sent_bytes += own.pair_bytes[dst].load(std::memory_order_relaxed);
    t.sent_messages += own.pair_messages[dst].load(std::memory_order_relaxed);
  }
  for (uint32_t src = 0; src < num_workers_; ++src) {
    t.recv_bytes += shards_[src]->pair_bytes[w].load(std::memory_order_relaxed);
    t.recv_messages +=
        shards_[src]->pair_messages[w].load(std::memory_order_relaxed);
  }
  t.local_bytes = own.local_bytes.load(std::memory_order_relaxed);
  return t;
}

double TrafficLedger::SentBytesImbalance() const {
  uint64_t total = 0;
  uint64_t max_sent = 0;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    const WorkerTraffic t = Worker(w);
    total += t.sent_bytes;
    max_sent = std::max(max_sent, t.sent_bytes);
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / num_workers_;
  return static_cast<double>(max_sent) / mean;
}

TrafficSnapshot TrafficLedger::Snapshot() const {
  return {TotalBytes(), TotalMessages(), TotalLocalBytes(),
          TotalLocalMessages()};
}

void TrafficLedger::Reset() {
  for (auto& shard : shards_) {
    for (auto& c : shard->pair_bytes) c.store(0, std::memory_order_relaxed);
    for (auto& c : shard->pair_messages) c.store(0, std::memory_order_relaxed);
    shard->local_bytes.store(0, std::memory_order_relaxed);
    shard->local_messages.store(0, std::memory_order_relaxed);
  }
}

}  // namespace gal
