#ifndef GAL_CLUSTER_LEDGER_H_
#define GAL_CLUSTER_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace gal {

/// Cumulative totals of a ledger at one instant; benches and engines
/// subtract two snapshots to attribute traffic to one job or round.
struct TrafficSnapshot {
  uint64_t cross_bytes = 0;
  uint64_t cross_messages = 0;
  uint64_t local_bytes = 0;
  uint64_t local_messages = 0;
};

/// One worker's view of the ledger (sums over its row/column).
struct WorkerTraffic {
  uint64_t sent_bytes = 0;
  uint64_t sent_messages = 0;
  uint64_t recv_bytes = 0;
  uint64_t recv_messages = 0;
  uint64_t local_bytes = 0;  // src == dst charges (data touched in place)
};

/// Byte/message ledger of the simulated cluster. Every distributed
/// component (TLAV exchange, dist-GNN halo traffic, TLAG task homes)
/// charges its traffic here so benches can print one comparable
/// "communication volume" axis per configuration.
///
/// Thread safety: counters are sharded per *source* worker and each
/// shard's cells are atomics, so any number of host threads may charge
/// concurrently — including several threads charging on behalf of the
/// same simulated worker (stolen TLAG tasks do exactly that). This
/// replaces the old SimulatedNetwork, whose plain uint64_t counters
/// were raced under concurrent charges. Reads (totals, per-worker
/// views) sum the shards; they are monotone and exact once all writers
/// have quiesced, which is when engines read them (at barriers / end of
/// run).
class TrafficLedger {
 public:
  explicit TrafficLedger(uint32_t num_workers);

  uint32_t num_workers() const { return num_workers_; }

  /// Charges `bytes` in `messages` wire messages from src to dst.
  /// A src == dst charge is a local handoff: free on the wire, but
  /// recorded in the local column so "data touched" stays observable.
  void Charge(uint32_t src, uint32_t dst, uint64_t bytes,
              uint64_t messages = 1);

  /// Broadcast of `bytes` from one worker to every other worker.
  void ChargeBroadcast(uint32_t src, uint64_t bytes);

  // --- cross-worker (wire) totals ---------------------------------------
  uint64_t TotalBytes() const;
  uint64_t TotalMessages() const;
  uint64_t PairBytes(uint32_t src, uint32_t dst) const;
  uint64_t PairMessages(uint32_t src, uint32_t dst) const;

  // --- local (same-worker) totals ---------------------------------------
  uint64_t TotalLocalBytes() const;
  uint64_t TotalLocalMessages() const;

  /// Per-worker row/column sums.
  WorkerTraffic Worker(uint32_t w) const;

  /// max over workers(sent bytes) / mean over workers(sent bytes) — the
  /// skew a partitioning strategy induces on outbound traffic. 0 when no
  /// cross-worker traffic was charged.
  double SentBytesImbalance() const;

  TrafficSnapshot Snapshot() const;

  void Reset();

 private:
  /// One source worker's counters, cache-line separated so workers
  /// charging concurrently do not false-share.
  struct alignas(64) Shard {
    explicit Shard(uint32_t num_workers)
        : pair_bytes(num_workers), pair_messages(num_workers),
          local_bytes(0), local_messages(0) {
      for (auto& c : pair_bytes) c.store(0, std::memory_order_relaxed);
      for (auto& c : pair_messages) c.store(0, std::memory_order_relaxed);
    }
    std::vector<std::atomic<uint64_t>> pair_bytes;     // [dst]
    std::vector<std::atomic<uint64_t>> pair_messages;  // [dst]
    std::atomic<uint64_t> local_bytes;
    std::atomic<uint64_t> local_messages;
  };

  uint32_t num_workers_;
  std::vector<std::unique_ptr<Shard>> shards_;  // [src]
};

}  // namespace gal

#endif  // GAL_CLUSTER_LEDGER_H_
