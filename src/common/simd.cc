#include "common/simd.h"

#include <atomic>
#include <cstdlib>

namespace gal::simd {

#if GAL_SIMD_HAVE_AVX2
namespace detail {
// Implemented in simd_avx2.cc, the only TU compiled with -mavx2.
void AxpyF32Avx2(float* y, const float* x, float a, size_t n);
size_t IntersectCountU32Avx2(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb);
size_t IntersectIntoU32Avx2(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, uint32_t* out);
}  // namespace detail
#endif

namespace {

bool CompiledAndSupported() {
#if GAL_SIMD_HAVE_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag([] {
    const char* env = std::getenv("GAL_SIMD");
    const bool killed = env != nullptr && env[0] == '0';
    return CompiledAndSupported() && !killed;
  }());
  return flag;
}

size_t ScalarIntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t ScalarIntersectInto(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[count++] = a[i];
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

bool Available() { return CompiledAndSupported(); }

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

bool SetEnabled(bool enabled) {
  return EnabledFlag().exchange(enabled && Available(),
                                std::memory_order_relaxed);
}

const char* ActiveIsa() { return Enabled() ? "avx2" : "scalar"; }

void AxpyF32(float* y, const float* x, float a, size_t n) {
#if GAL_SIMD_HAVE_AVX2
  if (Enabled()) {
    detail::AxpyF32Avx2(y, x, a, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

size_t IntersectCountU32(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb) {
#if GAL_SIMD_HAVE_AVX2
  if (Enabled()) return detail::IntersectCountU32Avx2(a, na, b, nb);
#endif
  return ScalarIntersectCount(a, na, b, nb);
}

size_t IntersectIntoU32(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb, uint32_t* out) {
#if GAL_SIMD_HAVE_AVX2
  if (Enabled()) return detail::IntersectIntoU32Avx2(a, na, b, nb, out);
#endif
  return ScalarIntersectInto(a, na, b, nb, out);
}

}  // namespace gal::simd
