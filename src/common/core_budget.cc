#include "common/core_budget.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace gal {

CoreBudget& CoreBudget::Get() {
  static CoreBudget budget;
  return budget;
}

CoreBudget::CoreBudget()
    : hardware_cores_(std::max(1u, std::thread::hardware_concurrency())),
      real_hardware_cores_(hardware_cores_) {}

size_t CoreBudget::KernelShardCap() const {
  const size_t live = live_executors_.load(std::memory_order_acquire);
  // No lease: the kernel pool owns the machine, and an explicit
  // thread-count override above the hardware count is the caller's call.
  if (live == 0) return SIZE_MAX;
  return std::max<size_t>(1, hardware_cores_ / live);
}

void CoreBudget::AcquireStageExecutors(size_t n) {
  const size_t now =
      live_executors_.fetch_add(n, std::memory_order_acq_rel) + n;
  if (now > hardware_cores_ &&
      !warned_.exchange(true, std::memory_order_relaxed)) {
    GAL_LOG(Warning) << "CoreBudget: " << now
                     << " stage executors leased on " << hardware_cores_
                     << " hardware cores — stage-level parallelism alone "
                        "oversubscribes the machine; in-stage kernels are "
                        "clamped to 1 shard and measured overlap will be "
                        "contention-bound (modeled numbers stay valid)";
  }
}

void CoreBudget::ReleaseStageExecutors(size_t n) {
  const size_t prev = live_executors_.fetch_sub(n, std::memory_order_acq_rel);
  GAL_CHECK(prev >= n) << "CoreBudget: released " << n
                       << " stage executors but only " << prev
                       << " were leased";
}

void CoreBudget::OverrideHardwareCoresForTest(size_t n) {
  hardware_cores_ = n == 0 ? real_hardware_cores_ : n;
  warned_.store(false, std::memory_order_relaxed);
}

}  // namespace gal
