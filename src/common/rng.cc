#include "common/rng.h"

#include <cmath>

namespace gal {

double Rng::NextGaussian() {
  // Box-Muller; rejects u1 == 0 to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace gal
