#ifndef GAL_COMMON_THREADPOOL_H_
#define GAL_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gal {

/// A fixed-size pool of worker threads draining a shared FIFO task queue.
///
/// This is the generic executor used by modules that need plain fork-join
/// parallelism (partitioners, FSM support evaluation, GNN samplers). The
/// subgraph-search engines in src/tlag use their own work-stealing
/// scheduler because task splitting is part of the algorithm there.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from worker threads.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished. The pool stays usable afterwards.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is divided into contiguous blocks, one per thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(begin, end) over contiguous shards of [0, n); lower overhead
  /// than ParallelFor when per-index work is tiny.
  void ParallelForShards(
      size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: work or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): all drained
  size_t in_flight_ = 0;              // queued + running tasks
  bool shutdown_ = false;
};

}  // namespace gal

#endif  // GAL_COMMON_THREADPOOL_H_
