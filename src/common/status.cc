#include "common/status.h"

namespace gal {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace gal
