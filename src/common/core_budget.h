#ifndef GAL_COMMON_CORE_BUDGET_H_
#define GAL_COMMON_CORE_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gal {

/// Arbitrates hardware cores between the two parallelism levels the
/// framework runs concurrently:
///
///   - *stage-level*: long-running host threads — pipeline executors
///     (RunPipeline / TrainDistGcn) driving one stage each, and the
///     TLAG TaskEngine's work-stealing workers while a Run is live;
///   - *kernel-level*: the KernelContext worker pool a stage's tensor
///     kernels fan out onto from inside the stage (or from inside a
///     task).
///
/// Without coordination, E live stage executors each launching
/// kernel-pool fan-outs of T threads oversubscribe the machine E-fold
/// (E * T threads on H cores) and thrash instead of overlapping. The
/// budget's contract: while E executors are live, each kernel dispatch
/// is granted at most max(1, H / E) shards, so stage_executors *
/// kernel_shards <= hardware cores.
///
/// Ownership: the pipeline scheduler (and the task engine, for the
/// span of a Run) *leases* executor cores (see StageExecutorLease); the
/// KernelContext consults `KernelShardCap()` on every dispatch. When the
/// lease itself already exceeds the hardware (E > H), or an explicit
/// kernel-thread override collides with a live lease, the budget warns
/// once per process (the documented oversubscription path) and still
/// grants the serial-safe minimum of one shard — work always proceeds,
/// just without the pretense of parallel headroom.
class CoreBudget {
 public:
  /// The process-wide budget (hardware_concurrency cores).
  static CoreBudget& Get();

  CoreBudget(const CoreBudget&) = delete;
  CoreBudget& operator=(const CoreBudget&) = delete;

  size_t hardware_cores() const { return hardware_cores_; }

  /// Stage executors currently leased by pipeline schedulers.
  size_t live_stage_executors() const {
    return live_executors_.load(std::memory_order_relaxed);
  }

  /// Largest kernel fan-out the budget grants right now: with E >= 1
  /// leased executors, max(1, hardware / E). With no lease there is no
  /// cap — the kernel pool (and any explicit thread-count override)
  /// owns the whole machine.
  size_t KernelShardCap() const;

  /// Registers `n` stage executors going live; pairs with Release.
  /// Warns (once per process) when the lease alone oversubscribes the
  /// hardware. Prefer the RAII StageExecutorLease.
  void AcquireStageExecutors(size_t n);
  void ReleaseStageExecutors(size_t n);

  /// Test hook: pretend the machine has `n` cores (0 restores the real
  /// count). Also re-arms the one-shot oversubscription warning.
  void OverrideHardwareCoresForTest(size_t n);

 private:
  CoreBudget();

  size_t hardware_cores_;
  size_t real_hardware_cores_;
  std::atomic<size_t> live_executors_{0};
  std::atomic<bool> warned_{false};
};

/// RAII lease of stage-executor cores on the process budget.
class StageExecutorLease {
 public:
  explicit StageExecutorLease(size_t executors) : executors_(executors) {
    CoreBudget::Get().AcquireStageExecutors(executors_);
  }
  ~StageExecutorLease() {
    CoreBudget::Get().ReleaseStageExecutors(executors_);
  }

  StageExecutorLease(const StageExecutorLease&) = delete;
  StageExecutorLease& operator=(const StageExecutorLease&) = delete;

 private:
  size_t executors_;
};

}  // namespace gal

#endif  // GAL_COMMON_CORE_BUDGET_H_
