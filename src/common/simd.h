#ifndef GAL_COMMON_SIMD_H_
#define GAL_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

/// Portable SIMD wrapper for the hot inner loops (GEMM tile, SpMM row
/// gather, sorted-adjacency intersection). Design rules:
///
///  - Vector code lives in exactly one translation unit
///    (simd_avx2.cc), compiled with -mavx2 and nothing else — no
///    -mfma, so float lanes do a separate multiply and add and stay
///    bit-identical to the scalar loops; no -march=native, so the
///    binary still runs on any x86-64.
///  - Everything here dispatches at runtime: AVX2 only when the
///    compiler could build it AND the CPU reports it AND the user has
///    not set GAL_SIMD=0. The scalar fallback is the reference
///    implementation, not an approximation.
///  - SetEnabled is the test/bench hook for A/B runs in one process.
namespace gal::simd {

/// True iff AVX2 kernels were compiled in and this CPU supports them.
bool Available();

/// True iff vector kernels are active (Available, not killed by
/// GAL_SIMD=0, not switched off via SetEnabled).
bool Enabled();

/// Switches vector kernels on/off at runtime (capped by Available).
/// Returns the previous setting. Thread-safe.
bool SetEnabled(bool enabled);

/// "avx2" or "scalar" — what a kernel called right now would run.
const char* ActiveIsa();

/// y[i] += a * x[i] for i in [0, n). The vector path performs the same
/// per-element multiply-then-add as the scalar loop (no FMA
/// contraction), so results are bit-identical either way.
void AxpyF32(float* y, const float* x, float a, size_t n);

/// Number of common elements of two strictly-ascending sorted arrays.
/// Vector path: 8x8 block compare (all-pairs via register rotations).
size_t IntersectCountU32(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb);

/// Writes the common elements of two strictly-ascending sorted arrays
/// to `out` (caller guarantees capacity >= min(na, nb)); returns how
/// many were written. Output is ascending.
size_t IntersectIntoU32(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb, uint32_t* out);

}  // namespace gal::simd

#endif  // GAL_COMMON_SIMD_H_
