#include "common/logging.h"

#include <atomic>

namespace gal {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex& LogMutex() {
  static std::mutex& m = *new std::mutex;
  return m;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level = static_cast<int>(level); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_log_level.load()) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << stream_.str() << "\n";
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << "\n";
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace gal
