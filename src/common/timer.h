#ifndef GAL_COMMON_TIMER_H_
#define GAL_COMMON_TIMER_H_

#include <chrono>

namespace gal {

/// Wall-clock stopwatch used by benches and engine statistics.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gal

#endif  // GAL_COMMON_TIMER_H_
