#ifndef GAL_COMMON_STATUS_H_
#define GAL_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace gal {

/// Error categories used across the framework. Kept deliberately small;
/// the human-readable message carries the detail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kAborted,
  kIOError,
};

/// Returns a stable name for a status code ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
/// The framework does not throw exceptions across public API boundaries;
/// fallible operations return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-error wrapper, modeled after absl::StatusOr<T>.
///
/// Usage:
///   Result<Graph> g = Graph::FromEdgeListFile(path);
///   if (!g.ok()) return g.status();
///   Use(g.value());
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring StatusOr).
  Result(T value) : rep_(std::move(value)) {}
  /// Constructs from a non-OK status. Calling with an OK status is a
  /// programming error and is converted to an Internal error.
  Result(Status status) : rep_(std::move(status)) {
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the status: Ok if a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  /// Precondition: ok(). Terminates otherwise.
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace gal

/// Propagates a non-OK Status from an expression, absl-style.
#define GAL_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::gal::Status gal_status_tmp_ = (expr);      \
    if (!gal_status_tmp_.ok()) return gal_status_tmp_; \
  } while (0)

#endif  // GAL_COMMON_STATUS_H_
