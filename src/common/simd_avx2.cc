// AVX2 kernels. This is the ONLY translation unit compiled with -mavx2
// (see src/CMakeLists.txt), and it is compiled without -mfma on
// purpose: _mm256_add_ps(_mm256_mul_ps(...)) keeps the separate
// multiply and add of the scalar reference, so vector and scalar
// results are bit-identical. Callers reach these through the runtime
// dispatch in simd.cc — never call them without checking
// simd::Enabled() first, or a non-AVX2 CPU faults.
#if GAL_SIMD_HAVE_AVX2

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace gal::simd::detail {

void AxpyF32Avx2(float* y, const float* x, float a, size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_add_ps(vy, _mm256_mul_ps(va, vx));
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

namespace {

/// All-pairs equality of one 8-lane block of `a` against one 8-lane
/// block of `b`: compare, rotate b by one lane, repeat 8 times. The
/// returned movemask has bit k set iff a[k] occurs anywhere in the b
/// block. Arrays are strictly ascending, so each a value matches at
/// most one b value globally and popcounting the mask never double
/// counts.
inline uint32_t BlockMatchMask(__m256i va, __m256i vb) {
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i match = _mm256_cmpeq_epi32(va, vb);
  __m256i vb_r = vb;
  for (int r = 1; r < 8; ++r) {
    vb_r = _mm256_permutevar8x32_epi32(vb_r, rot1);
    match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, vb_r));
  }
  return static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(match)));
}

}  // namespace

size_t IntersectCountU32Avx2(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    count += static_cast<size_t>(__builtin_popcount(BlockMatchMask(va, vb)));
    // Advance whichever block's maximum is smaller (both on a tie):
    // every element of the retired block has been compared against all
    // candidates that could still equal it.
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  // Scalar merge over the tails.
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t IntersectIntoU32Avx2(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, count = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    uint32_t mask = BlockMatchMask(va, vb);
    // Mask bits are in lane order == ascending value order within the
    // a block, and blocks advance in ascending order, so emitting per
    // set bit keeps the output sorted.
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[count++] = a[i + static_cast<size_t>(lane)];
      mask &= mask - 1;
    }
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[count++] = a[i];
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace gal::simd::detail

#endif  // GAL_SIMD_HAVE_AVX2
