#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

namespace gal {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForShards(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForShards(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, threads_.size());
  const size_t block = (n + shards - 1) / shards;
  size_t done = 0;  // guarded by done_mu
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = s * block;
    const size_t end = std::min(n, begin + block);
    Submit([&, begin, end] {
      fn(begin, end);
      // The counter must be advanced under the mutex: otherwise the
      // waiter can observe completion and destroy done_mu while this
      // worker is still entering the lock.
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done == shards) done_cv.notify_all();
    });
  }
  // Wait for just these shards (not the whole pool) so nested use works.
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == shards; });
}

}  // namespace gal
