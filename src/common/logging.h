#ifndef GAL_COMMON_LOGGING_H_
#define GAL_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace gal {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to Info.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Collects one log line and emits it (thread-safely) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting. Used by GAL_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace gal

#define GAL_LOG(level)                                             \
  ::gal::internal_logging::LogMessage(::gal::LogLevel::k##level, \
                                      __FILE__, __LINE__)

/// Crashes with a message when an invariant is violated. Active in all
/// build modes: a database-style engine should fail loudly, not corrupt.
#define GAL_CHECK(cond)                                              \
  if (cond) {                                                        \
  } else                                                             \
    ::gal::internal_logging::FatalLogMessage(__FILE__, __LINE__, #cond)

#define GAL_CHECK_OK(expr)                                  \
  do {                                                      \
    ::gal::Status gal_check_status_ = (expr);               \
    GAL_CHECK(gal_check_status_.ok()) << gal_check_status_; \
  } while (0)

#ifdef NDEBUG
#define GAL_DCHECK(cond) GAL_CHECK(true)
#else
#define GAL_DCHECK(cond) GAL_CHECK(cond)
#endif

#endif  // GAL_COMMON_LOGGING_H_
