#ifndef GAL_COMMON_METRICS_H_
#define GAL_COMMON_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"

namespace gal {

/// Thread-safe additive counter. Engines expose one per interesting
/// quantity (messages sent, bytes moved, tasks stolen, ...); benches read
/// them to print the paper's table rows.
class Counter {
 public:
  Counter() : value_(0) {}

  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_;
};

/// Tracks the maximum value ever observed (e.g. peak memory in flight).
class MaxGauge {
 public:
  MaxGauge() : value_(0) {}

  void Observe(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_;
};

/// A named bag of counters, convenient for engines that want to report a
/// dynamic set of statistics. Lookup is by string key; not intended for
/// per-edge hot paths (use a dedicated Counter member there).
class MetricRegistry {
 public:
  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] += delta;
  }

  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> values_;
};

/// Thread-safe sample recorder with quantile readout. Used for per-stage
/// span timing (pipeline stages, training phases): every Observe is one
/// span's duration, and p50/p95/max summarize the distribution. Samples
/// are kept verbatim, so this is meant for per-batch / per-epoch spans,
/// not per-edge hot paths.
class Histogram {
 public:
  void Observe(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(v);
    sum_ += v;
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }

  double Max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Linear-interpolated quantile, q in [0, 1]. Empty histogram -> 0.
  double Quantile(double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
    sum_ = 0.0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
  double sum_ = 0.0;
};

/// Compact summary of one named span histogram — what reports carry
/// instead of the raw samples.
struct StageTimingStat {
  std::string name;
  double total_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double max_seconds = 0.0;

  static StageTimingStat FromHistogram(const std::string& name,
                                       const Histogram& h) {
    return {name, h.sum(), h.P50(), h.P95(), h.Max()};
  }
};

/// RAII span: times its scope and records the duration into a Histogram.
///
///   { ScopedSpan span(&forward_hist); model.Forward(...); }
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram* sink) : sink_(sink) {}
  ~ScopedSpan() {
    if (sink_ != nullptr) sink_->Observe(timer_.ElapsedSeconds());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram* sink_;
  Timer timer_;
};

}  // namespace gal

#endif  // GAL_COMMON_METRICS_H_
