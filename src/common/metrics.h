#ifndef GAL_COMMON_METRICS_H_
#define GAL_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gal {

/// Thread-safe additive counter. Engines expose one per interesting
/// quantity (messages sent, bytes moved, tasks stolen, ...); benches read
/// them to print the paper's table rows.
class Counter {
 public:
  Counter() : value_(0) {}

  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_;
};

/// Tracks the maximum value ever observed (e.g. peak memory in flight).
class MaxGauge {
 public:
  MaxGauge() : value_(0) {}

  void Observe(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_;
};

/// A named bag of counters, convenient for engines that want to report a
/// dynamic set of statistics. Lookup is by string key; not intended for
/// per-edge hot paths (use a dedicated Counter member there).
class MetricRegistry {
 public:
  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] += delta;
  }

  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> values_;
};

}  // namespace gal

#endif  // GAL_COMMON_METRICS_H_
