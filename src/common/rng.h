#ifndef GAL_COMMON_RNG_H_
#define GAL_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace gal {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. All randomized components in the framework (generators,
/// samplers, initializers) take an explicit seed so every experiment is
/// reproducible bit-for-bit across runs and thread counts.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) {
    GAL_DCHECK(n > 0);
    // Lemire's nearly-divisionless bounded generation (biased by < 2^-64;
    // negligible for analytics workloads).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    GAL_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace gal

#endif  // GAL_COMMON_RNG_H_
