#include "partition/partition.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace gal {

std::string PartitionQuality::ToString() const {
  std::ostringstream os;
  os << "cut=" << edge_cut << " (" << cut_ratio * 100 << "%), balance="
     << balance;
  return os.str();
}

PartitionQuality EvaluatePartition(const Graph& g, const VertexPartition& p) {
  GAL_CHECK(p.assignment.size() == g.NumVertices());
  PartitionQuality q;
  q.part_sizes.assign(p.num_parts, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    GAL_CHECK(p.assignment[v] < p.num_parts);
    ++q.part_sizes[p.assignment[v]];
  }
  for (const Edge& e : g.CollectEdges()) {
    if (p.assignment[e.src] != p.assignment[e.dst]) ++q.edge_cut;
  }
  q.cut_ratio = g.NumEdges() == 0
                    ? 0.0
                    : static_cast<double>(q.edge_cut) / g.NumEdges();
  const double avg =
      static_cast<double>(g.NumVertices()) / std::max(1u, p.num_parts);
  const uint64_t max_size =
      *std::max_element(q.part_sizes.begin(), q.part_sizes.end());
  q.balance = avg == 0.0 ? 1.0 : static_cast<double>(max_size) / avg;
  return q;
}

VertexPartition HashPartition(const Graph& g, uint32_t num_parts) {
  GAL_CHECK(num_parts >= 1);
  VertexPartition p;
  p.num_parts = num_parts;
  p.assignment.resize(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    // Multiplicative hash so contiguous ids spread across parts.
    p.assignment[v] =
        static_cast<uint32_t>((v * 0x9E3779B97F4A7C15ull) >> 32) % num_parts;
  }
  return p;
}

VertexPartition RangePartition(const Graph& g, uint32_t num_parts) {
  GAL_CHECK(num_parts >= 1);
  VertexPartition p;
  p.num_parts = num_parts;
  p.assignment.resize(g.NumVertices());
  const uint64_t n = g.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    p.assignment[v] = static_cast<uint32_t>(
        std::min<uint64_t>(num_parts - 1, v * num_parts / std::max<uint64_t>(n, 1)));
  }
  return p;
}

VertexPartition LdgPartition(const Graph& g, uint32_t num_parts,
                             uint64_t seed) {
  GAL_CHECK(num_parts >= 1);
  const VertexId n = g.NumVertices();
  VertexPartition p;
  p.num_parts = num_parts;
  p.assignment.assign(n, num_parts);  // num_parts = unassigned sentinel

  // Stream vertices in a random order so adversarial id orders don't
  // bias the greedy choice.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (VertexId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }

  const double capacity =
      static_cast<double>(n) / num_parts + 1.0;
  std::vector<uint64_t> load(num_parts, 0);
  std::vector<uint32_t> neighbor_count(num_parts, 0);
  for (VertexId v : order) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (p.assignment[u] < num_parts) ++neighbor_count[p.assignment[u]];
    });
    double best_score = -1.0;
    uint32_t best_part = 0;
    for (uint32_t part = 0; part < num_parts; ++part) {
      const double penalty = 1.0 - load[part] / capacity;
      const double score = (neighbor_count[part] + 1.0) * penalty;
      if (score > best_score) {
        best_score = score;
        best_part = part;
      }
    }
    p.assignment[v] = best_part;
    ++load[best_part];
  }
  return p;
}

VertexPartition RebalanceAway(const Graph& g, const VertexPartition& current,
                              uint32_t from, double fraction,
                              std::vector<VertexId>* moved) {
  GAL_CHECK(from < current.num_parts);
  VertexPartition p = current;
  if (moved != nullptr) moved->clear();
  if (current.num_parts < 2 || fraction <= 0.0) return p;

  const VertexId n = static_cast<VertexId>(current.assignment.size());
  std::vector<VertexId> owned;
  std::vector<uint64_t> load(current.num_parts, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++load[current.assignment[v]];
    if (current.assignment[v] == from) owned.push_back(v);
  }
  const size_t count = std::min(
      owned.size(),
      static_cast<size_t>(static_cast<double>(owned.size()) * fraction));
  if (count == 0) return p;

  // The shed range: the tail of the overloaded part's id space. Placing
  // streams it through LDG's greedy (affinity x capacity penalty) over
  // the remaining parts.
  const double capacity = static_cast<double>(n) / current.num_parts + 1.0;
  std::vector<uint32_t> neighbor_count(current.num_parts, 0);
  for (size_t i = owned.size() - count; i < owned.size(); ++i) {
    const VertexId v = owned[i];
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    g.ForEachOutNeighbor(v, [&](VertexId u) { ++neighbor_count[p.assignment[u]]; });
    double best_score = std::numeric_limits<double>::lowest();
    uint32_t best_part = from == 0 ? 1 : 0;
    for (uint32_t part = 0; part < current.num_parts; ++part) {
      if (part == from) continue;
      const double penalty =
          1.0 - static_cast<double>(load[part]) / capacity;
      const double score = (neighbor_count[part] + 1.0) * penalty;
      if (score > best_score) {
        best_score = score;
        best_part = part;
      }
    }
    p.assignment[v] = best_part;
    --load[from];
    ++load[best_part];
    if (moved != nullptr) moved->push_back(v);
  }
  return p;
}

namespace {

/// One level of the multilevel hierarchy.
struct CoarseLevel {
  Graph graph;
  /// Maps each vertex of the finer graph to its coarse super-vertex.
  std::vector<VertexId> fine_to_coarse;
  /// Weight (number of original vertices) of each coarse vertex.
  std::vector<uint32_t> weight;
};

/// Heavy-edge matching based coarsening step. Returns a level whose
/// graph has (roughly) half the vertices; multi-edges between
/// super-vertices are collapsed.
CoarseLevel Coarsen(const Graph& g, const std::vector<uint32_t>& weight,
                    Rng& rng) {
  const VertexId n = g.NumVertices();
  std::vector<VertexId> match(n, kInvalidVertex);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (VertexId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  // Unweighted edges: heavy-edge matching degenerates to matching with a
  // preference for low-weight partners (keeps coarse weights balanced).
  for (VertexId v : order) {
    if (match[v] != kInvalidVertex) continue;
    VertexId best = kInvalidVertex;
    uint32_t best_weight = std::numeric_limits<uint32_t>::max();
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (match[u] != kInvalidVertex || u == v) return;
      if (weight[u] < best_weight) {
        best_weight = weight[u];
        best = u;
      }
    });
    if (best == kInvalidVertex) {
      match[v] = v;  // unmatched: singleton super-vertex
    } else {
      match[v] = best;
      match[best] = v;
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] != kInvalidVertex) continue;
    level.fine_to_coarse[v] = next;
    if (match[v] != v) level.fine_to_coarse[match[v]] = next;
    ++next;
  }
  level.weight.assign(next, 0);
  for (VertexId v = 0; v < n; ++v) {
    level.weight[level.fine_to_coarse[v]] += weight[v];
  }

  std::vector<Edge> coarse_edges;
  for (const Edge& e : g.CollectEdges()) {
    const VertexId cu = level.fine_to_coarse[e.src];
    const VertexId cv = level.fine_to_coarse[e.dst];
    if (cu != cv) coarse_edges.push_back({std::min(cu, cv), std::max(cu, cv)});
  }
  Result<Graph> cg = Graph::FromEdges(next, std::move(coarse_edges), {});
  GAL_CHECK(cg.ok()) << cg.status();
  level.graph = std::move(cg.value());
  return level;
}

/// Greedy BFS region growing initial partition on the coarsest graph.
std::vector<uint32_t> InitialPartition(const Graph& g,
                                       const std::vector<uint32_t>& weight,
                                       uint32_t num_parts, Rng& rng) {
  const VertexId n = g.NumVertices();
  std::vector<uint32_t> part(n, num_parts);
  uint64_t total_weight = 0;
  for (uint32_t w : weight) total_weight += w;
  const double target =
      static_cast<double>(total_weight) / num_parts;

  VertexId cursor = 0;
  for (uint32_t k = 0; k < num_parts; ++k) {
    // Find an unassigned start vertex.
    VertexId start = kInvalidVertex;
    for (VertexId probe = 0; probe < n; ++probe) {
      const VertexId v = (cursor + probe) % std::max<VertexId>(n, 1);
      if (part[v] == num_parts) {
        start = v;
        cursor = v;
        break;
      }
    }
    if (start == kInvalidVertex) break;
    // Last part absorbs everything left.
    if (k + 1 == num_parts) {
      for (VertexId v = 0; v < n; ++v) {
        if (part[v] == num_parts) part[v] = k;
      }
      break;
    }
    uint64_t grown = 0;
    std::deque<VertexId> frontier{start};
    part[start] = k;
    grown += weight[start];
    while (grown < target && !frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop_front();
      g.ForEachOutNeighbor(v, [&](VertexId u) {
        if (part[u] != num_parts || grown >= target) return;
        part[u] = k;
        grown += weight[u];
        frontier.push_back(u);
      });
      // If the region is exhausted but under target, jump to a random
      // unassigned vertex (disconnected graphs).
      if (frontier.empty() && grown < target) {
        for (VertexId probe = 0; probe < n; ++probe) {
          const VertexId u = static_cast<VertexId>(rng.Uniform(n));
          if (part[u] == num_parts) {
            part[u] = k;
            grown += weight[u];
            frontier.push_back(u);
            break;
          }
        }
        break;  // give up growing this part further if none found quickly
      }
    }
  }
  // Any stragglers go to the least-loaded part.
  std::vector<uint64_t> load(num_parts, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (part[v] < num_parts) load[part[v]] += weight[v];
  }
  for (VertexId v = 0; v < n; ++v) {
    if (part[v] == num_parts) {
      const uint32_t k = static_cast<uint32_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      part[v] = k;
      load[k] += weight[v];
    }
  }
  return part;
}

/// Greedy boundary refinement: move a vertex to the neighboring part
/// with the largest cut gain if balance allows.
void Refine(const Graph& g, const std::vector<uint32_t>& weight,
            uint32_t num_parts, double imbalance,
            std::vector<uint32_t>& part, uint32_t passes) {
  const VertexId n = g.NumVertices();
  uint64_t total_weight = 0;
  for (uint32_t w : weight) total_weight += w;
  const double max_load =
      imbalance * static_cast<double>(total_weight) / num_parts;
  std::vector<uint64_t> load(num_parts, 0);
  for (VertexId v = 0; v < n; ++v) load[part[v]] += weight[v];

  std::vector<int32_t> gain(num_parts);
  for (uint32_t pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (VertexId v = 0; v < n; ++v) {
      std::fill(gain.begin(), gain.end(), 0);
      g.ForEachOutNeighbor(v, [&](VertexId u) { ++gain[part[u]]; });
      const uint32_t from = part[v];
      uint32_t best = from;
      int32_t best_gain = gain[from];
      for (uint32_t k = 0; k < num_parts; ++k) {
        if (k == from || gain[k] <= best_gain) continue;
        if (load[k] + weight[v] > max_load) continue;
        best = k;
        best_gain = gain[k];
      }
      if (best != from) {
        load[from] -= weight[v];
        load[best] += weight[v];
        part[v] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

VertexPartition MultilevelPartition(const Graph& g, uint32_t num_parts,
                                    const MultilevelOptions& options) {
  GAL_CHECK(num_parts >= 1);
  Rng rng(options.seed);

  // Coarsening phase.
  std::vector<CoarseLevel> levels;
  const Graph* current = &g;
  std::vector<uint32_t> weight(g.NumVertices(), 1);
  while (current->NumVertices() > options.coarsen_until) {
    CoarseLevel level = Coarsen(*current, weight, rng);
    // Stop if coarsening stalls (e.g. star graphs match poorly).
    if (level.graph.NumVertices() >= current->NumVertices() * 95 / 100) break;
    weight = level.weight;
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }

  // Initial partition on the coarsest graph.
  std::vector<uint32_t> part =
      InitialPartition(*current, weight, num_parts, rng);
  Refine(*current, weight, num_parts, options.imbalance, part,
         options.refine_passes);

  // Uncoarsen with refinement at every level.
  for (size_t i = levels.size(); i > 0; --i) {
    const CoarseLevel& level = levels[i - 1];
    const Graph& fine =
        (i >= 2) ? levels[i - 2].graph : g;
    std::vector<uint32_t> fine_part(fine.NumVertices());
    for (VertexId v = 0; v < fine.NumVertices(); ++v) {
      fine_part[v] = part[level.fine_to_coarse[v]];
    }
    std::vector<uint32_t> fine_weight(fine.NumVertices(), 1);
    if (i >= 2) fine_weight = levels[i - 2].weight;
    Refine(fine, fine_weight, num_parts, options.imbalance, fine_part,
           options.refine_passes);
    part = std::move(fine_part);
  }

  VertexPartition result;
  result.num_parts = num_parts;
  result.assignment = std::move(part);
  return result;
}

VertexPartition BfsVoronoiPartition(const Graph& g, uint32_t num_parts,
                                    const std::vector<VertexId>& seeds,
                                    uint64_t seed) {
  GAL_CHECK(num_parts >= 1);
  const VertexId n = g.NumVertices();
  VertexPartition result;
  result.num_parts = num_parts;
  result.assignment.assign(n, 0);
  if (n == 0) return result;

  // Phase 1: multi-source BFS from the seeds; each vertex joins the block
  // of the first seed front to reach it (the graph Voronoi diagram).
  constexpr uint32_t kUnassigned = static_cast<uint32_t>(-1);
  std::vector<uint32_t> block(n, kUnassigned);
  std::deque<VertexId> frontier;
  uint32_t num_blocks = static_cast<uint32_t>(seeds.size());
  for (uint32_t i = 0; i < seeds.size(); ++i) {
    GAL_CHECK(seeds[i] < n);
    if (block[seeds[i]] == kUnassigned) {
      block[seeds[i]] = i;
      frontier.push_back(seeds[i]);
    }
  }
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (block[u] != kUnassigned) return;
      block[u] = block[v];
      frontier.push_back(u);
    });
  }
  // Vertices unreachable from any seed form singleton blocks.
  for (VertexId v = 0; v < n; ++v) {
    if (block[v] == kUnassigned) block[v] = num_blocks++;
  }

  // Phase 2: stream blocks (largest first) onto parts, balancing by the
  // number of *seeds* per part first, then by vertex count — ByteGNN's
  // insight that GNN load tracks training seeds, not raw vertices.
  std::vector<uint64_t> block_size(num_blocks, 0);
  std::vector<uint64_t> block_seeds(num_blocks, 0);
  for (VertexId v = 0; v < n; ++v) ++block_size[block[v]];
  for (VertexId s : seeds) ++block_seeds[block[s]];

  std::vector<uint32_t> block_order(num_blocks);
  std::iota(block_order.begin(), block_order.end(), 0);
  Rng rng(seed);
  for (uint32_t i = num_blocks; i > 1; --i) {
    std::swap(block_order[i - 1], block_order[rng.Uniform(i)]);
  }
  std::stable_sort(block_order.begin(), block_order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return block_size[a] > block_size[b];
                   });

  std::vector<uint64_t> part_seeds(num_parts, 0);
  std::vector<uint64_t> part_size(num_parts, 0);
  std::vector<uint32_t> block_to_part(num_blocks, 0);
  for (uint32_t b : block_order) {
    uint32_t best = 0;
    for (uint32_t k = 1; k < num_parts; ++k) {
      if (part_seeds[k] < part_seeds[best] ||
          (part_seeds[k] == part_seeds[best] &&
           part_size[k] < part_size[best])) {
        best = k;
      }
    }
    block_to_part[b] = best;
    part_seeds[best] += block_seeds[b];
    part_size[best] += block_size[b];
  }
  for (VertexId v = 0; v < n; ++v) {
    result.assignment[v] = block_to_part[block[v]];
  }
  return result;
}

EdgePartition GreedyVertexCut(const Graph& g, uint32_t num_parts) {
  GAL_CHECK(num_parts >= 1);
  EdgePartition result;
  result.num_parts = num_parts;
  const std::vector<Edge> edges = g.CollectEdges();
  result.edge_assignment.resize(edges.size());

  // parts_of[v] = bitmask of parts already holding v (num_parts <= 64
  // supported; enough for a simulated cluster).
  GAL_CHECK(num_parts <= 64);
  std::vector<uint64_t> parts_of(g.NumVertices(), 0);
  std::vector<uint64_t> load(num_parts, 0);

  for (size_t i = 0; i < edges.size(); ++i) {
    const VertexId u = edges[i].src;
    const VertexId v = edges[i].dst;
    const uint64_t common = parts_of[u] & parts_of[v];
    const uint64_t either = parts_of[u] | parts_of[v];
    uint32_t best = num_parts;
    uint64_t best_load = std::numeric_limits<uint64_t>::max();
    auto consider_mask = [&](uint64_t mask) {
      for (uint32_t k = 0; k < num_parts; ++k) {
        if ((mask >> k) & 1u) {
          if (load[k] < best_load) {
            best_load = load[k];
            best = k;
          }
        }
      }
    };
    // PowerGraph greedy rules: prefer a part both endpoints touch, then
    // one either touches, then the least loaded.
    if (common != 0) {
      consider_mask(common);
    } else if (either != 0) {
      consider_mask(either);
    } else {
      consider_mask(~uint64_t{0} >> (64 - num_parts));
    }
    result.edge_assignment[i] = best;
    parts_of[u] |= uint64_t{1} << best;
    parts_of[v] |= uint64_t{1} << best;
    ++load[best];
  }

  result.replicas.assign(g.NumVertices(), 0);
  uint64_t replica_sum = 0;
  uint64_t counted = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    result.replicas[v] = static_cast<uint32_t>(__builtin_popcountll(parts_of[v]));
    if (g.Degree(v) > 0) {
      replica_sum += result.replicas[v];
      ++counted;
    }
  }
  result.replication_factor =
      counted == 0 ? 0.0 : static_cast<double>(replica_sum) / counted;
  return result;
}

std::vector<std::pair<uint32_t, uint32_t>> FeatureDimensionPartition(
    uint32_t feature_dim, uint32_t num_parts) {
  GAL_CHECK(num_parts >= 1);
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  ranges.reserve(num_parts);
  const uint32_t base = feature_dim / num_parts;
  const uint32_t extra = feature_dim % num_parts;
  uint32_t start = 0;
  for (uint32_t k = 0; k < num_parts; ++k) {
    const uint32_t len = base + (k < extra ? 1 : 0);
    ranges.emplace_back(start, start + len);
    start += len;
  }
  return ranges;
}

}  // namespace gal
