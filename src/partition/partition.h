#ifndef GAL_PARTITION_PARTITION_H_
#define GAL_PARTITION_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gal {

/// A disjoint assignment of vertices to `num_parts` workers — the unit of
/// data placement for both the TLAV engine and the distributed-GNN
/// simulator. The survey's systems differ chiefly in *how* this map is
/// computed (hash in Pregel, METIS in DistDGL/DGCL, BFS-Voronoi blocks in
/// ByteGNN/BGL); all of those strategies live in this module so benches
/// can swap them under an identical training/analytics job.
struct VertexPartition {
  uint32_t num_parts = 1;
  /// assignment[v] in [0, num_parts).
  std::vector<uint32_t> assignment;

  uint32_t PartOf(VertexId v) const { return assignment[v]; }
};

/// Quality metrics of a vertex partition.
struct PartitionQuality {
  /// Undirected edges whose endpoints land on different parts.
  uint64_t edge_cut = 0;
  /// edge_cut / |E|.
  double cut_ratio = 0.0;
  /// max part size / (|V| / num_parts).
  double balance = 0.0;
  std::vector<uint64_t> part_sizes;

  std::string ToString() const;
};
PartitionQuality EvaluatePartition(const Graph& g, const VertexPartition& p);

/// --- Strategies ------------------------------------------------------

/// Pregel-style modulo hash: perfectly balanced, oblivious to topology.
VertexPartition HashPartition(const Graph& g, uint32_t num_parts);

/// Contiguous id ranges; good when vertex ids carry locality (grids).
VertexPartition RangePartition(const Graph& g, uint32_t num_parts);

/// Linear Deterministic Greedy streaming partitioner: place each vertex
/// on the part holding most of its already-placed neighbors, damped by a
/// capacity penalty. The classic one-pass heuristic that industrial
/// systems use when METIS is too expensive.
VertexPartition LdgPartition(const Graph& g, uint32_t num_parts,
                             uint64_t seed = 1);

/// Multilevel partitioner (METIS stand-in): coarsen by heavy-edge
/// matching until small, split greedily by BFS region growing, then
/// project back with boundary refinement at each level.
struct MultilevelOptions {
  uint32_t coarsen_until = 256;   // stop coarsening below this many vertices
  uint32_t refine_passes = 4;     // boundary-move passes per level
  double imbalance = 1.05;        // allowed max-part / avg-part ratio
  uint64_t seed = 1;
};
VertexPartition MultilevelPartition(const Graph& g, uint32_t num_parts,
                                    const MultilevelOptions& options = {});

/// ByteGNN/BGL-style partitioner specialized for GNN workloads: grow BFS
/// regions from the *training seed* vertices (the graph Voronoi diagram
/// of the seeds) to form many small blocks, then stream blocks to parts
/// balancing the number of seeds per part. Keeps each seed's k-hop
/// neighborhood mostly within one part even when the global edge cut is
/// worse than METIS's.
VertexPartition BfsVoronoiPartition(const Graph& g, uint32_t num_parts,
                                    const std::vector<VertexId>& seeds,
                                    uint64_t seed = 1);

/// --- Live rebalancing -------------------------------------------------

/// Sheds load from an overloaded part: reassigns ~`fraction` of part
/// `from`'s vertices (the tail of its ascending-id list — a contiguous
/// range under range partitions, deterministic under any) to the other
/// parts using LdgPartition's greedy rule — most already-placed
/// neighbors, damped by a capacity penalty — with `from` excluded as a
/// destination. The elastic-cluster runtime calls this on sustained
/// straggler detection. `moved` (optional) receives the reassigned
/// vertices in ascending id order.
VertexPartition RebalanceAway(const Graph& g, const VertexPartition& current,
                              uint32_t from, double fraction,
                              std::vector<VertexId>* moved = nullptr);

/// --- Vertex-cut (edge) partitioning ----------------------------------

/// An assignment of *edges* to parts; vertices incident to edges on
/// several parts are replicated (the DistGNN / PowerGraph model, where
/// communication cost tracks the replication factor, not the edge cut).
struct EdgePartition {
  uint32_t num_parts = 1;
  /// For each logical edge (Graph::CollectEdges order), its part.
  std::vector<uint32_t> edge_assignment;
  /// replicas[v] = number of distinct parts with an edge incident to v.
  std::vector<uint32_t> replicas;
  /// Average of replicas[v] over vertices with degree > 0.
  double replication_factor = 0.0;
};

/// Greedy vertex-cut: assign each edge to the part already holding its
/// endpoints where possible, breaking ties by load.
EdgePartition GreedyVertexCut(const Graph& g, uint32_t num_parts);

/// --- Feature partitioning (P3) ----------------------------------------

/// P3 splits the *feature matrix* by dimension instead of the graph by
/// topology: worker w owns feature columns [ranges[w].first,
/// ranges[w].second) of every vertex. Returns per-worker column ranges.
std::vector<std::pair<uint32_t, uint32_t>> FeatureDimensionPartition(
    uint32_t feature_dim, uint32_t num_parts);

}  // namespace gal

#endif  // GAL_PARTITION_PARTITION_H_
