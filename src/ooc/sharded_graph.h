#ifndef GAL_OOC_SHARDED_GRAPH_H_
#define GAL_OOC_SHARDED_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/virtual_clock.h"
#include "common/status.h"
#include "graph/graph.h"
#include "ooc/shard_cache.h"
#include "ooc/shard_format.h"

namespace gal {

/// Writer knob: target varint bytes per shard. The `GAL_OOC_SHARD_BYTES`
/// environment variable, when set, overrides this at every Write call
/// (the forced-tiny-shards lever scripts/check.sh pulls).
struct ShardWriterOptions {
  uint64_t target_shard_bytes = 1ull << 20;
};

/// Open-time knobs of the out-of-core store. The `GAL_OOC_BUDGET_BYTES`
/// environment variable, when set, overrides memory_budget_bytes for
/// every Open call; an env-forced budget is clamped UP to the largest
/// shard's resident bytes (so `GAL_OOC_BUDGET_BYTES=1` means "as
/// out-of-core as possible", not "unopenable"), whereas an explicit
/// too-small option is an InvalidArgument Status — a programming error
/// should fail loudly, a kill switch should always run.
struct OocOptions {
  /// Adjacency bytes allowed resident at once; 0 = unlimited. Vertex
  /// state (degrees, ranks, labels) is deliberately outside the budget,
  /// matching GraphChi's "vertex values in RAM, edges on disk" split.
  uint64_t memory_budget_bytes = 0;
  /// Modeled disk: a shard load is charged latency + bytes/bandwidth on
  /// the store's VirtualClock. Defaults approximate one NVMe drive.
  double disk_bandwidth_bytes_per_sec = 2.0e9;
  double disk_latency_seconds = 100e-6;
};

/// Resolves the effective writer shard size / open budget against the
/// environment (exposed for tests).
uint64_t ResolveOocShardBytes(uint64_t requested);
uint64_t ResolveOocBudgetBytes(uint64_t requested, uint64_t min_feasible,
                               bool* env_forced = nullptr);

/// What WriteShardedGraph produced — the numbers a caller needs to pick
/// a sensible budget before Open.
struct ShardWriteSummary {
  uint32_t num_shards = 0;
  uint64_t total_adj_bytes = 0;
  uint64_t max_shard_resident_bytes = 0;
};

/// Partitions a graph's (reorder-permuted, delta-varint) adjacency into
/// contiguous vertex-range shards of ~target_shard_bytes each and
/// serializes them next to a manifest at `base_path`. Works on raw and
/// compressed graphs alike (rows are re-encoded through the same
/// delta-varint coder, so both layouts produce identical shard files).
/// The reorder permutation, per-vertex degrees, and edge counts ride in
/// the manifest, so ShardedGraph can answer Degree()/MapToOriginal()
/// without touching a shard.
Result<ShardWriteSummary> WriteShardedGraph(
    const Graph& g, const std::string& base_path,
    const ShardWriterOptions& options = {});

/// Deletes the manifest and every shard file of a shard set (best
/// effort; missing files are ignored). Tests and benches use this for
/// temp-dir hygiene.
void RemoveShardedGraphFiles(const std::string& base_path);

/// A disk-resident graph: the same compression-oblivious access forms
/// as Graph (ForEachOutNeighbor / NeighborCursor / NeighborsInto),
/// backed by a ShardCache that keeps at most memory_budget_bytes of
/// adjacency resident. Open validates the manifest and every shard file
/// (sizes, footers, checksums) before trusting anything — corrupt or
/// truncated inputs are a Status, never a crash.
///
/// Random-access forms pin the owning shard transiently; sweep-style
/// code pins once per shard via Pin() and streams the range (the
/// out-shard scheduling all src/ooc algorithms use). The store owns a
/// VirtualClock priced as a disk (latency + bytes/bandwidth) that the
/// engines charge one round per superstep, putting modeled I/O time on
/// the same axis as the cluster engines' modeled network time.
class ShardedGraph {
 public:
  static Result<ShardedGraph> Open(const std::string& base_path,
                                   const OocOptions& options = {});

  ShardedGraph(ShardedGraph&&) = default;
  ShardedGraph& operator=(ShardedGraph&&) = default;

  VertexId NumVertices() const { return num_vertices_; }
  EdgeId NumEdges() const { return num_edges_; }
  EdgeId NumAdjacencyEntries() const { return adjacency_entries_; }
  bool directed() const { return directed_; }
  uint32_t Degree(VertexId v) const { return degrees_[v]; }
  uint32_t MaxDegree() const { return max_degree_; }
  uint32_t delta_bias() const { return delta_bias_; }

  uint32_t NumShards() const { return static_cast<uint32_t>(infos_.size()); }
  const ShardInfo& shard(uint32_t s) const { return infos_[s]; }
  uint32_t ShardOf(VertexId v) const {
    // Shards cover [0, n) contiguously; binary search the begins.
    uint32_t lo = 0, hi = NumShards() - 1;
    while (lo < hi) {
      const uint32_t mid = (lo + hi + 1) / 2;
      if (infos_[mid].begin <= v) lo = mid;
      else hi = mid - 1;
    }
    return lo;
  }
  uint64_t TotalAdjacencyBytes() const { return total_adj_bytes_; }
  uint64_t MaxShardResidentBytes() const { return max_shard_resident_bytes_; }

  /// Pins shard s for the duration of the returned handle — the sweep
  /// fast path (one Acquire per shard per superstep).
  PinnedShard Pin(uint32_t s) const {
    return PinnedShard(cache_.get(), s, delta_bias_);
  }

  /// Streams v's sorted neighbors through fn, pinning the owning shard
  /// transiently. Holds exactly one pin for the duration of the call.
  template <typename Fn>
  void ForEachOutNeighbor(VertexId v, Fn&& fn) const {
    PinnedShard pin = Pin(ShardOf(v));
    pin.ForEachOutNeighbor(v, std::forward<Fn>(fn));
  }

  /// Owning cursor: keeps its shard pinned until destroyed, so the
  /// bytes it walks cannot be evicted mid-iteration.
  class NeighborCursor {
   public:
    bool Valid() const { return cur_.Valid(); }
    VertexId Get() const { return cur_.Get(); }
    void Next() { cur_.Next(); }

   private:
    friend class ShardedGraph;
    NeighborCursor(PinnedShard pin, VertexId v)
        : pin_(std::move(pin)), cur_(pin_.OutNeighbors(v)) {}
    PinnedShard pin_;
    PinnedShard::Cursor cur_;
  };
  NeighborCursor OutNeighbors(VertexId v) const {
    return NeighborCursor(Pin(ShardOf(v)), v);
  }

  /// Decodes v's row into `scratch` and returns a span over it. The pin
  /// is released before returning — the span survives any later shard
  /// traffic, which is how intersection code holds two rows while the
  /// cache runs a one-shard budget.
  std::span<const VertexId> NeighborsInto(VertexId v,
                                          std::vector<VertexId>& scratch) const {
    PinnedShard pin = Pin(ShardOf(v));
    return pin.NeighborsInto(v, scratch);
  }

  // --- reorder permutation (mirrors Graph::MapToOriginal) -----------------
  bool IsReordered() const { return !to_original_.empty(); }
  VertexId OriginalId(VertexId v) const {
    return to_original_.empty() ? v : to_original_[v];
  }
  VertexId InternalId(VertexId v) const {
    return to_internal_.empty() ? v : to_internal_[v];
  }
  template <typename T>
  std::vector<T> MapToOriginal(std::vector<T> per_vertex) const {
    if (to_original_.empty()) return per_vertex;
    std::vector<T> out(per_vertex.size());
    for (size_t v = 0; v < per_vertex.size(); ++v) {
      out[to_original_[v]] = std::move(per_vertex[v]);
    }
    return out;
  }

  ShardCache& cache() const { return *cache_; }
  VirtualClock& clock() const { return *clock_; }
  const OocOptions& options() const { return options_; }

 private:
  ShardedGraph() = default;

  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  EdgeId adjacency_entries_ = 0;
  bool directed_ = false;
  uint32_t delta_bias_ = 0;
  uint32_t max_degree_ = 0;
  uint64_t total_adj_bytes_ = 0;
  uint64_t max_shard_resident_bytes_ = 0;
  std::vector<ShardInfo> infos_;
  std::vector<uint32_t> degrees_;
  std::vector<VertexId> to_original_;  // empty when not reordered
  std::vector<VertexId> to_internal_;
  OocOptions options_;
  std::unique_ptr<ShardCache> cache_;
  std::unique_ptr<VirtualClock> clock_;  // priced as the modeled disk
};

}  // namespace gal

#endif  // GAL_OOC_SHARDED_GRAPH_H_
