#ifndef GAL_OOC_SHARD_CACHE_H_
#define GAL_OOC_SHARD_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "graph/compressed_csr.h"
#include "ooc/shard_format.h"

namespace gal {

/// One shard resident in memory: the varint adjacency stream and its
/// relative row offsets (row r of the shard spans stream bytes
/// [row_offsets[r], row_offsets[r+1])).
struct LoadedShard {
  ShardInfo info;
  std::vector<uint8_t> bytes;
  std::vector<uint32_t> row_offsets;
};

/// Point-in-time cache observables (monotone counters except
/// resident_bytes). `peak_resident_bytes` is the gauge the budget
/// contract is asserted on: it must never exceed the budget.
struct ShardCacheStats {
  uint64_t loads = 0;
  uint64_t hits = 0;
  uint64_t evictions = 0;
  uint64_t bytes_loaded = 0;          // disk bytes admitted (resident cost)
  uint64_t resident_bytes = 0;        // current
  uint64_t peak_resident_bytes = 0;   // max ever
};

/// Pins and evicts whole shards under a byte budget — the bounded-memory
/// substrate of the out-of-core engines (GraphChi's memoryshard, scoped
/// to adjacency data; vertex state stays in RAM). Eviction is strict LRU
/// over unpinned shards with a monotone use counter, so a serial access
/// trace always evicts in the same order. Acquire blocks (condition
/// variable) when every byte of budget is pinned elsewhere, which makes
/// a one-shard budget safe at any thread count PROVIDED each thread
/// holds at most one pin at a time — the invariant every engine in
/// src/ooc keeps (rows needed across pins are decoded into scratch
/// first). The constructor checks the budget admits the largest shard;
/// ShardedGraph::Open turns that into a Status before construction.
///
/// Loads run under the cache mutex (loads serialize; correctness and
/// the deterministic LRU trace first), each timed into a Histogram so
/// OocStats can report p50/p95 load spans.
class ShardCache {
 public:
  /// budget_bytes == 0 means unlimited.
  ShardCache(std::string base_path, std::vector<ShardInfo> shards,
             uint64_t budget_bytes);

  ShardCache(const ShardCache&) = delete;
  ShardCache& operator=(const ShardCache&) = delete;

  /// Pins shard `s` resident and returns it; blocks until it fits.
  /// Every Acquire must be paired with a Release (use PinnedShard).
  const LoadedShard* Acquire(uint32_t s);
  void Release(uint32_t s);

  ShardCacheStats Stats() const;
  StageTimingStat LoadTimings() const {
    return StageTimingStat::FromHistogram("shard_load", load_hist_);
  }
  /// Ascending ids of currently resident shards (tests assert the LRU
  /// eviction trace through this).
  std::vector<uint32_t> ResidentShards() const;

  uint64_t budget_bytes() const { return budget_bytes_; }
  uint32_t num_shards() const { return static_cast<uint32_t>(entries_.size()); }

 private:
  struct Entry {
    LoadedShard shard;  // payload vectors empty when not resident
    bool resident = false;
    uint32_t pins = 0;
    uint64_t last_use = 0;
  };

  uint64_t EffectiveBudgetLocked() const {
    return budget_bytes_ == 0 ? UINT64_MAX : budget_bytes_;
  }
  uint64_t PinnedBytesLocked() const;
  /// Evicts LRU unpinned shards until `incoming` more bytes fit.
  void EvictToFitLocked(uint64_t incoming);

  const std::string base_path_;
  const std::vector<ShardInfo> infos_;
  const uint64_t budget_bytes_;

  mutable std::mutex mu_;
  std::condition_variable space_cv_;
  std::vector<Entry> entries_;
  uint64_t use_counter_ = 0;
  ShardCacheStats stats_;
  Histogram load_hist_;
};

/// RAII pin over one shard, exposing the compression-oblivious access
/// forms for vertices inside the shard's range. Holding the pin is what
/// keeps the bytes valid — the "pin while iterating" contract: the
/// cache cannot evict a pinned shard no matter what other threads load.
class PinnedShard {
 public:
  /// Forward cursor over a row's sorted neighbors, mirroring
  /// Graph::NeighborCursor (Valid/Get/Next). Borrows the pin: valid only
  /// while the PinnedShard it came from is alive.
  class Cursor {
   public:
    bool Valid() const { return valid_; }
    VertexId Get() const { return current_; }
    void Next() {
      if (p_ == end_) {
        valid_ = false;
        return;
      }
      current_ += ReadVarint(p_) + bias_;
    }

   private:
    friend class PinnedShard;
    const uint8_t* p_ = nullptr;
    const uint8_t* end_ = nullptr;
    VertexId current_ = 0;
    uint32_t bias_ = 0;
    bool valid_ = false;
  };

  PinnedShard() = default;
  PinnedShard(ShardCache* cache, uint32_t shard, uint32_t delta_bias)
      : cache_(cache),
        shard_index_(shard),
        bias_(delta_bias),
        shard_(cache->Acquire(shard)) {}
  ~PinnedShard() { reset(); }

  PinnedShard(PinnedShard&& other) noexcept { *this = std::move(other); }
  PinnedShard& operator=(PinnedShard&& other) noexcept {
    if (this != &other) {
      reset();
      cache_ = other.cache_;
      shard_index_ = other.shard_index_;
      bias_ = other.bias_;
      shard_ = other.shard_;
      other.cache_ = nullptr;
      other.shard_ = nullptr;
    }
    return *this;
  }
  PinnedShard(const PinnedShard&) = delete;
  PinnedShard& operator=(const PinnedShard&) = delete;

  VertexId begin() const { return shard_->info.begin; }
  VertexId end() const { return shard_->info.end; }
  bool Contains(VertexId v) const { return v >= begin() && v < end(); }
  uint32_t shard_index() const { return shard_index_; }

  /// Streams v's sorted neighbors through fn without allocating —
  /// identical semantics to Graph::ForEachOutNeighbor. v must be in
  /// [begin(), end()).
  template <typename Fn>
  void ForEachOutNeighbor(VertexId v, Fn&& fn) const {
    GAL_DCHECK(Contains(v));
    const uint32_t r = v - begin();
    const uint8_t* p = shard_->bytes.data() + shard_->row_offsets[r];
    const uint8_t* end = shard_->bytes.data() + shard_->row_offsets[r + 1];
    if (p == end) return;
    VertexId current = ReadVarint(p);
    fn(current);
    while (p < end) {
      current += ReadVarint(p) + bias_;
      fn(current);
    }
  }

  Cursor OutNeighbors(VertexId v) const {
    GAL_DCHECK(Contains(v));
    const uint32_t r = v - begin();
    Cursor c;
    c.p_ = shard_->bytes.data() + shard_->row_offsets[r];
    c.end_ = shard_->bytes.data() + shard_->row_offsets[r + 1];
    c.bias_ = bias_;
    if (c.p_ != c.end_) {
      c.current_ = ReadVarint(c.p_);
      c.valid_ = true;
    }
    return c;
  }

  /// Decodes v's row into `scratch` and returns a span over it — the
  /// hand-off form: the span stays valid after this pin is released,
  /// which is how engines keep at most one pin per thread while
  /// intersecting rows from two shards.
  std::span<const VertexId> NeighborsInto(VertexId v,
                                          std::vector<VertexId>& scratch) const {
    scratch.clear();
    ForEachOutNeighbor(v, [&](VertexId u) { scratch.push_back(u); });
    return {scratch.data(), scratch.size()};
  }

 private:
  void reset() {
    if (cache_ != nullptr && shard_ != nullptr) cache_->Release(shard_index_);
    cache_ = nullptr;
    shard_ = nullptr;
  }

  ShardCache* cache_ = nullptr;
  uint32_t shard_index_ = 0;
  uint32_t bias_ = 0;
  const LoadedShard* shard_ = nullptr;
};

}  // namespace gal

#endif  // GAL_OOC_SHARD_CACHE_H_
