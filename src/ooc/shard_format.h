#ifndef GAL_OOC_SHARD_FORMAT_H_
#define GAL_OOC_SHARD_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gal {

/// On-disk format of the out-of-core shard store (GraphChi/GridGraph's
/// single-machine lane of the survey): a compressed CSR is cut into
/// contiguous vertex-range shards, each serialized as one file
///
///   [varint adjacency stream | relative row offsets (u32) | footer]
///
/// next to one manifest file holding the graph-wide metadata (vertex
/// count, per-vertex degrees, shard table, optional reorder
/// permutation). The adjacency stream reuses the delta-varint encoding
/// of compressed_csr.h byte-for-byte, so sharding a compressed graph is
/// a slice, not a transcode, and the bytes/edge economics PR 8 measured
/// carry over to disk unchanged. Footers live at the END of shard files
/// so the writer streams; every payload is checksummed (FNV-1a) and the
/// open path validates before anything is trusted — corrupt or
/// truncated files surface as Status, never as a crash.

inline constexpr char kOocManifestMagic[8] = {'G', 'A', 'L', 'O',
                                              'O', 'C', 'M', '1'};
inline constexpr char kOocShardMagic[8] = {'G', 'A', 'L', 'O',
                                           'O', 'C', 'S', '1'};
inline constexpr uint32_t kOocFormatVersion = 1;
/// magic(8) + version(4) + shard_index(4) + begin(4) + end(4) +
/// adj_bytes(8) + checksum(8).
inline constexpr size_t kOocShardFooterBytes = 40;

/// One shard's manifest entry: the vertex range it covers and the
/// integrity data needed to admit it.
struct ShardInfo {
  VertexId begin = 0;        // first vertex of the range
  VertexId end = 0;          // one past the last vertex
  uint64_t adj_bytes = 0;    // varint adjacency stream length
  uint64_t edge_count = 0;   // adjacency entries in the range
  uint64_t checksum = 0;     // FNV-1a over stream + row-offset bytes

  VertexId NumVertices() const { return end - begin; }

  /// Bytes the shard occupies once resident: the varint stream plus the
  /// relative row-offset array. This — not the raw file size — is what
  /// the ShardCache charges against the memory budget.
  uint64_t ResidentBytes() const {
    return adj_bytes +
           (static_cast<uint64_t>(NumVertices()) + 1) * sizeof(uint32_t);
  }
};

/// FNV-1a 64-bit; chainable by passing the previous digest as `seed`.
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t seed = 1469598103934665603ull) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// `<base>.manifest` and `<base>.shard00042` — a shard set is one base
/// path, so temp-dir cleanup is a prefix glob.
std::string ManifestFileName(const std::string& base_path);
std::string ShardFileName(const std::string& base_path, uint32_t shard);

/// Little-endian scalar append/read used by both the manifest and the
/// shard footers (fixed width, no struct punning — padding-safe).
void AppendU32(std::vector<uint8_t>& out, uint32_t v);
void AppendU64(std::vector<uint8_t>& out, uint64_t v);

/// Reads one shard file and validates it against its manifest entry:
/// exact file size, footer magic/version/index/range/length, and the
/// payload checksum. On success fills `bytes` (the varint stream) and
/// `row_offsets` (NumVertices()+1 offsets relative to the stream start);
/// either may be null when the caller only wants validation. Any
/// mismatch — missing file, truncation, flipped byte — is a Status.
Status ReadShardFile(const std::string& path, uint32_t expected_index,
                     const ShardInfo& expected, std::vector<uint8_t>* bytes,
                     std::vector<uint32_t>* row_offsets);

/// Writes one shard file (stream + relative offsets + footer) and
/// returns the payload checksum through `info` (info's range/bytes/edge
/// count must already be filled by the caller).
Status WriteShardFile(const std::string& path, uint32_t shard_index,
                      const std::vector<uint8_t>& stream,
                      const std::vector<uint32_t>& row_offsets,
                      ShardInfo& info);

}  // namespace gal

#endif  // GAL_OOC_SHARD_FORMAT_H_
