#ifndef GAL_OOC_OOC_ALGOS_H_
#define GAL_OOC_OOC_ALGOS_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "ooc/sharded_graph.h"
#include "tlag/task_engine.h"

namespace gal {

/// What one out-of-core run cost: the cache traffic it caused (deltas
/// over the store's counters, so back-to-back runs on one store don't
/// bleed into each other), host wall time, and the modeled time the
/// store's disk-priced VirtualClock charged — `modeled_io_seconds` is
/// the bytes/bandwidth + latency·loads share, the number that grows as
/// the budget shrinks while results stay bit-identical.
struct OocStats {
  uint32_t supersteps = 0;
  uint64_t shard_loads = 0;
  uint64_t shard_load_bytes = 0;
  uint64_t cache_hits = 0;
  uint64_t evictions = 0;
  uint64_t shards_skipped = 0;       // frontier-aware skips (WCC)
  uint64_t peak_resident_bytes = 0;  // store-lifetime gauge; never > budget
  uint64_t budget_bytes = 0;         // 0 = unlimited
  double wall_seconds = 0.0;
  double modeled_io_seconds = 0.0;
  double modeled_seconds = 0.0;      // compute + modeled I/O
  StageTimingStat load_timings;      // store-lifetime shard-load spans
};

struct OocPageRankOptions {
  uint32_t iterations = 20;
  double damping = 0.85;
  uint32_t num_threads = 0;  // 0 = ResolveTaskThreads default
};

struct OocPageRankResult {
  std::vector<double> ranks;  // original-id order, sums to ~1
  OocStats stats;
};

/// PageRank over the sharded store: one out-shard sweep per superstep
/// (scatter fixed-point rank/degree contributions shard-at-a-time, then
/// a shard-free gather over vertex state). Arithmetic replicates the
/// TLAV program exactly — 2^-50 fixed-point contributions summed with
/// associative integer adds — so ranks are bit-identical to
/// PageRank(g) at any memory budget and thread count.
OocPageRankResult OocPageRank(const ShardedGraph& g,
                              const OocPageRankOptions& options = {});

struct OocWccOptions {
  uint32_t num_threads = 0;
  uint32_t max_supersteps = UINT32_MAX;
};

struct OocWccResult {
  std::vector<VertexId> component;  // original-id order, canonical labels
  uint32_t num_components = 0;
  OocStats stats;
};

/// Hash-min WCC in frontier Jacobi form: double-buffered labels, active
/// vertices push their label to neighbors with an atomic fetch-min, one
/// out-shard sweep per superstep. Shards whose range holds no active
/// vertex are skipped entirely (never loaded) — the frontier-aware
/// scheduling that makes late, sparse supersteps cheap. Converged
/// labels are each component's minimum id — schedule-independent — then
/// canonicalized to min original id exactly like Wcc(), so components
/// are bit-identical to the in-memory run at any budget/thread count.
/// Requires an undirected shard set (write the UndirectedView).
OocWccResult OocWcc(const ShardedGraph& g, const OocWccOptions& options = {});

struct OocTriangleOptions {
  TaskEngineConfig engine;
};

struct OocTriangleResult {
  uint64_t triangles = 0;
  uint64_t intersection_ops = 0;
  OocStats stats;
  TaskEngineStats task_stats;
};

/// Degree-ordered triangle counting on the task engine, one task per
/// shard: pin the shard once and flatten its degree-oriented rows into
/// thread-local scratch, release, then intersect against target rows
/// fetched through transient pins (each thread holds at most one pin at
/// any instant, so a one-shard budget cannot deadlock). Produces the
/// same triangle count AND the same intersection_ops diagnostic as
/// TaskTriangleCount, because every IntersectCount call sees the same
/// operand rows.
OocTriangleResult OocTriangleCount(const ShardedGraph& g,
                                   const OocTriangleOptions& options = {});

}  // namespace gal

#endif  // GAL_OOC_OOC_ALGOS_H_
