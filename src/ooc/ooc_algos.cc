#include "ooc/ooc_algos.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "cluster/cluster.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "graph/intersect.h"

namespace gal {
namespace {

/// Books one run's cache traffic and modeled time against the store:
/// snapshots counters at construction, charges one VirtualClock round
/// per superstep (compute wall + bytes/loads since the last charge),
/// and folds the deltas into an OocStats at the end.
class OocRunTracker {
 public:
  explicit OocRunTracker(const ShardedGraph& g)
      : g_(g),
        start_(g.cache().Stats()),
        last_(start_),
        clock_mark_(g.clock().rounds()) {}

  void ChargeSuperstep(double compute_seconds) {
    const ShardCacheStats now = g_.cache().Stats();
    g_.clock().AdvanceRound(compute_seconds, now.bytes_loaded - last_.bytes_loaded,
                            now.loads - last_.loads);
    last_ = now;
    ++supersteps_;
  }

  void AddSkipped(uint64_t n) { shards_skipped_ += n; }

  OocStats Finish() {
    const ShardCacheStats now = g_.cache().Stats();
    OocStats s;
    s.supersteps = supersteps_;
    s.shard_loads = now.loads - start_.loads;
    s.shard_load_bytes = now.bytes_loaded - start_.bytes_loaded;
    s.cache_hits = now.hits - start_.hits;
    s.evictions = now.evictions - start_.evictions;
    s.shards_skipped = shards_skipped_;
    s.peak_resident_bytes = now.peak_resident_bytes;
    s.budget_bytes = g_.cache().budget_bytes();
    s.wall_seconds = timer_.ElapsedSeconds();
    s.modeled_seconds = g_.clock().SecondsSince(clock_mark_);
    for (const ClusterRound& r : g_.clock().RoundsSince(clock_mark_)) {
      s.modeled_io_seconds += r.comm_seconds;
    }
    s.load_timings = g_.cache().LoadTimings();
    return s;
  }

 private:
  const ShardedGraph& g_;
  Timer timer_;
  ShardCacheStats start_;
  ShardCacheStats last_;
  size_t clock_mark_;
  uint32_t supersteps_ = 0;
  uint64_t shards_skipped_ = 0;
};

// Fixed-point helpers replicated from tlav/algos/pagerank.cc — the
// whole point is arithmetic identical to the in-memory program, down to
// llround and the division order, so the two must not drift apart.
constexpr double kFixedScale = static_cast<double>(1ull << 50);

uint64_t ToFixed(double x) {
  return static_cast<uint64_t>(std::llround(x * kFixedScale));
}

double FromFixed(uint64_t fixed) {
  return static_cast<double>(fixed) / kFixedScale;
}

}  // namespace

OocPageRankResult OocPageRank(const ShardedGraph& g,
                              const OocPageRankOptions& options) {
  const VertexId n = g.NumVertices();
  const uint32_t threads = ResolveTaskThreads(options.num_threads);
  ThreadPool pool(threads);
  OocRunTracker run(g);
  OocPageRankResult result;
  if (n == 0) {
    result.stats = run.Finish();
    return result;
  }

  const double dn = static_cast<double>(n);
  std::vector<double> values(n, 1.0 / dn);
  std::vector<uint64_t> accum(n, 0);
  for (uint32_t step = 1; step <= options.iterations; ++step) {
    Timer superstep;
    std::fill(accum.begin(), accum.end(), 0);

    // Dangling mass needs only vertex state (degrees live in RAM); an
    // exact integer sum, mirroring the TLAV "dangling" aggregator.
    uint64_t dangling_fixed = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (g.Degree(v) == 0) dangling_fixed += ToFixed(values[v]);
    }

    // Scatter sweep, shard at a time: the main thread holds the single
    // pin while the pool fans out over the shard's vertex range.
    // Integer fetch_adds commute, so any interleaving sums exactly.
    for (uint32_t s = 0; s < g.NumShards(); ++s) {
      PinnedShard pin = g.Pin(s);
      const VertexId begin = pin.begin();
      pool.ParallelFor(pin.end() - begin, [&](size_t i) {
        const VertexId v = begin + static_cast<VertexId>(i);
        const uint32_t degree = g.Degree(v);
        if (degree == 0) return;
        const uint64_t contribution = ToFixed(values[v] / degree);
        pin.ForEachOutNeighbor(v, [&](VertexId u) {
          std::atomic_ref<uint64_t>(accum[u])
              .fetch_add(contribution, std::memory_order_relaxed);
        });
      });
    }

    // Gather over vertex state only — no shard access. Same expression
    // as the TLAV Compute body, term for term.
    const double dangling = FromFixed(dangling_fixed) / dn;
    pool.ParallelFor(n, [&](size_t v) {
      values[v] = (1.0 - options.damping) / dn +
                  options.damping * (FromFixed(accum[v]) + dangling);
    });
    run.ChargeSuperstep(superstep.ElapsedSeconds());
  }

  result.ranks = g.MapToOriginal(std::move(values));
  result.stats = run.Finish();
  return result;
}

OocWccResult OocWcc(const ShardedGraph& g, const OocWccOptions& options) {
  GAL_CHECK(!g.directed())
      << "OocWcc needs an undirected shard set — write the UndirectedView";
  const VertexId n = g.NumVertices();
  const uint32_t num_shards = g.NumShards();
  const uint32_t threads = ResolveTaskThreads(options.num_threads);
  ThreadPool pool(threads);
  OocRunTracker run(g);
  OocWccResult result;

  std::vector<VertexId> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::vector<VertexId> next(label);
  std::vector<uint8_t> active(n, 1);
  // Per-shard active-source counts drive the frontier-aware skip: a
  // shard with no active vertex in its range sends nothing this
  // superstep, so it is never even loaded.
  std::vector<uint64_t> shard_active(num_shards, 0);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shard_active[s] = g.shard(s).NumVertices();
  }
  uint64_t total_active = n;

  uint32_t steps = 0;
  while (total_active > 0 && steps < options.max_supersteps) {
    Timer superstep;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (shard_active[s] == 0) {
        run.AddSkipped(1);
        continue;
      }
      PinnedShard pin = g.Pin(s);
      const VertexId begin = pin.begin();
      pool.ParallelFor(pin.end() - begin, [&](size_t i) {
        const VertexId v = begin + static_cast<VertexId>(i);
        if (!active[v]) return;
        const VertexId lv = label[v];
        pin.ForEachOutNeighbor(v, [&](VertexId u) {
          std::atomic_ref<VertexId> ref(next[u]);
          VertexId cur = ref.load(std::memory_order_relaxed);
          while (lv < cur &&
                 !ref.compare_exchange_weak(cur, lv,
                                            std::memory_order_relaxed)) {
          }
        });
      });
    }
    // Barrier: fold the new frontier and per-shard counts (serial and
    // deterministic; O(n) over RAM-resident state).
    total_active = 0;
    std::fill(shard_active.begin(), shard_active.end(), 0);
    for (uint32_t s = 0; s < num_shards; ++s) {
      const ShardInfo& info = g.shard(s);
      for (VertexId v = info.begin; v < info.end; ++v) {
        const bool changed = next[v] < label[v];
        active[v] = changed ? 1 : 0;
        if (changed) {
          ++shard_active[s];
          ++total_active;
        }
        label[v] = next[v];
      }
    }
    ++steps;
    run.ChargeSuperstep(superstep.ElapsedSeconds());
  }

  // Canonicalize to min-original-id labels — same pass as
  // CanonicalizeComponents in tlav/algos/wcc.cc, so reordered stores
  // report the exact labels the in-memory run does.
  if (g.IsReordered()) {
    std::vector<VertexId> mapped(n);
    std::vector<VertexId> root_label(n, kInvalidVertex);
    for (VertexId v = 0; v < n; ++v) {
      const VertexId root = label[g.InternalId(v)];
      if (root_label[root] == kInvalidVertex) root_label[root] = v;
      mapped[v] = root_label[root];
    }
    label = std::move(mapped);
  }
  std::unordered_set<VertexId> roots(label.begin(), label.end());
  result.num_components = static_cast<uint32_t>(roots.size());
  result.component = std::move(label);
  result.stats = run.Finish();
  return result;
}

OocTriangleResult OocTriangleCount(const ShardedGraph& g,
                                   const OocTriangleOptions& options) {
  OocRunTracker run(g);
  OocTriangleResult result;
  Timer timer;
  const uint32_t threads = ResolveTaskThreads(options.engine.num_threads);

  /// Per-thread workspace, cache-line padded like the in-memory tally:
  /// one shard's flattened oriented rows plus a target-row buffer.
  struct alignas(64) Scratch {
    std::vector<uint32_t> row_start;
    std::vector<VertexId> rows;
    std::vector<VertexId> target;
    uint64_t triangles = 0;
    uint64_t ops = 0;
  };
  std::vector<Scratch> scratch(threads);

  // Orientation keeps (deg(u), u) > (deg(v), v) — identical filter to
  // OrientByDegree, evaluated on RAM-resident degrees, so every
  // IntersectCount below sees the same operands as the in-memory run.
  auto orient_into = [&g](const PinnedShard& pin, VertexId v,
                          std::vector<VertexId>& out) {
    out.clear();
    const uint32_t dv = g.Degree(v);
    pin.ForEachOutNeighbor(v, [&](VertexId u) {
      const uint32_t du = g.Degree(u);
      if (du > dv || (du == dv && u > v)) out.push_back(u);
    });
  };

  std::vector<uint32_t> tasks(g.NumShards());
  std::iota(tasks.begin(), tasks.end(), 0);
  TaskEngine<uint32_t> engine(options.engine);
  result.task_stats = engine.Run(
      std::move(tasks), [&](uint32_t& s, TaskEngine<uint32_t>::Context& ctx) {
        Scratch& sc = scratch[ctx.thread_id()];
        const ShardInfo& info = g.shard(s);
        const VertexId begin = info.begin;
        // Phase 1: pin once, flatten the whole shard's oriented rows.
        sc.row_start.assign(info.NumVertices() + 1, 0);
        sc.rows.clear();
        {
          PinnedShard pin = g.Pin(s);
          for (VertexId v = begin; v < info.end; ++v) {
            const uint32_t dv = g.Degree(v);
            pin.ForEachOutNeighbor(v, [&](VertexId u) {
              const uint32_t du = g.Degree(u);
              if (du > dv || (du == dv && u > v)) sc.rows.push_back(u);
            });
            sc.row_start[v - begin + 1] =
                static_cast<uint32_t>(sc.rows.size());
          }
        }
        // Phase 2: pin-free on this shard; each target row comes through
        // its own transient pin, so this thread never holds two pins.
        for (VertexId v = begin; v < info.end; ++v) {
          const std::span<const VertexId> ov{
              sc.rows.data() + sc.row_start[v - begin],
              sc.row_start[v - begin + 1] - sc.row_start[v - begin]};
          for (VertexId u : ov) {
            {
              PinnedShard upin = g.Pin(g.ShardOf(u));
              orient_into(upin, u, sc.target);
            }
            sc.triangles += IntersectCount(
                ov, {sc.target.data(), sc.target.size()}, &sc.ops);
          }
        }
      });

  for (const Scratch& sc : scratch) {
    result.triangles += sc.triangles;
    result.intersection_ops += sc.ops;
  }
  // The whole count is one bulk round on the modeled disk.
  run.ChargeSuperstep(timer.ElapsedSeconds());
  result.stats = run.Finish();
  return result;
}

}  // namespace gal
