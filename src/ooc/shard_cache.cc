#include "ooc/shard_cache.h"

#include <algorithm>

namespace gal {

ShardCache::ShardCache(std::string base_path, std::vector<ShardInfo> shards,
                       uint64_t budget_bytes)
    : base_path_(std::move(base_path)),
      infos_(std::move(shards)),
      budget_bytes_(budget_bytes),
      entries_(infos_.size()) {
  for (size_t s = 0; s < infos_.size(); ++s) {
    entries_[s].shard.info = infos_[s];
    GAL_CHECK(budget_bytes_ == 0 || infos_[s].ResidentBytes() <= budget_bytes_)
        << "ooc budget " << budget_bytes_ << " B cannot admit shard " << s
        << " (" << infos_[s].ResidentBytes()
        << " B resident) — ShardedGraph::Open should have rejected this";
  }
}

uint64_t ShardCache::PinnedBytesLocked() const {
  uint64_t bytes = 0;
  for (const Entry& e : entries_) {
    if (e.resident && e.pins > 0) bytes += e.shard.info.ResidentBytes();
  }
  return bytes;
}

void ShardCache::EvictToFitLocked(uint64_t incoming) {
  const uint64_t budget = EffectiveBudgetLocked();
  while (stats_.resident_bytes + incoming > budget) {
    // Strict LRU over unpinned residents: smallest last_use goes first.
    size_t victim = entries_.size();
    for (size_t s = 0; s < entries_.size(); ++s) {
      const Entry& e = entries_[s];
      if (!e.resident || e.pins > 0) continue;
      if (victim == entries_.size() ||
          e.last_use < entries_[victim].last_use) {
        victim = s;
      }
    }
    GAL_CHECK(victim != entries_.size())
        << "ooc eviction found no unpinned shard (caller holds multiple "
           "pins per thread under a too-small budget?)";
    Entry& e = entries_[victim];
    stats_.resident_bytes -= e.shard.info.ResidentBytes();
    // Swap-with-empty actually returns the memory, unlike clear().
    std::vector<uint8_t>().swap(e.shard.bytes);
    std::vector<uint32_t>().swap(e.shard.row_offsets);
    e.resident = false;
    ++stats_.evictions;
  }
}

const LoadedShard* ShardCache::Acquire(uint32_t s) {
  std::unique_lock<std::mutex> lock(mu_);
  Entry& e = entries_[s];
  const uint64_t incoming = infos_[s].ResidentBytes();
  while (true) {
    if (e.resident) {
      ++e.pins;
      e.last_use = ++use_counter_;
      ++stats_.hits;
      return &e.shard;
    }
    // Admission needs `incoming` bytes that are not pinned elsewhere;
    // unpinned residents are evictable, so only pinned bytes block us.
    if (PinnedBytesLocked() + incoming <= EffectiveBudgetLocked()) break;
    space_cv_.wait(lock);
  }
  EvictToFitLocked(incoming);
  {
    ScopedSpan span(&load_hist_);
    const Status st =
        ReadShardFile(ShardFileName(base_path_, s), s, infos_[s],
                      &e.shard.bytes, &e.shard.row_offsets);
    // Open() validated every shard file; failing here means the file
    // changed (or vanished) mid-run, which is unrecoverable.
    GAL_CHECK(st.ok()) << "shard load failed after open-time validation: "
                       << st;
  }
  e.resident = true;
  e.pins = 1;
  e.last_use = ++use_counter_;
  ++stats_.loads;
  stats_.bytes_loaded += incoming;
  stats_.resident_bytes += incoming;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  // Waiters wanting THIS shard can now pin it instead of loading.
  space_cv_.notify_all();
  return &e.shard;
}

void ShardCache::Release(uint32_t s) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[s];
  GAL_CHECK(e.pins > 0) << "Release of unpinned shard " << s;
  if (--e.pins == 0) space_cv_.notify_all();
}

ShardCacheStats ShardCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<uint32_t> ShardCache::ResidentShards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> out;
  for (size_t s = 0; s < entries_.size(); ++s) {
    if (entries_[s].resident) out.push_back(static_cast<uint32_t>(s));
  }
  return out;
}

}  // namespace gal
