#include "ooc/shard_format.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace gal {
namespace {

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

}  // namespace

std::string ManifestFileName(const std::string& base_path) {
  return base_path + ".manifest";
}

std::string ShardFileName(const std::string& base_path, uint32_t shard) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".shard%05u", shard);
  return base_path + suffix;
}

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

Status ReadShardFile(const std::string& path, uint32_t expected_index,
                     const ShardInfo& expected, std::vector<uint8_t>* bytes,
                     std::vector<uint32_t>* row_offsets) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open shard file " + path);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  const uint64_t offsets_bytes =
      (static_cast<uint64_t>(expected.NumVertices()) + 1) * sizeof(uint32_t);
  const uint64_t want_size =
      expected.adj_bytes + offsets_bytes + kOocShardFooterBytes;
  if (file_size != want_size) {
    return Status::IOError(path + ": size " + std::to_string(file_size) +
                           " != expected " + std::to_string(want_size) +
                           " (truncated or foreign file)");
  }
  std::vector<uint8_t> raw(file_size);
  in.seekg(0);
  if (!in.read(reinterpret_cast<char*>(raw.data()),
               static_cast<std::streamsize>(file_size))) {
    return Status::IOError("short read on shard file " + path);
  }

  const uint8_t* footer = raw.data() + file_size - kOocShardFooterBytes;
  if (std::memcmp(footer, kOocShardMagic, sizeof(kOocShardMagic)) != 0) {
    return Status::IOError(path + ": bad shard magic");
  }
  const uint32_t version = ReadU32(footer + 8);
  if (version != kOocFormatVersion) {
    return Status::IOError(path + ": unsupported shard format version " +
                           std::to_string(version));
  }
  const uint32_t index = ReadU32(footer + 12);
  const VertexId begin = ReadU32(footer + 16);
  const VertexId end = ReadU32(footer + 20);
  const uint64_t adj_bytes = ReadU64(footer + 24);
  const uint64_t checksum = ReadU64(footer + 32);
  if (index != expected_index || begin != expected.begin ||
      end != expected.end || adj_bytes != expected.adj_bytes) {
    return Status::IOError(path + ": footer disagrees with manifest (index " +
                           std::to_string(index) + ", range [" +
                           std::to_string(begin) + "," + std::to_string(end) +
                           "), " + std::to_string(adj_bytes) + " bytes)");
  }
  const uint64_t payload_len = expected.adj_bytes + offsets_bytes;
  const uint64_t computed = Fnv1a(raw.data(), payload_len);
  if (checksum != expected.checksum || computed != checksum) {
    return Status::IOError(path + ": checksum mismatch (payload corrupt)");
  }

  if (bytes != nullptr) {
    bytes->assign(raw.begin(), raw.begin() + expected.adj_bytes);
  }
  if (row_offsets != nullptr) {
    const size_t n = expected.NumVertices() + 1;
    row_offsets->resize(n);
    const uint8_t* p = raw.data() + expected.adj_bytes;
    for (size_t i = 0; i < n; ++i) (*row_offsets)[i] = ReadU32(p + i * 4);
    if (row_offsets->back() != expected.adj_bytes) {
      return Status::IOError(path + ": row offsets do not span the stream");
    }
  }
  return Status::Ok();
}

Status WriteShardFile(const std::string& path, uint32_t shard_index,
                      const std::vector<uint8_t>& stream,
                      const std::vector<uint32_t>& row_offsets,
                      ShardInfo& info) {
  std::vector<uint8_t> offsets_bytes;
  offsets_bytes.reserve(row_offsets.size() * sizeof(uint32_t));
  for (uint32_t off : row_offsets) AppendU32(offsets_bytes, off);
  info.checksum =
      Fnv1a(offsets_bytes.data(), offsets_bytes.size(),
            Fnv1a(stream.data(), stream.size()));

  std::vector<uint8_t> footer;
  footer.reserve(kOocShardFooterBytes);
  footer.insert(footer.end(), kOocShardMagic,
                kOocShardMagic + sizeof(kOocShardMagic));
  AppendU32(footer, kOocFormatVersion);
  AppendU32(footer, shard_index);
  AppendU32(footer, info.begin);
  AppendU32(footer, info.end);
  AppendU64(footer, info.adj_bytes);
  AppendU64(footer, info.checksum);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(stream.data()),
            static_cast<std::streamsize>(stream.size()));
  out.write(reinterpret_cast<const char*>(offsets_bytes.data()),
            static_cast<std::streamsize>(offsets_bytes.size()));
  out.write(reinterpret_cast<const char*>(footer.data()),
            static_cast<std::streamsize>(footer.size()));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

}  // namespace gal
