#include "ooc/sharded_graph.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "graph/compressed_csr.h"

namespace gal {
namespace {

constexpr uint32_t kFlagDirected = 1u << 0;
constexpr uint32_t kFlagHasPermutation = 1u << 1;

/// Bounds-checked little-endian reader over one loaded buffer; any
/// overrun flips ok() instead of reading past the end, so a truncated
/// manifest degrades to a Status, not UB.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  bool ReadBytes(void* out, size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }
  uint32_t ReadU32() {
    uint8_t b[4] = {0, 0, 0, 0};
    ReadBytes(b, 4);
    return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
           static_cast<uint32_t>(b[2]) << 16 |
           static_cast<uint32_t>(b[3]) << 24;
  }
  uint64_t ReadU64() {
    const uint64_t lo = ReadU32();
    return lo | static_cast<uint64_t>(ReadU32()) << 32;
  }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

uint64_t EnvBytes(const char* name, bool* present) {
  *present = false;
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return 0;
  *present = true;
  return std::strtoull(value, nullptr, 10);
}

/// Whether every adjacency row is strictly ascending (no repeated
/// neighbor) — decides the gap-minus-one bias exactly like FromEdges'
/// dedup path does, and uniformly for raw and compressed layouts, so
/// the same graph always shards to identical files.
bool RowsStrictlyAscending(const Graph& g) {
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    bool first = true;
    VertexId prev = 0;
    bool strict = true;
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (!first && u <= prev) strict = false;
      prev = u;
      first = false;
    });
    if (!strict) return false;
  }
  return true;
}

}  // namespace

uint64_t ResolveOocShardBytes(uint64_t requested) {
  bool present = false;
  const uint64_t env = EnvBytes("GAL_OOC_SHARD_BYTES", &present);
  uint64_t bytes = present && env > 0 ? env : requested;
  return bytes == 0 ? 1 : bytes;
}

uint64_t ResolveOocBudgetBytes(uint64_t requested, uint64_t min_feasible,
                               bool* env_forced) {
  bool present = false;
  const uint64_t env = EnvBytes("GAL_OOC_BUDGET_BYTES", &present);
  if (env_forced != nullptr) *env_forced = present;
  if (!present) return requested;
  if (env == 0) return 0;  // "0" = unlimited, like an unset budget option
  // Kill-switch semantics: a forced budget below feasibility clamps UP
  // to the smallest budget that can run (one largest shard), so
  // GAL_OOC_BUDGET_BYTES=1 forces every shard to be evicted between
  // touches without making any store unopenable.
  return std::max(env, min_feasible);
}

Result<ShardWriteSummary> WriteShardedGraph(const Graph& g,
                                            const std::string& base_path,
                                            const ShardWriterOptions& options) {
  const uint64_t target = ResolveOocShardBytes(options.target_shard_bytes);
  const VertexId n = g.NumVertices();
  const uint32_t bias = RowsStrictlyAscending(g) ? 1 : 0;

  ShardWriteSummary summary;
  std::vector<ShardInfo> infos;
  std::vector<uint8_t> stream;
  std::vector<uint32_t> row_offsets{0};
  std::vector<uint8_t> row_buf;
  VertexId shard_begin = 0;
  uint64_t shard_edges = 0;

  auto flush_shard = [&](VertexId end_vertex) -> Status {
    ShardInfo info;
    info.begin = shard_begin;
    info.end = end_vertex;
    info.adj_bytes = stream.size();
    info.edge_count = shard_edges;
    const uint32_t index = static_cast<uint32_t>(infos.size());
    GAL_RETURN_IF_ERROR(WriteShardFile(ShardFileName(base_path, index), index,
                                       stream, row_offsets, info));
    summary.total_adj_bytes += info.adj_bytes;
    summary.max_shard_resident_bytes =
        std::max(summary.max_shard_resident_bytes, info.ResidentBytes());
    infos.push_back(info);
    stream.clear();
    row_offsets.assign(1, 0);
    shard_begin = end_vertex;
    shard_edges = 0;
    return Status::Ok();
  };

  for (VertexId v = 0; v < n; ++v) {
    row_buf.clear();
    bool first = true;
    VertexId prev = 0;
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (first) {
        AppendVarint(row_buf, u);
        first = false;
      } else {
        GAL_CHECK(u >= prev + bias) << "adjacency row not sorted at " << v;
        AppendVarint(row_buf, u - prev - bias);
      }
      prev = u;
    });
    // Close the shard BEFORE an overflowing row, so shards stay at or
    // under the target unless a single row alone exceeds it.
    if (!stream.empty() && stream.size() + row_buf.size() > target) {
      GAL_RETURN_IF_ERROR(flush_shard(v));
    }
    stream.insert(stream.end(), row_buf.begin(), row_buf.end());
    row_offsets.push_back(static_cast<uint32_t>(stream.size()));
    shard_edges += g.Degree(v);
  }
  if (n > 0) GAL_RETURN_IF_ERROR(flush_shard(n));
  summary.num_shards = static_cast<uint32_t>(infos.size());

  // Manifest: everything needed to answer Degree/ShardOf/MapToOriginal
  // without touching a shard, checksummed as one unit.
  std::vector<uint8_t> m;
  m.insert(m.end(), kOocManifestMagic,
           kOocManifestMagic + sizeof(kOocManifestMagic));
  AppendU32(m, kOocFormatVersion);
  uint32_t flags = 0;
  if (g.directed()) flags |= kFlagDirected;
  if (g.IsReordered()) flags |= kFlagHasPermutation;
  AppendU32(m, flags);
  AppendU32(m, n);
  AppendU32(m, summary.num_shards);
  AppendU64(m, g.NumEdges());
  AppendU64(m, g.NumAdjacencyEntries());
  AppendU32(m, bias);
  AppendU32(m, g.MaxDegree());
  for (const ShardInfo& info : infos) {
    AppendU32(m, info.begin);
    AppendU32(m, info.end);
    AppendU64(m, info.adj_bytes);
    AppendU64(m, info.edge_count);
    AppendU64(m, info.checksum);
  }
  for (VertexId v = 0; v < n; ++v) AppendU32(m, g.Degree(v));
  if (g.IsReordered()) {
    for (VertexId v = 0; v < n; ++v) AppendU32(m, g.OriginalId(v));
  }
  AppendU64(m, Fnv1a(m.data(), m.size()));

  const std::string manifest_path = ManifestFileName(base_path);
  std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open " + manifest_path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size()));
  if (!out) return Status::IOError("write failed for " + manifest_path);
  return summary;
}

void RemoveShardedGraphFiles(const std::string& base_path) {
  std::error_code ec;
  std::filesystem::remove(ManifestFileName(base_path), ec);
  for (uint32_t s = 0;; ++s) {
    const std::string path = ShardFileName(base_path, s);
    if (!std::filesystem::remove(path, ec)) break;
  }
}

Result<ShardedGraph> ShardedGraph::Open(const std::string& base_path,
                                        const OocOptions& options) {
  const std::string manifest_path = ManifestFileName(base_path);
  std::ifstream in(manifest_path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open manifest " + manifest_path);
  const size_t size = static_cast<size_t>(in.tellg());
  if (size < sizeof(kOocManifestMagic) + 8) {
    return Status::IOError(manifest_path + ": too small to be a manifest");
  }
  std::vector<uint8_t> m(size);
  in.seekg(0);
  if (!in.read(reinterpret_cast<char*>(m.data()),
               static_cast<std::streamsize>(size))) {
    return Status::IOError("short read on manifest " + manifest_path);
  }
  ByteReader r(m.data(), size - 8);
  {
    char magic[8];
    if (!r.ReadBytes(magic, 8) ||
        std::memcmp(magic, kOocManifestMagic, 8) != 0) {
      return Status::IOError(manifest_path + ": bad manifest magic");
    }
  }
  {
    ByteReader tail(m.data() + size - 8, 8);
    const uint64_t stored = tail.ReadU64();
    const uint64_t computed = Fnv1a(m.data(), size - 8);
    if (stored != computed) {
      return Status::IOError(manifest_path + ": manifest checksum mismatch");
    }
  }

  ShardedGraph g;
  const uint32_t version = r.ReadU32();
  if (version != kOocFormatVersion) {
    return Status::IOError(manifest_path + ": unsupported manifest version " +
                           std::to_string(version));
  }
  const uint32_t flags = r.ReadU32();
  g.directed_ = (flags & kFlagDirected) != 0;
  g.num_vertices_ = r.ReadU32();
  const uint32_t num_shards = r.ReadU32();
  g.num_edges_ = r.ReadU64();
  g.adjacency_entries_ = r.ReadU64();
  g.delta_bias_ = r.ReadU32();
  g.max_degree_ = r.ReadU32();

  g.infos_.resize(num_shards);
  VertexId expect_begin = 0;
  uint64_t total_edges = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardInfo& info = g.infos_[s];
    info.begin = r.ReadU32();
    info.end = r.ReadU32();
    info.adj_bytes = r.ReadU64();
    info.edge_count = r.ReadU64();
    info.checksum = r.ReadU64();
    if (!r.ok()) break;
    if (info.begin != expect_begin || info.end < info.begin ||
        info.end > g.num_vertices_) {
      return Status::IOError(manifest_path + ": shard " + std::to_string(s) +
                             " range is not contiguous");
    }
    expect_begin = info.end;
    total_edges += info.edge_count;
    g.total_adj_bytes_ += info.adj_bytes;
    g.max_shard_resident_bytes_ =
        std::max(g.max_shard_resident_bytes_, info.ResidentBytes());
  }
  g.degrees_.resize(g.num_vertices_);
  uint64_t degree_sum = 0;
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    g.degrees_[v] = r.ReadU32();
    degree_sum += g.degrees_[v];
  }
  if ((flags & kFlagHasPermutation) != 0) {
    g.to_original_.resize(g.num_vertices_);
    for (VertexId v = 0; v < g.num_vertices_; ++v) {
      g.to_original_[v] = r.ReadU32();
    }
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::IOError(manifest_path + ": manifest payload truncated or "
                                           "trailing bytes");
  }
  if ((g.num_vertices_ > 0 && expect_begin != g.num_vertices_) ||
      total_edges != g.adjacency_entries_ ||
      degree_sum != g.adjacency_entries_) {
    return Status::IOError(manifest_path +
                           ": shard table / degrees inconsistent with "
                           "adjacency entry count");
  }
  if (!g.to_original_.empty()) {
    g.to_internal_.assign(g.num_vertices_, kInvalidVertex);
    for (VertexId v = 0; v < g.num_vertices_; ++v) {
      const VertexId o = g.to_original_[v];
      if (o >= g.num_vertices_ || g.to_internal_[o] != kInvalidVertex) {
        return Status::IOError(manifest_path +
                               ": reorder permutation is not a bijection");
      }
      g.to_internal_[o] = v;
    }
  }

  // Validate every shard file now (footer + checksum + offsets), so the
  // cache's load path may assume files are good for the store's
  // lifetime. One streaming pass; payloads are discarded, not retained.
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::vector<uint8_t> bytes;
    std::vector<uint32_t> offsets;
    GAL_RETURN_IF_ERROR(ReadShardFile(ShardFileName(base_path, s), s,
                                      g.infos_[s], &bytes, &offsets));
  }

  bool env_forced = false;
  const uint64_t budget = ResolveOocBudgetBytes(
      options.memory_budget_bytes, g.max_shard_resident_bytes_, &env_forced);
  if (budget > 0 && budget < g.max_shard_resident_bytes_) {
    return Status::InvalidArgument(
        "ooc memory budget " + std::to_string(budget) +
        " B cannot admit the largest shard (" +
        std::to_string(g.max_shard_resident_bytes_) +
        " B resident); re-shard with a smaller GAL_OOC_SHARD_BYTES or "
        "raise the budget");
  }
  g.options_ = options;
  g.options_.memory_budget_bytes = budget;
  g.cache_ =
      std::make_unique<ShardCache>(base_path, g.infos_, budget);
  g.clock_ = std::make_unique<VirtualClock>(NetworkCostModel{
      options.disk_bandwidth_bytes_per_sec, options.disk_latency_seconds});
  return g;
}

}  // namespace gal
