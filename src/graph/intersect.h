#ifndef GAL_GRAPH_INTERSECT_H_
#define GAL_GRAPH_INTERSECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// Unified sorted-adjacency intersection, the shared inner loop of
/// triangles, cliques, k-truss, matching, and GNN structural features.
/// Inputs are strictly-ascending sorted id arrays (CSR adjacency rows
/// qualify). Strategy is adaptive:
///   - scalar two-pointer merge — the reference path, and the only one
///     used when simd::Enabled() is false (GAL_SIMD=0);
///   - galloping (exponential + binary search) when one side is >=32x
///     longer than the other — hub-vs-leaf intersections;
///   - AVX2 8x8 block compare otherwise.
/// All paths return identical elements/counts; only speed differs.
///
/// `ops`, when non-null, accumulates a work diagnostic. On the scalar
/// merge path it counts loop iterations — exactly the historical
/// `intersection_ops` semantics, so GAL_SIMD=0 runs reproduce old
/// numbers. Vector/galloping paths count elements touched or probes
/// made; the diagnostic is path-dependent by design (it measures work
/// actually done), while counts/elements never vary.

/// Number of common elements of a and b.
uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b, uint64_t* ops = nullptr);

/// Replaces `out` with the (ascending) common elements of a and b.
/// Reuses out's capacity — the scratch-buffer form for tight loops.
void IntersectInto(std::span<const VertexId> a, std::span<const VertexId> b,
                   std::vector<VertexId>& out, uint64_t* ops = nullptr);

/// Returns the (ascending) common elements of a and b.
std::vector<VertexId> Intersect(std::span<const VertexId> a,
                                std::span<const VertexId> b);

/// True iff a and b share at least one element (early-exit merge; no
/// ops accounting — the membership-probe form matching uses for witness
/// checks where only existence matters).
bool IntersectAny(std::span<const VertexId> a, std::span<const VertexId> b);

// --- decode-into-scratch forms (compressed CSR) ----------------------------
//
// When the graph stores its adjacency delta-varint compressed
// (GraphOptions::compression), rows are not spans; these overloads
// decode the needed row(s) into caller-owned scratch and then run the
// exact same scalar/galloping/AVX2 kernels above. On an uncompressed
// graph NeighborsInto returns the raw CSR row and the scratch is never
// touched, so the overloads cost nothing extra — call sites can be
// written once, compression-obliviously.

/// Two decode rows for intersection-style call sites that hold two
/// adjacency lists live at once. Reused across calls (steady-state
/// zero-allocation); one per worker/thread — never share across threads.
struct NeighborScratch {
  std::vector<VertexId> a;
  std::vector<VertexId> b;
};

/// |N(u) ∩ N(v)| over graph rows.
uint64_t IntersectCount(const Graph& g, VertexId u, VertexId v,
                        NeighborScratch& scratch, uint64_t* ops = nullptr);

/// |a ∩ N(v)| — one materialized side, one graph row.
uint64_t IntersectCount(std::span<const VertexId> a, const Graph& g,
                        VertexId v, NeighborScratch& scratch,
                        uint64_t* ops = nullptr);

/// out = a ∩ N(v). `out` must not alias scratch.b (it may be scratch.a's
/// sibling in a different NeighborScratch).
void IntersectInto(std::span<const VertexId> a, const Graph& g, VertexId v,
                   std::vector<VertexId>& out, NeighborScratch& scratch,
                   uint64_t* ops = nullptr);

/// True iff a ∩ N(v) is non-empty.
bool IntersectAny(std::span<const VertexId> a, const Graph& g, VertexId v,
                  NeighborScratch& scratch);

}  // namespace gal

#endif  // GAL_GRAPH_INTERSECT_H_
