#ifndef GAL_GRAPH_INTERSECT_H_
#define GAL_GRAPH_INTERSECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// Unified sorted-adjacency intersection, the shared inner loop of
/// triangles, cliques, k-truss, matching, and GNN structural features.
/// Inputs are strictly-ascending sorted id arrays (CSR adjacency rows
/// qualify). Strategy is adaptive:
///   - scalar two-pointer merge — the reference path, and the only one
///     used when simd::Enabled() is false (GAL_SIMD=0);
///   - galloping (exponential + binary search) when one side is >=32x
///     longer than the other — hub-vs-leaf intersections;
///   - AVX2 8x8 block compare otherwise.
/// All paths return identical elements/counts; only speed differs.
///
/// `ops`, when non-null, accumulates a work diagnostic. On the scalar
/// merge path it counts loop iterations — exactly the historical
/// `intersection_ops` semantics, so GAL_SIMD=0 runs reproduce old
/// numbers. Vector/galloping paths count elements touched or probes
/// made; the diagnostic is path-dependent by design (it measures work
/// actually done), while counts/elements never vary.

/// Number of common elements of a and b.
uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b, uint64_t* ops = nullptr);

/// Replaces `out` with the (ascending) common elements of a and b.
/// Reuses out's capacity — the scratch-buffer form for tight loops.
void IntersectInto(std::span<const VertexId> a, std::span<const VertexId> b,
                   std::vector<VertexId>& out, uint64_t* ops = nullptr);

/// Returns the (ascending) common elements of a and b.
std::vector<VertexId> Intersect(std::span<const VertexId> a,
                                std::span<const VertexId> b);

}  // namespace gal

#endif  // GAL_GRAPH_INTERSECT_H_
