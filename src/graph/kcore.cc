#include "graph/kcore.h"

#include <algorithm>

#include "common/logging.h"

namespace gal {

namespace {

/// Shared bucket-peeling machinery: repeatedly removes a minimum-degree
/// vertex, recording removal order and the degree at removal time.
struct PeelState {
  std::vector<VertexId> order;       // removal order
  std::vector<uint32_t> peel_degree; // bucket degree when removed (for cores)
  std::vector<uint32_t> true_degree; // edges to not-yet-removed vertices
};

PeelState Peel(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort by degree (standard O(|V|+|E|) core decomposition).
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (uint32_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> sorted(n);       // vertices ordered by degree
  std::vector<uint32_t> position(n);     // index of v in `sorted`
  {
    std::vector<uint32_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      sorted[position[v]] = v;
      ++cursor[degree[v]];
    }
  }
  // bucket_head[d] = first index in `sorted` whose vertex has degree d.
  std::vector<uint32_t> bucket_head(bucket_start.begin(),
                                    bucket_start.end() - 1);

  PeelState state;
  state.order.reserve(n);
  state.peel_degree.assign(n, 0);
  state.true_degree.assign(n, 0);
  // Bucket degrees saturate at the current peel level (the classic core
  // algorithm never decrements below it), so track real remaining
  // degrees separately for edge accounting.
  std::vector<uint32_t> remaining_degree = degree;
  std::vector<bool> removed(n, false);
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = sorted[i];
    removed[v] = true;
    state.order.push_back(v);
    state.peel_degree[v] = degree[v];
    state.true_degree[v] = remaining_degree[v];
    g.ForEachOutNeighbor(v, [&](VertexId u) {
      if (removed[u]) return;
      --remaining_degree[u];
      if (degree[u] <= degree[v]) return;
      // Swap u with the first vertex of its bucket, then shrink u's
      // degree so it joins the bucket below.
      const uint32_t du = degree[u];
      const uint32_t pu = position[u];
      const uint32_t pw = bucket_head[du];
      const VertexId w = sorted[pw];
      if (u != w) {
        std::swap(sorted[pu], sorted[pw]);
        position[u] = pw;
        position[w] = pu;
      }
      ++bucket_head[du];
      --degree[u];
    });
  }
  return state;
}

}  // namespace

std::vector<uint32_t> CoreNumbers(const Graph& g) {
  PeelState state = Peel(g);
  const VertexId n = g.NumVertices();
  std::vector<uint32_t> core(n, 0);
  uint32_t running_max = 0;
  for (VertexId v : state.order) {
    running_max = std::max(running_max, state.peel_degree[v]);
    core[v] = running_max;
  }
  return core;
}

std::vector<VertexId> KCore(const Graph& g, uint32_t k) {
  std::vector<uint32_t> core = CoreNumbers(g);
  std::vector<VertexId> result;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (core[v] >= k) result.push_back(v);
  }
  return result;
}

DegeneracyResult DegeneracyOrder(const Graph& g) {
  DegeneracyResult result;
  PeelState state = Peel(g);
  result.order = std::move(state.order);
  result.core_numbers.assign(g.NumVertices(), 0);
  uint32_t running_max = 0;
  for (VertexId v : result.order) {
    running_max = std::max(running_max, state.peel_degree[v]);
    result.core_numbers[v] = running_max;
  }
  result.degeneracy = running_max;
  return result;
}

DensestSubgraphResult DensestSubgraphPeel(const Graph& g) {
  // Re-peel tracking edge counts: density of the suffix set after
  // removing the i lowest-degree-at-the-time vertices.
  PeelState state = Peel(g);
  const VertexId n = g.NumVertices();
  DensestSubgraphResult best;
  if (n == 0) return best;

  // Edges remaining when suffix starts at index i: peel removes
  // true_degree[v] edges when v is removed.
  uint64_t edges_remaining = g.NumEdges();
  double best_density =
      static_cast<double>(edges_remaining) / static_cast<double>(n);
  size_t best_suffix = 0;
  for (size_t i = 0; i < state.order.size(); ++i) {
    edges_remaining -= state.true_degree[state.order[i]];
    const size_t remaining = n - (i + 1);
    if (remaining == 0) break;
    const double density =
        static_cast<double>(edges_remaining) / static_cast<double>(remaining);
    if (density > best_density) {
      best_density = density;
      best_suffix = i + 1;
    }
  }
  best.density = best_density;
  best.vertices.assign(state.order.begin() + best_suffix, state.order.end());
  std::sort(best.vertices.begin(), best.vertices.end());
  return best;
}

}  // namespace gal
