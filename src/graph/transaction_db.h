#ifndef GAL_GRAPH_TRANSACTION_DB_H_
#define GAL_GRAPH_TRANSACTION_DB_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// A database of small labeled graphs ("transactions"), the input of
/// transaction-setting FSM (gSpan / PrefixFPM) and of graph
/// classification. Each transaction may carry a class label (e.g.
/// active/inactive compound), used by the Figure-1 "structure analytics
/// + ML" pipeline path.
struct GraphTransaction {
  Graph graph;
  int32_t class_label = -1;  // -1 = unlabeled
};

class TransactionDb {
 public:
  TransactionDb() = default;

  void Add(Graph graph, int32_t class_label = -1) {
    transactions_.push_back({std::move(graph), class_label});
  }

  size_t size() const { return transactions_.size(); }
  const GraphTransaction& operator[](size_t i) const {
    return transactions_[i];
  }
  const std::vector<GraphTransaction>& transactions() const {
    return transactions_;
  }

 private:
  std::vector<GraphTransaction> transactions_;
};

/// Options for the synthetic "molecule" generator, the stand-in for the
/// biochemistry datasets (e.g. NCI, MUTAG) the survey's applications cite.
struct MoleculeDbOptions {
  uint32_t num_transactions = 200;
  uint32_t vertices_per_graph = 20;
  uint32_t num_vertex_labels = 4;
  /// Extra random edges on top of the backbone spanning tree.
  uint32_t extra_edges = 8;
  /// Each class plants its own distinguishing motif into ~motif_rate of
  /// its graphs, so frequent patterns are genuinely class-discriminative.
  double motif_rate = 0.8;
};

/// Generates a two-class DB where class 0 graphs tend to contain a
/// labeled triangle motif and class 1 graphs a labeled square motif.
/// Deterministic in (options, seed).
TransactionDb SyntheticMoleculeDb(const MoleculeDbOptions& options,
                                  uint64_t seed);

}  // namespace gal

#endif  // GAL_GRAPH_TRANSACTION_DB_H_
