#ifndef GAL_GRAPH_GRAPH_H_
#define GAL_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gal {

/// Vertex identifier. 32 bits covers every graph this framework targets
/// (laptop-scale simulation of the paper's workloads) at half the memory
/// of 64-bit ids, which matters for CSR adjacency arrays.
using VertexId = uint32_t;
using EdgeId = uint64_t;
using Label = uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// An edge as loaded from input, before CSR construction.
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// Build-time vertex-reordering policy (layout-as-policy): the CSR is
/// stored under a permutation of the input ids chosen so hot adjacency
/// scans hit cache. The permutation and its inverse live on the graph,
/// and the analytics entry points (BFS/SSSP/WCC/PageRank, triangle and
/// clique/k-truss outputs) map their results back to the original ids,
/// so a reordered run is bit-identical to an unordered one.
enum class ReorderMode : uint8_t {
  kNone,
  /// Vertices sorted by descending degree (ties by original id): the
  /// high-degree hubs every power-law scan keeps revisiting become
  /// id-contiguous, so their offsets/targets rows share cache lines.
  kDegreeDesc,
  /// Hubs first (degree-desc), then each remaining vertex placed next
  /// to the hub it attaches to most strongly — a cheap clustering that
  /// keeps a hub's fringe in the same cache window as the hub itself.
  kHubCluster,
};

/// Options controlling CSR construction.
struct GraphOptions {
  /// If false (default), every input edge {u,v} is stored in both
  /// adjacency lists and NumEdges() counts each undirected edge once.
  bool directed = false;
  /// Drop u->u edges (subgraph algorithms assume simple graphs).
  bool remove_self_loops = true;
  /// Collapse duplicate edges.
  bool dedup = true;
  /// Cache-aware vertex reordering applied at build time (see
  /// ReorderMode). Input edges and SetLabels stay in original-id space;
  /// only the internal CSR layout changes.
  ReorderMode reorder = ReorderMode::kNone;
};

/// An immutable graph in Compressed Sparse Row form with sorted adjacency
/// lists, the shared substrate for every engine in the framework:
///   - sorted neighbor arrays give O(log d) HasEdge and linear-time
///     neighborhood intersection (triangles, cliques, matching);
///   - the offsets/targets layout is what the TLAV engine shards across
///     simulated workers;
///   - optional vertex labels support labeled matching, FSM, and GNN
///     classification targets.
///
/// For a directed graph, adjacency lists hold out-neighbors; call
/// Reversed() to obtain the in-neighbor view.
class Graph {
 public:
  /// Builds a CSR graph from an edge list. Vertices are [0, num_vertices).
  /// Fails if any endpoint is out of range.
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 std::vector<Edge> edges,
                                 const GraphOptions& options = {});

  Graph() = default;
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  VertexId NumVertices() const { return num_vertices_; }

  /// Number of logical edges: undirected edges are counted once even
  /// though they occupy two adjacency slots.
  EdgeId NumEdges() const { return num_edges_; }

  /// Total adjacency entries (2|E| for undirected graphs).
  EdgeId NumAdjacencyEntries() const { return targets_.size(); }

  bool directed() const { return directed_; }

  /// Out-neighbors of v, sorted ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// Out-degree of v.
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// True iff edge u->v exists (binary search over sorted adjacency).
  bool HasEdge(VertexId u, VertexId v) const;

  uint32_t MaxDegree() const;

  /// Vertex labels; empty if the graph is unlabeled.
  const std::vector<Label>& labels() const { return labels_; }
  bool IsLabeled() const { return !labels_.empty(); }
  Label LabelOf(VertexId v) const { return labels_.empty() ? 0 : labels_[v]; }

  /// Attaches per-vertex labels. Fails unless labels.size()==NumVertices().
  Status SetLabels(std::vector<Label> labels);

  /// The graph with every edge direction flipped. For undirected graphs
  /// this is a copy. Labels are preserved.
  Graph Reversed() const;

  /// In-neighbor view, built lazily on first use and cached (shared by
  /// copies of this graph — views are immutable). For undirected graphs
  /// returns *this. The cache is what lets direction-optimizing pull
  /// steps gather over in-edges without paying a rebuild per run.
  /// Thread-safe.
  const Graph& ReversedView() const;

  /// Symmetrized view: u and v are neighbors iff u->v or v->u exists —
  /// the adjacency weak-connectivity algorithms propagate over. Returns
  /// *this for undirected graphs; lazily built and cached otherwise.
  /// Thread-safe.
  const Graph& UndirectedView() const;

  /// Subgraph induced by `vertices` (need not be sorted; duplicates are
  /// an error). Vertex i of the result corresponds to vertices[i].
  /// Labels are carried over.
  Result<Graph> InducedSubgraph(std::span<const VertexId> vertices) const;

  /// Raw CSR arrays, exposed for engines that shard the graph.
  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return targets_; }

  // --- cache-aware vertex reordering (GraphOptions::reorder) ---------------
  //
  // When built with a ReorderMode other than kNone, the CSR arrays are
  // stored under a permutation: vertex `v` of this graph is "internal"
  // id space; OriginalId/InternalId translate to and from the caller's
  // id space. Per-vertex algorithm results are produced in internal
  // space and mapped back via MapToOriginal by the analytics wrappers.
  // Derived views (Reversed/UndirectedView) share the same internal id
  // space and carry the mapping; InducedSubgraph does not (its result
  // is a fresh id space).

  bool IsReordered() const { return to_original_ != nullptr; }
  ReorderMode reorder_mode() const { return reorder_mode_; }

  /// Original id of internal vertex `v` (identity when not reordered).
  VertexId OriginalId(VertexId v) const {
    return to_original_ == nullptr ? v : (*to_original_)[v];
  }
  /// Internal id of original vertex `v` (identity when not reordered).
  VertexId InternalId(VertexId v) const {
    return to_internal_ == nullptr ? v : (*to_internal_)[v];
  }

  /// Permutes a per-internal-vertex array into original-id indexing:
  /// out[OriginalId(v)] = per_vertex[v]. Identity when not reordered.
  template <typename T>
  std::vector<T> MapToOriginal(std::vector<T> per_vertex) const {
    if (to_original_ == nullptr) return per_vertex;
    std::vector<T> out(per_vertex.size());
    for (size_t v = 0; v < per_vertex.size(); ++v) {
      out[(*to_original_)[v]] = std::move(per_vertex[v]);
    }
    return out;
  }

  /// All logical edges, materialized (src < dst for undirected graphs).
  std::vector<Edge> CollectEdges() const;

  /// Bytes used by the CSR arrays and labels.
  size_t MemoryBytes() const;

  /// "Graph(|V|=..., |E|=..., directed=...)".
  std::string ToString() const;

 private:
  /// Lazily built derived views, shared across copies of the graph (the
  /// views are immutable, so sharing is safe and keeps copies cheap).
  struct ViewCache {
    std::mutex mu;
    std::shared_ptr<const Graph> reversed;
    std::shared_ptr<const Graph> undirected;
  };

  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  bool directed_ = false;
  std::vector<EdgeId> offsets_;    // size num_vertices_ + 1
  std::vector<VertexId> targets_;  // sorted per-vertex
  std::vector<Label> labels_;      // empty or size num_vertices_
  /// Reordering maps, shared (immutable) with derived views and copies.
  /// to_original_[internal] = original; to_internal_[original] = internal.
  ReorderMode reorder_mode_ = ReorderMode::kNone;
  std::shared_ptr<const std::vector<VertexId>> to_original_;
  std::shared_ptr<const std::vector<VertexId>> to_internal_;
  std::shared_ptr<ViewCache> views_ = std::make_shared<ViewCache>();
};

}  // namespace gal

#endif  // GAL_GRAPH_GRAPH_H_
