#ifndef GAL_GRAPH_GRAPH_H_
#define GAL_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "graph/compressed_csr.h"

namespace gal {

/// Vertex identifier. 32 bits covers every graph this framework targets
/// (laptop-scale simulation of the paper's workloads) at half the memory
/// of 64-bit ids, which matters for CSR adjacency arrays.
using VertexId = uint32_t;
using EdgeId = uint64_t;
using Label = uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// An edge as loaded from input, before CSR construction.
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// Build-time vertex-reordering policy (layout-as-policy): the CSR is
/// stored under a permutation of the input ids chosen so hot adjacency
/// scans hit cache. The permutation and its inverse live on the graph,
/// and the analytics entry points (BFS/SSSP/WCC/PageRank, triangle and
/// clique/k-truss outputs) map their results back to the original ids,
/// so a reordered run is bit-identical to an unordered one.
enum class ReorderMode : uint8_t {
  kNone,
  /// Vertices sorted by descending degree (ties by original id): the
  /// high-degree hubs every power-law scan keeps revisiting become
  /// id-contiguous, so their offsets/targets rows share cache lines.
  kDegreeDesc,
  /// Hubs first (degree-desc), then each remaining vertex placed next
  /// to the hub it attaches to most strongly — a cheap clustering that
  /// keeps a hub's fringe in the same cache window as the hub itself.
  kHubCluster,
};

/// Build-time adjacency-compression policy, the third layout knob next
/// to ReorderMode and runtime SIMD. Like those, it is pure policy: every
/// algorithm produces bit-identical results in original-id space whether
/// the adjacency is raw or compressed.
enum class CompressionMode : uint8_t {
  kNone,
  /// Each (sorted, reorder-permuted) adjacency list is stored as a
  /// first-target + delta-varint byte block (see compressed_csr.h). The
  /// raw `targets_` array is dropped; traversals stream-decode the
  /// blocks, trading decode cycles for memory bandwidth.
  kDeltaVarint,
};

/// Options controlling CSR construction.
struct GraphOptions {
  /// If false (default), every input edge {u,v} is stored in both
  /// adjacency lists and NumEdges() counts each undirected edge once.
  bool directed = false;
  /// Drop u->u edges (subgraph algorithms assume simple graphs).
  bool remove_self_loops = true;
  /// Collapse duplicate edges.
  bool dedup = true;
  /// Cache-aware vertex reordering applied at build time (see
  /// ReorderMode). Input edges and SetLabels stay in original-id space;
  /// only the internal CSR layout changes.
  ReorderMode reorder = ReorderMode::kNone;
  /// Adjacency compression applied at build time (see CompressionMode).
  /// The `GAL_GRAPH_COMPRESSION` environment variable, when set,
  /// overrides this for every FromEdges call: "1"/"delta-varint" forces
  /// kDeltaVarint, "0"/"none" forces kNone.
  CompressionMode compression = CompressionMode::kNone;
};

/// Resolves the effective compression mode: the `GAL_GRAPH_COMPRESSION`
/// env override if set (consulted at every FromEdges call, like
/// GAL_SIMD's kill switch), else `requested`.
CompressionMode ResolveCompressionMode(CompressionMode requested);

/// An immutable graph in Compressed Sparse Row form with sorted adjacency
/// lists, the shared substrate for every engine in the framework:
///   - sorted neighbor arrays give O(log d) HasEdge and linear-time
///     neighborhood intersection (triangles, cliques, matching);
///   - the offsets/targets layout is what the TLAV engine shards across
///     simulated workers;
///   - optional vertex labels support labeled matching, FSM, and GNN
///     classification targets.
///
/// For a directed graph, adjacency lists hold out-neighbors; call
/// Reversed() to obtain the in-neighbor view.
class Graph {
 public:
  /// Builds a CSR graph from an edge list. Vertices are [0, num_vertices).
  /// Fails if any endpoint is out of range.
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 std::vector<Edge> edges,
                                 const GraphOptions& options = {});

  Graph() = default;
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  VertexId NumVertices() const { return num_vertices_; }

  /// Number of logical edges: undirected edges are counted once even
  /// though they occupy two adjacency slots.
  EdgeId NumEdges() const { return num_edges_; }

  /// Total adjacency entries (2|E| for undirected graphs).
  EdgeId NumAdjacencyEntries() const {
    return num_vertices_ == 0 ? 0 : offsets_[num_vertices_];
  }

  bool directed() const { return directed_; }

  /// True when the adjacency is stored delta-varint compressed and the
  /// raw targets array is absent (see CompressionMode::kDeltaVarint).
  bool IsCompressed() const { return compressed_ != nullptr; }
  CompressionMode compression_mode() const { return compression_mode_; }

  /// Out-neighbors of v, sorted ascending. Only valid on uncompressed
  /// graphs — there is no contiguous array to span when the adjacency is
  /// a varint stream. Compression-oblivious code wants ForEachOutNeighbor
  /// (streaming), OutNeighbors (cursor), or NeighborsInto (decode into
  /// caller scratch; zero-copy when raw).
  std::span<const VertexId> Neighbors(VertexId v) const {
    GAL_CHECK(compressed_ == nullptr)
        << "Neighbors() on a compressed graph; use ForEachOutNeighbor / "
           "OutNeighbors / NeighborsInto";
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// Zero-allocation forward cursor over v's sorted out-neighbors,
  /// uniform across raw and compressed layouts. Supports the early-exit
  /// loops (BFS pull's break-on-first-hit, HasEdge probes) that a
  /// ForEachOutNeighbor callback can't express cheaply.
  class NeighborCursor {
   public:
    bool Valid() const { return remaining_ != 0; }
    VertexId Get() const { return current_; }
    void Next() {
      if (--remaining_ == 0) return;
      if (raw_ != nullptr) {
        current_ = *++raw_;
      } else {
        current_ += ReadVarint(stream_) + bias_;
      }
    }

   private:
    friend class Graph;
    const VertexId* raw_ = nullptr;    // raw layout: next element
    const uint8_t* stream_ = nullptr;  // compressed: next varint
    uint32_t remaining_ = 0;
    VertexId current_ = 0;
    uint32_t bias_ = 0;
  };

  NeighborCursor OutNeighbors(VertexId v) const {
    NeighborCursor c;
    c.remaining_ = Degree(v);
    if (c.remaining_ == 0) return c;
    if (compressed_ != nullptr) {
      c.stream_ = compressed_->bytes.data() + compressed_->row_offsets[v];
      c.bias_ = compressed_->delta_bias;
      c.current_ = ReadVarint(c.stream_);
    } else {
      c.raw_ = targets_.data() + offsets_[v];
      c.current_ = *c.raw_;
    }
    return c;
  }

  /// Streams v's sorted out-neighbors through `fn(VertexId)` without
  /// allocating, decoding in-register when compressed. The hot-loop
  /// replacement for `for (VertexId u : g.Neighbors(v))`.
  template <typename Fn>
  void ForEachOutNeighbor(VertexId v, Fn&& fn) const {
    if (compressed_ == nullptr) {
      const VertexId* p = targets_.data() + offsets_[v];
      const VertexId* end = targets_.data() + offsets_[v + 1];
      for (; p != end; ++p) fn(*p);
      return;
    }
    const uint32_t degree = Degree(v);
    if (degree == 0) return;
    const uint8_t* p = compressed_->bytes.data() + compressed_->row_offsets[v];
    const uint32_t bias = compressed_->delta_bias;
    VertexId current = ReadVarint(p);
    fn(current);
    for (uint32_t i = 1; i < degree; ++i) {
      current += ReadVarint(p) + bias;
      fn(current);
    }
  }

  /// v's sorted out-neighbors as a random-access span. Raw layout:
  /// returns the CSR row directly (scratch untouched, zero cost).
  /// Compressed: decodes into `scratch` (resized to the degree) and
  /// returns a span over it — the span is invalidated by the next
  /// NeighborsInto call on the same scratch, so intersection-style code
  /// holding two rows needs two scratch vectors (see
  /// graph/intersect.h's NeighborScratch).
  std::span<const VertexId> NeighborsInto(VertexId v,
                                          std::vector<VertexId>& scratch) const;

  /// Out-degree of v.
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// True iff edge u->v exists (binary search over sorted adjacency).
  bool HasEdge(VertexId u, VertexId v) const;

  uint32_t MaxDegree() const;

  /// Vertex labels; empty if the graph is unlabeled.
  const std::vector<Label>& labels() const { return labels_; }
  bool IsLabeled() const { return !labels_.empty(); }
  Label LabelOf(VertexId v) const { return labels_.empty() ? 0 : labels_[v]; }

  /// Attaches per-vertex labels. Fails unless labels.size()==NumVertices().
  Status SetLabels(std::vector<Label> labels);

  /// The graph with every edge direction flipped. For undirected graphs
  /// this is a copy. Labels are preserved.
  Graph Reversed() const;

  /// In-neighbor view, built lazily on first use and cached (shared by
  /// copies of this graph — views are immutable). For undirected graphs
  /// returns *this. The cache is what lets direction-optimizing pull
  /// steps gather over in-edges without paying a rebuild per run.
  /// Thread-safe.
  const Graph& ReversedView() const;

  /// Symmetrized view: u and v are neighbors iff u->v or v->u exists —
  /// the adjacency weak-connectivity algorithms propagate over. Returns
  /// *this for undirected graphs; lazily built and cached otherwise.
  /// Thread-safe.
  const Graph& UndirectedView() const;

  /// Subgraph induced by `vertices`, given in ORIGINAL id space like
  /// every other public entry point (need not be sorted; duplicates are
  /// an error). Vertex i of the result corresponds to vertices[i].
  /// Labels are carried over; the compression mode is inherited.
  ///
  /// Contract: the result is a fresh id space — the parent's reorder
  /// permutation is deliberately NOT carried through (and the result is
  /// asserted unreordered). Callers needing parent ids keep their own
  /// `vertices` array as the mapping.
  Result<Graph> InducedSubgraph(std::span<const VertexId> vertices) const;

  /// Raw CSR arrays, exposed for engines that shard the graph.
  /// `targets()` is empty when IsCompressed() — sharding code that walks
  /// rows should go through ForEachOutNeighbor/NeighborsInto instead.
  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return targets_; }

  // --- cache-aware vertex reordering (GraphOptions::reorder) ---------------
  //
  // When built with a ReorderMode other than kNone, the CSR arrays are
  // stored under a permutation: vertex `v` of this graph is "internal"
  // id space; OriginalId/InternalId translate to and from the caller's
  // id space. Per-vertex algorithm results are produced in internal
  // space and mapped back via MapToOriginal by the analytics wrappers.
  // Derived views (Reversed/UndirectedView) share the same internal id
  // space and carry the mapping; InducedSubgraph does not (its result
  // is a fresh id space).

  bool IsReordered() const { return to_original_ != nullptr; }
  ReorderMode reorder_mode() const { return reorder_mode_; }

  /// Original id of internal vertex `v` (identity when not reordered).
  VertexId OriginalId(VertexId v) const {
    return to_original_ == nullptr ? v : (*to_original_)[v];
  }
  /// Internal id of original vertex `v` (identity when not reordered).
  VertexId InternalId(VertexId v) const {
    return to_internal_ == nullptr ? v : (*to_internal_)[v];
  }

  /// Permutes a per-internal-vertex array into original-id indexing:
  /// out[OriginalId(v)] = per_vertex[v]. Identity when not reordered.
  template <typename T>
  std::vector<T> MapToOriginal(std::vector<T> per_vertex) const {
    if (to_original_ == nullptr) return per_vertex;
    std::vector<T> out(per_vertex.size());
    for (size_t v = 0; v < per_vertex.size(); ++v) {
      out[(*to_original_)[v]] = std::move(per_vertex[v]);
    }
    return out;
  }

  /// All logical edges, materialized (src < dst for undirected graphs).
  std::vector<Edge> CollectEdges() const;

  /// Bytes used by the CSR arrays and labels.
  size_t MemoryBytes() const;

  /// Bytes of the adjacency payload alone: the raw targets array, or the
  /// varint byte stream when compressed (offsets are excluded — both
  /// layouts carry one per-vertex offset array). Numerator of the
  /// bytes/edge metric the benches report.
  size_t AdjacencyBytes() const {
    return compressed_ != nullptr
               ? compressed_->bytes.size()
               : targets_.size() * sizeof(VertexId);
  }

  /// "Graph(|V|=..., |E|=..., directed=...)".
  std::string ToString() const;

 private:
  /// Lazily built derived views, shared across copies of the graph (the
  /// views are immutable, so sharing is safe and keeps copies cheap).
  struct ViewCache {
    std::mutex mu;
    std::shared_ptr<const Graph> reversed;
    std::shared_ptr<const Graph> undirected;
  };

  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  bool directed_ = false;
  std::vector<EdgeId> offsets_;    // size num_vertices_ + 1
  std::vector<VertexId> targets_;  // sorted per-vertex
  std::vector<Label> labels_;      // empty or size num_vertices_
  /// Reordering maps, shared (immutable) with derived views and copies.
  /// to_original_[internal] = original; to_internal_[original] = internal.
  ReorderMode reorder_mode_ = ReorderMode::kNone;
  std::shared_ptr<const std::vector<VertexId>> to_original_;
  std::shared_ptr<const std::vector<VertexId>> to_internal_;
  /// Delta-varint adjacency blocks (CompressionMode::kDeltaVarint);
  /// when set, targets_ is empty and offsets_ still carries degrees.
  /// Shared (immutable) with copies, like the reorder maps.
  CompressionMode compression_mode_ = CompressionMode::kNone;
  std::shared_ptr<const CompressedCsr> compressed_;
  std::shared_ptr<ViewCache> views_ = std::make_shared<ViewCache>();
};

}  // namespace gal

#endif  // GAL_GRAPH_GRAPH_H_
