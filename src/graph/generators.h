#ifndef GAL_GRAPH_GENERATORS_H_
#define GAL_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gal {

/// Synthetic graph generators. These stand in for the industrial graphs
/// used by the surveyed systems: R-MAT reproduces the power-law skew of
/// social networks (the regime where work stealing and sampling matter),
/// Erdős–Rényi gives density sweeps for the BFS-vs-DFS explosion
/// experiment, and planted partitions give labeled community structure
/// for GNN classification tasks. All generators are deterministic in
/// (parameters, seed).

/// G(n, p): each undirected pair is an edge with probability p.
/// Implemented with geometric skipping, so cost is O(|E|), not O(n^2).
Graph ErdosRenyi(VertexId n, double p, uint64_t seed);

/// R-MAT with 2^scale vertices and edge_factor * 2^scale edges.
/// (a, b, c) are the standard quadrant probabilities; d = 1 - a - b - c.
/// Defaults follow Graph500. Duplicates/self-loops are dropped, so the
/// realized edge count is slightly below the nominal one.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
};
Graph Rmat(uint32_t scale, uint32_t edge_factor, uint64_t seed,
           const RmatOptions& options = {});

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices. Produces heavy-tailed degrees with a
/// deterministic hub set, the worst case for static task partitioning.
Graph BarabasiAlbert(VertexId n, uint32_t attach, uint64_t seed);

/// Planted-partition (stochastic block model) graph with `communities`
/// equal-size blocks; intra-block edge probability p_in, inter p_out.
/// Vertex labels are set to the block id — ground truth for node
/// classification and community detection experiments.
Graph PlantedPartition(VertexId n, uint32_t communities, double p_in,
                       double p_out, uint64_t seed);

/// Watts–Strogatz small world: a ring lattice (each vertex joined to k
/// nearest neighbors, k even) with each edge rewired with probability
/// beta. beta=0 keeps the high-clustering lattice; beta=1 approaches a
/// random graph — the classic clustering-vs-diameter testbed for motif
/// statistics.
Graph WattsStrogatz(VertexId n, uint32_t k, double beta, uint64_t seed);

/// Deterministic topologies used by tests and the complexity bench.
Graph Path(VertexId n);
Graph Cycle(VertexId n);
Graph Star(VertexId n);           // vertex 0 is the hub
Graph Complete(VertexId n);
Graph Grid(VertexId rows, VertexId cols);

/// Assigns labels uniformly from [0, num_labels) — used to make any graph
/// usable by labeled matching / FSM. Modifies and returns the graph.
Graph WithRandomLabels(Graph g, uint32_t num_labels, uint64_t seed);

}  // namespace gal

#endif  // GAL_GRAPH_GENERATORS_H_
