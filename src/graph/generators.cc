#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace gal {
namespace {

Graph BuildUndirected(VertexId n, std::vector<Edge> edges) {
  Result<Graph> g = Graph::FromEdges(n, std::move(edges), GraphOptions{});
  GAL_CHECK(g.ok()) << g.status();
  return std::move(g.value());
}

}  // namespace

Graph ErdosRenyi(VertexId n, double p, uint64_t seed) {
  GAL_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  if (n >= 2 && p > 0.0) {
    Rng rng(seed);
    if (p >= 1.0) {
      return Complete(n);
    }
    // Iterate over the strictly-upper-triangular pair index with
    // geometric jumps: the gap to the next present edge is
    // floor(log(u) / log(1-p)).
    const double log1p = std::log(1.0 - p);
    const uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
    uint64_t idx = 0;
    for (;;) {
      double u = rng.NextDouble();
      while (u <= 0.0) u = rng.NextDouble();
      idx += 1 + static_cast<uint64_t>(std::log(u) / log1p);
      if (idx > total_pairs) break;
      // Map 1-based pair index to (row, col), row-major over pairs.
      const uint64_t k = idx - 1;
      // Find row r: the largest r with r*(2n-r-1)/2 <= k.
      const double nn = static_cast<double>(n);
      uint64_t r = static_cast<uint64_t>(
          std::floor(nn - 0.5 -
                     std::sqrt((nn - 0.5) * (nn - 0.5) - 2.0 *
                               static_cast<double>(k))));
      // Guard against floating-point boundary error.
      auto row_start = [&](uint64_t row) {
        return row * (2 * static_cast<uint64_t>(n) - row - 1) / 2;
      };
      while (r + 1 < n && row_start(r + 1) <= k) ++r;
      while (r > 0 && row_start(r) > k) --r;
      const uint64_t c = r + 1 + (k - row_start(r));
      edges.push_back(
          {static_cast<VertexId>(r), static_cast<VertexId>(c)});
    }
  }
  return BuildUndirected(n, std::move(edges));
}

Graph Rmat(uint32_t scale, uint32_t edge_factor, uint64_t seed,
           const RmatOptions& options) {
  GAL_CHECK(scale < 31);
  const VertexId n = static_cast<VertexId>(1u) << scale;
  const uint64_t m = static_cast<uint64_t>(edge_factor) * n;
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (uint64_t e = 0; e < m; ++e) {
    VertexId src = 0;
    VertexId dst = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      if (r < options.a) {
        // upper-left quadrant: no bits set
      } else if (r < ab) {
        dst |= (1u << bit);
      } else if (r < abc) {
        src |= (1u << bit);
      } else {
        src |= (1u << bit);
        dst |= (1u << bit);
      }
    }
    edges.push_back({src, dst});
  }
  return BuildUndirected(n, std::move(edges));
}

Graph BarabasiAlbert(VertexId n, uint32_t attach, uint64_t seed) {
  GAL_CHECK(attach >= 1);
  GAL_CHECK(n > attach);
  Rng rng(seed);
  std::vector<Edge> edges;
  // Repeated-endpoint list: sampling a uniform element of `endpoints`
  // is sampling proportional to degree.
  std::vector<VertexId> endpoints;
  // Seed clique over the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<VertexId> chosen;
  for (VertexId v = attach + 1; v < n; ++v) {
    chosen.clear();
    while (chosen.size() < attach) {
      const VertexId t = endpoints[rng.Uniform(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (VertexId t : chosen) {
      edges.push_back({v, t});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return BuildUndirected(n, std::move(edges));
}

Graph PlantedPartition(VertexId n, uint32_t communities, double p_in,
                       double p_out, uint64_t seed) {
  GAL_CHECK(communities >= 1);
  Rng rng(seed);
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v] = v % communities;  // round-robin block assignment
  }
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const double p = labels[u] == labels[v] ? p_in : p_out;
      if (rng.Bernoulli(p)) edges.push_back({u, v});
    }
  }
  Graph g = BuildUndirected(n, std::move(edges));
  GAL_CHECK_OK(g.SetLabels(std::move(labels)));
  return g;
}

Graph WattsStrogatz(VertexId n, uint32_t k, double beta, uint64_t seed) {
  GAL_CHECK(k >= 2 && k % 2 == 0);
  GAL_CHECK(n > k);
  GAL_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  std::vector<Edge> edges;
  // Ring lattice: v connects to its k/2 clockwise successors.
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      VertexId u = (v + j) % n;
      if (rng.Bernoulli(beta)) {
        // Rewire the far endpoint to a uniform non-self target; the
        // CSR builder dedups any accidental multi-edges.
        u = static_cast<VertexId>(rng.Uniform(n));
        if (u == v) u = (v + 1) % n;
      }
      edges.push_back({v, u});
    }
  }
  return BuildUndirected(n, std::move(edges));
}

Graph Path(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return BuildUndirected(n, std::move(edges));
}

Graph Cycle(VertexId n) {
  GAL_CHECK(n >= 3);
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  edges.push_back({n - 1, 0});
  return BuildUndirected(n, std::move(edges));
}

Graph Star(VertexId n) {
  GAL_CHECK(n >= 1);
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.push_back({0, v});
  return BuildUndirected(n, std::move(edges));
}

Graph Complete(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return BuildUndirected(n, std::move(edges));
}

Graph Grid(VertexId rows, VertexId cols) {
  std::vector<Edge> edges;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return BuildUndirected(rows * cols, std::move(edges));
}

Graph WithRandomLabels(Graph g, uint32_t num_labels, uint64_t seed) {
  GAL_CHECK(num_labels >= 1);
  Rng rng(seed);
  std::vector<Label> labels(g.NumVertices());
  for (Label& l : labels) l = static_cast<Label>(rng.Uniform(num_labels));
  GAL_CHECK_OK(g.SetLabels(std::move(labels)));
  return g;
}

}  // namespace gal
