#ifndef GAL_GRAPH_IO_H_
#define GAL_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace gal {

/// Plain-text edge-list IO, the lingua franca of the surveyed systems
/// (SNAP datasets, Pregel inputs). Format: one "src dst" pair per line;
/// lines starting with '#' or '%' are comments. Vertex ids need not be
/// contiguous — they are remapped densely in first-appearance order.

/// Parses an edge list from a string buffer.
Result<Graph> ParseEdgeList(const std::string& text,
                            const GraphOptions& options = {});

/// Loads an edge list file from disk.
Result<Graph> LoadEdgeListFile(const std::string& path,
                               const GraphOptions& options = {});

/// Writes "src dst" lines (one logical edge each). Returns IOError on
/// filesystem failure.
Status SaveEdgeListFile(const Graph& g, const std::string& path);

}  // namespace gal

#endif  // GAL_GRAPH_IO_H_
